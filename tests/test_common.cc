// Unit tests for the common runtime: Status/Result, values, dates,
// strings, checksums, arenas, serialization, PRNG.

#include <gtest/gtest.h>

#include "mallard/common/arena.h"
#include "mallard/common/checksum.h"
#include "mallard/common/random.h"
#include "mallard/common/result.h"
#include "mallard/common/serializer.h"
#include "mallard/common/string_util.h"
#include "mallard/common/value.h"

namespace mallard {
namespace {

TEST(StatusTest, OkIsFree) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad block");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad block");
  EXPECT_EQ(s.ToString(), "Corruption: bad block");
}

TEST(StatusTest, CopyAndMove) {
  Status s = Status::IOError("disk");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kIOError);
  Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "disk");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, ValueAndError) {
  auto good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Value::Integer(7).GetInteger(), 7);
  EXPECT_EQ(Value::BigInt(1LL << 40).GetBigInt(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).GetDouble(), 2.5);
  EXPECT_EQ(Value::Varchar("hi").GetString(), "hi");
  EXPECT_TRUE(Value::Null(TypeId::kInteger).is_null());
  EXPECT_FALSE(Value::Integer(0).is_null());
}

TEST(ValueTest, CastLattice) {
  EXPECT_EQ(Value::Integer(5).CastTo(TypeId::kBigInt)->GetBigInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Integer(5).CastTo(TypeId::kDouble)->GetDouble(),
                   5.0);
  EXPECT_EQ(Value::Double(5.6).CastTo(TypeId::kInteger)->GetInteger(), 6);
  EXPECT_EQ(Value::Varchar("123").CastTo(TypeId::kInteger)->GetInteger(),
            123);
  EXPECT_EQ(Value::Integer(42).CastTo(TypeId::kVarchar)->GetString(), "42");
  EXPECT_FALSE(Value::Varchar("xyz").CastTo(TypeId::kInteger).ok());
  // NULL casts stay NULL.
  EXPECT_TRUE(Value::Null(TypeId::kInteger)
                  .CastTo(TypeId::kDouble)
                  ->is_null());
}

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(Value::Null(TypeId::kInteger).Compare(Value::Integer(0)), 0);
  EXPECT_EQ(Value::Integer(3).Compare(Value::Integer(3)), 0);
  EXPECT_GT(Value::Varchar("b").Compare(Value::Varchar("a")), 0);
  EXPECT_LT(Value::Double(1.5).Compare(Value::Double(2.5)), 0);
}

TEST(ValueTest, MixedNumericCompare) {
  EXPECT_EQ(Value::Integer(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Integer(2).Compare(Value::Double(2.5)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Integer(5).Hash(), Value::Integer(5).Hash());
  EXPECT_EQ(Value::Varchar("abc").Hash(), Value::Varchar("abc").Hash());
  EXPECT_NE(Value::Varchar("abc").Hash(), Value::Varchar("abd").Hash());
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(date::FromYMD(1970, 1, 1), 0);
  EXPECT_EQ(date::FromYMD(1970, 1, 2), 1);
  EXPECT_EQ(date::FromYMD(2000, 3, 1), 11017);
  EXPECT_EQ(date::ToString(0), "1970-01-01");
  EXPECT_EQ(date::ToString(date::FromYMD(1998, 9, 2)), "1998-09-02");
}

TEST(DateTest, ParseAndComponents) {
  auto d = date::FromString("2024-02-29");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(date::Year(*d), 2024);
  EXPECT_EQ(date::Month(*d), 2);
  EXPECT_EQ(date::Day(*d), 29);
  EXPECT_FALSE(date::FromString("not a date").ok());
}

// Property: ToYMD(FromYMD(y,m,d)) is the identity over a broad range.
class DateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTrip, RoundTripsYear) {
  int year = GetParam();
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  for (int m = 1; m <= 12; m++) {
    int max_day = kDays[m - 1];
    if (m == 2 && (year % 4 == 0 && (year % 100 != 0 || year % 400 == 0))) {
      max_day = 29;
    }
    for (int d = 1; d <= max_day; d += 7) {
      int32_t days = date::FromYMD(year, m, d);
      int32_t y2, m2, d2;
      date::ToYMD(days, &y2, &m2, &d2);
      EXPECT_EQ(y2, year);
      EXPECT_EQ(m2, m);
      EXPECT_EQ(d2, d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Years, DateRoundTrip,
                         ::testing::Values(1970, 1992, 1996, 1998, 2000,
                                           2024, 2100, 1900));

TEST(StringUtilTest, CaseAndTrim) {
  EXPECT_EQ(StringUtil::Upper("MiXeD"), "MIXED");
  EXPECT_EQ(StringUtil::Lower("MiXeD"), "mixed");
  EXPECT_TRUE(StringUtil::CIEquals("SELECT", "select"));
  EXPECT_EQ(StringUtil::Trim("  x  "), "x");
}

TEST(StringUtilTest, SplitJoin) {
  auto parts = StringUtil::Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StringUtil::Join({"x", "y"}, "-"), "x-y");
}

TEST(StringUtilTest, LikePatterns) {
  auto like = [](const std::string& s, const std::string& p) {
    return StringUtil::Like(s.data(), s.size(), p.data(), p.size());
  };
  EXPECT_TRUE(like("PROMO BRUSHED TIN", "PROMO%"));
  EXPECT_FALSE(like("STANDARD TIN", "PROMO%"));
  EXPECT_TRUE(like("hello", "h_llo"));
  EXPECT_TRUE(like("hello", "%"));
  EXPECT_TRUE(like("", "%"));
  EXPECT_FALSE(like("", "_"));
  EXPECT_TRUE(like("abcabc", "%abc"));
  EXPECT_TRUE(like("a%b", "a%b"));
  EXPECT_TRUE(like("xayb", "x%y%"));
  EXPECT_FALSE(like("ab", "a_b"));
}

TEST(ChecksumTest, KnownVectors) {
  // CRC32-C of "123456789" is 0xE3069283 (standard check value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(ChecksumTest, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(4096);
  RandomEngine rng(1);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  uint32_t crc = Crc32c(data.data(), data.size());
  for (int trial = 0; trial < 64; trial++) {
    size_t bit = rng.Next() % (data.size() * 8);
    data[bit / 8] ^= uint8_t(1) << (bit % 8);
    EXPECT_NE(Crc32c(data.data(), data.size()), crc)
        << "bit flip undetected at " << bit;
    data[bit / 8] ^= uint8_t(1) << (bit % 8);  // restore
  }
  EXPECT_EQ(Crc32c(data.data(), data.size()), crc);
}

TEST(ChecksumTest, AlignmentIndependent) {
  std::vector<uint8_t> data(128, 0xAB);
  uint32_t base = Crc32c(data.data(), 64);
  // Same bytes at a misaligned offset must produce the same CRC.
  EXPECT_EQ(Crc32c(data.data() + 3, 64), base);
}

TEST(ArenaTest, AllocationAndStrings) {
  ArenaAllocator arena(64);
  uint8_t* p1 = arena.Allocate(10);
  uint8_t* p2 = arena.Allocate(10);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % 8, 0u);
  StringRef s = arena.AddString("hello world", 11);
  EXPECT_EQ(s.ToString(), "hello world");
  // Growth beyond the initial chunk.
  arena.Allocate(1024);
  EXPECT_GT(arena.TotalCapacity(), 64u);
  arena.Reset();
  EXPECT_EQ(arena.TotalUsed(), 0u);
}

TEST(SerializerTest, RoundTrip) {
  BinaryWriter w;
  w.WriteU32(42);
  w.WriteI64(-7);
  w.WriteDouble(3.25);
  w.WriteString("mallard");
  w.WriteBool(true);
  BinaryReader r(w.data().data(), w.size());
  uint32_t u;
  int64_t i;
  double d;
  std::string s;
  bool b;
  ASSERT_TRUE(r.ReadU32(&u).ok());
  ASSERT_TRUE(r.ReadI64(&i).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadBool(&b).ok());
  EXPECT_EQ(u, 42u);
  EXPECT_EQ(i, -7);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(s, "mallard");
  EXPECT_TRUE(b);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, BoundsChecked) {
  BinaryWriter w;
  w.WriteU32(1000000);  // claims a huge string
  BinaryReader r(w.data().data(), w.size());
  std::string s;
  EXPECT_TRUE(r.ReadString(&s).IsCorruption());
}

TEST(RandomTest, DeterministicAndUniformish) {
  RandomEngine a(7), b(7), c(8);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  EXPECT_NE(a.Next(), c.Next());
  // Bounds respected.
  RandomEngine r(3);
  for (int i = 0; i < 1000; i++) {
    int64_t v = r.NextInt(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace mallard
