// Unit tests for the vector layer: validity, vectors, chunks, serde.

#include <gtest/gtest.h>

#include "mallard/vector/chunk_serde.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {
namespace {

TEST(ValidityMaskTest, AllValidFastPath) {
  ValidityMask mask;
  EXPECT_TRUE(mask.AllValid());
  EXPECT_TRUE(mask.RowIsValid(0));
  EXPECT_TRUE(mask.RowIsValid(kVectorSize - 1));
  mask.SetInvalid(5);
  EXPECT_FALSE(mask.AllValid());
  EXPECT_FALSE(mask.RowIsValid(5));
  EXPECT_TRUE(mask.RowIsValid(4));
  mask.SetValid(5);
  EXPECT_TRUE(mask.RowIsValid(5));
}

TEST(ValidityMaskTest, CountInvalid) {
  ValidityMask mask;
  EXPECT_EQ(mask.CountInvalid(100), 0u);
  mask.SetInvalid(3);
  mask.SetInvalid(64);
  mask.SetInvalid(99);
  EXPECT_EQ(mask.CountInvalid(100), 3u);
  EXPECT_EQ(mask.CountInvalid(50), 1u);
}

TEST(VectorTest, SetGetAllTypes) {
  struct Case {
    TypeId type;
    Value value;
  };
  std::vector<Case> cases = {
      {TypeId::kBoolean, Value::Boolean(true)},
      {TypeId::kInteger, Value::Integer(-42)},
      {TypeId::kBigInt, Value::BigInt(1LL << 50)},
      {TypeId::kDouble, Value::Double(2.718)},
      {TypeId::kVarchar, Value::Varchar("quack")},
      {TypeId::kDate, Value::Date(12345)},
      {TypeId::kTimestamp, Value::Timestamp(987654321)},
  };
  for (const auto& c : cases) {
    Vector v(c.type);
    v.SetValue(0, c.value);
    v.SetValue(1, Value::Null(c.type));
    EXPECT_TRUE(v.GetValue(0) == c.value) << TypeIdToString(c.type);
    EXPECT_TRUE(v.GetValue(1).is_null());
  }
}

TEST(VectorTest, CopyFromPreservesStringsAndNulls) {
  Vector src(TypeId::kVarchar);
  src.SetValue(0, Value::Varchar("a"));
  src.SetValue(1, Value::Null(TypeId::kVarchar));
  src.SetValue(2, Value::Varchar("ccc"));
  Vector dst(TypeId::kVarchar);
  dst.CopyFrom(src, 3);
  // Mutating the source heap must not affect the copy.
  src.Reset();
  src.SetValue(0, Value::Varchar("overwritten"));
  EXPECT_EQ(dst.GetValue(0).GetString(), "a");
  EXPECT_TRUE(dst.GetValue(1).is_null());
  EXPECT_EQ(dst.GetValue(2).GetString(), "ccc");
}

TEST(VectorTest, CopySelection) {
  Vector src(TypeId::kInteger);
  for (int i = 0; i < 10; i++) src.SetValue(i, Value::Integer(i * 10));
  src.SetValue(7, Value::Null(TypeId::kInteger));
  uint32_t sel[] = {1, 7, 9};
  Vector dst(TypeId::kInteger);
  dst.CopySelection(src, sel, 3);
  EXPECT_EQ(dst.GetValue(0).GetInteger(), 10);
  EXPECT_TRUE(dst.GetValue(1).is_null());
  EXPECT_EQ(dst.GetValue(2).GetInteger(), 90);
}

TEST(VectorTest, ReferenceSharesBuffer) {
  Vector a(TypeId::kInteger);
  a.SetValue(0, Value::Integer(1));
  Vector b(TypeId::kInteger);
  b.Reference(a);
  EXPECT_EQ(b.GetValue(0).GetInteger(), 1);
  EXPECT_EQ(a.raw_data(), b.raw_data());
}

TEST(VectorTest, ResetDetachesSharedBuffer) {
  // A vector referenced elsewhere must not be clobbered by Reset+reuse —
  // the zero-copy hand-over guarantee of the client API.
  Vector a(TypeId::kInteger);
  a.SetValue(0, Value::Integer(111));
  Vector b(TypeId::kInteger);
  b.Reference(a);
  a.Reset();
  a.SetValue(0, Value::Integer(222));
  EXPECT_EQ(b.GetValue(0).GetInteger(), 111);
  EXPECT_EQ(a.GetValue(0).GetInteger(), 222);
}

TEST(DataChunkTest, InitializeAndTypes) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kInteger, TypeId::kVarchar});
  EXPECT_EQ(chunk.ColumnCount(), 2u);
  EXPECT_EQ(chunk.size(), 0u);
  EXPECT_EQ(chunk.Types()[1], TypeId::kVarchar);
}

TEST(DataChunkTest, AppendAcrossChunks) {
  DataChunk src;
  src.Initialize({TypeId::kInteger});
  for (idx_t i = 0; i < 100; i++) {
    src.SetValue(0, i, Value::Integer(static_cast<int32_t>(i)));
  }
  src.SetCardinality(100);
  DataChunk dst;
  dst.Initialize({TypeId::kInteger});
  idx_t copied = dst.Append(src);
  EXPECT_EQ(copied, 100u);
  EXPECT_EQ(dst.size(), 100u);
  EXPECT_EQ(dst.GetValue(0, 99).GetInteger(), 99);
}

class ChunkSerdeTest : public ::testing::TestWithParam<TypeId> {};

TEST_P(ChunkSerdeTest, RoundTripsWithNulls) {
  TypeId type = GetParam();
  DataChunk chunk;
  chunk.Initialize({type, TypeId::kInteger});
  idx_t rows = 777;
  for (idx_t i = 0; i < rows; i++) {
    if (i % 5 == 0) {
      chunk.SetValue(0, i, Value::Null(type));
    } else {
      switch (type) {
        case TypeId::kBoolean:
          chunk.SetValue(0, i, Value::Boolean(i % 2 == 0));
          break;
        case TypeId::kInteger:
          chunk.SetValue(0, i, Value::Integer(static_cast<int32_t>(i)));
          break;
        case TypeId::kBigInt:
          chunk.SetValue(0, i, Value::BigInt(static_cast<int64_t>(i) << 30));
          break;
        case TypeId::kDouble:
          chunk.SetValue(0, i, Value::Double(i * 0.5));
          break;
        case TypeId::kVarchar:
          chunk.SetValue(0, i,
                         Value::Varchar("s" + std::to_string(i * 7)));
          break;
        case TypeId::kDate:
          chunk.SetValue(0, i, Value::Date(static_cast<int32_t>(i)));
          break;
        default:
          break;
      }
    }
    chunk.SetValue(1, i, Value::Integer(static_cast<int32_t>(i * 3)));
  }
  chunk.SetCardinality(rows);

  BinaryWriter writer;
  SerializeChunk(chunk, &writer);
  BinaryReader reader(writer.data().data(), writer.size());
  DataChunk loaded;
  ASSERT_TRUE(DeserializeChunk(&reader, &loaded).ok());
  ASSERT_EQ(loaded.size(), rows);
  for (idx_t i = 0; i < rows; i++) {
    EXPECT_TRUE(loaded.GetValue(0, i) == chunk.GetValue(0, i) ||
                (loaded.GetValue(0, i).is_null() &&
                 chunk.GetValue(0, i).is_null()))
        << "row " << i;
    EXPECT_EQ(loaded.GetValue(1, i).GetInteger(),
              static_cast<int32_t>(i * 3));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ChunkSerdeTest,
                         ::testing::Values(TypeId::kBoolean, TypeId::kInteger,
                                           TypeId::kBigInt, TypeId::kDouble,
                                           TypeId::kVarchar, TypeId::kDate));

TEST(ChunkSerdeTest, RejectsCorruptedPayload) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kVarchar});
  chunk.SetValue(0, 0, Value::Varchar("payload"));
  chunk.SetCardinality(1);
  BinaryWriter writer;
  SerializeChunk(chunk, &writer);
  // Truncate: must fail gracefully, not crash.
  BinaryReader reader(writer.data().data(), writer.size() / 2);
  DataChunk loaded;
  EXPECT_FALSE(DeserializeChunk(&reader, &loaded).ok());
}

}  // namespace
}  // namespace mallard
