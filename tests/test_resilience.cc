// Resilience tests: memory-test algorithms against simulated DRAM
// faults, compression codecs, failure model (Table 1), fault injector.

#include <gtest/gtest.h>

#include "mallard/common/random.h"
#include "mallard/compression/codec.h"
#include "mallard/resilience/failure_model.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/resilience/memtest.h"

namespace mallard {
namespace {

// --- memtest ---------------------------------------------------------------

TEST(MemtestTest, HealthyMemoryPassesAllTests) {
  std::vector<uint8_t> ram(64 * 1024);
  DirectMemory mem(ram.data(), ram.size());
  EXPECT_TRUE(WalkingBitsTest(mem).passed);
  EXPECT_TRUE(MovingInversionsTest(mem, 0x5555555555555555ULL, 2).passed);
  EXPECT_TRUE(AddressTest(mem).passed);
}

class StuckBitTest : public ::testing::TestWithParam<int> {};

TEST_P(StuckBitTest, WalkingBitsDetectsStuckCells) {
  int n_faults = GetParam();
  SimulatedDimm dimm(32 * 1024);
  RandomEngine rng(n_faults);
  std::set<uint64_t> expected;
  for (int i = 0; i < n_faults; i++) {
    MemoryFault fault;
    fault.kind = rng.NextBool(0.5) ? MemoryFault::Kind::kStuckAtZero
                                   : MemoryFault::Kind::kStuckAtOne;
    fault.word_index = rng.Next() % dimm.SizeWords();
    fault.bit = static_cast<uint8_t>(rng.Next() % 64);
    dimm.AddFault(fault);
    expected.insert(fault.word_index);
  }
  MemtestResult result = WalkingBitsTest(dimm);
  EXPECT_FALSE(result.passed);
  // Every faulty word must be flagged.
  for (uint64_t w : expected) {
    EXPECT_TRUE(std::find(result.bad_words.begin(), result.bad_words.end(),
                          w) != result.bad_words.end())
        << "missed stuck bit in word " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(FaultCounts, StuckBitTest,
                         ::testing::Values(1, 2, 8, 32));

TEST(MemtestTest, MovingInversionsDetectsCouplingFaults) {
  // Coupling faults (writing one cell flips a neighbor) are the
  // "intermittent and data-dependent errors" the paper says simple
  // pattern tests miss (section 3).
  SimulatedDimm dimm(16 * 1024);
  MemoryFault fault;
  fault.kind = MemoryFault::Kind::kCoupling;
  fault.word_index = 100;
  fault.neighbor_index = 99;  // writing word 100 disturbs word 99
  fault.bit = 0;
  fault.neighbor_bit = 7;
  dimm.AddFault(fault);
  MemtestResult result =
      MovingInversionsTest(dimm, 0xAAAAAAAAAAAAAAAAULL, 2);
  EXPECT_FALSE(result.passed);
}

TEST(MemtestTest, AddressTestDetectsAddressingFault) {
  // A stuck address line manifests as two cells aliasing; model via a
  // stuck-at fault on a high bit of the stored index.
  SimulatedDimm dimm(16 * 1024);
  MemoryFault fault;
  fault.kind = MemoryFault::Kind::kStuckAtZero;
  fault.word_index = 1027;
  fault.bit = 1;
  dimm.AddFault(fault);
  MemtestResult result = AddressTest(dimm);
  EXPECT_FALSE(result.passed);
  ASSERT_FALSE(result.bad_words.empty());
  EXPECT_EQ(result.bad_words[0], 1027u);
}

TEST(MemtestTest, TrafficAccounting) {
  std::vector<uint8_t> ram(8 * 1024);
  DirectMemory mem(ram.data(), ram.size());
  MemtestResult r = MovingInversionsTest(mem, 0x5555555555555555ULL, 1);
  // 7 passes over the words (1 fill + 2x read+write + 1 verify + ...).
  EXPECT_EQ(r.traffic_bytes, ram.size() * 7);
}

// --- fault injector ----------------------------------------------------------

TEST(FaultInjectorTest, OneShotFiresExactlyOnce) {
  auto& fi = FaultInjector::Get();
  fi.Reset();
  fi.ArmOnce(FaultSite::kFsyncFailure);
  EXPECT_TRUE(fi.ShouldFire(FaultSite::kFsyncFailure));
  EXPECT_FALSE(fi.ShouldFire(FaultSite::kFsyncFailure));
  EXPECT_EQ(fi.FireCount(FaultSite::kFsyncFailure), 1u);
  fi.Reset();
}

TEST(FaultInjectorTest, ProbabilityZeroNeverFires) {
  auto& fi = FaultInjector::Get();
  fi.Reset();
  for (int i = 0; i < 1000; i++) {
    EXPECT_FALSE(fi.ShouldFire(FaultSite::kBlockRead));
  }
}

TEST(FaultInjectorTest, FlipRandomBitActuallyFlips) {
  auto& fi = FaultInjector::Get();
  std::vector<uint8_t> data(128, 0);
  uint64_t bit = fi.FlipRandomBit(data.data(), data.size());
  EXPECT_EQ(data[bit / 8], uint8_t(1) << (bit % 8));
}

// --- compression -------------------------------------------------------------

class CodecRoundTrip
    : public ::testing::TestWithParam<std::pair<CompressionLevel, int>> {};

TEST_P(CodecRoundTrip, RandomAndStructuredPayloads) {
  auto [level, seed] = GetParam();
  const Codec* codec = CodecForLevel(level);
  ASSERT_NE(codec, nullptr);
  RandomEngine rng(seed);
  std::vector<std::vector<uint8_t>> payloads;
  // Random bytes (incompressible).
  std::vector<uint8_t> random(5000);
  for (auto& b : random) b = static_cast<uint8_t>(rng.Next());
  payloads.push_back(random);
  // Long runs (RLE-friendly).
  std::vector<uint8_t> runs;
  for (int r = 0; r < 50; r++) {
    runs.insert(runs.end(), rng.Next() % 300,
                static_cast<uint8_t>(rng.Next()));
  }
  payloads.push_back(runs);
  // Repeated structure (LZ-friendly).
  std::vector<uint8_t> repeated;
  std::string phrase = "embedded analytical data management ";
  for (int r = 0; r < 100; r++) {
    repeated.insert(repeated.end(), phrase.begin(), phrase.end());
  }
  payloads.push_back(repeated);
  // Edge cases.
  payloads.push_back({});
  payloads.push_back({0x42});
  payloads.push_back(std::vector<uint8_t>(129, 0x7));  // run > control max

  for (const auto& payload : payloads) {
    std::vector<uint8_t> compressed, decompressed;
    codec->Compress(payload.data(), payload.size(), &compressed);
    Status status = codec->Decompress(compressed.data(), compressed.size(),
                                      &decompressed);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(decompressed, payload) << codec->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodecRoundTrip,
    ::testing::Values(std::make_pair(CompressionLevel::kLight, 1),
                      std::make_pair(CompressionLevel::kLight, 2),
                      std::make_pair(CompressionLevel::kHeavy, 1),
                      std::make_pair(CompressionLevel::kHeavy, 2)));

TEST(CodecTest, CompressionActuallyShrinksCompressibleData) {
  std::vector<uint8_t> zeros(100000, 0);
  std::vector<uint8_t> out;
  CodecForLevel(CompressionLevel::kLight)
      ->Compress(zeros.data(), zeros.size(), &out);
  EXPECT_LT(out.size(), zeros.size() / 20);
  CodecForLevel(CompressionLevel::kHeavy)
      ->Compress(zeros.data(), zeros.size(), &out);
  EXPECT_LT(out.size(), zeros.size() / 20);
}

TEST(CodecTest, HeavyBeatsLightOnStructuredData) {
  std::string phrase = "quarterly revenue by region and segment ";
  std::vector<uint8_t> data;
  for (int i = 0; i < 500; i++) {
    data.insert(data.end(), phrase.begin(), phrase.end());
  }
  std::vector<uint8_t> light, heavy;
  CodecForLevel(CompressionLevel::kLight)
      ->Compress(data.data(), data.size(), &light);
  CodecForLevel(CompressionLevel::kHeavy)
      ->Compress(data.data(), data.size(), &heavy);
  EXPECT_LT(heavy.size(), light.size());
}

TEST(CodecTest, DecompressRejectsGarbage) {
  std::vector<uint8_t> garbage = {0xFF, 0x01, 0x02};
  std::vector<uint8_t> out;
  // LZ match referencing before the start of output must error.
  EXPECT_FALSE(CodecForLevel(CompressionLevel::kHeavy)
                   ->Decompress(garbage.data(), garbage.size(), &out)
                   .ok());
}

TEST(BitpackTest, RoundTripAndCompactness) {
  RandomEngine rng(5);
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; i++) {
    values.push_back(1000000 + rng.NextInt(0, 255));  // 8-bit range
  }
  std::vector<uint8_t> packed;
  bitpack::Pack(values.data(), values.size(), &packed);
  EXPECT_LT(packed.size(), values.size() * 2);  // ~1 byte/value + header
  std::vector<int64_t> unpacked;
  ASSERT_TRUE(bitpack::Unpack(packed.data(), packed.size(), &unpacked).ok());
  EXPECT_EQ(unpacked, values);
}

TEST(BitpackTest, ConstantColumnIsNearFree) {
  std::vector<int64_t> values(10000, 42);
  std::vector<uint8_t> packed;
  bitpack::Pack(values.data(), values.size(), &packed);
  EXPECT_LT(packed.size(), 32u);
  std::vector<int64_t> unpacked;
  ASSERT_TRUE(bitpack::Unpack(packed.data(), packed.size(), &unpacked).ok());
  EXPECT_EQ(unpacked, values);
}

// --- failure model (Table 1) -------------------------------------------------

TEST(FailureModelTest, ReproducesTable1) {
  FailureModelConfig config;  // defaults = the paper's cited rates
  FailureModelResult result = SimulateFleet(config, 2000000, 42);
  // Table 1 row 1: CPU 1 in 190, then 1 in 2.9.
  EXPECT_NEAR(result.cpu.OneIn(result.cpu.PrFirst()), 190.0, 15.0);
  EXPECT_NEAR(result.cpu.OneIn(result.cpu.PrSecondGivenFirst()), 2.9, 0.3);
  // Row 2: DRAM 1 in 1700, then 1 in 12.
  EXPECT_NEAR(result.dram.OneIn(result.dram.PrFirst()), 1700.0, 200.0);
  EXPECT_NEAR(result.dram.OneIn(result.dram.PrSecondGivenFirst()), 12.0,
              1.5);
  // Row 3: disk 1 in 270, then 1 in 3.5.
  EXPECT_NEAR(result.disk.OneIn(result.disk.PrFirst()), 270.0, 20.0);
  EXPECT_NEAR(result.disk.OneIn(result.disk.PrSecondGivenFirst()), 3.5,
              0.4);
}

TEST(FailureModelTest, DeterministicForSeed) {
  FailureModelConfig config;
  auto a = SimulateFleet(config, 10000, 7);
  auto b = SimulateFleet(config, 10000, 7);
  EXPECT_EQ(a.cpu.first_failures, b.cpu.first_failures);
  EXPECT_EQ(a.dram.second_failures, b.dram.second_failures);
}

TEST(FailureModelTest, EscalationVisible) {
  FailureModelConfig config;
  auto result = SimulateFleet(config, 500000, 3);
  // Recidivism must be orders of magnitude above the base rate.
  EXPECT_GT(result.cpu.PrSecondGivenFirst(), result.cpu.PrFirst() * 20);
  EXPECT_GT(result.dram.PrSecondGivenFirst(), result.dram.PrFirst() * 20);
}

}  // namespace
}  // namespace mallard
