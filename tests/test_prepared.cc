// Prepared-statement API tests: Prepare / Bind / Execute round-trips,
// re-execution without re-planning, parameter typing, and the error
// paths (unbound, out-of-range, type mismatch, invalid SQL, dropped
// table) — the client-API surface of paper section 3.

#include <gtest/gtest.h>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/main/prepared_statement.h"

namespace mallard {
namespace {

class PreparedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    con_ = std::make_unique<Connection>(db_.get());
    ASSERT_TRUE(con_->Query("CREATE TABLE t (a INTEGER, s VARCHAR)").ok());
    ASSERT_TRUE(con_->Query("INSERT INTO t VALUES "
                            "(1, 'one'), (2, 'two'), (3, 'three'), "
                            "(4, 'four'), (5, 'two')")
                    .ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> con_;
};

TEST_F(PreparedTest, RoundTripWithMixedPlaceholders) {
  // The acceptance query: '?' and '$N' placeholders in one statement.
  auto prepared = con_->Prepare("SELECT a FROM t WHERE a > ? AND s = $2");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto& stmt = *prepared;
  EXPECT_EQ(stmt->ParameterCount(), 2u);
  EXPECT_EQ(stmt->ParameterType(1), TypeId::kInteger);
  EXPECT_EQ(stmt->ParameterType(2), TypeId::kVarchar);

  ASSERT_TRUE(stmt->Bind(1, 1).ok());
  ASSERT_TRUE(stmt->Bind(2, "two").ok());
  auto r1 = stmt->Execute();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_EQ((*r1)->RowCount(), 2u);  // a in {2, 5}

  // Re-bind and re-execute: different results, no re-parse/re-plan.
  ASSERT_TRUE(stmt->Bind(1, 4).ok());
  auto r2 = stmt->Execute();
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ((*r2)->RowCount(), 1u);
  EXPECT_EQ((*r2)->GetValue(0, 0).GetInteger(), 5);

  ASSERT_TRUE(stmt->Bind(1, 0).ok());
  ASSERT_TRUE(stmt->Bind(2, "three").ok());
  auto r3 = stmt->Execute();
  ASSERT_TRUE(r3.ok());
  ASSERT_EQ((*r3)->RowCount(), 1u);
  EXPECT_EQ((*r3)->GetValue(0, 0).GetInteger(), 3);
}

TEST_F(PreparedTest, ExecuteStreamDeliversChunks) {
  auto prepared = con_->Prepare("SELECT a FROM t WHERE a >= $1");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE((*prepared)->Bind(1, 2).ok());
  auto stream = (*prepared)->ExecuteStream();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  idx_t rows = 0;
  while (true) {
    auto chunk = (*stream)->Fetch();
    ASSERT_TRUE(chunk.ok());
    if (!*chunk) break;
    rows += (*chunk)->size();
  }
  EXPECT_EQ(rows, 4u);
  // Streaming again after re-binding works too.
  ASSERT_TRUE((*stream)->Close().ok());
  ASSERT_TRUE((*prepared)->Bind(1, 5).ok());
  auto stream2 = (*prepared)->ExecuteStream();
  ASSERT_TRUE(stream2.ok());
  auto chunk = (*stream2)->Fetch();
  ASSERT_TRUE(chunk.ok());
  ASSERT_NE(*chunk, nullptr);
  EXPECT_EQ((*chunk)->size(), 1u);
}

TEST_F(PreparedTest, PreparedInsertReExecutes) {
  ASSERT_TRUE(con_->Query("CREATE TABLE log (id INTEGER, v DOUBLE)").ok());
  auto prepared = con_->Prepare("INSERT INTO log VALUES (?, ?)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ((*prepared)->ParameterCount(), 2u);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE((*prepared)->Bind(1, i).ok());
    ASSERT_TRUE((*prepared)->Bind(2, i * 0.5).ok());
    auto r = (*prepared)->Execute();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
  }
  auto check = con_->Query("SELECT count(*), sum(v) FROM log");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ((*check)->GetValue(0, 0).GetBigInt(), 100);
  EXPECT_DOUBLE_EQ((*check)->GetValue(1, 0).GetDouble(), 99 * 100 / 2 * 0.5);
}

TEST_F(PreparedTest, PreparedUpdateAndDelete) {
  auto update = con_->Prepare("UPDATE t SET s = $2 WHERE a = $1");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  ASSERT_TRUE((*update)->Bind(1, 1).ok());
  ASSERT_TRUE((*update)->Bind(2, "uno").ok());
  auto r = (*update)->Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);

  auto del = con_->Prepare("DELETE FROM t WHERE a > ?");
  ASSERT_TRUE(del.ok());
  ASSERT_TRUE((*del)->Bind(1, 3).ok());
  r = (*del)->Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 2);
  auto check = con_->Query("SELECT count(*) FROM t WHERE s = 'uno'");
  EXPECT_EQ((*check)->GetValue(0, 0).GetBigInt(), 1);
}

// --- error paths ------------------------------------------------------------

TEST_F(PreparedTest, ExecuteWithUnboundParameterFails) {
  auto prepared = con_->Prepare("SELECT a FROM t WHERE a > $1 AND s = $2");
  ASSERT_TRUE(prepared.ok());
  auto r = (*prepared)->Execute();
  EXPECT_FALSE(r.ok());
  // Binding only one of two parameters still fails.
  ASSERT_TRUE((*prepared)->Bind(1, 0).ok());
  r = (*prepared)->Execute();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("$2"), std::string::npos);
  // Binding the rest makes it succeed.
  ASSERT_TRUE((*prepared)->Bind(2, "two").ok());
  EXPECT_TRUE((*prepared)->Execute().ok());
  // ClearBindings() returns to the unbound state.
  (*prepared)->ClearBindings();
  EXPECT_FALSE((*prepared)->Execute().ok());
}

TEST_F(PreparedTest, BindOutOfRangeIndexFails) {
  auto prepared = con_->Prepare("SELECT a FROM t WHERE a > $1");
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE((*prepared)->Bind(0, 1).ok());  // indexes are 1-based
  EXPECT_FALSE((*prepared)->Bind(2, 1).ok());
  EXPECT_FALSE((*prepared)->Bind(99, 1).ok());
  EXPECT_TRUE((*prepared)->Bind(1, 1).ok());
}

TEST_F(PreparedTest, TypeMismatchedBindFails) {
  auto prepared = con_->Prepare("SELECT a FROM t WHERE a > $1");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ((*prepared)->ParameterType(1), TypeId::kInteger);
  EXPECT_FALSE((*prepared)->Bind(1, "not a number").ok());
  // Numeric strings and exact-type values are fine.
  EXPECT_TRUE((*prepared)->Bind(1, "3").ok());
  auto r = (*prepared)->Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->RowCount(), 2u);
}

TEST_F(PreparedTest, NullBindings) {
  auto prepared = con_->Prepare("SELECT count(*) FROM t WHERE a > $1");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE((*prepared)->BindNull(1).ok());
  auto r = (*prepared)->Execute();
  ASSERT_TRUE(r.ok());
  // a > NULL matches nothing.
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 0);
}

TEST_F(PreparedTest, PrepareInvalidSqlFailsAndRecovers) {
  EXPECT_FALSE(con_->Prepare("SELEKT 1").ok());
  EXPECT_FALSE(con_->Prepare("SELECT FROM t").ok());
  EXPECT_FALSE(con_->Prepare("SELECT * FROM missing_table").ok());
  // Two statements cannot be prepared as one unit.
  EXPECT_FALSE(con_->Prepare("SELECT 1; SELECT 2").ok());
  // DDL is not preparable.
  EXPECT_FALSE(con_->Prepare("CREATE TABLE x (a INTEGER)").ok());
  // The connection is unaffected: a correct re-Prepare works.
  auto ok = con_->Prepare("SELECT a FROM t WHERE a = ?");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_TRUE((*ok)->Bind(1, 2).ok());
  EXPECT_TRUE((*ok)->Execute().ok());
}

TEST_F(PreparedTest, ExecuteAfterTableDroppedFails) {
  auto prepared = con_->Prepare("SELECT a FROM t WHERE a > $1");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE((*prepared)->Bind(1, 0).ok());
  ASSERT_TRUE((*prepared)->Execute().ok());
  ASSERT_TRUE(con_->Query("DROP TABLE t").ok());
  auto r = (*prepared)->Execute();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("does not exist"), std::string::npos);
}

TEST_F(PreparedTest, SurvivesUnrelatedDdlByReplanning) {
  auto prepared = con_->Prepare("SELECT count(*) FROM t WHERE a > ?");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE((*prepared)->Bind(1, 0).ok());
  auto r1 = (*prepared)->Execute();
  ASSERT_TRUE(r1.ok());
  // DDL on another table bumps the catalog version; the statement
  // re-plans transparently and keeps its bindings.
  ASSERT_TRUE(con_->Query("CREATE TABLE other (x INTEGER)").ok());
  auto r2 = (*prepared)->Execute();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ((*r2)->GetValue(0, 0).GetBigInt(),
            (*r1)->GetValue(0, 0).GetBigInt());
}

TEST_F(PreparedTest, PreparedSeesNewlyCommittedData) {
  auto prepared = con_->Prepare("SELECT count(*) FROM t WHERE a > ?");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE((*prepared)->Bind(1, 0).ok());
  auto r1 = (*prepared)->Execute();
  ASSERT_TRUE(r1.ok());
  int64_t before = (*r1)->GetValue(0, 0).GetBigInt();
  ASSERT_TRUE(con_->Query("INSERT INTO t VALUES (42, 'new')").ok());
  auto r2 = (*prepared)->Execute();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->GetValue(0, 0).GetBigInt(), before + 1);
}

TEST_F(PreparedTest, DirectQueryWithPlaceholdersIsRejected) {
  auto r = con_->Query("SELECT a FROM t WHERE a > ?");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Prepare"), std::string::npos);
}

TEST_F(PreparedTest, BareParameterDefaultsToVarchar) {
  auto prepared = con_->Prepare("SELECT ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ((*prepared)->ParameterType(1), TypeId::kVarchar);
  ASSERT_TRUE((*prepared)->Bind(1, "hello").ok());
  auto r = (*prepared)->Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetString(), "hello");
}

TEST_F(PreparedTest, HugeParameterNumberIsAParseError) {
  // Must fail cleanly instead of resizing the parameter slots to $N.
  EXPECT_FALSE(con_->Prepare("SELECT $4000000000").ok());
  EXPECT_FALSE(con_->Prepare("SELECT $99999999999999999999").ok());
  EXPECT_FALSE(con_->Prepare("SELECT $65536").ok());
}

TEST_F(PreparedTest, SparseParameterNumberingRejectedAtPrepare) {
  auto r = con_->Prepare("SELECT a FROM t WHERE a = $2");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("$1"), std::string::npos);
  EXPECT_FALSE(con_->Prepare("SELECT a FROM t WHERE a = $1 AND a < $3").ok());
}

TEST_F(PreparedTest, PositionalAfterNumberedDoesNotAlias) {
  // '?' after '$1' must take slot 2, not re-use slot 1.
  auto prepared = con_->Prepare("SELECT a FROM t WHERE a = $1 AND s = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ((*prepared)->ParameterCount(), 2u);
  ASSERT_TRUE((*prepared)->Bind(1, 2).ok());
  ASSERT_TRUE((*prepared)->Bind(2, "two").ok());
  auto r = (*prepared)->Execute();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->RowCount(), 1u);
  EXPECT_EQ((*r)->GetValue(0, 0).GetInteger(), 2);
}

TEST_F(PreparedTest, ExecuteWhileStreamOpenIsRejected) {
  auto prepared = con_->Prepare("SELECT a FROM t WHERE a >= $1");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE((*prepared)->Bind(1, 1).ok());
  auto stream = (*prepared)->ExecuteStream();
  ASSERT_TRUE(stream.ok());
  // Both materialized and streaming re-execution must refuse while the
  // stream is live (they would rewind the plan under it).
  EXPECT_FALSE((*prepared)->Execute().ok());
  EXPECT_FALSE((*prepared)->ExecuteStream().ok());
  // After closing the stream, execution works again.
  ASSERT_TRUE((*stream)->Close().ok());
  EXPECT_TRUE((*prepared)->Execute().ok());
}

// --- MaterializedQueryResult::GetValue bounds (satellite) -------------------

TEST_F(PreparedTest, GetValueOutOfRangeReturnsNull) {
  auto r = con_->Query("SELECT a, s FROM t ORDER BY a");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->RowCount(), 5u);
  EXPECT_FALSE((*r)->GetValue(0, 0).is_null());
  // Row out of range.
  EXPECT_TRUE((*r)->GetValue(0, 5).is_null());
  EXPECT_TRUE((*r)->GetValue(0, 1u << 20).is_null());
  // Column out of range.
  EXPECT_TRUE((*r)->GetValue(2, 0).is_null());
  EXPECT_TRUE((*r)->GetValue(static_cast<idx_t>(-1), 0).is_null());
}

// --- transparent plan cache (satellite: named & cached statements) ----------

TEST_F(PreparedTest, PlanCacheReusesAndStaysCorrect) {
  idx_t initial = con_->PlanCacheSize();  // fixture INSERT is cached too
  auto r1 = con_->Query("SELECT a FROM t WHERE a > 2");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->RowCount(), 3u);
  EXPECT_EQ(con_->PlanCacheSize(), initial + 1);
  // Cached re-execution returns the same result...
  auto r2 = con_->Query("SELECT a FROM t WHERE a > 2");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->RowCount(), 3u);
  // ...and sees data committed after the plan was cached.
  ASSERT_TRUE(con_->Query("INSERT INTO t VALUES (9, 'nine')").ok());
  auto r3 = con_->Query("SELECT a FROM t WHERE a > 2");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ((*r3)->RowCount(), 4u);
}

TEST_F(PreparedTest, PlanCacheSurvivesDdlByReplanning) {
  auto r1 = con_->Query("SELECT a FROM t WHERE a > 2");
  ASSERT_TRUE(r1.ok());
  // Catalog version moves: the cached plan transparently re-plans.
  ASSERT_TRUE(con_->Query("CREATE TABLE other (x INTEGER)").ok());
  auto r2 = con_->Query("SELECT a FROM t WHERE a > 2");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->RowCount(), 3u);
  // Dropping the table turns the cached entry into a clean error and
  // evicts it; recreating the table works again.
  ASSERT_TRUE(con_->Query("DROP TABLE t").ok());
  EXPECT_FALSE(con_->Query("SELECT a FROM t WHERE a > 2").ok());
  ASSERT_TRUE(con_->Query("CREATE TABLE t (a INTEGER, s VARCHAR)").ok());
  auto r3 = con_->Query("SELECT a FROM t WHERE a > 2");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ((*r3)->RowCount(), 0u);
}

TEST_F(PreparedTest, PlanCacheCachesDmlToo) {
  ASSERT_TRUE(con_->Query("CREATE TABLE sink (x INTEGER)").ok());
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(con_->Query("INSERT INTO sink VALUES (1)").ok());
  }
  auto r = con_->Query("SELECT count(*) FROM sink");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 3);
}

TEST_F(PreparedTest, PlanCacheEvictsLeastRecentlyUsed) {
  // Fill the cache past capacity with distinct texts; it stays bounded.
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        con_->Query("SELECT a FROM t WHERE a > " + std::to_string(i)).ok());
  }
  EXPECT_LE(con_->PlanCacheSize(), 64u);
}

TEST_F(PreparedTest, PlanCachePragmaDisables) {
  ASSERT_TRUE(con_->Query("SELECT a FROM t").ok());
  EXPECT_GE(con_->PlanCacheSize(), 1u);
  ASSERT_TRUE(con_->Query("PRAGMA plan_cache=off").ok());
  EXPECT_EQ(con_->PlanCacheSize(), 0u);
  ASSERT_TRUE(con_->Query("SELECT a FROM t").ok());
  EXPECT_EQ(con_->PlanCacheSize(), 0u);
  ASSERT_TRUE(con_->Query("PRAGMA plan_cache=on").ok());
  ASSERT_TRUE(con_->Query("SELECT a FROM t").ok());
  EXPECT_EQ(con_->PlanCacheSize(), 1u);
}

TEST_F(PreparedTest, PlanCacheDoesNotPinExecutionMemory) {
  // A cached join plan must not keep its build-side hash table (pinned,
  // non-spillable buffer segments) alive while the connection is idle.
  ASSERT_TRUE(con_->Query("CREATE TABLE big (k INTEGER, v INTEGER)").ok());
  std::string ins = "INSERT INTO big VALUES (0,0)";
  for (int i = 1; i < 20000; i++) {
    ins += ",(" + std::to_string(i) + "," + std::to_string(i) + ")";
  }
  ASSERT_TRUE(con_->Query(ins).ok());
  uint64_t before = db_->buffers().memory_used();
  auto r = con_->Query(
      "SELECT count(*) FROM t JOIN big ON t.a = big.k");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(con_->PlanCacheSize(), 1u);
  // The ~1MB build segment is released once the query finishes, even
  // though the plan stays cached.
  EXPECT_LT(db_->buffers().memory_used(), before + (1u << 18));
}

TEST_F(PreparedTest, PlanCacheRespectsExplicitTransactions) {
  // Warm the cache, then use the same text inside a rolled-back
  // transaction: the rollback must win over the cached plan.
  ASSERT_TRUE(con_->Query("INSERT INTO t VALUES (7, 'seven')").ok());
  ASSERT_TRUE(con_->Query("BEGIN").ok());
  ASSERT_TRUE(con_->Query("INSERT INTO t VALUES (7, 'seven')").ok());
  ASSERT_TRUE(con_->Query("ROLLBACK").ok());
  auto r = con_->Query("SELECT count(*) FROM t WHERE a = 7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
}

}  // namespace
}  // namespace mallard
