// Property tests for sort-key encoding, external sort (including
// out-of-core spilling), Top-N, and join operators (hash vs merge vs
// reference results).

#include <gtest/gtest.h>

#include <algorithm>

#include "mallard/common/random.h"
#include "mallard/execution/external_sort.h"
#include "mallard/execution/row_codec.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

namespace mallard {
namespace {

// --- sort key encoding ------------------------------------------------------

TEST(SortKeyTest, OrderPreservedForIntegers) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kInteger});
  std::vector<int32_t> values = {INT32_MIN, -100, -1, 0, 1, 100, INT32_MAX};
  for (size_t i = 0; i < values.size(); i++) {
    chunk.SetValue(0, i, Value::Integer(values[i]));
  }
  chunk.SetCardinality(values.size());
  std::vector<SortSpec> specs = {{0, true, true}};
  std::string prev, cur;
  for (size_t i = 0; i < values.size(); i++) {
    EncodeSortKey(chunk, i, specs, &cur);
    if (i > 0) EXPECT_LT(prev, cur) << "at " << i;
    prev = cur;
  }
}

TEST(SortKeyTest, OrderPreservedForDoublesIncludingNegatives) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kDouble});
  std::vector<double> values = {-1e300, -2.5, -0.0, 0.0, 1e-10, 2.5, 1e300};
  for (size_t i = 0; i < values.size(); i++) {
    chunk.SetValue(0, i, Value::Double(values[i]));
  }
  chunk.SetCardinality(values.size());
  std::vector<SortSpec> specs = {{0, true, true}};
  std::string prev, cur;
  for (size_t i = 0; i < values.size(); i++) {
    EncodeSortKey(chunk, i, specs, &cur);
    if (i > 0) EXPECT_LE(prev, cur) << "at " << i;  // -0.0 == 0.0
    prev = cur;
  }
}

TEST(SortKeyTest, StringsWithEmbeddedZerosAndPrefixes) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kVarchar});
  std::vector<std::string> values = {"", std::string("a\0", 2), "a", "ab",
                                     "abc", "b"};
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < values.size(); i++) {
    chunk.SetValue(0, i, Value::Varchar(values[i]));
  }
  chunk.SetCardinality(values.size());
  std::vector<SortSpec> specs = {{0, true, true}};
  std::string prev, cur;
  for (size_t i = 0; i < values.size(); i++) {
    EncodeSortKey(chunk, i, specs, &cur);
    if (i > 0) EXPECT_LT(prev, cur) << "at " << i;
    prev = cur;
  }
}

TEST(SortKeyTest, DescendingAndNulls) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kInteger});
  chunk.SetValue(0, 0, Value::Integer(1));
  chunk.SetValue(0, 1, Value::Integer(2));
  chunk.SetValue(0, 2, Value::Null(TypeId::kInteger));
  chunk.SetCardinality(3);
  std::vector<SortSpec> desc = {{0, false, true}};
  std::string k1, k2, knull;
  EncodeSortKey(chunk, 0, desc, &k1);
  EncodeSortKey(chunk, 1, desc, &k2);
  EncodeSortKey(chunk, 2, desc, &knull);
  EXPECT_LT(k2, k1);      // descending: 2 before 1
  EXPECT_GT(knull, k1);   // nulls_first inverted by DESC -> last
}

// --- external sort ----------------------------------------------------------

struct SortCase {
  idx_t rows;
  uint64_t memory_limit;  // small limit forces runs + spilling
};

class ExternalSortTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(ExternalSortTest, MatchesStdSort) {
  SortCase param = GetParam();
  BufferManager buffers(param.memory_limit, "");
  GovernorConfig gc;
  gc.dbms_memory_limit = param.memory_limit;
  ResourceGovernor governor(gc);
  governor.SetBufferManager(&buffers);

  std::vector<TypeId> types = {TypeId::kInteger, TypeId::kVarchar,
                               TypeId::kDouble};
  std::vector<SortSpec> specs = {{0, true, true}, {1, false, true}};
  ExternalSort sorter(types, specs, &buffers, &governor);

  RandomEngine rng(GetParam().rows);
  struct Row {
    Value a, b, c;
  };
  std::vector<Row> reference;
  DataChunk chunk;
  chunk.Initialize(types);
  for (idx_t i = 0; i < param.rows; i++) {
    Row row;
    row.a = rng.NextBool(0.05) ? Value::Null(TypeId::kInteger)
                               : Value::Integer(rng.NextInt(-50, 50));
    row.b = Value::Varchar("s" + std::to_string(rng.NextInt(0, 20)));
    row.c = Value::Double(rng.NextDouble());
    idx_t pos = chunk.size();
    chunk.SetValue(0, pos, row.a);
    chunk.SetValue(1, pos, row.b);
    chunk.SetValue(2, pos, row.c);
    chunk.SetCardinality(pos + 1);
    reference.push_back(row);
    if (chunk.size() == kVectorSize) {
      ASSERT_TRUE(sorter.Sink(chunk).ok());
      chunk.Reset();
    }
  }
  if (chunk.size() > 0) ASSERT_TRUE(sorter.Sink(chunk).ok());
  ASSERT_TRUE(sorter.Finalize().ok());

  std::stable_sort(reference.begin(), reference.end(),
                   [](const Row& x, const Row& y) {
                     int cmp = x.a.Compare(y.a);
                     if (cmp != 0) return cmp < 0;
                     return y.b.Compare(x.b) < 0;  // b descending
                   });
  DataChunk out;
  out.Initialize(types);
  idx_t seen = 0;
  while (true) {
    ASSERT_TRUE(sorter.GetChunk(&out).ok());
    if (out.size() == 0) break;
    for (idx_t i = 0; i < out.size(); i++) {
      const Row& expect = reference[seen];
      Value a = out.GetValue(0, i);
      Value b = out.GetValue(1, i);
      ASSERT_EQ(a.Compare(expect.a), 0) << "row " << seen;
      ASSERT_EQ(b.Compare(expect.b), 0) << "row " << seen;
      seen++;
    }
  }
  EXPECT_EQ(seen, param.rows);
  if (param.memory_limit < 1 << 20) {
    // With a tiny budget the sort must have cut multiple runs.
    EXPECT_GT(sorter.stats().runs, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExternalSortTest,
    ::testing::Values(SortCase{0, 1 << 26}, SortCase{1, 1 << 26},
                      SortCase{1000, 1 << 26}, SortCase{50000, 1 << 26},
                      SortCase{50000, 1 << 22}));

// --- SQL-level join equivalence --------------------------------------------

class JoinEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    con_ = std::make_unique<Connection>(db_.get());
    RandomEngine rng(99);
    ASSERT_TRUE(con_->Query("CREATE TABLE lhs (k INTEGER, v INTEGER)").ok());
    ASSERT_TRUE(con_->Query("CREATE TABLE rhs (k INTEGER, w INTEGER)").ok());
    std::string l = "INSERT INTO lhs VALUES ";
    std::string r = "INSERT INTO rhs VALUES ";
    for (int i = 0; i < 3000; i++) {
      if (i > 0) {
        l += ",";
        r += ",";
      }
      // Skewed keys with NULLs: exercises duplicates and null handling.
      auto key = [&]() {
        return rng.NextBool(0.05)
                   ? std::string("NULL")
                   : std::to_string(rng.NextInt(0, 200));
      };
      l += "(" + key() + "," + std::to_string(i) + ")";
      r += "(" + key() + "," + std::to_string(i * 2) + ")";
    }
    ASSERT_TRUE(con_->Query(l).ok());
    ASSERT_TRUE(con_->Query(r).ok());
  }

  // Canonical row multiset of a query result.
  std::multiset<std::string> Rows(const std::string& sql) {
    auto r = con_->Query(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::multiset<std::string> rows;
    if (!r.ok()) return rows;
    for (idx_t i = 0; i < (*r)->RowCount(); i++) {
      std::string row;
      for (idx_t c = 0; c < (*r)->ColumnCount(); c++) {
        row += (*r)->GetValue(c, i).ToString() + "|";
      }
      rows.insert(row);
    }
    return rows;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> con_;
};

TEST_F(JoinEquivalenceTest, HashJoinEqualsMergeJoin) {
  // Same query executed with the hash join (big budget) and the
  // out-of-core merge join (forced by a tiny budget, paper section 4).
  auto hash_rows =
      Rows("SELECT lhs.k, v, w FROM lhs JOIN rhs ON lhs.k = rhs.k");
  ASSERT_TRUE(con_->Query("PRAGMA memory_limit = 1").ok());
  auto merge_rows =
      Rows("SELECT lhs.k, v, w FROM lhs JOIN rhs ON lhs.k = rhs.k");
  ASSERT_TRUE(con_->Query("PRAGMA memory_limit = 1073741824").ok());
  EXPECT_GT(hash_rows.size(), 0u);
  EXPECT_EQ(hash_rows, merge_rows);
}

TEST_F(JoinEquivalenceTest, JoinMatchesFilteredCrossProduct) {
  // Reference semantics: equi-join == cross product + filter.
  auto joined =
      Rows("SELECT v, w FROM lhs JOIN rhs ON lhs.k = rhs.k "
           "WHERE v < 50 AND w < 100");
  auto reference =
      Rows("SELECT v, w FROM lhs CROSS JOIN rhs "
           "WHERE lhs.k = rhs.k AND v < 50 AND w < 100");
  EXPECT_EQ(joined, reference);
}

TEST_F(JoinEquivalenceTest, LeftJoinKeepsAllLeftRows) {
  auto r = con_->Query(
      "SELECT count(*) FROM lhs LEFT JOIN rhs ON lhs.k = rhs.k AND 1 = 1");
  // (left join with composite condition unsupported -> allow error)
  auto total = con_->Query("SELECT count(*) FROM lhs");
  auto left = con_->Query(
      "SELECT count(*) FROM (SELECT v FROM lhs LEFT JOIN rhs "
      "ON lhs.k = rhs.k WHERE w IS NULL) q");
  auto inner_distinct = con_->Query(
      "SELECT count(*) FROM (SELECT DISTINCT v FROM lhs JOIN rhs "
      "ON lhs.k = rhs.k) q");
  ASSERT_TRUE(total.ok());
  ASSERT_TRUE(left.ok()) << left.status().ToString();
  ASSERT_TRUE(inner_distinct.ok());
  // Rows with no match + rows with >=1 match == all left rows.
  EXPECT_EQ((*left)->GetValue(0, 0).GetBigInt() +
                (*inner_distinct)->GetValue(0, 0).GetBigInt(),
            (*total)->GetValue(0, 0).GetBigInt());
  (void)r;
}

TEST_F(JoinEquivalenceTest, SemiAntiPartitionLeftSide) {
  auto semi = con_->Query(
      "SELECT count(*) FROM lhs SEMI JOIN rhs ON lhs.k = rhs.k");
  auto anti = con_->Query(
      "SELECT count(*) FROM lhs ANTI JOIN rhs ON lhs.k = rhs.k");
  auto total = con_->Query("SELECT count(*) FROM lhs");
  ASSERT_TRUE(semi.ok()) << semi.status().ToString();
  ASSERT_TRUE(anti.ok()) << anti.status().ToString();
  EXPECT_EQ((*semi)->GetValue(0, 0).GetBigInt() +
                (*anti)->GetValue(0, 0).GetBigInt(),
            (*total)->GetValue(0, 0).GetBigInt());
}

TEST_F(JoinEquivalenceTest, TopNMatchesSortLimit) {
  auto topn = Rows("SELECT v FROM lhs ORDER BY v DESC LIMIT 25");
  // Forcing the same result through a full sort + limit of a subquery.
  auto full = Rows(
      "SELECT v FROM (SELECT v FROM lhs ORDER BY v DESC) q LIMIT 25");
  EXPECT_EQ(topn.size(), 25u);
  EXPECT_EQ(topn, full);
}

}  // namespace
}  // namespace mallard
