// End-to-end corruption-resilience tests: spill-segment checksums catch
// on-disk flips, block corruption quarantines exactly one row group
// (salvage mode scans around it with exact skip counts), the transient
// retry loop heals with the documented backoff schedule, PRAGMA
// integrity_check reports per-object results, the WAL replay
// distinguishes a torn tail from mid-stream damage, and the memory
// self-test refuses to run on simulated bad RAM.

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/resilience/memtest.h"
#include "mallard/resilience/retry_policy.h"
#include "mallard/storage/buffer_manager.h"
#include "mallard/storage/wal.h"

namespace mallard {
namespace {

std::string TempPath(const std::string& tag) {
  return "/tmp/mallard_test_" + tag + "_" + std::to_string(::getpid());
}

void Cleanup(const std::string& path) {
  RemoveFile(path);
  RemoveFile(path + ".wal");
  RemoveFile(path + ".spill");
}

class IntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("integrity");
    Cleanup(path_);
    FaultInjector::Get().Reset();
    GlobalResilienceStats().Reset();
  }
  void TearDown() override {
    Cleanup(path_);
    FaultInjector::Get().Reset();
    RetryPolicy::SetGlobalSleepHook(nullptr);
  }

  std::string path_;
};

// ---------------------------------------------------------------------------
// Retry policy: backoff schedule and transient-fault arming
// ---------------------------------------------------------------------------

TEST_F(IntegrityTest, RetryHealsTransientFaultWithExponentialBackoff) {
  std::vector<uint64_t> sleeps;
  RetryPolicy::SetGlobalSleepHook(
      [&](uint64_t micros) { sleeps.push_back(micros); });
  GlobalResilienceStats().Reset();

  int calls = 0;
  RetryPolicy policy;
  Status status = policy.Execute([&]() -> Status {
    if (++calls < 3) return Status::IOError("transient");
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
  // Default schedule: 100us, then x4.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 100u);
  EXPECT_EQ(sleeps[1], 400u);

  ResilienceStats& stats = GlobalResilienceStats();
  EXPECT_EQ(stats.io_attempts.load(), 3u);
  EXPECT_EQ(stats.io_retries.load(), 2u);
  EXPECT_EQ(stats.retry_successes.load(), 1u);
  EXPECT_EQ(stats.retry_exhausted.load(), 0u);
  EXPECT_EQ(stats.backoff_micros.load(), 500u);
}

TEST_F(IntegrityTest, RetryExhaustsOnPermanentFault) {
  RetryPolicy::SetGlobalSleepHook([](uint64_t) {});
  GlobalResilienceStats().Reset();
  int calls = 0;
  Status status = RetryPolicy().Execute(
      [&]() -> Status { calls++; return Status::IOError("permanent"); });
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(calls, 3);  // bounded: default max_attempts
  EXPECT_EQ(GlobalResilienceStats().retry_exhausted.load(), 1u);
}

TEST_F(IntegrityTest, NonRetryableErrorsFailImmediately) {
  int calls = 0;
  Status status = RetryPolicy().Execute(
      [&]() -> Status { calls++; return Status::Corruption("bad"); });
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_EQ(calls, 1);  // default predicate retries only IO errors
}

TEST_F(IntegrityTest, ArmTransientFiresExactlyNTimes) {
  auto& injector = FaultInjector::Get();
  injector.ArmTransient(FaultSite::kSpillRead, 2);
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kSpillRead));
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kSpillRead));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kSpillRead));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kSpillRead));
}

// ---------------------------------------------------------------------------
// Spill-segment checksums: an on-disk flip surfaces as kCorruption
// ---------------------------------------------------------------------------

TEST_F(IntegrityTest, FlippedSpillSegmentIsDetected) {
  const uint64_t kSize = 48 * 1024;
  std::string spill_path = path_ + ".spill";
  BufferManager buffers(64 * 1024, spill_path);

  auto a = buffers.Allocate(kSize);
  ASSERT_TRUE(a.ok());
  for (uint64_t i = 0; i < kSize; i++) {
    a->data()[i] = static_cast<uint8_t>(i * 13);
  }
  std::shared_ptr<ManagedBuffer> buffer = a->buffer();
  a->Release();

  // Force the eviction (and thus the spill write) of `a`.
  auto b = buffers.Allocate(kSize);
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(buffer->resident());
  ASSERT_GE(buffers.GetStats().spill_count, 1u);

  // Flip one byte of the spilled copy on disk.
  {
    std::fstream file(spill_path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(100);
    char byte;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(100);
    file.write(&byte, 1);
  }

  GlobalResilienceStats().Reset();
  auto pinned = buffers.Pin(buffer);
  ASSERT_FALSE(pinned.ok());
  EXPECT_TRUE(pinned.status().IsCorruption()) << pinned.status().ToString();
  EXPECT_GE(GlobalResilienceStats().spill_checksum_failures.load(), 1u);
}

// ---------------------------------------------------------------------------
// Block corruption: quarantine + salvage with exact skip counts
// ---------------------------------------------------------------------------

class QuarantineTest : public IntegrityTest {
 protected:
  static constexpr int64_t kRows = 1000;

  // Builds a one-table database, checkpoints it, and flips one bit in
  // the row-group payload chain (the live block that is not the catalog
  // chain head) so the next open must quarantine the group.
  void BuildCorruptDatabase() {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    {
      auto appender = Appender::Create(db->get(), "t");
      ASSERT_TRUE(appender.ok());
      for (int64_t i = 0; i < kRows; i++) {
        (*appender)->Append(static_cast<int32_t>(i));
        ASSERT_TRUE((*appender)->EndRow().ok());
      }
      ASSERT_TRUE((*appender)->Close().ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    (*db)->config().checkpoint_on_close = false;

    BlockManager* blocks = (*db)->blocks();
    block_id_t catalog_head = blocks->header().meta_block;
    std::vector<block_id_t> live = blocks->LiveBlocks();
    ASSERT_GE(live.size(), 2u);
    bool corrupted = false;
    for (block_id_t id : live) {
      if (id == catalog_head) continue;
      ASSERT_TRUE(blocks->CorruptBlockOnDisk(id, 777).ok());
      corrupted = true;
      break;
    }
    ASSERT_TRUE(corrupted);
  }
};

TEST_F(QuarantineTest, CorruptGroupQuarantinesAndFailsQueriesByName) {
  BuildCorruptDatabase();
  GlobalResilienceStats().Reset();

  // Reopen succeeds: the damage is contained to one quarantined group,
  // not a failed open.
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GE(GlobalResilienceStats().quarantined_row_groups.load(), 1u);

  // A scan through the quarantined group fails with kCorruption naming
  // the object — never wrong rows.
  Connection con(db->get());
  auto r = con.Query("SELECT count(*) FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("quarantined"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("'t'"), std::string::npos)
      << r.status().message();

  // Checkpointing a table with quarantined data is refused: detected
  // corruption must not be rewritten into a "clean" checkpoint.
  EXPECT_TRUE((*db)->Checkpoint().IsCorruption());
  (*db)->config().checkpoint_on_close = false;
}

TEST_F(QuarantineTest, SalvageModeSkipsQuarantinedGroupWithExactCounts) {
  BuildCorruptDatabase();
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());

  GlobalResilienceStats().Reset();
  ASSERT_TRUE(con.Query("PRAGMA salvage_mode=on").ok());
  auto r = con.Query("SELECT count(*) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // All kRows rows lived in the one quarantined group.
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 0);
  EXPECT_EQ(GlobalResilienceStats().salvage_skipped_groups.load(), 1u);
  EXPECT_EQ(GlobalResilienceStats().salvage_skipped_rows.load(),
            static_cast<uint64_t>(kRows));

  // Fresh rows append into a new group and are visible alongside the
  // salvaged remainder.
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (41), (42)").ok());
  r = con.Query("SELECT count(*) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 2);

  ASSERT_TRUE(con.Query("PRAGMA salvage_mode=off").ok());
  EXPECT_FALSE(con.Query("SELECT count(*) FROM t").ok());
  (*db)->config().checkpoint_on_close = false;
}

TEST_F(QuarantineTest, IntegrityCheckNamesTheQuarantinedGroup) {
  BuildCorruptDatabase();
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());

  auto r = con.Query("PRAGMA integrity_check");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool found_bad_group = false;
  for (idx_t row = 0; row < (*r)->RowCount(); row++) {
    std::string object = (*r)->GetValue(0, row).ToString();
    std::string status = (*r)->GetValue(1, row).ToString();
    if (object.find("table 't' row group") != std::string::npos &&
        status == "corrupt") {
      found_bad_group = true;
    }
  }
  EXPECT_TRUE(found_bad_group);
  (*db)->config().checkpoint_on_close = false;
}

// ---------------------------------------------------------------------------
// PRAGMA integrity_check / resilience_stats on a healthy database
// ---------------------------------------------------------------------------

TEST_F(IntegrityTest, IntegrityCheckCleanDatabaseShape) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ASSERT_TRUE(
      con.Query("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')").ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());

  auto r = con.Query("PRAGMA integrity_check");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->ColumnCount(), 3u);
  EXPECT_EQ((*r)->names()[0], "object");
  EXPECT_EQ((*r)->names()[1], "status");
  EXPECT_EQ((*r)->names()[2], "detail");
  ASSERT_GE((*r)->RowCount(), 3u);  // blocks, wal, table summaries
  bool saw_blocks = false, saw_wal = false, saw_table = false;
  for (idx_t row = 0; row < (*r)->RowCount(); row++) {
    std::string object = (*r)->GetValue(0, row).ToString();
    EXPECT_EQ((*r)->GetValue(1, row).ToString(), "ok") << object;
    saw_blocks |= object == "blocks";
    saw_wal |= object == "wal";
    saw_table |= object == "table 't'";
  }
  EXPECT_TRUE(saw_blocks);
  EXPECT_TRUE(saw_wal);
  EXPECT_TRUE(saw_table);

  auto stats = con.Query("PRAGMA resilience_stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ((*stats)->RowCount(), 1u);
  ASSERT_EQ((*stats)->ColumnCount(), 14u);
  // The scrub above walked objects and found nothing wrong.
  idx_t scrub_objects_col = 12, scrub_failures_col = 13;
  EXPECT_EQ((*stats)->names()[scrub_objects_col], "scrub_objects");
  EXPECT_GT((*stats)->GetValue(scrub_objects_col, 0).GetBigInt(), 0);
  EXPECT_EQ((*stats)->names()[scrub_failures_col], "scrub_failures");
  EXPECT_EQ((*stats)->GetValue(scrub_failures_col, 0).GetBigInt(), 0);
}

// ---------------------------------------------------------------------------
// WAL: torn tail recovers, mid-stream damage is a hard error
// ---------------------------------------------------------------------------

class WalDamageTest : public IntegrityTest {
 protected:
  // Leaves a database file plus a WAL holding the schema and two
  // committed inserts (no checkpoint on close, so reopen must replay).
  void BuildWalDatabase() {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (2)").ok());
    (*db)->config().checkpoint_on_close = false;
  }
};

TEST_F(WalDamageTest, TornTailIsTruncatedAndCounted) {
  BuildWalDatabase();
  // Crash mid-append: garbage after the last durable group.
  {
    std::ofstream wal(path_ + ".wal",
                      std::ios::binary | std::ios::app);
    ASSERT_TRUE(wal.is_open());
    const char garbage[] = "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff";
    wal.write(garbage, sizeof(garbage) - 1);
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  auto r = con.Query("SELECT count(*) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 2);
  auto stats = con.Query("PRAGMA wal_stats");
  ASSERT_TRUE(stats.ok());
  idx_t col = 0;
  for (; col < (*stats)->ColumnCount(); col++) {
    if ((*stats)->names()[col] == "torn_tail_recoveries") break;
  }
  ASSERT_LT(col, (*stats)->ColumnCount());
  EXPECT_EQ((*stats)->GetValue(col, 0).GetBigInt(), 1);
  (*db)->config().checkpoint_on_close = false;
}

TEST_F(WalDamageTest, MidStreamDamageRefusesToDropCommittedData) {
  BuildWalDatabase();
  // Flip a payload byte of the FIRST frame: valid committed frames
  // follow it, so truncating there would silently drop acknowledged
  // commits — replay must fail with kCorruption instead.
  {
    std::fstream wal(path_ + ".wal",
                     std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(wal.is_open());
    uint64_t offset = 16 + 8 + 2;  // header, frame header, payload byte 2
    wal.seekg(static_cast<std::streamoff>(offset));
    char byte;
    wal.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    wal.seekp(static_cast<std::streamoff>(offset));
    wal.write(&byte, 1);
  }
  auto db = Database::Open(path_);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption()) << db.status().ToString();
  EXPECT_NE(db.status().message().find("mid-stream"), std::string::npos)
      << db.status().message();
}

// ---------------------------------------------------------------------------
// Memory self-test at open
// ---------------------------------------------------------------------------

TEST_F(IntegrityTest, MemorySelfTestPassesOnHealthyRam) {
  std::vector<uint8_t> scratch(1 << 20);
  DirectMemory mem(scratch.data(), scratch.size());
  EXPECT_TRUE(RunMemorySelfTest(mem).ok());
}

TEST_F(IntegrityTest, MemorySelfTestFailsOnStuckBit) {
  SimulatedDimm dimm(1 << 20);
  MemoryFault fault;
  fault.kind = MemoryFault::Kind::kStuckAtOne;
  fault.word_index = 1234;
  fault.bit = 7;
  dimm.AddFault(fault);
  Status status = RunMemorySelfTest(dimm);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kHardwareFailure)
      << status.ToString();
}

TEST_F(IntegrityTest, VerifyMemoryConfigGatesOpen) {
  DBConfig config;
  config.verify_memory = true;  // healthy host RAM: open must succeed
  auto db = Database::Open(path_, config);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
}

// ---------------------------------------------------------------------------
// Statement timeout
// ---------------------------------------------------------------------------

TEST_F(IntegrityTest, StatementTimeoutInterruptsLongQuery) {
  auto db = Database::Open("");
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  {
    auto appender = Appender::Create(db->get(), "t");
    ASSERT_TRUE(appender.ok());
    for (int32_t i = 0; i < 20000; i++) {
      (*appender)->Append(i);
      ASSERT_TRUE((*appender)->EndRow().ok());
    }
    ASSERT_TRUE((*appender)->Close().ok());
  }
  ASSERT_TRUE(con.Query("PRAGMA statement_timeout_ms=1").ok());
  auto readback = con.Query("PRAGMA statement_timeout_ms");
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ((*readback)->GetValue(0, 0).GetBigInt(), 1);

  // Quadratic work: cannot finish within 1ms; must stop at a chunk
  // boundary with a clean timeout error.
  auto r = con.Query(
      "SELECT count(*) FROM t t1 CROSS JOIN t t2 WHERE t1.a < t2.a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInterrupted)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("timeout"), std::string::npos)
      << r.status().message();

  // Disabling the timeout restores normal execution.
  ASSERT_TRUE(con.Query("PRAGMA statement_timeout_ms=0").ok());
  auto ok = con.Query("SELECT count(*) FROM t");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)->GetValue(0, 0).GetBigInt(), 20000);
}

}  // namespace
}  // namespace mallard
