// Client API tests: appender, streaming results, value-based API,
// CSV ETL, governor behaviour, the socket client-server baseline, and
// the vectorized-vs-scalar expression equivalence property.

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>

#include "mallard/baseline/row_engine.h"
#include "mallard/common/random.h"
#include "mallard/etl/csv.h"
#include "mallard/expression/expression_executor.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/net/client_server.h"

namespace mallard {
namespace {

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    con_ = std::make_unique<Connection>(db_.get());
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> con_;
};

TEST_F(ApiTest, AppenderRowApi) {
  ASSERT_TRUE(
      con_->Query("CREATE TABLE t (a INTEGER, b VARCHAR, c DOUBLE)").ok());
  auto app = Appender::Create(db_.get(), "t");
  ASSERT_TRUE(app.ok());
  for (int i = 0; i < 5000; i++) {
    (*app)->Append(static_cast<int32_t>(i))
        .Append("row" + std::to_string(i))
        .Append(i * 0.5);
    ASSERT_TRUE((*app)->EndRow().ok());
  }
  (*app)->AppendNull();
  (*app)->AppendNull();
  (*app)->AppendNull();
  ASSERT_TRUE((*app)->EndRow().ok());
  ASSERT_TRUE((*app)->Close().ok());
  auto r = con_->Query("SELECT count(*), count(a), sum(a) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 5001);
  EXPECT_EQ((*r)->GetValue(1, 0).GetBigInt(), 5000);
  EXPECT_EQ((*r)->GetValue(2, 0).GetBigInt(), 12497500LL);
}

TEST_F(ApiTest, AppenderChunkApi) {
  // Paper section 5: the application fills a chunk and hands it over.
  ASSERT_TRUE(con_->Query("CREATE TABLE t (a INTEGER)").ok());
  DataChunk chunk;
  chunk.Initialize({TypeId::kInteger});
  int32_t* data = chunk.column(0).data<int32_t>();
  for (idx_t i = 0; i < kVectorSize; i++) {
    data[i] = static_cast<int32_t>(i);
  }
  chunk.SetCardinality(kVectorSize);
  auto app = Appender::Create(db_.get(), "t");
  ASSERT_TRUE((*app)->AppendChunk(chunk).ok());
  ASSERT_TRUE((*app)->Close().ok());
  auto r = con_->Query("SELECT count(*), max(a) FROM t");
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(),
            static_cast<int64_t>(kVectorSize));
  EXPECT_EQ((*r)->GetValue(1, 0).GetInteger(),
            static_cast<int32_t>(kVectorSize - 1));
}

TEST_F(ApiTest, AppenderTypeMismatchReported) {
  ASSERT_TRUE(con_->Query("CREATE TABLE t (a INTEGER)").ok());
  auto app = Appender::Create(db_.get(), "t");
  (*app)->Append("not a number");
  EXPECT_FALSE((*app)->EndRow().ok());
}

TEST_F(ApiTest, StreamingResultDeliversAllChunks) {
  ASSERT_TRUE(con_->Query("CREATE TABLE t (a INTEGER)").ok());
  std::string sql = "INSERT INTO t VALUES (0)";
  for (int i = 1; i < 6000; i++) sql += ",(" + std::to_string(i) + ")";
  ASSERT_TRUE(con_->Query(sql).ok());
  auto stream = con_->SendQuery("SELECT a FROM t");
  ASSERT_TRUE(stream.ok());
  idx_t rows = 0;
  int64_t sum = 0;
  while (true) {
    auto chunk = (*stream)->Fetch();
    ASSERT_TRUE(chunk.ok());
    if (!*chunk) break;
    rows += (*chunk)->size();
    const int32_t* data = (*chunk)->column(0).data<int32_t>();
    for (idx_t i = 0; i < (*chunk)->size(); i++) sum += data[i];
  }
  EXPECT_EQ(rows, 6000u);
  EXPECT_EQ(sum, 6000LL * 5999 / 2);
}

TEST_F(ApiTest, ValueApiMatchesChunkApi) {
  ASSERT_TRUE(con_->Query("CREATE TABLE t (a INTEGER, s VARCHAR)").ok());
  ASSERT_TRUE(
      con_->Query("INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'z')").ok());
  auto r = con_->Query("SELECT a, s FROM t ORDER BY a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 2).GetInteger(), 3);
  EXPECT_EQ((*r)->GetValue(1, 0).GetString(), "x");
}

TEST_F(ApiTest, ValueApiAfterPartialFetch) {
  // Mixing the two documented access styles: chunks handed over by
  // Fetch() read back as NULL values, rows still held stay readable.
  ASSERT_TRUE(con_->Query("CREATE TABLE t (a INTEGER)").ok());
  auto app = Appender::Create(db_.get(), "t");
  const idx_t kRows = 3 * kVectorSize;
  for (idx_t i = 0; i < kRows; i++) {
    (*app)->Append(static_cast<int32_t>(i));
    ASSERT_TRUE((*app)->EndRow().ok());
  }
  ASSERT_TRUE((*app)->Close().ok());
  auto r = con_->Query("SELECT a FROM t");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->RowCount(), kRows);
  auto first = (*r)->Fetch();
  ASSERT_TRUE(first.ok());
  ASSERT_NE(*first, nullptr);
  idx_t consumed = (*first)->size();
  ASSERT_LT(consumed, kRows);
  // Consumed region: NULL values, no crash; ToString still works.
  EXPECT_TRUE((*r)->GetValue(0, 0).is_null());
  EXPECT_TRUE((*r)->GetValue(0, consumed - 1).is_null());
  (void)(*r)->ToString();
  // Unfetched region still addresses the right rows.
  EXPECT_EQ((*r)->GetValue(0, consumed).GetInteger(),
            static_cast<int32_t>(consumed));
  EXPECT_EQ((*r)->GetValue(0, kRows - 1).GetInteger(),
            static_cast<int32_t>(kRows - 1));
}

// --- CSV ETL -----------------------------------------------------------------

class CsvTest : public ApiTest {
 protected:
  void SetUp() override {
    ApiTest::SetUp();
    path_ = "/tmp/mallard_csv_" + std::to_string(::getpid()) + ".csv";
    std::ofstream out(path_);
    out << "id,name,score,joined\n";
    out << "1,alice,3.5,2021-04-01\n";
    out << "2,\"bob, the builder\",4.25,2022-05-02\n";
    out << "3,carol,,2023-06-03\n";  // NULL score
  }
  void TearDown() override { RemoveFile(path_); }
  std::string path_;
};

TEST_F(CsvTest, SniffsSchema) {
  auto reader = CsvReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  const auto& cols = (*reader)->columns();
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_EQ(cols[0].name, "id");
  EXPECT_EQ(cols[0].type, TypeId::kBigInt);
  EXPECT_EQ(cols[1].type, TypeId::kVarchar);
  EXPECT_EQ(cols[2].type, TypeId::kDouble);
  EXPECT_EQ(cols[3].type, TypeId::kDate);
}

TEST_F(CsvTest, ReadCsvTableFunction) {
  auto r = con_->Query("SELECT count(*), sum(score) FROM read_csv('" +
                       path_ + "')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 3);
  EXPECT_DOUBLE_EQ((*r)->GetValue(1, 0).GetDouble(), 7.75);
}

TEST_F(CsvTest, QuotedFieldsAndNulls) {
  auto r = con_->Query("SELECT name FROM read_csv('" + path_ +
                       "') WHERE id = 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetString(), "bob, the builder");
  r = con_->Query("SELECT count(*) FROM read_csv('" + path_ +
                  "') WHERE score IS NULL");
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
}

TEST_F(CsvTest, CopyFromIntoTable) {
  ASSERT_TRUE(con_->Query("CREATE TABLE people (id BIGINT, name VARCHAR, "
                          "score DOUBLE, joined DATE)").ok());
  auto r = con_->Query("COPY people FROM '" + path_ + "'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 3);
  auto check = con_->Query("SELECT year(joined) FROM people WHERE id = 3");
  EXPECT_EQ((*check)->GetValue(0, 0).GetInteger(), 2023);
}

TEST_F(CsvTest, CopyToRoundTrip) {
  ASSERT_TRUE(con_->Query("CREATE TABLE src (a INTEGER, s VARCHAR)").ok());
  ASSERT_TRUE(con_->Query(
      "INSERT INTO src VALUES (1, 'plain'), (2, 'with,comma')").ok());
  std::string out_path = path_ + ".out";
  ASSERT_TRUE(con_->Query("COPY src TO '" + out_path + "'").ok());
  auto r = con_->Query("SELECT count(*) FROM read_csv('" + out_path +
                       "') WHERE s = 'with,comma'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
  RemoveFile(out_path);
}

// --- client-server baseline ----------------------------------------------------

TEST_F(ApiTest, SocketProtocolsMatchInProcessResults) {
  ASSERT_TRUE(con_->Query("CREATE TABLE t (a INTEGER, s VARCHAR)").ok());
  std::string sql = "INSERT INTO t VALUES (0, 's0')";
  for (int i = 1; i < 3000; i++) {
    sql += ",(" + std::to_string(i) + ",'s" + std::to_string(i) + "')";
  }
  ASSERT_TRUE(con_->Query(sql).ok());
  auto inproc = con_->Query("SELECT a, s FROM t ORDER BY a");
  ASSERT_TRUE(inproc.ok());
  for (net::Protocol protocol :
       {net::Protocol::kText, net::Protocol::kBinaryColumnar}) {
    auto server = net::QueryServer::Start(db_.get(), protocol);
    ASSERT_TRUE(server.ok());
    net::QueryClient client((*server)->client_fd(), protocol);
    auto remote = client.Query("SELECT a, s FROM t ORDER BY a");
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    ASSERT_EQ((*remote)->RowCount(), (*inproc)->RowCount());
    for (idx_t i = 0; i < 100; i++) {
      EXPECT_EQ((*remote)->GetValue(0, i).GetInteger(),
                (*inproc)->GetValue(0, i).GetInteger());
      EXPECT_EQ((*remote)->GetValue(1, i).GetString(),
                (*inproc)->GetValue(1, i).GetString());
    }
    EXPECT_GT((*server)->bytes_sent(), 0u);
  }
}

TEST_F(ApiTest, ServerReportsErrors) {
  auto server = net::QueryServer::Start(db_.get(), net::Protocol::kText);
  net::QueryClient client((*server)->client_fd(), net::Protocol::kText);
  auto result = client.Query("SELECT * FROM no_such_table");
  EXPECT_FALSE(result.ok());
}

// --- vectorized == scalar property ------------------------------------------

TEST_F(ApiTest, VectorizedEngineMatchesRowEngine) {
  // The tuple-at-a-time interpreter is an independent implementation of
  // the same semantics; random aggregation queries must agree.
  ASSERT_TRUE(
      con_->Query("CREATE TABLE t (g INTEGER, v INTEGER, d DOUBLE)").ok());
  RandomEngine rng(17);
  std::string sql = "INSERT INTO t VALUES ";
  for (int i = 0; i < 4000; i++) {
    if (i) sql += ",";
    std::string v = rng.NextBool(0.1) ? "NULL"
                                      : std::to_string(rng.NextInt(-99, 99));
    sql += "(" + std::to_string(rng.NextInt(0, 9)) + "," + v + "," +
           std::to_string(rng.NextInt(0, 1000)) + ".5)";
  }
  ASSERT_TRUE(con_->Query(sql).ok());

  // Vectorized result.
  auto vec = con_->Query(
      "SELECT g, count(*), count(v), sum(v), min(v), max(v), sum(d) "
      "FROM t WHERE v IS NULL OR v % 3 <> 0 GROUP BY g ORDER BY g");
  ASSERT_TRUE(vec.ok());

  // Row-engine result, built by hand against the same table.
  auto table = db_->catalog().GetTable("t");
  ASSERT_TRUE(table.ok());
  auto txn = db_->transactions().Begin();
  auto scan = std::make_unique<baseline::RowScan>(
      *table, txn.get(), std::vector<idx_t>{0, 1, 2});
  auto v_ref = [&](idx_t i, TypeId t) {
    return std::make_unique<BoundColumnRef>(i, t, "c");
  };
  // WHERE v IS NULL OR v % 3 <> 0
  std::vector<ExprPtr> disj;
  disj.push_back(std::make_unique<BoundIsNull>(v_ref(1, TypeId::kInteger),
                                               false));
  disj.push_back(std::make_unique<BoundComparison>(
      CompareOp::kNotEqual,
      std::make_unique<BoundArithmetic>(ArithOp::kModulo, TypeId::kInteger,
                                        v_ref(1, TypeId::kInteger),
                                        std::make_unique<BoundConstant>(
                                            Value::Integer(3))),
      std::make_unique<BoundConstant>(Value::Integer(0))));
  auto filter = std::make_unique<baseline::RowFilter>(
      std::make_unique<BoundConjunction>(false, std::move(disj)),
      std::move(scan));
  std::vector<ExprPtr> groups;
  groups.push_back(v_ref(0, TypeId::kInteger));
  std::vector<BoundAggregate> aggs;
  aggs.push_back({AggType::kCountStar, nullptr, TypeId::kBigInt});
  aggs.push_back({AggType::kCount, v_ref(1, TypeId::kInteger),
                  TypeId::kBigInt});
  aggs.push_back({AggType::kSum, v_ref(1, TypeId::kInteger),
                  TypeId::kBigInt});
  aggs.push_back({AggType::kMin, v_ref(1, TypeId::kInteger),
                  TypeId::kInteger});
  aggs.push_back({AggType::kMax, v_ref(1, TypeId::kInteger),
                  TypeId::kInteger});
  aggs.push_back({AggType::kSum, v_ref(2, TypeId::kDouble),
                  TypeId::kDouble});
  baseline::RowHashAggregate agg(std::move(groups), std::move(aggs),
                                 std::move(filter));
  std::vector<Value> row;
  idx_t group_index = 0;
  while (true) {
    auto has = agg.Next(&row);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    // Row engine emits groups in sorted order (std::map).
    for (idx_t c = 0; c < row.size(); c++) {
      Value expected = (*vec)->GetValue(c, group_index);
      EXPECT_EQ(row[c].Compare(expected), 0)
          << "group " << group_index << " col " << c << ": "
          << row[c].ToString() << " vs " << expected.ToString();
    }
    group_index++;
  }
  EXPECT_EQ(group_index, (*vec)->RowCount());
  ASSERT_TRUE(db_->transactions().Commit(txn.get()).ok());
}

// --- governor -----------------------------------------------------------------

TEST(GovernorTest, ManualModeUsesConfiguredCap) {
  GovernorConfig config;
  config.dbms_memory_limit = 123456;
  config.reactive = false;
  ResourceGovernor governor(config);
  EXPECT_EQ(governor.EffectiveMemoryBudget(), 123456u);
  EXPECT_EQ(governor.ChooseCompressionLevel(), CompressionLevel::kNone);
}

TEST(GovernorTest, ReactiveBudgetShrinksWithAppMemory) {
  GovernorConfig config;
  config.total_memory = 1000;
  config.dbms_memory_limit = 800;
  config.reactive = true;
  ResourceGovernor governor(config);
  SyntheticAppMonitor app;
  governor.SetMonitor(&app);
  app.SetMemory(0);
  uint64_t idle_budget = governor.EffectiveMemoryBudget();
  app.SetMemory(700);
  uint64_t pressured_budget = governor.EffectiveMemoryBudget();
  EXPECT_LT(pressured_budget, idle_budget);
  app.SetMemory(990);  // starved: small floor, never zero
  EXPECT_GT(governor.EffectiveMemoryBudget(), 0u);
}

TEST(GovernorTest, CompressionStaircase) {
  // The Figure 1 policy: none -> light -> heavy as app RAM grows.
  GovernorConfig config;
  config.total_memory = 1000;
  config.reactive = true;
  ResourceGovernor governor(config);
  SyntheticAppMonitor app;
  governor.SetMonitor(&app);
  app.SetMemory(100);
  EXPECT_EQ(governor.ChooseCompressionLevel(), CompressionLevel::kNone);
  app.SetMemory(600);
  EXPECT_EQ(governor.ChooseCompressionLevel(), CompressionLevel::kLight);
  app.SetMemory(900);
  EXPECT_EQ(governor.ChooseCompressionLevel(), CompressionLevel::kHeavy);
}

TEST(GovernorTest, JoinAlgorithmSwitchesUnderPressure) {
  GovernorConfig config;
  config.total_memory = 1 << 30;
  config.dbms_memory_limit = 1 << 20;  // 1MB
  ResourceGovernor governor(config);
  EXPECT_EQ(governor.ChooseJoinAlgorithm(1000), JoinAlgorithm::kHash);
  EXPECT_EQ(governor.ChooseJoinAlgorithm(100 << 20), JoinAlgorithm::kMerge);
}

}  // namespace
}  // namespace mallard
