// Tests for morsel-driven parallel execution (docs/CONCURRENCY.md):
// result equivalence against threads=1 for join and aggregation over
// multi-row-group tables, morsel counts smaller than the worker count,
// reactive mid-query thread-budget reduction via SyntheticAppMonitor,
// TaskScheduler semantics (clamping, error propagation, lazy pool), and
// the per-connection PRAGMA threads override. The whole file is part of
// the TSAN target in CI (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>

#include "mallard/governor/resource_governor.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/prepared_statement.h"
#include "mallard/parallel/morsel.h"
#include "mallard/parallel/task_scheduler.h"

namespace mallard {
namespace {

// --- TaskScheduler unit tests ----------------------------------------------

TEST(TaskSchedulerTest, RunsEveryWorkerExactlyOnce) {
  TaskScheduler scheduler(nullptr);
  std::atomic<int> calls{0};
  std::atomic<uint64_t> worker_mask{0};
  Status status = scheduler.Run(4, [&](int worker) {
    calls.fetch_add(1);
    worker_mask.fetch_or(uint64_t(1) << worker);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls.load(), 4);
  EXPECT_EQ(worker_mask.load(), 0b1111u);
  EXPECT_EQ(scheduler.pool_size(), 3);
}

TEST(TaskSchedulerTest, SingleThreadRunsInline) {
  TaskScheduler scheduler(nullptr);
  std::thread::id caller = std::this_thread::get_id();
  Status status = scheduler.Run(1, [&](int worker) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  // No pool thread was ever needed.
  EXPECT_EQ(scheduler.pool_size(), 0);
}

TEST(TaskSchedulerTest, PropagatesFirstWorkerError) {
  TaskScheduler scheduler(nullptr);
  Status status = scheduler.Run(4, [&](int worker) {
    if (worker == 2) return Status::Internal("worker 2 failed");
    return Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("worker 2 failed"), std::string::npos);
}

TEST(TaskSchedulerTest, GovernorClampsLaunchWidth) {
  GovernorConfig config;
  config.max_threads = 2;
  ResourceGovernor governor(config);
  TaskScheduler scheduler(&governor);
  std::atomic<int> calls{0};
  ASSERT_TRUE(scheduler.Run(8, [&](int) {
                         calls.fetch_add(1);
                         return Status::OK();
                       })
                  .ok());
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(scheduler.pool_size(), 1);
}

TEST(TaskSchedulerTest, PoolIsReusedAcrossRuns) {
  TaskScheduler scheduler(nullptr);
  for (int round = 0; round < 10; round++) {
    std::atomic<int> calls{0};
    ASSERT_TRUE(scheduler.Run(3, [&](int) {
                           calls.fetch_add(1);
                           return Status::OK();
                         })
                    .ok());
    EXPECT_EQ(calls.load(), 3);
  }
  EXPECT_EQ(scheduler.pool_size(), 2);
}

// --- Governor thread budget ------------------------------------------------

TEST(ThreadBudgetTest, ReactiveBudgetShrinksUnderAppCpuPressure) {
  GovernorConfig config;
  config.max_threads = 4;
  config.reactive = true;
  ResourceGovernor governor(config);
  SyntheticAppMonitor monitor;
  governor.SetMonitor(&monitor);

  monitor.SetCpu(0.0);
  EXPECT_EQ(governor.EffectiveThreadBudget(), 4);
  monitor.SetCpu(0.5);
  EXPECT_EQ(governor.EffectiveThreadBudget(), 2);
  monitor.SetCpu(1.0);
  EXPECT_EQ(governor.EffectiveThreadBudget(), 1);  // never starves to 0
  monitor.SetCpu(0.25);
  EXPECT_EQ(governor.EffectiveThreadBudget(), 3);
  EXPECT_EQ(governor.Sample().thread_budget, 3);

  // Manual mode ignores the monitor entirely.
  governor.SetReactive(false);
  monitor.SetCpu(1.0);
  EXPECT_EQ(governor.EffectiveThreadBudget(), 4);
}

// --- Morsel source ---------------------------------------------------------

TEST(MorselSourceTest, HandsOutEveryRowGroupExactlyOnce) {
  TableMorselSource source(10, nullptr, /*thread_limit=*/4);
  std::set<idx_t> seen;
  idx_t g;
  while (source.Next(0, &g)) seen.insert(g);
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
  EXPECT_FALSE(source.Next(1, &g));  // exhausted for everyone
  EXPECT_EQ(source.MorselsClaimed(0), 10u);
  EXPECT_EQ(source.MorselsClaimed(1), 0u);
}

TEST(MorselSourceTest, SurplusWorkersDrainWhenReactiveBudgetDrops) {
  GovernorConfig config;
  config.max_threads = 4;
  config.reactive = true;
  ResourceGovernor governor(config);
  SyntheticAppMonitor monitor;
  governor.SetMonitor(&monitor);
  monitor.SetCpu(0.0);

  TableMorselSource source(100, &governor, /*thread_limit=*/0);
  idx_t g;
  ASSERT_TRUE(source.Next(3, &g));  // full budget: worker 3 gets morsels

  // The application gets busy mid-query: budget 4 -> 1. Workers 1..3
  // stop at the next morsel boundary; worker 0 keeps the query going.
  monitor.SetCpu(1.0);
  EXPECT_FALSE(source.Next(3, &g));
  EXPECT_FALSE(source.Next(1, &g));
  EXPECT_TRUE(source.Next(0, &g));

  // Pressure clears: surplus workers would resume (the scheduler keeps
  // them parked only if the sink already joined).
  monitor.SetCpu(0.0);
  EXPECT_TRUE(source.Next(3, &g));
}

TEST(MorselSourceTest, PragmaOverridePinsBudgetAgainstMonitor) {
  GovernorConfig config;
  config.max_threads = 4;
  config.reactive = true;
  ResourceGovernor governor(config);
  SyntheticAppMonitor monitor;
  governor.SetMonitor(&monitor);
  monitor.SetCpu(1.0);  // reactive budget = 1

  // thread_limit > 0 (PRAGMA threads) wins over the reactive budget.
  TableMorselSource source(10, &governor, /*thread_limit=*/3);
  idx_t g;
  EXPECT_TRUE(source.Next(2, &g));
  EXPECT_FALSE(source.Next(3, &g));  // beyond the pinned limit
}

// --- SQL-level equivalence -------------------------------------------------

class ParallelSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    con_ = std::make_unique<Connection>(db_.get());
  }

  // Builds a table of `rows` rows spanning rows/kRowGroupSize row groups:
  // k cycles through `keys` values (plus NULLs every 97th row), v counts
  // up. Integer-only so parallel sums are bit-exact at any thread count.
  void FillKeyed(const std::string& table, int rows, int keys) {
    ASSERT_TRUE(
        con_->Query("CREATE TABLE " + table + " (k BIGINT, v BIGINT)").ok());
    std::string ins;
    for (int i = 0; i < rows; i++) {
      ins += ins.empty() ? "INSERT INTO " + table + " VALUES " : ",";
      std::string k =
          i % 97 == 0 ? "NULL" : std::to_string((i * 7919) % keys);
      ins += "(" + k + "," + std::to_string(i) + ")";
      if (ins.size() > (1u << 20)) {
        ASSERT_TRUE(con_->Query(ins).ok());
        ins.clear();
      }
    }
    if (!ins.empty()) ASSERT_TRUE(con_->Query(ins).ok());
  }

  // Bulk variant of FillKeyed through the Appender (large tables would
  // spend the whole test budget in INSERT parsing). Same shape: k
  // cycles through `keys` values with NULLs every 97th row — except
  // `keys` == 0, which makes every k distinct (k = row index).
  void FillAppender(const std::string& table, int rows, int keys) {
    ASSERT_TRUE(
        con_->Query("CREATE TABLE " + table + " (k BIGINT, v BIGINT)").ok());
    auto app = Appender::Create(db_.get(), table);
    ASSERT_TRUE(app.ok());
    for (int i = 0; i < rows; i++) {
      if (i % 97 == 0) {
        (*app)->AppendNull();
      } else {
        (*app)->Append(
            static_cast<int64_t>(keys ? (i * 7919LL) % keys : i));
      }
      (*app)->Append(static_cast<int64_t>(i));
      ASSERT_TRUE((*app)->EndRow().ok());
    }
    ASSERT_TRUE((*app)->Close().ok());
  }

  // Canonical row multiset of a query result (parallel plans may emit
  // groups/matches in a different order; SQL results are unordered).
  std::multiset<std::string> Rows(const std::string& sql) {
    auto r = con_->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    std::multiset<std::string> rows;
    if (!r.ok()) return rows;
    for (idx_t i = 0; i < (*r)->RowCount(); i++) {
      std::string row;
      for (idx_t c = 0; c < (*r)->ColumnCount(); c++) {
        row += (*r)->GetValue(c, i).ToString() + "|";
      }
      rows.insert(row);
    }
    return rows;
  }

  std::multiset<std::string> RowsAtThreads(int threads,
                                           const std::string& sql) {
    EXPECT_TRUE(
        con_->Query("PRAGMA threads = " + std::to_string(threads)).ok());
    return Rows(sql);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> con_;
};

TEST_F(ParallelSqlTest, AggregateMatchesSerialAcrossThreadCounts) {
  // ~5 row groups, 500 groups, NULL group included.
  FillKeyed("t", 40000, 500);
  const std::string sql =
      "SELECT k, count(*), sum(v), min(v), max(v) FROM t GROUP BY k";
  auto serial = RowsAtThreads(1, sql);
  EXPECT_EQ(serial.size(), 501u);  // 500 keys + NULL group
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(serial, RowsAtThreads(threads, sql)) << threads << " threads";
  }
}

TEST_F(ParallelSqlTest, UngroupedAggregateMatchesSerial) {
  FillKeyed("t", 30000, 100);
  const std::string sql =
      "SELECT count(*), count(k), sum(v), min(v), max(v) FROM t";
  auto serial = RowsAtThreads(1, sql);
  EXPECT_EQ(serial, RowsAtThreads(4, sql));
}

TEST_F(ParallelSqlTest, HashJoinMatchesSerialAcrossThreadCounts) {
  // Build side spans multiple row groups with duplicate and NULL keys.
  FillKeyed("probe_t", 6000, 300);
  FillKeyed("build_t", 30000, 300);
  const std::string sql =
      "SELECT probe_t.k, probe_t.v, build_t.v FROM probe_t "
      "JOIN build_t ON probe_t.k = build_t.k WHERE probe_t.v < 600";
  auto serial = RowsAtThreads(1, sql);
  EXPECT_GT(serial.size(), 0u);
  for (int threads : {2, 4}) {
    EXPECT_EQ(serial, RowsAtThreads(threads, sql)) << threads << " threads";
  }
  // Left/semi/anti run through the same parallel build.
  for (const char* shape :
       {"SELECT probe_t.v FROM probe_t LEFT JOIN build_t "
        "ON probe_t.k = build_t.k WHERE build_t.v IS NULL",
        "SELECT probe_t.v FROM probe_t SEMI JOIN build_t "
        "ON probe_t.k = build_t.k",
        "SELECT probe_t.v FROM probe_t ANTI JOIN build_t "
        "ON probe_t.k = build_t.k"}) {
    auto one = RowsAtThreads(1, shape);
    auto four = RowsAtThreads(4, shape);
    EXPECT_EQ(one, four) << shape;
  }
}

TEST_F(ParallelSqlTest, FilterAndProjectionCloneIntoWorkers) {
  FillKeyed("t", 40000, 50);
  const std::string sql =
      "SELECT k * 2, sum(v + 1) FROM t WHERE v % 3 = 0 AND k IS NOT NULL "
      "GROUP BY k * 2";
  auto serial = RowsAtThreads(1, sql);
  EXPECT_EQ(serial.size(), 50u);
  EXPECT_EQ(serial, RowsAtThreads(4, sql));
}

TEST_F(ParallelSqlTest, MorselCountSmallerThanThreadCount) {
  // One row group: the pipeline stays serial (nothing to split); with
  // two row groups, six of the eight requested workers find no morsel.
  FillKeyed("tiny", 100, 5);
  FillKeyed("two_groups", 10000, 5);
  for (const char* table : {"tiny", "two_groups"}) {
    std::string sql = std::string("SELECT k, count(*), sum(v) FROM ") +
                      table + " GROUP BY k";
    auto serial = RowsAtThreads(1, sql);
    EXPECT_EQ(serial, RowsAtThreads(8, sql)) << table;
  }
}

TEST_F(ParallelSqlTest, PerConnectionThreadOverride) {
  FillKeyed("t", 20000, 20);
  Connection other(db_.get());
  ASSERT_TRUE(con_->Query("PRAGMA threads = 2").ok());
  EXPECT_EQ(con_->ThreadOverride(), 2);
  // The second connection keeps the governor default.
  EXPECT_EQ(other.ThreadOverride(), 0);
  // 0 clears the override (back to the governor's budget); negatives
  // and garbage are rejected.
  ASSERT_TRUE(con_->Query("PRAGMA threads = 0").ok());
  EXPECT_EQ(con_->ThreadOverride(), 0);
  EXPECT_FALSE(con_->Query("PRAGMA threads = -1").ok());
  ASSERT_TRUE(con_->Query("PRAGMA threads = 2").ok());
  // Both produce the same (correct) result.
  auto a = Rows("SELECT k, sum(v) FROM t GROUP BY k");
  auto b = [&] {
    auto r = other.Query("SELECT k, sum(v) FROM t GROUP BY k");
    EXPECT_TRUE(r.ok());
    std::multiset<std::string> rows;
    for (idx_t i = 0; i < (*r)->RowCount(); i++) {
      std::string row;
      for (idx_t c = 0; c < (*r)->ColumnCount(); c++) {
        row += (*r)->GetValue(c, i).ToString() + "|";
      }
      rows.insert(row);
    }
    return rows;
  }();
  EXPECT_EQ(a, b);
}

TEST_F(ParallelSqlTest, MidQueryBudgetReductionKeepsResultsExact) {
  // A reactive governor whose monitor flips to "application busy" while
  // parallel aggregations are running: surplus workers drain at morsel
  // boundaries and results stay identical. The cap is raised explicitly
  // so the pipeline fans out even on a small CI host (the default cap
  // is the core count).
  FillKeyed("t", 60000, 1000);
  SyntheticAppMonitor monitor;
  db_->governor().SetThreads(4);
  db_->governor().SetMonitor(&monitor);
  db_->governor().SetReactive(true);
  monitor.SetCpu(0.0);

  const std::string sql =
      "SELECT k, count(*), sum(v), min(v), max(v) FROM t GROUP BY k";
  auto expected = Rows(sql);
  EXPECT_EQ(expected.size(), 1001u);

  std::atomic<bool> stop{false};
  std::thread pressure([&] {
    // Oscillate the app's CPU usage as fast as possible while queries
    // run, forcing budget re-evaluation at many morsel boundaries.
    bool busy = false;
    while (!stop.load()) {
      monitor.SetCpu(busy ? 1.0 : 0.0);
      busy = !busy;
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 20; round++) {
    EXPECT_EQ(expected, Rows(sql)) << "round " << round;
  }
  stop.store(true);
  pressure.join();
  db_->governor().SetReactive(false);
  db_->governor().SetMonitor(nullptr);
}

TEST_F(ParallelSqlTest, PragmaThreadsReadbackReportsEffectiveBudget) {
  // No value = readback: the pinned override, else the governor budget.
  db_->governor().SetThreads(4);
  auto r = con_->Query("PRAGMA threads");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 4);
  ASSERT_TRUE(con_->Query("PRAGMA threads = 3").ok());
  r = con_->Query("PRAGMA threads");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 3);
  // The readback is per-connection: a sibling connection still follows
  // the governor.
  Connection other(db_.get());
  auto other_r = other.Query("PRAGMA threads");
  ASSERT_TRUE(other_r.ok());
  EXPECT_EQ((*other_r)->GetValue(0, 0).GetBigInt(), 4);
  // Clearing the override returns to the governor's budget, which the
  // readback tracks live (reactive shrink included).
  ASSERT_TRUE(con_->Query("PRAGMA threads = 0").ok());
  SyntheticAppMonitor monitor;
  db_->governor().SetMonitor(&monitor);
  db_->governor().SetReactive(true);
  monitor.SetCpu(0.5);
  r = con_->Query("PRAGMA threads");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 2);
  db_->governor().SetReactive(false);
  db_->governor().SetMonitor(nullptr);
}

TEST_F(ParallelSqlTest, HashJoinProbeMatchesSerialAcrossThreadCounts) {
  // The PROBE side spans many row groups while the build side fits in
  // one, so the parallel phase under test is the probe (the build stays
  // serial: one row group = nothing to split). Keys duplicate on both
  // sides and go NULL every 97th row (FillKeyed).
  FillKeyed("probe_t", 50000, 400);
  FillKeyed("build_t", 5000, 400);
  const std::string inner =
      "SELECT probe_t.k, probe_t.v, build_t.v FROM probe_t "
      "JOIN build_t ON probe_t.k = build_t.k WHERE probe_t.v % 20 = 0";
  auto serial = RowsAtThreads(1, inner);
  EXPECT_GT(serial.size(), 0u);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(serial, RowsAtThreads(threads, inner)) << threads
                                                     << " threads";
  }
  // Left join emits the NULL-padded build columns; semi/anti emit probe
  // rows only. All three probe morsel-parallel through the same cursor.
  for (const char* shape :
       {"SELECT probe_t.k, probe_t.v, build_t.v FROM probe_t "
        "LEFT JOIN build_t ON probe_t.k = build_t.k "
        "WHERE probe_t.v < 2500",
        "SELECT probe_t.v FROM probe_t SEMI JOIN build_t "
        "ON probe_t.k = build_t.k",
        "SELECT probe_t.v FROM probe_t ANTI JOIN build_t "
        "ON probe_t.k = build_t.k"}) {
    auto one = RowsAtThreads(1, shape);
    auto four = RowsAtThreads(4, shape);
    EXPECT_EQ(one, four) << shape;
  }
  // Both sides multi-row-group: parallel build AND parallel probe in
  // one query.
  FillKeyed("big_build", 30000, 400);
  const std::string both =
      "SELECT count(*), sum(probe_t.v + big_build.v) FROM probe_t "
      "JOIN big_build ON probe_t.k = big_build.k";
  EXPECT_EQ(RowsAtThreads(1, both), RowsAtThreads(4, both));
}

TEST_F(ParallelSqlTest, HighFanoutParallelProbeRunsInBoundedPasses) {
  // Every probe key matches ~50 build rows: the join output (~3M rows)
  // is far larger than one pass's per-worker byte budget under a small
  // memory limit, so the probe must run several drain/resume passes —
  // and still produce exactly the serial result.
  FillKeyed("probe_t", 60000, 100);
  FillKeyed("build_t", 5000, 100);
  ASSERT_TRUE(con_->Query("PRAGMA memory_limit = 16000000").ok());
  const std::string sql =
      "SELECT count(*), sum(probe_t.v + build_t.v) FROM probe_t "
      "JOIN build_t ON probe_t.k = build_t.k";
  auto serial = RowsAtThreads(1, sql);
  EXPECT_EQ(serial, RowsAtThreads(4, sql));
}

TEST_F(ParallelSqlTest, SustainedBudgetCollapseDrainsMultiPassProbe) {
  // A multi-pass probe (small memory limit + high fanout) whose
  // reactive budget collapses to 1 mid-query and STAYS there: later
  // passes launch a single runner, which must still drive every
  // pass-budget-paused cursor to completion (cursors are claimed from a
  // queue, not bound to runner indices) — a starved cursor would spin
  // GetChunk forever.
  FillKeyed("probe_t", 60000, 100);
  FillKeyed("build_t", 5000, 100);
  ASSERT_TRUE(con_->Query("PRAGMA memory_limit = 16000000").ok());
  SyntheticAppMonitor monitor;
  db_->governor().SetThreads(4);
  db_->governor().SetMonitor(&monitor);
  db_->governor().SetReactive(true);

  const std::string sql =
      "SELECT count(*), sum(probe_t.v + build_t.v) FROM probe_t "
      "JOIN build_t ON probe_t.k = build_t.k";
  monitor.SetCpu(0.0);
  auto expected = Rows(sql);
  for (int round = 0; round < 5; round++) {
    monitor.SetCpu(0.0);  // full budget at plan time: probe fans out
    std::thread collapse([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * round));
      monitor.SetCpu(1.0);  // budget -> 1, permanently, mid-query
    });
    EXPECT_EQ(expected, Rows(sql)) << "round " << round;
    collapse.join();
  }
  db_->governor().SetReactive(false);
  db_->governor().SetMonitor(nullptr);
}

TEST_F(ParallelSqlTest, MidProbeBudgetShrinkKeepsJoinExact) {
  // The reactive governor's monitor flips to "application busy" while
  // parallel probes are running: surplus probe workers drain at morsel
  // boundaries, results stay identical (integer sums are bit-exact).
  FillKeyed("probe_t", 60000, 300);
  FillKeyed("build_t", 4000, 300);
  SyntheticAppMonitor monitor;
  db_->governor().SetThreads(4);
  db_->governor().SetMonitor(&monitor);
  db_->governor().SetReactive(true);
  monitor.SetCpu(0.0);

  const std::string sql =
      "SELECT count(*), sum(probe_t.v + build_t.v) FROM probe_t "
      "JOIN build_t ON probe_t.k = build_t.k";
  auto expected = Rows(sql);

  std::atomic<bool> stop{false};
  std::thread pressure([&] {
    bool busy = false;
    while (!stop.load()) {
      monitor.SetCpu(busy ? 1.0 : 0.0);
      busy = !busy;
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 10; round++) {
    EXPECT_EQ(expected, Rows(sql)) << "round " << round;
  }
  stop.store(true);
  pressure.join();
  db_->governor().SetReactive(false);
  db_->governor().SetMonitor(nullptr);
}

TEST_F(ParallelSqlTest, ParallelProbeAbandonedMidStreamThenReExecuted) {
  // Extends JoinResetMidProbeDiscardsStaleState to the parallel probe:
  // abandoning a streamed join mid-drain and re-executing must clear the
  // per-worker result buffers and the drain cursor, not replay them.
  FillKeyed("probe_t", 40000, 200);
  FillKeyed("build_t", 3000, 200);
  ASSERT_TRUE(con_->Query("PRAGMA threads = 4").ok());
  const std::string sql =
      "SELECT probe_t.k, probe_t.v, build_t.v FROM probe_t "
      "JOIN build_t ON probe_t.k = build_t.k WHERE probe_t.v % 10 = 0";
  auto expected = Rows(sql);
  ASSERT_GT(expected.size(), size_t(kVectorSize));  // spans several chunks

  auto prepared = con_->Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  auto stream = (*prepared)->ExecuteStream();
  ASSERT_TRUE(stream.ok());
  auto chunk = (*stream)->Fetch();  // join is now mid-drain
  ASSERT_TRUE(chunk.ok());
  ASSERT_NE(chunk->get(), nullptr);
  ASSERT_TRUE((*stream)->Close().ok());

  auto full = (*prepared)->Execute();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ((*full)->RowCount(), expected.size());
}

TEST_F(ParallelSqlTest, RadixMergeEquivalenceAcrossGroupCounts) {
  // Radix-partitioned merge at the degenerate and fan-out extremes: one
  // group (+ the NULL group), 6 groups, and 100k groups — every group
  // count must be identical at any thread count.
  struct Case {
    const char* table;
    int rows;
    int keys;
  };
  for (const Case& c : {Case{"g1", 30000, 1}, Case{"g6", 30000, 6}}) {
    FillKeyed(c.table, c.rows, c.keys);
    std::string sql =
        std::string("SELECT k, count(*), sum(v), min(v), max(v) FROM ") +
        c.table + " GROUP BY k";
    auto serial = RowsAtThreads(1, sql);
    EXPECT_EQ(serial.size(), static_cast<size_t>(c.keys) + 1) << c.table;
    for (int threads : {2, 4, 8}) {
      EXPECT_EQ(serial, RowsAtThreads(threads, sql))
          << c.table << " at " << threads << " threads";
    }
  }
  // 100k groups over 300k rows via the appender (SQL INSERT would
  // dominate the test's runtime).
  FillAppender("g100k", 300000, 100000);
  const std::string sql =
      "SELECT k, count(*), sum(v), min(v), max(v) FROM g100k GROUP BY k";
  auto serial = RowsAtThreads(1, sql);
  EXPECT_EQ(serial.size(), 100001u);
  EXPECT_EQ(serial, RowsAtThreads(4, sql));
}

TEST_F(ParallelSqlTest, VarcharExtremesKeepGenericStatesUnderParallelism) {
  // MIN/MAX over VARCHAR has no fixed-width state: thread-local tables
  // fall back to generic AggState rows, and the radix merge must still
  // combine them correctly at any thread count.
  ASSERT_TRUE(
      con_->Query("CREATE TABLE vt (s VARCHAR, w VARCHAR, v BIGINT)").ok());
  std::string ins;
  for (int i = 0; i < 20000; i++) {
    ins += ins.empty() ? "INSERT INTO vt VALUES " : ",";
    std::string s = i % 97 == 0 ? "NULL" : "'k" + std::to_string(i % 83) + "'";
    std::string w =
        i % 89 == 0 ? "NULL" : "'v" + std::to_string((i * 7919) % 10007) + "'";
    ins += "(" + s + "," + w + "," + std::to_string(i) + ")";
    if (ins.size() > (1u << 20)) {
      ASSERT_TRUE(con_->Query(ins).ok());
      ins.clear();
    }
  }
  if (!ins.empty()) {
    ASSERT_TRUE(con_->Query(ins).ok());
  }
  const std::string sql =
      "SELECT s, min(w), max(w), count(*), sum(v) FROM vt GROUP BY s";
  auto serial = RowsAtThreads(1, sql);
  EXPECT_EQ(serial.size(), 84u);  // 83 keys + NULL group
  for (int threads : {2, 4}) {
    EXPECT_EQ(serial, RowsAtThreads(threads, sql)) << threads << " threads";
  }
}

TEST_F(ParallelSqlTest, RadixMergeMillionGroups) {
  // 1M rows, every row its own group: the merge pass dominates and every
  // partition carries ~62k groups. Compared via an aggregate-of-
  // aggregates checksum (a 1M-row multiset compare would swamp the
  // test).
  FillAppender("big", 1000000, 0);  // keys=0: k = row index, all distinct
  const std::string sql =
      "SELECT count(*), sum(s), min(s), max(s), sum(c) FROM "
      "(SELECT k, sum(v) AS s, count(*) AS c FROM big GROUP BY k) q";
  auto serial = RowsAtThreads(1, sql);
  EXPECT_EQ(serial, RowsAtThreads(4, sql));
}

TEST_F(ParallelSqlTest, ConcurrentConnectionsRunParallelQueries) {
  // Two threads, each with its own connection, hammer parallel
  // aggregations against the shared scheduler and buffer manager.
  FillKeyed("t", 40000, 200);
  db_->governor().SetThreads(4);  // fan out even on a 1-core host
  auto expected = Rows("SELECT k, sum(v) FROM t GROUP BY k");
  auto worker = [&](int rounds) {
    Connection con(db_.get());
    for (int i = 0; i < rounds; i++) {
      auto r = con.Query("SELECT k, sum(v) FROM t GROUP BY k");
      ASSERT_TRUE(r.ok());
      ASSERT_EQ((*r)->RowCount(), expected.size());
    }
  };
  std::thread a(worker, 10), b(worker, 10);
  a.join();
  b.join();
}

}  // namespace
}  // namespace mallard
