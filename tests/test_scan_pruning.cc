// Zone-map pruning and projection-pushdown behaviour of table scans
// (paper section 6: "the format allows to scan individual columns and
// skip irrelevant blocks of rows during a scan").

#include <gtest/gtest.h>

#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

namespace mallard {
namespace {

class ScanPruningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    con_ = std::make_unique<Connection>(db_.get());
    // Three row groups of sorted data: zone maps are tight.
    ASSERT_TRUE(con_->Query("CREATE TABLE t (a BIGINT, s VARCHAR)").ok());
    auto app = Appender::Create(db_.get(), "t");
    const idx_t kRows = 3 * kRowGroupSize;
    DataChunk chunk;
    chunk.Initialize({TypeId::kBigInt, TypeId::kVarchar});
    idx_t produced = 0;
    while (produced < kRows) {
      chunk.Reset();
      idx_t n = std::min<idx_t>(kVectorSize, kRows - produced);
      for (idx_t i = 0; i < n; i++) {
        chunk.column(0).data<int64_t>()[i] =
            static_cast<int64_t>(produced + i);
        chunk.column(1).SetString(i, "v" + std::to_string(produced + i));
      }
      chunk.SetCardinality(n);
      ASSERT_TRUE((*app)->AppendChunk(chunk).ok());
      produced += n;
    }
    ASSERT_TRUE((*app)->Close().ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> con_;
};

TEST_F(ScanPruningTest, ZoneMapsSkipRowGroups) {
  // Predicate selecting only the last row group: correctness check here,
  // skipping effectiveness is visible through row-group stats.
  auto r = con_->Query("SELECT count(*) FROM t WHERE a >= " +
                       std::to_string(2 * kRowGroupSize));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(),
            static_cast<int64_t>(kRowGroupSize));
  // Equality in the first row group.
  r = con_->Query("SELECT s FROM t WHERE a = 7");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->RowCount(), 1u);
  EXPECT_EQ((*r)->GetValue(0, 0).GetString(), "v7");
  // Out-of-domain predicate matches nothing (every group pruned).
  r = con_->Query("SELECT count(*) FROM t WHERE a < 0");
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 0);
}

TEST_F(ScanPruningTest, ZoneMapsStayCorrectUnderUpdates) {
  // Updates widen zone maps; a row updated beyond the old max must still
  // be found (stale zone maps would wrongly prune).
  ASSERT_TRUE(con_->Query("UPDATE t SET a = 999999 WHERE a = 5").ok());
  auto r = con_->Query("SELECT count(*) FROM t WHERE a = 999999");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
  // And the old value is gone.
  r = con_->Query("SELECT count(*) FROM t WHERE a = 5");
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 0);
}

TEST_F(ScanPruningTest, ZoneMapsWithDeletes) {
  // Deletes don't narrow zone maps (conservative), but results must be
  // exact because the filter is re-evaluated on surviving rows.
  ASSERT_TRUE(con_->Query("DELETE FROM t WHERE a < 100").ok());
  auto r = con_->Query("SELECT count(*), min(a) FROM t WHERE a < 200");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 100);
  EXPECT_EQ((*r)->GetValue(1, 0).GetBigInt(), 100);
}

TEST_F(ScanPruningTest, ProjectionPushdownScansOnlyNeededColumns) {
  // Verified through EXPLAIN: the scan feeding a single-column aggregate
  // must not materialize the VARCHAR column.
  auto r = con_->Query("EXPLAIN SELECT sum(a) FROM t");
  ASSERT_TRUE(r.ok());
  std::string plan = (*r)->GetValue(0, 0).GetString();
  EXPECT_NE(plan.find("SEQ_SCAN"), std::string::npos);
  // The filter/aggregate expressions reference only `a`.
  EXPECT_EQ(plan.find("s"), plan.find("sum"));  // no bare `s` column ref
}

TEST_F(ScanPruningTest, StringZoneMaps) {
  auto r = con_->Query("SELECT count(*) FROM t WHERE s = 'v42'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
  r = con_->Query("SELECT count(*) FROM t WHERE s = 'zzz-not-there'");
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 0);
}

TEST_F(ScanPruningTest, RangePredicatesAcrossGroupBoundaries) {
  int64_t lo = static_cast<int64_t>(kRowGroupSize) - 5;
  int64_t hi = static_cast<int64_t>(kRowGroupSize) + 5;
  auto r = con_->Query("SELECT count(*) FROM t WHERE a BETWEEN " +
                       std::to_string(lo) + " AND " + std::to_string(hi));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 11);
}

}  // namespace
}  // namespace mallard
