// Out-of-core execution tests: buffer-manager eviction/reload, spill
// row stores, grace hash join and external aggregation equivalence
// under tight memory budgets (including skewed keys and parallel
// sinks), spill-I/O fault injection, and the memory-limit knobs
// (PRAGMA readback, buffer_stats, MALLARD_MEMORY_LIMIT).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "mallard/execution/spill/spill_row_store.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/resilience/retry_policy.h"
#include "mallard/storage/buffer_manager.h"

namespace mallard {
namespace {

// ---------------------------------------------------------------------------
// BufferManager eviction layer
// ---------------------------------------------------------------------------

TEST(BufferManagerSpillTest, EvictReloadRoundtrip) {
  BufferManager buffers(64 * 1024, "");
  auto a = buffers.Allocate(48 * 1024);
  ASSERT_TRUE(a.ok());
  std::memset(a->data(), 0xAB, 48 * 1024);
  std::shared_ptr<ManagedBuffer> held = a->buffer();
  a->Release();
  // The second 48KiB allocation exceeds the 64KiB limit and must evict
  // the first (now unpinned) buffer to the temp file.
  auto b = buffers.Allocate(48 * 1024);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(held->resident());
  BufferManagerStats stats = buffers.GetStats();
  EXPECT_EQ(stats.eviction_count, 1u);
  EXPECT_EQ(stats.spill_count, 1u);
  EXPECT_EQ(stats.spilled_bytes_now, 48u * 1024);
  // Re-pinning reloads the evicted contents intact.
  auto repin = buffers.Pin(held);
  ASSERT_TRUE(repin.ok());
  for (idx_t i = 0; i < 48 * 1024; i += 4097) {
    ASSERT_EQ(repin->data()[i], 0xAB) << "byte " << i;
  }
  stats = buffers.GetStats();
  EXPECT_EQ(stats.unspill_count, 1u);
  EXPECT_EQ(stats.spilled_bytes_now, 0u);
}

TEST(BufferManagerSpillTest, CleanReevictionSkipsWrite) {
  BufferManager buffers(64 * 1024, "");
  auto a = buffers.Allocate(48 * 1024);
  ASSERT_TRUE(a.ok());
  std::memset(a->data(), 0x11, 48 * 1024);
  std::shared_ptr<ManagedBuffer> held_a = a->buffer();
  a->Release();
  auto b = buffers.Allocate(48 * 1024);  // evicts a (dirty: writes)
  ASSERT_TRUE(b.ok());
  std::shared_ptr<ManagedBuffer> held_b = b->buffer();
  b->Release();
  auto repin_a = buffers.Pin(held_a);  // evicts b (dirty: writes), loads a
  ASSERT_TRUE(repin_a.ok());
  repin_a->Release();
  // a was reloaded and not modified: evicting it again reuses the
  // retained spill slot without writing.
  auto repin_b = buffers.Pin(held_b);
  ASSERT_TRUE(repin_b.ok());
  BufferManagerStats stats = buffers.GetStats();
  EXPECT_EQ(stats.eviction_count, 3u);
  EXPECT_EQ(stats.spill_count, 2u);  // clean re-eviction skipped a write
  EXPECT_EQ(stats.unspill_count, 2u);
}

TEST(BufferManagerSpillTest, MarkDirtyForcesRewrite) {
  BufferManager buffers(64 * 1024, "");
  auto a = buffers.Allocate(48 * 1024);
  ASSERT_TRUE(a.ok());
  std::memset(a->data(), 0x22, 48 * 1024);
  std::shared_ptr<ManagedBuffer> held_a = a->buffer();
  a->Release();
  auto b = buffers.Allocate(48 * 1024);  // evicts a
  ASSERT_TRUE(b.ok());
  std::shared_ptr<ManagedBuffer> held_b = b->buffer();
  b->Release();
  {
    auto repin = buffers.Pin(held_a);  // evicts b, reloads a (clean)
    ASSERT_TRUE(repin.ok());
    std::memset(repin->data(), 0x33, 48 * 1024);
    repin->MarkDirty();
  }
  // The dirtied buffer must be rewritten on its next eviction, and the
  // new contents must survive the roundtrip.
  auto repin_b = buffers.Pin(held_b);  // evicts a again (dirty: writes)
  ASSERT_TRUE(repin_b.ok());
  repin_b->Release();
  auto again = buffers.Pin(held_a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[12345], 0x33);
  EXPECT_EQ(buffers.GetStats().spill_count, 3u);
}

// ---------------------------------------------------------------------------
// SpillRowStore
// ---------------------------------------------------------------------------

TEST(SpillRowStoreTest, RoundtripUnderTinyLimit) {
  // 1000 variable-length rows (~120KiB total) through a 64KiB limit with
  // 16KiB segments: most segments must cycle through the temp file.
  BufferManager buffers(64 * 1024, "");
  SpillRowStore store(&buffers, 16 * 1024);
  std::vector<uint8_t> row;
  for (uint32_t r = 0; r < 1000; r++) {
    uint32_t len = 40 + (r * 37) % 160;
    row.assign(len, static_cast<uint8_t>(r % 251));
    std::memcpy(row.data(), &r, sizeof(r));
    ASSERT_TRUE(store.Append(row.data(), len).ok());
  }
  store.FinishAppend();
  EXPECT_EQ(store.rows(), 1000u);
  EXPECT_GT(buffers.GetStats().spilled_bytes, 0u);

  SpillRowStore::Cursor cursor;
  const uint8_t* data = nullptr;
  uint32_t len = 0;
  for (uint32_t r = 0; r < 1000; r++) {
    ASSERT_TRUE(store.Next(&cursor, &data, &len).ok());
    ASSERT_NE(data, nullptr) << "premature end at row " << r;
    ASSERT_EQ(len, 40 + (r * 37) % 160);
    uint32_t stored;
    std::memcpy(&stored, data, sizeof(stored));
    ASSERT_EQ(stored, r);
    for (uint32_t i = sizeof(stored); i < len; i++) {
      ASSERT_EQ(data[i], static_cast<uint8_t>(r % 251));
    }
  }
  ASSERT_TRUE(store.Next(&cursor, &data, &len).ok());
  EXPECT_EQ(data, nullptr);
}

// ---------------------------------------------------------------------------
// Grace hash join / external aggregation equivalence
// ---------------------------------------------------------------------------

class SpillQueryTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Get().Reset(); }

  void Open(uint64_t memory_limit, int threads = 1) {
    DBConfig config;
    config.memory_limit = memory_limit;
    config.threads = threads;
    auto db = Database::Open(":memory:", config);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    con_ = std::make_unique<Connection>(db_.get());
  }

  // Build side t2: `rows` rows, key k (0..rows-1 unless hot_key >= 0, in
  // which case every key is hot_key) plus a 64-byte pad so the working
  // set dwarfs tight budgets. Probe side t1: 2x rows, keys wrapping
  // around the build domain.
  void PopulateJoin(idx_t rows, int hot_key = -1) {
    ASSERT_TRUE(con_->Query("CREATE TABLE t2 (k INTEGER, pad VARCHAR)").ok());
    ASSERT_TRUE(con_->Query("CREATE TABLE t1 (k INTEGER, v INTEGER)").ok());
    std::string pad(64, 'x');
    auto build = Appender::Create(db_.get(), "t2");
    ASSERT_TRUE(build.ok());
    for (idx_t r = 0; r < rows; r++) {
      int32_t key = hot_key >= 0 ? hot_key : static_cast<int32_t>(r);
      (*build)->Append(key).Append(pad);
      ASSERT_TRUE((*build)->EndRow().ok());
    }
    ASSERT_TRUE((*build)->Close().ok());
    auto probe = Appender::Create(db_.get(), "t1");
    ASSERT_TRUE(probe.ok());
    idx_t probe_rows = hot_key >= 0 ? 8 : rows * 2;
    for (idx_t r = 0; r < probe_rows; r++) {
      // With a hot build key, half the probes hit it and half miss.
      int32_t key = hot_key >= 0
                        ? (r % 2 == 0 ? hot_key : hot_key + 1)
                        : static_cast<int32_t>(r % rows);
      (*probe)->Append(key).Append(static_cast<int32_t>(r));
      ASSERT_TRUE((*probe)->EndRow().ok());
    }
    ASSERT_TRUE((*probe)->Close().ok());
  }

  void PopulateAgg(idx_t rows, idx_t groups) {
    ASSERT_TRUE(con_->Query("CREATE TABLE t (g INTEGER, v INTEGER)").ok());
    auto app = Appender::Create(db_.get(), "t");
    ASSERT_TRUE(app.ok());
    for (idx_t r = 0; r < rows; r++) {
      (*app)->Append(static_cast<int32_t>(r % groups))
          .Append(static_cast<int32_t>(r));
      ASSERT_TRUE((*app)->EndRow().ok());
    }
    ASSERT_TRUE((*app)->Close().ok());
  }

  // Order-independent digest of a whole result: per-column sums folded
  // with the row count (results under different budgets emit rows in
  // different orders).
  static std::pair<idx_t, double> Digest(const MaterializedQueryResult& r) {
    double sum = 0;
    for (const auto& chunk : r.Chunks()) {
      for (idx_t row = 0; row < chunk->size(); row++) {
        for (idx_t col = 0; col < chunk->ColumnCount(); col++) {
          Value v = chunk->GetValue(col, row);
          switch (v.type()) {
            case TypeId::kInteger:
              sum += v.GetInteger();
              break;
            case TypeId::kBigInt:
              sum += static_cast<double>(v.GetBigInt());
              break;
            case TypeId::kDouble:
              sum += v.GetDouble();
              break;
            default:
              break;
          }
        }
      }
    }
    return {r.RowCount(), sum};
  }

  int64_t SpilledBytes() {
    auto r = con_->Query("PRAGMA buffer_stats");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) return -1;
    return (*r)->GetValue(4, 0).GetBigInt();  // spilled_bytes
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> con_;
};

constexpr const char* kJoinQuery =
    "SELECT count(*), sum(t1.v + t2.k) FROM t1 JOIN t2 ON t1.k = t2.k";
constexpr const char* kAggQuery = "SELECT g, count(*), sum(v) FROM t GROUP BY g";

TEST_F(SpillQueryTest, GraceJoinMatchesInMemoryAcrossBudgets) {
  // Build working set: 60k rows x ~90 bytes ~ 5.5MiB.
  const idx_t kRows = 60000;
  std::pair<idx_t, double> expected;
  {
    Open(1ull << 30);  // effectively unlimited
    PopulateJoin(kRows);
    auto r = con_->Query(kJoinQuery);
    ASSERT_TRUE(r.ok());
    expected = Digest(**r);
    EXPECT_EQ(expected.first, 1u);
    EXPECT_EQ(SpilledBytes(), 0);
  }
  {
    Open(16ull << 20);  // ~2x the working set: still no spilling
    PopulateJoin(kRows);
    auto r = con_->Query(kJoinQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(Digest(**r), expected);
    EXPECT_EQ(SpilledBytes(), 0);
  }
  {
    Open(2ull << 20);  // ~1/4 of the working set: grace join must engage
    PopulateJoin(kRows);
    auto r = con_->Query(kJoinQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(Digest(**r), expected);
    EXPECT_GT(SpilledBytes(), 0);
  }
}

TEST_F(SpillQueryTest, GraceJoinSkewedHotKeyRecurses) {
  // Every build row shares one key: one radix partition holds ~3.5MiB
  // against a 1MiB operator budget, and identical hashes mean recursive
  // splits cannot separate them — the recursion cap must kick in and the
  // partition must still probe correctly (4 hits x 40k matches each).
  const idx_t kRows = 40000;
  Open(2ull << 20);
  PopulateJoin(kRows, /*hot_key=*/7);
  auto r = con_->Query(kJoinQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(),
            static_cast<int64_t>(4 * kRows));
  EXPECT_GT(SpilledBytes(), 0);
}

TEST_F(SpillQueryTest, ExternalAggMatchesInMemoryAcrossBudgets) {
  // 200k rows over 150k groups: ~10MiB of resident group state.
  const idx_t kRowCount = 200000;
  const idx_t kGroups = 150000;
  std::pair<idx_t, double> expected;
  {
    Open(1ull << 30);
    PopulateAgg(kRowCount, kGroups);
    auto r = con_->Query(kAggQuery);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ((*r)->RowCount(), kGroups);
    expected = Digest(**r);
    EXPECT_EQ(SpilledBytes(), 0);
  }
  {
    Open(24ull << 20);  // ~2x working set
    PopulateAgg(kRowCount, kGroups);
    auto r = con_->Query(kAggQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(Digest(**r), expected);
  }
  {
    Open(2ull << 20);  // ~1/4 working set: external aggregation engages
    PopulateAgg(kRowCount, kGroups);
    auto r = con_->Query(kAggQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(Digest(**r), expected);
    EXPECT_GT(SpilledBytes(), 0);
  }
}

TEST_F(SpillQueryTest, ParallelSinksSpillUnderTightBudget) {
  // Morsel-parallel build/sink with 4 workers under a tight budget:
  // workers spill thread-local partitions independently, and the results
  // must still match the serial unlimited run (TSAN covers the races).
  const idx_t kRowCount = 200000;
  const idx_t kGroups = 120000;
  std::pair<idx_t, double> agg_expected;
  std::pair<idx_t, double> join_expected;
  {
    Open(1ull << 30, /*threads=*/1);
    PopulateAgg(kRowCount, kGroups);
    auto r = con_->Query(kAggQuery);
    ASSERT_TRUE(r.ok());
    agg_expected = Digest(**r);
  }
  {
    Open(2ull << 20, /*threads=*/4);
    PopulateAgg(kRowCount, kGroups);
    auto r = con_->Query(kAggQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(Digest(**r), agg_expected);
  }
  const idx_t kJoinRows = 60000;
  {
    Open(1ull << 30, /*threads=*/1);
    PopulateJoin(kJoinRows);
    auto r = con_->Query(kJoinQuery);
    ASSERT_TRUE(r.ok());
    join_expected = Digest(**r);
  }
  {
    Open(2ull << 20, /*threads=*/4);
    PopulateJoin(kJoinRows);
    auto r = con_->Query(kJoinQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(Digest(**r), join_expected);
    EXPECT_GT(SpilledBytes(), 0);
  }
}

// ---------------------------------------------------------------------------
// Spill I/O fault injection
// ---------------------------------------------------------------------------

TEST_F(SpillQueryTest, SpillWriteFaultFailsQueryCleanly) {
  const idx_t kRows = 60000;
  Open(2ull << 20);
  PopulateJoin(kRows);
  FaultInjector::Get().Arm(FaultSite::kSpillWrite, 1.0);
  auto r = con_->Query(kJoinQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("spill write fault"),
            std::string::npos)
      << r.status().message();
  FaultInjector::Get().Reset();
  // The engine recovers: the same query succeeds once the fault clears.
  auto retry = con_->Query(kJoinQuery);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ((*retry)->GetValue(0, 0).GetBigInt(),
            static_cast<int64_t>(kRows * 2));
}

TEST_F(SpillQueryTest, SpillReadFaultFailsQueryCleanly) {
  const idx_t kRows = 60000;
  Open(2ull << 20);
  PopulateJoin(kRows);
  // Permanent fault: the read-path retry loop re-reads the spill segment
  // up to its attempt budget, then surfaces a clean error.
  FaultInjector::Get().Arm(FaultSite::kSpillRead, 1.0);
  auto r = con_->Query(kJoinQuery);
  EXPECT_GE(FaultInjector::Get().FireCount(FaultSite::kSpillRead), 3u);
  FaultInjector::Get().Reset();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("spill read fault"), std::string::npos)
      << r.status().message();
}

TEST_F(SpillQueryTest, SpillReadTransientFaultHealsViaRetry) {
  const idx_t kRows = 60000;
  Open(2ull << 20);
  PopulateJoin(kRows);
  GlobalResilienceStats().Reset();
  // Fail the first spill read, succeed on the re-read: the query must
  // complete with correct results and the retry must be visible in the
  // resilience counters.
  FaultInjector::Get().ArmTransient(FaultSite::kSpillRead, 1);
  auto r = con_->Query(kJoinQuery);
  FaultInjector::Get().Reset();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(),
            static_cast<int64_t>(kRows * 2));
  EXPECT_GE(GlobalResilienceStats().io_retries.load(), 1u);
  EXPECT_GE(GlobalResilienceStats().retry_successes.load(), 1u);
}

// ---------------------------------------------------------------------------
// Memory-limit knobs
// ---------------------------------------------------------------------------

TEST_F(SpillQueryTest, PragmaMemoryLimitReadback) {
  Open(1ull << 30);
  ASSERT_TRUE(con_->Query("PRAGMA memory_limit=33554432").ok());
  auto r = con_->Query("PRAGMA memory_limit");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 33554432);
}

TEST_F(SpillQueryTest, PragmaBufferStatsShape) {
  // A non-default explicit limit: the default value doubles as the
  // "untouched" sentinel for MALLARD_MEMORY_LIMIT, and this test must
  // hold even when CI pins the environment to a tight budget.
  Open(1ull << 29);
  auto r = con_->Query("PRAGMA buffer_stats");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->RowCount(), 1u);
  ASSERT_EQ((*r)->ColumnCount(), 10u);
  EXPECT_EQ((*r)->names()[0], "memory_used");
  EXPECT_EQ((*r)->names()[4], "spilled_bytes");
  EXPECT_EQ((*r)->names()[7], "spilled_bytes_now");
  EXPECT_EQ((*r)->names()[9], "spill_saved_bytes");
  EXPECT_EQ((*r)->GetValue(1, 0).GetBigInt(),
            static_cast<int64_t>(1ull << 29));  // memory_limit
}

TEST(MemoryLimitEnvTest, EnvVarPinsDefaultConfig) {
  ASSERT_EQ(setenv("MALLARD_MEMORY_LIMIT", "33554432", 1), 0);
  {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok());
    Connection con(db->get());
    auto r = con.Query("PRAGMA memory_limit");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 33554432);
  }
  {
    // An explicit config value wins over the environment.
    DBConfig config;
    config.memory_limit = 123456789;
    auto db = Database::Open(":memory:", config);
    ASSERT_TRUE(db.ok());
    Connection con(db->get());
    auto r = con.Query("PRAGMA memory_limit");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 123456789);
  }
  unsetenv("MALLARD_MEMORY_LIMIT");
}

}  // namespace
}  // namespace mallard
