// Parser unit tests: statement structure, expression precedence,
// literals, and error reporting — no execution involved.

#include <gtest/gtest.h>

#include "mallard/parser/parser.h"

namespace mallard {
namespace {

std::unique_ptr<SQLStatement> ParseOne(const std::string& sql) {
  auto result = Parser::Parse(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  if (!result.ok() || result->size() != 1) return nullptr;
  return std::move((*result)[0]);
}

const SelectStatement* AsSelect(const std::unique_ptr<SQLStatement>& stmt) {
  return stmt && stmt->type == StatementType::kSelect
             ? static_cast<const SelectStatement*>(stmt.get())
             : nullptr;
}

TEST(ParserTest, SelectStructure) {
  auto stmt = ParseOne(
      "SELECT a, b AS bee, count(*) FROM t WHERE a > 1 GROUP BY a, b "
      "HAVING count(*) > 2 ORDER BY a DESC, 2 LIMIT 5 OFFSET 3");
  auto* select = AsSelect(stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->select_list.size(), 3u);
  EXPECT_EQ(select->select_list[1]->alias, "bee");
  ASSERT_NE(select->where, nullptr);
  EXPECT_EQ(select->group_by.size(), 2u);
  ASSERT_NE(select->having, nullptr);
  ASSERT_EQ(select->order_by.size(), 2u);
  EXPECT_FALSE(select->order_by[0].ascending);
  EXPECT_TRUE(select->order_by[1].ascending);
  EXPECT_EQ(select->limit, 5);
  EXPECT_EQ(select->offset, 3);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseOne("SELECT 1 + 2 * 3 - 4 / 2");
  auto* select = AsSelect(stmt);
  ASSERT_NE(select, nullptr);
  // ((1 + (2*3)) - (4/2)): root is subtraction.
  const ParsedExpression& root = *select->select_list[0];
  ASSERT_EQ(root.type, PExprType::kArithmetic);
  EXPECT_EQ(root.arith_op, ArithOp::kSubtract);
  EXPECT_EQ(root.children[0]->arith_op, ArithOp::kAdd);
  EXPECT_EQ(root.children[0]->children[1]->arith_op, ArithOp::kMultiply);
}

TEST(ParserTest, AndBindsTighterThanOr) {
  auto stmt = ParseOne("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
  auto* select = AsSelect(stmt);
  ASSERT_NE(select, nullptr);
  ASSERT_EQ(select->where->type, PExprType::kConjunction);
  EXPECT_FALSE(select->where->is_and);  // OR at the root
  EXPECT_TRUE(select->where->children[1]->is_and);
}

TEST(ParserTest, JoinTree) {
  auto stmt = ParseOne(
      "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y");
  auto* select = AsSelect(stmt);
  ASSERT_NE(select, nullptr);
  ASSERT_NE(select->from, nullptr);
  ASSERT_EQ(select->from->type, TableRef::Type::kJoin);
  EXPECT_EQ(select->from->join_type, JoinType::kLeft);
  ASSERT_EQ(select->from->left->type, TableRef::Type::kJoin);
  EXPECT_EQ(select->from->left->join_type, JoinType::kInner);
}

TEST(ParserTest, CommaJoinAndAliases) {
  auto stmt = ParseOne("SELECT 1 FROM customer c, orders o WHERE 1 = 1");
  auto* select = AsSelect(stmt);
  ASSERT_NE(select, nullptr);
  ASSERT_EQ(select->from->type, TableRef::Type::kJoin);
  EXPECT_TRUE(select->from->is_cross);
  EXPECT_EQ(select->from->left->alias, "c");
  EXPECT_EQ(select->from->right->alias, "o");
}

TEST(ParserTest, Literals) {
  auto stmt = ParseOne(
      "SELECT 42, 3.25, 'it''s', NULL, true, DATE '2024-05-06', "
      "9999999999");
  auto* select = AsSelect(stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->select_list[0]->constant.GetInteger(), 42);
  EXPECT_DOUBLE_EQ(select->select_list[1]->constant.GetDouble(), 3.25);
  EXPECT_EQ(select->select_list[2]->constant.GetString(), "it's");
  EXPECT_TRUE(select->select_list[3]->constant.is_null());
  EXPECT_TRUE(select->select_list[4]->constant.GetBoolean());
  EXPECT_EQ(select->select_list[5]->constant.type(), TypeId::kDate);
  EXPECT_EQ(select->select_list[6]->constant.type(), TypeId::kBigInt);
}

TEST(ParserTest, CaseCastBetweenInLike) {
  auto stmt = ParseOne(
      "SELECT CASE WHEN a THEN 1 ELSE 0 END, CAST(a AS BIGINT) FROM t "
      "WHERE a BETWEEN 1 AND 2 AND b IN (1, 2, 3) AND s LIKE 'x%' "
      "AND s NOT LIKE '%y' AND c IS NOT NULL");
  auto* select = AsSelect(stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->select_list[0]->type, PExprType::kCase);
  EXPECT_EQ(select->select_list[1]->type, PExprType::kCast);
  EXPECT_EQ(select->select_list[1]->cast_type, TypeId::kBigInt);
}

TEST(ParserTest, DmlStatements) {
  auto insert = ParseOne("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_EQ(insert->type, StatementType::kInsert);
  auto* ins = static_cast<InsertStatement*>(insert.get());
  EXPECT_EQ(ins->columns.size(), 2u);
  EXPECT_EQ(ins->values.size(), 2u);

  auto update = ParseOne("UPDATE t SET a = a + 1, b = NULL WHERE c > 0");
  ASSERT_EQ(update->type, StatementType::kUpdate);
  auto* upd = static_cast<UpdateStatement*>(update.get());
  EXPECT_EQ(upd->assignments.size(), 2u);
  ASSERT_NE(upd->where, nullptr);

  auto del = ParseOne("DELETE FROM t WHERE a = 1");
  EXPECT_EQ(del->type, StatementType::kDelete);
}

TEST(ParserTest, DdlStatements) {
  auto create = ParseOne(
      "CREATE TABLE IF NOT EXISTS t (a INTEGER NOT NULL, b VARCHAR(32), "
      "c DECIMAL(12,2))");
  ASSERT_EQ(create->type, StatementType::kCreateTable);
  auto* ct = static_cast<CreateTableStatement*>(create.get());
  EXPECT_TRUE(ct->if_not_exists);
  ASSERT_EQ(ct->columns.size(), 3u);
  EXPECT_EQ(ct->columns[2].type, TypeId::kDouble);  // DECIMAL -> DOUBLE

  auto view = ParseOne("CREATE OR REPLACE VIEW v (x) AS SELECT a FROM t");
  ASSERT_EQ(view->type, StatementType::kCreateView);
  auto* cv = static_cast<CreateViewStatement*>(view.get());
  EXPECT_TRUE(cv->or_replace);
  EXPECT_EQ(cv->aliases.size(), 1u);
  EXPECT_NE(cv->select_sql.find("SELECT a"), std::string::npos);

  auto drop = ParseOne("DROP TABLE IF EXISTS t");
  auto* d = static_cast<DropStatement*>(drop.get());
  EXPECT_TRUE(d->if_exists);
}

TEST(ParserTest, MultipleStatements) {
  auto result = Parser::Parse("SELECT 1; SELECT 2; -- comment\nSELECT 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
}

TEST(ParserTest, ErrorsHavePosition) {
  EXPECT_FALSE(Parser::Parse("SELECT FROM").ok());
  EXPECT_FALSE(Parser::Parse("SELECT 'unterminated").ok());
  EXPECT_FALSE(Parser::Parse("INSERT t VALUES (1)").ok());
  EXPECT_FALSE(Parser::Parse("SELECT 1 2").ok());
  EXPECT_FALSE(Parser::Parse("SELECT (1 + ").ok());
  EXPECT_FALSE(Parser::Parse("UPDATE t SET").ok());
}

TEST(ParserTest, ExpressionEqualsIsStructural) {
  auto a = ParseOne("SELECT a + b * 2");
  auto b = ParseOne("SELECT a + b * 2");
  auto c = ParseOne("SELECT a + b * 3");
  EXPECT_TRUE(AsSelect(a)->select_list[0]->Equals(
      *AsSelect(b)->select_list[0]));
  EXPECT_FALSE(AsSelect(a)->select_list[0]->Equals(
      *AsSelect(c)->select_list[0]));
}

}  // namespace
}  // namespace mallard
