// Crash-recovery torture harness.
//
// Each scenario forks a child that runs a committing workload against a
// fresh database with a process-kill fault armed (ArmKillAfter): the
// child dies with _exit(87) mid-WAL-append, mid-fsync, mid-checkpoint
// block write or mid-root-swap — the closest user-space model of power
// loss. The child appends every *acknowledged* commit marker to an
// oracle file (fsync'd per line) before issuing the next commit.
//
// The parent waits for the kill, then forks a second child that reopens
// the database (running WAL replay) and checks the recovery invariants:
//
//   atomicity    every marker is visible with ALL of its rows or none;
//   durability   sync mode: every oracle-acknowledged marker is visible
//                (async mode acks before fsync, so recovered markers
//                need only be a prefix of the acknowledged sequence);
//   ordering     visible markers form a contiguous prefix 0..k — WAL
//                replay never skips a committed transaction;
//   torn tail    a WAL truncated mid-record replays everything up to
//                the torn frame and nothing after it.
//
// Every Database open/close happens in a forked child, so the parent
// never carries engine threads across fork(). The harness is built as
// its own single-process binary (tests/*.cc glob is non-recursive) and
// must stay fork-safe: no gtest, no global engine state in the parent.
//
// Usage: mallard_torture [site mode]
//   site: wal-append | wal-fsync | checkpoint-write | root-swap |
//         wal-truncate | torn-tail
//   mode: sync | async
// With no arguments the full matrix runs.
//
// Bit-flip fuzzer: mallard_torture bit-flip <seed> <iterations>
// Builds a checkpointed database once, then repeatedly restores a
// pristine copy, flips one random bit across the database + WAL files,
// and reopens in a fork. Every outcome must be one of
//   recovered    full data readable, integrity_check runs;
//   old-root     flip hit a header slot; open fell back to the elder
//                root (the torn-header-write contract);
//   salvaged     clean kCorruption, then salvage_mode reads around the
//                quarantined group;
//   clean error  open itself fails with kCorruption;
// never a crash, never silently wrong rows.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/storage/file_handle.h"

namespace mallard {
namespace {

constexpr int kRowsPerCommit = 5;
// Safety bound only: kill-site children commit until the armed kill
// fires. Async flushes coalesce many commits into one kill opportunity
// (on a fast /tmp the flusher can batch 50+ commits per flush), so the
// bound must be far above kill_skip x worst-case batch size.
constexpr int kMaxMarkers = 20000;
constexpr int kCheckpointEvery = 15;  // commits between child checkpoints

struct Scenario {
  const char* name;
  FaultSite site;
  uint64_t kill_skip;   // fault opportunities to let pass before dying
  bool async;
  bool torn_tail;       // no kill: exit cleanly, then truncate the WAL
};

std::string DbPath(const Scenario& s) {
  return "/tmp/mallard_torture_" + std::string(s.name) + "_" +
         (s.async ? "async_" : "sync_") + std::to_string(::getpid());
}

void Cleanup(const std::string& path) {
  RemoveFile(path);
  RemoveFile(path + ".wal");
  RemoveFile(path + ".tmp");
  RemoveFile(path + ".oracle");
}

// --- Child: the doomed workload. Runs in a fork, expected to die at the
// --- armed kill point (or exit 0 for the torn-tail scenario).

int ChildWorkload(const Scenario& s, const std::string& path) {
  DBConfig config;
  config.checkpoint_on_close = false;  // recovery must come from the WAL
  auto db = Database::Open(path, config);
  if (!db.ok()) return 2;
  Connection con(db->get());
  if (!con.Query("CREATE TABLE t (marker INTEGER, v INTEGER)").ok()) return 2;
  if (s.async && !con.Query("PRAGMA wal_commit_mode=async").ok()) return 2;

  // Oracle file: one marker per line, appended + fsync'd only after the
  // engine acknowledged that commit.
  FILE* oracle = std::fopen((path + ".oracle").c_str(), "w");
  if (oracle == nullptr) return 2;

  if (!s.torn_tail) {
    FaultInjector::Get().ArmKillAfter(s.site, s.kill_skip);
  }
  int markers = s.torn_tail ? 30 : kMaxMarkers;
  for (int m = 0; m < markers; m++) {
    std::string sql = "INSERT INTO t VALUES";
    for (int r = 0; r < kRowsPerCommit; r++) {
      sql += (r == 0 ? " (" : ",(") + std::to_string(m) + "," +
             std::to_string(r) + ")";
    }
    if (!con.Query(sql).ok()) return 3;  // armed kills die, they don't error
    std::fprintf(oracle, "%d\n", m);
    std::fflush(oracle);
    ::fsync(::fileno(oracle));
    // Periodic online checkpoints: the checkpoint kill sites fire here.
    bool checkpoint_site = s.site == FaultSite::kCheckpointWrite ||
                           s.site == FaultSite::kCheckpointRootSwap ||
                           s.site == FaultSite::kWalTruncate;
    if (checkpoint_site && m > 0 && m % kCheckpointEvery == 0) {
      if (!(*db)->Checkpoint().ok()) return 3;
    }
  }
  std::fclose(oracle);
  if (s.torn_tail) return 0;  // clean exit; parent tears the WAL tail
  return 4;  // survived the whole workload: the kill never fired
}

// --- Verifier: also runs in a fork so replay/open never happens in the
// --- parent. Exit 0 = invariants hold.

int VerifyRecovery(const Scenario& s, const std::string& path) {
  std::vector<int> oracle;
  {
    std::ifstream in(path + ".oracle");
    int m;
    while (in >> m) oracle.push_back(m);
  }

  DBConfig config;
  config.checkpoint_on_close = false;
  auto db = Database::Open(path, config);
  if (!db.ok()) {
    std::fprintf(stderr, "  reopen failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  Connection con(db->get());
  auto result = con.Query("SELECT marker FROM t");
  if (!result.ok()) {
    std::fprintf(stderr, "  scan failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::map<int, int> rows_per_marker;
  for (idx_t i = 0; i < (*result)->RowCount(); i++) {
    rows_per_marker[(*result)->GetValue(0, i).GetInteger()]++;
  }

  // Atomicity: no partially visible commit.
  for (const auto& [marker, rows] : rows_per_marker) {
    if (rows != kRowsPerCommit) {
      std::fprintf(stderr, "  TORN COMMIT: marker %d has %d/%d rows\n",
                   marker, rows, kRowsPerCommit);
      return 1;
    }
  }
  // Ordering: visible markers are a contiguous prefix 0..k.
  int expect = 0;
  for (const auto& [marker, rows] : rows_per_marker) {
    if (marker != expect++) {
      std::fprintf(stderr, "  GAP: marker %d missing (found %d)\n",
                   expect - 1, marker);
      return 1;
    }
  }
  int recovered = static_cast<int>(rows_per_marker.size());
  int acked = static_cast<int>(oracle.size());

  if (s.torn_tail) {
    // The parent tore the last frame: exactly the last commit is lost.
    if (recovered != acked - 1) {
      std::fprintf(stderr, "  torn tail: recovered %d, expected %d\n",
                   recovered, acked - 1);
      return 1;
    }
    return 0;
  }
  if (!s.async && recovered < acked) {
    // Sync mode: the commit was acknowledged only after its group's
    // fsync, so every oracle line must have survived.
    std::fprintf(stderr, "  LOST ACKED COMMITS: recovered %d < acked %d\n",
                 recovered, acked);
    return 1;
  }
  if (s.async && recovered > acked) {
    // Async acks strictly precede durability; more durable than acked
    // would mean the oracle write was skipped.
    std::fprintf(stderr, "  async: recovered %d > acked %d\n", recovered,
                 acked);
    return 1;
  }
  std::fprintf(stderr, "  recovered %d/%d acked commits\n", recovered, acked);
  return 0;
}

// Tear off the last few bytes of the WAL, leaving a torn final record.
bool TearWalTail(const std::string& path) {
  std::string wal = path + ".wal";
  struct stat st;
  if (::stat(wal.c_str(), &st) != 0 || st.st_size < 4) return false;
  return ::truncate(wal.c_str(), st.st_size - 3) == 0;
}

int RunScenario(const Scenario& s) {
  std::string path = DbPath(s);
  Cleanup(path);
  std::fprintf(stderr, "[%s/%s]\n", s.name, s.async ? "async" : "sync");

  pid_t child = ::fork();
  if (child < 0) return 1;
  if (child == 0) ::_exit(ChildWorkload(s, path));
  int wstatus = 0;
  if (::waitpid(child, &wstatus, 0) != child || !WIFEXITED(wstatus)) {
    std::fprintf(stderr, "  child did not exit normally\n");
    return 1;
  }
  int code = WEXITSTATUS(wstatus);
  int expected = s.torn_tail ? 0 : FaultInjector::kKillExitCode;
  if (code != expected) {
    std::fprintf(stderr, "  child exited %d, expected %d\n", code, expected);
    return 1;
  }
  if (s.torn_tail && !TearWalTail(path)) {
    std::fprintf(stderr, "  could not tear WAL tail\n");
    return 1;
  }

  pid_t verifier = ::fork();
  if (verifier < 0) return 1;
  if (verifier == 0) ::_exit(VerifyRecovery(s, path));
  if (::waitpid(verifier, &wstatus, 0) != verifier || !WIFEXITED(wstatus) ||
      WEXITSTATUS(wstatus) != 0) {
    std::fprintf(stderr, "  FAILED\n");
    return 1;
  }
  std::fprintf(stderr, "  ok\n");
  Cleanup(path);
  return 0;
}

std::vector<Scenario> BuildMatrix() {
  // kill_skip values let a healthy run of commits land first, then die:
  // the append/fsync sites see one opportunity per WAL flush, the
  // checkpoint sites one per chain-block write / root swap.
  std::vector<Scenario> matrix;
  for (bool async : {false, true}) {
    matrix.push_back({"wal-append", FaultSite::kWalAppend, 7, async, false});
    matrix.push_back({"wal-fsync", FaultSite::kWalFsync, 7, async, false});
    matrix.push_back(
        {"checkpoint-write", FaultSite::kCheckpointWrite, 2, async, false});
    matrix.push_back(
        {"root-swap", FaultSite::kCheckpointRootSwap, 0, async, false});
    // Dies after the checkpoint root swap is durable but before the WAL
    // is truncated: replay must skip the stale log (its generation is
    // behind the root) instead of re-applying transactions that are
    // already in the image — the classic double-apply window.
    matrix.push_back(
        {"wal-truncate", FaultSite::kWalTruncate, 0, async, false});
  }
  matrix.push_back({"torn-tail", FaultSite::kNumFaultSites, 0, false, true});
  return matrix;
}

// --- Bit-flip fuzzer -------------------------------------------------------

constexpr int kFlipRows = 5000;
// sum(0..kFlipRows-1)
constexpr int64_t kFlipSum =
    static_cast<int64_t>(kFlipRows) * (kFlipRows - 1) / 2;

// Child: builds the victim database — one table, one checkpoint, WAL
// drained — so every later flip lands on at-rest state.
int BuildFlipDatabase(const std::string& path) {
  DBConfig config;
  config.checkpoint_on_close = false;
  auto db = Database::Open(path, config);
  if (!db.ok()) return 1;
  Connection con(db->get());
  if (!con.Query("CREATE TABLE t (a INTEGER)").ok()) return 1;
  {
    auto appender = Appender::Create(db->get(), "t");
    if (!appender.ok()) return 1;
    for (int32_t i = 0; i < kFlipRows; i++) {
      (*appender)->Append(i);
      if (!(*appender)->EndRow().ok()) return 1;
    }
    if (!(*appender)->Close().ok()) return 1;
  }
  if (!(*db)->Checkpoint().ok()) return 1;
  return 0;
}

// Child: reopens the flipped database and classifies the outcome.
// Exit codes: 0 recovered, 10 salvaged, 11 clean corruption at open,
// 21 readable-but-wrong (parent re-classifies header-slot flips as the
// documented old-root fallback), anything else is a failure.
int VerifyFlip(const std::string& path) {
  DBConfig config;
  config.checkpoint_on_close = false;
  auto db = Database::Open(path, config);
  if (!db.ok()) {
    return db.status().IsCorruption() ? 11 : 20;
  }
  Connection con(db->get());
  auto q = con.Query("SELECT count(*), sum(a) FROM t");
  if (q.ok()) {
    int64_t count = (*q)->GetValue(0, 0).GetBigInt();
    int64_t sum = (*q)->GetValue(1, 0).GetBigInt();
    if (count != kFlipRows || sum != kFlipSum) return 21;
    // Full data intact: the scrubber must still complete (flips in free
    // space or slack bytes are legitimate no-ops).
    return con.Query("PRAGMA integrity_check").ok() ? 0 : 24;
  }
  if (!q.status().IsCorruption()) return 21;  // e.g. table lost to old root
  // Clean corruption error: salvage mode must read around the damage.
  if (!con.Query("PRAGMA salvage_mode=on").ok()) return 22;
  auto s = con.Query("SELECT count(*) FROM t");
  if (!s.ok()) return 22;
  if ((*s)->GetValue(0, 0).GetBigInt() > kFlipRows) return 23;
  return 10;
}

bool ReadFileBytes(const std::string& path, std::vector<char>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool WriteFileBytes(const std::string& path, const std::vector<char>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out.good();
}

int RunBitFlipFuzzer(uint64_t seed, int iterations) {
  std::string path = "/tmp/mallard_torture_bitflip_" + std::to_string(seed) +
                     "_" + std::to_string(::getpid());
  Cleanup(path);
  std::fprintf(stderr, "[bit-flip] seed=%llu iterations=%d\n",
               static_cast<unsigned long long>(seed), iterations);

  pid_t builder = ::fork();
  if (builder < 0) return 1;
  if (builder == 0) ::_exit(BuildFlipDatabase(path));
  int wstatus = 0;
  if (::waitpid(builder, &wstatus, 0) != builder || !WIFEXITED(wstatus) ||
      WEXITSTATUS(wstatus) != 0) {
    std::fprintf(stderr, "  could not build the victim database\n");
    return 1;
  }

  std::vector<char> db_image, wal_image;
  if (!ReadFileBytes(path, &db_image) || db_image.empty()) {
    std::fprintf(stderr, "  could not snapshot the database file\n");
    return 1;
  }
  ReadFileBytes(path + ".wal", &wal_image);  // may legitimately be tiny
  uint64_t total_bits = (db_image.size() + wal_image.size()) * 8;

  int recovered = 0, old_root = 0, salvaged = 0, clean_errors = 0;
  int failures = 0;
  uint64_t rng = seed ^ 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < iterations; i++) {
    // xorshift64* — deterministic per seed, independent of libc.
    rng ^= rng >> 12;
    rng ^= rng << 25;
    rng ^= rng >> 27;
    uint64_t bit = (rng * 0x2545F4914F6CDD1DULL) % total_bits;
    bool in_db = bit < db_image.size() * 8;
    uint64_t byte_offset = (in_db ? bit : bit - db_image.size() * 8) / 8;

    std::vector<char> db_copy = db_image, wal_copy = wal_image;
    std::vector<char>& victim = in_db ? db_copy : wal_copy;
    victim[byte_offset] =
        static_cast<char>(victim[byte_offset] ^ (1 << (bit % 8)));
    if (!WriteFileBytes(path, db_copy) ||
        (!wal_image.empty() && !WriteFileBytes(path + ".wal", wal_copy))) {
      std::fprintf(stderr, "  flip %d: could not restore files\n", i);
      return 1;
    }

    pid_t child = ::fork();
    if (child < 0) return 1;
    if (child == 0) ::_exit(VerifyFlip(path));
    if (::waitpid(child, &wstatus, 0) != child) return 1;
    if (!WIFEXITED(wstatus)) {
      std::fprintf(stderr,
                   "  flip %d: CRASH (%s bit %llu) — signal %d\n", i,
                   in_db ? "db" : "wal",
                   static_cast<unsigned long long>(bit),
                   WIFSIGNALED(wstatus) ? WTERMSIG(wstatus) : -1);
      failures++;
      continue;
    }
    int code = WEXITSTATUS(wstatus);
    bool header_flip = in_db && byte_offset < 2 * kBlockSize;
    switch (code) {
      case 0:
        recovered++;
        break;
      case 10:
        salvaged++;
        break;
      case 11:
        clean_errors++;
        break;
      case 21:
        if (header_flip) {
          // A damaged header slot falls back to the other root — the
          // documented torn-header-write recovery, not silent loss.
          old_root++;
        } else {
          std::fprintf(stderr,
                       "  flip %d: SILENT WRONG RESULT (%s byte %llu)\n", i,
                       in_db ? "db" : "wal",
                       static_cast<unsigned long long>(byte_offset));
          failures++;
        }
        break;
      default:
        std::fprintf(stderr, "  flip %d: unexpected outcome %d (%s byte %llu)\n",
                     i, code, in_db ? "db" : "wal",
                     static_cast<unsigned long long>(byte_offset));
        failures++;
        break;
    }
  }
  std::fprintf(stderr,
               "  %d flips: %d recovered, %d old-root, %d salvaged, "
               "%d clean errors, %d FAILURES\n",
               iterations, recovered, old_root, salvaged, clean_errors,
               failures);
  Cleanup(path);
  return failures == 0 ? 0 : 1;
}

int TortureMain(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "bit-flip") == 0) {
    return RunBitFlipFuzzer(std::strtoull(argv[2], nullptr, 10),
                            std::atoi(argv[3]));
  }
  auto matrix = BuildMatrix();
  if (argc == 3) {  // single scenario: mallard_torture <site> <mode>
    bool async = std::strcmp(argv[2], "async") == 0;
    for (const auto& s : matrix) {
      if (std::strcmp(s.name, argv[1]) == 0 &&
          (s.torn_tail || s.async == async)) {
        return RunScenario(s);
      }
    }
    std::fprintf(stderr, "unknown scenario %s %s\n", argv[1], argv[2]);
    return 1;
  }
  int failures = 0;
  for (const auto& s : matrix) failures += RunScenario(s);
  if (failures == 0) {
    std::fprintf(stderr, "all scenarios passed\n");
  } else {
    std::fprintf(stderr, "%d scenario(s) FAILED\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mallard

int main(int argc, char** argv) { return mallard::TortureMain(argc, argv); }
