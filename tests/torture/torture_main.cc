// Crash-recovery torture harness.
//
// Each scenario forks a child that runs a committing workload against a
// fresh database with a process-kill fault armed (ArmKillAfter): the
// child dies with _exit(87) mid-WAL-append, mid-fsync, mid-checkpoint
// block write or mid-root-swap — the closest user-space model of power
// loss. The child appends every *acknowledged* commit marker to an
// oracle file (fsync'd per line) before issuing the next commit.
//
// The parent waits for the kill, then forks a second child that reopens
// the database (running WAL replay) and checks the recovery invariants:
//
//   atomicity    every marker is visible with ALL of its rows or none;
//   durability   sync mode: every oracle-acknowledged marker is visible
//                (async mode acks before fsync, so recovered markers
//                need only be a prefix of the acknowledged sequence);
//   ordering     visible markers form a contiguous prefix 0..k — WAL
//                replay never skips a committed transaction;
//   torn tail    a WAL truncated mid-record replays everything up to
//                the torn frame and nothing after it.
//
// Every Database open/close happens in a forked child, so the parent
// never carries engine threads across fork(). The harness is built as
// its own single-process binary (tests/*.cc glob is non-recursive) and
// must stay fork-safe: no gtest, no global engine state in the parent.
//
// Usage: mallard_torture [site mode]
//   site: wal-append | wal-fsync | checkpoint-write | root-swap |
//         wal-truncate | torn-tail
//   mode: sync | async
// With no arguments the full matrix runs.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/storage/file_handle.h"

namespace mallard {
namespace {

constexpr int kRowsPerCommit = 5;
constexpr int kMaxMarkers = 400;
constexpr int kCheckpointEvery = 15;  // commits between child checkpoints

struct Scenario {
  const char* name;
  FaultSite site;
  uint64_t kill_skip;   // fault opportunities to let pass before dying
  bool async;
  bool torn_tail;       // no kill: exit cleanly, then truncate the WAL
};

std::string DbPath(const Scenario& s) {
  return "/tmp/mallard_torture_" + std::string(s.name) + "_" +
         (s.async ? "async_" : "sync_") + std::to_string(::getpid());
}

void Cleanup(const std::string& path) {
  RemoveFile(path);
  RemoveFile(path + ".wal");
  RemoveFile(path + ".tmp");
  RemoveFile(path + ".oracle");
}

// --- Child: the doomed workload. Runs in a fork, expected to die at the
// --- armed kill point (or exit 0 for the torn-tail scenario).

int ChildWorkload(const Scenario& s, const std::string& path) {
  DBConfig config;
  config.checkpoint_on_close = false;  // recovery must come from the WAL
  auto db = Database::Open(path, config);
  if (!db.ok()) return 2;
  Connection con(db->get());
  if (!con.Query("CREATE TABLE t (marker INTEGER, v INTEGER)").ok()) return 2;
  if (s.async && !con.Query("PRAGMA wal_commit_mode=async").ok()) return 2;

  // Oracle file: one marker per line, appended + fsync'd only after the
  // engine acknowledged that commit.
  FILE* oracle = std::fopen((path + ".oracle").c_str(), "w");
  if (oracle == nullptr) return 2;

  if (!s.torn_tail) {
    FaultInjector::Get().ArmKillAfter(s.site, s.kill_skip);
  }
  int markers = s.torn_tail ? 30 : kMaxMarkers;
  for (int m = 0; m < markers; m++) {
    std::string sql = "INSERT INTO t VALUES";
    for (int r = 0; r < kRowsPerCommit; r++) {
      sql += (r == 0 ? " (" : ",(") + std::to_string(m) + "," +
             std::to_string(r) + ")";
    }
    if (!con.Query(sql).ok()) return 3;  // armed kills die, they don't error
    std::fprintf(oracle, "%d\n", m);
    std::fflush(oracle);
    ::fsync(::fileno(oracle));
    // Periodic online checkpoints: the checkpoint kill sites fire here.
    bool checkpoint_site = s.site == FaultSite::kCheckpointWrite ||
                           s.site == FaultSite::kCheckpointRootSwap ||
                           s.site == FaultSite::kWalTruncate;
    if (checkpoint_site && m > 0 && m % kCheckpointEvery == 0) {
      if (!(*db)->Checkpoint().ok()) return 3;
    }
  }
  std::fclose(oracle);
  if (s.torn_tail) return 0;  // clean exit; parent tears the WAL tail
  return 4;  // survived the whole workload: the kill never fired
}

// --- Verifier: also runs in a fork so replay/open never happens in the
// --- parent. Exit 0 = invariants hold.

int VerifyRecovery(const Scenario& s, const std::string& path) {
  std::vector<int> oracle;
  {
    std::ifstream in(path + ".oracle");
    int m;
    while (in >> m) oracle.push_back(m);
  }

  DBConfig config;
  config.checkpoint_on_close = false;
  auto db = Database::Open(path, config);
  if (!db.ok()) {
    std::fprintf(stderr, "  reopen failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  Connection con(db->get());
  auto result = con.Query("SELECT marker FROM t");
  if (!result.ok()) {
    std::fprintf(stderr, "  scan failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::map<int, int> rows_per_marker;
  for (idx_t i = 0; i < (*result)->RowCount(); i++) {
    rows_per_marker[(*result)->GetValue(0, i).GetInteger()]++;
  }

  // Atomicity: no partially visible commit.
  for (const auto& [marker, rows] : rows_per_marker) {
    if (rows != kRowsPerCommit) {
      std::fprintf(stderr, "  TORN COMMIT: marker %d has %d/%d rows\n",
                   marker, rows, kRowsPerCommit);
      return 1;
    }
  }
  // Ordering: visible markers are a contiguous prefix 0..k.
  int expect = 0;
  for (const auto& [marker, rows] : rows_per_marker) {
    if (marker != expect++) {
      std::fprintf(stderr, "  GAP: marker %d missing (found %d)\n",
                   expect - 1, marker);
      return 1;
    }
  }
  int recovered = static_cast<int>(rows_per_marker.size());
  int acked = static_cast<int>(oracle.size());

  if (s.torn_tail) {
    // The parent tore the last frame: exactly the last commit is lost.
    if (recovered != acked - 1) {
      std::fprintf(stderr, "  torn tail: recovered %d, expected %d\n",
                   recovered, acked - 1);
      return 1;
    }
    return 0;
  }
  if (!s.async && recovered < acked) {
    // Sync mode: the commit was acknowledged only after its group's
    // fsync, so every oracle line must have survived.
    std::fprintf(stderr, "  LOST ACKED COMMITS: recovered %d < acked %d\n",
                 recovered, acked);
    return 1;
  }
  if (s.async && recovered > acked) {
    // Async acks strictly precede durability; more durable than acked
    // would mean the oracle write was skipped.
    std::fprintf(stderr, "  async: recovered %d > acked %d\n", recovered,
                 acked);
    return 1;
  }
  std::fprintf(stderr, "  recovered %d/%d acked commits\n", recovered, acked);
  return 0;
}

// Tear off the last few bytes of the WAL, leaving a torn final record.
bool TearWalTail(const std::string& path) {
  std::string wal = path + ".wal";
  struct stat st;
  if (::stat(wal.c_str(), &st) != 0 || st.st_size < 4) return false;
  return ::truncate(wal.c_str(), st.st_size - 3) == 0;
}

int RunScenario(const Scenario& s) {
  std::string path = DbPath(s);
  Cleanup(path);
  std::fprintf(stderr, "[%s/%s]\n", s.name, s.async ? "async" : "sync");

  pid_t child = ::fork();
  if (child < 0) return 1;
  if (child == 0) ::_exit(ChildWorkload(s, path));
  int wstatus = 0;
  if (::waitpid(child, &wstatus, 0) != child || !WIFEXITED(wstatus)) {
    std::fprintf(stderr, "  child did not exit normally\n");
    return 1;
  }
  int code = WEXITSTATUS(wstatus);
  int expected = s.torn_tail ? 0 : FaultInjector::kKillExitCode;
  if (code != expected) {
    std::fprintf(stderr, "  child exited %d, expected %d\n", code, expected);
    return 1;
  }
  if (s.torn_tail && !TearWalTail(path)) {
    std::fprintf(stderr, "  could not tear WAL tail\n");
    return 1;
  }

  pid_t verifier = ::fork();
  if (verifier < 0) return 1;
  if (verifier == 0) ::_exit(VerifyRecovery(s, path));
  if (::waitpid(verifier, &wstatus, 0) != verifier || !WIFEXITED(wstatus) ||
      WEXITSTATUS(wstatus) != 0) {
    std::fprintf(stderr, "  FAILED\n");
    return 1;
  }
  std::fprintf(stderr, "  ok\n");
  Cleanup(path);
  return 0;
}

std::vector<Scenario> BuildMatrix() {
  // kill_skip values let a healthy run of commits land first, then die:
  // the append/fsync sites see one opportunity per WAL flush, the
  // checkpoint sites one per chain-block write / root swap.
  std::vector<Scenario> matrix;
  for (bool async : {false, true}) {
    matrix.push_back({"wal-append", FaultSite::kWalAppend, 7, async, false});
    matrix.push_back({"wal-fsync", FaultSite::kWalFsync, 7, async, false});
    matrix.push_back(
        {"checkpoint-write", FaultSite::kCheckpointWrite, 2, async, false});
    matrix.push_back(
        {"root-swap", FaultSite::kCheckpointRootSwap, 0, async, false});
    // Dies after the checkpoint root swap is durable but before the WAL
    // is truncated: replay must skip the stale log (its generation is
    // behind the root) instead of re-applying transactions that are
    // already in the image — the classic double-apply window.
    matrix.push_back(
        {"wal-truncate", FaultSite::kWalTruncate, 0, async, false});
  }
  matrix.push_back({"torn-tail", FaultSite::kNumFaultSites, 0, false, true});
  return matrix;
}

int TortureMain(int argc, char** argv) {
  auto matrix = BuildMatrix();
  if (argc == 3) {  // single scenario: mallard_torture <site> <mode>
    bool async = std::strcmp(argv[2], "async") == 0;
    for (const auto& s : matrix) {
      if (std::strcmp(s.name, argv[1]) == 0 &&
          (s.torn_tail || s.async == async)) {
        return RunScenario(s);
      }
    }
    std::fprintf(stderr, "unknown scenario %s %s\n", argv[1], argv[2]);
    return 1;
  }
  int failures = 0;
  for (const auto& s : matrix) failures += RunScenario(s);
  if (failures == 0) {
    std::fprintf(stderr, "all scenarios passed\n");
  } else {
    std::fprintf(stderr, "%d scenario(s) FAILED\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mallard

int main(int argc, char** argv) { return mallard::TortureMain(argc, argv); }
