// Tests for the vectorized hash-table subsystem behind PhysicalHashJoin
// and PhysicalHashAggregate: NULL-key semantics (NULL never matches a
// join condition, NULL = NULL is its own GROUP BY group), forced hash
// collisions via tiny directory/capacity hints, group counts past one
// vector (multi-vector emission), empty build sides, duplicate build
// keys, and all supported join types.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "mallard/execution/aggregate_hashtable.h"
#include "mallard/execution/join_hashtable.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/main/prepared_statement.h"
#include "mallard/storage/buffer_manager.h"
#include "mallard/vector/vector_hash.h"

namespace mallard {
namespace {

// --- JoinHashTable unit tests ----------------------------------------------

class JoinHashTableTest : public ::testing::Test {
 protected:
  JoinHashTableTest() : buffers_(1ull << 30, "") { context_.buffers = &buffers_; }

  BufferManager buffers_;
  ExecutionContext context_;
};

TEST_F(JoinHashTableTest, DuplicateKeysChainInBuildOrder) {
  JoinHashTable table({TypeId::kBigInt}, {TypeId::kBigInt});
  DataChunk keys, payload;
  keys.Initialize({TypeId::kBigInt});
  payload.Initialize({TypeId::kBigInt});
  // Three batches; key 7 appears twice per batch with distinct payloads.
  for (int batch = 0; batch < 3; batch++) {
    for (idx_t r = 0; r < 4; r++) {
      keys.column(0).data<int64_t>()[r] = (r % 2 == 0) ? 7 : 100 + r;
      payload.column(0).data<int64_t>()[r] = batch * 10 + r;
    }
    keys.SetCardinality(4);
    payload.SetCardinality(4);
    ASSERT_TRUE(table.Append(&context_, keys, payload, 4).ok());
  }
  table.Finalize();
  EXPECT_EQ(table.Count(), 12u);

  DataChunk probe;
  probe.Initialize({TypeId::kBigInt});
  probe.column(0).data<int64_t>()[0] = 7;
  probe.SetCardinality(1);
  uint64_t hashes[1], heads[1];
  table.ProbeHeads(probe, 1, hashes, heads);
  ASSERT_NE(heads[0], JoinHashTable::kNullRef);

  DataChunk out;
  out.Initialize({TypeId::kBigInt});
  std::vector<int64_t> matched_payloads;
  uint64_t ref = table.FirstMatch(heads[0], probe, 0, hashes[0]);
  while (ref != JoinHashTable::kNullRef) {
    table.DecodePayload(ref, &out, 0, 0);
    matched_payloads.push_back(out.column(0).data<int64_t>()[0]);
    ref = table.NextMatch(ref, probe, 0, hashes[0]);
  }
  // Key 7 was built with payloads 0,2,10,12,20,22 — chain preserves
  // build order.
  EXPECT_EQ(matched_payloads,
            (std::vector<int64_t>{0, 2, 10, 12, 20, 22}));
}

TEST_F(JoinHashTableTest, TinyDirectoryForcesCollisionChains) {
  // A 2-slot directory: every key collides with half the others, so
  // probe correctness must come from hash+key comparison, not slots.
  JoinHashTable table({TypeId::kInteger}, {TypeId::kInteger},
                      /*directory_size_hint=*/2);
  DataChunk keys, payload;
  keys.Initialize({TypeId::kInteger});
  payload.Initialize({TypeId::kInteger});
  const idx_t n = 500;
  idx_t filled = 0;
  while (filled < n) {
    idx_t batch = std::min<idx_t>(kVectorSize, n - filled);
    for (idx_t r = 0; r < batch; r++) {
      keys.column(0).data<int32_t>()[r] = static_cast<int32_t>(filled + r);
      payload.column(0).data<int32_t>()[r] =
          static_cast<int32_t>((filled + r) * 3);
    }
    keys.SetCardinality(batch);
    payload.SetCardinality(batch);
    ASSERT_TRUE(table.Append(&context_, keys, payload, batch).ok());
    filled += batch;
  }
  table.Finalize();
  EXPECT_EQ(table.DirectoryCapacity(), 2u);

  DataChunk probe;
  probe.Initialize({TypeId::kInteger});
  for (idx_t r = 0; r < n; r++) {
    probe.column(0).data<int32_t>()[r % kVectorSize] =
        static_cast<int32_t>(r);
    if ((r + 1) % kVectorSize == 0 || r + 1 == n) {
      idx_t count = (r % kVectorSize) + 1;
      probe.SetCardinality(count);
      std::vector<uint64_t> hashes(count), heads(count);
      table.ProbeHeads(probe, count, hashes.data(), heads.data());
      DataChunk out;
      out.Initialize({TypeId::kInteger});
      for (idx_t i = 0; i < count; i++) {
        uint64_t ref = table.FirstMatch(heads[i], probe, i, hashes[i]);
        ASSERT_NE(ref, JoinHashTable::kNullRef) << "probe row " << i;
        table.DecodePayload(ref, &out, 0, 0);
        EXPECT_EQ(out.column(0).data<int32_t>()[0],
                  probe.column(0).data<int32_t>()[i] * 3);
        // Unique build keys: exactly one match each.
        EXPECT_EQ(table.NextMatch(ref, probe, i, hashes[i]),
                  JoinHashTable::kNullRef);
      }
    }
  }
}

TEST_F(JoinHashTableTest, NullKeysSkippedOnBuildAndProbe) {
  JoinHashTable table({TypeId::kInteger}, {TypeId::kInteger});
  DataChunk keys, payload;
  keys.Initialize({TypeId::kInteger});
  payload.Initialize({TypeId::kInteger});
  keys.column(0).data<int32_t>()[0] = 1;
  keys.column(0).validity().SetInvalid(1);  // NULL build key: dropped
  keys.column(0).data<int32_t>()[2] = 3;
  for (idx_t r = 0; r < 3; r++) payload.column(0).data<int32_t>()[r] = r;
  keys.SetCardinality(3);
  payload.SetCardinality(3);
  ASSERT_TRUE(table.Append(&context_, keys, payload, 3).ok());
  table.Finalize();
  EXPECT_EQ(table.Count(), 2u);  // NULL-key row never stored

  DataChunk probe;
  probe.Initialize({TypeId::kInteger});
  probe.column(0).data<int32_t>()[0] = 1;
  probe.column(0).validity().SetInvalid(1);  // NULL probe: no match
  probe.SetCardinality(2);
  uint64_t hashes[2], heads[2];
  table.ProbeHeads(probe, 2, hashes, heads);
  EXPECT_NE(heads[0], JoinHashTable::kNullRef);
  EXPECT_EQ(heads[1], JoinHashTable::kNullRef);
}

TEST_F(JoinHashTableTest, EmptyBuildSideMatchesNothing) {
  JoinHashTable table({TypeId::kBigInt}, {TypeId::kBigInt});
  table.Finalize();
  EXPECT_EQ(table.Count(), 0u);
  DataChunk probe;
  probe.Initialize({TypeId::kBigInt});
  probe.column(0).data<int64_t>()[0] = 42;
  probe.SetCardinality(1);
  uint64_t hashes[1], heads[1];
  table.ProbeHeads(probe, 1, hashes, heads);
  EXPECT_EQ(heads[0], JoinHashTable::kNullRef);
}

TEST_F(JoinHashTableTest, MultiColumnVarcharKeys) {
  JoinHashTable table({TypeId::kVarchar, TypeId::kInteger},
                      {TypeId::kInteger});
  DataChunk keys, payload;
  keys.Initialize({TypeId::kVarchar, TypeId::kInteger});
  payload.Initialize({TypeId::kInteger});
  const char* names[] = {"alpha", "beta", "alpha"};
  int32_t nums[] = {1, 1, 2};
  for (idx_t r = 0; r < 3; r++) {
    keys.column(0).SetString(r, names[r], 5 - (r == 1 ? 1 : 0));
    keys.column(1).data<int32_t>()[r] = nums[r];
    payload.column(0).data<int32_t>()[r] = static_cast<int32_t>(r);
  }
  keys.SetCardinality(3);
  payload.SetCardinality(3);
  ASSERT_TRUE(table.Append(&context_, keys, payload, 3).ok());
  table.Finalize();

  // ("alpha", 2) must match row 2 only — not ("alpha", 1).
  DataChunk probe;
  probe.Initialize({TypeId::kVarchar, TypeId::kInteger});
  probe.column(0).SetString(0, "alpha", 5);
  probe.column(1).data<int32_t>()[0] = 2;
  probe.SetCardinality(1);
  uint64_t hashes[1], heads[1];
  table.ProbeHeads(probe, 1, hashes, heads);
  uint64_t ref = table.FirstMatch(heads[0], probe, 0, hashes[0]);
  ASSERT_NE(ref, JoinHashTable::kNullRef);
  DataChunk out;
  out.Initialize({TypeId::kInteger});
  table.DecodePayload(ref, &out, 0, 0);
  EXPECT_EQ(out.column(0).data<int32_t>()[0], 2);
  EXPECT_EQ(table.NextMatch(ref, probe, 0, hashes[0]),
            JoinHashTable::kNullRef);
}

// --- AggregateHashTable unit tests -----------------------------------------

TEST(AggregateHashTableTest, TinyCapacityForcesProbingAndResize) {
  AggregateHashTable table({TypeId::kBigInt}, /*aggregate_count=*/1,
                           /*initial_capacity=*/2);
  DataChunk groups;
  groups.Initialize({TypeId::kBigInt});
  std::vector<idx_t> ids(kVectorSize);
  std::map<int64_t, idx_t> expected;
  for (int pass = 0; pass < 2; pass++) {
    for (idx_t r = 0; r < 1000; r++) {
      groups.column(0).data<int64_t>()[r] = static_cast<int64_t>(r % 350);
    }
    groups.SetCardinality(1000);
    table.FindOrCreateGroups(groups, 1000, ids.data());
    for (idx_t r = 0; r < 1000; r++) {
      int64_t key = static_cast<int64_t>(r % 350);
      auto it = expected.find(key);
      if (it == expected.end()) {
        expected.emplace(key, ids[r]);
      } else {
        EXPECT_EQ(it->second, ids[r]) << "key " << key;
      }
    }
  }
  EXPECT_EQ(table.GroupCount(), 350u);
  EXPECT_GE(table.Capacity(), 700u);  // resized well past the 2 we started at
}

TEST(AggregateHashTableTest, NullKeyIsItsOwnGroup) {
  AggregateHashTable table({TypeId::kInteger}, 1);
  DataChunk groups;
  groups.Initialize({TypeId::kInteger});
  groups.column(0).data<int32_t>()[0] = 5;
  groups.column(0).validity().SetInvalid(1);
  groups.column(0).validity().SetInvalid(2);  // NULL = NULL: same group
  groups.column(0).data<int32_t>()[3] = 5;
  groups.SetCardinality(4);
  idx_t ids[4];
  table.FindOrCreateGroups(groups, 4, ids);
  EXPECT_EQ(ids[0], ids[3]);
  EXPECT_EQ(ids[1], ids[2]);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_EQ(table.GroupCount(), 2u);
}

TEST(AggregateHashTableTest, ManyGroupsEmitAcrossVectors) {
  const idx_t kGroups = 12000;  // > 5 vectors of group keys
  AggregateHashTable table({TypeId::kBigInt}, 1);
  DataChunk groups;
  groups.Initialize({TypeId::kBigInt});
  std::vector<idx_t> ids(kVectorSize);
  idx_t next = 0;
  while (next < kGroups) {
    idx_t n = std::min<idx_t>(kVectorSize, kGroups - next);
    for (idx_t r = 0; r < n; r++) {
      groups.column(0).data<int64_t>()[r] = static_cast<int64_t>(next + r);
    }
    groups.SetCardinality(n);
    table.FindOrCreateGroups(groups, n, ids.data());
    for (idx_t r = 0; r < n; r++) EXPECT_EQ(ids[r], next + r);
    next += n;
  }
  EXPECT_EQ(table.GroupCount(), kGroups);
  // Emission: every group key comes back exactly once, aligned per vector.
  std::set<int64_t> seen;
  DataChunk out;
  out.Initialize({TypeId::kBigInt});
  for (idx_t start = 0; start < kGroups; start += kVectorSize) {
    idx_t n = std::min<idx_t>(kVectorSize, kGroups - start);
    out.Reset();
    table.EmitKeys(start, n, &out);
    for (idx_t r = 0; r < n; r++) {
      seen.insert(out.column(0).data<int64_t>()[r]);
    }
  }
  EXPECT_EQ(seen.size(), kGroups);
}

// --- Compact fixed-width aggregate states ----------------------------------

namespace {
ExprPtr AggArg(TypeId type) {
  return std::make_unique<BoundColumnRef>(0, type, "arg");
}
std::vector<BoundAggregate> FixedWidthAggregates() {
  std::vector<BoundAggregate> aggs;
  aggs.push_back({AggType::kCountStar, nullptr, TypeId::kBigInt});
  aggs.push_back({AggType::kCount, AggArg(TypeId::kBigInt), TypeId::kBigInt});
  aggs.push_back({AggType::kSum, AggArg(TypeId::kBigInt), TypeId::kBigInt});
  aggs.push_back({AggType::kAvg, AggArg(TypeId::kBigInt), TypeId::kDouble});
  aggs.push_back({AggType::kMin, AggArg(TypeId::kBigInt), TypeId::kBigInt});
  aggs.push_back({AggType::kMax, AggArg(TypeId::kBigInt), TypeId::kBigInt});
  return aggs;
}
}  // namespace

TEST(AggStateLayoutTest, CompactStatesMatchGenericStates) {
  // The same updates through the compact fixed-width rows and through
  // the generic AggState fallback must finalize identically — including
  // NULL handling (every 7th argument NULL, one all-NULL group).
  auto aggs = FixedWidthAggregates();
  AggregateHashTable compact({TypeId::kBigInt}, aggs);
  AggregateHashTable generic({TypeId::kBigInt}, aggs.size());
  ASSERT_TRUE(compact.CompactLayout());
  ASSERT_FALSE(generic.CompactLayout());

  DataChunk groups;
  groups.Initialize({TypeId::kBigInt});
  Vector arg(TypeId::kBigInt);
  std::vector<idx_t> ids(kVectorSize);
  for (int pass = 0; pass < 3; pass++) {
    const idx_t n = 900;
    for (idx_t r = 0; r < n; r++) {
      groups.column(0).data<int64_t>()[r] = static_cast<int64_t>(r % 37);
      arg.data<int64_t>()[r] = static_cast<int64_t>(pass * 1000 + r) - 450;
      if (r % 7 == 0) arg.validity().SetInvalid(r);
      if (r % 37 == 5) arg.validity().SetInvalid(r);  // group 5: mixed
    }
    // Group 36 never sees a valid argument: SUM/AVG/MIN/MAX must
    // finalize NULL while COUNT(*) stays nonzero.
    for (idx_t r = 36; r < n; r += 37) arg.validity().SetInvalid(r);
    groups.SetCardinality(n);
    for (AggregateHashTable* table : {&compact, &generic}) {
      table->FindOrCreateGroups(groups, n, ids.data());
      for (idx_t a = 0; a < aggs.size(); a++) {
        const Vector* v = aggs[a].arg ? &arg : nullptr;
        table->UpdateStates(aggs[a], a, v, n, ids.data());
      }
    }
    arg.Reset();
  }
  ASSERT_EQ(compact.GroupCount(), generic.GroupCount());
  for (idx_t g = 0; g < compact.GroupCount(); g++) {
    for (idx_t a = 0; a < aggs.size(); a++) {
      Value c = compact.FinalizeState(g, a, aggs[a]);
      Value e = generic.FinalizeState(g, a, aggs[a]);
      EXPECT_EQ(c.ToString(), e.ToString())
          << "group " << g << " aggregate " << a;
    }
  }
}

TEST(AggStateLayoutTest, VarcharExtremesAreNotCompactable) {
  EXPECT_FALSE(AggStateLayout::Compactable(AggType::kMin, TypeId::kVarchar));
  EXPECT_FALSE(AggStateLayout::Compactable(AggType::kMax, TypeId::kVarchar));
  // COUNT only reads validity: compactable for any argument type.
  EXPECT_TRUE(AggStateLayout::Compactable(AggType::kCount, TypeId::kVarchar));
  std::vector<BoundAggregate> aggs;
  aggs.push_back({AggType::kSum, AggArg(TypeId::kBigInt), TypeId::kBigInt});
  aggs.push_back(
      {AggType::kMin, AggArg(TypeId::kVarchar), TypeId::kVarchar});
  // One non-compactable aggregate sends the whole table to the AggState
  // fallback (states must live side by side per group).
  AggregateHashTable table({TypeId::kInteger}, aggs);
  EXPECT_FALSE(table.CompactLayout());
}

TEST(AggStateLayoutTest, CompactMergeMatchesSingleTable) {
  // Two partial compact tables over disjoint row halves, merged, must
  // equal one table that saw every row — the batch Combine kernel under
  // the parallel merge.
  auto aggs = FixedWidthAggregates();
  AggregateHashTable merged({TypeId::kBigInt}, aggs);
  AggregateHashTable partial({TypeId::kBigInt}, aggs);
  AggregateHashTable reference({TypeId::kBigInt}, aggs);

  DataChunk groups;
  groups.Initialize({TypeId::kBigInt});
  Vector arg(TypeId::kBigInt);
  std::vector<idx_t> ids(kVectorSize);
  auto feed = [&](AggregateHashTable* table, idx_t begin, idx_t end) {
    idx_t n = 0;
    for (idx_t i = begin; i < end; i++, n++) {
      groups.column(0).data<int64_t>()[n] = static_cast<int64_t>(i % 101);
      arg.data<int64_t>()[n] = static_cast<int64_t>(i * 3) - 1000;
      if (i % 11 == 0) arg.validity().SetInvalid(n);
    }
    groups.SetCardinality(n);
    table->FindOrCreateGroups(groups, n, ids.data());
    for (idx_t a = 0; a < aggs.size(); a++) {
      table->UpdateStates(aggs[a], a, aggs[a].arg ? &arg : nullptr, n,
                          ids.data());
    }
    arg.Reset();
  };
  feed(&merged, 0, 1000);
  feed(&partial, 1000, 2000);
  feed(&reference, 0, 1000);
  feed(&reference, 1000, 2000);
  merged.Merge(partial, aggs);
  ASSERT_EQ(merged.GroupCount(), reference.GroupCount());
  // Group creation order differs between merged and reference only when
  // the second half introduces new keys; with 101 keys over 1000 rows
  // both halves see every key, so ids align.
  for (idx_t g = 0; g < merged.GroupCount(); g++) {
    EXPECT_EQ(merged.GroupHash(g), reference.GroupHash(g));
    for (idx_t a = 0; a < aggs.size(); a++) {
      EXPECT_EQ(merged.FinalizeState(g, a, aggs[a]).ToString(),
                reference.FinalizeState(g, a, aggs[a]).ToString())
          << "group " << g << " aggregate " << a;
    }
  }
}

TEST(RadixPartitionedTableTest, PartitionsGroupsByHashHighBits) {
  auto aggs = FixedWidthAggregates();
  RadixPartitionedAggregateTable table({TypeId::kBigInt}, aggs,
                                       /*partitioned=*/true);
  RadixPartitionedAggregateTable single({TypeId::kBigInt}, aggs,
                                        /*partitioned=*/false);
  EXPECT_EQ(table.PartitionCount(),
            RadixPartitionedAggregateTable::kPartitions);
  EXPECT_EQ(single.PartitionCount(), 1u);

  DataChunk groups;
  groups.Initialize({TypeId::kBigInt});
  Vector arg(TypeId::kBigInt);
  const idx_t kRows = 2000, kKeys = 500;
  idx_t fed = 0;
  while (fed < kRows) {
    idx_t n = std::min<idx_t>(kVectorSize, kRows - fed);
    for (idx_t r = 0; r < n; r++) {
      groups.column(0).data<int64_t>()[r] =
          static_cast<int64_t>((fed + r) % kKeys);
      arg.data<int64_t>()[r] = static_cast<int64_t>(fed + r);
    }
    groups.SetCardinality(n);
    for (RadixPartitionedAggregateTable* t : {&table, &single}) {
      t->FindOrCreateGroups(groups, n);
      for (idx_t a = 0; a < aggs.size(); a++) {
        t->UpdateStates(aggs[a], a, aggs[a].arg ? &arg : nullptr, n);
      }
    }
    fed += n;
  }
  EXPECT_EQ(table.GroupCount(), kKeys);
  EXPECT_EQ(single.GroupCount(), kKeys);
  // Every group sits in the partition its hash selects, and the
  // partitioned/unpartitioned tables agree on the global aggregates.
  int64_t part_rows = 0, single_rows = 0;
  for (idx_t p = 0; p < table.PartitionCount(); p++) {
    const AggregateHashTable& part = table.partition(p);
    for (idx_t g = 0; g < part.GroupCount(); g++) {
      EXPECT_EQ(RadixPartitionedAggregateTable::PartitionOf(part.GroupHash(g)),
                p);
      part_rows += part.FinalizeState(g, 0, aggs[0]).GetBigInt();
    }
  }
  for (idx_t g = 0; g < single.partition(0).GroupCount(); g++) {
    single_rows +=
        single.partition(0).FinalizeState(g, 0, aggs[0]).GetBigInt();
  }
  EXPECT_EQ(part_rows, static_cast<int64_t>(kRows));
  EXPECT_EQ(single_rows, static_cast<int64_t>(kRows));
}

// --- SQL-level semantics ----------------------------------------------------

class HashTableSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    con_ = std::make_unique<Connection>(db_.get());
  }

  int64_t Scalar(const std::string& sql) {
    auto r = con_->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    if (!r.ok()) return -1;
    return (*r)->GetValue(0, 0).GetBigInt();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> con_;
};

TEST_F(HashTableSqlTest, NullJoinKeysNeverMatchButNullGroupsMerge) {
  ASSERT_TRUE(con_->Query("CREATE TABLE l (k INTEGER)").ok());
  ASSERT_TRUE(con_->Query("CREATE TABLE r (k INTEGER)").ok());
  ASSERT_TRUE(
      con_->Query("INSERT INTO l VALUES (1),(NULL),(2),(NULL)").ok());
  ASSERT_TRUE(
      con_->Query("INSERT INTO r VALUES (1),(NULL),(3),(1)").ok());
  // Join: NULL != NULL — only k=1 matches (twice).
  EXPECT_EQ(Scalar("SELECT count(*) FROM l JOIN r ON l.k = r.k"), 2);
  // Group: NULL = NULL — l groups to {1, 2, NULL} = 3 groups.
  EXPECT_EQ(Scalar("SELECT count(*) FROM (SELECT k, count(*) FROM l "
                   "GROUP BY k) q"),
            3);
  // The NULL group aggregates both NULL rows.
  auto r = con_->Query(
      "SELECT count(*) FROM (SELECT k, count(*) AS c FROM l GROUP BY k) q "
      "WHERE k IS NULL AND c = 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
}

TEST_F(HashTableSqlTest, EmptyBuildSide) {
  ASSERT_TRUE(con_->Query("CREATE TABLE l (k INTEGER, v INTEGER)").ok());
  ASSERT_TRUE(con_->Query("CREATE TABLE r (k INTEGER, w INTEGER)").ok());
  ASSERT_TRUE(con_->Query("INSERT INTO l VALUES (1,10),(2,20)").ok());
  EXPECT_EQ(Scalar("SELECT count(*) FROM l JOIN r ON l.k = r.k"), 0);
  // Left join pads every probe row with NULLs.
  EXPECT_EQ(Scalar("SELECT count(*) FROM l LEFT JOIN r ON l.k = r.k"), 2);
  EXPECT_EQ(Scalar("SELECT count(*) FROM (SELECT v FROM l LEFT JOIN r "
                   "ON l.k = r.k WHERE w IS NULL) q"),
            2);
  EXPECT_EQ(Scalar("SELECT count(*) FROM l SEMI JOIN r ON l.k = r.k"), 0);
  EXPECT_EQ(Scalar("SELECT count(*) FROM l ANTI JOIN r ON l.k = r.k"), 2);
}

TEST_F(HashTableSqlTest, DuplicateBuildKeysMultiplyAcrossChunks) {
  ASSERT_TRUE(con_->Query("CREATE TABLE l (k INTEGER)").ok());
  ASSERT_TRUE(con_->Query("CREATE TABLE r (k INTEGER)").ok());
  ASSERT_TRUE(con_->Query("INSERT INTO l VALUES (7),(7),(8)").ok());
  // 5000 duplicate build rows for key 7: a single probe row's match
  // chain spans multiple output vectors (mid-chain resume).
  std::string ins = "INSERT INTO r VALUES ";
  for (int i = 0; i < 5000; i++) {
    if (i > 0) ins += ",";
    ins += "(7)";
  }
  ASSERT_TRUE(con_->Query(ins).ok());
  EXPECT_EQ(Scalar("SELECT count(*) FROM l JOIN r ON l.k = r.k"), 10000);
  EXPECT_EQ(Scalar("SELECT count(*) FROM l SEMI JOIN r ON l.k = r.k"), 2);
  EXPECT_EQ(Scalar("SELECT count(*) FROM l ANTI JOIN r ON l.k = r.k"), 1);
  EXPECT_EQ(Scalar("SELECT count(*) FROM l LEFT JOIN r ON l.k = r.k"),
            10001);
}

TEST_F(HashTableSqlTest, ManyDistinctGroupsWithAggregates) {
  ASSERT_TRUE(con_->Query("CREATE TABLE t (k INTEGER, v INTEGER)").ok());
  // 12000 distinct groups, 2 rows each, inserted in interleaved order.
  std::string ins;
  for (int pass = 0; pass < 2; pass++) {
    for (int k = 0; k < 12000; k++) {
      if (ins.empty()) {
        ins = "INSERT INTO t VALUES ";
      } else {
        ins += ",";
      }
      ins += "(" + std::to_string(k) + "," + std::to_string(pass + 1) + ")";
      if (ins.size() > (1u << 20)) {
        ASSERT_TRUE(con_->Query(ins).ok());
        ins.clear();
      }
    }
  }
  if (!ins.empty()) ASSERT_TRUE(con_->Query(ins).ok());
  EXPECT_EQ(Scalar("SELECT count(*) FROM (SELECT k, sum(v) FROM t "
                   "GROUP BY k) q"),
            12000);
  // Every group sums to 3 and counts 2 rows.
  EXPECT_EQ(Scalar("SELECT count(*) FROM (SELECT k, sum(v) AS s, "
                   "count(*) AS c FROM t GROUP BY k) q "
                   "WHERE s = 3 AND c = 2"),
            12000);
  // min/max/avg survive the typed batch kernels.
  EXPECT_EQ(Scalar("SELECT count(*) FROM (SELECT k, min(v) AS lo, "
                   "max(v) AS hi, avg(v) AS m FROM t GROUP BY k) q "
                   "WHERE lo = 1 AND hi = 2 AND m = 1.5"),
            12000);
}

TEST_F(HashTableSqlTest, VarcharGroupKeysAndExtremes) {
  ASSERT_TRUE(con_->Query("CREATE TABLE t (s VARCHAR, v DOUBLE)").ok());
  ASSERT_TRUE(con_->Query(
                      "INSERT INTO t VALUES ('aa',1.0),('bb',2.0),"
                      "('aa',3.0),(NULL,9.0),('bb',4.0),(NULL,1.0)")
                  .ok());
  EXPECT_EQ(Scalar("SELECT count(*) FROM (SELECT s, count(*) FROM t "
                   "GROUP BY s) q"),
            3);
  auto r = con_->Query(
      "SELECT s, min(s), max(v), sum(v) FROM t GROUP BY s ORDER BY s");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->RowCount(), 3u);
  // NULL group sorts first.
  EXPECT_TRUE((*r)->GetValue(0, 0).is_null());
  EXPECT_EQ((*r)->GetValue(3, 0).GetDouble(), 10.0);
  EXPECT_EQ((*r)->GetValue(0, 1).GetString(), "aa");
  EXPECT_EQ((*r)->GetValue(2, 1).GetDouble(), 3.0);
  EXPECT_EQ((*r)->GetValue(0, 2).GetString(), "bb");
  EXPECT_EQ((*r)->GetValue(2, 2).GetDouble(), 4.0);
}

TEST_F(HashTableSqlTest, JoinResetMidProbeDiscardsStaleState) {
  // Abandoning a streamed join mid-probe and re-executing must not
  // replay the stale probe chunk (whose cached chain heads point into
  // the torn-down hash table).
  ASSERT_TRUE(con_->Query("CREATE TABLE l (k INTEGER)").ok());
  ASSERT_TRUE(con_->Query("CREATE TABLE r (k INTEGER)").ok());
  std::string ins_l = "INSERT INTO l VALUES (0)";
  for (int i = 1; i < 6000; i++) ins_l += ",(" + std::to_string(i % 50) + ")";
  ASSERT_TRUE(con_->Query(ins_l).ok());
  ASSERT_TRUE(con_->Query(
                      "INSERT INTO r VALUES (0),(1),(2),(3),(4),(5),(6),"
                      "(7),(8),(9)")
                  .ok());
  auto prepared =
      con_->Prepare("SELECT l.k, r.k FROM l JOIN r ON l.k = r.k");
  ASSERT_TRUE(prepared.ok());
  auto stream = (*prepared)->ExecuteStream();
  ASSERT_TRUE(stream.ok());
  auto chunk = (*stream)->Fetch();  // join is now mid-probe
  ASSERT_TRUE(chunk.ok());
  ASSERT_NE(chunk->get(), nullptr);
  ASSERT_TRUE((*stream)->Close().ok());
  auto full = (*prepared)->Execute();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  // 6000 left rows over 50 keys, 10 of which match: 120 rows per
  // matching key.
  EXPECT_EQ((*full)->RowCount(), 1200u);
}

TEST_F(HashTableSqlTest, AllJoinTypesOnMultiColumnKeys) {
  ASSERT_TRUE(
      con_->Query("CREATE TABLE l (a INTEGER, b VARCHAR, v INTEGER)").ok());
  ASSERT_TRUE(
      con_->Query("CREATE TABLE r (a INTEGER, b VARCHAR, w INTEGER)").ok());
  ASSERT_TRUE(con_->Query(
                      "INSERT INTO l VALUES (1,'x',10),(1,'y',11),"
                      "(2,'x',12),(3,'z',13)")
                  .ok());
  ASSERT_TRUE(con_->Query(
                      "INSERT INTO r VALUES (1,'x',20),(1,'x',21),"
                      "(2,'y',22),(3,'z',23)")
                  .ok());
  EXPECT_EQ(Scalar("SELECT count(*) FROM l JOIN r "
                   "ON l.a = r.a AND l.b = r.b"),
            3);  // (1,x) twice + (3,z)
  EXPECT_EQ(Scalar("SELECT count(*) FROM l LEFT JOIN r "
                   "ON l.a = r.a AND l.b = r.b"),
            5);  // 2 + 1 + two unmatched left rows
  EXPECT_EQ(Scalar("SELECT count(*) FROM l SEMI JOIN r "
                   "ON l.a = r.a AND l.b = r.b"),
            2);
  EXPECT_EQ(Scalar("SELECT count(*) FROM l ANTI JOIN r "
                   "ON l.a = r.a AND l.b = r.b"),
            2);
}

}  // namespace
}  // namespace mallard
