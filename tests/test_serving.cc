// Multi-client serving tests: the shared scheduler's inter-query
// fairness (QueryTicket / FairThreadShare / round-robin pickup),
// admission control (bounded queue, priority classes, shed/timeout with
// kResourceExhausted), Connection::Interrupt at chunk/morsel/spill
// boundaries, the cross-connection shared plan cache with literal
// normalization, the multi-client QueryServer, and a mixed
// read/write/DDL concurrency stress. The whole file runs under TSAN in
// CI (serving-stress job, MALLARD_THREADS=4).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mallard/c_api/mallard.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/main/plan_cache.h"
#include "mallard/net/client_server.h"
#include "mallard/parallel/task_scheduler.h"

namespace mallard {
namespace {

// --- Literal normalizer ----------------------------------------------------

TEST(NormalizeQueryText, IntegerLiteralsShareOneKey) {
  auto a = NormalizeQueryText("SELECT * FROM t WHERE id = 7");
  auto b = NormalizeQueryText("SELECT * FROM t WHERE id = 9");
  ASSERT_TRUE(a.cacheable);
  ASSERT_TRUE(b.cacheable);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.normalized_sql, "SELECT * FROM t WHERE id = ?");
  ASSERT_EQ(a.literals.size(), 1u);
  EXPECT_EQ(a.literals[0].type(), TypeId::kInteger);
  EXPECT_EQ(a.literals[0].GetInteger(), 7);
  EXPECT_EQ(b.literals[0].GetInteger(), 9);
}

TEST(NormalizeQueryText, IntegerAndDoubleLandOnDistinctKeys) {
  auto a = NormalizeQueryText("SELECT * FROM t WHERE v = 7");
  auto b = NormalizeQueryText("SELECT * FROM t WHERE v = 7.5");
  ASSERT_TRUE(a.cacheable);
  ASSERT_TRUE(b.cacheable);
  EXPECT_NE(a.key, b.key);  // different coercions, different plans
  EXPECT_EQ(b.literals[0].type(), TypeId::kDouble);
}

TEST(NormalizeQueryText, UnaryMinusFoldsLikeTheParser) {
  auto a = NormalizeQueryText("SELECT * FROM t WHERE id = -5");
  ASSERT_TRUE(a.cacheable);
  ASSERT_EQ(a.literals.size(), 1u);
  EXPECT_EQ(a.literals[0].type(), TypeId::kInteger);
  EXPECT_EQ(a.literals[0].GetInteger(), -5);
  // INT32_MIN classifies by its positive text (2147483648 does not fit
  // int32), exactly like ParseUnary over ParsePrimary.
  auto b = NormalizeQueryText("SELECT * FROM t WHERE id = -2147483648");
  ASSERT_EQ(b.literals.size(), 1u);
  EXPECT_EQ(b.literals[0].type(), TypeId::kBigInt);
  // ...so it keys with other BigInt literals, not with Integer ones.
  auto c = NormalizeQueryText("SELECT * FROM t WHERE id = -3000000000");
  EXPECT_EQ(b.key, c.key);
  EXPECT_NE(a.key, b.key);
  // Binary minus stays arithmetic; only the operand is parameterized.
  auto d = NormalizeQueryText("SELECT * FROM t WHERE id = x - 5");
  EXPECT_EQ(d.normalized_sql, "SELECT * FROM t WHERE id = x - ?");
  EXPECT_EQ(d.literals[0].GetInteger(), 5);
}

TEST(NormalizeQueryText, StringLiteralsUnescapeAndShareKeys) {
  auto a = NormalizeQueryText("SELECT * FROM t WHERE name = 'abc'");
  auto b = NormalizeQueryText("SELECT * FROM t WHERE name = 'it''s'");
  ASSERT_TRUE(a.cacheable);
  ASSERT_TRUE(b.cacheable);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(b.literals[0].ToString(), "it's");
}

TEST(NormalizeQueryText, GrammarPositionsKeepTheirLiterals) {
  // LIMIT/OFFSET demand real integer tokens: the literal stays, so
  // different limits are different cache keys (still cacheable).
  auto a = NormalizeQueryText("SELECT * FROM t LIMIT 5");
  auto b = NormalizeQueryText("SELECT * FROM t LIMIT 10");
  ASSERT_TRUE(a.cacheable);
  EXPECT_NE(a.key, b.key);
  EXPECT_TRUE(a.literals.empty());
  // DATE '...' demands a real string token.
  auto c = NormalizeQueryText("SELECT DATE '2020-01-01'");
  ASSERT_TRUE(c.cacheable);
  EXPECT_TRUE(c.literals.empty());
  // CAST type parameters are skipped (not parsed as expressions): a `?`
  // there would desync positional numbering from literal order.
  auto d =
      NormalizeQueryText("SELECT CAST(id AS VARCHAR(5)) FROM t WHERE id = 3");
  ASSERT_TRUE(d.cacheable);
  ASSERT_EQ(d.literals.size(), 1u);
  EXPECT_EQ(d.literals[0].GetInteger(), 3);
  EXPECT_NE(d.normalized_sql.find("VARCHAR(5)"), std::string::npos);
}

TEST(NormalizeQueryText, UncacheableStatementsBail) {
  EXPECT_FALSE(NormalizeQueryText("SELECT ?").cacheable);
  EXPECT_FALSE(NormalizeQueryText("SELECT $1").cacheable);
  EXPECT_FALSE(NormalizeQueryText("SELECT 1; SELECT 2").cacheable);
  EXPECT_FALSE(NormalizeQueryText("PRAGMA threads").cacheable);
  EXPECT_FALSE(NormalizeQueryText("CREATE TABLE x(i INTEGER)").cacheable);
  EXPECT_FALSE(
      NormalizeQueryText("SELECT * FROM read_csv('f.csv')").cacheable);
  EXPECT_FALSE(NormalizeQueryText("SELECT 'unterminated").cacheable);
  EXPECT_FALSE(NormalizeQueryText("").cacheable);
  // A trailing semicolon is fine; a second statement is not.
  EXPECT_TRUE(NormalizeQueryText("SELECT 1;").cacheable);
  EXPECT_TRUE(NormalizeQueryText("SELECT 1 -- comment").cacheable);
}

// --- Fair thread shares ----------------------------------------------------

TEST(FairShareTest, BudgetSplitsByWeightAcrossActiveQueries) {
  GovernorConfig config;
  config.max_threads = 8;
  ResourceGovernor governor(config);
  TaskScheduler scheduler(&governor);

  // No ticket / single query: the full budget.
  EXPECT_EQ(scheduler.FairThreadShare(nullptr), 8);
  auto only = scheduler.RegisterQuery(1, 2);
  EXPECT_EQ(scheduler.FairThreadShare(only.get()), 8);

  // Two equal queries: half each (ceil).
  auto second = scheduler.RegisterQuery(2, 2);
  EXPECT_EQ(scheduler.FairThreadShare(only.get()), 4);
  EXPECT_EQ(scheduler.FairThreadShare(second.get()), 4);
  EXPECT_EQ(scheduler.active_queries(), 2);

  // Weighted: low (1) against high (4).
  second.reset();
  auto low = scheduler.RegisterQuery(3, 1);
  auto high = scheduler.RegisterQuery(4, 4);
  EXPECT_EQ(scheduler.FairThreadShare(low.get()), 2);   // ceil(8*1/7)
  EXPECT_EQ(scheduler.FairThreadShare(high.get()), 5);  // ceil(8*4/7)

  // Dropping tickets returns the shares.
  low.reset();
  high.reset();
  EXPECT_EQ(scheduler.FairThreadShare(only.get()), 8);
  EXPECT_EQ(scheduler.active_queries(), 1);
}

TEST(FairShareTest, ShareNeverStarvesToZero) {
  GovernorConfig config;
  config.max_threads = 2;
  ResourceGovernor governor(config);
  TaskScheduler scheduler(&governor);
  std::vector<std::unique_ptr<QueryTicket>> tickets;
  for (uint64_t s = 0; s < 8; s++) {
    tickets.push_back(scheduler.RegisterQuery(s, 2));
  }
  for (auto& t : tickets) {
    EXPECT_GE(scheduler.FairThreadShare(t.get()), 1);
  }
}

TEST(FairShareTest, ConcurrentTicketedRunsAllComplete) {
  GovernorConfig config;
  config.max_threads = 4;
  ResourceGovernor governor(config);
  TaskScheduler scheduler(&governor);
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 4; s++) {
    threads.emplace_back([&, s] {
      auto ticket = scheduler.RegisterQuery(static_cast<uint64_t>(s + 1), 2);
      for (int i = 0; i < 20; i++) {
        Status status = scheduler.Run(
            3,
            [&](int) {
              total.fetch_add(1);
              return Status::OK();
            },
            /*governed=*/true, ticket.get());
        ASSERT_TRUE(status.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every job of every session ran despite round-robin multiplexing.
  EXPECT_GT(total.load(), 0);
  EXPECT_EQ(scheduler.active_queries(), 0);
  SchedulerStats stats = scheduler.GetStats();
  EXPECT_EQ(stats.runs, 80u);
}

// --- Admission controller --------------------------------------------------

TEST(AdmissionTest, SingleQueryAlwaysAdmitted) {
  GovernorConfig config;
  ResourceGovernor governor(config);
  AdmissionController admission(&governor);
  admission.SetMaxActive(1);
  ASSERT_TRUE(admission.Admit(1).ok());
  admission.Release();
  EXPECT_EQ(admission.GetStats().admitted, 1u);
}

TEST(AdmissionTest, WaitTimesOutWithResourceExhausted) {
  GovernorConfig config;
  ResourceGovernor governor(config);
  AdmissionController admission(&governor);
  admission.SetMaxActive(1);
  admission.SetTimeoutMs(50);
  ASSERT_TRUE(admission.Admit(1).ok());
  Status second = admission.Admit(1);
  EXPECT_TRUE(second.IsResourceExhausted()) << second.ToString();
  AdmissionStats stats = admission.GetStats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.active, 1);
  admission.Release();
  // The slot freed: the next arrival is admitted immediately.
  ASSERT_TRUE(admission.Admit(1).ok());
  admission.Release();
}

TEST(AdmissionTest, FullQueueShedsInsteadOfQueueing) {
  GovernorConfig config;
  ResourceGovernor governor(config);
  AdmissionController admission(&governor);
  admission.SetMaxActive(1);
  admission.SetQueueDepth(0);
  ASSERT_TRUE(admission.Admit(1).ok());
  Status second = admission.Admit(1);
  EXPECT_TRUE(second.IsResourceExhausted()) << second.ToString();
  EXPECT_EQ(admission.GetStats().shed, 1u);
  admission.Release();
}

TEST(AdmissionTest, HighPriorityOvertakesLowInTheQueue) {
  GovernorConfig config;
  ResourceGovernor governor(config);
  AdmissionController admission(&governor);
  admission.SetMaxActive(1);
  admission.SetTimeoutMs(10000);
  ASSERT_TRUE(admission.Admit(1).ok());

  std::mutex order_mutex;
  std::vector<std::string> order;
  auto record = [&](const char* who) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(who);
  };

  std::thread low([&] {
    ASSERT_TRUE(admission.Admit(0).ok());
    record("low");
    admission.Release();
  });
  // Only enqueue the high-priority waiter once low is provably waiting.
  while (admission.GetStats().waiting < 1) {
    std::this_thread::yield();
  }
  std::thread high([&] {
    ASSERT_TRUE(admission.Admit(2).ok());
    record("high");
    admission.Release();
  });
  while (admission.GetStats().waiting < 2) {
    std::this_thread::yield();
  }
  admission.Release();  // frees the slot: high must win it
  high.join();
  low.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "low");
  EXPECT_EQ(admission.GetStats().queued, 2u);
}

// --- Serving fixture -------------------------------------------------------

class ServingTest : public ::testing::Test {
 protected:
  void Open(DBConfig config = {}) {
    auto db = Database::Open(":memory:", config);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    con_ = std::make_unique<Connection>(db_.get());
  }

  void SetUp() override { Open(); }

  // Loads `rows` rows into `table` (k BIGINT, v BIGINT) via the
  // Appender; k is pseudo-random in [0, rows).
  void Fill(const std::string& table, int rows) {
    ASSERT_TRUE(
        con_->Query("CREATE TABLE " + table + " (k BIGINT, v BIGINT)").ok());
    auto app = Appender::Create(db_.get(), table);
    ASSERT_TRUE(app.ok());
    for (int i = 0; i < rows; i++) {
      (*app)->Append(static_cast<int64_t>((i * 7919LL) % rows));
      (*app)->Append(static_cast<int64_t>(i));
      ASSERT_TRUE((*app)->EndRow().ok());
    }
    ASSERT_TRUE((*app)->Close().ok());
  }

  int64_t Scalar(Connection* con, const std::string& sql) {
    auto r = con->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    if (!r.ok() || (*r)->RowCount() == 0) return -1;
    return (*r)->GetValue(0, 0).GetBigInt();
  }

  // Reads one named counter out of a *_stats PRAGMA row.
  uint64_t Counter(const std::string& pragma, const std::string& column) {
    auto r = con_->Query("PRAGMA " + pragma);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return 0;
    for (idx_t c = 0; c < (*r)->names().size(); c++) {
      if ((*r)->names()[c] == column) {
        return static_cast<uint64_t>((*r)->GetValue(c, 0).GetBigInt());
      }
    }
    ADD_FAILURE() << "no column " << column << " in PRAGMA " << pragma;
    return 0;
  }

  // Canonical row multiset (results are unordered).
  std::multiset<std::string> Rows(Connection* con, const std::string& sql) {
    auto r = con->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    std::multiset<std::string> rows;
    if (!r.ok()) return rows;
    for (idx_t i = 0; i < (*r)->RowCount(); i++) {
      std::string row;
      for (idx_t c = 0; c < (*r)->ColumnCount(); c++) {
        row += (*r)->GetValue(c, i).ToString() + "|";
      }
      rows.insert(row);
    }
    return rows;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> con_;
};

// --- Shared plan cache -----------------------------------------------------

TEST_F(ServingTest, LiteralVariantsShareOnePlanAcrossConnections) {
  Fill("t", 1000);
  Connection other(db_.get());
  uint64_t hits0 = Counter("plan_cache_stats", "hits");

  EXPECT_EQ(Scalar(con_.get(), "SELECT count(*) FROM t WHERE k = 7"), 1);
  idx_t entries_after_first = db_->plan_cache().size();
  // A different literal from a different connection: same entry.
  EXPECT_EQ(Scalar(&other, "SELECT count(*) FROM t WHERE k = 9"), 1);
  EXPECT_EQ(db_->plan_cache().size(), entries_after_first);
  EXPECT_GE(Counter("plan_cache_stats", "hits"), hits0 + 1);
}

TEST_F(ServingTest, NormalizedPlansMatchColdPlans) {
  ASSERT_TRUE(
      con_->Query(
              "CREATE TABLE t (id INTEGER, name VARCHAR, val DOUBLE)")
          .ok());
  ASSERT_TRUE(con_->Query("INSERT INTO t VALUES "
                          "(1, 'a', 1.5), (2, 'it''s', 2.5), (3, NULL, -3.5),"
                          "(-4, 'd', 4.5), (2147483647, 'big', 0.5)")
                  .ok());
  Connection cold(db_.get());
  ASSERT_TRUE(cold.Query("PRAGMA plan_cache=off").ok());

  const char* queries[] = {
      "SELECT id FROM t WHERE id = 2",
      "SELECT id FROM t WHERE id = -4",
      "SELECT id FROM t WHERE id = 2147483647",
      "SELECT count(*) FROM t WHERE name = 'it''s'",
      "SELECT count(*) FROM t WHERE val > 2.5",
      "SELECT id FROM t WHERE id BETWEEN 1 AND 3",
      "SELECT id FROM t WHERE name IS NULL",
      "SELECT id + 1 FROM t WHERE id = 2",
      "SELECT id FROM t WHERE val = -3.5",
      "SELECT CAST(id AS VARCHAR) FROM t WHERE id = 3",
      "SELECT id FROM t WHERE id > -5 ORDER BY id LIMIT 3",
  };
  const uint64_t kQueryCount = sizeof(queries) / sizeof(queries[0]);
  for (const char* sql : queries) {
    auto expected = Rows(&cold, sql);
    EXPECT_EQ(Rows(con_.get(), sql), expected) << sql << " (cold miss)";
    EXPECT_EQ(Rows(con_.get(), sql), expected) << sql << " (cache hit)";
  }
  // Every second run must have been a hit: the normalizer and the plan
  // parameterization agreed on each of these shapes.
  EXPECT_GE(Counter("plan_cache_stats", "hits"), kQueryCount);
}

TEST_F(ServingTest, CrossConnectionDdlInvalidatesSharedPlans) {
  Fill("t", 100);
  EXPECT_EQ(Scalar(con_.get(), "SELECT count(*) FROM t WHERE k = 7"), 1);
  uint64_t invalidations0 = Counter("plan_cache_stats", "invalidations");

  // DDL from a different connection moves the catalog version.
  Connection ddl(db_.get());
  ASSERT_TRUE(ddl.Query("CREATE TABLE unrelated (x BIGINT)").ok());
  EXPECT_EQ(Scalar(con_.get(), "SELECT count(*) FROM t WHERE k = 9"), 1);
  EXPECT_GE(Counter("plan_cache_stats", "invalidations"), invalidations0 + 1);

  // Dropping the table itself: the cached plan dies, the statement
  // reports the missing table, and a re-created table re-plans cleanly.
  ASSERT_TRUE(ddl.Query("DROP TABLE t").ok());
  auto gone = con_->Query("SELECT count(*) FROM t WHERE k = 7");
  EXPECT_FALSE(gone.ok());
  ASSERT_TRUE(ddl.Query("CREATE TABLE t (k BIGINT, v BIGINT)").ok());
  ASSERT_TRUE(ddl.Query("INSERT INTO t VALUES (7, 1)").ok());
  EXPECT_EQ(Scalar(con_.get(), "SELECT count(*) FROM t WHERE k = 7"), 1);
}

TEST_F(ServingTest, PlanCacheStatsCountEveryOutcome) {
  Fill("t", 100);
  uint64_t misses0 = Counter("plan_cache_stats", "misses");
  uint64_t uncacheable0 = Counter("plan_cache_stats", "uncacheable");
  ASSERT_TRUE(con_->Query("SELECT count(*) FROM t WHERE k = 1").ok());
  ASSERT_TRUE(con_->Query("SELECT count(*) FROM t WHERE k = 2").ok());
  EXPECT_EQ(Counter("plan_cache_stats", "misses"), misses0 + 1);
  EXPECT_GE(Counter("plan_cache_stats", "hits"), 1u);
  ASSERT_TRUE(con_->Query("BEGIN; COMMIT").ok());  // uncacheable shape
  EXPECT_GT(Counter("plan_cache_stats", "uncacheable"), uncacheable0);
  EXPECT_GE(Counter("plan_cache_stats", "entries"), 1u);
}

TEST_F(ServingTest, LruEvictionBoundsTheSharedCache) {
  Fill("t", 10);
  // More distinct shapes than capacity: the cache stays bounded and the
  // cold end is evicted.
  for (int i = 0; i < 80; i++) {
    // 80 distinct shapes (different column lists normalize to different
    // SQL even after literal extraction — the list length differs).
    std::string cols;
    for (int c = 0; c <= i; c++) {
      cols += (c ? ", k" : "k");
    }
    std::string sql = "SELECT " + cols + " FROM t WHERE v = 1";
    ASSERT_TRUE(con_->Query(sql).ok());
  }
  EXPECT_LE(db_->plan_cache().size(), SharedPlanCache::kDefaultCapacity);
  EXPECT_GT(Counter("plan_cache_stats", "evictions"), 0u);
}

TEST_F(ServingTest, FourThreadsHammerOneEntry) {
  Fill("t", 1000);
  // Warm the entry.
  ASSERT_EQ(Scalar(con_.get(), "SELECT count(*) FROM t WHERE k = 3"), 1);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; w++) {
    threads.emplace_back([&, w] {
      Connection con(db_.get());
      for (int i = 0; i < 50; i++) {
        int64_t key = (w * 50 + i) % 1000;
        auto r = con.Query("SELECT count(*) FROM t WHERE k = " +
                           std::to_string(key));
        if (!r.ok() || (*r)->GetValue(0, 0).GetBigInt() != 1) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Contended executions fall back to fresh uncached plans rather than
  // serializing on the entry; the stats show both paths were exercised.
  uint64_t hits = Counter("plan_cache_stats", "hits");
  uint64_t busy = Counter("plan_cache_stats", "busy_skips");
  EXPECT_GE(hits + busy, 1u);
}

// --- PRAGMA surface --------------------------------------------------------

TEST_F(ServingTest, ServingPragmasReadBackTheirSettings) {
  auto priority = con_->Query("PRAGMA priority");
  ASSERT_TRUE(priority.ok());
  EXPECT_EQ((*priority)->GetValue(0, 0).ToString(), "normal");
  ASSERT_TRUE(con_->Query("PRAGMA priority=high").ok());
  priority = con_->Query("PRAGMA priority");
  EXPECT_EQ((*priority)->GetValue(0, 0).ToString(), "high");
  EXPECT_EQ(con_->priority_weight(), 4);
  EXPECT_FALSE(con_->Query("PRAGMA priority=urgent").ok());

  ASSERT_TRUE(con_->Query("PRAGMA admission_limit=3").ok());
  EXPECT_EQ(Scalar(con_.get(), "PRAGMA admission_limit"), 3);
  ASSERT_TRUE(con_->Query("PRAGMA admission_queue_depth=5").ok());
  EXPECT_EQ(Scalar(con_.get(), "PRAGMA admission_queue_depth"), 5);
  ASSERT_TRUE(con_->Query("PRAGMA admission_timeout_ms=250").ok());
  EXPECT_EQ(Scalar(con_.get(), "PRAGMA admission_timeout_ms"), 250);
  EXPECT_FALSE(con_->Query("PRAGMA admission_timeout_ms=0").ok());

  // A real statement (PRAGMAs bypass admission) shows up in the stats.
  ASSERT_TRUE(con_->Query("SELECT 1").ok());
  EXPECT_GE(Counter("admission_stats", "admitted"), 1u);
  EXPECT_EQ(Counter("scheduler_stats", "active_queries"), 0u);
}

TEST_F(ServingTest, AdmissionGateShedsThroughSql) {
  Fill("t", 100);
  ASSERT_TRUE(con_->Query("PRAGMA admission_limit=1").ok());
  ASSERT_TRUE(con_->Query("PRAGMA admission_timeout_ms=50").ok());
  ASSERT_TRUE(con_->Query("PRAGMA admission_queue_depth=0").ok());

  // An open stream holds its slot...
  auto stream = con_->SendQuery("SELECT k FROM t");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Fetch().ok());

  // ...so a second connection is shed instead of queueing.
  Connection other(db_.get());
  auto rejected = other.Query("SELECT count(*) FROM t");
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_GE(Counter("admission_stats", "shed"), 1u);

  // The same connection rides its own held slot (no self-deadlock).
  EXPECT_EQ(Scalar(con_.get(), "SELECT count(*) FROM t"), 100);

  ASSERT_TRUE((*stream)->Close().ok());
  // Slot released: the other connection is admitted again.
  EXPECT_EQ(Scalar(&other, "SELECT count(*) FROM t"), 100);
}

// --- Interrupt -------------------------------------------------------------

TEST_F(ServingTest, PendingInterruptCancelsTheNextStatement) {
  Fill("t", 1000);
  con_->Interrupt();
  auto r = con_->Query("SELECT count(*) FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInterrupted()) << r.status().ToString();
  // One Interrupt cancels exactly one statement; the connection is
  // immediately reusable.
  EXPECT_EQ(Scalar(con_.get(), "SELECT count(*) FROM t"), 1000);
}

TEST_F(ServingTest, InterruptFromAnotherThreadCancelsMidScan) {
  Fill("big", 400000);
  std::atomic<bool> done{false};
  std::thread interrupter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    con_->Interrupt();
    done.store(true);
  });
  // A join of big against itself: long enough that the interrupt lands
  // mid-execution on most runs; if the query wins the race the flag
  // cancels this repeat loop's next statement instead — both outcomes
  // must leave the connection healthy.
  auto r = con_->Query(
      "SELECT count(*) FROM big a, big b WHERE a.k = b.k AND a.v < b.v");
  interrupter.join();
  if (!r.ok()) {
    EXPECT_TRUE(r.status().IsInterrupted()) << r.status().ToString();
  }
  // Consume a possibly still-pending flag, then prove reusability.
  auto drain = con_->Query("SELECT 1");
  (void)drain;
  EXPECT_EQ(Scalar(con_.get(), "SELECT count(*) FROM big"), 400000);
}

TEST_F(ServingTest, InterruptMidSpillReleasesEveryPin) {
  DBConfig config;
  config.memory_limit = 2ull << 20;  // force the grace join to spill
  Open(config);
  Fill("l", 120000);
  Fill("r", 120000);
  const std::string join =
      "SELECT count(*) FROM l, r WHERE l.k = r.k AND l.v < r.v";

  // Interrupt the spilling join several times: a pin leaked by any
  // cancelled partition would accumulate and wedge the 2 MiB budget.
  for (int round = 0; round < 3; round++) {
    std::thread interrupter([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      con_->Interrupt();
    });
    auto r = con_->Query(join);
    interrupter.join();
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsInterrupted()) << r.status().ToString();
    }
    (void)con_->Query("SELECT 1");  // consume a late-landing flag
  }
  // Every pin was released on teardown: memory is back within budget
  // and the same join still completes under it.
  EXPECT_LE(Counter("buffer_stats", "memory_used"), 2ull << 20);
  auto full = con_->Query(join);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(Scalar(con_.get(), "SELECT count(*) FROM l"), 120000);
}

TEST_F(ServingTest, InterruptEndsAStreamingResult) {
  Fill("t", 200000);
  auto stream = con_->SendQuery("SELECT k, v FROM t");
  ASSERT_TRUE(stream.ok());
  auto first = (*stream)->Fetch();
  ASSERT_TRUE(first.ok());
  ASSERT_NE(*first, nullptr);

  con_->Interrupt();
  auto next = (*stream)->Fetch();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsInterrupted()) << next.status().ToString();
  ASSERT_TRUE((*stream)->Close().ok());
  // Closing consumed the interrupt; the connection works again.
  EXPECT_EQ(Scalar(con_.get(), "SELECT count(*) FROM t"), 200000);
}

TEST_F(ServingTest, CApiInterruptReachesTheEngine) {
  mallard_database* db = nullptr;
  ASSERT_EQ(mallard_open(nullptr, &db), MALLARD_SUCCESS);
  mallard_connection* con = nullptr;
  ASSERT_EQ(mallard_connect(db, &con), MALLARD_SUCCESS);

  mallard_result* result = nullptr;
  ASSERT_EQ(mallard_query(con, "CREATE TABLE t (i INTEGER)", &result),
            MALLARD_SUCCESS);
  mallard_destroy_result(&result);

  ASSERT_EQ(mallard_interrupt(con), MALLARD_SUCCESS);
  ASSERT_EQ(mallard_query(con, "SELECT * FROM t", &result), MALLARD_ERROR);
  ASSERT_NE(mallard_result_error(result), nullptr);
  EXPECT_NE(std::string(mallard_result_error(result)).find("Interrupted"),
            std::string::npos);
  mallard_destroy_result(&result);

  // The connection survives the cancellation.
  ASSERT_EQ(mallard_query(con, "SELECT * FROM t", &result), MALLARD_SUCCESS);
  mallard_destroy_result(&result);

  EXPECT_EQ(mallard_interrupt(nullptr), MALLARD_ERROR);
  mallard_disconnect(&con);
  mallard_close(&db);
}

// --- Fairness under contention ---------------------------------------------

TEST_F(ServingTest, PointQueriesProgressUnderALongScan) {
  DBConfig config;
  config.threads = 4;
  Open(config);
  Fill("big", 600000);
  Fill("small", 1000);

  std::atomic<bool> stop{false};
  std::atomic<bool> long_running{false};
  std::atomic<int> scans{0};
  std::thread scanner([&] {
    Connection con(db_.get());
    while (!stop.load()) {
      long_running.store(true);
      auto r = con.Query(
          "SELECT count(*), sum(v), min(v), max(v) FROM big WHERE v >= 0");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      scans.fetch_add(1);
    }
  });
  while (!long_running.load()) std::this_thread::yield();

  // Point queries on a second session must keep completing (the fair
  // share guarantees them >= 1 worker; round-robin pickup keeps their
  // jobs from queueing behind the scan's). The bound is generous — this
  // asserts no starvation, not a latency SLA.
  Connection point(db_.get());
  auto worst = std::chrono::milliseconds(0);
  for (int i = 0; i < 30; i++) {
    auto start = std::chrono::steady_clock::now();
    auto r = point.Query("SELECT count(*) FROM small WHERE k = " +
                         std::to_string(i));
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
    if (elapsed > worst) worst = elapsed;
  }
  stop.store(true);
  scanner.join();
  EXPECT_LT(worst.count(), 2000) << "a point query starved behind the scan";
  // The scheduler actually multiplexed both sessions.
  EXPECT_GE(Counter("scheduler_stats", "runs"), 1u);
}

// --- Multi-client server ---------------------------------------------------

TEST_F(ServingTest, ServerServesConcurrentClients) {
  Fill("t", 5000);
  auto server = net::QueryServer::Start(db_.get(),
                                        net::Protocol::kBinaryColumnar);
  ASSERT_TRUE(server.ok());
  std::vector<int> fds = {(*server)->client_fd()};
  for (int i = 0; i < 3; i++) {
    auto fd = (*server)->AddClient();
    ASSERT_TRUE(fd.ok());
    fds.push_back(*fd);
  }
  EXPECT_EQ((*server)->client_count(), 4u);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < fds.size(); c++) {
    clients.emplace_back([&, c] {
      net::QueryClient client(fds[c], net::Protocol::kBinaryColumnar);
      for (int i = 0; i < 25; i++) {
        int64_t key = static_cast<int64_t>((c * 25 + i) % 5000);
        auto r = client.Query("SELECT count(*) FROM t WHERE k = " +
                              std::to_string(key));
        if (!r.ok() || (*r)->GetValue(0, 0).GetBigInt() != 1) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT((*server)->bytes_sent(), 0u);
  // Destructor performs the orderly shutdown (joins all four threads).
}

TEST_F(ServingTest, ServerConnectionsPersistAcrossQueries) {
  auto server = net::QueryServer::Start(db_.get(), net::Protocol::kText);
  ASSERT_TRUE(server.ok());
  net::QueryClient client((*server)->client_fd(), net::Protocol::kText);

  // Session state set in one request is visible in the next: the client
  // is served by one persistent Connection, not a connection per query.
  ASSERT_TRUE(client.Query("PRAGMA priority=high").ok());
  auto priority = client.Query("PRAGMA priority");
  ASSERT_TRUE(priority.ok());
  EXPECT_EQ((*priority)->GetValue(0, 0).ToString(), "high");

  // An explicit transaction spans requests.
  ASSERT_TRUE(client.Query("CREATE TABLE s (x BIGINT)").ok());
  ASSERT_TRUE(client.Query("BEGIN").ok());
  ASSERT_TRUE(client.Query("INSERT INTO s VALUES (1), (2)").ok());
  ASSERT_TRUE(client.Query("COMMIT").ok());
  auto count = client.Query("SELECT count(*) FROM s");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ((*count)->GetValue(0, 0).GetBigInt(), 2);
}

// --- Mixed-workload stress -------------------------------------------------

TEST_F(ServingTest, MixedReadWriteDdlStress) {
  const int kThreads = 8;
  const int kIters = 30;
  Fill("stable", 2000);

  // Per-writer tables exist up front so readers never race creation.
  for (int w = 0; w < kThreads; w++) {
    ASSERT_TRUE(con_->Query("CREATE TABLE w" + std::to_string(w) +
                            " (k BIGINT, v BIGINT)")
                    .ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Connection con(db_.get());
      for (int i = 0; i < kIters; i++) {
        Status status = Status::OK();
        switch (t % 4) {
          case 0: {  // reader: a stable table always reads consistently
            auto r = con.Query("SELECT count(*) FROM stable WHERE k >= 0");
            if (!r.ok() || (*r)->GetValue(0, 0).GetBigInt() != 2000) {
              failures.fetch_add(1);
            }
            break;
          }
          case 1: {  // point reader through the shared plan cache
            auto r = con.Query("SELECT count(*) FROM stable WHERE k = " +
                               std::to_string(i % 2000));
            if (!r.ok() || (*r)->GetValue(0, 0).GetBigInt() != 1) {
              failures.fetch_add(1);
            }
            break;
          }
          case 2: {  // writer: its own table, every row must land
            auto r = con.Query("INSERT INTO w" + std::to_string(t) +
                               " VALUES (" + std::to_string(i) + ", " +
                               std::to_string(t) + ")");
            if (!r.ok()) failures.fetch_add(1);
            break;
          }
          case 3: {  // DDL churn on thread-private names
            std::string name =
                "d" + std::to_string(t) + "_" + std::to_string(i);
            status = con.Query("CREATE TABLE " + name + " (x BIGINT)")
                         .status();
            if (status.ok()) {
              status = con.Query("DROP TABLE " + name).status();
            }
            if (!status.ok()) failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Isolation: no lost writes — every writer's rows are all present.
  for (int t = 0; t < kThreads; t++) {
    if (t % 4 == 2) {
      EXPECT_EQ(Scalar(con_.get(),
                       "SELECT count(*) FROM w" + std::to_string(t)),
                kIters)
          << "writer " << t << " lost rows";
    }
  }
  // All tickets returned, all slots released (PRAGMAs don't register).
  EXPECT_EQ(Counter("scheduler_stats", "active_queries"), 0u);
  EXPECT_EQ(Counter("admission_stats", "active"), 0u);
}

}  // namespace
}  // namespace mallard
