// Compressed-execution tests: dictionary and FOR/bit-packed column
// segments. Covers encode-on-fill heuristics (including all-NULL,
// single-value and dictionary-overflow segments), forced-encoding
// equivalence (results must be bit-identical between plain and encoded
// runs), updates against encoded segments (transparent decode),
// checkpoint round-trips of encoded segments, serial-vs-parallel scan
// equivalence, PRAGMA storage_stats, and compressed spill writes.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/storage/buffer_manager.h"
#include "mallard/storage/table/column_segment.h"

namespace mallard {
namespace {

// Rows per finalized row group — segments only encode once a row group
// fills, so the interesting tests append at least this many rows.
constexpr idx_t kGroup = kRowGroupSize;

std::string TempPath(const std::string& tag) {
  return "/tmp/mallard_enc_" + tag + "_" + std::to_string(::getpid());
}

void Cleanup(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".tmp").c_str());
}

// Serializes a whole result set so two runs can be compared for exact
// equality (NULLs included).
std::string ResultImage(const MaterializedQueryResult& result) {
  std::string out;
  for (idx_t row = 0; row < result.RowCount(); row++) {
    for (idx_t col = 0; col < result.ColumnCount(); col++) {
      Value v = result.GetValue(col, row);
      out += v.is_null() ? "NULL" : v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

class EncodingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("MALLARD_FORCE_ENCODING");
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    connection_ = std::make_unique<Connection>(db_.get());
  }

  void TearDown() override { ::unsetenv("MALLARD_FORCE_ENCODING"); }

  std::unique_ptr<MaterializedQueryResult> Q(const std::string& sql) {
    auto result = connection_->Query(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    if (!result.ok()) return nullptr;
    return std::move(*result);
  }

  // Fills `table` with `rows` rows of (id BIGINT, grp INTEGER,
  // name VARCHAR): grp cycles over `cardinality` values, name is
  // "name_<grp>" — dictionary-friendly on both non-key columns.
  void FillTable(const std::string& table, idx_t rows, idx_t cardinality) {
    auto appender = Appender::Create(db_.get(), table);
    ASSERT_TRUE(appender.ok()) << appender.status().ToString();
    for (idx_t i = 0; i < rows; i++) {
      idx_t g = i % cardinality;
      (*appender)->Append(static_cast<int64_t>(i));
      (*appender)->Append(static_cast<int32_t>(g));
      (*appender)->Append("name_" + std::to_string(g));
      ASSERT_TRUE((*appender)->EndRow().ok());
    }
    ASSERT_TRUE((*appender)->Close().ok());
  }

  uint64_t StorageStat(const std::string& column) {
    auto r = Q("PRAGMA storage_stats");
    EXPECT_NE(r, nullptr);
    if (!r) return 0;
    for (idx_t c = 0; c < r->ColumnCount(); c++) {
      if (r->names()[c] == column) {
        return static_cast<uint64_t>(r->GetValue(c, 0).GetBigInt());
      }
    }
    ADD_FAILURE() << "no storage_stats column " << column;
    return 0;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> connection_;
};

// ---------------------------------------------------------------------------
// Encoding heuristics and storage_stats
// ---------------------------------------------------------------------------

TEST_F(EncodingTest, AutoEncodingKicksInOnFullRowGroups) {
  Q("CREATE TABLE t (id BIGINT, grp INTEGER, name VARCHAR)");
  FillTable("t", 2 * kGroup, 16);
  // Two full row groups, three columns each: the low-cardinality
  // integer and varchar columns must leave plain; dense ascending ids
  // FOR-compress too.
  EXPECT_EQ(StorageStat("segments_total"), 6u);
  EXPECT_GT(StorageStat("segments_dict"), 0u);
  EXPECT_GT(StorageStat("segments_for"), 0u);
  EXPECT_LT(StorageStat("encoded_bytes"), StorageStat("logical_bytes"));
  EXPECT_GT(StorageStat("dict_rows"), 0u);
}

TEST_F(EncodingTest, PartialRowGroupStaysPlain) {
  Q("CREATE TABLE t (id BIGINT, grp INTEGER, name VARCHAR)");
  FillTable("t", 100, 4);
  // Unfinalized tail row groups are never encoded.
  EXPECT_EQ(StorageStat("segments_total"), 3u);
  EXPECT_EQ(StorageStat("segments_plain"), 3u);
}

TEST_F(EncodingTest, DictionaryOverflowFallsBackToPlain) {
  Q("CREATE TABLE t (name VARCHAR)");
  auto appender = Appender::Create(db_.get(), "t");
  ASSERT_TRUE(appender.ok());
  // Every value distinct: 8192 distinct strings exceed the 4096-entry
  // auto-dictionary cap, so the segment must stay plain.
  for (idx_t i = 0; i < kGroup; i++) {
    (*appender)->Append("unique_value_" + std::to_string(i));
    ASSERT_TRUE((*appender)->EndRow().ok());
  }
  ASSERT_TRUE((*appender)->Close().ok());
  EXPECT_EQ(StorageStat("segments_dict"), 0u);
  EXPECT_EQ(StorageStat("segments_plain"), 1u);
  auto r = Q("SELECT count(*) FROM t WHERE name = 'unique_value_4242'");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 1);
}

TEST_F(EncodingTest, AllNullSegments) {
  Q("CREATE TABLE t (a INTEGER, s VARCHAR)");
  auto appender = Appender::Create(db_.get(), "t");
  ASSERT_TRUE(appender.ok());
  for (idx_t i = 0; i < kGroup; i++) {
    (*appender)->AppendNull();
    (*appender)->AppendNull();
    ASSERT_TRUE((*appender)->EndRow().ok());
  }
  ASSERT_TRUE((*appender)->Close().ok());
  auto r = Q("SELECT count(*), count(a), count(s) FROM t");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), static_cast<int64_t>(kGroup));
  EXPECT_EQ(r->GetValue(1, 0).GetBigInt(), 0);
  EXPECT_EQ(r->GetValue(2, 0).GetBigInt(), 0);
  // Filters against all-NULL encoded segments match nothing.
  r = Q("SELECT count(*) FROM t WHERE a > 0");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 0);
  r = Q("SELECT count(*) FROM t WHERE s = 'x'");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 0);
}

TEST_F(EncodingTest, SingleValueSegments) {
  Q("CREATE TABLE t (a BIGINT, s VARCHAR)");
  auto appender = Appender::Create(db_.get(), "t");
  ASSERT_TRUE(appender.ok());
  for (idx_t i = 0; i < kGroup; i++) {
    (*appender)->Append(static_cast<int64_t>(7));
    (*appender)->Append("only");
    ASSERT_TRUE((*appender)->EndRow().ok());
  }
  ASSERT_TRUE((*appender)->Close().ok());
  // A single distinct value packs to 0 bits per row.
  EXPECT_EQ(StorageStat("segments_plain"), 0u);
  auto r = Q("SELECT count(*) FROM t WHERE a = 7 AND s = 'only'");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), static_cast<int64_t>(kGroup));
  r = Q("SELECT count(*) FROM t WHERE a <> 7 OR s < 'only'");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 0);
}

TEST_F(EncodingTest, ForcedEncodingOverride) {
  ::setenv("MALLARD_FORCE_ENCODING", "plain", 1);
  Q("CREATE TABLE t_plain (grp INTEGER, name VARCHAR)");
  {
    auto appender = Appender::Create(db_.get(), "t_plain");
    ASSERT_TRUE(appender.ok());
    for (idx_t i = 0; i < kGroup; i++) {
      (*appender)->Append(static_cast<int32_t>(i % 8));
      (*appender)->Append("v" + std::to_string(i % 8));
      ASSERT_TRUE((*appender)->EndRow().ok());
    }
    ASSERT_TRUE((*appender)->Close().ok());
  }
  EXPECT_EQ(StorageStat("segments_plain"), 2u);
  ::setenv("MALLARD_FORCE_ENCODING", "dict", 1);
  Q("CREATE TABLE t_dict (grp INTEGER, name VARCHAR)");
  {
    auto appender = Appender::Create(db_.get(), "t_dict");
    ASSERT_TRUE(appender.ok());
    for (idx_t i = 0; i < kGroup; i++) {
      (*appender)->Append(static_cast<int32_t>(i % 8));
      (*appender)->Append("v" + std::to_string(i % 8));
      ASSERT_TRUE((*appender)->EndRow().ok());
    }
    ASSERT_TRUE((*appender)->Close().ok());
  }
  ::unsetenv("MALLARD_FORCE_ENCODING");
  EXPECT_EQ(StorageStat("segments_dict"), 2u);
}

// ---------------------------------------------------------------------------
// Plain vs encoded result equivalence
// ---------------------------------------------------------------------------

TEST_F(EncodingTest, PlainAndEncodedResultsBitIdentical) {
  // Build the same data twice: once forced plain, once auto-encoded.
  ::setenv("MALLARD_FORCE_ENCODING", "plain", 1);
  Q("CREATE TABLE t_plain (id BIGINT, grp INTEGER, name VARCHAR)");
  FillTable("t_plain", kGroup + 500, 97);
  ::unsetenv("MALLARD_FORCE_ENCODING");
  Q("CREATE TABLE t_enc (id BIGINT, grp INTEGER, name VARCHAR)");
  FillTable("t_enc", kGroup + 500, 97);
  ASSERT_GT(StorageStat("segments_dict") + StorageStat("segments_for"), 0u);

  const char* queries[] = {
      "SELECT count(*), sum(id) FROM $T WHERE grp >= 10 AND grp < 40",
      "SELECT count(*) FROM $T WHERE name = 'name_42'",
      "SELECT count(*) FROM $T WHERE name >= 'name_3' AND name < 'name_5'",
      "SELECT count(*) FROM $T WHERE name LIKE 'name_1%'",
      "SELECT name, count(*), sum(id) FROM $T GROUP BY name ORDER BY name",
      "SELECT grp, min(name), max(name) FROM $T GROUP BY grp ORDER BY grp",
      "SELECT id, name FROM $T WHERE id > 8000 ORDER BY name, id",
      "SELECT a.grp, count(*) FROM $T a JOIN $T b ON a.name = b.name "
      "AND a.id = b.id GROUP BY a.grp ORDER BY a.grp",
  };
  for (const char* q : queries) {
    std::string sql(q);
    std::string plain_sql = sql, enc_sql = sql;
    for (std::string::size_type pos;
         (pos = plain_sql.find("$T")) != std::string::npos;) {
      plain_sql.replace(pos, 2, "t_plain");
    }
    for (std::string::size_type pos;
         (pos = enc_sql.find("$T")) != std::string::npos;) {
      enc_sql.replace(pos, 2, "t_enc");
    }
    auto plain = Q(plain_sql);
    auto enc = Q(enc_sql);
    ASSERT_NE(plain, nullptr);
    ASSERT_NE(enc, nullptr);
    EXPECT_EQ(ResultImage(*plain), ResultImage(*enc)) << sql;
  }
}

TEST_F(EncodingTest, SerialAndParallelScansAgree) {
  Q("CREATE TABLE t (id BIGINT, grp INTEGER, name VARCHAR)");
  FillTable("t", 4 * kGroup, 64);
  const char* sql =
      "SELECT grp, count(*), sum(id), min(name), max(name) FROM t "
      "WHERE grp < 48 GROUP BY grp ORDER BY grp";
  Q("PRAGMA threads=1");
  auto serial = Q(sql);
  Q("PRAGMA threads=4");
  auto parallel = Q(sql);
  Q("PRAGMA threads=0");
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(ResultImage(*serial), ResultImage(*parallel));
}

// ---------------------------------------------------------------------------
// Mutating encoded segments
// ---------------------------------------------------------------------------

TEST_F(EncodingTest, UpdateAndDeleteOnEncodedSegments) {
  Q("CREATE TABLE t (id BIGINT, grp INTEGER, name VARCHAR)");
  FillTable("t", kGroup, 32);
  ASSERT_GT(StorageStat("segments_dict") + StorageStat("segments_for"), 0u);
  // Updates write through the encoded segment (transparent decode for
  // pre-images and in-place writes); results must reflect them.
  Q("UPDATE t SET name = 'updated' WHERE grp = 5");
  auto r = Q("SELECT count(*) FROM t WHERE name = 'updated'");
  ASSERT_NE(r, nullptr);
  int64_t updated = r->GetValue(0, 0).GetBigInt();
  EXPECT_EQ(updated, static_cast<int64_t>(kGroup / 32));
  r = Q("SELECT count(*) FROM t WHERE name = 'name_5'");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 0);
  EXPECT_GT(StorageStat("decode_count"), 0u);
  Q("DELETE FROM t WHERE grp = 6");
  r = Q("SELECT count(*) FROM t");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(),
            static_cast<int64_t>(kGroup - kGroup / 32));
}

TEST_F(EncodingTest, RollbackAgainstEncodedSegment) {
  Q("CREATE TABLE t (grp INTEGER, name VARCHAR)");
  auto appender = Appender::Create(db_.get(), "t");
  ASSERT_TRUE(appender.ok());
  for (idx_t i = 0; i < kGroup; i++) {
    (*appender)->Append(static_cast<int32_t>(i % 10));
    (*appender)->Append("s" + std::to_string(i % 10));
    ASSERT_TRUE((*appender)->EndRow().ok());
  }
  ASSERT_TRUE((*appender)->Close().ok());
  ASSERT_TRUE(connection_->BeginTransaction().ok());
  Q("UPDATE t SET name = 'gone' WHERE grp = 3");
  ASSERT_TRUE(connection_->Rollback().ok());
  auto r = Q("SELECT count(*) FROM t WHERE name = 's3'");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), static_cast<int64_t>(kGroup / 10));
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

TEST(EncodingPersistenceTest, EncodedSegmentsSurviveCheckpointReopen) {
  std::string path = TempPath("persist");
  Cleanup(path);
  std::string image;
  {
    auto db = Database::Open(path);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Connection con(db->get());
    auto s = con.Query("CREATE TABLE t (id BIGINT, grp INTEGER, "
                       "name VARCHAR)");
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    auto appender = Appender::Create(db->get(), "t");
    ASSERT_TRUE(appender.ok());
    for (idx_t i = 0; i < kRowGroupSize + 100; i++) {
      (*appender)->Append(static_cast<int64_t>(i * 3));
      (*appender)->Append(static_cast<int32_t>(i % 21));
      (*appender)->Append("name_" + std::to_string(i % 21));
      ASSERT_TRUE((*appender)->EndRow().ok());
    }
    ASSERT_TRUE((*appender)->Close().ok());
    auto r = con.Query(
        "SELECT grp, count(*), sum(id), min(name) FROM t "
        "WHERE name >= 'name_1' GROUP BY grp ORDER BY grp");
    ASSERT_TRUE(r.ok());
    image = ResultImage(**r);
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    auto db = Database::Open(path);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Connection con(db->get());
    // The checkpoint wrote encoded segments; the reopened table must
    // still report them (no silent decode on load) and scan the same.
    auto stats = con.Query("PRAGMA storage_stats");
    ASSERT_TRUE(stats.ok());
    int64_t dict = 0, enc_for = 0;
    for (idx_t c = 0; c < (*stats)->ColumnCount(); c++) {
      if ((*stats)->names()[c] == "segments_dict") {
        dict = (*stats)->GetValue(c, 0).GetBigInt();
      }
      if ((*stats)->names()[c] == "segments_for") {
        enc_for = (*stats)->GetValue(c, 0).GetBigInt();
      }
    }
    EXPECT_GT(dict + enc_for, 0);
    auto r = con.Query(
        "SELECT grp, count(*), sum(id), min(name) FROM t "
        "WHERE name >= 'name_1' GROUP BY grp ORDER BY grp");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(image, ResultImage(**r));
    // And the reopened encoded segments accept new writes.
    auto u = con.Query("UPDATE t SET name = 'rewritten' WHERE grp = 2");
    ASSERT_TRUE(u.ok()) << u.status().ToString();
    r = con.Query("SELECT count(*) FROM t WHERE name = 'rewritten'");
    ASSERT_TRUE(r.ok());
    EXPECT_GT((*r)->GetValue(0, 0).GetBigInt(), 0);
  }
  Cleanup(path);
}

// ---------------------------------------------------------------------------
// Compressed spill writes (buffer manager integration)
// ---------------------------------------------------------------------------

TEST(SpillCompressionTest, CompressedSpillRoundtripAndSavedBytes) {
  BufferManager buffers(64 * 1024, "");
  buffers.SetSpillCompression([] { return CompressionLevel::kLight; });
  auto a = buffers.Allocate(48 * 1024);
  ASSERT_TRUE(a.ok());
  // Highly repetitive contents: RLE must shrink the spill write.
  for (idx_t i = 0; i < 48 * 1024; i++) {
    a->data()[i] = static_cast<uint8_t>(i / 4096);
  }
  std::shared_ptr<ManagedBuffer> held = a->buffer();
  a->Release();
  auto b = buffers.Allocate(48 * 1024);  // forces the eviction
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(held->resident());
  BufferManagerStats stats = buffers.GetStats();
  EXPECT_EQ(stats.spill_compressed_count, 1u);
  EXPECT_GT(stats.spill_saved_bytes, 0u);
  EXPECT_LT(stats.spilled_bytes, 48u * 1024);
  // Reload decompresses transparently and byte-exactly.
  auto repin = buffers.Pin(held);
  ASSERT_TRUE(repin.ok()) << repin.status().ToString();
  for (idx_t i = 0; i < 48 * 1024; i += 1021) {
    ASSERT_EQ(repin->data()[i], static_cast<uint8_t>(i / 4096)) << i;
  }
}

TEST(SpillCompressionTest, IncompressibleSpillStaysRaw) {
  BufferManager buffers(64 * 1024, "");
  buffers.SetSpillCompression([] { return CompressionLevel::kLight; });
  auto a = buffers.Allocate(48 * 1024);
  ASSERT_TRUE(a.ok());
  // Pseudo-random contents defeat RLE; the spill must keep the raw
  // image rather than growing it.
  uint64_t x = 0x2545F4914F6CDD1Dull;
  for (idx_t i = 0; i < 48 * 1024; i++) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    a->data()[i] = static_cast<uint8_t>(x);
  }
  std::shared_ptr<ManagedBuffer> held = a->buffer();
  a->Release();
  auto b = buffers.Allocate(48 * 1024);
  ASSERT_TRUE(b.ok());
  BufferManagerStats stats = buffers.GetStats();
  EXPECT_EQ(stats.spill_compressed_count, 0u);
  EXPECT_EQ(stats.spilled_bytes, 48u * 1024);
  auto repin = buffers.Pin(held);
  ASSERT_TRUE(repin.ok());
  x = 0x2545F4914F6CDD1Dull;
  for (idx_t i = 0; i < 48 * 1024; i++) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    ASSERT_EQ(repin->data()[i], static_cast<uint8_t>(x)) << i;
  }
}

}  // namespace
}  // namespace mallard
