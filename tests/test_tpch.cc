// TPC-H generator + query smoke and sanity tests (tiny scale factor).

#include <gtest/gtest.h>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/tpch/tpch.h"

namespace mallard {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok());
    db_ = db->release();
    Status status = tpch::Generate(db_, 0.002);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  std::unique_ptr<MaterializedQueryResult> Q(const std::string& sql) {
    Connection con(db_);
    auto result = con.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    if (!result.ok()) return nullptr;
    return std::move(*result);
  }

  static Database* db_;
};

Database* TpchTest::db_ = nullptr;

TEST_F(TpchTest, Cardinalities) {
  auto r = Q("SELECT count(*) FROM region");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 5);
  r = Q("SELECT count(*) FROM nation");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 25);
  r = Q("SELECT count(*) FROM orders");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 3000);
  r = Q("SELECT count(*) FROM lineitem");
  int64_t lines = r->GetValue(0, 0).GetBigInt();
  EXPECT_GT(lines, 3000);   // 1..7 lines per order
  EXPECT_LT(lines, 21001);
}

TEST_F(TpchTest, ForeignKeysResolve) {
  // Every lineitem joins to exactly one order.
  auto r = Q("SELECT count(*) FROM lineitem, orders "
             "WHERE l_orderkey = o_orderkey");
  auto r2 = Q("SELECT count(*) FROM lineitem");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), r2->GetValue(0, 0).GetBigInt());
  // Every nation has a region.
  r = Q("SELECT count(*) FROM nation, region WHERE n_regionkey = r_regionkey");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 25);
}

class TpchQueryTest : public TpchTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(TpchQueryTest, RunsAndProducesRows) {
  int q = GetParam();
  std::string sql = tpch::Query(q);
  ASSERT_FALSE(sql.empty());
  auto r = Q(sql);
  ASSERT_NE(r, nullptr) << "Q" << q;
  // Aggregation queries always produce at least one row.
  EXPECT_GE(r->RowCount(), 1u) << "Q" << q;
  if (q == 1) {
    // Q1 groups by (returnflag, linestatus): at most 2x2 observed combos.
    EXPECT_LE(r->RowCount(), 4u);
    // count_order column is the last; sums must be positive.
    EXPECT_GT(r->GetValue(2, 0).GetDouble(), 0.0);
  }
  if (q == 6) {
    EXPECT_FALSE(r->GetValue(0, 0).is_null());
    EXPECT_GT(r->GetValue(0, 0).GetDouble(), 0.0);
  }
  if (q == 3) {
    EXPECT_LE(r->RowCount(), 10u);
  }
  if (q == 10) {
    EXPECT_LE(r->RowCount(), 20u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest,
                         ::testing::ValuesIn(tpch::SupportedQueries()));

}  // namespace
}  // namespace mallard
