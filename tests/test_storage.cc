// Storage layer tests: block manager (checksums, header flip), meta
// chains, buffer manager (spill, quarantine), WAL recovery, checkpoint
// persistence, corruption detection end-to-end.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/storage/block_manager.h"
#include "mallard/storage/buffer_manager.h"
#include "mallard/storage/meta_block.h"

namespace mallard {
namespace {

std::string TempPath(const std::string& tag) {
  return "/tmp/mallard_test_" + tag + "_" + std::to_string(::getpid());
}

void Cleanup(const std::string& path) {
  RemoveFile(path);
  RemoveFile(path + ".wal");
  RemoveFile(path + ".tmp");
}

class BlockManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("blocks");
    Cleanup(path_);
    FaultInjector::Get().Reset();
  }
  void TearDown() override {
    Cleanup(path_);
    FaultInjector::Get().Reset();
  }
  std::string path_;
};

TEST_F(BlockManagerTest, CreateWriteReadReopen) {
  bool created = false;
  auto bm = BlockManager::Open(path_, true, &created);
  ASSERT_TRUE(bm.ok());
  EXPECT_TRUE(created);
  block_id_t id = (*bm)->AllocateBlock();
  std::vector<uint8_t> payload(kBlockPayloadSize, 0x5A);
  ASSERT_TRUE((*bm)->WriteBlock(id, payload.data()).ok());
  ASSERT_TRUE((*bm)->WriteHeader(id).ok());
  bm->reset();

  auto reopened = BlockManager::Open(path_, true, &created);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(created);
  EXPECT_EQ((*reopened)->header().meta_block, id);
  std::vector<uint8_t> read_back(kBlockPayloadSize);
  ASSERT_TRUE((*reopened)->ReadBlock(id, read_back.data()).ok());
  EXPECT_EQ(read_back, payload);
}

TEST_F(BlockManagerTest, ChecksumDetectsOnDiskCorruption) {
  bool created;
  auto bm = BlockManager::Open(path_, true, &created);
  block_id_t id = (*bm)->AllocateBlock();
  std::vector<uint8_t> payload(kBlockPayloadSize, 0x11);
  ASSERT_TRUE((*bm)->WriteBlock(id, payload.data()).ok());
  // Flip one bit directly in the file — silent disk corruption.
  ASSERT_TRUE((*bm)->CorruptBlockOnDisk(id, 123457).ok());
  std::vector<uint8_t> read_back(kBlockPayloadSize);
  Status status = (*bm)->ReadBlock(id, read_back.data());
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(BlockManagerTest, ChecksumsOffMissesCorruption) {
  // Control experiment: without checksums the corruption is silent —
  // exactly the failure mode the paper warns about (section 3).
  bool created;
  auto bm = BlockManager::Open(path_, false, &created);
  block_id_t id = (*bm)->AllocateBlock();
  std::vector<uint8_t> payload(kBlockPayloadSize, 0x11);
  ASSERT_TRUE((*bm)->WriteBlock(id, payload.data()).ok());
  ASSERT_TRUE((*bm)->CorruptBlockOnDisk(id, 123457).ok());
  std::vector<uint8_t> read_back(kBlockPayloadSize);
  EXPECT_TRUE((*bm)->ReadBlock(id, read_back.data()).ok());
  EXPECT_NE(read_back, payload);  // silently wrong data
}

TEST_F(BlockManagerTest, InjectedWriteBitFlipCaughtOnRead) {
  bool created;
  auto bm = BlockManager::Open(path_, true, &created);
  block_id_t id = (*bm)->AllocateBlock();
  std::vector<uint8_t> payload(kBlockPayloadSize, 0x33);
  FaultInjector::Get().ArmOnce(FaultSite::kBlockWrite);
  ASSERT_TRUE((*bm)->WriteBlock(id, payload.data()).ok());
  std::vector<uint8_t> read_back(kBlockPayloadSize);
  EXPECT_TRUE((*bm)->ReadBlock(id, read_back.data()).IsCorruption());
}

TEST_F(BlockManagerTest, HeaderFlipSurvivesAlternation) {
  bool created;
  auto bm = BlockManager::Open(path_, true, &created);
  for (int i = 0; i < 5; i++) {
    block_id_t id = (*bm)->AllocateBlock();
    std::vector<uint8_t> payload(kBlockPayloadSize,
                                 static_cast<uint8_t>(i));
    ASSERT_TRUE((*bm)->WriteBlock(id, payload.data()).ok());
    ASSERT_TRUE((*bm)->WriteHeader(id).ok());
  }
  uint64_t final_iteration = (*bm)->header().iteration;
  block_id_t final_meta = (*bm)->header().meta_block;
  bm->reset();
  auto reopened = BlockManager::Open(path_, true, &created);
  EXPECT_EQ((*reopened)->header().iteration, final_iteration);
  EXPECT_EQ((*reopened)->header().meta_block, final_meta);
}

TEST_F(BlockManagerTest, FreeBlockReuse) {
  bool created;
  auto bm = BlockManager::Open(path_, true, &created);
  block_id_t a = (*bm)->AllocateBlock();
  block_id_t b = (*bm)->AllocateBlock();
  (void)b;
  // Declare only `a` live: b becomes reusable.
  (*bm)->SetLiveBlocks({a});
  EXPECT_EQ((*bm)->FreeBlockCount(), 1u);
  block_id_t c = (*bm)->AllocateBlock();
  EXPECT_EQ(c, b);  // reused, file did not grow
}

TEST_F(BlockManagerTest, MetaBlockChainLargePayload) {
  bool created;
  auto bm = BlockManager::Open(path_, true, &created);
  MetaBlockWriter writer(bm->get());
  // Payload spanning several 256KB blocks.
  std::vector<uint8_t> blob(3 * kBlockPayloadSize + 12345);
  for (size_t i = 0; i < blob.size(); i++) {
    blob[i] = static_cast<uint8_t>(i * 31);
  }
  writer.writer().WriteU64(blob.size());
  writer.writer().WriteBytes(blob.data(), blob.size());
  auto head = writer.Flush();
  ASSERT_TRUE(head.ok());
  EXPECT_GE(writer.blocks_used().size(), 4u);

  MetaBlockReader reader(bm->get());
  ASSERT_TRUE(reader.Load(*head).ok());
  uint64_t size;
  ASSERT_TRUE(reader.reader().ReadU64(&size).ok());
  ASSERT_EQ(size, blob.size());
  std::vector<uint8_t> loaded(size);
  ASSERT_TRUE(reader.reader().ReadBytes(loaded.data(), size).ok());
  EXPECT_EQ(loaded, blob);
}

// ---------------------------------------------------------------------------
// Buffer manager
// ---------------------------------------------------------------------------

TEST(BufferManagerTest, AllocatePinUnpin) {
  BufferManager bm(1 << 20, TempPath("bm1"));
  auto handle = bm.Allocate(1000);
  ASSERT_TRUE(handle.ok());
  handle->data()[0] = 42;
  EXPECT_EQ(bm.memory_used(), 1000u);
  auto buffer = handle->buffer();
  handle->Release();
  auto repinned = bm.Pin(buffer);
  ASSERT_TRUE(repinned.ok());
  EXPECT_EQ(repinned->data()[0], 42);
}

TEST(BufferManagerTest, SpillsUnderMemoryPressure) {
  BufferManager bm(64 * 1024, TempPath("bm2"));
  std::vector<std::shared_ptr<ManagedBuffer>> buffers;
  // Allocate 16 x 16KB = 256KB against a 64KB limit.
  for (int i = 0; i < 16; i++) {
    auto handle = bm.Allocate(16 * 1024);
    ASSERT_TRUE(handle.ok());
    std::memset(handle->data(), i, 16 * 1024);
    buffers.push_back(handle->buffer());
    handle->Release();
  }
  auto stats = bm.GetStats();
  EXPECT_GT(stats.spill_count, 0u);
  EXPECT_LE(stats.memory_used, 80 * 1024u);  // near the cap
  // All contents must survive the round trip through the spill file.
  for (int i = 0; i < 16; i++) {
    auto handle = bm.Pin(buffers[i]);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(handle->data()[0], static_cast<uint8_t>(i));
    EXPECT_EQ(handle->data()[16 * 1024 - 1], static_cast<uint8_t>(i));
  }
}

TEST(BufferManagerTest, AllocationTestingHealthyMemoryPasses) {
  BufferManager bm(1 << 20, TempPath("bm3"));
  bm.EnableAllocationTesting(true);
  auto handle = bm.Allocate(4096);
  ASSERT_TRUE(handle.ok());
  auto stats = bm.GetStats();
  EXPECT_EQ(stats.alloc_tests_run, 1u);
  EXPECT_EQ(stats.quarantined_allocations, 0u);
  // Buffer must be zeroed after the test patterns.
  for (int i = 0; i < 4096; i++) {
    ASSERT_EQ(handle->data()[i], 0);
  }
}

TEST(BufferManagerTest, QuarantinesSimulatedBadRegions) {
  // The paper's proposal (section 3): test buffers on allocation and
  // avoid broken memory regions.
  BufferManager bm(1 << 20, TempPath("bm4"));
  bm.EnableAllocationTesting(true);
  bm.SetSimulatedBadRegionProbability(0.5, 4);
  int successes = 0;
  for (int i = 0; i < 64; i++) {
    auto handle = bm.Allocate(4096);
    if (handle.ok()) successes++;
  }
  auto stats = bm.GetStats();
  EXPECT_GT(stats.quarantined_allocations, 0u);
  EXPECT_GT(successes, 0);
  EXPECT_GT(stats.quarantined_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Persistence: checkpoint + WAL recovery
// ---------------------------------------------------------------------------

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("persist");
    Cleanup(path_);
    FaultInjector::Get().Reset();
  }
  void TearDown() override {
    Cleanup(path_);
    Cleanup(path_ + "_copy");
    FaultInjector::Get().Reset();
  }
  std::string path_;
};

TEST_F(PersistenceTest, CheckpointAndReopen) {
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER, s VARCHAR)").ok());
    ASSERT_TRUE(
        con.Query("INSERT INTO t VALUES (1, 'one'), (2, 'two')").ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }  // destructor closes + checkpoints
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  auto r = con.Query("SELECT a, s FROM t ORDER BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->RowCount(), 2u);
  EXPECT_EQ((*r)->GetValue(1, 1).GetString(), "two");
}

TEST_F(PersistenceTest, WalReplayAfterSimulatedCrash) {
  {
    auto db = Database::Open(path_);
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1), (2), (3)").ok());
    ASSERT_TRUE(con.Query("UPDATE t SET a = a * 10 WHERE a > 1").ok());
    ASSERT_TRUE(con.Query("DELETE FROM t WHERE a = 30").ok());
    // Simulate a crash: snapshot db+wal as they are on disk right now
    // (committed data is fsynced in the WAL) and "reboot" from the copy.
    auto copy_file = [](const std::string& from, const std::string& to) {
      std::ifstream src(from, std::ios::binary);
      std::ofstream dst(to, std::ios::binary);
      dst << src.rdbuf();
    };
    copy_file(path_, path_ + "_copy");
    copy_file(path_ + ".wal", path_ + "_copy.wal");
  }
  auto db = Database::Open(path_ + "_copy");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  auto r = con.Query("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->RowCount(), 2u);
  EXPECT_EQ((*r)->GetValue(0, 0).GetInteger(), 1);
  EXPECT_EQ((*r)->GetValue(0, 1).GetInteger(), 20);
}

TEST_F(PersistenceTest, TornWalTailIsDiscarded) {
  {
    auto db = Database::Open(path_);
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (2)").ok());
    auto copy_file = [](const std::string& from, const std::string& to) {
      std::ifstream src(from, std::ios::binary);
      std::ofstream dst(to, std::ios::binary);
      dst << src.rdbuf();
    };
    copy_file(path_, path_ + "_copy");
    copy_file(path_ + ".wal", path_ + "_copy.wal");
  }
  // Tear the WAL tail: chop off the last 7 bytes (mid-frame).
  {
    auto file = FileHandle::Open(path_ + "_copy.wal",
                                 FileHandle::kRead | FileHandle::kWrite);
    ASSERT_TRUE(file.ok());
    auto size = (*file)->Size();
    ASSERT_TRUE(size.ok());
    ASSERT_TRUE((*file)->Truncate(*size - 7).ok());
  }
  auto db = Database::Open(path_ + "_copy");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  auto r = con.Query("SELECT count(*) FROM t");
  ASSERT_TRUE(r.ok());
  // The second committed insert was torn: only the prefix survives.
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
}

TEST_F(PersistenceTest, CorruptedDataBlockDetectedOnReopen) {
  {
    auto db = Database::Open(path_);
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    std::string sql = "INSERT INTO t VALUES (0)";
    for (int i = 1; i < 2000; i++) sql += ",(" + std::to_string(i) + ")";
    ASSERT_TRUE(con.Query(sql).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  // Flip one bit in data block 0 (the first checkpoint meta/data block).
  {
    bool created;
    auto bm = BlockManager::Open(path_, true, &created);
    ASSERT_TRUE(bm.ok());
    ASSERT_FALSE(created);
    ASSERT_TRUE((*bm)->CorruptBlockOnDisk(
        (*bm)->header().meta_block, 424242).ok());
  }
  auto db = Database::Open(path_);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption()) << db.status().ToString();
}

TEST_F(PersistenceTest, FsyncFailureAbortsCommit) {
  auto db = Database::Open(path_);
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  FaultInjector::Get().ArmOnce(FaultSite::kFsyncFailure);
  auto r = con.Query("INSERT INTO t VALUES (1)");
  EXPECT_FALSE(r.ok());
  FaultInjector::Get().Reset();
  // The aborted insert must not be visible.
  auto count = con.Query("SELECT count(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ((*count)->GetValue(0, 0).GetBigInt(), 0);
}

TEST_F(PersistenceTest, ViewsSurviveRestart) {
  {
    auto db = Database::Open(path_);
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1), (2)").ok());
    ASSERT_TRUE(
        con.Query("CREATE VIEW doubled AS SELECT a * 2 AS d FROM t").ok());
  }
  auto db = Database::Open(path_);
  Connection con(db->get());
  auto r = con.Query("SELECT sum(d) FROM doubled");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 6);
}

}  // namespace
}  // namespace mallard
