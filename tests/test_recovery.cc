// Durability and crash-recovery tests: WAL group commit (leader/follower
// fsync sharing, PRAGMA wal_stats), async commit mode, armed fault-site
// behavior (clean error + successful retry for every new WAL/checkpoint
// site), online checkpoint vs concurrent readers and writers, and the
// WriteCheckpoint commit-gate contract. The process-kill half of the
// torture matrix lives in tests/torture/ (it needs fork()).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/storage/checkpoint.h"
#include "mallard/storage/wal.h"

namespace mallard {
namespace {

std::string TempPath(const std::string& tag) {
  return "/tmp/mallard_test_" + tag + "_" + std::to_string(::getpid());
}

void Cleanup(const std::string& path) {
  RemoveFile(path);
  RemoveFile(path + ".wal");
  RemoveFile(path + ".tmp");
  RemoveFile(path + ".walstash");
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("recovery");
    Cleanup(path_);
    FaultInjector::Get().Reset();
  }
  void TearDown() override {
    Cleanup(path_);
    FaultInjector::Get().Reset();
  }

  int64_t Count(Connection* con, const std::string& table) {
    auto r = con->Query("SELECT count(*) FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return (*r)->GetValue(0, 0).GetBigInt();
  }

  std::string path_;
};

// --- Armed fault sites: clean query error, no partial visibility,
// --- successful retry (mirrors the PR 6 spill-fault tests).

TEST_F(RecoveryTest, WalAppendFaultAbortsCommitCleanly) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  // Permanent fault: every append attempt fails, so the bounded retry
  // loop exhausts its budget and the commit aborts cleanly.
  FaultInjector::Get().Arm(FaultSite::kWalAppend, 1.0);
  auto r = con.Query("INSERT INTO t VALUES (1)");
  FaultInjector::Get().Reset();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError) << r.status().ToString();
  // No partial visibility: the aborted insert is gone.
  EXPECT_EQ(Count(&con, "t"), 0);
  // Retry succeeds on the rolled-back log.
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (2)").ok());
  EXPECT_EQ(Count(&con, "t"), 1);
}

TEST_F(RecoveryTest, WalFsyncFaultAbortsCommitCleanly) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  FaultInjector::Get().ArmOnce(FaultSite::kWalFsync);
  auto r = con.Query("INSERT INTO t VALUES (1)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(Count(&con, "t"), 0);
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (2)").ok());
  EXPECT_EQ(Count(&con, "t"), 1);
  db->reset();
  // The failed attempt truncated the log back to a durable prefix, so
  // replay after reopen sees only what was acknowledged.
  auto reopened = Database::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Connection con2(reopened->get());
  EXPECT_EQ(Count(&con2, "t"), 1);
}

TEST_F(RecoveryTest, WalAppendFaultRollsLogBackForReplay) {
  // A failed group flush must not leave garbage bytes that break replay
  // of later successful commits.
  {
    auto db = Database::Open(path_);
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1)").ok());
    FaultInjector::Get().Arm(FaultSite::kWalAppend, 1.0);
    EXPECT_FALSE(con.Query("INSERT INTO t VALUES (2)").ok());
    FaultInjector::Get().Reset();
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (3)").ok());
    // Skip the close-time checkpoint so reopen exercises WAL replay.
    (*db)->config().checkpoint_on_close = false;
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  auto r = con.Query("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->RowCount(), 2u);
  EXPECT_EQ((*r)->GetValue(0, 0).GetInteger(), 1);
  EXPECT_EQ((*r)->GetValue(0, 1).GetInteger(), 3);
}

TEST_F(RecoveryTest, CheckpointWriteFaultFailsCleanlyAndRetries) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1), (2), (3)").ok());
  FaultInjector::Get().ArmOnce(FaultSite::kCheckpointWrite);
  Status s = (*db)->Checkpoint();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError) << s.ToString();
  // The failed checkpoint changed nothing visible.
  EXPECT_EQ(Count(&con, "t"), 3);
  FaultInjector::Get().Reset();
  ASSERT_TRUE((*db)->Checkpoint().ok());
  db->reset();
  auto reopened = Database::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Connection con2(reopened->get());
  EXPECT_EQ(Count(&con2, "t"), 3);
}

TEST_F(RecoveryTest, CheckpointRootSwapFaultFailsCleanlyAndRetries) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (7)").ok());
  FaultInjector::Get().ArmOnce(FaultSite::kCheckpointRootSwap);
  Status s = (*db)->Checkpoint();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(Count(&con, "t"), 1);
  FaultInjector::Get().Reset();
  ASSERT_TRUE((*db)->Checkpoint().ok());
  db->reset();
  auto reopened = Database::Open(path_);
  ASSERT_TRUE(reopened.ok());
  Connection con2(reopened->get());
  EXPECT_EQ(Count(&con2, "t"), 1);
}

TEST_F(RecoveryTest, WalTruncateFaultRefusesCommitsUntilRetry) {
  // A failed post-checkpoint truncation leaves the log's generation
  // behind the durable root: appending commits there would hand them to
  // replay's stale-log discard path, so the WAL must refuse commits
  // until a Checkpoint() retry truncates cleanly.
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1)").ok());
  FaultInjector::Get().ArmOnce(FaultSite::kWalTruncate);
  Status s = (*db)->Checkpoint();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  // Commits are refused while the log is stale — a clean error, not
  // silent data loss.
  auto blocked = con.Query("INSERT INTO t VALUES (2)");
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kIOError);
  // Retry succeeds and restores the commit path.
  FaultInjector::Get().Reset();
  ASSERT_TRUE((*db)->Checkpoint().ok());
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (3)").ok());
  EXPECT_EQ(Count(&con, "t"), 2);
  db->reset();
  auto reopened = Database::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Connection con2(reopened->get());
  EXPECT_EQ(Count(&con2, "t"), 2);
}

TEST_F(RecoveryTest, StaleWalIsSkippedNotReplayedTwice) {
  // Simulate dying between the checkpoint's root swap and the WAL
  // truncation: checkpoint, then restore the pre-checkpoint WAL next to
  // the post-checkpoint database file. Replay must discard the stale
  // log (generation behind the root) — re-applying it would duplicate
  // every row.
  {
    auto db = Database::Open(path_);
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1), (2), (3)").ok());
    (*db)->config().checkpoint_on_close = false;
    // Stash the WAL as it stands before any checkpoint.
    std::ifstream src(path_ + ".wal", std::ios::binary);
    std::ofstream dst(path_ + ".walstash", std::ios::binary);
    dst << src.rdbuf();
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    // Put the stale pre-checkpoint WAL back — as if truncation never
    // made it to disk.
    std::ifstream src(path_ + ".walstash", std::ios::binary);
    std::ofstream dst(path_ + ".wal", std::ios::binary | std::ios::trunc);
    dst << src.rdbuf();
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  EXPECT_EQ(Count(&con, "t"), 3);  // not 6
  RemoveFile(path_ + ".walstash");
}

TEST_F(RecoveryTest, FailedCheckpointKeepsWalSoNothingIsLost) {
  // Root swap fails, then the process "exits" without a clean close:
  // the WAL still holds everything, so reopen recovers it all.
  {
    auto db = Database::Open(path_);
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1), (2)").ok());
    FaultInjector::Get().ArmOnce(FaultSite::kCheckpointRootSwap);
    EXPECT_FALSE((*db)->Checkpoint().ok());
    FaultInjector::Get().Reset();
    (*db)->config().checkpoint_on_close = false;
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  EXPECT_EQ(Count(&con, "t"), 2);
}

// --- Group commit: concurrent writers share fsyncs, every acknowledged
// --- commit survives reopen, counters exposed via PRAGMA wal_stats.

TEST_F(RecoveryTest, GroupCommitSharesFsyncsAcrossWriters) {
  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 25;
  uint64_t fsyncs = 0, commits = 0, group_commits = 0;
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    {
      Connection con(db->get());
      ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    }
    // Slow down fsync so committers deterministically pile up on the
    // leader in flight (tmpfs fsyncs too fast to observe batching).
    (*db)->wal()->SetFsyncDelayForTest(2000);
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; w++) {
      writers.emplace_back([&, w] {
        Connection wcon(db->get());
        for (int i = 0; i < kCommitsPerWriter; i++) {
          int value = w * 1000 + i;
          auto r =
              wcon.Query("INSERT INTO t VALUES (" + std::to_string(value) +
                         ")");
          if (!r.ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& t : writers) t.join();
    EXPECT_EQ(failures.load(), 0);
    (*db)->wal()->SetFsyncDelayForTest(0);

    Connection con(db->get());
    auto stats = con.Query("PRAGMA wal_stats");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    commits = static_cast<uint64_t>((*stats)->GetValue(0, 0).GetBigInt());
    fsyncs = static_cast<uint64_t>((*stats)->GetValue(1, 0).GetBigInt());
    group_commits =
        static_cast<uint64_t>((*stats)->GetValue(3, 0).GetBigInt());
    EXPECT_EQ(Count(&con, "t"), kWriters * kCommitsPerWriter);
  }
  // +1: the CREATE TABLE commit.
  EXPECT_EQ(commits, uint64_t(kWriters * kCommitsPerWriter + 1));
  // "Well below N*M": the whole point of group commit.
  EXPECT_LT(fsyncs, uint64_t(kWriters * kCommitsPerWriter) / 2);
  EXPECT_GT(group_commits, 0u);

  // Every acknowledged commit survives reopen.
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  EXPECT_EQ(Count(&con, "t"), kWriters * kCommitsPerWriter);
}

TEST_F(RecoveryTest, PerCommitFsyncBaselineSyncsEveryCommit) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  (*db)->wal()->EnableGroupCommitForTest(false);
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(
        con.Query("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  auto stats = con.Query("PRAGMA wal_stats");
  ASSERT_TRUE(stats.ok());
  int64_t commits = (*stats)->GetValue(0, 0).GetBigInt();
  int64_t fsyncs = (*stats)->GetValue(1, 0).GetBigInt();
  EXPECT_EQ(commits, 6);  // CREATE TABLE + 5 inserts
  EXPECT_EQ(fsyncs, commits);
}

// --- Async commit mode.

TEST_F(RecoveryTest, AsyncModeAcknowledgesBeforeFsyncAndFlushesOnClose) {
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    (*db)->config().checkpoint_on_close = false;  // force WAL-based reopen
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(con.Query("PRAGMA wal_commit_mode=async").ok());
    auto mode = con.Query("PRAGMA wal_commit_mode");
    ASSERT_TRUE(mode.ok());
    EXPECT_EQ((*mode)->GetValue(0, 0).GetString(), "async");
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(
          con.Query("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
    }
    auto stats = con.Query("PRAGMA wal_stats");
    ASSERT_TRUE(stats.ok());
    EXPECT_GT((*stats)->GetValue(5, 0).GetBigInt(), 0);  // async_acks
  }  // close: pending async batches are flushed
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  EXPECT_EQ(Count(&con, "t"), 10);
}

TEST_F(RecoveryTest, SwitchingBackToSyncFlushesPending) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(con.Query("PRAGMA wal_commit_mode=async").ok());
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(con.Query("PRAGMA wal_commit_mode=sync").ok());
  auto stats = con.Query("PRAGMA wal_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)->GetValue(8, 0).GetBigInt(), 0);  // pending_bytes
  auto mode = con.Query("PRAGMA wal_commit_mode");
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ((*mode)->GetValue(0, 0).GetString(), "sync");
}

TEST_F(RecoveryTest, WalCommitModePragmaRejectsBadValues) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  EXPECT_FALSE(con.Query("PRAGMA wal_commit_mode=eventually").ok());
  // In-memory databases have no WAL: readback reports "none", setting
  // is an error.
  auto mem = Database::Open(":memory:");
  ASSERT_TRUE(mem.ok());
  Connection mcon(mem->get());
  auto mode = mcon.Query("PRAGMA wal_commit_mode");
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ((*mode)->GetValue(0, 0).GetString(), "none");
  EXPECT_FALSE(mcon.Query("PRAGMA wal_commit_mode=sync").ok());
  EXPECT_FALSE(mcon.Query("PRAGMA wal_stats").ok());
}

// --- Online checkpoint vs readers and writers.

TEST_F(RecoveryTest, ReaderOnOldSnapshotUnaffectedByCheckpoint) {
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection writer(db->get());
  ASSERT_TRUE(writer.Query("CREATE TABLE t (a INTEGER)").ok());
  std::string sql = "INSERT INTO t VALUES (0)";
  for (int i = 1; i < 6000; i++) sql += ",(" + std::to_string(i) + ")";
  ASSERT_TRUE(writer.Query(sql).ok());

  // Pin a reader on the pre-checkpoint snapshot and pull one chunk.
  Connection reader(db->get());
  auto stream = reader.SendQuery("SELECT a FROM t");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  idx_t rows_seen = 0;
  auto first = (*stream)->Fetch();
  ASSERT_TRUE(first.ok());
  ASSERT_NE(*first, nullptr);
  rows_seen += (*first)->size();

  // Underneath the pinned reader: more commits, a full checkpoint, and
  // the WAL truncation that follows it.
  ASSERT_TRUE(writer.Query("INSERT INTO t VALUES (999111)").ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  auto wal_size = (*db)->wal()->SizeBytes();
  ASSERT_TRUE(wal_size.ok());
  EXPECT_EQ(*wal_size, 0u);

  // The stream keeps producing its snapshot: exactly the 6000 original
  // rows, not the post-snapshot insert.
  while (true) {
    auto chunk = (*stream)->Fetch();
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (*chunk == nullptr) break;
    rows_seen += (*chunk)->size();
  }
  EXPECT_EQ(rows_seen, 6000u);

  // A fresh query sees everything including the post-snapshot insert.
  EXPECT_EQ(Count(&writer, "t"), 6001);
}

TEST_F(RecoveryTest, CheckpointRacingAppenderBulkLoad) {
  constexpr int kRows = 20000;
  {
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    {
      Connection con(db->get());
      ASSERT_TRUE(con.Query("CREATE TABLE t (a BIGINT)").ok());
    }
    std::atomic<bool> done{false};
    std::thread loader([&] {
      auto appender = Appender::Create(db->get(), "t");
      ASSERT_TRUE(appender.ok());
      for (int i = 0; i < kRows; i++) {
        (*appender)->Append(static_cast<int64_t>(i));
        ASSERT_TRUE((*appender)->EndRow().ok());
      }
      ASSERT_TRUE((*appender)->Close().ok());
      done.store(true);
    });
    // Checkpoint repeatedly while the bulk load commits underneath.
    int checkpoints = 0;
    while (!done.load()) {
      Status s = (*db)->Checkpoint();
      ASSERT_TRUE(s.ok()) << s.ToString();
      checkpoints++;
    }
    loader.join();
    ASSERT_GT(checkpoints, 0);
    Connection con(db->get());
    EXPECT_EQ(Count(&con, "t"), kRows);
  }
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  EXPECT_EQ(Count(&con, "t"), kRows);
}

TEST_F(RecoveryTest, WriteCheckpointRefusesWithoutCommitGate) {
  // The exclusive-access contract is an explicit checked precondition:
  // calling WriteCheckpoint without holding the commit gate must fail
  // loudly instead of silently producing a torn image.
  auto db = Database::Open(path_);
  ASSERT_TRUE(db.ok());
  Connection con(db->get());
  ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER)").ok());
  auto snapshot = (*db)->transactions().Begin();
  Status s = WriteCheckpoint(&(*db)->catalog(), (*db)->blocks(),
                             &(*db)->transactions(), *snapshot,
                             &(*db)->governor());
  (*db)->transactions().Rollback(snapshot.get());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal) << s.ToString();
  // And with the gate held it works.
  ASSERT_TRUE((*db)->Checkpoint().ok());
}

TEST_F(RecoveryTest, CheckpointUnderTightMemoryBudget) {
  // The checkpoint stages rows under the governor budget; a tiny budget
  // must shrink the serialized groups, not break the image.
  DBConfig config;
  config.memory_limit = 8ull << 20;  // 8 MiB
  {
    auto db = Database::Open(path_, config);
    ASSERT_TRUE(db.ok());
    Connection con(db->get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER, s VARCHAR)").ok());
    std::string sql = "INSERT INTO t VALUES (0, 'x0')";
    for (int i = 1; i < 10000; i++) {
      sql += ",(" + std::to_string(i) + ", 'x" + std::to_string(i) + "')";
    }
    ASSERT_TRUE(con.Query(sql).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(path_, config);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Connection con(db->get());
  EXPECT_EQ(Count(&con, "t"), 10000);
  auto r = con.Query("SELECT s FROM t WHERE a = 9999");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetValue(0, 0).GetString(), "x9999");
}

}  // namespace
}  // namespace mallard
