// End-to-end SQL tests over an in-memory database.

#include <gtest/gtest.h>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"

namespace mallard {
namespace {

class SqlBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    connection_ = std::make_unique<Connection>(db_.get());
  }

  std::unique_ptr<MaterializedQueryResult> Q(const std::string& sql) {
    auto result = connection_->Query(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    if (!result.ok()) return nullptr;
    return std::move(*result);
  }

  Status QFail(const std::string& sql) {
    auto result = connection_->Query(sql);
    EXPECT_FALSE(result.ok()) << sql << " unexpectedly succeeded";
    return result.ok() ? Status::OK() : result.status();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Connection> connection_;
};

TEST_F(SqlBasicTest, SelectConstant) {
  auto r = Q("SELECT 42");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->RowCount(), 1u);
  EXPECT_EQ(r->GetValue(0, 0).GetInteger(), 42);
}

TEST_F(SqlBasicTest, SelectArithmetic) {
  auto r = Q("SELECT 1 + 2 * 3, 10 / 4, 10 % 3, -5");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetInteger(), 7);
  EXPECT_DOUBLE_EQ(r->GetValue(1, 0).GetDouble(), 2.5);
  EXPECT_EQ(r->GetValue(2, 0).GetInteger(), 1);
  EXPECT_EQ(r->GetValue(3, 0).GetInteger(), -5);
}

TEST_F(SqlBasicTest, CreateInsertSelect) {
  Q("CREATE TABLE t (a INTEGER, b VARCHAR)");
  Q("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')");
  auto r = Q("SELECT a, b FROM t ORDER BY a");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->RowCount(), 3u);
  EXPECT_EQ(r->GetValue(0, 0).GetInteger(), 1);
  EXPECT_EQ(r->GetValue(1, 2).GetString(), "three");
}

TEST_F(SqlBasicTest, WhereFilter) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  auto r = Q("SELECT a FROM t WHERE a > 2 AND a < 5 ORDER BY a");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->RowCount(), 2u);
  EXPECT_EQ(r->GetValue(0, 0).GetInteger(), 3);
  EXPECT_EQ(r->GetValue(0, 1).GetInteger(), 4);
}

TEST_F(SqlBasicTest, Aggregates) {
  Q("CREATE TABLE t (a INTEGER, b DOUBLE)");
  Q("INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5), (NULL, NULL)");
  auto r = Q("SELECT count(*), count(a), sum(a), avg(b), min(a), max(a) "
             "FROM t");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 4);
  EXPECT_EQ(r->GetValue(1, 0).GetBigInt(), 3);
  EXPECT_EQ(r->GetValue(2, 0).GetBigInt(), 6);
  EXPECT_DOUBLE_EQ(r->GetValue(3, 0).GetDouble(), 2.5);
  EXPECT_EQ(r->GetValue(4, 0).GetInteger(), 1);
  EXPECT_EQ(r->GetValue(5, 0).GetInteger(), 3);
}

TEST_F(SqlBasicTest, GroupBy) {
  Q("CREATE TABLE t (g VARCHAR, v INTEGER)");
  Q("INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3), ('b', 4), ('c', 5)");
  auto r = Q("SELECT g, sum(v), count(*) FROM t GROUP BY g ORDER BY g");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->RowCount(), 3u);
  EXPECT_EQ(r->GetValue(0, 0).GetString(), "a");
  EXPECT_EQ(r->GetValue(1, 0).GetBigInt(), 4);
  EXPECT_EQ(r->GetValue(0, 2).GetString(), "c");
  EXPECT_EQ(r->GetValue(2, 2).GetBigInt(), 1);
}

TEST_F(SqlBasicTest, Having) {
  Q("CREATE TABLE t (g VARCHAR, v INTEGER)");
  Q("INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3), ('b', 4), ('c', 5)");
  auto r = Q("SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 4 "
             "ORDER BY g");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->RowCount(), 2u);
  EXPECT_EQ(r->GetValue(0, 0).GetString(), "b");
  EXPECT_EQ(r->GetValue(0, 1).GetString(), "c");
}

TEST_F(SqlBasicTest, JoinHash) {
  Q("CREATE TABLE l (id INTEGER, v VARCHAR)");
  Q("CREATE TABLE r (id INTEGER, w VARCHAR)");
  Q("INSERT INTO l VALUES (1, 'l1'), (2, 'l2'), (3, 'l3')");
  Q("INSERT INTO r VALUES (2, 'r2'), (3, 'r3'), (4, 'r4')");
  auto r = Q("SELECT l.id, v, w FROM l JOIN r ON l.id = r.id ORDER BY l.id");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->RowCount(), 2u);
  EXPECT_EQ(r->GetValue(0, 0).GetInteger(), 2);
  EXPECT_EQ(r->GetValue(2, 0).GetString(), "r2");
}

TEST_F(SqlBasicTest, CommaJoinWithWhere) {
  Q("CREATE TABLE l (id INTEGER, v INTEGER)");
  Q("CREATE TABLE r (id INTEGER, w INTEGER)");
  Q("INSERT INTO l VALUES (1, 10), (2, 20)");
  Q("INSERT INTO r VALUES (1, 100), (2, 200)");
  auto r = Q("SELECT v, w FROM l, r WHERE l.id = r.id ORDER BY v");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->RowCount(), 2u);
  EXPECT_EQ(r->GetValue(1, 0).GetInteger(), 100);
  EXPECT_EQ(r->GetValue(1, 1).GetInteger(), 200);
}

TEST_F(SqlBasicTest, LeftJoin) {
  Q("CREATE TABLE l (id INTEGER)");
  Q("CREATE TABLE r (id INTEGER, w VARCHAR)");
  Q("INSERT INTO l VALUES (1), (2), (3)");
  Q("INSERT INTO r VALUES (2, 'two')");
  auto r = Q("SELECT l.id, w FROM l LEFT JOIN r ON l.id = r.id ORDER BY l.id");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->RowCount(), 3u);
  EXPECT_TRUE(r->GetValue(1, 0).is_null());
  EXPECT_EQ(r->GetValue(1, 1).GetString(), "two");
  EXPECT_TRUE(r->GetValue(1, 2).is_null());
}

TEST_F(SqlBasicTest, UpdateBasic) {
  Q("CREATE TABLE t (a INTEGER, b INTEGER)");
  Q("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  auto r = Q("UPDATE t SET b = b + 1 WHERE a >= 2");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 2);
  r = Q("SELECT sum(b) FROM t");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 62);
}

TEST_F(SqlBasicTest, UpdateMissingValueRecoding) {
  // The paper's canonical ETL example (section 2):
  // UPDATE t SET d = NULL WHERE d = -999.
  Q("CREATE TABLE t (d INTEGER)");
  Q("INSERT INTO t VALUES (1), (-999), (3), (-999), (5)");
  auto r = Q("UPDATE t SET d = NULL WHERE d = -999");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 2);
  r = Q("SELECT count(*), count(d), sum(d) FROM t");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 5);
  EXPECT_EQ(r->GetValue(1, 0).GetBigInt(), 3);
  EXPECT_EQ(r->GetValue(2, 0).GetBigInt(), 9);
}

TEST_F(SqlBasicTest, DeleteBasic) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (2), (3), (4)");
  auto r = Q("DELETE FROM t WHERE a % 2 = 0");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 2);
  r = Q("SELECT count(*) FROM t");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 2);
}

TEST_F(SqlBasicTest, OrderByDesc) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (3), (1), (2)");
  auto r = Q("SELECT a FROM t ORDER BY a DESC");
  EXPECT_EQ(r->GetValue(0, 0).GetInteger(), 3);
  EXPECT_EQ(r->GetValue(0, 2).GetInteger(), 1);
}

TEST_F(SqlBasicTest, LimitOffset) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  auto r = Q("SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1");
  ASSERT_EQ(r->RowCount(), 2u);
  EXPECT_EQ(r->GetValue(0, 0).GetInteger(), 2);
  EXPECT_EQ(r->GetValue(0, 1).GetInteger(), 3);
}

TEST_F(SqlBasicTest, Distinct) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (2), (2), (3), (3), (3)");
  auto r = Q("SELECT DISTINCT a FROM t ORDER BY a");
  ASSERT_EQ(r->RowCount(), 3u);
}

TEST_F(SqlBasicTest, CaseWhen) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (2), (3)");
  auto r = Q("SELECT CASE WHEN a < 2 THEN 'small' ELSE 'big' END FROM t "
             "ORDER BY a");
  EXPECT_EQ(r->GetValue(0, 0).GetString(), "small");
  EXPECT_EQ(r->GetValue(0, 1).GetString(), "big");
}

TEST_F(SqlBasicTest, LikePatterns) {
  Q("CREATE TABLE t (s VARCHAR)");
  Q("INSERT INTO t VALUES ('PROMO bright'), ('STANDARD dull'), ('PROMOtion')");
  auto r = Q("SELECT count(*) FROM t WHERE s LIKE 'PROMO%'");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 2);
  r = Q("SELECT count(*) FROM t WHERE s NOT LIKE '%dull'");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 2);
}

TEST_F(SqlBasicTest, InList) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (2), (3), (4)");
  auto r = Q("SELECT count(*) FROM t WHERE a IN (2, 4, 6)");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 2);
}

TEST_F(SqlBasicTest, BetweenAndDates) {
  Q("CREATE TABLE t (d DATE)");
  Q("INSERT INTO t VALUES (DATE '2024-01-15'), (DATE '2024-06-15'), "
    "(DATE '2025-01-15')");
  auto r = Q("SELECT count(*) FROM t WHERE d BETWEEN DATE '2024-01-01' AND "
             "DATE '2024-12-31'");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 2);
  r = Q("SELECT year(d) FROM t ORDER BY d LIMIT 1");
  EXPECT_EQ(r->GetValue(0, 0).GetInteger(), 2024);
}

TEST_F(SqlBasicTest, DateIntervalArithmetic) {
  auto r = Q("SELECT DATE '1998-12-01' - INTERVAL '90' DAY");
  EXPECT_EQ(r->GetValue(0, 0).ToString(), "1998-09-02");
}

TEST_F(SqlBasicTest, IsNull) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (NULL), (3)");
  auto r = Q("SELECT count(*) FROM t WHERE a IS NULL");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 1);
  r = Q("SELECT count(*) FROM t WHERE a IS NOT NULL");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 2);
}

TEST_F(SqlBasicTest, Views) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (2), (3)");
  Q("CREATE VIEW v AS SELECT a * 2 AS doubled FROM t");
  auto r = Q("SELECT sum(doubled) FROM v");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 12);
}

TEST_F(SqlBasicTest, DerivedTable) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (2), (3), (4)");
  auto r = Q("SELECT count(*) FROM (SELECT a FROM t WHERE a > 1) sub");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 3);
}

TEST_F(SqlBasicTest, CreateTableAsSelect) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("INSERT INTO t VALUES (1), (2), (3)");
  Q("CREATE TABLE t2 AS SELECT a * 10 AS b FROM t");
  auto r = Q("SELECT sum(b) FROM t2");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 60);
}

TEST_F(SqlBasicTest, TransactionsCommitRollback) {
  Q("CREATE TABLE t (a INTEGER)");
  Q("BEGIN");
  Q("INSERT INTO t VALUES (1)");
  Q("COMMIT");
  Q("BEGIN");
  Q("INSERT INTO t VALUES (2)");
  Q("ROLLBACK");
  auto r = Q("SELECT count(*) FROM t");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 1);
}

TEST_F(SqlBasicTest, ErrorsAreReported) {
  QFail("SELECT FROM t");
  QFail("SELECT * FROM missing_table");
  QFail("CREATE TABLE t (a INTEGER); CREATE TABLE t (a INTEGER)");
  QFail("SELECT nonexistent_column FROM t");
  QFail("SELEKT 1");
}

TEST_F(SqlBasicTest, Explain) {
  Q("CREATE TABLE t (a INTEGER)");
  auto r = Q("EXPLAIN SELECT a FROM t WHERE a > 1");
  ASSERT_NE(r, nullptr);
  std::string plan = r->GetValue(0, 0).GetString();
  EXPECT_NE(plan.find("SEQ_SCAN"), std::string::npos);
  EXPECT_NE(plan.find("FILTER"), std::string::npos);
}

TEST_F(SqlBasicTest, MultiRowGroupScan) {
  Q("CREATE TABLE t (a INTEGER)");
  // Insert more rows than one row group (8192) through SQL batches.
  for (int batch = 0; batch < 5; batch++) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = 0; i < 2000; i++) {
      if (i > 0) sql += ",";
      sql += "(" + std::to_string(batch * 2000 + i) + ")";
    }
    Q(sql);
  }
  auto r = Q("SELECT count(*), min(a), max(a), sum(a) FROM t");
  EXPECT_EQ(r->GetValue(0, 0).GetBigInt(), 10000);
  EXPECT_EQ(r->GetValue(1, 0).GetInteger(), 0);
  EXPECT_EQ(r->GetValue(2, 0).GetInteger(), 9999);
  EXPECT_EQ(r->GetValue(3, 0).GetBigInt(), 49995000LL);
}

}  // namespace
}  // namespace mallard
