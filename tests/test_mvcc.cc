// MVCC semantics: snapshot isolation, in-place updates with undo
// reconstruction (HyPer-style, paper section 6), write-write conflicts,
// rollback, and the concurrent OLAP+ETL "dashboard" scenario (section 2).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"

namespace mallard {
namespace {

class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(":memory:");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    Connection con(db_.get());
    ASSERT_TRUE(con.Query("CREATE TABLE t (a INTEGER, b INTEGER)").ok());
    ASSERT_TRUE(con.Query("INSERT INTO t VALUES (1, 10), (2, 20)").ok());
  }

  int64_t Count(Connection* con) {
    auto r = con->Query("SELECT count(*) FROM t");
    EXPECT_TRUE(r.ok());
    return (*r)->GetValue(0, 0).GetBigInt();
  }
  int64_t SumB(Connection* con) {
    auto r = con->Query("SELECT sum(b) FROM t");
    EXPECT_TRUE(r.ok());
    return (*r)->GetValue(0, 0).GetBigInt();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(MvccTest, UncommittedInsertInvisibleToOthers) {
  Connection writer(db_.get());
  Connection reader(db_.get());
  ASSERT_TRUE(writer.Query("BEGIN").ok());
  ASSERT_TRUE(writer.Query("INSERT INTO t VALUES (3, 30)").ok());
  EXPECT_EQ(Count(&reader), 2);  // invisible to the reader
  // ... but visible to the writer itself.
  auto r = writer.Query("SELECT count(*) FROM t");
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 3);
  ASSERT_TRUE(writer.Query("COMMIT").ok());
  EXPECT_EQ(Count(&reader), 3);
}

TEST_F(MvccTest, SnapshotReadersDontSeeLaterCommits) {
  Connection reader(db_.get());
  Connection writer(db_.get());
  ASSERT_TRUE(reader.Query("BEGIN").ok());
  EXPECT_EQ(Count(&reader), 2);  // snapshot taken
  ASSERT_TRUE(writer.Query("INSERT INTO t VALUES (3, 30)").ok());
  // Reader's snapshot must remain stable.
  EXPECT_EQ(Count(&reader), 2);
  ASSERT_TRUE(reader.Query("COMMIT").ok());
  EXPECT_EQ(Count(&reader), 3);
}

TEST_F(MvccTest, InPlaceUpdateWithUndoReconstruction) {
  // The heart of HyPer-style MVCC: data is updated in place; concurrent
  // readers reconstruct the old version from undo buffers.
  Connection reader(db_.get());
  Connection writer(db_.get());
  ASSERT_TRUE(reader.Query("BEGIN").ok());
  EXPECT_EQ(SumB(&reader), 30);
  ASSERT_TRUE(writer.Query("BEGIN").ok());
  ASSERT_TRUE(writer.Query("UPDATE t SET b = b + 100").ok());
  // Reader still sees the pre-update values (undo reconstruction).
  EXPECT_EQ(SumB(&reader), 30);
  // Writer sees its own in-place values.
  auto r = writer.Query("SELECT sum(b) FROM t");
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 230);
  ASSERT_TRUE(writer.Query("COMMIT").ok());
  // Reader's snapshot predates the commit.
  EXPECT_EQ(SumB(&reader), 30);
  ASSERT_TRUE(reader.Query("COMMIT").ok());
  EXPECT_EQ(SumB(&reader), 230);
}

TEST_F(MvccTest, RollbackRestoresInPlaceData) {
  Connection con(db_.get());
  ASSERT_TRUE(con.Query("BEGIN").ok());
  ASSERT_TRUE(con.Query("UPDATE t SET b = 999 WHERE a = 1").ok());
  ASSERT_TRUE(con.Query("ROLLBACK").ok());
  EXPECT_EQ(SumB(&con), 30);
}

TEST_F(MvccTest, MultipleUpdatesSameRowInOneTransaction) {
  Connection reader(db_.get());
  Connection writer(db_.get());
  ASSERT_TRUE(reader.Query("BEGIN").ok());
  ASSERT_TRUE(reader.Query("SELECT 1").ok());
  ASSERT_TRUE(writer.Query("BEGIN").ok());
  ASSERT_TRUE(writer.Query("UPDATE t SET b = 100 WHERE a = 1").ok());
  ASSERT_TRUE(writer.Query("UPDATE t SET b = 200 WHERE a = 1").ok());
  // Reader must reconstruct the ORIGINAL value through both undo entries.
  auto r = reader.Query("SELECT b FROM t WHERE a = 1");
  EXPECT_EQ((*r)->GetValue(0, 0).GetInteger(), 10);
  ASSERT_TRUE(writer.Query("ROLLBACK").ok());
  ASSERT_TRUE(reader.Query("COMMIT").ok());
  r = reader.Query("SELECT b FROM t WHERE a = 1");
  EXPECT_EQ((*r)->GetValue(0, 0).GetInteger(), 10);
}

TEST_F(MvccTest, WriteWriteConflictOnUpdate) {
  Connection a(db_.get());
  Connection b(db_.get());
  ASSERT_TRUE(a.Query("BEGIN").ok());
  ASSERT_TRUE(b.Query("BEGIN").ok());
  ASSERT_TRUE(a.Query("UPDATE t SET b = 111 WHERE a = 1").ok());
  auto conflicted = b.Query("UPDATE t SET b = 222 WHERE a = 1");
  ASSERT_FALSE(conflicted.ok());
  EXPECT_TRUE(conflicted.status().IsTransactionConflict())
      << conflicted.status().ToString();
  ASSERT_TRUE(a.Query("COMMIT").ok());
  auto r = a.Query("SELECT b FROM t WHERE a = 1");
  EXPECT_EQ((*r)->GetValue(0, 0).GetInteger(), 111);
}

TEST_F(MvccTest, SerializableUpdateAfterConcurrentCommitConflicts) {
  Connection a(db_.get());
  Connection b(db_.get());
  ASSERT_TRUE(b.Query("BEGIN").ok());
  ASSERT_TRUE(b.Query("SELECT 1").ok());  // take the snapshot
  // a commits an update after b's snapshot.
  ASSERT_TRUE(a.Query("UPDATE t SET b = 111 WHERE a = 1").ok());
  // b updating the same row would write over a version it cannot see:
  // serializability requires an abort.
  auto conflicted = b.Query("UPDATE t SET b = 222 WHERE a = 1");
  EXPECT_FALSE(conflicted.ok());
}

TEST_F(MvccTest, DeleteConflicts) {
  Connection a(db_.get());
  Connection b(db_.get());
  ASSERT_TRUE(a.Query("BEGIN").ok());
  ASSERT_TRUE(b.Query("BEGIN").ok());
  ASSERT_TRUE(a.Query("DELETE FROM t WHERE a = 1").ok());
  auto conflicted = b.Query("DELETE FROM t WHERE a = 1");
  EXPECT_FALSE(conflicted.ok());
  // The failed statement poisoned (rolled back) b's transaction.
  EXPECT_FALSE(b.InTransaction());
  ASSERT_TRUE(a.Query("ROLLBACK").ok());
  // After a's rollback the row is undeleted and b can delete it.
  auto r = b.Query("DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->GetValue(0, 0).GetBigInt(), 1);
}

TEST_F(MvccTest, DeletedRowsInvisibleAfterCommitOnly) {
  Connection deleter(db_.get());
  Connection reader(db_.get());
  ASSERT_TRUE(deleter.Query("BEGIN").ok());
  ASSERT_TRUE(deleter.Query("DELETE FROM t WHERE a = 2").ok());
  EXPECT_EQ(Count(&reader), 2);
  ASSERT_TRUE(deleter.Query("COMMIT").ok());
  EXPECT_EQ(Count(&reader), 1);
}

TEST_F(MvccTest, AbortedInsertNeverVisible) {
  Connection con(db_.get());
  ASSERT_TRUE(con.Query("BEGIN").ok());
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (99, 990)").ok());
  ASSERT_TRUE(con.Query("ROLLBACK").ok());
  EXPECT_EQ(Count(&con), 2);
  // New inserts continue to work after the aborted rows.
  ASSERT_TRUE(con.Query("INSERT INTO t VALUES (3, 30)").ok());
  EXPECT_EQ(Count(&con), 3);
}

TEST_F(MvccTest, DashboardScenarioConcurrentReadersAndWriter) {
  // Paper section 2: "multiple threads update the data using ETL queries
  // while other threads run the OLAP queries that drive visualizations."
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::atomic<int> writer_commits{0};
  std::atomic<int> invariant_violations{0};

  // Clear the fixture rows before any thread starts: a reader whose
  // snapshot predates this DELETE would (correctly) see the initial sum
  // of 30 and report a false invariant violation.
  {
    Connection con(db_.get());
    ASSERT_TRUE(con.Query("DELETE FROM t").ok());
  }
  // Writer: appends pairs of rows whose b values always sum to 100 per
  // transaction, so the total is a multiple of 100 in every snapshot.
  std::thread writer([&] {
    Connection con(db_.get());
    for (int i = 0; i < 60 && !stop.load(); i++) {
      auto r = con.Query(
          "BEGIN; INSERT INTO t VALUES (1, 40); "
          "INSERT INTO t VALUES (2, 60); COMMIT");
      if (r.ok()) writer_commits++;
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&] {
      Connection con(db_.get());
      while (!stop.load()) {
        auto r = con.Query("SELECT sum(b), count(*) FROM t");
        if (!r.ok()) {
          reader_errors++;
          continue;
        }
        Value sum = (*r)->GetValue(0, 0);
        if (!sum.is_null() && sum.GetBigInt() % 100 != 0) {
          invariant_violations++;
        }
      }
    });
  }
  writer.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(invariant_violations.load(), 0);
  EXPECT_GT(writer_commits.load(), 0);
}

TEST_F(MvccTest, UpdateVisibleOnlyAfterCommitUnderConcurrentScans) {
  // Bulk update + concurrent scans never observe a half-applied state.
  Connection con(db_.get());
  ASSERT_TRUE(con.Query("DELETE FROM t").ok());
  std::string sql = "INSERT INTO t VALUES (0, 0)";
  for (int i = 1; i < 5000; i++) sql += ",(" + std::to_string(i) + ", 0)";
  ASSERT_TRUE(con.Query(sql).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    Connection rcon(db_.get());
    while (!stop.load()) {
      auto r = rcon.Query("SELECT count(*) FROM t WHERE b = 1");
      if (!r.ok()) continue;
      int64_t n = (*r)->GetValue(0, 0).GetBigInt();
      // Either none or all rows updated — never a partial state.
      if (n != 0 && n != 5000) violations++;
    }
  });
  for (int round = 0; round < 10; round++) {
    ASSERT_TRUE(con.Query("UPDATE t SET b = 1").ok());
    ASSERT_TRUE(con.Query("UPDATE t SET b = 0").ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace mallard
