// C ABI tests: the full mallard.h surface — lifecycle, queries, value
// accessors, prepared statements, streaming — plus the error-path
// guarantees: bad SQL, out-of-range coordinates, unbound parameters,
// and every call on a closed/invalid handle returning an error (or a
// harmless default) instead of crashing. No exception may escape any
// entry point; gtest would abort the suite if one did.

#include "mallard/c_api/mallard.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace {

class CApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(mallard_open(":memory:", &db_), MALLARD_SUCCESS);
    ASSERT_EQ(mallard_connect(db_, &con_), MALLARD_SUCCESS);
  }

  void TearDown() override {
    mallard_disconnect(&con_);
    mallard_close(&db_);
  }

  // Runs `sql` expecting success; destroys the result.
  void Exec(const char* sql) {
    mallard_result* res = nullptr;
    ASSERT_EQ(mallard_query(con_, sql, &res), MALLARD_SUCCESS)
        << sql << " -> " << (mallard_result_error(res) ? mallard_result_error(res) : "?");
    mallard_destroy_result(&res);
  }

  mallard_database* db_ = nullptr;
  mallard_connection* con_ = nullptr;
};

TEST_F(CApiTest, VersionString) {
  ASSERT_NE(mallard_version(), nullptr);
  EXPECT_NE(std::string(mallard_version()).find("mallard"), std::string::npos);
}

TEST_F(CApiTest, OpenVariants) {
  // NULL and "" both mean in-memory.
  mallard_database* db = nullptr;
  ASSERT_EQ(mallard_open(nullptr, &db), MALLARD_SUCCESS);
  mallard_close(&db);
  EXPECT_EQ(db, nullptr);
  ASSERT_EQ(mallard_open("", &db), MALLARD_SUCCESS);
  mallard_close(&db);
  // Unwritable path fails without a handle; the reason is retrievable
  // from the thread-local open-error channel.
  db = reinterpret_cast<mallard_database*>(this);
  EXPECT_EQ(mallard_open("/nonexistent-dir/sub/db.mallard", &db),
            MALLARD_ERROR);
  EXPECT_EQ(db, nullptr);
  ASSERT_NE(mallard_open_error(), nullptr);
  EXPECT_GT(std::strlen(mallard_open_error()), 0u);
  // The next successful open/connect clears it.
  ASSERT_EQ(mallard_open(":memory:", &db), MALLARD_SUCCESS);
  EXPECT_EQ(mallard_open_error(), nullptr);
  mallard_close(&db);
  // Connect on a NULL database reports through the same channel.
  mallard_connection* con = nullptr;
  EXPECT_EQ(mallard_connect(nullptr, &con), MALLARD_ERROR);
  ASSERT_NE(mallard_open_error(), nullptr);
}

TEST_F(CApiTest, DisconnectRollsBackExplicitTransaction) {
  Exec("CREATE TABLE t (i INTEGER)");
  // Pin the connection state so the Connection object outlives the
  // disconnect: the rollback must happen AT disconnect, not when this
  // statement handle finally releases the state.
  mallard_prepared_statement* pin = nullptr;
  ASSERT_EQ(mallard_prepare(con_, "SELECT i FROM t", &pin), MALLARD_SUCCESS);

  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1)");
  mallard_disconnect(&con_);

  // A second connection sees the transaction undone and can write to
  // the table without hitting the dead transaction's locks/snapshot.
  mallard_connection* con2 = nullptr;
  ASSERT_EQ(mallard_connect(db_, &con2), MALLARD_SUCCESS);
  mallard_result* res = nullptr;
  ASSERT_EQ(mallard_query(con2, "SELECT count(*) FROM t", &res),
            MALLARD_SUCCESS);
  EXPECT_EQ(mallard_value_int64(res, 0, 0), 0);
  mallard_destroy_result(&res);
  ASSERT_EQ(mallard_query(con2, "INSERT INTO t VALUES (2)", &res),
            MALLARD_SUCCESS);
  mallard_destroy_result(&res);
  mallard_disconnect(&con2);
  mallard_destroy_prepare(&pin);
}

TEST_F(CApiTest, QueryAndValueAccessors) {
  Exec("CREATE TABLE t (b BOOLEAN, i INTEGER, big BIGINT, d DOUBLE, "
       "s VARCHAR, day DATE)");
  Exec("INSERT INTO t VALUES (true, 42, 9000000000, 3.5, 'hello', "
       "DATE '2026-07-31')");
  Exec("INSERT INTO t VALUES (NULL, NULL, NULL, NULL, NULL, NULL)");

  mallard_result* res = nullptr;
  ASSERT_EQ(mallard_query(con_, "SELECT * FROM t", &res), MALLARD_SUCCESS);
  EXPECT_EQ(mallard_result_error(res), nullptr);
  EXPECT_EQ(mallard_row_count(res), 2u);
  EXPECT_EQ(mallard_column_count(res), 6u);

  EXPECT_STREQ(mallard_column_name(res, 0), "b");
  EXPECT_STREQ(mallard_column_name(res, 4), "s");
  EXPECT_EQ(mallard_column_type(res, 0), MALLARD_TYPE_BOOLEAN);
  EXPECT_EQ(mallard_column_type(res, 1), MALLARD_TYPE_INTEGER);
  EXPECT_EQ(mallard_column_type(res, 2), MALLARD_TYPE_BIGINT);
  EXPECT_EQ(mallard_column_type(res, 3), MALLARD_TYPE_DOUBLE);
  EXPECT_EQ(mallard_column_type(res, 4), MALLARD_TYPE_VARCHAR);
  EXPECT_EQ(mallard_column_type(res, 5), MALLARD_TYPE_DATE);

  EXPECT_TRUE(mallard_value_boolean(res, 0, 0));
  EXPECT_EQ(mallard_value_int32(res, 1, 0), 42);
  EXPECT_EQ(mallard_value_int64(res, 2, 0), 9000000000LL);
  EXPECT_DOUBLE_EQ(mallard_value_double(res, 3, 0), 3.5);
  EXPECT_STREQ(mallard_value_varchar(res, 4, 0), "hello");
  EXPECT_STREQ(mallard_value_varchar(res, 5, 0), "2026-07-31");

  // Cross-type access casts (INTEGER read as double / int64 / string).
  EXPECT_DOUBLE_EQ(mallard_value_double(res, 1, 0), 42.0);
  EXPECT_EQ(mallard_value_int64(res, 1, 0), 42);
  EXPECT_STREQ(mallard_value_varchar(res, 1, 0), "42");

  // Repeated varchar access returns a stable cached pointer.
  const char* first = mallard_value_varchar(res, 4, 0);
  EXPECT_EQ(first, mallard_value_varchar(res, 4, 0));

  // NULL row: is_null true, accessors return defaults.
  EXPECT_FALSE(mallard_value_is_null(res, 1, 0));
  EXPECT_TRUE(mallard_value_is_null(res, 1, 1));
  EXPECT_EQ(mallard_value_int32(res, 1, 1), 0);
  EXPECT_EQ(mallard_value_varchar(res, 4, 1), nullptr);

  mallard_destroy_result(&res);
  EXPECT_EQ(res, nullptr);
  mallard_destroy_result(&res);  // double destroy is harmless
}

TEST_F(CApiTest, BadSqlProducesErrorResult) {
  mallard_result* res = nullptr;
  EXPECT_EQ(mallard_query(con_, "SELECT FROM FROM", &res), MALLARD_ERROR);
  ASSERT_NE(res, nullptr);
  ASSERT_NE(mallard_result_error(res), nullptr);
  EXPECT_GT(std::strlen(mallard_result_error(res)), 0u);
  // Accessors on an errored result degrade to defaults.
  EXPECT_EQ(mallard_row_count(res), 0u);
  EXPECT_EQ(mallard_column_count(res), 0u);
  EXPECT_EQ(mallard_column_name(res, 0), nullptr);
  EXPECT_EQ(mallard_column_type(res, 0), MALLARD_TYPE_INVALID);
  EXPECT_TRUE(mallard_value_is_null(res, 0, 0));
  EXPECT_EQ(mallard_value_varchar(res, 0, 0), nullptr);
  mallard_destroy_result(&res);

  // Runtime (binder) error, not just parse error.
  EXPECT_EQ(mallard_query(con_, "SELECT * FROM no_such_table", &res),
            MALLARD_ERROR);
  ASSERT_NE(mallard_result_error(res), nullptr);
  EXPECT_NE(std::string(mallard_result_error(res)).find("no_such_table"),
            std::string::npos);
  mallard_destroy_result(&res);
}

TEST_F(CApiTest, OutOfRangeCoordinates) {
  Exec("CREATE TABLE t (i INTEGER)");
  Exec("INSERT INTO t VALUES (7)");
  mallard_result* res = nullptr;
  ASSERT_EQ(mallard_query(con_, "SELECT i FROM t", &res), MALLARD_SUCCESS);
  EXPECT_EQ(mallard_column_name(res, 99), nullptr);
  EXPECT_EQ(mallard_column_type(res, 99), MALLARD_TYPE_INVALID);
  EXPECT_TRUE(mallard_value_is_null(res, 99, 0));
  EXPECT_TRUE(mallard_value_is_null(res, 0, 99));
  EXPECT_EQ(mallard_value_int32(res, 99, 99), 0);
  EXPECT_EQ(mallard_value_varchar(res, 0, 99), nullptr);
  mallard_destroy_result(&res);
}

TEST_F(CApiTest, PreparedBindExecuteLoop) {
  Exec("CREATE TABLE t (s VARCHAR, v DOUBLE)");
  mallard_prepared_statement* insert = nullptr;
  ASSERT_EQ(mallard_prepare(con_, "INSERT INTO t VALUES ($1, $2)", &insert),
            MALLARD_SUCCESS);
  EXPECT_EQ(mallard_prepare_error(insert), nullptr);
  EXPECT_EQ(mallard_nparams(insert), 2u);
  EXPECT_EQ(mallard_param_type(insert, 1), MALLARD_TYPE_VARCHAR);
  EXPECT_EQ(mallard_param_type(insert, 2), MALLARD_TYPE_DOUBLE);
  EXPECT_EQ(mallard_param_type(insert, 3), MALLARD_TYPE_INVALID);

  for (int i = 0; i < 100; i++) {
    ASSERT_EQ(mallard_bind_varchar(insert, 1, (i % 2) ? "a" : "b"),
              MALLARD_SUCCESS);
    ASSERT_EQ(mallard_bind_double(insert, 2, i * 1.0), MALLARD_SUCCESS);
    mallard_result* r = nullptr;
    ASSERT_EQ(mallard_execute_prepared(insert, &r), MALLARD_SUCCESS);
    mallard_destroy_result(&r);
  }
  // NULL varchar binds SQL NULL.
  ASSERT_EQ(mallard_bind_varchar(insert, 1, nullptr), MALLARD_SUCCESS);
  ASSERT_EQ(mallard_bind_double(insert, 2, -1.0), MALLARD_SUCCESS);
  mallard_result* r = nullptr;
  ASSERT_EQ(mallard_execute_prepared(insert, &r), MALLARD_SUCCESS);
  mallard_destroy_result(&r);
  mallard_destroy_prepare(&insert);

  ASSERT_EQ(mallard_query(
                con_, "SELECT count(*), count(s), sum(v) FROM t", &r),
            MALLARD_SUCCESS);
  EXPECT_EQ(mallard_value_int64(r, 0, 0), 101);
  EXPECT_EQ(mallard_value_int64(r, 1, 0), 100);
  EXPECT_DOUBLE_EQ(mallard_value_double(r, 2, 0), 4950.0 - 1.0);
  mallard_destroy_result(&r);

  // Typed binds through inference: int32/int64/boolean/null.
  Exec("CREATE TABLE n (i INTEGER, b BIGINT, f BOOLEAN)");
  mallard_prepared_statement* ins2 = nullptr;
  ASSERT_EQ(mallard_prepare(con_, "INSERT INTO n VALUES (?, ?, ?)", &ins2),
            MALLARD_SUCCESS);
  ASSERT_EQ(mallard_bind_int32(ins2, 1, 5), MALLARD_SUCCESS);
  ASSERT_EQ(mallard_bind_int64(ins2, 2, 1LL << 40), MALLARD_SUCCESS);
  ASSERT_EQ(mallard_bind_boolean(ins2, 3, true), MALLARD_SUCCESS);
  ASSERT_EQ(mallard_execute_prepared(ins2, &r), MALLARD_SUCCESS);
  mallard_destroy_result(&r);
  ASSERT_EQ(mallard_bind_null(ins2, 1), MALLARD_SUCCESS);
  ASSERT_EQ(mallard_execute_prepared(ins2, &r), MALLARD_SUCCESS);
  mallard_destroy_result(&r);
  mallard_destroy_prepare(&ins2);
}

TEST_F(CApiTest, PrepareErrors) {
  // Bad SQL: handle produced, error readable, binds/executes rejected.
  mallard_prepared_statement* stmt = nullptr;
  EXPECT_EQ(mallard_prepare(con_, "SELECT $1 FROM", &stmt), MALLARD_ERROR);
  ASSERT_NE(stmt, nullptr);
  ASSERT_NE(mallard_prepare_error(stmt), nullptr);
  EXPECT_EQ(mallard_nparams(stmt), 0u);
  EXPECT_EQ(mallard_bind_int32(stmt, 1, 1), MALLARD_ERROR);
  mallard_result* res = nullptr;
  EXPECT_EQ(mallard_execute_prepared(stmt, &res), MALLARD_ERROR);
  ASSERT_NE(res, nullptr);
  EXPECT_NE(mallard_result_error(res), nullptr);
  mallard_destroy_result(&res);
  mallard_destroy_prepare(&stmt);

  Exec("CREATE TABLE t (i INTEGER)");
  ASSERT_EQ(mallard_prepare(con_, "SELECT * FROM t WHERE i = $1", &stmt),
            MALLARD_SUCCESS);
  // Out-of-range parameter index (0 and 2; indexes are 1-based).
  EXPECT_EQ(mallard_bind_int32(stmt, 0, 1), MALLARD_ERROR);
  ASSERT_NE(mallard_prepare_error(stmt), nullptr);
  EXPECT_EQ(mallard_bind_int32(stmt, 2, 1), MALLARD_ERROR);
  // Type mismatch surfaces at bind time.
  EXPECT_EQ(mallard_bind_varchar(stmt, 1, "not a number"), MALLARD_ERROR);
  ASSERT_NE(mallard_prepare_error(stmt), nullptr);
  // Execute with the parameter still unbound errors.
  EXPECT_EQ(mallard_execute_prepared(stmt, &res), MALLARD_ERROR);
  ASSERT_NE(mallard_result_error(res), nullptr);
  EXPECT_NE(std::string(mallard_result_error(res)).find("not been bound"),
            std::string::npos);
  mallard_destroy_result(&res);
  // A successful bind clears the statement's error slot.
  EXPECT_EQ(mallard_bind_int32(stmt, 1, 3), MALLARD_SUCCESS);
  EXPECT_EQ(mallard_prepare_error(stmt), nullptr);
  EXPECT_EQ(mallard_execute_prepared(stmt, &res), MALLARD_SUCCESS);
  mallard_destroy_result(&res);
  mallard_destroy_prepare(&stmt);
}

TEST_F(CApiTest, StreamingFetch) {
  Exec("CREATE TABLE t (i INTEGER)");
  mallard_prepared_statement* insert = nullptr;
  ASSERT_EQ(mallard_prepare(con_, "INSERT INTO t VALUES (?)", &insert),
            MALLARD_SUCCESS);
  const int kRows = 5000;  // several vectors worth of rows
  for (int i = 0; i < kRows; i++) {
    mallard_bind_int32(insert, 1, i);
    mallard_result* r = nullptr;
    ASSERT_EQ(mallard_execute_prepared(insert, &r), MALLARD_SUCCESS);
    mallard_destroy_result(&r);
  }
  mallard_destroy_prepare(&insert);

  mallard_prepared_statement* scan = nullptr;
  ASSERT_EQ(mallard_prepare(con_, "SELECT i FROM t WHERE i >= $1", &scan),
            MALLARD_SUCCESS);
  ASSERT_EQ(mallard_bind_int32(scan, 1, 1000), MALLARD_SUCCESS);
  mallard_stream* stream = nullptr;
  ASSERT_EQ(mallard_execute_prepared_streaming(scan, &stream),
            MALLARD_SUCCESS);
  EXPECT_EQ(mallard_stream_error(stream), nullptr);

  // Re-executing while the stream is open is rejected, and the failed
  // attempt must not poison the open stream.
  mallard_result* blocked = nullptr;
  EXPECT_EQ(mallard_execute_prepared(scan, &blocked), MALLARD_ERROR);
  mallard_destroy_result(&blocked);

  int64_t sum = 0;
  uint64_t rows = 0;
  uint64_t chunks = 0;
  for (;;) {
    mallard_result* chunk = nullptr;
    ASSERT_EQ(mallard_stream_fetch_chunk(stream, &chunk), MALLARD_SUCCESS);
    if (chunk == nullptr) break;
    uint64_t n = mallard_row_count(chunk);
    ASSERT_GT(n, 0u);
    EXPECT_EQ(mallard_column_count(chunk), 1u);
    EXPECT_STREQ(mallard_column_name(chunk, 0), "i");
    for (uint64_t i = 0; i < n; i++) {
      sum += mallard_value_int64(chunk, 0, i);
    }
    rows += n;
    chunks++;
    mallard_destroy_result(&chunk);
  }
  EXPECT_EQ(rows, static_cast<uint64_t>(kRows - 1000));
  EXPECT_GT(chunks, 1u);  // actually streamed, not one big chunk
  int64_t expected = 0;
  for (int i = 1000; i < kRows; i++) expected += i;
  EXPECT_EQ(sum, expected);

  // Exhausted stream keeps answering success/NULL.
  mallard_result* after = nullptr;
  EXPECT_EQ(mallard_stream_fetch_chunk(stream, &after), MALLARD_SUCCESS);
  EXPECT_EQ(after, nullptr);
  mallard_destroy_stream(&stream);
  EXPECT_EQ(stream, nullptr);

  // After the stream closes the statement is executable again.
  mallard_result* res = nullptr;
  ASSERT_EQ(mallard_execute_prepared(scan, &res), MALLARD_SUCCESS);
  EXPECT_EQ(mallard_row_count(res), static_cast<uint64_t>(kRows - 1000));
  mallard_destroy_result(&res);
  mallard_destroy_prepare(&scan);
}

TEST_F(CApiTest, NullHandlesNeverCrash) {
  // Every entry point with NULL handles: error state or harmless default.
  EXPECT_EQ(mallard_open("x", nullptr), MALLARD_ERROR);
  mallard_database* no_db = nullptr;
  mallard_close(nullptr);
  mallard_close(&no_db);
  EXPECT_EQ(mallard_connect(nullptr, nullptr), MALLARD_ERROR);
  mallard_connection* no_con = nullptr;
  EXPECT_EQ(mallard_connect(nullptr, &no_con), MALLARD_ERROR);
  EXPECT_EQ(no_con, nullptr);
  mallard_disconnect(nullptr);
  mallard_disconnect(&no_con);

  mallard_result* res = nullptr;
  EXPECT_EQ(mallard_query(nullptr, "SELECT 1", &res), MALLARD_ERROR);
  ASSERT_NE(res, nullptr);
  EXPECT_NE(mallard_result_error(res), nullptr);
  mallard_destroy_result(&res);
  EXPECT_EQ(mallard_query(con_, nullptr, &res), MALLARD_ERROR);
  mallard_destroy_result(&res);
  EXPECT_EQ(mallard_query(con_, "SELECT 1", nullptr), MALLARD_ERROR);

  EXPECT_EQ(mallard_result_error(nullptr), nullptr);
  EXPECT_EQ(mallard_row_count(nullptr), 0u);
  EXPECT_EQ(mallard_column_count(nullptr), 0u);
  EXPECT_EQ(mallard_column_name(nullptr, 0), nullptr);
  EXPECT_EQ(mallard_column_type(nullptr, 0), MALLARD_TYPE_INVALID);
  EXPECT_TRUE(mallard_value_is_null(nullptr, 0, 0));
  EXPECT_FALSE(mallard_value_boolean(nullptr, 0, 0));
  EXPECT_EQ(mallard_value_int32(nullptr, 0, 0), 0);
  EXPECT_EQ(mallard_value_int64(nullptr, 0, 0), 0);
  EXPECT_EQ(mallard_value_double(nullptr, 0, 0), 0.0);
  EXPECT_EQ(mallard_value_varchar(nullptr, 0, 0), nullptr);

  mallard_prepared_statement* no_stmt = nullptr;
  EXPECT_EQ(mallard_prepare(nullptr, "SELECT 1", &no_stmt), MALLARD_ERROR);
  ASSERT_NE(no_stmt, nullptr);  // carries the error message
  EXPECT_NE(mallard_prepare_error(no_stmt), nullptr);
  mallard_destroy_prepare(&no_stmt);
  EXPECT_EQ(mallard_prepare(con_, "SELECT 1", nullptr), MALLARD_ERROR);
  EXPECT_EQ(mallard_prepare_error(nullptr), nullptr);
  EXPECT_EQ(mallard_nparams(nullptr), 0u);
  EXPECT_EQ(mallard_param_type(nullptr, 1), MALLARD_TYPE_INVALID);
  EXPECT_EQ(mallard_bind_null(nullptr, 1), MALLARD_ERROR);
  EXPECT_EQ(mallard_bind_boolean(nullptr, 1, true), MALLARD_ERROR);
  EXPECT_EQ(mallard_bind_int32(nullptr, 1, 1), MALLARD_ERROR);
  EXPECT_EQ(mallard_bind_int64(nullptr, 1, 1), MALLARD_ERROR);
  EXPECT_EQ(mallard_bind_double(nullptr, 1, 1.0), MALLARD_ERROR);
  EXPECT_EQ(mallard_bind_varchar(nullptr, 1, "x"), MALLARD_ERROR);
  EXPECT_EQ(mallard_execute_prepared(nullptr, &res), MALLARD_ERROR);
  mallard_destroy_result(&res);
  EXPECT_EQ(mallard_execute_prepared(nullptr, nullptr), MALLARD_ERROR);
  mallard_destroy_prepare(nullptr);

  mallard_stream* no_stream = nullptr;
  EXPECT_EQ(mallard_execute_prepared_streaming(nullptr, &no_stream),
            MALLARD_ERROR);
  EXPECT_EQ(no_stream, nullptr);
  EXPECT_EQ(mallard_stream_fetch_chunk(nullptr, &res), MALLARD_ERROR);
  EXPECT_EQ(mallard_stream_fetch_chunk(nullptr, nullptr), MALLARD_ERROR);
  EXPECT_EQ(mallard_stream_error(nullptr), nullptr);
  mallard_destroy_stream(nullptr);
  mallard_destroy_stream(&no_stream);
}

TEST_F(CApiTest, OperationsAfterDisconnectError) {
  Exec("CREATE TABLE t (i INTEGER)");
  Exec("INSERT INTO t VALUES (1)");
  mallard_prepared_statement* stmt = nullptr;
  ASSERT_EQ(mallard_prepare(con_, "SELECT i FROM t WHERE i = $1", &stmt),
            MALLARD_SUCCESS);
  ASSERT_EQ(mallard_bind_int32(stmt, 1, 1), MALLARD_SUCCESS);
  mallard_stream* stream = nullptr;
  ASSERT_EQ(mallard_execute_prepared_streaming(stmt, &stream),
            MALLARD_SUCCESS);

  mallard_disconnect(&con_);
  EXPECT_EQ(con_, nullptr);

  // Query on the nulled handle.
  mallard_result* res = nullptr;
  EXPECT_EQ(mallard_query(con_, "SELECT 1", &res), MALLARD_ERROR);
  ASSERT_NE(mallard_result_error(res), nullptr);
  EXPECT_NE(std::string(mallard_result_error(res)).find("closed"),
            std::string::npos);
  mallard_destroy_result(&res);

  // Bind / execute / stream-fetch through the surviving handles all
  // report the closed connection instead of touching freed state.
  EXPECT_EQ(mallard_bind_int32(stmt, 1, 2), MALLARD_ERROR);
  ASSERT_NE(mallard_prepare_error(stmt), nullptr);
  EXPECT_NE(std::string(mallard_prepare_error(stmt)).find("closed"),
            std::string::npos);
  EXPECT_EQ(mallard_execute_prepared(stmt, &res), MALLARD_ERROR);
  mallard_destroy_result(&res);
  mallard_stream* s2 = nullptr;
  EXPECT_EQ(mallard_execute_prepared_streaming(stmt, &s2), MALLARD_ERROR);
  EXPECT_EQ(s2, nullptr);
  EXPECT_EQ(mallard_stream_fetch_chunk(stream, &res), MALLARD_ERROR);
  ASSERT_NE(mallard_stream_error(stream), nullptr);

  // Teardown in the "wrong" order (statement and stream after their
  // connection, database last) stays safe thanks to refcounted handles.
  mallard_destroy_stream(&stream);
  mallard_destroy_prepare(&stmt);
}

TEST_F(CApiTest, CloseDatabaseBeforeDependentsIsSafe) {
  Exec("CREATE TABLE t (i INTEGER)");
  // Closing the database handle releases it, but the instance lives on
  // while the connection still references it.
  mallard_close(&db_);
  EXPECT_EQ(db_, nullptr);
  mallard_result* res = nullptr;
  ASSERT_EQ(mallard_query(con_, "INSERT INTO t VALUES (3)", &res),
            MALLARD_SUCCESS);
  mallard_destroy_result(&res);
  ASSERT_EQ(mallard_query(con_, "SELECT i FROM t", &res), MALLARD_SUCCESS);
  EXPECT_EQ(mallard_value_int32(res, 0, 0), 3);
  mallard_destroy_result(&res);
}

TEST_F(CApiTest, ResultOutlivesStatementAndConnection) {
  Exec("CREATE TABLE t (s VARCHAR)");
  Exec("INSERT INTO t VALUES ('persists')");
  mallard_prepared_statement* stmt = nullptr;
  ASSERT_EQ(mallard_prepare(con_, "SELECT s FROM t", &stmt), MALLARD_SUCCESS);
  mallard_result* res = nullptr;
  ASSERT_EQ(mallard_execute_prepared(stmt, &res), MALLARD_SUCCESS);
  const char* value = mallard_value_varchar(res, 0, 0);
  ASSERT_NE(value, nullptr);
  mallard_destroy_prepare(&stmt);
  mallard_disconnect(&con_);
  mallard_close(&db_);
  // Materialized results own their buffers: still readable.
  EXPECT_STREQ(mallard_value_varchar(res, 0, 0), "persists");
  EXPECT_STREQ(value, "persists");
  mallard_destroy_result(&res);
}

}  // namespace
