// E2 — Reproduces Figure 1 of the paper: reactive intermediate
// compression. A synthetic host application ramps its RAM usage up and
// back down while the DBMS continuously materializes a large intermediate
// (a governed ChunkCollection). In reactive mode the governor switches
// the intermediate compression none -> light -> heavy as machine memory
// pressure grows, trading DBMS CPU for RAM exactly as the figure sketches.

#include <chrono>
#include <cstdio>

#include "mallard/execution/chunk_collection.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/storage/buffer_manager.h"

int main() {
  using namespace mallard;
  using Clock = std::chrono::steady_clock;

  const uint64_t kTotalMemory = 1ull << 30;  // 1 GiB machine envelope
  GovernorConfig config;
  config.total_memory = kTotalMemory;
  config.dbms_memory_limit = kTotalMemory / 2;
  config.reactive = true;
  ResourceGovernor governor(config);
  SyntheticAppMonitor app;
  governor.SetMonitor(&app);

  // The DBMS workload: repeatedly materialize a 16MB intermediate of
  // moderately compressible analytical data.
  auto run_query = [&](uint64_t* dbms_bytes, uint64_t* raw_bytes,
                       double* cpu_ms) {
    ChunkCollection intermediate({TypeId::kBigInt, TypeId::kBigInt,
                                  TypeId::kVarchar},
                                 &governor);
    DataChunk chunk;
    chunk.Initialize(intermediate.types());
    auto start = Clock::now();
    uint64_t row_id = 0;
    for (int c = 0; c < 256; c++) {
      chunk.Reset();
      for (idx_t i = 0; i < kVectorSize; i++) {
        chunk.column(0).data<int64_t>()[i] =
            static_cast<int64_t>(row_id / 64);   // slowly changing key
        chunk.column(1).data<int64_t>()[i] =
            static_cast<int64_t>(row_id % 997);  // repeating measure
        chunk.column(2).SetString(i, "segment-" +
                                          std::to_string(row_id % 16));
        row_id++;
      }
      chunk.SetCardinality(kVectorSize);
      if (!intermediate.Append(chunk).ok()) return;
    }
    intermediate.Finalize();
    *cpu_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                        start)
                  .count();
    *dbms_bytes = intermediate.MemoryBytes();
    *raw_bytes = intermediate.RawBytes();
  };

  std::printf("=== Figure 1: reactive resource usage pattern ===\n");
  std::printf("app RAM ramps 5%% -> 85%% -> 5%% of a %.1f GiB machine; the "
              "DBMS materializes a fixed intermediate each step\n\n",
              kTotalMemory / double(1ull << 30));
  std::printf("%-6s %-12s %-14s %-14s %-14s %-12s\n", "step", "app RAM %",
              "compression", "DBMS RAM (MB)", "raw (MB)", "CPU (ms)");

  // Timeline: application RAM 5% -> 85% -> 5% in 16 steps (the ramp in
  // Figure 1), DBMS reacting at every step.
  const int kSteps = 17;
  for (int step = 0; step < kSteps; step++) {
    double frac =
        step <= kSteps / 2
            ? 0.05 + (0.85 - 0.05) * step / (kSteps / 2)
            : 0.85 - (0.85 - 0.05) * (step - kSteps / 2) / (kSteps / 2);
    app.SetMemory(static_cast<uint64_t>(kTotalMemory * frac));
    uint64_t dbms_bytes = 0, raw_bytes = 0;
    double cpu_ms = 0;
    run_query(&dbms_bytes, &raw_bytes, &cpu_ms);
    GovernorSample sample = governor.Sample();
    std::printf("%-6d %-12.0f %-14s %-14.1f %-14.1f %-12.1f\n", step,
                frac * 100, CompressionLevelToString(sample.compression),
                dbms_bytes / (1024.0 * 1024.0),
                raw_bytes / (1024.0 * 1024.0), cpu_ms);
  }
  std::printf("\nShape check vs Figure 1: as app RAM rises the DBMS "
              "footprint steps DOWN (light, then heavy compression) while "
              "its CPU time steps UP; both revert when the app backs "
              "off.\n");
  return 0;
}
