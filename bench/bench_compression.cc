// E11 — Supports Figure 1: characterizes the light (RLE) and heavy (LZ77)
// codecs plus frame-of-reference bit-packing on analytical payloads —
// the cheap/weak vs costly/strong trade-off the reactive governor
// arbitrates. Uses google-benchmark.

#include <benchmark/benchmark.h>

#include <vector>

#include "mallard/common/random.h"
#include "mallard/compression/codec.h"

namespace {

using namespace mallard;

// Analytical-looking payload: sorted keys, repeating dimension strings,
// noisy measures.
std::vector<uint8_t> MakePayload(size_t bytes, int compressibility) {
  RandomEngine rng(123);
  std::vector<uint8_t> data;
  data.reserve(bytes);
  while (data.size() < bytes) {
    switch (compressibility) {
      case 0:  // random (worst case)
        data.push_back(static_cast<uint8_t>(rng.Next()));
        break;
      case 1: {  // mixed: repeating tags + noise
        std::string tag = "region-" + std::to_string(rng.Next() % 8) + ";";
        data.insert(data.end(), tag.begin(), tag.end());
        data.push_back(static_cast<uint8_t>(rng.Next()));
        break;
      }
      default: {  // highly repetitive
        std::string tag = "AAAA-BBBB-";
        data.insert(data.end(), tag.begin(), tag.end());
        break;
      }
    }
  }
  data.resize(bytes);
  return data;
}

void BM_Compress(benchmark::State& state, CompressionLevel level,
                 int compressibility) {
  auto payload = MakePayload(1 << 20, compressibility);
  const Codec* codec = CodecForLevel(level);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    codec->Compress(payload.data(), payload.size(), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * payload.size());
  state.counters["ratio"] =
      static_cast<double>(payload.size()) / out.size();
}

void BM_Decompress(benchmark::State& state, CompressionLevel level,
                   int compressibility) {
  auto payload = MakePayload(1 << 20, compressibility);
  const Codec* codec = CodecForLevel(level);
  std::vector<uint8_t> compressed, out;
  codec->Compress(payload.data(), payload.size(), &compressed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec->Decompress(compressed.data(), compressed.size(), &out));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * payload.size());
}

void BM_Bitpack(benchmark::State& state, int bits) {
  RandomEngine rng(5);
  std::vector<int64_t> values(131072);
  for (auto& v : values) {
    v = 1000000 + rng.NextInt(0, (int64_t(1) << bits) - 1);
  }
  std::vector<uint8_t> packed;
  for (auto _ : state) {
    bitpack::Pack(values.data(), values.size(), &packed);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * values.size() * 8);
  state.counters["ratio"] =
      static_cast<double>(values.size() * 8) / packed.size();
}

}  // namespace

BENCHMARK_CAPTURE(BM_Compress, light_random, mallard::CompressionLevel::kLight, 0);
BENCHMARK_CAPTURE(BM_Compress, light_mixed, mallard::CompressionLevel::kLight, 1);
BENCHMARK_CAPTURE(BM_Compress, light_repetitive, mallard::CompressionLevel::kLight, 2);
BENCHMARK_CAPTURE(BM_Compress, heavy_random, mallard::CompressionLevel::kHeavy, 0);
BENCHMARK_CAPTURE(BM_Compress, heavy_mixed, mallard::CompressionLevel::kHeavy, 1);
BENCHMARK_CAPTURE(BM_Compress, heavy_repetitive, mallard::CompressionLevel::kHeavy, 2);
BENCHMARK_CAPTURE(BM_Decompress, light_mixed, mallard::CompressionLevel::kLight, 1);
BENCHMARK_CAPTURE(BM_Decompress, heavy_mixed, mallard::CompressionLevel::kHeavy, 1);
BENCHMARK_CAPTURE(BM_Bitpack, bits8, 8);
BENCHMARK_CAPTURE(BM_Bitpack, bits20, 20);

BENCHMARK_MAIN();
