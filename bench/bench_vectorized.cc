// E5 — Paper section 6: the engine choice "vectorized interpreted
// execution" (Vector Volcano) vs classic tuple-at-a-time interpretation.
// Runs TPC-H Q1- and Q6-shaped aggregations through both engines over
// the same stored table and reports the speedup.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "mallard/baseline/row_engine.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/tpch/tpch.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {
double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

ExprPtr ColRef(idx_t i, TypeId t) {
  return std::make_unique<BoundColumnRef>(i, t, "c" + std::to_string(i));
}
ExprPtr Const(Value v) { return std::make_unique<BoundConstant>(v); }
}  // namespace

int main() {
  const char* sf_env = std::getenv("MALLARD_SF");
  double sf = sf_env ? std::strtod(sf_env, nullptr) : 0.05;
  auto db = Database::Open(":memory:");
  if (!db.ok()) return 1;
  std::printf("generating TPC-H data at SF %.3f ...\n", sf);
  if (!tpch::Generate(db->get(), sf).ok()) return 1;
  Connection con(db->get());
  auto count = con.Query("SELECT count(*) FROM lineitem");
  int64_t rows = (*count)->GetValue(0, 0).GetBigInt();

  std::printf("\n=== Vectorized vs tuple-at-a-time (paper section 6) — "
              "%lld lineitem rows ===\n\n",
              static_cast<long long>(rows));
  std::printf("%-26s %-18s %-18s %-10s\n", "query", "vectorized (ms)",
              "tuple-at-a-time (ms)", "speedup");

  auto table = db->get()->catalog().GetTable("lineitem");
  // lineitem column indexes.
  const idx_t kQty = 4, kPrice = 5, kDisc = 6, kTax = 7, kFlag = 8,
              kStatus = 9, kShip = 10;

  // ---- Q1 shape: filtered grouped aggregation --------------------------
  {
    auto start = Clock::now();
    auto r = con.Query(tpch::Query(1));
    double vec_ms = Ms(start);
    if (!r.ok()) return 1;

    // Same query on the row engine, constructed directly.
    auto txn = db->get()->transactions().Begin();
    int32_t cutoff = date::FromYMD(1998, 9, 2);
    start = Clock::now();
    auto scan = std::make_unique<baseline::RowScan>(
        *table, txn.get(),
        std::vector<idx_t>{kQty, kPrice, kDisc, kTax, kFlag, kStatus,
                           kShip});
    auto filter = std::make_unique<baseline::RowFilter>(
        std::make_unique<BoundComparison>(CompareOp::kLessEqual,
                                          ColRef(6, TypeId::kDate),
                                          Const(Value::Date(cutoff))),
        std::move(scan));
    std::vector<ExprPtr> groups;
    groups.push_back(ColRef(4, TypeId::kVarchar));
    groups.push_back(ColRef(5, TypeId::kVarchar));
    std::vector<BoundAggregate> aggs;
    aggs.push_back({AggType::kSum, ColRef(0, TypeId::kDouble),
                    TypeId::kDouble});
    aggs.push_back({AggType::kSum, ColRef(1, TypeId::kDouble),
                    TypeId::kDouble});
    // sum(price * (1 - disc))
    aggs.push_back(
        {AggType::kSum,
         std::make_unique<BoundArithmetic>(
             ArithOp::kMultiply, TypeId::kDouble, ColRef(1, TypeId::kDouble),
             std::make_unique<BoundArithmetic>(
                 ArithOp::kSubtract, TypeId::kDouble,
                 Const(Value::Double(1.0)), ColRef(2, TypeId::kDouble))),
         TypeId::kDouble});
    aggs.push_back({AggType::kAvg, ColRef(0, TypeId::kDouble),
                    TypeId::kDouble});
    aggs.push_back({AggType::kCountStar, nullptr, TypeId::kBigInt});
    baseline::RowHashAggregate agg(std::move(groups), std::move(aggs),
                                   std::move(filter));
    std::vector<Value> row;
    idx_t out_rows = 0;
    while (true) {
      auto has = agg.Next(&row);
      if (!has.ok() || !*has) break;
      out_rows++;
    }
    double row_ms = Ms(start);
    (void)db->get()->transactions().Commit(txn.get());
    std::printf("%-26s %-18.1f %-18.1f %.1fx   (%llu groups)\n",
                "Q1 (grouped aggregate)", vec_ms, row_ms, row_ms / vec_ms,
                static_cast<unsigned long long>(out_rows));
  }

  // ---- Q6 shape: selective filter + ungrouped aggregate -----------------
  {
    auto start = Clock::now();
    auto r = con.Query(tpch::Query(6));
    double vec_ms = Ms(start);
    if (!r.ok()) return 1;
    double vec_result = (*r)->GetValue(0, 0).GetDouble();

    auto txn = db->get()->transactions().Begin();
    int32_t from = date::FromYMD(1994, 1, 1), to = date::FromYMD(1995, 1, 1);
    start = Clock::now();
    auto scan = std::make_unique<baseline::RowScan>(
        *table, txn.get(), std::vector<idx_t>{kQty, kPrice, kDisc, kShip});
    std::vector<ExprPtr> conj;
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kGreaterEqual, ColRef(3, TypeId::kDate),
        Const(Value::Date(from))));
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kLess, ColRef(3, TypeId::kDate),
        Const(Value::Date(to))));
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kGreaterEqual, ColRef(2, TypeId::kDouble),
        Const(Value::Double(0.05))));
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kLessEqual, ColRef(2, TypeId::kDouble),
        Const(Value::Double(0.07))));
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kLess, ColRef(0, TypeId::kDouble),
        Const(Value::Double(24.0))));
    auto filter = std::make_unique<baseline::RowFilter>(
        std::make_unique<BoundConjunction>(true, std::move(conj)),
        std::move(scan));
    std::vector<BoundAggregate> aggs;
    aggs.push_back(
        {AggType::kSum,
         std::make_unique<BoundArithmetic>(
             ArithOp::kMultiply, TypeId::kDouble, ColRef(1, TypeId::kDouble),
             ColRef(2, TypeId::kDouble)),
         TypeId::kDouble});
    baseline::RowHashAggregate agg({}, std::move(aggs), std::move(filter));
    std::vector<Value> row;
    auto has = agg.Next(&row);
    double row_ms = Ms(start);
    (void)db->get()->transactions().Commit(txn.get());
    double row_result = has.ok() && *has && !row[0].is_null()
                            ? row[0].GetDouble()
                            : 0.0;
    std::printf("%-26s %-18.1f %-18.1f %.1fx   (results agree: %s)\n",
                "Q6 (filter + aggregate)", vec_ms, row_ms, row_ms / vec_ms,
                std::abs(vec_result - row_result) < 1e-3 ? "yes" : "NO");
  }
  std::printf("\nShape check vs paper: the vectorized interpreter "
              "amortizes interpretation overhead over %llu-row vectors "
              "and wins by roughly an order of magnitude.\n",
              static_cast<unsigned long long>(kVectorSize));
  return 0;
}
