// E5 — Paper section 6: the engine choice "vectorized interpreted
// execution" (Vector Volcano) vs classic tuple-at-a-time interpretation.
// Runs TPC-H Q1- and Q6-shaped aggregations through both engines over
// the same stored table and reports the speedup.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "mallard/baseline/row_engine.h"
#include "mallard/execution/operators.h"
#include "mallard/execution/physical_aggregate.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/tpch/tpch.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {
double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

ExprPtr ColRef(idx_t i, TypeId t) {
  return std::make_unique<BoundColumnRef>(i, t, "c" + std::to_string(i));
}
ExprPtr Const(Value v) { return std::make_unique<BoundConstant>(v); }

// Best-of-three wall time for a query, in ms.
double BestMs(Connection* con, const std::string& sql) {
  double best = 1e18;
  for (int i = 0; i < 3; i++) {
    auto start = Clock::now();
    auto r = con->Query(sql);
    double ms = Ms(start);
    if (!r.ok()) return -1.0;
    if (ms < best) best = ms;
  }
  return best;
}
}  // namespace

int main(int argc, char** argv) {
  mallard_bench::BenchReporter reporter("bench_vectorized", argc, argv);
  const char* sf_env = std::getenv("MALLARD_SF");
  double sf = sf_env ? std::strtod(sf_env, nullptr) : 0.05;
  auto db = Database::Open(":memory:");
  if (!db.ok()) return 1;
  std::printf("generating TPC-H data at SF %.3f ...\n", sf);
  if (!tpch::Generate(db->get(), sf).ok()) return 1;
  Connection con(db->get());
  auto count = con.Query("SELECT count(*) FROM lineitem");
  int64_t rows = (*count)->GetValue(0, 0).GetBigInt();

  std::printf("\n=== Vectorized vs tuple-at-a-time (paper section 6) — "
              "%lld lineitem rows ===\n\n",
              static_cast<long long>(rows));
  std::printf("%-26s %-18s %-18s %-10s\n", "query", "vectorized (ms)",
              "tuple-at-a-time (ms)", "speedup");

  auto table = db->get()->catalog().GetTable("lineitem");
  // lineitem column indexes.
  const idx_t kQty = 4, kPrice = 5, kDisc = 6, kTax = 7, kFlag = 8,
              kStatus = 9, kShip = 10;

  // ---- Q1 shape: filtered grouped aggregation --------------------------
  {
    auto start = Clock::now();
    auto r = con.Query(tpch::Query(1));
    double vec_ms = Ms(start);
    if (!r.ok()) return 1;

    // Same query on the row engine, constructed directly.
    auto txn = db->get()->transactions().Begin();
    int32_t cutoff = date::FromYMD(1998, 9, 2);
    start = Clock::now();
    auto scan = std::make_unique<baseline::RowScan>(
        *table, txn.get(),
        std::vector<idx_t>{kQty, kPrice, kDisc, kTax, kFlag, kStatus,
                           kShip});
    auto filter = std::make_unique<baseline::RowFilter>(
        std::make_unique<BoundComparison>(CompareOp::kLessEqual,
                                          ColRef(6, TypeId::kDate),
                                          Const(Value::Date(cutoff))),
        std::move(scan));
    std::vector<ExprPtr> groups;
    groups.push_back(ColRef(4, TypeId::kVarchar));
    groups.push_back(ColRef(5, TypeId::kVarchar));
    std::vector<BoundAggregate> aggs;
    aggs.push_back({AggType::kSum, ColRef(0, TypeId::kDouble),
                    TypeId::kDouble});
    aggs.push_back({AggType::kSum, ColRef(1, TypeId::kDouble),
                    TypeId::kDouble});
    // sum(price * (1 - disc))
    aggs.push_back(
        {AggType::kSum,
         std::make_unique<BoundArithmetic>(
             ArithOp::kMultiply, TypeId::kDouble, ColRef(1, TypeId::kDouble),
             std::make_unique<BoundArithmetic>(
                 ArithOp::kSubtract, TypeId::kDouble,
                 Const(Value::Double(1.0)), ColRef(2, TypeId::kDouble))),
         TypeId::kDouble});
    aggs.push_back({AggType::kAvg, ColRef(0, TypeId::kDouble),
                    TypeId::kDouble});
    aggs.push_back({AggType::kCountStar, nullptr, TypeId::kBigInt});
    baseline::RowHashAggregate agg(std::move(groups), std::move(aggs),
                                   std::move(filter));
    std::vector<Value> row;
    idx_t out_rows = 0;
    while (true) {
      auto has = agg.Next(&row);
      if (!has.ok() || !*has) break;
      out_rows++;
    }
    double row_ms = Ms(start);
    (void)db->get()->transactions().Commit(txn.get());
    std::printf("%-26s %-18.1f %-18.1f %.1fx   (%llu groups)\n",
                "Q1 (grouped aggregate)", vec_ms, row_ms, row_ms / vec_ms,
                static_cast<unsigned long long>(out_rows));
    reporter.Add("q1_grouped_aggregate", 1, vec_ms * 1e6,
                 rows / (vec_ms / 1e3));
  }

  // ---- Q6 shape: selective filter + ungrouped aggregate -----------------
  {
    auto start = Clock::now();
    auto r = con.Query(tpch::Query(6));
    double vec_ms = Ms(start);
    if (!r.ok()) return 1;
    double vec_result = (*r)->GetValue(0, 0).GetDouble();

    auto txn = db->get()->transactions().Begin();
    int32_t from = date::FromYMD(1994, 1, 1), to = date::FromYMD(1995, 1, 1);
    start = Clock::now();
    auto scan = std::make_unique<baseline::RowScan>(
        *table, txn.get(), std::vector<idx_t>{kQty, kPrice, kDisc, kShip});
    std::vector<ExprPtr> conj;
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kGreaterEqual, ColRef(3, TypeId::kDate),
        Const(Value::Date(from))));
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kLess, ColRef(3, TypeId::kDate),
        Const(Value::Date(to))));
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kGreaterEqual, ColRef(2, TypeId::kDouble),
        Const(Value::Double(0.05))));
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kLessEqual, ColRef(2, TypeId::kDouble),
        Const(Value::Double(0.07))));
    conj.push_back(std::make_unique<BoundComparison>(
        CompareOp::kLess, ColRef(0, TypeId::kDouble),
        Const(Value::Double(24.0))));
    auto filter = std::make_unique<baseline::RowFilter>(
        std::make_unique<BoundConjunction>(true, std::move(conj)),
        std::move(scan));
    std::vector<BoundAggregate> aggs;
    aggs.push_back(
        {AggType::kSum,
         std::make_unique<BoundArithmetic>(
             ArithOp::kMultiply, TypeId::kDouble, ColRef(1, TypeId::kDouble),
             ColRef(2, TypeId::kDouble)),
         TypeId::kDouble});
    baseline::RowHashAggregate agg({}, std::move(aggs), std::move(filter));
    std::vector<Value> row;
    auto has = agg.Next(&row);
    double row_ms = Ms(start);
    (void)db->get()->transactions().Commit(txn.get());
    double row_result = has.ok() && *has && !row[0].is_null()
                            ? row[0].GetDouble()
                            : 0.0;
    std::printf("%-26s %-18.1f %-18.1f %.1fx   (results agree: %s)\n",
                "Q6 (filter + aggregate)", vec_ms, row_ms, row_ms / vec_ms,
                std::abs(vec_result - row_result) < 1e-3 ? "yes" : "NO");
    reporter.Add("q6_filter_aggregate", 1, vec_ms * 1e6,
                 rows / (vec_ms / 1e3));
  }

  // ---- grouped-aggregate microbench ------------------------------------
  // Narrow tables where the aggregation operator dominates the query, so
  // the hash-table hot path (group lookup + state update) is what gets
  // measured: a Q1-shaped VARCHAR low-cardinality GROUP BY and a BIGINT
  // high-cardinality one (~100k groups, multi-vector emission).
  {
    const char* rows_env = std::getenv("MALLARD_AGG_ROWS");
    idx_t agg_rows = rows_env
                         ? static_cast<idx_t>(std::strtoull(rows_env,
                                                            nullptr, 10))
                         : 2000000;
    static const char* kFlags[] = {"AF", "NF", "NO", "RF", "AO", "RO"};
    (void)con.Query("CREATE TABLE agg_lo (flag VARCHAR, v DOUBLE)");
    (void)con.Query("CREATE TABLE agg_hi (k BIGINT, v DOUBLE)");
    {
      auto app_lo = Appender::Create(db->get(), "agg_lo");
      auto app_hi = Appender::Create(db->get(), "agg_hi");
      if (!app_lo.ok() || !app_hi.ok()) return 1;
      DataChunk lo, hi;
      lo.Initialize({TypeId::kVarchar, TypeId::kDouble});
      hi.Initialize({TypeId::kBigInt, TypeId::kDouble});
      idx_t produced = 0;
      while (produced < agg_rows) {
        lo.Reset();
        hi.Reset();
        idx_t n = std::min<idx_t>(kVectorSize, agg_rows - produced);
        for (idx_t i = 0; i < n; i++) {
          idx_t r = produced + i;
          const char* flag = kFlags[r % 6];
          lo.column(0).SetString(i, flag, 2);
          lo.column(1).data<double>()[i] = (r % 1000) * 0.25;
          hi.column(0).data<int64_t>()[i] =
              static_cast<int64_t>((r * 2654435761ull) % 100000);
          hi.column(1).data<double>()[i] = (r % 1000) * 0.25;
        }
        lo.SetCardinality(n);
        hi.SetCardinality(n);
        if (!(*app_lo)->AppendChunk(lo).ok()) return 1;
        if (!(*app_hi)->AppendChunk(hi).ok()) return 1;
        produced += n;
      }
      if (!(*app_lo)->Close().ok()) return 1;
      if (!(*app_hi)->Close().ok()) return 1;
    }
    std::printf("\n=== grouped-aggregate microbench — %llu rows ===\n\n",
                static_cast<unsigned long long>(agg_rows));
    double lo_ms = BestMs(&con,
                          "SELECT flag, count(*), sum(v), avg(v) "
                          "FROM agg_lo GROUP BY flag");
    double hi_ms = BestMs(&con,
                          "SELECT k, count(*), sum(v), min(v), max(v) "
                          "FROM agg_hi GROUP BY k");
    if (lo_ms < 0 || hi_ms < 0) return 1;
    std::printf("%-38s %10.1f ms  %12.0f rows/s\n",
                "GROUP BY flag (varchar, 6 groups)", lo_ms,
                agg_rows / (lo_ms / 1e3));
    std::printf("%-38s %10.1f ms  %12.0f rows/s\n",
                "GROUP BY k (bigint, 100k groups)", hi_ms,
                agg_rows / (hi_ms / 1e3));
    reporter.Add("groupby_micro/varchar_6_groups", 3, lo_ms * 1e6,
                 agg_rows / (lo_ms / 1e3));
    reporter.Add("groupby_micro/bigint_100k_groups", 3, hi_ms * 1e6,
                 agg_rows / (hi_ms / 1e3));

    // ---- morsel-driven parallel scaling --------------------------------
    // The same high-cardinality aggregation at pinned thread counts,
    // constructed directly (scan → hash aggregate) so the sink/merge
    // phase breakdown of the radix-partitioned parallel merge is
    // observable in the JSON (docs/BENCHMARKS.md documents the field
    // contract). threads=1 is the serial baseline of the scaling table
    // in BENCH_agg.json.
    std::printf("\n=== parallel scaling — GROUP BY k (bigint, 100k groups) "
                "===\n\n");
    auto agg_table = db->get()->catalog().GetTable("agg_hi");
    if (!agg_table.ok()) return 1;
    idx_t rows_serial = 0;
    for (int threads : {1, 2, 4}) {
      double best = 1e18, best_sink = 0, best_merge = 0;
      idx_t out_rows = 0;
      for (int rep = 0; rep < 3; rep++) {
        auto scan = std::make_unique<PhysicalTableScan>(
            *agg_table, std::vector<idx_t>{0, 1}, std::vector<TableFilter>{},
            (*agg_table)->ColumnTypes());
        std::vector<ExprPtr> groups;
        groups.push_back(ColRef(0, TypeId::kBigInt));
        std::vector<BoundAggregate> aggs;
        aggs.push_back({AggType::kCountStar, nullptr, TypeId::kBigInt});
        aggs.push_back(
            {AggType::kSum, ColRef(1, TypeId::kDouble), TypeId::kDouble});
        aggs.push_back(
            {AggType::kMin, ColRef(1, TypeId::kDouble), TypeId::kDouble});
        aggs.push_back(
            {AggType::kMax, ColRef(1, TypeId::kDouble), TypeId::kDouble});
        auto agg = std::make_unique<PhysicalHashAggregate>(
            std::move(groups), std::move(aggs), std::move(scan));
        auto txn = db->get()->transactions().Begin();
        ExecutionContext context;
        context.txn = txn.get();
        context.buffers = &db->get()->buffers();
        context.governor = &db->get()->governor();
        context.scheduler = &db->get()->scheduler();
        context.thread_limit = threads;
        DataChunk out;
        out.Initialize(agg->types());
        auto start = Clock::now();
        idx_t rows = 0;
        while (true) {
          if (!agg->GetChunk(&context, &out).ok()) return 1;
          if (out.size() == 0) break;
          rows += out.size();
        }
        double ms = Ms(start);
        (void)db->get()->transactions().Commit(txn.get());
        if (ms < best) {
          best = ms;
          best_sink = agg->SinkMs();
          best_merge = agg->MergeMs();
          out_rows = rows;
        }
      }
      if (threads == 1) {
        rows_serial = out_rows;
      } else if (out_rows != rows_serial) {
        std::printf("RESULT MISMATCH at threads=%d!\n", threads);
        return 1;
      }
      std::printf("threads=%d %36.1f ms  %12.0f rows/s  (sink %.1f ms, "
                  "merge %.1f ms)\n",
                  threads, best, agg_rows / (best / 1e3), best_sink,
                  best_merge);
      reporter.Add("groupby_micro/bigint_100k_groups/threads=" +
                       std::to_string(threads),
                   3, best * 1e6, agg_rows / (best / 1e3),
                   {{"sink_ms", best_sink}, {"merge_ms", best_merge}});
    }
  }
  std::printf("\nShape check vs paper: the vectorized interpreter "
              "amortizes interpretation overhead over %llu-row vectors "
              "and wins by roughly an order of magnitude.\n",
              static_cast<unsigned long long>(kVectorSize));
  return 0;
}
