// E10 — Paper section 2: "concurrent data modification is common in
// dashboard-scenarios where multiple threads update the data using ETL
// queries while other threads run the OLAP queries that drive
// visualizations." Measures OLAP read throughput while 0..4 writer
// threads run concurrent bulk updates/appends under MVCC.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

int main() {
  const idx_t kRows = 200000;
  std::printf("=== Concurrent OLAP + ETL dashboard (paper section 2) "
              "===\n%llu-row table; readers run aggregation queries while "
              "writers run bulk UPDATEs and appends\n\n",
              static_cast<unsigned long long>(kRows));
  std::printf("%-10s %-10s %-18s %-18s %-14s\n", "writers", "readers",
              "reads/sec", "writes/sec", "conflicts");

  for (int n_writers : {0, 1, 2, 4}) {
    auto db = Database::Open(":memory:");
    if (!db.ok()) return 1;
    {
      Connection con(db->get());
      (void)con.Query("CREATE TABLE metrics (sensor INTEGER, v DOUBLE)");
      auto app = Appender::Create(db->get(), "metrics");
      DataChunk chunk;
      chunk.Initialize({TypeId::kInteger, TypeId::kDouble});
      idx_t produced = 0;
      while (produced < kRows) {
        chunk.Reset();
        idx_t n = std::min<idx_t>(kVectorSize, kRows - produced);
        for (idx_t i = 0; i < n; i++) {
          chunk.column(0).data<int32_t>()[i] =
              static_cast<int32_t>((produced + i) % 100);
          chunk.column(1).data<double>()[i] = (produced + i) * 0.1;
        }
        chunk.SetCardinality(n);
        (void)(*app)->AppendChunk(chunk);
        produced += n;
      }
      (void)(*app)->Close();
    }
    const int kReaders = 3;
    const double kSeconds = 2.0;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0}, writes{0}, conflicts{0}, errors{0};
    std::vector<std::thread> threads;
    for (int r = 0; r < kReaders; r++) {
      threads.emplace_back([&] {
        Connection con(db->get());
        while (!stop.load()) {
          auto result = con.Query(
              "SELECT sensor, count(*), avg(v) FROM metrics "
              "WHERE sensor < 50 GROUP BY sensor");
          if (result.ok()) {
            reads++;
          } else {
            errors++;
          }
        }
      });
    }
    for (int w = 0; w < n_writers; w++) {
      threads.emplace_back([&, w] {
        Connection con(db->get());
        int op = 0;
        while (!stop.load()) {
          // Each writer owns one sensor band: bulk update or append.
          int lo = w * 25, hi = lo + 24;
          std::string sql =
              (op++ % 4 != 0)
                  ? "UPDATE metrics SET v = v + 1 WHERE sensor >= " +
                        std::to_string(lo) + " AND sensor <= " +
                        std::to_string(hi)
                  : "INSERT INTO metrics VALUES (" + std::to_string(lo) +
                        ", 0.0)";
          auto result = con.Query(sql);
          if (result.ok()) {
            writes++;
          } else if (result.status().IsTransactionConflict()) {
            conflicts++;
          } else {
            errors++;
          }
        }
      });
    }
    auto start = Clock::now();
    while (std::chrono::duration<double>(Clock::now() - start).count() <
           kSeconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true);
    for (auto& t : threads) t.join();
    std::printf("%-10d %-10d %-18.1f %-18.1f %-14llu%s\n", n_writers,
                kReaders, reads.load() / kSeconds,
                writes.load() / kSeconds,
                static_cast<unsigned long long>(conflicts.load()),
                errors.load() ? "  (errors!)" : "");
  }
  std::printf("\nShape check vs paper: readers keep making progress while "
              "bulk ETL writers commit concurrently — snapshot reads never "
              "block on the update transactions (lock-free MVCC reads, "
              "section 6).\n");
  return 0;
}
