// E9 — Paper section 3: memory-test integration. Measures the throughput
// (memory-bus traffic) of the test algorithms — the cost that makes
// constant whole-RAM testing infeasible and motivates buffer-granular
// testing — plus detection rates against simulated DRAM faults and the
// buffer manager's allocation-time test + quarantine behaviour.

#include <chrono>
#include <cstdio>
#include <vector>

#include "mallard/common/random.h"
#include "mallard/resilience/memtest.h"
#include "mallard/storage/buffer_manager.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

int main() {
  std::printf("=== Memory testing (paper section 3) ===\n\n");
  // Throughput of each algorithm over a 64MB region.
  {
    std::vector<uint8_t> ram(64 << 20);
    DirectMemory mem(ram.data(), ram.size());
    struct Algo {
      const char* name;
      MemtestResult (*run)(MemoryDevice&);
    };
    auto run_walking = [](MemoryDevice& m) { return WalkingBitsTest(m); };
    auto run_moving = [](MemoryDevice& m) {
      return MovingInversionsTest(m, 0x5555555555555555ULL, 1);
    };
    auto run_address = [](MemoryDevice& m) { return AddressTest(m); };
    Algo algos[] = {{"walking bits (alloc-time screen)", run_walking},
                    {"moving inversions (periodic)", run_moving},
                    {"address-in-address", run_address}};
    std::printf("%-36s %-14s %-16s\n", "algorithm", "time (ms)",
                "traffic (GB/s)");
    for (const auto& algo : algos) {
      auto start = Clock::now();
      MemtestResult r = algo.run(mem);
      double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            start)
                      .count();
      std::printf("%-36s %-14.1f %-16.2f%s\n", algo.name, ms,
                  r.traffic_bytes / ms / 1e6,
                  r.passed ? "" : "  (healthy RAM flagged!)");
    }
  }

  // Detection rates against simulated faults.
  std::printf("\nDetection of simulated DRAM faults (1000 trials each, one "
              "fault per 1MB region):\n");
  std::printf("%-22s %-18s %-22s\n", "fault type", "walking bits",
              "moving inversions");
  RandomEngine rng(11);
  for (auto kind : {MemoryFault::Kind::kStuckAtZero,
                    MemoryFault::Kind::kStuckAtOne,
                    MemoryFault::Kind::kCoupling}) {
    int walking_hits = 0, moving_hits = 0;
    const int kTrials = 1000;
    for (int t = 0; t < kTrials; t++) {
      SimulatedDimm dimm(1 << 20);
      MemoryFault fault;
      fault.kind = kind;
      fault.word_index = rng.Next() % dimm.SizeWords();
      fault.bit = static_cast<uint8_t>(rng.Next() % 64);
      if (kind == MemoryFault::Kind::kCoupling) {
        fault.neighbor_index =
            fault.word_index > 0 ? fault.word_index - 1 : 1;
        fault.neighbor_bit = static_cast<uint8_t>(rng.Next() % 64);
      }
      dimm.AddFault(fault);
      if (!WalkingBitsTest(dimm).passed) walking_hits++;
      if (!MovingInversionsTest(dimm, 0xAAAAAAAAAAAAAAAAULL, 2).passed) {
        moving_hits++;
      }
    }
    const char* name = kind == MemoryFault::Kind::kStuckAtZero
                           ? "stuck-at-0"
                           : (kind == MemoryFault::Kind::kStuckAtOne
                                  ? "stuck-at-1"
                                  : "coupling (neighbor)");
    std::printf("%-22s %-18s %-22s\n", name,
                (std::to_string(walking_hits / 10) + "." +
                 std::to_string(walking_hits % 10) + "%")
                    .c_str(),
                (std::to_string(moving_hits / 10) + "." +
                 std::to_string(moving_hits % 10) + "%")
                    .c_str());
  }

  // Buffer-manager integration: allocation-time screen + quarantine.
  std::printf("\nBuffer manager allocation-time testing (paper's proposed "
              "integration):\n");
  {
    BufferManager bm(256 << 20, "");
    bm.EnableAllocationTesting(true);
    auto start = Clock::now();
    for (int i = 0; i < 64; i++) {
      auto h = bm.Allocate(1 << 20);
      if (!h.ok()) break;
    }
    double with_ms = std::chrono::duration<double, std::milli>(
                         Clock::now() - start)
                         .count();
    BufferManager bm2(256 << 20, "");
    start = Clock::now();
    for (int i = 0; i < 64; i++) {
      auto h = bm2.Allocate(1 << 20);
      if (!h.ok()) break;
    }
    double without_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count();
    std::printf("  64 x 1MB allocations: %.1f ms tested vs %.2f ms "
                "untested (%.1fx)\n", with_ms, without_ms,
                with_ms / without_ms);
  }
  {
    BufferManager bm(256 << 20, "");
    bm.EnableAllocationTesting(true);
    bm.SetSimulatedBadRegionProbability(0.25, 3);
    int ok_allocations = 0;
    for (int i = 0; i < 200; i++) {
      auto h = bm.Allocate(256 << 10);
      if (h.ok()) ok_allocations++;
    }
    auto stats = bm.GetStats();
    std::printf("  with 25%% simulated bad regions: %d/200 allocations "
                "served, %llu bad regions quarantined (%.1f MB)\n",
                ok_allocations,
                static_cast<unsigned long long>(
                    stats.quarantined_allocations),
                stats.quarantined_bytes / 1e6);
  }
  std::printf("\nShape check vs paper: whole-RAM moving inversions "
              "saturates the memory bus (infeasible to run constantly); "
              "the allocation-time screen costs a bounded factor on "
              "allocation only, catches stuck cells, and quarantines "
              "broken regions so they are never reused.\n");
  return 0;
}
