// Shared bench reporting: every bench binary accepts `--json out.json`
// (or `--json=out.json`) and writes its measurements as machine-readable
// JSON — (name, iters, ns/op, rows/s, plus optional per-point numeric
// breakdown fields such as phase timings) — so the perf trajectory can
// be tracked across PRs (BENCH_join.json, BENCH_agg.json at the repo
// root are produced this way; field contract in docs/BENCHMARKS.md).

#ifndef MALLARD_BENCH_BENCH_UTIL_H_
#define MALLARD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace mallard_bench {

struct BenchResult {
  std::string name;
  long long iters;
  double ns_per_op;
  double rows_per_sec;
  /// Optional numeric breakdown fields appended verbatim to the record,
  /// e.g. {{"build_ms", 41.2}, {"probe_ms", 103.9}}.
  std::vector<std::pair<std::string, double>> extra;
};

/// Collects bench data points and writes them as JSON on destruction
/// when the command line asked for it. Usage:
///   BenchReporter reporter("bench_join", argc, argv);
///   reporter.Add("hash_join/build=10000", 1, ms * 1e6, rows / sec);
///   reporter.Add("...", 1, ns, rps, {{"probe_ms", probe_ms}});
class BenchReporter {
 public:
  BenchReporter(std::string bench_name, int argc, char** argv)
      : bench_name_(std::move(bench_name)) {
    for (int i = 1; i < argc; i++) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        json_path_ = argv[i + 1];
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        json_path_ = argv[i] + 7;
      }
    }
  }

  ~BenchReporter() { Write(); }

  void Add(const std::string& name, long long iters, double ns_per_op,
           double rows_per_sec,
           std::vector<std::pair<std::string, double>> extra = {}) {
    results_.push_back(BenchResult{name, iters, ns_per_op, rows_per_sec,
                                   std::move(extra)});
  }

  /// Writes the JSON file now (also done by the destructor; idempotent).
  void Write() {
    if (json_path_.empty() || written_) return;
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", json_path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 bench_name_.c_str());
    for (size_t i = 0; i < results_.size(); i++) {
      const BenchResult& r = results_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"iters\": %lld, "
                   "\"ns_per_op\": %.1f, \"rows_per_sec\": %.0f",
                   r.name.c_str(), r.iters, r.ns_per_op, r.rows_per_sec);
      for (const auto& field : r.extra) {
        std::fprintf(f, ", \"%s\": %.1f", field.first.c_str(),
                     field.second);
      }
      std::fprintf(f, "}%s\n", i + 1 < results_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    written_ = true;
  }

 private:
  std::string bench_name_;
  std::string json_path_;
  std::vector<BenchResult> results_;
  bool written_ = false;
};

}  // namespace mallard_bench

#endif  // MALLARD_BENCH_BENCH_UTIL_H_
