// Compressed execution bench: Q6-shaped filter scans and 100k-group
// aggregates over plain vs dictionary vs FOR/bit-packed column
// segments. The same binary builds identical tables under each forced
// encoding (MALLARD_FORCE_ENCODING) plus the auto heuristic, so the
// "before" baseline (forced plain) and the encoded runs share machine,
// build and protocol. Best-of-three per point; --json for the
// machine-readable record (field contract in docs/BENCHMARKS.md).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {

double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Best-of-three wall time for a query, in ms.
double BestMs(Connection* con, const std::string& sql) {
  double best = 1e18;
  for (int i = 0; i < 3; i++) {
    auto start = Clock::now();
    auto r = con->Query(sql);
    double ms = Ms(start);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n%s\n", sql.c_str(),
                   r.status().ToString().c_str());
      return -1.0;
    }
    if (ms < best) best = ms;
  }
  return best;
}

// Filter-scan table: id BIGINT dense, grp INTEGER cycling over
// `cardinality` values, name VARCHAR = "name_<grp>" (dictionary- and
// FOR-friendly; every full row group encodes).
bool BuildFilterTable(Database* db, Connection* con, idx_t rows,
                      idx_t cardinality) {
  if (!con->Query("CREATE TABLE t (id BIGINT, grp INTEGER, name VARCHAR)")
           .ok()) {
    return false;
  }
  auto appender = Appender::Create(db, "t");
  if (!appender.ok()) return false;
  for (idx_t i = 0; i < rows; i++) {
    idx_t g = i % cardinality;
    (*appender)->Append(static_cast<int64_t>(i));
    (*appender)->Append(static_cast<int32_t>(g));
    (*appender)->Append("name_" + std::to_string(g));
    if (!(*appender)->EndRow().ok()) return false;
  }
  return (*appender)->Close().ok();
}

// Group-by table: 100k-distinct varchar and bigint key columns over the
// same value domain, so the varchar-vs-bigint aggregation gap is an
// apples-to-apples hashing comparison.
bool BuildGroupTable(Database* db, Connection* con, idx_t rows,
                     idx_t groups) {
  if (!con->Query("CREATE TABLE g (ks VARCHAR, kb BIGINT, v BIGINT)").ok()) {
    return false;
  }
  auto appender = Appender::Create(db, "g");
  if (!appender.ok()) return false;
  for (idx_t i = 0; i < rows; i++) {
    idx_t k = (i * 2654435761u) % groups;
    (*appender)->Append("key_" + std::to_string(k));
    (*appender)->Append(static_cast<int64_t>(k));
    (*appender)->Append(static_cast<int64_t>(i));
    if (!(*appender)->EndRow().ok()) return false;
  }
  return (*appender)->Close().ok();
}

struct EncodingRun {
  double int_filter_ms = -1;    // Q6 shape: int range predicate
  double varchar_eq_ms = -1;    // varchar point predicate
  double varchar_gb_ms = -1;    // 100k-group varchar aggregate
  double bigint_gb_ms = -1;     // 100k-group bigint aggregate
  double logical_mb = 0;        // storage_stats footprints
  double encoded_mb = 0;
};

double StorageStatMb(Connection* con, const std::string& column) {
  auto r = con->Query("PRAGMA storage_stats");
  if (!r.ok()) return 0;
  for (idx_t c = 0; c < (*r)->ColumnCount(); c++) {
    if ((*r)->names()[c] == column) {
      return static_cast<double>((*r)->GetValue(c, 0).GetBigInt()) /
             (1024.0 * 1024.0);
    }
  }
  return 0;
}

// Builds both tables under `force` ("plain"/"dict"/"for"/nullptr=auto)
// in a fresh database and measures every point there.
EncodingRun RunEncoding(const char* force, idx_t rows, idx_t groups) {
  EncodingRun out;
  if (force) {
    ::setenv("MALLARD_FORCE_ENCODING", force, 1);
  } else {
    ::unsetenv("MALLARD_FORCE_ENCODING");
  }
  auto db = Database::Open(":memory:");
  if (!db.ok()) return out;
  Connection con(db->get());
  if (!BuildFilterTable(db->get(), &con, rows, 1000)) return out;
  if (!BuildGroupTable(db->get(), &con, rows, groups)) return out;
  ::unsetenv("MALLARD_FORCE_ENCODING");
  out.logical_mb = StorageStatMb(&con, "logical_bytes");
  out.encoded_mb = StorageStatMb(&con, "encoded_bytes");
  // Serial: the compression win must not hide behind parallelism.
  auto threads = con.Query("PRAGMA threads=1");
  if (!threads.ok()) return out;
  out.int_filter_ms = BestMs(
      &con, "SELECT count(*), sum(id) FROM t WHERE grp >= 100 AND grp < 140");
  out.varchar_eq_ms =
      BestMs(&con, "SELECT count(*), sum(id) FROM t WHERE name = 'name_500'");
  out.varchar_gb_ms = BestMs(
      &con, "SELECT ks, count(*), sum(v) FROM g GROUP BY ks");
  out.bigint_gb_ms = BestMs(
      &con, "SELECT kb, count(*), sum(v) FROM g GROUP BY kb");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mallard_bench::BenchReporter reporter("bench_scan", argc, argv);
  const char* rows_env = std::getenv("MALLARD_BENCH_ROWS");
  idx_t rows = rows_env ? std::strtoull(rows_env, nullptr, 10) : 2000000;
  idx_t groups = 100000;

  struct Config {
    const char* label;
    const char* force;  // nullptr = auto heuristic
  };
  const Config configs[] = {
      {"plain", "plain"}, {"dict", "dict"}, {"for", "for"}, {"auto", nullptr}};

  std::printf("=== Compressed execution: filter scans + 100k-group "
              "aggregates, %llu rows, serial ===\n\n",
              static_cast<unsigned long long>(rows));
  std::printf("%-8s %-14s %-14s %-16s %-16s %-10s\n", "enc",
              "int_filter", "varchar_eq", "varchar_groupby",
              "bigint_groupby", "enc/logical");

  double plain_int = -1, plain_veq = -1, plain_vgb = -1, plain_bgb = -1;
  for (const Config& config : configs) {
    EncodingRun run = RunEncoding(config.force, rows, groups);
    if (run.int_filter_ms < 0 || run.varchar_gb_ms < 0) {
      std::fprintf(stderr, "bench run failed for enc=%s\n", config.label);
      return 1;
    }
    double ratio =
        run.logical_mb > 0 ? run.encoded_mb / run.logical_mb : 1.0;
    std::printf("%-8s %10.1fms %10.1fms %12.1fms %12.1fms %9.2f\n",
                config.label, run.int_filter_ms, run.varchar_eq_ms,
                run.varchar_gb_ms, run.bigint_gb_ms, ratio);
    if (std::string(config.label) == "plain") {
      plain_int = run.int_filter_ms;
      plain_veq = run.varchar_eq_ms;
      plain_vgb = run.varchar_gb_ms;
      plain_bgb = run.bigint_gb_ms;
    }
    std::string prefix = std::string("enc=") + config.label;
    auto add = [&](const char* point, double ms) {
      reporter.Add(prefix + "/" + point, 3, ms * 1e6,
                   ms > 0 ? rows / (ms / 1000.0) : 0,
                   {{"logical_mb", run.logical_mb},
                    {"encoded_mb", run.encoded_mb}});
    };
    add("filter_scan/int_range", run.int_filter_ms);
    add("filter_scan/varchar_eq", run.varchar_eq_ms);
    add("groupby/varchar_100k_groups", run.varchar_gb_ms);
    add("groupby/bigint_100k_groups", run.bigint_gb_ms);
  }

  if (plain_int > 0) {
    std::printf("\nspeedup vs forced-plain is the headline number; the "
                "varchar/bigint group-by gap is the late-materialization "
                "check (target: varchar within 2x of bigint).\n");
  }
  (void)plain_veq;
  (void)plain_vgb;
  (void)plain_bgb;
  return 0;
}
