// Multi-client serving: N concurrent connections drive a mixed workload
// (analytic scans pinning the worker pool + point lookups) against one
// shared Database. Measures what the shared scheduler + admission
// control chapter of CONCURRENCY.md promises: point-query latency under
// a saturating scan stays within a small factor of uncontended latency
// (fair thread shares + round-robin job pickup), total throughput
// scales with clients, and the shared plan cache absorbs the
// parse-bind-plan pipeline across connections.
//
// Reported per mix: q/s plus p50/p99 point latency; the headline
// `p99_ratio` compares contended to uncontended p99 (acceptance: <10x).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  size_t idx = static_cast<size_t>(p * (latencies->size() - 1));
  return (*latencies)[idx];
}

struct MixResult {
  double seconds = 0;
  long long point_queries = 0;
  long long scan_queries = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  bool ok = true;
};

// Runs `scanners` connections looping a saturating aggregation and
// `pointers` connections looping point lookups for `queries_per_client`
// iterations each; collects point latencies.
MixResult RunMix(Database* db, int scanners, int pointers,
                 int queries_per_client) {
  MixResult result;
  std::atomic<bool> stop{false};
  std::atomic<long long> scans{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> scan_threads;
  for (int s = 0; s < scanners; s++) {
    scan_threads.emplace_back([&] {
      Connection con(db);
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = con.Query(
            "SELECT grp, count(*), sum(v), min(v), max(v) FROM facts "
            "WHERE v >= 0 GROUP BY grp");
        if (!r.ok()) {
          // Admission shedding is a legal outcome under overload; any
          // other failure sinks the bench.
          if (!r.status().IsResourceExhausted()) {
            failed.store(true);
            return;
          }
          continue;
        }
        scans.fetch_add(1);
      }
    });
  }

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(pointers > 0 ? pointers : 0));
  std::vector<std::thread> point_threads;
  auto start = Clock::now();
  for (int c = 0; c < pointers; c++) {
    point_threads.emplace_back([&, c] {
      Connection con(db);
      latencies[c].reserve(queries_per_client);
      for (int i = 0; i < queries_per_client; i++) {
        int id = static_cast<int>((c * queries_per_client + i) *
                                  2654435761u % 10000);
        auto q_start = Clock::now();
        auto r = con.Query("SELECT v FROM hot WHERE id = " +
                           std::to_string(id));
        if (!r.ok()) {
          if (r.status().IsResourceExhausted()) continue;
          failed.store(true);
          return;
        }
        latencies[c].push_back(MillisSince(q_start));
      }
    });
  }
  for (auto& t : point_threads) t.join();
  result.seconds = MillisSince(start) / 1000.0;
  stop.store(true);
  for (auto& t : scan_threads) t.join();

  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
    result.point_queries += static_cast<long long>(per_client.size());
  }
  result.scan_queries = scans.load();
  result.p50_ms = Percentile(&all, 0.50);
  result.p99_ms = Percentile(&all, 0.99);
  result.ok = !failed.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  mallard_bench::BenchReporter reporter("bench_serving", argc, argv);
  const char* rows_env = std::getenv("MALLARD_SERVING_ROWS");
  const char* queries_env = std::getenv("MALLARD_SERVING_QUERIES");
  const int kFactRows = rows_env ? std::atoi(rows_env) : 2000000;
  const int kQueriesPerClient = queries_env ? std::atoi(queries_env) : 1500;
  const int kHotRows = 10000;

  auto db = Database::Open(":memory:");
  if (!db.ok()) return 1;
  Connection con(db->get());
  if (!con.Query("CREATE TABLE facts (grp INTEGER, v BIGINT)").ok()) return 1;
  if (!con.Query("CREATE TABLE hot (id BIGINT, v BIGINT)").ok()) return 1;
  {
    auto app = Appender::Create(db->get(), "facts");
    if (!app.ok()) return 1;
    for (int i = 0; i < kFactRows; i++) {
      (*app)->Append(static_cast<int32_t>(i % 64));
      (*app)->Append(static_cast<int64_t>((i * 7919LL) % kFactRows));
      if (!(*app)->EndRow().ok()) return 1;
    }
    if (!(*app)->Close().ok()) return 1;
  }
  {
    auto app = Appender::Create(db->get(), "hot");
    if (!app.ok()) return 1;
    for (int i = 0; i < kHotRows; i++) {
      (*app)->Append(static_cast<int64_t>(i));
      (*app)->Append(static_cast<int64_t>(i * 3));
      if (!(*app)->EndRow().ok()) return 1;
    }
    if (!(*app)->Close().ok()) return 1;
  }

  std::printf("=== multi-client serving: %d fact rows, %d point queries "
              "per client ===\n\n",
              kFactRows, kQueriesPerClient);
  std::printf("%-26s %8s %8s %10s %10s %10s\n", "mix", "points", "scans",
              "q/s", "p50 ms", "p99 ms");

  // Baseline: one client, nothing else running.
  MixResult base = RunMix(db->get(), 0, 1, kQueriesPerClient);
  if (!base.ok) return 1;
  double base_qps = base.point_queries / base.seconds;
  std::printf("%-26s %8lld %8lld %10.0f %10.3f %10.3f\n",
              "uncontended point", base.point_queries, base.scan_queries,
              base_qps, base.p50_ms, base.p99_ms);
  reporter.Add("serving/uncontended_point", base.point_queries,
               base.seconds / base.point_queries * 1e9, base_qps,
               {{"p50_ms", base.p50_ms}, {"p99_ms", base.p99_ms}});

  // Mixes: scans saturate the pool while point clients keep arriving.
  struct Mix {
    const char* name;
    int scanners;
    int pointers;
  };
  const Mix mixes[] = {
      {"1 scan + 1 point", 1, 1},
      {"1 scan + 4 point", 1, 4},
      {"2 scan + 6 point", 2, 6},
      {"4 scan + 12 point", 4, 12},
  };
  double contended_p99 = 0;
  for (const Mix& mix : mixes) {
    MixResult r = RunMix(db->get(), mix.scanners, mix.pointers,
                         kQueriesPerClient);
    if (!r.ok) {
      std::fprintf(stderr, "mix '%s' failed\n", mix.name);
      return 1;
    }
    double qps = (r.point_queries + r.scan_queries) / r.seconds;
    std::printf("%-26s %8lld %8lld %10.0f %10.3f %10.3f\n", mix.name,
                r.point_queries, r.scan_queries, qps, r.p50_ms, r.p99_ms);
    std::string point_name = "serving/" + std::to_string(mix.scanners) +
                             "scan_" + std::to_string(mix.pointers) +
                             "point";
    reporter.Add(point_name, r.point_queries + r.scan_queries,
                 r.seconds / (r.point_queries + r.scan_queries) * 1e9, qps,
                 {{"p50_ms", r.p50_ms},
                  {"p99_ms", r.p99_ms},
                  {"scans", static_cast<double>(r.scan_queries)}});
    if (mix.scanners == 1 && mix.pointers == 1) contended_p99 = r.p99_ms;
  }

  // Headline fairness number: point p99 with one saturating scan vs
  // uncontended. Fair shares keep this bounded on a multicore host;
  // with a single hardware thread the tail is OS timeslicing, which is
  // why this is reported rather than asserted (the fairness acceptance
  // test lives in tests/test_serving.cc with a wall-clock bound).
  double ratio = base.p99_ms > 0 ? contended_p99 / base.p99_ms : 0;
  std::printf("\npoint p99 contended/uncontended: %.1fx (target <10x, "
              "%u hardware threads)\n",
              ratio, std::thread::hardware_concurrency());
  reporter.Add("serving/p99_ratio", 1, 0.0, 0.0, {{"ratio", ratio}});

  // Shared-plan-cache effect across serving connections: every point
  // client above hit the same normalized plan. Report the cache stats.
  auto stats = con.Query("PRAGMA plan_cache_stats");
  if (stats.ok()) {
    std::printf("plan cache: hits=%lld misses=%lld busy_skips=%lld\n",
                static_cast<long long>((*stats)->GetValue(0, 0).GetBigInt()),
                static_cast<long long>((*stats)->GetValue(1, 0).GetBigInt()),
                static_cast<long long>((*stats)->GetValue(4, 0).GetBigInt()));
    reporter.Add(
        "serving/plan_cache", 1, 0.0, 0.0,
        {{"hits",
          static_cast<double>((*stats)->GetValue(0, 0).GetBigInt())},
         {"misses",
          static_cast<double>((*stats)->GetValue(1, 0).GetBigInt())}});
  }
  return 0;
}
