// E1 — Reproduces Table 1 of the paper: 30-day OS crash probabilities on
// consumer hardware (Nightingale et al., EuroSys'11), via the Monte Carlo
// hardware failure model. Prints paper-vs-simulated "1 in N" rates and
// the implied silent-corruption exposure that motivates the resilience
// features (paper section 3).

#include <cstdio>
#include <string>

#include "mallard/resilience/failure_model.h"

int main() {
  using namespace mallard;
  FailureModelConfig config;
  const uint64_t kFleet = 4000000;
  FailureModelResult r = SimulateFleet(config, kFleet, 0x71AB1E);

  std::printf("=== Table 1: 30-day failure probability "
              "(fleet of %llu simulated consumer PCs) ===\n",
              static_cast<unsigned long long>(kFleet));
  std::printf("%-16s %-22s %-22s %-24s %-24s\n", "Failure",
              "Pr[1st] (paper)", "Pr[1st] (measured)",
              "Pr[2nd|1 fail] (paper)", "Pr[2nd|1 fail] (measured)");
  auto row = [](const char* name, double paper1, double paper2,
                const ComponentStats& s) {
    std::printf("%-16s %-22s %-22s %-24s %-24s\n", name,
                ("1 in " + std::to_string(paper1)).c_str(),
                ("1 in " + std::to_string(s.OneIn(s.PrFirst()))).c_str(),
                ("1 in " + std::to_string(paper2)).c_str(),
                ("1 in " +
                 std::to_string(s.OneIn(s.PrSecondGivenFirst()))).c_str());
  };
  row("CPU (MCE)", 190.0, 2.9, r.cpu);
  row("DRAM bit flip", 1700.0, 12.0, r.dram);
  row("Disk failure", 270.0, 3.5, r.disk);

  std::printf("\nImplications for an embedded analytical DBMS:\n");
  std::printf("  machines per million with a DRAM bit flip in 30 days: "
              "%.0f\n", r.dram_corruptions_per_million);
  std::printf("  recidivism: a machine that failed once is ~%.0fx (CPU), "
              "~%.0fx (DRAM), ~%.0fx (disk) more likely to fail again\n",
              r.cpu.PrSecondGivenFirst() / r.cpu.PrFirst(),
              r.dram.PrSecondGivenFirst() / r.dram.PrFirst(),
              r.disk.PrSecondGivenFirst() / r.disk.PrFirst());
  std::printf("  -> block checksums + allocation-time memory tests "
              "(sections 3, 6) are enabled by default in mallard\n");
  return 0;
}
