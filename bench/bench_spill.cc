// E8 — Out-of-core execution (ROADMAP item 1): grace hash join and
// external aggregation under a shrinking memory budget. Runs the same
// join and group-by workload at a comfortable budget (fully in-memory),
// then at budgets far below the working set, and reports wall time plus
// the buffer manager's spill counters. The contract under test: a
// working set several times the memory_limit completes correctly and
// degrades smoothly instead of failing — the paper's "never assume you
// own the machine" stance applied to memory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "mallard/common/random.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {

double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Build side: wide rows (64-byte pad) so the hash table dwarfs a tight
// budget. Probe side: two matches per build key.
void FillJoinTables(Database* db, idx_t build_rows) {
  Connection con(db);
  (void)con.Query("CREATE TABLE build (k BIGINT, pad VARCHAR)");
  (void)con.Query("CREATE TABLE probe (k BIGINT, v BIGINT)");
  const std::string pad(64, 'x');
  {
    auto app = Appender::Create(db, "build");
    DataChunk chunk;
    chunk.Initialize({TypeId::kBigInt, TypeId::kVarchar});
    idx_t produced = 0;
    while (produced < build_rows) {
      chunk.Reset();
      idx_t n = std::min<idx_t>(kVectorSize, build_rows - produced);
      for (idx_t i = 0; i < n; i++) {
        chunk.column(0).data<int64_t>()[i] =
            static_cast<int64_t>(produced + i);
        chunk.column(1).SetString(i, pad);
      }
      chunk.SetCardinality(n);
      (void)(*app)->AppendChunk(chunk);
      produced += n;
    }
    (void)(*app)->Close();
  }
  {
    auto app = Appender::Create(db, "probe");
    DataChunk chunk;
    chunk.Initialize({TypeId::kBigInt, TypeId::kBigInt});
    idx_t probe_rows = build_rows * 2;
    idx_t produced = 0;
    while (produced < probe_rows) {
      chunk.Reset();
      idx_t n = std::min<idx_t>(kVectorSize, probe_rows - produced);
      for (idx_t i = 0; i < n; i++) {
        chunk.column(0).data<int64_t>()[i] =
            static_cast<int64_t>((produced + i) % build_rows);
        chunk.column(1).data<int64_t>()[i] =
            static_cast<int64_t>(produced + i);
      }
      chunk.SetCardinality(n);
      (void)(*app)->AppendChunk(chunk);
      produced += n;
    }
    (void)(*app)->Close();
  }
}

// High-cardinality group-by: most rows open a new group, so the
// aggregate state itself is the working set.
void FillAggTable(Database* db, idx_t rows, idx_t groups) {
  Connection con(db);
  (void)con.Query("CREATE TABLE t (g BIGINT, v BIGINT)");
  auto app = Appender::Create(db, "t");
  RandomEngine rng(42);
  DataChunk chunk;
  chunk.Initialize({TypeId::kBigInt, TypeId::kBigInt});
  idx_t produced = 0;
  while (produced < rows) {
    chunk.Reset();
    idx_t n = std::min<idx_t>(kVectorSize, rows - produced);
    for (idx_t i = 0; i < n; i++) {
      chunk.column(0).data<int64_t>()[i] =
          static_cast<int64_t>(rng.Next() % groups);
      chunk.column(1).data<int64_t>()[i] = static_cast<int64_t>(i);
    }
    chunk.SetCardinality(n);
    (void)(*app)->AppendChunk(chunk);
    produced += n;
  }
  (void)(*app)->Close();
}

struct SpillRun {
  double ms = 0;
  double spilled_mb = 0;
  double spill_count = 0;
  int64_t result_rows = 0;
};

SpillRun TimeQuery(Connection* con, const std::string& sql) {
  SpillRun run;
  Clock::time_point start = Clock::now();
  auto result = con->Query(sql);
  run.ms = Ms(start);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().message().c_str());
    std::exit(1);
  }
  run.result_rows = static_cast<int64_t>((*result)->RowCount());
  auto stats = con->Query("PRAGMA buffer_stats");
  if (stats.ok()) {
    run.spill_count = static_cast<double>(
        (*stats)->GetValue(3, 0).GetBigInt());
    run.spilled_mb = static_cast<double>(
                         (*stats)->GetValue(4, 0).GetBigInt()) /
                     (1024.0 * 1024.0);
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  mallard_bench::BenchReporter reporter("bench_spill", argc, argv);
  const idx_t kBuildRows = 120'000;   // ~12 MB of build rows + directory
  const idx_t kAggRows = 400'000;
  const idx_t kAggGroups = 250'000;   // ~most rows open a group
  // First budget is comfortable (no spilling — the in-memory baseline);
  // the rest sit well below the working set, so every run past the first
  // must spill to complete.
  const uint64_t kBudgets[] = {1ull << 30, 16ull << 20, 4ull << 20};

  const std::string join_sql =
      "SELECT count(*), sum(probe.v) FROM probe JOIN build "
      "ON probe.k = build.k";
  const std::string agg_sql =
      "SELECT count(*) FROM (SELECT g, count(*) AS c, sum(v) AS s "
      "FROM t GROUP BY g)";

  for (uint64_t budget : kBudgets) {
    DBConfig config;
    config.memory_limit = budget;
    auto db = Database::Open(":memory:", config);
    if (!db.ok()) {
      std::fprintf(stderr, "open failed\n");
      return 1;
    }
    FillJoinTables(db->get(), kBuildRows);
    FillAggTable(db->get(), kAggRows, kAggGroups);
    Connection con(db->get());

    const double budget_mb =
        static_cast<double>(budget) / (1024.0 * 1024.0);
    SpillRun join = TimeQuery(&con, join_sql);
    std::printf(
        "grace_join   budget=%7.1f MB  %8.1f ms  spilled=%7.1f MB "
        "(spills=%.0f)\n",
        budget_mb, join.ms, join.spilled_mb, join.spill_count);
    reporter.Add("grace_join/budget_mb=" + std::to_string((long long)budget_mb),
                 1, join.ms * 1e6,
                 kBuildRows * 2 / (join.ms / 1000.0),
                 {{"budget_mb", budget_mb},
                  {"elapsed_ms", join.ms},
                  {"spilled_mb", join.spilled_mb},
                  {"spill_count", join.spill_count}});

    SpillRun agg = TimeQuery(&con, agg_sql);
    std::printf(
        "external_agg budget=%7.1f MB  %8.1f ms  spilled=%7.1f MB "
        "(spills=%.0f)\n",
        budget_mb, agg.ms, agg.spilled_mb - join.spilled_mb,
        agg.spill_count - join.spill_count);
    reporter.Add("external_agg/budget_mb=" + std::to_string((long long)budget_mb),
                 1, agg.ms * 1e6, kAggRows / (agg.ms / 1000.0),
                 {{"budget_mb", budget_mb},
                  {"elapsed_ms", agg.ms},
                  {"spilled_mb", agg.spilled_mb - join.spilled_mb},
                  {"spill_count", agg.spill_count - join.spill_count}});
  }
  return 0;
}
