// E8 — OLAP workload representative (paper sections 2, 6): the supported
// TPC-H subset end-to-end through SQL (parser -> binder -> optimizer ->
// vectorized execution) at a laptop scale factor.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/tpch/tpch.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

int main() {
  const char* sf_env = std::getenv("MALLARD_SF");
  double sf = sf_env ? std::strtod(sf_env, nullptr) : 0.05;
  auto db = Database::Open(":memory:");
  if (!db.ok()) return 1;
  auto gen_start = Clock::now();
  if (!tpch::Generate(db->get(), sf).ok()) return 1;
  double gen_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - gen_start)
          .count();
  Connection con(db->get());
  auto li = con.Query("SELECT count(*) FROM lineitem");
  std::printf("=== TPC-H subset at SF %.3f (%lld lineitem rows, generated "
              "in %.0f ms) ===\n\n",
              sf, static_cast<long long>((*li)->GetValue(0, 0).GetBigInt()),
              gen_ms);
  std::printf("%-6s %-12s %-12s %-10s\n", "query", "cold (ms)", "warm (ms)",
              "rows");
  for (int q : tpch::SupportedQueries()) {
    std::string sql = tpch::Query(q);
    auto start = Clock::now();
    auto cold = con.Query(sql);
    double cold_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (!cold.ok()) {
      std::printf("Q%-5d FAILED: %s\n", q, cold.status().ToString().c_str());
      continue;
    }
    start = Clock::now();
    auto warm = con.Query(sql);
    double warm_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    std::printf("Q%-5d %-12.1f %-12.1f %-10llu\n", q, cold_ms, warm_ms,
                static_cast<unsigned long long>((*cold)->RowCount()));
  }
  return 0;
}
