// E6 — Paper section 3: block checksums must protect persistent storage
// without compromising performance. Measures checkpoint (write) and full
// reload (read+verify) with checksums on vs off, raw CRC32C throughput,
// and demonstrates detection of an injected disk bit flip.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "mallard/common/checksum.h"
#include "mallard/common/random.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {
double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void Cleanup(const std::string& path) {
  RemoveFile(path);
  RemoveFile(path + ".wal");
  RemoveFile(path + ".tmp");
}

double RunCycle(bool checksums, uint64_t* db_bytes) {
  std::string path = "/tmp/mallard_bench_crc_" + std::to_string(::getpid());
  Cleanup(path);
  DBConfig config;
  config.enable_checksums = checksums;
  double reload_ms = 0;
  {
    auto db = Database::Open(path, config);
    Connection con(db->get());
    (void)con.Query("CREATE TABLE t (a BIGINT, b DOUBLE, s VARCHAR)");
    auto app = Appender::Create(db->get(), "t");
    RandomEngine rng(7);
    DataChunk chunk;
    chunk.Initialize({TypeId::kBigInt, TypeId::kDouble, TypeId::kVarchar});
    for (int c = 0; c < 512; c++) {
      chunk.Reset();
      for (idx_t i = 0; i < kVectorSize; i++) {
        chunk.column(0).data<int64_t>()[i] = rng.NextInt(0, 1 << 30);
        chunk.column(1).data<double>()[i] = rng.NextDouble();
        chunk.column(2).SetString(i, "val" + std::to_string(rng.Next() % 1000));
      }
      chunk.SetCardinality(kVectorSize);
      (void)(*app)->AppendChunk(chunk);
    }
    (void)(*app)->Close();
    (void)(*db)->Checkpoint();
  }
  {
    auto file = FileHandle::Open(path, FileHandle::kRead);
    *db_bytes = 0;
    if (file.ok()) {
      auto size = (*file)->Size();
      if (size.ok()) *db_bytes = *size;
    }
  }
  {
    auto start = Clock::now();
    auto db = Database::Open(path, config);
    Connection con(db->get());
    auto r = con.Query("SELECT count(*), sum(a) FROM t");
    reload_ms = Ms(start);
    if (!r.ok()) std::printf("reload failed: %s\n", r.status().ToString().c_str());
  }
  Cleanup(path);
  return reload_ms;
}
}  // namespace

int main() {
  std::printf("=== Block checksum overhead & detection (paper section 3) "
              "===\n\n");
  // Raw CRC32C throughput.
  {
    std::vector<uint8_t> block(kBlockSize);
    RandomEngine rng(3);
    for (auto& b : block) b = static_cast<uint8_t>(rng.Next());
    auto start = Clock::now();
    uint32_t acc = 0;
    const int kIters = 4000;
    for (int i = 0; i < kIters; i++) {
      acc ^= Crc32c(block.data(), block.size(), acc);
    }
    double ms = Ms(start);
    std::printf("raw CRC32C throughput: %.2f GB/s (256KB blocks)%s\n\n",
                kIters * double(kBlockSize) / ms / 1e6,
                acc == 0xdeadbeef ? "!" : "");
  }
  uint64_t bytes_on = 0, bytes_off = 0;
  double on_ms = RunCycle(true, &bytes_on);
  double off_ms = RunCycle(false, &bytes_off);
  std::printf("full checkpoint+reload cycle of a ~1M row table:\n");
  std::printf("  checksums ON : reload %.1f ms (database file %.1f MB)\n",
              on_ms, bytes_on / 1e6);
  std::printf("  checksums OFF: reload %.1f ms\n", off_ms);
  std::printf("  overhead: %.1f%%\n\n",
              (on_ms - off_ms) / off_ms * 100.0);

  // Detection demo.
  std::string path = "/tmp/mallard_bench_crc2_" + std::to_string(::getpid());
  Cleanup(path);
  {
    auto db = Database::Open(path);
    Connection con(db->get());
    (void)con.Query("CREATE TABLE t (a INTEGER)");
    (void)con.Query("INSERT INTO t VALUES (1), (2), (3)");
  }
  {
    bool created;
    auto bm = BlockManager::Open(path, true, &created);
    (void)(*bm)->CorruptBlockOnDisk((*bm)->header().meta_block, 1000001);
  }
  auto db = Database::Open(path);
  std::printf("single bit flipped on disk -> reopen: %s\n",
              db.ok() ? "NOT DETECTED (!)"
                      : db.status().ToString().c_str());
  Cleanup(path);
  std::printf("\nShape check vs paper: checksum verification costs a few "
              "percent of reload time and converts silent corruption into "
              "a detected, reported error.\n");
  return 0;
}
