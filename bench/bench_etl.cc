// E4 — Paper section 2 (combined OLAP & ETL): bulk updates, bulk deletes
// and bulk appends must be efficient. Benchmarks the paper's canonical
// missing-value recoding (UPDATE t SET d = NULL WHERE d = -999) across
// hit rates, against a row-at-a-time transaction loop baseline, plus
// bulk append throughput through the Appender.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "mallard/common/random.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {
double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void FillTable(Database* db, idx_t rows, double missing_rate,
               uint64_t seed) {
  Connection con(db);
  (void)con.Query("DROP TABLE IF EXISTS t");
  (void)con.Query("CREATE TABLE t (id INTEGER, d INTEGER)");
  auto app = Appender::Create(db, "t");
  RandomEngine rng(seed);
  DataChunk chunk;
  chunk.Initialize({TypeId::kInteger, TypeId::kInteger});
  idx_t produced = 0;
  while (produced < rows) {
    chunk.Reset();
    idx_t n = std::min<idx_t>(kVectorSize, rows - produced);
    for (idx_t i = 0; i < n; i++) {
      chunk.column(0).data<int32_t>()[i] =
          static_cast<int32_t>(produced + i);
      chunk.column(1).data<int32_t>()[i] =
          rng.NextBool(missing_rate)
              ? -999
              : static_cast<int32_t>(rng.NextInt(0, 10000));
    }
    chunk.SetCardinality(n);
    (void)(*app)->AppendChunk(chunk);
    produced += n;
  }
  (void)(*app)->Close();
}
}  // namespace

int main() {
  const char* rows_env = std::getenv("MALLARD_ETL_ROWS");
  const idx_t kRows =
      rows_env ? std::strtoull(rows_env, nullptr, 10) : 1000000;
  auto db = Database::Open(":memory:");
  if (!db.ok()) return 1;
  Connection con(db->get());

  std::printf("=== ETL bulk updates (paper section 2) — %llu rows ===\n\n",
              static_cast<unsigned long long>(kRows));
  std::printf("UPDATE t SET d = NULL WHERE d = -999 at varying missing-"
              "value rates:\n");
  std::printf("%-14s %-14s %-14s %-16s\n", "hit rate", "rows updated",
              "time (ms)", "updates/sec (M)");
  for (double rate : {0.01, 0.10, 0.50, 0.90}) {
    FillTable(db->get(), kRows, rate, 42);
    auto start = Clock::now();
    auto r = con.Query("UPDATE t SET d = NULL WHERE d = -999");
    double ms = Ms(start);
    if (!r.ok()) return 1;
    int64_t updated = (*r)->GetValue(0, 0).GetBigInt();
    std::printf("%-14.0f%% %-13lld %-14.1f %-16.2f\n", rate * 100,
                static_cast<long long>(updated), ms,
                updated / ms / 1000.0);
  }

  std::printf("\nRow-at-a-time baseline (one UPDATE statement per row, "
              "the anti-pattern bulk granularity avoids):\n");
  {
    FillTable(db->get(), 2000, 0.5, 43);
    auto ids = con.Query("SELECT id FROM t WHERE d = -999");
    auto start = Clock::now();
    idx_t updated = 0;
    for (idx_t i = 0; i < (*ids)->RowCount(); i++) {
      int32_t id = (*ids)->GetValue(0, i).GetInteger();
      auto r = con.Query("UPDATE t SET d = NULL WHERE id = " +
                         std::to_string(id));
      if (r.ok()) updated++;
    }
    double ms = Ms(start);
    std::printf("%-14s %-13llu %-14.1f %-16.4f\n", "(2000 rows)",
                static_cast<unsigned long long>(updated), ms,
                updated / ms / 1000.0);
  }

  std::printf("\nBulk delete:\n");
  {
    FillTable(db->get(), kRows, 0.5, 44);
    auto start = Clock::now();
    auto r = con.Query("DELETE FROM t WHERE d = -999");
    double ms = Ms(start);
    std::printf("deleted %lld rows in %.1f ms (%.2f M rows/sec)\n",
                static_cast<long long>((*r)->GetValue(0, 0).GetBigInt()),
                ms, (*r)->GetValue(0, 0).GetBigInt() / ms / 1000.0);
  }

  std::printf("\nBulk append (Appender chunk path):\n");
  {
    (void)con.Query("DROP TABLE IF EXISTS t");
    auto start = Clock::now();
    FillTable(db->get(), kRows, 0.0, 45);
    double ms = Ms(start);
    std::printf("appended %llu rows in %.1f ms (%.2f M rows/sec)\n",
                static_cast<unsigned long long>(kRows), ms,
                kRows / ms / 1000.0);
  }
  std::printf("\nShape check vs paper: bulk updates scale with the hit "
              "rate and run orders of magnitude faster per row than the "
              "row-at-a-time loop.\n");
  return 0;
}
