// E7 — Paper section 4: the hash join / merge join trade-off. The hash
// join is CPU-cheap but holds the whole build side in RAM; the
// out-of-core merge join needs O(n log n) CPU and disk IO but bounded
// memory. Sweeps build-side sizes under a fixed memory cap and reports
// time + DBMS peak memory for both algorithms, plus the governor's pick.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "mallard/common/random.h"
#include "mallard/execution/physical_join.h"
#include "mallard/execution/operators.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {
double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void Fill(Database* db, const std::string& table, idx_t rows,
          uint64_t seed) {
  Connection con(db);
  (void)con.Query("DROP TABLE IF EXISTS " + table);
  (void)con.Query("CREATE TABLE " + table + " (k BIGINT, payload BIGINT)");
  auto app = Appender::Create(db, table);
  RandomEngine rng(seed);
  DataChunk chunk;
  chunk.Initialize({TypeId::kBigInt, TypeId::kBigInt});
  idx_t produced = 0;
  while (produced < rows) {
    chunk.Reset();
    idx_t n = std::min<idx_t>(kVectorSize, rows - produced);
    for (idx_t i = 0; i < n; i++) {
      chunk.column(0).data<int64_t>()[i] = rng.NextInt(0, rows);
      chunk.column(1).data<int64_t>()[i] = rng.NextInt(0, 1 << 20);
    }
    chunk.SetCardinality(n);
    (void)(*app)->AppendChunk(chunk);
    produced += n;
  }
  (void)(*app)->Close();
}

struct JoinRun {
  double ms = 0;
  double peak_mb = 0;
  double build_ms = 0;  // hash join only: sink + Finalize
  double probe_ms = 0;  // hash join only: probe / result drain
};

// Runs probe JOIN build with a forced algorithm; returns wall time, peak
// memory and (for the hash join) the build/probe phase breakdown.
// `threads` > 0 attaches the scheduler with that thread budget (the
// morsel-driven parallel build *and* probe paths); 0 keeps the classic
// serial pull loop so the algorithm sweep below stays comparable across
// PRs.
JoinRun RunJoin(Database* db, JoinAlgorithm algo, idx_t* out_rows,
                int threads = 0) {
  auto probe_table = db->catalog().GetTable("probe");
  auto build_table = db->catalog().GetTable("build");
  auto make_scan = [](DataTable* t) {
    return std::make_unique<PhysicalTableScan>(
        t, std::vector<idx_t>{0, 1}, std::vector<TableFilter>{},
        t->ColumnTypes());
  };
  std::vector<JoinCondition> conditions;
  conditions.push_back(JoinCondition{
      std::make_unique<BoundColumnRef>(0, TypeId::kBigInt, "k"),
      std::make_unique<BoundColumnRef>(0, TypeId::kBigInt, "k")});
  std::unique_ptr<PhysicalOperator> join;
  if (algo == JoinAlgorithm::kHash) {
    join = std::make_unique<PhysicalHashJoin>(
        JoinType::kInner, std::move(conditions), make_scan(*probe_table),
        make_scan(*build_table));
  } else {
    join = std::make_unique<PhysicalMergeJoin>(
        JoinType::kInner, std::move(conditions), make_scan(*probe_table),
        make_scan(*build_table));
  }
  auto txn = db->transactions().Begin();
  ExecutionContext context;
  context.txn = txn.get();
  context.buffers = &db->buffers();
  context.governor = &db->governor();
  if (threads > 0) {
    context.scheduler = &db->scheduler();
    context.thread_limit = threads;
  }
  db->buffers().ResetPeak();
  DataChunk out;
  out.Initialize(join->types());
  auto start = Clock::now();
  idx_t rows = 0;
  while (true) {
    if (!join->GetChunk(&context, &out).ok()) break;
    if (out.size() == 0) break;
    rows += out.size();
  }
  double ms = Ms(start);
  (void)db->transactions().Commit(txn.get());
  *out_rows = rows;
  JoinRun run;
  run.ms = ms;
  run.peak_mb = db->buffers().GetStats().peak_memory / 1e6;
  if (algo == JoinAlgorithm::kHash) {
    auto* hash_join = static_cast<PhysicalHashJoin*>(join.get());
    run.build_ms = hash_join->BuildMs();
    run.probe_ms = hash_join->ProbeMs();
  }
  return run;
}
}  // namespace

int main(int argc, char** argv) {
  mallard_bench::BenchReporter reporter("bench_join_tradeoff", argc, argv);
  const char* scale_env = std::getenv("MALLARD_JOIN_SCALE");
  double scale = scale_env ? std::strtod(scale_env, nullptr) : 1.0;
  DBConfig config;
  // 32MB cap: the shared-machine budget. Since PR 6 the cap is enforced
  // (grace hash join spills once the build exceeds its budget share);
  // MALLARD_BENCH_MEMORY_MB overrides it, so the in-memory trajectory
  // points can still be measured at an unlimited budget.
  const char* cap_env = std::getenv("MALLARD_BENCH_MEMORY_MB");
  config.memory_limit = cap_env
                            ? std::strtoull(cap_env, nullptr, 10) << 20
                            : 32ull << 20;
  auto db = Database::Open(":memory:", config);
  if (!db.ok()) return 1;

  std::printf("=== Hash vs merge join RAM/CPU trade-off (paper section 4) "
              "===\nDBMS memory cap: 32 MB; probe side fixed at 200k rows"
              "\n\n");
  std::printf("%-14s %-14s %-12s %-14s %-12s %-14s %-10s\n", "build rows",
              "hash (ms)", "hash MB", "merge (ms)", "merge MB",
              "spilled MB", "governor");
  Fill(db->get(), "probe", static_cast<idx_t>(200000 * scale), 1);
  for (idx_t build_rows : {idx_t(10000), idx_t(100000), idx_t(400000),
                           idx_t(1600000)}) {
    Fill(db->get(), "build", static_cast<idx_t>(build_rows * scale), 2);
    idx_t rows_h = 0, rows_m = 0;
    JoinRun hash = RunJoin(db->get(), JoinAlgorithm::kHash, &rows_h);
    uint64_t spill_before = db->get()->buffers().GetStats().spilled_bytes;
    JoinRun merge = RunJoin(db->get(), JoinAlgorithm::kMerge, &rows_m);
    uint64_t spilled =
        db->get()->buffers().GetStats().spilled_bytes - spill_before;
    JoinAlgorithm pick = db->get()->governor().ChooseJoinAlgorithm(
        build_rows * 17);  // ~bytes/row estimate
    std::printf("%-14llu %-14.1f %-12.1f %-14.1f %-12.1f %-14.1f %-10s%s\n",
                static_cast<unsigned long long>(build_rows), hash.ms,
                hash.peak_mb, merge.ms, merge.peak_mb, spilled / 1e6,
                pick == JoinAlgorithm::kHash ? "hash" : "merge",
                rows_h == rows_m ? "" : "  RESULT MISMATCH!");
    idx_t probe_rows = static_cast<idx_t>(200000 * scale);
    reporter.Add("hash_join/build=" + std::to_string(build_rows), 1,
                 hash.ms * 1e6, probe_rows / (hash.ms / 1e3),
                 {{"build_ms", hash.build_ms}, {"probe_ms", hash.probe_ms}});
    reporter.Add("merge_join/build=" + std::to_string(build_rows), 1,
                 merge.ms * 1e6, probe_rows / (merge.ms / 1e3));
  }
  std::printf("\nShape check vs paper: hash join time stays low but its "
              "memory grows linearly with the build side; merge join "
              "memory stays bounded (spilling to disk) at higher CPU "
              "cost. The governor switches to merge once the estimated "
              "build no longer fits the budget.\n");

  // ---- morsel-driven parallel scaling ----------------------------------
  // Hash join with the largest build side at 1/2/4 worker threads: the
  // build scans row-group morsels into per-worker partitions merged into
  // one table, and the probe fans out over the finalized (immutable)
  // table into per-worker result buffers (docs/CONCURRENCY.md). The
  // build_ms/probe_ms breakdown shows which phase scales. The sweep's
  // last iteration already filled "build" with exactly this row count
  // and seed; reuse it.
  idx_t scaling_build = static_cast<idx_t>(1600000 * scale);
  std::printf("\n=== parallel scaling — hash join, build=%llu ===\n\n",
              static_cast<unsigned long long>(scaling_build));
  idx_t rows_serial = 0;
  for (int threads : {1, 2, 4}) {
    idx_t rows = 0;
    JoinRun run = RunJoin(db->get(), JoinAlgorithm::kHash, &rows, threads);
    if (threads == 1) {
      rows_serial = rows;
    } else if (rows != rows_serial) {
      std::printf("RESULT MISMATCH at threads=%d!\n", threads);
      return 1;
    }
    std::printf("threads=%d %14.1f ms %10.1f MB  (build %.1f ms, probe "
                "%.1f ms)\n",
                threads, run.ms, run.peak_mb, run.build_ms, run.probe_ms);
    idx_t probe_rows = static_cast<idx_t>(200000 * scale);
    reporter.Add("hash_join/build=1600000/threads=" + std::to_string(threads),
                 1, run.ms * 1e6, probe_rows / (run.ms / 1e3),
                 {{"build_ms", run.build_ms}, {"probe_ms", run.probe_ms}});
  }
  return 0;
}
