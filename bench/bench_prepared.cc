// Prepared statements vs string-at-a-time queries on the paper's
// small-repeated-query embedded workload (sections 3 and 5): a dashboard
// issuing many parameterized point lookups and an edge sensor issuing
// many single-row inserts. Prepare-once/Bind+Execute-many skips the
// per-call parse-bind-plan pipeline; Query() pays it every time.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/main/prepared_statement.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void Report(const char* workload, const char* api, int queries,
            double seconds) {
  std::printf("%-28s %-24s %8d queries  %8.3f s  %12.0f q/s\n", workload,
              api, queries, seconds, queries / seconds);
}

}  // namespace

int main(int argc, char** argv) {
  mallard_bench::BenchReporter reporter("bench_prepared", argc, argv);
  const char* n_env = std::getenv("MALLARD_QUERIES");
  int n = n_env ? std::atoi(n_env) : 20000;
  const int kHotRows = 512;    // dashboard tile: small hot table
  const int kRows = 50000;     // larger table, zone-map-pruned lookups

  auto db = Database::Open(":memory:");
  if (!db.ok()) return 1;
  Connection con(db->get());
  // The "parse per call" workloads below measure the uncached pipeline;
  // the transparent plan cache gets its own bench point afterwards.
  if (!con.Query("PRAGMA plan_cache=off").ok()) return 1;
  if (!con.Query("CREATE TABLE hot (id INTEGER, v DOUBLE)").ok()) return 1;
  if (!con.Query("CREATE TABLE readings (id INTEGER, sensor VARCHAR, "
                 "v DOUBLE)")
           .ok()) {
    return 1;
  }
  {
    std::string sql = "INSERT INTO hot VALUES (0,0.0)";
    for (int i = 1; i < kHotRows; i++) {
      sql += ",(" + std::to_string(i) + "," + std::to_string(i * 0.5) + ")";
    }
    if (!con.Query(sql).ok()) return 1;
  }
  {
    std::string sql;
    for (int i = 0; i < kRows; i++) {
      if (sql.empty()) {
        sql = "INSERT INTO readings VALUES ";
      } else {
        sql += ",";
      }
      sql += "(" + std::to_string(i) + ",'s" + std::to_string(i % 64) +
             "'," + std::to_string((i % 1000) * 0.5) + ")";
      if (static_cast<int>(sql.size()) > (1 << 20) || i == kRows - 1) {
        if (!con.Query(sql).ok()) return 1;
        sql.clear();
      }
    }
  }

  std::printf("=== prepared vs string-at-a-time, %d queries per workload "
              "(paper sections 3/5) ===\n\n",
              n);

  // ---- hot point SELECTs (per-call overhead dominates) ---------------------
  long long checksum_q = 0, checksum_p = 0;
  {
    auto start = Clock::now();
    for (int i = 0; i < n; i++) {
      int id = (i * 2654435761u) % kHotRows;
      auto r = con.Query("SELECT v FROM hot WHERE id = " +
                         std::to_string(id));
      if (!r.ok()) return 1;
      checksum_q += (*r)->RowCount();
    }
    Report("hot point SELECT (512 rows)", "Query (parse per call)", n,
           Seconds(start));
  }
  {
    auto prepared = con.Prepare("SELECT v FROM hot WHERE id = $1");
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   prepared.status().ToString().c_str());
      return 1;
    }
    auto start = Clock::now();
    for (int i = 0; i < n; i++) {
      int id = (i * 2654435761u) % kHotRows;
      if (!(*prepared)->Bind(1, id).ok()) return 1;
      auto r = (*prepared)->Execute();
      if (!r.ok()) return 1;
      checksum_p += (*r)->RowCount();
    }
    Report("hot point SELECT (512 rows)", "Prepare once + Bind/Execute", n,
           Seconds(start));
  }
  if (checksum_q != checksum_p) {
    std::fprintf(stderr, "MISMATCH: %lld vs %lld\n", checksum_q, checksum_p);
    return 1;
  }

  // ---- larger table (late-bound zone-map filters still prune) --------------
  checksum_q = checksum_p = 0;
  {
    auto start = Clock::now();
    for (int i = 0; i < n; i++) {
      int id = (i * 2654435761u) % kRows;
      auto r = con.Query("SELECT v FROM readings WHERE id = " +
                         std::to_string(id));
      if (!r.ok()) return 1;
      checksum_q += (*r)->RowCount();
    }
    Report("point SELECT (50k rows)", "Query (parse per call)", n,
           Seconds(start));
  }
  {
    auto prepared = con.Prepare("SELECT v FROM readings WHERE id = $1");
    if (!prepared.ok()) return 1;
    auto start = Clock::now();
    for (int i = 0; i < n; i++) {
      int id = (i * 2654435761u) % kRows;
      if (!(*prepared)->Bind(1, id).ok()) return 1;
      auto r = (*prepared)->Execute();
      if (!r.ok()) return 1;
      checksum_p += (*r)->RowCount();
    }
    Report("point SELECT (50k rows)", "Prepare once + Bind/Execute", n,
           Seconds(start));
  }
  if (checksum_q != checksum_p) {
    std::fprintf(stderr, "MISMATCH: %lld vs %lld\n", checksum_q, checksum_p);
    return 1;
  }

  // ---- single-row INSERTs (edge-sensor shape) ------------------------------
  {
    if (!con.Query("CREATE TABLE sink_q (id INTEGER, v DOUBLE)").ok()) {
      return 1;
    }
    auto start = Clock::now();
    for (int i = 0; i < n; i++) {
      auto r = con.Query("INSERT INTO sink_q VALUES (" + std::to_string(i) +
                         "," + std::to_string(i * 0.25) + ")");
      if (!r.ok()) return 1;
    }
    Report("single-row INSERT", "Query (parse per call)", n, Seconds(start));
  }
  {
    if (!con.Query("CREATE TABLE sink_p (id INTEGER, v DOUBLE)").ok()) {
      return 1;
    }
    auto prepared = con.Prepare("INSERT INTO sink_p VALUES (?, ?)");
    if (!prepared.ok()) return 1;
    auto start = Clock::now();
    for (int i = 0; i < n; i++) {
      if (!(*prepared)->Bind(1, i).ok()) return 1;
      if (!(*prepared)->Bind(2, i * 0.25).ok()) return 1;
      auto r = (*prepared)->Execute();
      if (!r.ok()) return 1;
    }
    Report("single-row INSERT", "Prepare once + Bind/Execute", n,
           Seconds(start));
  }

  // ---- transparent plan cache: identical SQL text repeated -----------------
  // The ORM shape: the exact same string issued over and over. With the
  // per-connection plan cache the parse-bind-plan pipeline is paid once;
  // the prepared API remains the ceiling (explicit Bind, no text lookup).
  {
    const std::string point_sql = "SELECT v FROM hot WHERE id = 137";
    long long checksum_off = 0, checksum_on = 0;
    {
      auto start = Clock::now();
      for (int i = 0; i < n; i++) {
        auto r = con.Query(point_sql);
        if (!r.ok()) return 1;
        checksum_off += (*r)->RowCount();
      }
      double secs = Seconds(start);
      Report("repeated identical SELECT", "Query, plan cache off", n, secs);
      reporter.Add("repeated_select/plan_cache_off", n, secs / n * 1e9,
                   0.0);
    }
    if (!con.Query("PRAGMA plan_cache=on").ok()) return 1;
    {
      auto start = Clock::now();
      for (int i = 0; i < n; i++) {
        auto r = con.Query(point_sql);
        if (!r.ok()) return 1;
        checksum_on += (*r)->RowCount();
      }
      double secs = Seconds(start);
      Report("repeated identical SELECT", "Query, plan cache on", n, secs);
      reporter.Add("repeated_select/plan_cache_on", n, secs / n * 1e9,
                   0.0);
    }
    if (!con.Query("PRAGMA plan_cache=off").ok()) return 1;
    if (checksum_off != checksum_on) {
      std::fprintf(stderr, "PLAN CACHE MISMATCH: %lld vs %lld\n",
                   checksum_off, checksum_on);
      return 1;
    }
  }

  auto a = con.Query("SELECT count(*) FROM sink_q");
  auto b = con.Query("SELECT count(*) FROM sink_p");
  if (!a.ok() || !b.ok() ||
      (*a)->GetValue(0, 0).GetBigInt() != (*b)->GetValue(0, 0).GetBigInt()) {
    std::fprintf(stderr, "INSERT MISMATCH\n");
    return 1;
  }
  std::printf("\nresults verified identical across both APIs\n");
  return 0;
}
