// E3 — Paper section 5 (transfer efficiency): compares result-set
// transfer mechanisms for a wide scan result:
//   (a) in-process chunk API (zero-copy hand-over; the paper's design),
//   (b) in-process value-at-a-time API (ODBC/JDBC/SQLite style),
//   (c) socket client-server, text protocol (traditional RDBMS),
//   (d) socket client-server, binary columnar protocol.
// The paper's claim: (b)-(d) are dominated by serialization and per-value
// call overhead; (a) is nearly free.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/net/client_server.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {

double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const char* rows_env = std::getenv("MALLARD_TRANSFER_ROWS");
  const idx_t kRows = rows_env ? std::strtoull(rows_env, nullptr, 10)
                               : 2000000;
  auto db = Database::Open(":memory:");
  if (!db.ok()) return 1;
  Connection con(db->get());
  (void)con.Query("CREATE TABLE t (a INTEGER, b BIGINT, c DOUBLE)");
  {
    auto app = Appender::Create(db->get(), "t");
    DataChunk chunk;
    chunk.Initialize({TypeId::kInteger, TypeId::kBigInt, TypeId::kDouble});
    idx_t produced = 0;
    while (produced < kRows) {
      chunk.Reset();
      idx_t n = std::min<idx_t>(kVectorSize, kRows - produced);
      for (idx_t i = 0; i < n; i++) {
        chunk.column(0).data<int32_t>()[i] =
            static_cast<int32_t>(produced + i);
        chunk.column(1).data<int64_t>()[i] =
            static_cast<int64_t>((produced + i) * 7);
        chunk.column(2).data<double>()[i] = (produced + i) * 0.25;
      }
      chunk.SetCardinality(n);
      if (!(*app)->AppendChunk(chunk).ok()) return 1;
      produced += n;
    }
    (void)(*app)->Close();
  }
  const std::string kQuery = "SELECT a, b, c FROM t";
  std::printf("=== Transfer efficiency (paper section 5): %llu rows x 3 "
              "columns ===\n\n",
              static_cast<unsigned long long>(kRows));
  std::printf("%-42s %-12s %-14s %-10s\n", "mechanism", "time (ms)",
              "rows/sec (M)", "vs chunk");

  double chunk_ms = 0;
  // (a) streaming chunk API — zero-copy hand-over.
  {
    auto start = Clock::now();
    auto stream = con.SendQuery(kQuery);
    if (!stream.ok()) return 1;
    int64_t checksum = 0;
    while (true) {
      auto c = (*stream)->Fetch();
      if (!c.ok() || !*c) break;
      const int32_t* a = (*c)->column(0).data<int32_t>();
      for (idx_t i = 0; i < (*c)->size(); i++) checksum += a[i];
    }
    chunk_ms = Ms(start);
    std::printf("%-42s %-12.1f %-14.2f %-10s (checksum %lld)\n",
                "in-process chunk API (zero-copy)", chunk_ms,
                kRows / chunk_ms / 1000.0, "1.0x",
                static_cast<long long>(checksum));
  }
  // (b) value-at-a-time API over a materialized result.
  {
    auto start = Clock::now();
    auto result = con.Query(kQuery);
    if (!result.ok()) return 1;
    int64_t checksum = 0;
    for (idx_t r = 0; r < (*result)->RowCount(); r++) {
      checksum += (*result)->GetValue(0, r).GetInteger();
      (void)(*result)->GetValue(1, r);
      (void)(*result)->GetValue(2, r);
    }
    double ms = Ms(start);
    std::printf("%-42s %-12.1f %-14.2f %.1fx\n",
                "value-at-a-time API (ODBC/JDBC style)", ms,
                kRows / ms / 1000.0, ms / chunk_ms);
  }
  // (c)+(d) socket protocols.
  for (auto [protocol, label] :
       {std::make_pair(net::Protocol::kBinaryColumnar,
                       "socket, binary columnar protocol"),
        std::make_pair(net::Protocol::kText,
                       "socket, text protocol (traditional)")}) {
    auto server = net::QueryServer::Start(db->get(), protocol);
    if (!server.ok()) return 1;
    net::QueryClient client((*server)->client_fd(), protocol);
    auto start = Clock::now();
    auto result = client.Query(kQuery);
    double ms = Ms(start);
    if (!result.ok()) return 1;
    std::printf("%-42s %-12.1f %-14.2f %.1fx   (%.1f MB on the wire)\n",
                label, ms, kRows / ms / 1000.0, ms / chunk_ms,
                (*server)->bytes_sent() / 1e6);
  }
  std::printf("\nShape check vs paper: chunk API >> binary socket > text "
              "socket; value-based API pays per-call overhead on top of "
              "materialization.\n");
  return 0;
}
