// Resilience overhead bench (PRAGMA integrity_check / retry / checksums).
// Measures (a) the end-to-end scan cost of block checksums on vs off —
// the always-on detection tax, which the resilience design budgets at
// <= 5% — (b) the latency a scan pays when the retry loop heals an
// injected transient block-read fault, and (c) the cost of one online
// integrity_check scrub pass. Emits BENCH_resilience.json via --json.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/resilience/retry_policy.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kChunks = 256;  // x kVectorSize rows

double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void Cleanup(const std::string& path) {
  RemoveFile(path);
  RemoveFile(path + ".wal");
  RemoveFile(path + ".tmp");
}

std::string BuildDatabase(bool checksums) {
  std::string path = "/tmp/mallard_bench_resilience_" +
                     std::to_string(checksums) + "_" +
                     std::to_string(::getpid());
  Cleanup(path);
  DBConfig config;
  config.enable_checksums = checksums;
  auto db = Database::Open(path, config);
  Connection con(db->get());
  (void)con.Query("CREATE TABLE t (a BIGINT, b DOUBLE)");
  auto app = Appender::Create(db->get(), "t");
  DataChunk chunk;
  chunk.Initialize({TypeId::kBigInt, TypeId::kDouble});
  for (int c = 0; c < kChunks; c++) {
    chunk.Reset();
    for (idx_t i = 0; i < kVectorSize; i++) {
      chunk.column(0).data<int64_t>()[i] =
          static_cast<int64_t>(c) * kVectorSize + i;
      chunk.column(1).data<double>()[i] = double(i) * 0.5;
    }
    chunk.SetCardinality(kVectorSize);
    (void)(*app)->AppendChunk(chunk);
  }
  (void)(*app)->Close();
  (void)(*db)->Checkpoint();
  (*db)->config().checkpoint_on_close = false;
  return path;
}

// Reopens the database (cold: blocks come off disk, checksums verify on
// read) and scans the whole table `iters` times. Returns avg ms/scan.
double TimeScan(const std::string& path, int iters, double* open_ms) {
  DBConfig config;
  auto open_start = Clock::now();
  auto db = Database::Open(path, config);
  if (open_ms != nullptr) *open_ms = Ms(open_start);
  Connection con(db->get());
  auto start = Clock::now();
  for (int i = 0; i < iters; i++) {
    auto r = con.Query("SELECT sum(a), sum(b) FROM t");
    if (!r.ok()) {
      std::fprintf(stderr, "scan failed: %s\n", r.status().ToString().c_str());
      return -1;
    }
  }
  double total = Ms(start);
  (*db)->config().checkpoint_on_close = false;
  return total / iters;
}

}  // namespace

int main(int argc, char** argv) {
  mallard_bench::BenchReporter reporter("bench_resilience", argc, argv);
  const int64_t kRows = int64_t(kChunks) * kVectorSize;
  const int kIters = 20;

  // (a) checksum overhead: identical workload, checksums off vs on.
  std::string plain = BuildDatabase(false);
  std::string checked = BuildDatabase(true);
  double off_ms = TimeScan(plain, kIters, nullptr);
  double open_ms = 0;
  double on_ms = TimeScan(checked, kIters, &open_ms);
  double overhead_pct = off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0;
  std::printf("scan checksums=off  %8.3f ms\n", off_ms);
  std::printf("scan checksums=on   %8.3f ms  (%+.2f%% overhead)\n", on_ms,
              overhead_pct);
  reporter.Add("scan/checksums=off", kIters, off_ms * 1e6,
               kRows / (off_ms / 1e3));
  reporter.Add("scan/checksums=on", kIters, on_ms * 1e6,
               kRows / (on_ms / 1e3),
               {{"overhead_pct", overhead_pct}, {"open_ms", open_ms}});

  // (b) retry-path latency: a transient block-read fault on reopen is
  // healed by the bounded-backoff retry loop; the cost is the extra
  // read attempts plus the backoff sleeps.
  {
    GlobalResilienceStats().Reset();
    double heal_open_ms = 0;
    FaultInjector::Get().ArmTransient(FaultSite::kBlockRead, 1);
    double heal_ms = TimeScan(checked, 1, &heal_open_ms);
    FaultInjector::Get().Reset();
    ResilienceStats& stats = GlobalResilienceStats();
    std::printf(
        "transient heal      %8.3f ms open (%llu retries, %llu us backoff)\n",
        heal_open_ms,
        static_cast<unsigned long long>(stats.io_retries.load()),
        static_cast<unsigned long long>(stats.backoff_micros.load()));
    reporter.Add("open/transient_block_fault", 1, heal_open_ms * 1e6, 0,
                 {{"scan_ms", heal_ms},
                  {"retries", double(stats.io_retries.load())},
                  {"backoff_us", double(stats.backoff_micros.load())}});
  }

  // (c) one full scrub pass over the checksummed database.
  {
    DBConfig config;
    auto db = Database::Open(checked, config);
    Connection con(db->get());
    auto start = Clock::now();
    auto r = con.Query("PRAGMA integrity_check");
    double scrub_ms = Ms(start);
    if (!r.ok()) {
      std::fprintf(stderr, "integrity_check failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("integrity_check     %8.3f ms (%llu rows)\n", scrub_ms,
                static_cast<unsigned long long>((*r)->RowCount()));
    reporter.Add("integrity_check/full", 1, scrub_ms * 1e6,
                 kRows / (scrub_ms / 1e3));
    (*db)->config().checkpoint_on_close = false;
  }

  Cleanup(plain);
  Cleanup(checked);
  return 0;
}
