// WAL commit-path bench (ROADMAP item 5: always-on durability).
//
// Two questions, matching the durability design in ARCHITECTURE.md:
//
//  1. Commit throughput: N writer threads each committing single-row
//     transactions, under three durability disciplines —
//       fsync_per_commit  group commit disabled: one fsync per commit
//                         (the naive baseline every embedded WAL starts
//                         from);
//       group_sync        leader/follower group commit (the default):
//                         concurrent committers share one fsync;
//       async             PRAGMA wal_commit_mode=async: commits are
//                         acknowledged after the in-memory append, the
//                         governor-paced flusher syncs in batches.
//     The bench injects a fixed 1 ms artificial fsync latency via
//     SetFsyncDelayForTest, identically in all three modes: CI scratch
//     space is tmpfs where a real fsync is near-free, which would hide
//     exactly the cost group commit exists to amortize. With the delay,
//     each point's fsync count times 1 ms dominates wall time, so the
//     commits-per-fsync ratio is what the numbers measure.
//
//  2. Recovery time vs WAL size: build a WAL of N commits (no close-time
//     checkpoint), reopen, and time Database::Open — which is dominated
//     by WAL replay. The contract: replay is linear in WAL bytes.
//
// Output: human table on stdout; `--json BENCH_wal.json` writes the
// machine-readable points (field contract in docs/BENCHMARKS.md).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/storage/file_handle.h"
#include "mallard/storage/wal.h"

using namespace mallard;
using Clock = std::chrono::steady_clock;

namespace {

constexpr uint32_t kFsyncDelayUs = 1000;  // modeled disk-fsync latency
constexpr int kCommitsPerWriter = 50;

double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string BenchPath() {
  return "/tmp/mallard_bench_wal_" + std::to_string(::getpid());
}

void Cleanup(const std::string& path) {
  RemoveFile(path);
  RemoveFile(path + ".wal");
  RemoveFile(path + ".tmp");
}

struct CommitPoint {
  double elapsed_ms = 0;
  uint64_t commits = 0;
  uint64_t fsyncs = 0;
  uint64_t group_commits = 0;
};

CommitPoint RunCommitWorkload(int writers, const std::string& mode) {
  std::string path = BenchPath();
  Cleanup(path);
  CommitPoint point;
  {
    auto db = Database::Open(path);
    if (!db.ok()) return point;
    {
      Connection con(db->get());
      (void)con.Query("CREATE TABLE t (a INTEGER)");
      if (mode == "async") (void)con.Query("PRAGMA wal_commit_mode=async");
    }
    if (mode == "fsync_per_commit") {
      (*db)->wal()->EnableGroupCommitForTest(false);
    }
    // Identical modeled disk latency in every mode (see file header).
    (*db)->wal()->SetFsyncDelayForTest(kFsyncDelayUs);
    WalStats before = (*db)->wal()->GetStats();

    auto start = Clock::now();
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; w++) {
      threads.emplace_back([&db, w] {
        Connection con(db->get());
        for (int i = 0; i < kCommitsPerWriter; i++) {
          (void)con.Query("INSERT INTO t VALUES (" +
                          std::to_string(w * 100000 + i) + ")");
        }
      });
    }
    for (auto& t : threads) t.join();
    // Async acks return before durability: charge the flush of the tail
    // to the async point too, so modes stay comparable.
    (void)(*db)->wal()->FlushPending();
    point.elapsed_ms = Ms(start);

    WalStats after = (*db)->wal()->GetStats();
    point.commits = after.commits - before.commits;
    point.fsyncs = after.fsyncs - before.fsyncs;
    point.group_commits = after.group_commits - before.group_commits;
    (*db)->wal()->SetFsyncDelayForTest(0);
  }
  Cleanup(path);
  return point;
}

struct RecoveryPoint {
  double replay_ms = 0;
  uint64_t wal_bytes = 0;
  int commits = 0;
};

RecoveryPoint RunRecoveryWorkload(int commits) {
  std::string path = BenchPath();
  Cleanup(path);
  RecoveryPoint point;
  point.commits = commits;
  {
    DBConfig config;
    config.checkpoint_on_close = false;  // keep the WAL for replay
    auto db = Database::Open(path, config);
    if (!db.ok()) return point;
    Connection con(db->get());
    (void)con.Query("CREATE TABLE t (a INTEGER, s VARCHAR)");
    for (int i = 0; i < commits; i++) {
      (void)con.Query("INSERT INTO t VALUES (" + std::to_string(i) + ", 'r" +
                      std::to_string(i) + "')");
    }
    auto size = (*db)->wal()->SizeBytes();
    point.wal_bytes = size.ok() ? *size : 0;
  }
  {
    DBConfig config;
    config.checkpoint_on_close = false;
    auto start = Clock::now();
    auto db = Database::Open(path, config);  // replays the whole WAL
    point.replay_ms = Ms(start);
    if (!db.ok()) point.replay_ms = -1;
  }
  Cleanup(path);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  mallard_bench::BenchReporter reporter("bench_wal", argc, argv);

  std::printf("commit throughput, %d commits/writer, %u us modeled fsync\n",
              kCommitsPerWriter, kFsyncDelayUs);
  std::printf("%-18s %8s %12s %8s %8s %14s\n", "mode", "writers",
              "commits/s", "fsyncs", "commits", "commits/fsync");
  double per_commit_baseline[8] = {0};
  for (const std::string mode :
       {"fsync_per_commit", "group_sync", "async"}) {
    for (int writers : {1, 2, 4}) {
      CommitPoint p = RunCommitWorkload(writers, mode);
      double commits_per_sec =
          p.elapsed_ms > 0 ? p.commits / (p.elapsed_ms / 1000.0) : 0;
      double per_fsync = p.fsyncs > 0 ? double(p.commits) / p.fsyncs : 0;
      std::printf("%-18s %8d %12.0f %8llu %8llu %14.1f\n", mode.c_str(),
                  writers, commits_per_sec,
                  static_cast<unsigned long long>(p.fsyncs),
                  static_cast<unsigned long long>(p.commits), per_fsync);
      if (mode == "fsync_per_commit") {
        per_commit_baseline[writers] = commits_per_sec;
      }
      double speedup = per_commit_baseline[writers] > 0
                           ? commits_per_sec / per_commit_baseline[writers]
                           : 1.0;
      reporter.Add("commit/" + mode + "/writers=" + std::to_string(writers),
                   static_cast<long long>(p.commits),
                   p.commits > 0 ? p.elapsed_ms * 1e6 / p.commits : 0,
                   commits_per_sec,
                   {{"writers", double(writers)},
                    {"fsyncs", double(p.fsyncs)},
                    {"group_commits", double(p.group_commits)},
                    {"speedup_vs_per_commit_fsync", speedup}});
    }
  }

  std::printf("\nrecovery time vs WAL size\n");
  std::printf("%8s %12s %12s %14s\n", "commits", "wal_bytes", "replay_ms",
              "commits/s");
  for (int commits : {100, 1000, 5000}) {
    RecoveryPoint p = RunRecoveryWorkload(commits);
    double commits_per_sec =
        p.replay_ms > 0 ? p.commits / (p.replay_ms / 1000.0) : 0;
    std::printf("%8d %12llu %12.1f %14.0f\n", p.commits,
                static_cast<unsigned long long>(p.wal_bytes), p.replay_ms,
                commits_per_sec);
    reporter.Add("recovery/commits=" + std::to_string(commits),
                 p.commits, p.replay_ms * 1e6 / std::max(1, p.commits),
                 commits_per_sec,
                 {{"wal_bytes", double(p.wal_bytes)},
                  {"replay_ms", p.replay_ms}});
  }
  return 0;
}
