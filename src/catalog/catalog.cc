#include "mallard/catalog/catalog.h"

#include "mallard/common/string_util.h"

namespace mallard {

std::string Catalog::Key(const std::string& name) {
  return StringUtil::Lower(name);
}

Status Catalog::CreateTable(const std::string& name,
                            std::vector<ColumnDefinition> columns,
                            bool if_not_exists) {
  if (columns.empty()) {
    return Status::Catalog("table '" + name + "' must have columns");
  }
  std::lock_guard<std::mutex> guard(mutex_);
  std::string key = Key(name);
  if (tables_.count(key) || views_.count(key)) {
    if (if_not_exists) return Status::OK();
    return Status::Catalog("table or view '" + name + "' already exists");
  }
  auto entry = std::make_unique<TableCatalogEntry>();
  entry->name = name;
  entry->table = std::make_unique<DataTable>(name, std::move(columns));
  tables_[key] = std::move(entry);
  BumpVersion();
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::Catalog("table '" + name + "' does not exist");
  }
  tables_.erase(it);
  BumpVersion();
  return Status::OK();
}

Result<DataTable*> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::Catalog("table '" + name + "' does not exist");
  }
  return it->second->table.get();
}

bool Catalog::TableExists(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return tables_.count(Key(name)) > 0;
}

Status Catalog::CreateView(const std::string& name, const std::string& sql,
                           std::vector<std::string> column_aliases,
                           bool or_replace) {
  std::lock_guard<std::mutex> guard(mutex_);
  std::string key = Key(name);
  if (tables_.count(key)) {
    return Status::Catalog("'" + name + "' already exists as a table");
  }
  if (views_.count(key) && !or_replace) {
    return Status::Catalog("view '" + name + "' already exists");
  }
  auto entry = std::make_unique<ViewCatalogEntry>();
  entry->name = name;
  entry->sql = sql;
  entry->column_aliases = std::move(column_aliases);
  views_[key] = std::move(entry);
  BumpVersion();
  return Status::OK();
}

Status Catalog::DropView(const std::string& name, bool if_exists) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = views_.find(Key(name));
  if (it == views_.end()) {
    if (if_exists) return Status::OK();
    return Status::Catalog("view '" + name + "' does not exist");
  }
  views_.erase(it);
  BumpVersion();
  return Status::OK();
}

Result<const ViewCatalogEntry*> Catalog::GetView(
    const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = views_.find(Key(name));
  if (it == views_.end()) {
    return Status::Catalog("view '" + name + "' does not exist");
  }
  return static_cast<const ViewCatalogEntry*>(it->second.get());
}

bool Catalog::ViewExists(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return views_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<std::string> names;
  for (const auto& [key, entry] : tables_) names.push_back(entry->name);
  return names;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<std::string> names;
  for (const auto& [key, entry] : views_) names.push_back(entry->name);
  return names;
}

}  // namespace mallard
