#include <algorithm>

#include "mallard/common/random.h"
#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/tpch/tpch.h"

namespace mallard {
namespace tpch {

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[] = {
    {"ALGERIA", 0},       {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},        {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},        {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},     {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},         {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},       {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},         {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},       {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                            "TRUCK", "MAIL", "FOB"};
const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD",
                               "NONE", "TAKE BACK RETURN"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                         "ECONOMY", "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED",
                         "POLISHED", "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG",
                              "PACK", "CAN", "DRUM"};

// Order date domain: 1992-01-01 .. 1998-08-02 (per the spec).
const int32_t kStartDate = date::FromYMD(1992, 1, 1);
const int32_t kEndDate = date::FromYMD(1998, 8, 2);

std::string RandomComment(RandomEngine* rng, int max_words) {
  static const char* kWords[] = {
      "furiously", "quickly", "carefully", "blithely", "slyly",
      "deposits",  "requests", "accounts", "packages", "instructions",
      "sleep",     "haggle",  "nag",      "wake",     "bold",
      "final",     "ironic",  "regular",  "special",  "express"};
  int words = 2 + static_cast<int>(rng->NextInt(0, max_words - 2));
  std::string result;
  for (int i = 0; i < words; i++) {
    if (i > 0) result += " ";
    result += kWords[rng->NextInt(0, 19)];
  }
  return result;
}

Status Exec(Connection* con, const std::string& sql) {
  auto result = con->Query(sql);
  return result.ok() ? Status::OK() : result.status();
}

Status CreateSchema(Connection* con) {
  MALLARD_RETURN_NOT_OK(Exec(con,
      "CREATE TABLE region (r_regionkey INTEGER, r_name VARCHAR, "
      "r_comment VARCHAR)"));
  MALLARD_RETURN_NOT_OK(Exec(con,
      "CREATE TABLE nation (n_nationkey INTEGER, n_name VARCHAR, "
      "n_regionkey INTEGER, n_comment VARCHAR)"));
  MALLARD_RETURN_NOT_OK(Exec(con,
      "CREATE TABLE supplier (s_suppkey INTEGER, s_name VARCHAR, "
      "s_address VARCHAR, s_nationkey INTEGER, s_phone VARCHAR, "
      "s_acctbal DOUBLE, s_comment VARCHAR)"));
  MALLARD_RETURN_NOT_OK(Exec(con,
      "CREATE TABLE customer (c_custkey INTEGER, c_name VARCHAR, "
      "c_address VARCHAR, c_nationkey INTEGER, c_phone VARCHAR, "
      "c_acctbal DOUBLE, c_mktsegment VARCHAR, c_comment VARCHAR)"));
  MALLARD_RETURN_NOT_OK(Exec(con,
      "CREATE TABLE part (p_partkey INTEGER, p_name VARCHAR, "
      "p_mfgr VARCHAR, p_brand VARCHAR, p_type VARCHAR, p_size INTEGER, "
      "p_container VARCHAR, p_retailprice DOUBLE, p_comment VARCHAR)"));
  MALLARD_RETURN_NOT_OK(Exec(con,
      "CREATE TABLE partsupp (ps_partkey INTEGER, ps_suppkey INTEGER, "
      "ps_availqty INTEGER, ps_supplycost DOUBLE, ps_comment VARCHAR)"));
  MALLARD_RETURN_NOT_OK(Exec(con,
      "CREATE TABLE orders (o_orderkey INTEGER, o_custkey INTEGER, "
      "o_orderstatus VARCHAR, o_totalprice DOUBLE, o_orderdate DATE, "
      "o_orderpriority VARCHAR, o_clerk VARCHAR, o_shippriority INTEGER, "
      "o_comment VARCHAR)"));
  MALLARD_RETURN_NOT_OK(Exec(con,
      "CREATE TABLE lineitem (l_orderkey INTEGER, l_partkey INTEGER, "
      "l_suppkey INTEGER, l_linenumber INTEGER, l_quantity DOUBLE, "
      "l_extendedprice DOUBLE, l_discount DOUBLE, l_tax DOUBLE, "
      "l_returnflag VARCHAR, l_linestatus VARCHAR, l_shipdate DATE, "
      "l_commitdate DATE, l_receiptdate DATE, l_shipinstruct VARCHAR, "
      "l_shipmode VARCHAR, l_comment VARCHAR)"));
  return Status::OK();
}

}  // namespace

Status Generate(Database* db, double scale_factor) {
  Connection con(db);
  MALLARD_RETURN_NOT_OK(CreateSchema(&con));
  RandomEngine rng(0x7c9e6e51a5b3d2f1ULL);

  const int64_t n_supplier = std::max<int64_t>(1, 10000 * scale_factor);
  const int64_t n_customer = std::max<int64_t>(1, 150000 * scale_factor);
  const int64_t n_part = std::max<int64_t>(1, 200000 * scale_factor);
  const int64_t n_orders = std::max<int64_t>(1, 1500000 * scale_factor);

  // region
  {
    MALLARD_ASSIGN_OR_RETURN(auto app, Appender::Create(db, "region"));
    for (int r = 0; r < 5; r++) {
      app->Append(static_cast<int32_t>(r))
          .Append(kRegions[r])
          .Append(RandomComment(&rng, 6));
      MALLARD_RETURN_NOT_OK(app->EndRow());
    }
    MALLARD_RETURN_NOT_OK(app->Close());
  }
  // nation
  {
    MALLARD_ASSIGN_OR_RETURN(auto app, Appender::Create(db, "nation"));
    for (int n = 0; n < 25; n++) {
      app->Append(static_cast<int32_t>(n))
          .Append(kNations[n].name)
          .Append(static_cast<int32_t>(kNations[n].region))
          .Append(RandomComment(&rng, 6));
      MALLARD_RETURN_NOT_OK(app->EndRow());
    }
    MALLARD_RETURN_NOT_OK(app->Close());
  }
  // supplier
  {
    MALLARD_ASSIGN_OR_RETURN(auto app, Appender::Create(db, "supplier"));
    for (int64_t s = 1; s <= n_supplier; s++) {
      app->Append(static_cast<int32_t>(s))
          .Append("Supplier#" + std::to_string(s))
          .Append("addr" + std::to_string(rng.NextInt(0, 99999)))
          .Append(static_cast<int32_t>(rng.NextInt(0, 24)))
          .Append("27-" + std::to_string(rng.NextInt(100, 999)))
          .Append(rng.NextDouble() * 11000.0 - 1000.0)
          .Append(RandomComment(&rng, 8));
      MALLARD_RETURN_NOT_OK(app->EndRow());
    }
    MALLARD_RETURN_NOT_OK(app->Close());
  }
  // customer
  {
    MALLARD_ASSIGN_OR_RETURN(auto app, Appender::Create(db, "customer"));
    for (int64_t c = 1; c <= n_customer; c++) {
      app->Append(static_cast<int32_t>(c))
          .Append("Customer#" + std::to_string(c))
          .Append("addr" + std::to_string(rng.NextInt(0, 99999)))
          .Append(static_cast<int32_t>(rng.NextInt(0, 24)))
          .Append("13-" + std::to_string(rng.NextInt(100, 999)))
          .Append(rng.NextDouble() * 11000.0 - 1000.0)
          .Append(kSegments[rng.NextInt(0, 4)])
          .Append(RandomComment(&rng, 8));
      MALLARD_RETURN_NOT_OK(app->EndRow());
    }
    MALLARD_RETURN_NOT_OK(app->Close());
  }
  // part
  {
    MALLARD_ASSIGN_OR_RETURN(auto app, Appender::Create(db, "part"));
    for (int64_t p = 1; p <= n_part; p++) {
      std::string type = std::string(kTypes1[rng.NextInt(0, 5)]) + " " +
                         kTypes2[rng.NextInt(0, 4)] + " " +
                         kTypes3[rng.NextInt(0, 4)];
      std::string container = std::string(kContainers1[rng.NextInt(0, 4)]) +
                              " " + kContainers2[rng.NextInt(0, 7)];
      app->Append(static_cast<int32_t>(p))
          .Append("part " + RandomComment(&rng, 3))
          .Append("Manufacturer#" + std::to_string(rng.NextInt(1, 5)))
          .Append("Brand#" + std::to_string(rng.NextInt(1, 5)) +
                  std::to_string(rng.NextInt(1, 5)))
          .Append(type)
          .Append(static_cast<int32_t>(rng.NextInt(1, 50)))
          .Append(container)
          .Append(900.0 + (p % 1000) + rng.NextDouble() * 100.0)
          .Append(RandomComment(&rng, 5));
      MALLARD_RETURN_NOT_OK(app->EndRow());
    }
    MALLARD_RETURN_NOT_OK(app->Close());
  }
  // partsupp: 4 suppliers per part.
  {
    MALLARD_ASSIGN_OR_RETURN(auto app, Appender::Create(db, "partsupp"));
    for (int64_t p = 1; p <= n_part; p++) {
      for (int s = 0; s < 4; s++) {
        int64_t suppkey =
            (p + s * (n_supplier / 4 + 1)) % n_supplier + 1;
        app->Append(static_cast<int32_t>(p))
            .Append(static_cast<int32_t>(suppkey))
            .Append(static_cast<int32_t>(rng.NextInt(1, 9999)))
            .Append(rng.NextDouble() * 1000.0 + 1.0)
            .Append(RandomComment(&rng, 5));
        MALLARD_RETURN_NOT_OK(app->EndRow());
      }
    }
    MALLARD_RETURN_NOT_OK(app->Close());
  }
  // orders + lineitem (1..7 lines per order, avg 4 like dbgen).
  {
    MALLARD_ASSIGN_OR_RETURN(auto orders_app, Appender::Create(db, "orders"));
    MALLARD_ASSIGN_OR_RETURN(auto lines_app,
                             Appender::Create(db, "lineitem"));
    for (int64_t o = 1; o <= n_orders; o++) {
      int32_t orderdate = static_cast<int32_t>(
          rng.NextInt(kStartDate, kEndDate - 151));
      int n_lines = static_cast<int>(rng.NextInt(1, 7));
      double total = 0.0;
      int32_t custkey = static_cast<int32_t>(rng.NextInt(1, n_customer));
      // Lineitems first to compute the order total.
      for (int l = 1; l <= n_lines; l++) {
        int32_t partkey = static_cast<int32_t>(rng.NextInt(1, n_part));
        int32_t suppkey =
            static_cast<int32_t>((partkey + rng.NextInt(0, 3) *
                                  (n_supplier / 4 + 1)) % n_supplier + 1);
        double quantity = static_cast<double>(rng.NextInt(1, 50));
        double extendedprice =
            quantity * (900.0 + (partkey % 1000) + 100.0);
        double discount = rng.NextInt(0, 10) / 100.0;
        double tax = rng.NextInt(0, 8) / 100.0;
        int32_t shipdate =
            orderdate + static_cast<int32_t>(rng.NextInt(1, 121));
        int32_t commitdate =
            orderdate + static_cast<int32_t>(rng.NextInt(30, 90));
        int32_t receiptdate =
            shipdate + static_cast<int32_t>(rng.NextInt(1, 30));
        const char* returnflag;
        const char* linestatus;
        // Per spec: returned if receipt <= currentdate (1995-06-17).
        const int32_t kCurrent = date::FromYMD(1995, 6, 17);
        if (receiptdate <= kCurrent) {
          returnflag = rng.NextBool(0.5) ? "R" : "A";
        } else {
          returnflag = "N";
        }
        linestatus = shipdate > kCurrent ? "O" : "F";
        total += extendedprice * (1 - discount) * (1 + tax);
        lines_app->Append(static_cast<int32_t>(o))
            .Append(partkey)
            .Append(suppkey)
            .Append(static_cast<int32_t>(l))
            .Append(quantity)
            .Append(extendedprice)
            .Append(discount)
            .Append(tax)
            .Append(returnflag)
            .Append(linestatus)
            .Append(Value::Date(shipdate))
            .Append(Value::Date(commitdate))
            .Append(Value::Date(receiptdate))
            .Append(kShipInstruct[rng.NextInt(0, 3)])
            .Append(kShipModes[rng.NextInt(0, 6)])
            .Append(RandomComment(&rng, 4));
        MALLARD_RETURN_NOT_OK(lines_app->EndRow());
      }
      const int32_t kCurrent = date::FromYMD(1995, 6, 17);
      const char* status = orderdate + 151 < kCurrent
                               ? "F"
                               : (orderdate > kCurrent ? "O" : "P");
      orders_app->Append(static_cast<int32_t>(o))
          .Append(custkey)
          .Append(status)
          .Append(total)
          .Append(Value::Date(orderdate))
          .Append(kPriorities[rng.NextInt(0, 4)])
          .Append("Clerk#" + std::to_string(rng.NextInt(1, 1000)))
          .Append(static_cast<int32_t>(0))
          .Append(RandomComment(&rng, 5));
      MALLARD_RETURN_NOT_OK(orders_app->EndRow());
    }
    MALLARD_RETURN_NOT_OK(orders_app->Close());
    MALLARD_RETURN_NOT_OK(lines_app->Close());
  }
  return Status::OK();
}

}  // namespace tpch
}  // namespace mallard
