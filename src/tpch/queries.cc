#include "mallard/tpch/tpch.h"

namespace mallard {
namespace tpch {

std::vector<int> SupportedQueries() { return {1, 3, 5, 6, 10, 12, 14, 19}; }

std::string Query(int query_number) {
  switch (query_number) {
    case 1:
      return R"(
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus)";
    case 3:
      return R"(
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10)";
    case 5:
      return R"(
SELECT n_name,
       sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY n_name
ORDER BY revenue DESC)";
    case 6:
      return R"(
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24)";
    case 10:
      return R"(
SELECT c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20)";
    case 12:
      return R"(
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT'
                  OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT'
                 AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode)";
    case 14:
      return R"(
SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH)";
    case 19:
      // The join predicate is hoisted out of the OR branches (the common
      // Q19 rewrite) so the planner can form an equi-join.
      return R"(
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND l_shipmode IN ('AIR', 'REG AIR')
  AND l_shipinstruct = 'DELIVER IN PERSON'
  AND ((p_brand = 'Brand#12'
  AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
  AND l_quantity >= 1 AND l_quantity <= 11
  AND p_size BETWEEN 1 AND 5)
  OR (p_brand = 'Brand#23'
  AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
  AND l_quantity >= 10 AND l_quantity <= 20
  AND p_size BETWEEN 1 AND 10)
  OR (p_brand = 'Brand#34'
  AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
  AND l_quantity >= 20 AND l_quantity <= 30
  AND p_size BETWEEN 1 AND 15)))";
    default:
      return "";
  }
}

}  // namespace tpch
}  // namespace mallard
