#ifndef MALLARD_PARSER_AST_H_
#define MALLARD_PARSER_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/catalog/column_definition.h"
#include "mallard/common/value.h"
#include "mallard/execution/physical_join.h"  // JoinType
#include "mallard/expression/bound_expression.h"  // CompareOp, ArithOp

namespace mallard {

/// Parsed (unbound) expression node kinds.
enum class PExprType : uint8_t {
  kColumnRef,
  kStar,
  kConstant,
  kComparison,
  kConjunction,
  kArithmetic,
  kFunction,
  kCase,
  kCast,
  kIsNull,
  kNot,
  kBetween,
  kInList,
  kLike,
  kParameter,  // prepared-statement placeholder: ? or $N
};

/// A parsed expression. One node type with per-kind fields keeps the AST
/// compact; the binder dispatches on `type`.
struct ParsedExpression {
  PExprType type;
  std::string name;        // column / function name
  std::string table_name;  // qualifier for column refs
  std::string alias;       // select-item alias
  Value constant;          // kConstant payload
  CompareOp compare_op = CompareOp::kEqual;
  ArithOp arith_op = ArithOp::kAdd;
  bool is_and = true;    // conjunction kind
  bool negated = false;  // NOT LIKE / NOT IN / IS NOT NULL / NOT BETWEEN
  bool has_else = false;  // CASE
  TypeId cast_type = TypeId::kInvalid;
  idx_t parameter_index = 0;  // kParameter payload (0-based)
  std::vector<std::unique_ptr<ParsedExpression>> children;

  explicit ParsedExpression(PExprType t) : type(t) {}
  std::unique_ptr<ParsedExpression> Copy() const;
  /// Structural equality (ignoring aliases); used for GROUP BY matching.
  bool Equals(const ParsedExpression& other) const;
  std::string ToString() const;
};

using PExpr = std::unique_ptr<ParsedExpression>;

/// FROM-clause tree.
struct TableRef {
  enum class Type : uint8_t { kBase, kJoin, kCsv, kSubquery };
  Type type;
  // kBase:
  std::string name;
  std::string alias;
  // kCsv:
  std::string csv_path;
  // kJoin:
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  JoinType join_type = JoinType::kInner;
  bool is_cross = false;
  PExpr condition;
  // kSubquery:
  std::unique_ptr<struct SelectStatement> subquery;

  explicit TableRef(Type t) : type(t) {}
};

/// Statement kinds.
enum class StatementType : uint8_t {
  kSelect,
  kCreateTable,
  kCreateView,
  kDrop,
  kInsert,
  kUpdate,
  kDelete,
  kCopy,
  kTransaction,
  kPragma,
  kExplain,
  kCheckpoint,
};

struct SQLStatement {
  explicit SQLStatement(StatementType t) : type(t) {}
  virtual ~SQLStatement() = default;
  StatementType type;
};

struct OrderByItem {
  PExpr expr;
  bool ascending = true;
};

struct SelectStatement final : SQLStatement {
  SelectStatement() : SQLStatement(StatementType::kSelect) {}
  bool distinct = false;
  std::vector<PExpr> select_list;
  std::unique_ptr<TableRef> from;  // null: SELECT <exprs>
  PExpr where;
  std::vector<PExpr> group_by;
  PExpr having;
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;   // -1: none
  int64_t offset = 0;
};

struct CreateTableStatement final : SQLStatement {
  CreateTableStatement() : SQLStatement(StatementType::kCreateTable) {}
  std::string name;
  std::vector<ColumnDefinition> columns;
  bool if_not_exists = false;
  std::unique_ptr<SelectStatement> as_select;  // CREATE TABLE ... AS SELECT
};

struct CreateViewStatement final : SQLStatement {
  CreateViewStatement() : SQLStatement(StatementType::kCreateView) {}
  std::string name;
  std::vector<std::string> aliases;
  std::string select_sql;  // stored SQL text, re-parsed at bind time
  bool or_replace = false;
};

struct DropStatement final : SQLStatement {
  DropStatement() : SQLStatement(StatementType::kDrop) {}
  std::string name;
  bool is_view = false;
  bool if_exists = false;
};

struct InsertStatement final : SQLStatement {
  InsertStatement() : SQLStatement(StatementType::kInsert) {}
  std::string table;
  std::vector<std::string> columns;  // optional explicit column list
  std::vector<std::vector<PExpr>> values;  // VALUES rows
  std::unique_ptr<SelectStatement> select;  // INSERT ... SELECT
};

struct UpdateStatement final : SQLStatement {
  UpdateStatement() : SQLStatement(StatementType::kUpdate) {}
  std::string table;
  std::vector<std::pair<std::string, PExpr>> assignments;
  PExpr where;
};

struct DeleteStatement final : SQLStatement {
  DeleteStatement() : SQLStatement(StatementType::kDelete) {}
  std::string table;
  PExpr where;
};

struct CopyStatement final : SQLStatement {
  CopyStatement() : SQLStatement(StatementType::kCopy) {}
  std::string table;
  std::string path;
  bool is_from = true;  // COPY t FROM 'f' (load) vs COPY t TO 'f' (export)
  bool header = true;
  char delimiter = ',';
};

struct TransactionStatement final : SQLStatement {
  enum class Kind : uint8_t { kBegin, kCommit, kRollback };
  TransactionStatement() : SQLStatement(StatementType::kTransaction) {}
  Kind kind = Kind::kBegin;
};

struct PragmaStatement final : SQLStatement {
  PragmaStatement() : SQLStatement(StatementType::kPragma) {}
  std::string name;
  std::string value;
};

struct ExplainStatement final : SQLStatement {
  ExplainStatement() : SQLStatement(StatementType::kExplain) {}
  std::unique_ptr<SQLStatement> inner;
};

struct CheckpointStatement final : SQLStatement {
  CheckpointStatement() : SQLStatement(StatementType::kCheckpoint) {}
};

}  // namespace mallard

#endif  // MALLARD_PARSER_AST_H_
