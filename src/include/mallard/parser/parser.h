#ifndef MALLARD_PARSER_PARSER_H_
#define MALLARD_PARSER_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/common/result.h"
#include "mallard/parser/ast.h"

namespace mallard {

/// Hand-written recursive-descent SQL parser covering the analytical
/// dialect of the engine: SELECT (joins, GROUP BY, HAVING, ORDER BY,
/// LIMIT, DISTINCT), DDL, DML, COPY, PRAGMA, transactions, EXPLAIN.
class Parser {
 public:
  /// Parses a semicolon-separated list of statements.
  static Result<std::vector<std::unique_ptr<SQLStatement>>> Parse(
      const std::string& sql);
};

}  // namespace mallard

#endif  // MALLARD_PARSER_PARSER_H_
