#ifndef MALLARD_CATALOG_CATALOG_H_
#define MALLARD_CATALOG_CATALOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mallard/catalog/column_definition.h"
#include "mallard/common/result.h"
#include "mallard/storage/table/data_table.h"

namespace mallard {

/// A named table: schema plus physical storage.
struct TableCatalogEntry {
  std::string name;
  std::unique_ptr<DataTable> table;
};

/// A named view: stored SQL text, expanded at bind time.
struct ViewCatalogEntry {
  std::string name;
  std::string sql;
  std::vector<std::string> column_aliases;
};

/// The database catalog: tables and views by (case-insensitive) name.
/// DDL is autocommitted and serialized by the catalog lock (documented
/// simplification relative to versioned catalogs).
class Catalog {
 public:
  Status CreateTable(const std::string& name,
                     std::vector<ColumnDefinition> columns,
                     bool if_not_exists = false);
  Status DropTable(const std::string& name, bool if_exists = false);
  Result<DataTable*> GetTable(const std::string& name) const;
  bool TableExists(const std::string& name) const;

  Status CreateView(const std::string& name, const std::string& sql,
                    std::vector<std::string> column_aliases,
                    bool or_replace = false);
  Status DropView(const std::string& name, bool if_exists = false);
  Result<const ViewCatalogEntry*> GetView(const std::string& name) const;
  bool ViewExists(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

  /// Monotonic counter bumped by every successful DDL change. Prepared
  /// statements record it at plan time and re-plan when it moves, so a
  /// cached plan never dereferences a dropped table.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Runs `fn` over every table (checkpoint, GC).
  template <typename Fn>
  void ForEachTable(Fn fn) const {
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto& [name, entry] : tables_) {
      fn(entry->table.get());
    }
  }

 private:
  static std::string Key(const std::string& name);

  void BumpVersion() { version_.fetch_add(1, std::memory_order_release); }

  std::atomic<uint64_t> version_{0};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<TableCatalogEntry>> tables_;
  std::map<std::string, std::unique_ptr<ViewCatalogEntry>> views_;
};

}  // namespace mallard

#endif  // MALLARD_CATALOG_CATALOG_H_
