#ifndef MALLARD_CATALOG_COLUMN_DEFINITION_H_
#define MALLARD_CATALOG_COLUMN_DEFINITION_H_

#include <string>

#include "mallard/common/types.h"

namespace mallard {

/// Name and type of one table column.
struct ColumnDefinition {
  std::string name;
  TypeId type = TypeId::kInvalid;

  ColumnDefinition() = default;
  ColumnDefinition(std::string name_in, TypeId type_in)
      : name(std::move(name_in)), type(type_in) {}
};

}  // namespace mallard

#endif  // MALLARD_CATALOG_COLUMN_DEFINITION_H_
