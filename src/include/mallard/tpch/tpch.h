#ifndef MALLARD_TPCH_TPCH_H_
#define MALLARD_TPCH_TPCH_H_

#include <string>
#include <vector>

#include "mallard/main/database.h"

namespace mallard {
namespace tpch {

/// Creates the eight TPC-H tables and fills them with deterministic,
/// dbgen-like synthetic data at the given scale factor (SF 1.0 =
/// ~6M lineitem rows). This is the documented substitution for the
/// official dbgen tool: key structure, value domains and join
/// selectivities follow the spec; text columns are simplified.
Status Generate(Database* db, double scale_factor);

/// Returns the SQL text of a supported TPC-H query
/// (1, 3, 5, 6, 10, 12, 14, 19 — the subset without scalar subqueries).
std::string Query(int query_number);

/// Query numbers supported by Query().
std::vector<int> SupportedQueries();

}  // namespace tpch
}  // namespace mallard

#endif  // MALLARD_TPCH_TPCH_H_
