#ifndef MALLARD_ETL_PHYSICAL_CSV_SCAN_H_
#define MALLARD_ETL_PHYSICAL_CSV_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/etl/csv.h"
#include "mallard/execution/physical_operator.h"

namespace mallard {

/// Direct scan over a CSV file (the `read_csv('path')` table function):
/// the database reads external files without a separate load step
/// (paper section 2, integrated ETL).
class PhysicalCsvScan final : public PhysicalOperator {
 public:
  PhysicalCsvScan(std::string path, CsvOptions options,
                  std::vector<idx_t> column_ids,
                  std::vector<TypeId> file_types,
                  std::vector<TypeId> output_types)
      : PhysicalOperator(std::move(output_types)),
        path_(std::move(path)),
        options_(options),
        column_ids_(std::move(column_ids)),
        file_types_(std::move(file_types)) {}

  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override { return "CSV_SCAN(" + path_ + ")"; }

 protected:
  Status ResetOperator() override {
    reader_.reset();
    initialized_ = false;
    return Status::OK();
  }

 private:
  std::string path_;
  CsvOptions options_;
  std::vector<idx_t> column_ids_;
  std::vector<TypeId> file_types_;
  std::unique_ptr<CsvReader> reader_;
  DataChunk file_chunk_;
  bool initialized_ = false;
};

}  // namespace mallard

#endif  // MALLARD_ETL_PHYSICAL_CSV_SCAN_H_
