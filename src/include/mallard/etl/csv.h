#ifndef MALLARD_ETL_CSV_H_
#define MALLARD_ETL_CSV_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "mallard/catalog/column_definition.h"
#include "mallard/common/result.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  bool header = true;
  std::string null_string = "";  // values equal to this parse as NULL
};

/// Streaming CSV reader with schema sniffing. Supports the paper's ETL
/// story (section 2): the database scans existing CSV files directly,
/// reshapes the result and appends it to persistent tables.
class CsvReader {
 public:
  /// Opens the file and sniffs column names/types from the header and the
  /// first 100 data rows (type lattice: BIGINT -> DOUBLE -> DATE ->
  /// VARCHAR).
  static Result<std::unique_ptr<CsvReader>> Open(const std::string& path,
                                                 CsvOptions options = {});

  const std::vector<ColumnDefinition>& columns() const { return columns_; }
  std::vector<TypeId> ColumnTypes() const;

  /// Reads the next up-to-kVectorSize rows into `chunk` (initialized with
  /// ColumnTypes()). Returns rows read; 0 = end of file.
  Result<idx_t> ReadChunk(DataChunk* chunk);

 private:
  CsvReader(std::string path, CsvOptions options)
      : path_(std::move(path)), options_(options) {}

  Status Initialize();
  bool ReadRecord(std::vector<std::string>* fields, bool* saw_any);

  std::string path_;
  CsvOptions options_;
  std::ifstream stream_;
  std::vector<ColumnDefinition> columns_;
  idx_t line_number_ = 0;
};

/// Writes a result table to CSV.
class CsvWriter {
 public:
  static Status Write(const std::string& path,
                      const std::vector<std::string>& column_names,
                      const std::vector<DataChunk*>& chunks,
                      CsvOptions options = {});
};

}  // namespace mallard

#endif  // MALLARD_ETL_CSV_H_
