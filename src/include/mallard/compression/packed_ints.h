/**
 * @file packed_ints.h
 * @brief Word-wise bit-packed integer arrays used by encoded column
 *        segments (dictionary codes, frame-of-reference deltas).
 *
 * Unlike bitpack::Pack/Unpack in codec.h (a self-describing block format
 * for spill/bench use), these are raw random-access primitives: the
 * caller owns the buffer, the bit width and the element count. Widths up
 * to 56 bits are supported so every access is a single unaligned 64-bit
 * load/store; buffers must be padded with kPadBytes tail bytes.
 */
#ifndef MALLARD_COMPRESSION_PACKED_INTS_H_
#define MALLARD_COMPRESSION_PACKED_INTS_H_

#include <cstdint>
#include <cstring>

namespace mallard {
namespace packedbits {

/// Maximum supported element width: 56 bits keeps (bitpos & 7) + width
/// inside one 64-bit window.
constexpr uint8_t kMaxBits = 56;
/// Tail padding so the last element's 8-byte window stays in bounds.
constexpr size_t kPadBytes = 8;

inline uint64_t MaskOf(uint8_t bits) {
  return bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << bits) - 1);
}

/// Bytes needed to hold `count` elements of `bits` width, padding included.
inline size_t BytesFor(uint64_t count, uint8_t bits) {
  return static_cast<size_t>((count * bits + 7) / 8) + kPadBytes;
}

/// Smallest width that can represent every value in [0, max_value].
inline uint8_t BitsFor(uint64_t max_value) {
  uint8_t bits = 0;
  while (max_value != 0) {
    bits++;
    max_value >>= 1;
  }
  return bits;
}

inline uint64_t Get(const uint8_t* data, uint64_t index, uint8_t bits) {
  if (bits == 0) return 0;
  uint64_t bitpos = index * bits;
  uint64_t word;
  std::memcpy(&word, data + (bitpos >> 3), 8);
  return (word >> (bitpos & 7)) & MaskOf(bits);
}

/// Stores `value` (must fit in `bits`) at `index`. Elements must be
/// written into zeroed or previously-written slots; the read-modify-write
/// touches neighbouring elements' bits, so concurrent writers need
/// external synchronization (segment encoding runs under the row group's
/// unique lock).
inline void Set(uint8_t* data, uint64_t index, uint8_t bits, uint64_t value) {
  if (bits == 0) return;
  uint64_t bitpos = index * bits;
  uint8_t* p = data + (bitpos >> 3);
  uint64_t word;
  std::memcpy(&word, p, 8);
  uint64_t shift = bitpos & 7;
  word &= ~(MaskOf(bits) << shift);
  word |= (value & MaskOf(bits)) << shift;
  std::memcpy(p, &word, 8);
}

}  // namespace packedbits
}  // namespace mallard

#endif  // MALLARD_COMPRESSION_PACKED_INTS_H_
