#ifndef MALLARD_COMPRESSION_CODEC_H_
#define MALLARD_COMPRESSION_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mallard/common/result.h"

namespace mallard {

/// Compression intensity, the knob the reactive governor turns as
/// application memory pressure rises (paper section 4 / Figure 1).
enum class CompressionLevel : uint8_t {
  kNone = 0,
  kLight = 1,  // byte RLE: cheap CPU, modest ratio
  kHeavy = 2,  // LZ77: more CPU, better ratio
};

const char* CompressionLevelToString(CompressionLevel level);

/// A block compressor. Implementations must be exact inverses
/// (Decompress(Compress(x)) == x for all x).
class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::string name() const = 0;
  /// Compresses `len` bytes into `out` (replaced, not appended).
  virtual void Compress(const uint8_t* data, size_t len,
                        std::vector<uint8_t>* out) const = 0;
  /// Decompresses into `out`, which is resized to the original length.
  virtual Status Decompress(const uint8_t* data, size_t len,
                            std::vector<uint8_t>* out) const = 0;
};

/// Byte-oriented run-length encoding ("light").
class RleCodec final : public Codec {
 public:
  std::string name() const override { return "rle"; }
  void Compress(const uint8_t* data, size_t len,
                std::vector<uint8_t>* out) const override;
  Status Decompress(const uint8_t* data, size_t len,
                    std::vector<uint8_t>* out) const override;
};

/// LZ77 with a 64KB window and greedy hash-chain matching ("heavy").
class LzCodec final : public Codec {
 public:
  std::string name() const override { return "lz"; }
  void Compress(const uint8_t* data, size_t len,
                std::vector<uint8_t>* out) const override;
  Status Decompress(const uint8_t* data, size_t len,
                    std::vector<uint8_t>* out) const override;
};

/// Returns the codec singleton for a level; nullptr for kNone.
const Codec* CodecForLevel(CompressionLevel level);

/// Frame-of-reference bit-packing for integer arrays; used by benches to
/// characterize lightweight columnar compression.
namespace bitpack {
/// Packs `count` int64 values; format: [min i64][bits u8][packed...].
void Pack(const int64_t* values, size_t count, std::vector<uint8_t>* out);
Status Unpack(const uint8_t* data, size_t len, std::vector<int64_t>* out);
}  // namespace bitpack

}  // namespace mallard

#endif  // MALLARD_COMPRESSION_CODEC_H_
