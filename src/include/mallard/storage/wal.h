#ifndef MALLARD_STORAGE_WAL_H_
#define MALLARD_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mallard/catalog/catalog.h"
#include "mallard/common/serializer.h"
#include "mallard/storage/file_handle.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

class TransactionManager;
class ResourceGovernor;

/// WAL record kinds. Records of one transaction are written contiguously
/// and terminated by a kCommit marker; replay applies only complete
/// groups, so a torn tail never surfaces partial transactions.
enum class WalRecordType : uint8_t {
  kCreateTable = 1,
  kDropTable,
  kCreateView,
  kDropView,
  kAppend,
  kDelete,
  kUpdate,
  kCommit,
};

/// Builders for serialized WAL record payloads.
namespace wal_record {
std::vector<uint8_t> CreateTable(const std::string& name,
                                 const std::vector<ColumnDefinition>& cols);
std::vector<uint8_t> DropTable(const std::string& name);
std::vector<uint8_t> CreateView(const std::string& name,
                                const std::string& sql,
                                const std::vector<std::string>& aliases);
std::vector<uint8_t> DropView(const std::string& name);
std::vector<uint8_t> Append(const std::string& table, const DataChunk& chunk);
std::vector<uint8_t> Delete(const std::string& table, const int64_t* row_ids,
                            idx_t count);
std::vector<uint8_t> Update(const std::string& table,
                            const std::vector<idx_t>& columns,
                            const int64_t* row_ids, idx_t count,
                            const DataChunk& values);
std::vector<uint8_t> Commit();
}  // namespace wal_record

/// When a commit is acknowledged relative to WAL durability.
enum class WalCommitMode : uint8_t {
  /// Acknowledge only after the transaction's records are fsynced.
  /// Concurrent committers share fsyncs via group commit.
  kSync = 0,
  /// Acknowledge after the in-memory append; a background flusher
  /// fsyncs on a governor-timed interval. Bounded data loss on crash
  /// (at most one flush interval), never a torn or inconsistent state.
  kAsync = 1,
};

/// Counters behind `PRAGMA wal_stats`. All cumulative since Open.
struct WalStats {
  uint64_t commits = 0;        // WriteCommit calls acknowledged OK
  uint64_t fsyncs = 0;         // commit-path fsync syscalls issued
  uint64_t flushes = 0;        // leader/flusher batches written
  uint64_t group_commits = 0;  // commits that shared a flush with others
  uint64_t max_group = 0;      // largest commit count in one flush
  uint64_t async_acks = 0;     // commits acknowledged before durability
  uint64_t flush_errors = 0;   // async flushes that failed (data dropped)
  uint64_t bytes_written = 0;  // framed bytes appended to the log
  uint64_t pending_bytes = 0;  // async bytes not yet flushed (snapshot)
  uint64_t torn_tail_recoveries = 0;  // replays that truncated a torn tail
};

/// Write-ahead log in a separate file next to the database file (paper
/// section 6). Each record is framed [len u32][crc32c u32][payload]; the
/// CRC detects both bit rot and torn tail writes, and replay truncates at
/// the first bad frame.
///
/// Commit durability is group-committed: concurrent committing
/// connections enqueue their framed transaction, the first to arrive
/// becomes the flush leader and writes + fsyncs every queued batch in one
/// pass while followers wait; whoever queued during that flush leads the
/// next one. A failed append or fsync truncates the file back to the last
/// durable prefix so a retried commit writes fresh frames onto a clean
/// log. See docs/ARCHITECTURE.md "Durability".
class WriteAheadLog {
 public:
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);
  ~WriteAheadLog();

  /// Appends all records of one committing transaction, acknowledging
  /// per the current commit mode (fsynced in kSync, queued in kAsync).
  Status WriteCommit(const std::vector<std::vector<uint8_t>>& records);

  /// Replays committed transaction groups into the catalog. Returns the
  /// number of transactions applied. `txn_manager` supplies replay
  /// transactions that commit without re-writing the WAL.
  ///
  /// `expected_generation` is the database header's checkpoint iteration.
  /// The log carries the generation of the checkpoint that last truncated
  /// it; a mismatch means the log predates the current root (the process
  /// died after the root swap became durable but before the truncation)
  /// — its transactions are already in the checkpoint image, so replaying
  /// them would duplicate rows. Such a stale log is discarded and
  /// re-initialized instead of replayed.
  Result<idx_t> Replay(Catalog* catalog, TransactionManager* txn_manager,
                       uint64_t expected_generation);

  /// Truncates the log after a checkpoint whose root swap is already
  /// durable, stamping `generation` (the new header iteration) so replay
  /// can tell this fresh log from a stale one. Pending async batches are
  /// discarded: every acknowledged commit is already stamped in memory
  /// and therefore part of the checkpoint image being truncated against.
  /// On failure the log is left stale and further commits are refused
  /// until a truncation succeeds (a crash in that state must not lose
  /// acknowledged commits to the generation check).
  Status Truncate(uint64_t generation);

  /// Switches the commit mode. Entering kSync flushes everything pending
  /// so the stronger guarantee holds from the PRAGMA's return onward;
  /// entering kAsync lazily starts the background flusher.
  Status SetCommitMode(WalCommitMode mode);
  WalCommitMode commit_mode() const { return commit_mode_.load(); }

  /// Forces pending async batches to disk (fsync included).
  Status FlushPending();

  /// Governor consulted by the async flusher for its sleep interval.
  void SetGovernor(const ResourceGovernor* governor) { governor_ = governor; }

  WalStats GetStats() const;

  /// Scrubber probe: re-reads the durable log from disk and verifies
  /// the header magic plus every frame CRC, holding the flush token so
  /// no append is in flight. `frames` (optional) receives the number of
  /// frames verified. Corruption here is reported, not repaired — the
  /// log stays untouched for Replay's torn-tail/mid-stream decision.
  Status VerifyFrames(uint64_t* frames);

  /// Benchmark baseline: disables the commit queue so every committer
  /// appends and fsyncs alone (the pre-group-commit behavior).
  void EnableGroupCommitForTest(bool enable) { group_commit_ = enable; }
  /// Test seam: sleep before each commit-path fsync so concurrency tests
  /// deterministically observe followers piling onto one leader flush.
  void SetFsyncDelayForTest(uint32_t micros) { fsync_delay_us_ = micros; }

  Result<uint64_t> SizeBytes() const;
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, std::unique_ptr<FileHandle> file)
      : path_(std::move(path)), file_(std::move(file)) {}

  Status ApplyRecord(BinaryReader* reader, WalRecordType type,
                     Catalog* catalog, Transaction* txn);

  /// Frames `records` as [len][crc][payload]* into one contiguous batch
  /// (runs the kWalWrite bit-flip injection like before).
  std::vector<uint8_t> FrameRecords(
      const std::vector<std::vector<uint8_t>>& records);

  /// Appends `batch` and fsyncs, holding the flush token. On any failure
  /// the file is truncated back to its pre-append size so the log always
  /// ends on a durable frame boundary. Fault sites: kWalAppend (error or
  /// half-written batch + kill), kWalFsync (error or kill before sync).
  Status AppendAndSync(const std::vector<uint8_t>& batch);

  Status CommitSync(std::vector<uint8_t> batch);
  Status CommitAsync(std::vector<uint8_t> batch);

  /// Writes + fsyncs the 16-byte log header [magic][generation] at
  /// offset 0.
  Status WriteWalHeader(uint64_t generation);

  /// Blocks until no flush is in progress and claims the token. Caller
  /// must hold `mutex_` (the lock is used for the wait).
  void AcquireFlushToken(std::unique_lock<std::mutex>* lock);
  void ReleaseFlushToken();

  void FlusherLoop();
  void StartFlusherLocked();

  struct CommitRequest {
    std::vector<uint8_t> batch;
    bool done = false;
    Status status;
  };

  std::string path_;
  std::unique_ptr<FileHandle> file_;
  const ResourceGovernor* governor_ = nullptr;

  std::atomic<WalCommitMode> commit_mode_{WalCommitMode::kSync};
  std::atomic<bool> group_commit_{true};
  std::atomic<uint32_t> fsync_delay_us_{0};
  // Set when a truncation failed: the log's generation no longer matches
  // the durable root, so appended commits would be skipped by replay.
  // Commits are refused until a truncation succeeds.
  std::atomic<bool> truncate_failed_{false};

  // All mutable flush state below is guarded by mutex_; the file itself
  // is written only by the holder of the flush token.
  mutable std::mutex mutex_;
  std::condition_variable cv_;          // commit done / token released
  std::condition_variable flusher_cv_;  // async flusher wakeups
  std::deque<CommitRequest*> queue_;    // sync-mode committers
  std::vector<uint8_t> pending_;        // async-mode unflushed batches
  bool flush_in_progress_ = false;
  bool shutdown_ = false;
  std::thread flusher_;
  uint64_t file_size_ = 0;  // durable log end (token holder writes it)

  WalStats stats_;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_WAL_H_
