#ifndef MALLARD_STORAGE_WAL_H_
#define MALLARD_STORAGE_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/catalog/catalog.h"
#include "mallard/common/serializer.h"
#include "mallard/storage/file_handle.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

class TransactionManager;

/// WAL record kinds. Records of one transaction are written contiguously
/// and terminated by a kCommit marker; replay applies only complete
/// groups, so a torn tail never surfaces partial transactions.
enum class WalRecordType : uint8_t {
  kCreateTable = 1,
  kDropTable,
  kCreateView,
  kDropView,
  kAppend,
  kDelete,
  kUpdate,
  kCommit,
};

/// Builders for serialized WAL record payloads.
namespace wal_record {
std::vector<uint8_t> CreateTable(const std::string& name,
                                 const std::vector<ColumnDefinition>& cols);
std::vector<uint8_t> DropTable(const std::string& name);
std::vector<uint8_t> CreateView(const std::string& name,
                                const std::string& sql,
                                const std::vector<std::string>& aliases);
std::vector<uint8_t> DropView(const std::string& name);
std::vector<uint8_t> Append(const std::string& table, const DataChunk& chunk);
std::vector<uint8_t> Delete(const std::string& table, const int64_t* row_ids,
                            idx_t count);
std::vector<uint8_t> Update(const std::string& table,
                            const std::vector<idx_t>& columns,
                            const int64_t* row_ids, idx_t count,
                            const DataChunk& values);
std::vector<uint8_t> Commit();
}  // namespace wal_record

/// Write-ahead log in a separate file next to the database file (paper
/// section 6). Each record is framed [len u32][crc32c u32][payload]; the
/// CRC detects both bit rot and torn tail writes, and replay truncates at
/// the first bad frame.
class WriteAheadLog {
 public:
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  /// Appends all records of one committing transaction followed by fsync.
  Status WriteCommit(const std::vector<std::vector<uint8_t>>& records);

  /// Replays committed transaction groups into the catalog. Returns the
  /// number of transactions applied. `txn_manager` supplies replay
  /// transactions that commit without re-writing the WAL.
  Result<idx_t> Replay(Catalog* catalog, TransactionManager* txn_manager);

  /// Truncates the log (after a checkpoint).
  Status Truncate();

  Result<uint64_t> SizeBytes() const;
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, std::unique_ptr<FileHandle> file)
      : path_(std::move(path)), file_(std::move(file)) {}

  Status ApplyRecord(BinaryReader* reader, WalRecordType type,
                     Catalog* catalog, Transaction* txn);

  std::string path_;
  std::unique_ptr<FileHandle> file_;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_WAL_H_
