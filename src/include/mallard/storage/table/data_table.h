#ifndef MALLARD_STORAGE_TABLE_DATA_TABLE_H_
#define MALLARD_STORAGE_TABLE_DATA_TABLE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "mallard/catalog/column_definition.h"
#include "mallard/storage/table/row_group.h"

namespace mallard {

/// Sentinel column id that makes a scan emit the 64-bit row identifier;
/// used by UPDATE/DELETE plans to address rows.
constexpr idx_t kRowIdColumn = static_cast<idx_t>(-1);

/// Cursor state of an in-progress table scan.
struct TableScanState {
  std::vector<idx_t> column_ids;
  std::vector<TableFilter> filters;
  idx_t row_group_index = 0;
  idx_t offset = 0;             // within the current row group
  bool zonemap_checked = false;  // for the current row group
  /// Exclusive upper bound on row groups this cursor may visit; the
  /// default (kInvalidIndex) scans to the end of the table. Morsel
  /// scans bound it to a single row group.
  idx_t max_row_group = kInvalidIndex;
  /// Salvage mode: quarantined row groups are skipped (and counted
  /// below) instead of failing the scan with kCorruption.
  bool salvage = false;
  idx_t salvage_skipped_groups = 0;
  idx_t salvage_skipped_rows = 0;
  /// Set when Scan returns false because of an error rather than
  /// exhaustion; callers must check it before treating false as EOF.
  Status error;
};

/// Per-table encoding statistics aggregated over all column segments
/// (PRAGMA storage_stats).
struct TableEncodingStats {
  idx_t segments_total = 0;
  idx_t segments_plain = 0;
  idx_t segments_dict = 0;
  idx_t segments_for = 0;
  idx_t logical_bytes = 0;  // bytes the plain representation would need
  idx_t encoded_bytes = 0;  // bytes the current representation holds
  idx_t dict_entries = 0;   // total dictionary entries
  idx_t dict_rows = 0;      // rows covered by dictionary segments
};

/// The physical storage of one table: an ordered list of row groups.
/// Provides transactional vectorized scans, bulk appends, bulk deletes
/// and per-column bulk updates — the combined OLAP & ETL workload of
/// paper section 2.
class DataTable {
 public:
  DataTable(std::string table_name, std::vector<ColumnDefinition> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDefinition>& columns() const { return columns_; }
  std::vector<TypeId> ColumnTypes() const;
  /// Index of a column by (case-insensitive) name, or kInvalidIndex.
  idx_t ColumnIndex(const std::string& name) const;

  /// Appends a chunk; rows become visible when `txn` commits.
  Status Append(Transaction* txn, const DataChunk& chunk);

  /// Begins a scan over `column_ids` (kRowIdColumn allowed) with optional
  /// zone-map filters.
  void InitializeScan(TableScanState* state, std::vector<idx_t> column_ids,
                      std::vector<TableFilter> filters = {}) const;

  /// Produces the next chunk of visible rows; `out` must be initialized
  /// with the scan's output types. Returns false when exhausted.
  bool Scan(const Transaction& txn, TableScanState* state,
            DataChunk* out) const;

  /// Deletes rows by row id (BIGINT vector). Returns rows newly deleted.
  Result<idx_t> Delete(Transaction* txn, const Vector& row_ids, idx_t count);

  /// Updates `column_indexes` of the addressed rows with `values`
  /// columns; values row i applies to row_ids row i.
  Status Update(Transaction* txn, const Vector& row_ids, idx_t count,
                const std::vector<idx_t>& column_indexes,
                const DataChunk& values);

  /// Number of rows visible to `txn` (scans version info; O(rows)).
  idx_t VisibleRowCount(const Transaction& txn) const;
  /// Fast upper bound of the physical row count (planner statistics).
  idx_t ApproxRowCount() const;
  /// Current number of row groups — the morsel count of a parallel scan.
  idx_t RowGroupCount() const;

  /// Garbage-collects undo chains across all row groups.
  void CleanupUpdates(uint64_t lowest_active_start);

  /// --- checkpoint load ----------------------------------------------------
  /// Appends the next row group from a verified checkpoint payload
  /// ([count u64][ncols u32][segments], RowGroup::Deserialize layout).
  /// `expected_rows` comes from the checkpoint directory entry and must
  /// match the payload's own row count.
  Status LoadCheckpointGroup(BinaryReader* reader, idx_t expected_rows);
  /// Appends a quarantined placeholder covering `rows` rows whose
  /// checkpoint payload failed verification. The slot is kept so later
  /// groups retain their row ids; scans over it fail with kCorruption
  /// unless salvage mode is on.
  void LoadQuarantinedGroup(idx_t rows, std::string reason);

  /// Corruption status naming the first quarantined row group, or OK.
  /// Checkpoints refuse to rewrite a table in this state — a checkpoint
  /// that silently dropped the quarantined rows would turn detected
  /// corruption into permanent data loss.
  Status FirstQuarantineError() const;
  idx_t QuarantinedGroupCount() const;

  /// Integrity scrub of one row group: encoding round-trip plus
  /// zone-map-versus-data verification. Quarantined groups report their
  /// quarantine reason as the error.
  Status ValidateGroup(idx_t index) const;

  idx_t MemoryUsage() const;

  /// Aggregates per-segment encoding statistics (PRAGMA storage_stats).
  TableEncodingStats EncodingStats() const;

 private:
  RowGroup* GetRowGroupForRow(idx_t row_id) const;

  std::string name_;
  std::vector<ColumnDefinition> columns_;
  std::vector<TypeId> types_;

  mutable std::shared_mutex row_groups_lock_;  // guards the list structure
  std::vector<std::unique_ptr<RowGroup>> row_groups_;
  std::mutex append_lock_;  // serializes appenders
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_TABLE_DATA_TABLE_H_
