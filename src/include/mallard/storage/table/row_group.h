#ifndef MALLARD_STORAGE_TABLE_ROW_GROUP_H_
#define MALLARD_STORAGE_TABLE_ROW_GROUP_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "mallard/storage/table/column_segment.h"
#include "mallard/storage/table/update_segment.h"
#include "mallard/transaction/transaction.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

/// A filter pushed into a table scan: `column <op> constant`. Checked
/// against zone maps to skip row groups (paper section 6: "skip
/// irrelevant blocks of rows during a scan").
struct TableFilter {
  idx_t column_index;
  CompareOp op;
  Value constant;
};

/// A horizontal partition of a table holding up to kRowGroupSize rows:
/// one ColumnSegment per column, lazily allocated MVCC version arrays
/// (inserted_by / deleted_by per row) and per-column undo chains.
/// A reader-writer lock serializes DML against scans.
class RowGroup {
 public:
  RowGroup(idx_t start, const std::vector<TypeId>& types);

  /// Builds a quarantined placeholder for a row group whose checkpoint
  /// payload failed verification. It holds no column data but remembers
  /// its row count so it keeps its positional slot: later groups keep
  /// their row ids, and salvage-mode scans can report exactly how many
  /// rows were skipped. Any attempt to read or mutate it fails with
  /// kCorruption carrying `reason`.
  static std::unique_ptr<RowGroup> Quarantined(idx_t start,
                                               const std::vector<TypeId>& types,
                                               idx_t count, std::string reason);

  idx_t start() const { return start_; }
  idx_t count() const { return count_; }
  idx_t Capacity() const { return kRowGroupSize; }
  const ColumnSegment& column(idx_t i) const { return *columns_[i]; }

  bool quarantined() const { return quarantined_; }
  const std::string& quarantine_reason() const { return quarantine_reason_; }

  std::shared_mutex& lock() { return lock_; }

  /// --- append path (caller holds unique lock) ---------------------------
  /// Appends up to `max_count` rows of `chunk` starting at `chunk_offset`;
  /// rows are tagged with the appending transaction and invisible to
  /// others until commit. Returns rows appended.
  idx_t Append(Transaction* txn, const DataChunk& chunk, idx_t chunk_offset,
               idx_t max_count);
  void CommitAppend(uint64_t commit_id, idx_t start, idx_t count);
  void RevertAppend(idx_t start, idx_t count);

  /// --- delete path (caller holds unique lock) ---------------------------
  /// Marks rows deleted by `txn`; skips rows already invisible; returns
  /// the number of rows newly deleted, or a conflict error.
  Result<idx_t> Delete(Transaction* txn, const uint32_t* rows, idx_t count,
                       std::vector<uint32_t>* deleted_rows);
  void CommitDelete(uint64_t commit_id, const std::vector<uint32_t>& rows);
  void RevertDelete(const std::vector<uint32_t>& rows);

  /// --- update path (caller holds unique lock) ---------------------------
  /// In-place update of one column; pre-images go into the undo chain.
  Status Update(Transaction* txn, idx_t column_index, const uint32_t* rows,
                const uint32_t* value_idx, idx_t count,
                const Vector& new_values);
  void RollbackUpdate(idx_t column_index, UpdateInfo* info);

  /// --- read path (caller holds shared lock) -----------------------------
  /// Row visibility for `txn`.
  bool RowIsVisible(const Transaction& txn, idx_t row) const;
  /// Zone-map check of all filters; false = whole row group skippable.
  /// Conservative when the column has uncommitted updates.
  bool CheckZonemaps(const std::vector<TableFilter>& filters) const;
  /// Reads the snapshot value of one row/column for `txn`.
  Value FetchValue(const Transaction& txn, idx_t column_index,
                   idx_t row) const;
  /// Reads a window [offset, offset+count) of a column (base + undo
  /// reconstruction) into `out`.
  void ReadColumnWindow(const Transaction& txn, idx_t column_index,
                        idx_t offset, idx_t count, Vector* out) const;

  const UpdateSegment* update_segment(idx_t col) const {
    return updates_[col].get();
  }

  /// Garbage-collects undo chains (called with unique lock).
  void CleanupUpdates(uint64_t lowest_active_start);

  /// --- checkpoint --------------------------------------------------------
  /// Serializes only rows visible at checkpoint time (no active
  /// transactions), compacting away deleted/aborted rows.
  void Serialize(BinaryWriter* writer) const;
  static Result<std::unique_ptr<RowGroup>> Deserialize(
      BinaryReader* reader, idx_t start, const std::vector<TypeId>& types);

  idx_t MemoryUsage() const;

  /// --- integrity scrub ----------------------------------------------------
  /// Verifies this group's invariants: every column round-trips through
  /// its serializer (which re-validates dictionary sortedness, packed
  /// widths and length fields on the way back in) and the zone-map
  /// statistics agree with the stored data (min/max bound every live
  /// value, null_count matches the validity mask). Quarantined groups
  /// report their quarantine reason. Takes the shared lock itself.
  Status ValidateIntegrity() const;

 private:
  void EnsureInsertedBy();
  void EnsureDeletedBy();

  idx_t start_;
  std::vector<TypeId> types_;
  idx_t count_ = 0;
  std::vector<std::unique_ptr<ColumnSegment>> columns_;
  std::vector<std::unique_ptr<UpdateSegment>> updates_;  // lazy per column
  /// Version of the inserting transaction per row; null = all committed.
  std::unique_ptr<std::vector<uint64_t>> inserted_by_;
  /// Version of the deleting transaction per row; null = none deleted.
  std::unique_ptr<std::vector<uint64_t>> deleted_by_;
  /// Set when the group's checkpoint payload failed verification: the
  /// placeholder has no column data and every access must error rather
  /// than fabricate rows.
  bool quarantined_ = false;
  std::string quarantine_reason_;
  mutable std::shared_mutex lock_;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_TABLE_ROW_GROUP_H_
