#ifndef MALLARD_STORAGE_TABLE_UPDATE_SEGMENT_H_
#define MALLARD_STORAGE_TABLE_UPDATE_SEGMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/common/value.h"
#include "mallard/storage/table/column_segment.h"
#include "mallard/transaction/transaction.h"
#include "mallard/vector/vector.h"

namespace mallard {

/// One undo record: the pre-images of a set of rows in one column of one
/// row group, created by a single update. `version` is the writer's
/// transaction id until commit, then its commit id. Chained newest→oldest.
struct UpdateInfo {
  uint64_t version = 0;
  std::vector<uint32_t> rows;          // offsets within the row group
  std::vector<uint8_t> old_data;       // packed fixed-width pre-images
  std::vector<uint8_t> old_valid;      // 1 = was valid
  std::vector<std::string> old_strings;  // pre-images for VARCHAR columns
  std::unique_ptr<UpdateInfo> next;    // older entry
};

/// Undo chain for one (row group, column) pair, implementing the paper's
/// "update in place, keep previous states in a separate undo buffer"
/// design. Readers reconstruct their snapshot by applying the pre-images
/// of every update that is invisible to them, newest first.
class UpdateSegment {
 public:
  explicit UpdateSegment(TypeId type) : type_(type), width_(TypeSize(type)) {}

  bool HasUpdates() const { return head_ != nullptr; }

  /// Write-write conflict check: fails if any chained update that is not
  /// visible to `txn` touches one of `rows`.
  Status CheckConflict(const Transaction& txn, const uint32_t* rows,
                       idx_t count) const;

  /// Applies `new_values[value_idx[i]]` to row `rows[i]` in place,
  /// saving pre-images. Returns the created undo node (owned by the
  /// chain) so the transaction can stamp it at commit.
  UpdateInfo* Update(const Transaction& txn, ColumnSegment* column,
                     const uint32_t* rows, const uint32_t* value_idx,
                     idx_t count, const Vector& new_values);

  /// Overwrites rows of `out` (holding base data for row-group rows
  /// [start_row, start_row+count)) with pre-images of updates invisible
  /// to `txn`.
  void ApplyUpdates(const Transaction& txn, idx_t start_row, idx_t count,
                    Vector* out) const;

  /// Pre-image of one row as seen by `txn` (boxed; used by row fetch).
  Value GetValueForTransaction(const Transaction& txn,
                               const ColumnSegment& column, idx_t row) const;

  /// Rollback: restores pre-images of `info` into the column and unlinks
  /// the node from the chain.
  void Rollback(ColumnSegment* column, UpdateInfo* info);

  /// Frees undo nodes no active transaction can need (version is a commit
  /// id at or below the oldest active snapshot).
  void Cleanup(uint64_t lowest_active_start);

  idx_t ChainLength() const;
  idx_t MemoryUsage() const;

 private:
  void RestoreRowFromInfo(const UpdateInfo& info, idx_t info_idx, idx_t row,
                          Vector* out, idx_t out_idx) const;

  TypeId type_;
  idx_t width_;
  std::unique_ptr<UpdateInfo> head_;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_TABLE_UPDATE_SEGMENT_H_
