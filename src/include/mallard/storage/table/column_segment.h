#ifndef MALLARD_STORAGE_TABLE_COLUMN_SEGMENT_H_
#define MALLARD_STORAGE_TABLE_COLUMN_SEGMENT_H_

#include <memory>
#include <vector>

#include "mallard/common/arena.h"
#include "mallard/common/serializer.h"
#include "mallard/common/value.h"
#include "mallard/vector/vector.h"

namespace mallard {

/// Comparison operator shared between table filters, zone maps and the
/// expression layer.
enum class CompareOp : uint8_t {
  kEqual,
  kNotEqual,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
};

/// Column data for one row group: a fixed-capacity typed array plus
/// validity bitmap, string heap and zone-map statistics (min/max/null
/// count). Columns are stored independently so that updating one column
/// never rewrites the others (paper section 2).
class ColumnSegment {
 public:
  explicit ColumnSegment(TypeId type);

  TypeId type() const { return type_; }

  /// Appends `count` rows from `source[source_offset..]` at
  /// `target_offset`; updates zone maps.
  void Append(const Vector& source, idx_t source_offset, idx_t target_offset,
              idx_t count);

  /// Copies rows [offset, offset+count) into `out` rows [0, count).
  void Read(idx_t offset, idx_t count, Vector* out) const;

  /// Boxed access for the undo machinery and tests.
  Value GetValue(idx_t row) const;

  /// In-place single-value overwrite (update path); widens zone maps.
  void WriteRow(idx_t row, const Vector& source, idx_t source_row);

  bool RowIsValid(idx_t row) const {
    return (validity_[row / 64] >> (row % 64)) & 1;
  }

  /// Zone-map check: can any row in this segment satisfy
  /// `value <op> constant`? False means the row group can be skipped.
  bool CheckZonemap(CompareOp op, const Value& constant) const;

  const Value& stats_min() const { return min_; }
  const Value& stats_max() const { return max_; }
  idx_t null_count() const { return null_count_; }

  /// Serializes the first `count` rows.
  void Serialize(BinaryWriter* writer, idx_t count) const;
  static Result<std::unique_ptr<ColumnSegment>> Deserialize(
      BinaryReader* reader, TypeId type, idx_t count);

  /// Approximate heap footprint (governor accounting).
  idx_t MemoryUsage() const;

 private:
  void SetValid(idx_t row, bool valid) {
    if (valid) {
      validity_[row / 64] |= uint64_t(1) << (row % 64);
    } else {
      validity_[row / 64] &= ~(uint64_t(1) << (row % 64));
    }
  }
  void MergeStatsValue(const Value& v);

  friend class UpdateSegment;

  TypeId type_;
  idx_t width_;
  std::unique_ptr<uint8_t[]> data_;
  std::vector<uint64_t> validity_;
  ArenaAllocator heap_;  // VARCHAR payloads

  Value min_;
  Value max_;
  idx_t null_count_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_TABLE_COLUMN_SEGMENT_H_
