#ifndef MALLARD_STORAGE_TABLE_COLUMN_SEGMENT_H_
#define MALLARD_STORAGE_TABLE_COLUMN_SEGMENT_H_

#include <atomic>
#include <memory>
#include <vector>

#include "mallard/common/arena.h"
#include "mallard/common/serializer.h"
#include "mallard/common/value.h"
#include "mallard/vector/vector.h"

namespace mallard {

/// Comparison operator shared between table filters, zone maps and the
/// expression layer.
enum class CompareOp : uint8_t {
  kEqual,
  kNotEqual,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
};

/// Physical representation of one column segment's data.
enum class SegmentEncoding : uint8_t {
  kPlain = 0,       // typed array + string heap (the append-time form)
  kDictionary = 1,  // sorted distinct values + bit-packed codes
  kFor = 2,         // frame of reference: base + bit-packed deltas (ints)
};

const char* SegmentEncodingToString(SegmentEncoding encoding);

/// Process-wide encoding event counters surfaced by PRAGMA storage_stats.
struct SegmentEncodingCounters {
  static std::atomic<uint64_t> encodes;         // segments encoded
  static std::atomic<uint64_t> decodes;         // EnsurePlain fallbacks
  static std::atomic<uint64_t> filter_windows;  // code-space filter calls
};

/// Column data for one row group. Starts life as a plain fixed-capacity
/// typed array plus validity bitmap, string heap and zone-map statistics
/// (min/max/null count); once the row group fills (or at checkpoint) the
/// segment is re-encoded — dictionary for VARCHAR and low-cardinality
/// integers, frame-of-reference bit-packing for narrow-range integers —
/// and the plain array is released. Scans read the encoded form directly
/// (dictionary vectors, code-space filters); updates transparently decode
/// back to plain via EnsurePlain(). Columns are stored independently so
/// that updating one column never rewrites the others (paper section 2).
class ColumnSegment {
 public:
  explicit ColumnSegment(TypeId type);

  TypeId type() const { return type_; }

  /// Appends `count` rows from `source[source_offset..]` at
  /// `target_offset`; updates zone maps. Decodes first if encoded.
  void Append(const Vector& source, idx_t source_offset, idx_t target_offset,
              idx_t count);

  /// Copies rows [offset, offset+count) into `out` rows [0, count).
  /// Dictionary VARCHAR segments hand out codes + the shared dictionary
  /// instead of materializing strings.
  void Read(idx_t offset, idx_t count, Vector* out) const;

  /// Gathers rows {offset + sel[i]} into `out` rows [0, count) — the
  /// late-materialization read after a code-space filter.
  void ReadSelection(idx_t offset, const uint32_t* sel, idx_t count,
                     Vector* out) const;

  /// Boxed access for the undo machinery and tests.
  Value GetValue(idx_t row) const;

  /// In-place single-value overwrite (update path); widens zone maps.
  /// Decodes the segment back to plain first if needed.
  void WriteRow(idx_t row, const Vector& source, idx_t source_row);

  bool RowIsValid(idx_t row) const {
    return (validity_[row / 64] >> (row % 64)) & 1;
  }

  /// Zone-map check: can any row in this segment satisfy
  /// `value <op> constant`? False means the row group can be skipped.
  bool CheckZonemap(CompareOp op, const Value& constant) const;

  /// Row-exact filter over window rows: keeps sel[i] (window-relative,
  /// absolute row = offset + sel[i]) iff `value <op> constant` is true,
  /// compacting `sel` in place; returns the surviving count. On encoded
  /// segments the constant is translated into code space once and rows
  /// are compared without materializing values. NULL rows never pass.
  /// Requires `constant` to be non-NULL and of this column's type.
  idx_t FilterWindow(CompareOp op, const Value& constant, idx_t offset,
                     uint32_t* sel, idx_t count) const;

  const Value& stats_min() const { return min_; }
  const Value& stats_max() const { return max_; }
  idx_t null_count() const { return null_count_; }

  /// --- encoding ----------------------------------------------------------
  /// Picks and applies an encoding for the first `row_count` rows (called
  /// when a row group fills and at checkpoint compaction). Honors the
  /// MALLARD_FORCE_ENCODING={plain,dict,for} override; no-op if already
  /// encoded or nothing would be saved.
  void FinalizeEncoding(idx_t row_count);
  /// Decodes back to the plain representation (update/append fallback).
  void EnsurePlain();

  SegmentEncoding encoding() const { return encoding_; }
  /// Number of dictionary entries (0 unless dictionary-encoded).
  idx_t dict_entry_count() const;
  /// Bytes the current representation holds for `rows` rows.
  idx_t EncodedBytes(idx_t rows) const;
  /// Bytes the plain representation would hold for `rows` rows.
  idx_t LogicalBytes(idx_t rows) const;

  /// Serializes the first `count` rows (encoded segments round-trip
  /// their encoded form).
  void Serialize(BinaryWriter* writer, idx_t count) const;
  static Result<std::unique_ptr<ColumnSegment>> Deserialize(
      BinaryReader* reader, TypeId type, idx_t count);

  /// Approximate heap footprint (governor accounting).
  idx_t MemoryUsage() const;

 private:
  void SetValid(idx_t row, bool valid) {
    if (valid) {
      validity_[row / 64] |= uint64_t(1) << (row % 64);
    } else {
      validity_[row / 64] &= ~(uint64_t(1) << (row % 64));
    }
  }
  void MergeStatsValue(const Value& v);

  /// Reads a plain (decoded) integer-family value as int64.
  int64_t PlainIntAt(idx_t row) const;
  /// Decoded integer-family value of an encoded segment as int64.
  int64_t EncodedIntAt(idx_t row) const;
  void EncodeDictionaryVarchar(idx_t rows,
                               const std::vector<StringRef>& sorted_distinct);
  void EncodeDictionaryInt(idx_t rows,
                           const std::vector<int64_t>& sorted_distinct);
  void EncodeFor(idx_t rows, int64_t base, uint8_t bits);
  void ReleasePlain();

  friend class UpdateSegment;

  TypeId type_;
  idx_t width_;
  std::unique_ptr<uint8_t[]> data_;
  std::vector<uint64_t> validity_;
  ArenaAllocator heap_;  // VARCHAR payloads (plain representation)

  /// --- encoded representation (replaces data_/heap_ while active) -------
  SegmentEncoding encoding_ = SegmentEncoding::kPlain;
  idx_t encoded_rows_ = 0;    // rows covered by the encoded form
  uint8_t code_bits_ = 0;     // width of packed codes/deltas
  int64_t for_base_ = 0;      // frame of reference
  std::vector<uint8_t> packed_;  // bit-packed codes/deltas (padded)
  std::shared_ptr<VectorDictionary> dict_;  // VARCHAR dictionary (shared)
  std::vector<int64_t> int_dict_;           // integer dictionary (sorted)
  idx_t logical_heap_bytes_ = 0;  // plain-equivalent string bytes

  Value min_;
  Value max_;
  idx_t null_count_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_TABLE_COLUMN_SEGMENT_H_
