#ifndef MALLARD_STORAGE_BLOCK_MANAGER_H_
#define MALLARD_STORAGE_BLOCK_MANAGER_H_

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "mallard/common/constants.h"
#include "mallard/common/result.h"
#include "mallard/storage/file_handle.h"

namespace mallard {

/// Identifier of a 256KB block in the database file.
using block_id_t = int64_t;
constexpr block_id_t kInvalidBlock = -1;

/// Usable payload bytes per block (kBlockSize minus the leading CRC32C).
constexpr uint64_t kBlockPayloadSize = kBlockSize - sizeof(uint32_t);

/// Manages the single-file database format (paper section 6):
///
///   [header 0][header 1][data block 0][data block 1]...
///
/// The two header slots alternate; each carries an iteration counter and a
/// checksum, and the valid header with the highest iteration wins. A
/// checkpoint writes new data blocks first and then flips the header with
/// the new root pointer — the atomic commit step. Every block (header and
/// data) is prefixed with a CRC32C over its payload, verified on every
/// read, so silent corruption of persistent storage is detected rather
/// than propagated (paper section 3).
class BlockManager {
 public:
  struct DatabaseHeader {
    uint64_t iteration = 0;
    block_id_t meta_block = kInvalidBlock;  // catalog chain head
    uint64_t block_count = 0;               // data blocks in the file
  };

  /// Opens or creates the database file. `created` reports whether a new
  /// file was initialized.
  static Result<std::unique_ptr<BlockManager>> Open(const std::string& path,
                                                    bool enable_checksums,
                                                    bool* created);

  /// Reads a data block payload into `buffer` (kBlockPayloadSize bytes),
  /// verifying the checksum. Returns Corruption status on mismatch.
  Status ReadBlock(block_id_t id, uint8_t* buffer);

  /// Writes a data block payload (kBlockPayloadSize bytes), stamping the
  /// checksum.
  Status WriteBlock(block_id_t id, const uint8_t* buffer);

  /// Allocates a block id (reusing freed blocks first).
  block_id_t AllocateBlock();

  /// Marks every block except `live` as free for reuse. Used by the
  /// checkpointer after rewriting all live data.
  void SetLiveBlocks(const std::set<block_id_t>& live);

  /// Atomically installs a new root: fsync data, write alternate header
  /// slot with incremented iteration, fsync again.
  Status WriteHeader(block_id_t meta_block);

  const DatabaseHeader& header() const { return header_; }
  uint64_t TotalBlocks() const { return header_.block_count; }
  idx_t FreeBlockCount() const { return free_blocks_.size(); }
  bool checksums_enabled() const { return enable_checksums_; }

  /// Single-read checksum probe for the integrity scrubber: verifies the
  /// stored CRC of `id` without the read-path retry loop (the scrubber
  /// wants an honest snapshot of on-disk state, not a healed view).
  Status VerifyBlock(block_id_t id);

  /// Snapshot of the block ids currently reachable from the root (all
  /// allocated blocks minus the free list) — the scrubber's walk list.
  std::vector<block_id_t> LiveBlocks();

  /// Direct file corruption helper for resilience tests/demos: flips one
  /// bit inside the stored payload of `id`.
  Status CorruptBlockOnDisk(block_id_t id, uint64_t bit_index);

 private:
  BlockManager(std::unique_ptr<FileHandle> file, bool enable_checksums)
      : file_(std::move(file)), enable_checksums_(enable_checksums) {}

  uint64_t BlockOffset(block_id_t id) const {
    return (static_cast<uint64_t>(id) + 2) * kBlockSize;
  }

  Status ReadHeaderSlot(int slot, DatabaseHeader* header, bool* valid);
  Status WriteHeaderSlot(int slot, const DatabaseHeader& header);

  std::unique_ptr<FileHandle> file_;
  bool enable_checksums_;
  DatabaseHeader header_;
  std::set<block_id_t> free_blocks_;
  std::mutex mutex_;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_BLOCK_MANAGER_H_
