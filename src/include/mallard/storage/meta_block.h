#ifndef MALLARD_STORAGE_META_BLOCK_H_
#define MALLARD_STORAGE_META_BLOCK_H_

#include <memory>
#include <set>
#include <vector>

#include "mallard/common/serializer.h"
#include "mallard/storage/block_manager.h"

namespace mallard {

/// Writes an arbitrarily long byte stream into a chain of blocks. Each
/// block payload is [next_block i64][data_len u64][bytes...]. Used by the
/// checkpointer to persist the catalog and table data.
class MetaBlockWriter {
 public:
  explicit MetaBlockWriter(BlockManager* blocks) : blocks_(blocks) {}

  BinaryWriter& writer() { return writer_; }

  /// Flushes the accumulated buffer into freshly allocated blocks.
  /// Returns the head block id and records all blocks used.
  Result<block_id_t> Flush();

  const std::set<block_id_t>& blocks_used() const { return blocks_used_; }

 private:
  BlockManager* blocks_;
  BinaryWriter writer_;
  std::set<block_id_t> blocks_used_;
};

/// Reads a block chain written by MetaBlockWriter back into memory.
class MetaBlockReader {
 public:
  explicit MetaBlockReader(BlockManager* blocks) : blocks_(blocks) {}

  /// Loads the chain starting at `head`; exposes a BinaryReader over it.
  Status Load(block_id_t head);

  BinaryReader& reader() { return *reader_; }
  const std::set<block_id_t>& blocks_visited() const {
    return blocks_visited_;
  }

 private:
  BlockManager* blocks_;
  std::vector<uint8_t> data_;
  std::unique_ptr<BinaryReader> reader_;
  std::set<block_id_t> blocks_visited_;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_META_BLOCK_H_
