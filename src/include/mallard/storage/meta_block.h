#ifndef MALLARD_STORAGE_META_BLOCK_H_
#define MALLARD_STORAGE_META_BLOCK_H_

#include <memory>
#include <set>
#include <vector>

#include "mallard/common/serializer.h"
#include "mallard/storage/block_manager.h"

namespace mallard {

/// Writes an arbitrarily long byte stream into a chain of blocks. Each
/// block payload is [next_block i64][data_len u64][bytes...]. Used by the
/// checkpointer to persist the catalog and table data.
class MetaBlockWriter {
 public:
  explicit MetaBlockWriter(BlockManager* blocks) : blocks_(blocks) {}

  BinaryWriter& writer() { return writer_; }

  /// Flushes the accumulated buffer into freshly allocated blocks.
  /// Returns the head block id and records all blocks used.
  Result<block_id_t> Flush();

  const std::set<block_id_t>& blocks_used() const { return blocks_used_; }

 private:
  BlockManager* blocks_;
  BinaryWriter writer_;
  std::set<block_id_t> blocks_used_;
};

/// Streaming variant of MetaBlockWriter used by the online checkpointer:
/// instead of buffering the whole checkpoint image in memory, completed
/// chain blocks are written out as soon as the staged buffer fills one,
/// so peak memory is one block plus whatever the caller stages between
/// FlushFull() calls. Produces the exact same chain format. Checkpoint
/// block writes are a kCheckpointWrite fault/kill site.
class MetaBlockStreamWriter {
 public:
  explicit MetaBlockStreamWriter(BlockManager* blocks) : blocks_(blocks) {}

  BinaryWriter& writer() { return writer_; }

  /// Writes every complete chain block currently staged. Call after each
  /// bounded unit of serialization (e.g. one row group).
  Status FlushFull();

  /// Writes the final partial block and terminates the chain. Returns
  /// the head block id. No further writes are allowed afterwards.
  Result<block_id_t> Finish();

  const std::set<block_id_t>& blocks_used() const { return blocks_used_; }

 private:
  Status WriteChainBlock(uint64_t len, block_id_t id, block_id_t next);
  block_id_t Allocate();

  BlockManager* blocks_;
  BinaryWriter writer_;
  std::set<block_id_t> blocks_used_;
  block_id_t head_ = kInvalidBlock;
  block_id_t current_ = kInvalidBlock;  // reserved id of the next block
  bool finished_ = false;
};

/// Reads a block chain written by MetaBlockWriter back into memory.
class MetaBlockReader {
 public:
  explicit MetaBlockReader(BlockManager* blocks) : blocks_(blocks) {}

  /// Loads the chain starting at `head`; exposes a BinaryReader over it.
  Status Load(block_id_t head);

  BinaryReader& reader() { return *reader_; }
  /// Raw chain contents — lets callers checksum a payload end-to-end
  /// (the per-block CRCs cover blocks, not the reassembled stream).
  const std::vector<uint8_t>& data() const { return data_; }
  const std::set<block_id_t>& blocks_visited() const {
    return blocks_visited_;
  }

 private:
  BlockManager* blocks_;
  std::vector<uint8_t> data_;
  std::unique_ptr<BinaryReader> reader_;
  std::set<block_id_t> blocks_visited_;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_META_BLOCK_H_
