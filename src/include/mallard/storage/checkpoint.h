#ifndef MALLARD_STORAGE_CHECKPOINT_H_
#define MALLARD_STORAGE_CHECKPOINT_H_

#include "mallard/catalog/catalog.h"
#include "mallard/storage/block_manager.h"
#include "mallard/transaction/transaction.h"

namespace mallard {

class TransactionManager;
class ResourceGovernor;

/// Writes a full checkpoint: catalog + all table data into fresh blocks,
/// then atomically flips the database header to the new root (paper
/// section 6: "checkpoints first write new blocks ... and as a last step
/// update the root pointer and the free list in the header atomically").
///
/// The checkpoint is *online*: it scans table data through `snapshot`
/// (MVCC visibility), so concurrent readers and in-flight writers are
/// unaffected. The only thing that must stand still is the committed
/// state itself — the caller must hold a TransactionManager::CommitBlock
/// (verified via `txns->CommitsBlocked()`; an Internal error is returned
/// otherwise, making the exclusive-access contract a checked
/// precondition instead of an implicit assumption).
///
/// Staging memory is bounded by `governor->EffectiveMemoryBudget()`:
/// rows are re-compacted into serialized groups whose size shrinks under
/// memory pressure, and completed meta blocks stream to disk eagerly.
Status WriteCheckpoint(Catalog* catalog, BlockManager* blocks,
                       TransactionManager* txns, const Transaction& snapshot,
                       const ResourceGovernor* governor);

/// Loads a checkpoint written by WriteCheckpoint into the catalog.
Status LoadCheckpoint(Catalog* catalog, BlockManager* blocks);

}  // namespace mallard

#endif  // MALLARD_STORAGE_CHECKPOINT_H_
