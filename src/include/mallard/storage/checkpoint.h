#ifndef MALLARD_STORAGE_CHECKPOINT_H_
#define MALLARD_STORAGE_CHECKPOINT_H_

#include "mallard/catalog/catalog.h"
#include "mallard/storage/block_manager.h"

namespace mallard {

/// Writes a full checkpoint: catalog + all table data into fresh blocks,
/// then atomically flips the database header to the new root (paper
/// section 6: "checkpoints first write new blocks ... and as a last step
/// update the root pointer and the free list in the header atomically").
/// Returns the set of live blocks after the checkpoint.
Status WriteCheckpoint(Catalog* catalog, BlockManager* blocks);

/// Loads a checkpoint written by WriteCheckpoint into the catalog.
Status LoadCheckpoint(Catalog* catalog, BlockManager* blocks);

}  // namespace mallard

#endif  // MALLARD_STORAGE_CHECKPOINT_H_
