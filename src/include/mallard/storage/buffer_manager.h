#ifndef MALLARD_STORAGE_BUFFER_MANAGER_H_
#define MALLARD_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mallard/common/constants.h"
#include "mallard/common/result.h"
#include "mallard/compression/codec.h"
#include "mallard/resilience/memtest.h"
#include "mallard/storage/file_handle.h"

namespace mallard {

class BufferManager;

/// One buffer-manager-owned allocation. May be resident (data() valid) or
/// spilled to the temporary file; Pin() brings it back.
class ManagedBuffer {
 public:
  ManagedBuffer(BufferManager* manager, uint64_t size, bool spillable)
      : manager_(manager), size_(size), spillable_(spillable) {}
  ~ManagedBuffer();

  ManagedBuffer(const ManagedBuffer&) = delete;
  ManagedBuffer& operator=(const ManagedBuffer&) = delete;

  uint64_t size() const { return size_; }
  bool resident() const { return data_ != nullptr; }

 private:
  friend class BufferManager;
  friend class BufferHandle;

  BufferManager* manager_;
  uint64_t size_;
  bool spillable_;
  std::unique_ptr<uint8_t[]> data_;
  int pin_count_ = 0;
  uint64_t spill_offset_ = ~uint64_t(0);
  /// Bytes of the current on-disk copy (== size_ when uncompressed).
  uint64_t spill_bytes_ = 0;
  /// CRC32C of the on-disk copy, stamped at spill time and verified on
  /// every reload: a bit flip in the temp file (DRAM on the write path,
  /// media at rest) surfaces as kCorruption instead of wrong rows.
  uint32_t spill_crc_ = 0;
  /// Codec the current on-disk copy was written with.
  CompressionLevel spill_level_ = CompressionLevel::kNone;
  uint64_t lru_tick_ = 0;
  // True while the resident contents differ from the spill-file copy
  // (fresh allocations are dirty; a reload makes the copies equal). A
  // clean eviction whose spill slot is still valid skips the write.
  bool dirty_ = true;
};

/// RAII pin on a ManagedBuffer. While a handle exists the buffer is
/// resident and its data pointer is stable.
class BufferHandle {
 public:
  BufferHandle() = default;
  BufferHandle(BufferManager* manager, std::shared_ptr<ManagedBuffer> buffer)
      : manager_(manager), buffer_(std::move(buffer)) {}
  ~BufferHandle() { Release(); }

  BufferHandle(const BufferHandle&) = delete;
  BufferHandle& operator=(const BufferHandle&) = delete;
  BufferHandle(BufferHandle&& other) noexcept { *this = std::move(other); }
  BufferHandle& operator=(BufferHandle&& other) noexcept;

  explicit operator bool() const { return buffer_ != nullptr; }
  uint8_t* data() { return buffer_->data_.get(); }
  const uint8_t* data() const { return buffer_->data_.get(); }
  uint64_t size() const { return buffer_->size(); }

  /// The underlying buffer; hold this to re-Pin later after Release.
  const std::shared_ptr<ManagedBuffer>& buffer() const { return buffer_; }

  /// Unpins early (also done by the destructor).
  void Release();

  /// Marks the buffer's contents as modified since the last spill, so a
  /// future eviction rewrites the spill-file copy instead of reusing it.
  /// Call after writing through data() on a re-pinned buffer.
  void MarkDirty();

 private:
  BufferManager* manager_ = nullptr;
  std::shared_ptr<ManagedBuffer> buffer_;
};

/// Statistics snapshot used by benches and the resource governor.
struct BufferManagerStats {
  uint64_t memory_used = 0;
  uint64_t memory_limit = 0;
  uint64_t peak_memory = 0;
  uint64_t spill_count = 0;        // spill-file writes
  uint64_t spilled_bytes = 0;      // cumulative bytes written to the spill file
  uint64_t unspill_count = 0;      // spill-file reads (reloads)
  uint64_t eviction_count = 0;     // evictions (>= spill_count: clean
                                   // re-evictions skip the write)
  uint64_t spilled_bytes_now = 0;  // bytes currently evicted to disk
  uint64_t spill_compressed_count = 0;  // spill writes that compressed
  uint64_t spill_saved_bytes = 0;  // I/O bytes avoided by compression
  uint64_t quarantined_allocations = 0;
  uint64_t quarantined_bytes = 0;
  uint64_t alloc_tests_run = 0;
};

/// Buffer manager: enforces the database memory cap (paper section 4 —
/// the embedded DBMS must not starve the host application) by spilling
/// unpinned buffers to a temporary file, and integrates allocation-time
/// memory testing with quarantining of regions that fail (the mitigation
/// the paper proposes in section 3).
class BufferManager {
 public:
  /// `temp_path` is the spill file location ("" = anonymous file in /tmp).
  BufferManager(uint64_t memory_limit, std::string temp_path);
  ~BufferManager();

  /// Allocates a pinned buffer of `size` bytes. Spillable buffers can be
  /// evicted to disk while unpinned; non-spillable ones always stay
  /// resident (used for tiny control structures).
  Result<BufferHandle> Allocate(uint64_t size, bool spillable = true);

  /// Re-pins a buffer, reloading it from the spill file if necessary.
  Result<BufferHandle> Pin(const std::shared_ptr<ManagedBuffer>& buffer);

  void SetMemoryLimit(uint64_t limit);
  uint64_t memory_limit() const { return memory_limit_.load(); }
  uint64_t memory_used() const { return memory_used_.load(); }
  BufferManagerStats GetStats() const;
  void ResetPeak();

  /// Installs the policy that picks a compression level for spill
  /// writes (typically the governor's pressure staircase: none under
  /// 50% application memory pressure, RLE under 75%, LZ above). Spill
  /// slots stay full-size — the saving is I/O bytes, not file footprint
  /// — and LoadBuffer transparently decompresses.
  void SetSpillCompression(std::function<CompressionLevel()> chooser) {
    std::lock_guard<std::mutex> lock(mutex_);
    spill_compression_ = std::move(chooser);
  }

  /// Enables the fast walking-bits screen on every new allocation.
  void EnableAllocationTesting(bool enable) { test_on_alloc_ = enable; }
  /// Probability that the simulated hardware hands us a bad region on
  /// allocation (drives quarantine testing; 0 = healthy hardware).
  void SetSimulatedBadRegionProbability(double p, int faults_per_region = 3);

  /// Runs moving inversions over all currently unpinned resident buffers
  /// (the paper's "periodically test buffers" proposal). Pinned buffers
  /// are skipped; contents are saved and restored around the test.
  MemtestResult TestIdleBuffers(uint64_t pattern, int iterations);

 private:
  friend class ManagedBuffer;
  friend class BufferHandle;

  void Unpin(ManagedBuffer* buffer);
  void OnDestroy(ManagedBuffer* buffer);
  void MarkDirty(ManagedBuffer* buffer);
  /// Evicts unpinned buffers until `needed` bytes fit under the limit.
  /// Must hold mutex_.
  Status EvictUntil(uint64_t needed);
  Status SpillBuffer(ManagedBuffer* buffer);
  Status LoadBuffer(ManagedBuffer* buffer);
  Result<std::unique_ptr<uint8_t[]>> AllocateTested(uint64_t size);
  Status EnsureSpillFile();

  mutable std::mutex mutex_;
  std::atomic<uint64_t> memory_limit_;
  std::atomic<uint64_t> memory_used_{0};
  uint64_t peak_memory_ = 0;
  std::string temp_path_;
  std::unique_ptr<FileHandle> spill_file_;
  uint64_t spill_file_size_ = 0;
  std::map<uint64_t, std::vector<uint64_t>> free_spill_slots_;
  std::list<ManagedBuffer*> evictable_;  // LRU order, front = oldest
  uint64_t lru_counter_ = 0;
  std::function<CompressionLevel()> spill_compression_;

  bool test_on_alloc_ = false;
  double bad_region_probability_ = 0.0;
  int faults_per_region_ = 3;
  uint64_t rng_state_ = 0x9E3779B97f4A7C15ULL;
  // Regions that failed the allocation-time memory test: owned here so
  // they are never reused (and never reported as leaked).
  std::vector<std::unique_ptr<uint8_t[]>> quarantined_regions_;

  BufferManagerStats stats_;
};

}  // namespace mallard

#endif  // MALLARD_STORAGE_BUFFER_MANAGER_H_
