#ifndef MALLARD_STORAGE_FILE_HANDLE_H_
#define MALLARD_STORAGE_FILE_HANDLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mallard/common/result.h"
#include "mallard/common/status.h"

namespace mallard {

/// RAII wrapper over a POSIX file descriptor with positional IO.
/// All database file and WAL access goes through this class; it is also
/// the hook point for torn-write and fsync fault injection.
class FileHandle {
 public:
  enum Flags : uint8_t {
    kRead = 1,
    kWrite = 2,
    kCreate = 4,
    kTruncate = 8,
  };

  /// Opens (optionally creating) `path`.
  static Result<std::unique_ptr<FileHandle>> Open(const std::string& path,
                                                  uint8_t flags);

  ~FileHandle();
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  /// Reads exactly `len` bytes at `offset`.
  Status Read(void* buffer, uint64_t len, uint64_t offset);
  /// Writes exactly `len` bytes at `offset`. Subject to torn-write
  /// fault injection (only a prefix is persisted when the fault fires).
  Status Write(const void* buffer, uint64_t len, uint64_t offset);
  /// Appends at the end of file, returns the offset written at.
  Result<uint64_t> Append(const void* buffer, uint64_t len);
  /// Flushes file contents to stable storage.
  Status Sync();
  /// Current file size in bytes.
  Result<uint64_t> Size() const;
  /// Truncates the file to `size` bytes.
  Status Truncate(uint64_t size);

  const std::string& path() const { return path_; }

 private:
  FileHandle(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_;
  std::string path_;
};

/// Returns true if a file exists at `path`.
bool FileExists(const std::string& path);

/// Removes the file at `path` if it exists.
void RemoveFile(const std::string& path);

}  // namespace mallard

#endif  // MALLARD_STORAGE_FILE_HANDLE_H_
