#ifndef MALLARD_PLANNER_PLANNER_H_
#define MALLARD_PLANNER_PLANNER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "mallard/catalog/catalog.h"
#include "mallard/execution/physical_join.h"
#include "mallard/execution/physical_operator.h"
#include "mallard/parser/ast.h"

namespace mallard {

class ResourceGovernor;

/// A bound, optimized, executable plan plus its result schema.
struct PreparedPlan {
  std::unique_ptr<PhysicalOperator> plan;
  std::vector<std::string> names;
  std::vector<TypeId> types;
};

/// Binder + optimizer + physical planner. Translates parsed statements
/// into physical operator trees, performing name resolution, type
/// coercion, constant folding, projection pruning into scans, zone-map
/// filter extraction, equi-join detection from WHERE conjuncts, greedy
/// join ordering, and governor-driven hash-vs-merge join selection
/// (paper section 4).
class Planner {
 public:
  Planner(Catalog* catalog, ResourceGovernor* governor)
      : catalog_(catalog), governor_(governor) {}

  /// Enables prepared-statement parameters: placeholders bind against the
  /// shared slot, recording their inferred types in it. Without this, a
  /// statement containing ? or $N fails to bind.
  void SetParameterData(std::shared_ptr<BoundParameterData> parameters) {
    parameters_ = std::move(parameters);
  }

  Result<PreparedPlan> PlanSelect(const SelectStatement& stmt);
  Result<PreparedPlan> PlanInsert(const InsertStatement& stmt);
  Result<PreparedPlan> PlanUpdate(const UpdateStatement& stmt);
  Result<PreparedPlan> PlanDelete(const DeleteStatement& stmt);
  Result<PreparedPlan> PlanCopyFrom(const CopyStatement& stmt);

  /// Plans any plannable statement (SELECT / INSERT / UPDATE / DELETE /
  /// COPY FROM) — the shared entry point of the prepare-then-execute
  /// pipeline. Returns NotImplemented for other statement types.
  Result<PreparedPlan> PlanStatement(const SQLStatement& stmt);

  /// Internal binder/planner state (public for the implementation files).
  struct Impl;

 private:
  Catalog* catalog_;
  ResourceGovernor* governor_;
  std::shared_ptr<BoundParameterData> parameters_;
};

}  // namespace mallard

#endif  // MALLARD_PLANNER_PLANNER_H_
