/**
 * @file mallard.h
 * @brief Stable C ABI for embedding the mallard analytical engine.
 *
 * This header is the public C contract of mallard: a pure-C99,
 * opaque-handle API designed so that any host language with a C FFI
 * (Python, R, Go, Julia, ...) can link the engine straight into its
 * process — no client/server round-trips, following the embedded
 * design of "Data Management for Data Science — Towards Embedded
 * Analytics" (CIDR 2020). Everything a binding needs is declared here;
 * no other mallard header is required (or C-compatible).
 *
 * ## ABI rules
 *
 * - Every handle type is opaque. Handles are created and destroyed
 *   exclusively through the functions below; their layout is not part
 *   of the ABI and may change between versions.
 * - No C++ exception ever crosses this boundary. Every entry point
 *   catches internal failures and converts them to ::MALLARD_ERROR
 *   plus a retrievable message (mallard_result_error(),
 *   mallard_prepare_error(), mallard_stream_error()).
 * - Functions taking `NULL` or already-closed handles fail gracefully:
 *   state-returning calls return ::MALLARD_ERROR, accessors return
 *   0 / false / NULL. They never crash.
 *
 * ## Ownership and lifetime
 *
 * - Destroy functions take a pointer-to-handle and set it to NULL so
 *   double-destroy is harmless.
 * - Handles are internally reference counted: a connection keeps its
 *   database alive, a prepared statement keeps its connection alive,
 *   and a stream keeps its statement alive. You may therefore call
 *   mallard_close() / mallard_disconnect() in any order relative to
 *   dependent handles without crashing; the underlying instance shuts
 *   down when the last dependent handle is destroyed. Operations
 *   through a statement or stream whose connection has been
 *   disconnected return an error ("connection is closed") rather than
 *   executing.
 * - Every `const char *` returned by a result accessor
 *   (mallard_column_name(), mallard_value_varchar(),
 *   mallard_result_error()) is owned by the result handle and stays
 *   valid until mallard_destroy_result() on that handle. Do not
 *   free() it. The same rule binds mallard_prepare_error() to its
 *   statement and mallard_stream_error() to its stream.
 *
 * ## Thread safety
 *
 * A database handle may be shared across threads; open one connection
 * per thread. A connection — and every statement, result and stream
 * derived from it — must be used by one thread at a time.
 */
#ifndef MALLARD_C_API_MALLARD_H_
#define MALLARD_C_API_MALLARD_H_

#include <stdbool.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/*===========================================================================
 * Types
 *===========================================================================*/

/** Success/failure state returned by fallible C API calls. */
typedef enum mallard_state {
  MALLARD_SUCCESS = 0,
  MALLARD_ERROR = 1
} mallard_state;

/**
 * Column/value type tags. These values are frozen: new types may be
 * appended, existing values never change meaning.
 */
typedef enum mallard_type {
  MALLARD_TYPE_INVALID = 0,
  MALLARD_TYPE_BOOLEAN = 1,   /**< accessor: mallard_value_boolean() */
  MALLARD_TYPE_INTEGER = 2,   /**< int32; accessor: mallard_value_int32() */
  MALLARD_TYPE_BIGINT = 3,    /**< int64; accessor: mallard_value_int64() */
  MALLARD_TYPE_DOUBLE = 4,    /**< accessor: mallard_value_double() */
  MALLARD_TYPE_VARCHAR = 5,   /**< accessor: mallard_value_varchar() */
  MALLARD_TYPE_DATE = 6,      /**< days since 1970-01-01 as int32 */
  MALLARD_TYPE_TIMESTAMP = 7  /**< microseconds since epoch as int64 */
} mallard_type;

/** An embedded database instance (a file on disk or in-memory). */
typedef struct mallard_database mallard_database;
/** A connection: the unit of transactional context. One per thread. */
typedef struct mallard_connection mallard_connection;
/** A materialized query result (also used for fetched stream chunks). */
typedef struct mallard_result mallard_result;
/** A parsed-and-planned statement with typed parameter slots. */
typedef struct mallard_prepared_statement mallard_prepared_statement;
/** An open streaming result; chunks are pulled with
 *  mallard_stream_fetch_chunk(). */
typedef struct mallard_stream mallard_stream;

/*===========================================================================
 * Database / connection lifecycle
 *===========================================================================*/

/**
 * Opens (creating if needed) the database at `path`. `NULL`, `""` and
 * `":memory:"` all open a transient in-memory database.
 *
 * @param path          filesystem path or ":memory:"/NULL/"".
 * @param out_database  receives the new handle on success; set to NULL
 *                      on failure.
 * @return ::MALLARD_SUCCESS or ::MALLARD_ERROR.
 */
mallard_state mallard_open(const char *path, mallard_database **out_database);

/**
 * Releases a database handle and sets `*database` to NULL. The
 * instance shuts down (persistent databases are checkpointed) once the
 * last connection/statement/stream referencing it is destroyed too.
 * Safe on NULL / already-closed handles.
 */
void mallard_close(mallard_database **database);

/**
 * Opens a connection on `database`.
 *
 * @param database        an open database handle.
 * @param out_connection  receives the new handle on success; set to
 *                        NULL on failure.
 * @return ::MALLARD_SUCCESS or ::MALLARD_ERROR.
 */
mallard_state mallard_connect(mallard_database *database,
                              mallard_connection **out_connection);

/**
 * Closes a connection and sets `*connection` to NULL. An active
 * explicit transaction is rolled back. Statements and streams created
 * from this connection remain valid handles but every subsequent
 * operation on them reports "connection is closed". Safe on NULL.
 */
void mallard_disconnect(mallard_connection **connection);

/**
 * @return the message of the most recent mallard_open() /
 *         mallard_connect() failure on the calling thread, or NULL if
 *         the latest such call succeeded. Thread-local storage, valid
 *         until the next mallard_open()/mallard_connect() on this
 *         thread; do not free(). (Query/statement/stream failures
 *         carry their messages on their own handles instead — see
 *         mallard_result_error() and friends.)
 */
const char *mallard_open_error(void);

/**
 * @return the mallard release string, e.g. "mallard 0.2.0". Static
 *         storage; never freed.
 */
const char *mallard_version(void);

/*===========================================================================
 * Ad-hoc queries
 *===========================================================================*/

/**
 * Parses and executes `sql` (possibly several ';'-separated
 * statements), materializing the result of the last one.
 *
 * A result handle is produced in `*out_result` even on failure, so the
 * error message can be read with mallard_result_error(); destroy it
 * with mallard_destroy_result() either way.
 *
 * @return ::MALLARD_SUCCESS, or ::MALLARD_ERROR on parse/bind/execution
 *         failure or closed handles.
 */
mallard_state mallard_query(mallard_connection *connection, const char *sql,
                            mallard_result **out_result);

/**
 * Requests cancellation of the statement `connection` is currently
 * running (or, if none is running, of its next one). The statement
 * stops at its next chunk boundary and reports an "Interrupted" error
 * through the normal result channel; the connection stays usable.
 *
 * The one connection call that is safe from any thread — this is how a
 * UI thread cancels a long query the worker thread launched through
 * this handle. Safe on NULL/closed handles (no-op).
 *
 * @return ::MALLARD_SUCCESS, or ::MALLARD_ERROR for a NULL/closed
 *         handle.
 */
mallard_state mallard_interrupt(mallard_connection *connection);

/*===========================================================================
 * Result access
 *===========================================================================*/

/**
 * Destroys a result (or fetched stream chunk) and sets `*result` to
 * NULL, invalidating every string pointer previously returned from it.
 * Safe on NULL.
 */
void mallard_destroy_result(mallard_result **result);

/**
 * @return the error message carried by a failed result, or NULL if the
 *         result is OK. Owned by the result handle.
 */
const char *mallard_result_error(mallard_result *result);

/**
 * Machine-readable class of a result's error, for callers that must
 * distinguish "retry later" (IO) from "restore or salvage" (CORRUPTION)
 * from "replace the RAM" (HARDWARE) without parsing message text.
 * Values are frozen for ABI stability; new classes may only be appended.
 */
typedef enum mallard_error_code {
  MALLARD_ERROR_NONE = 0,        /* result carries rows, not an error */
  MALLARD_ERROR_GENERIC = 1,     /* any error class not listed below */
  MALLARD_ERROR_IO = 2,          /* I/O failure after bounded retries */
  MALLARD_ERROR_CORRUPTION = 3,  /* checksum or invariant violation */
  MALLARD_ERROR_INTERRUPTED = 4, /* interrupt or statement timeout */
  MALLARD_ERROR_HARDWARE = 5     /* failed memory/hardware self-test */
} mallard_error_code;

/**
 * @return the machine-readable class of a failed result's error, or
 *         MALLARD_ERROR_NONE when the result is OK (or NULL).
 */
mallard_error_code mallard_result_error_code(mallard_result *result);

/** @return number of rows; 0 for errored/NULL results. */
uint64_t mallard_row_count(mallard_result *result);

/** @return number of columns; 0 for errored/NULL results. */
uint64_t mallard_column_count(mallard_result *result);

/**
 * @return name of column `column` (0-based), or NULL when out of
 *         range. Owned by the result handle.
 */
const char *mallard_column_name(mallard_result *result, uint64_t column);

/**
 * @return type tag of column `column` (0-based), or
 *         ::MALLARD_TYPE_INVALID when out of range.
 */
mallard_type mallard_column_type(mallard_result *result, uint64_t column);

/**
 * @return true when the value at (`column`, `row`) is SQL NULL.
 *         Out-of-range coordinates also report true (there is no value
 *         there).
 */
bool mallard_value_is_null(mallard_result *result, uint64_t column,
                           uint64_t row);

/**
 * Scalar value accessors. Coordinates are 0-based. The value is cast
 * to the requested C type when the column type differs (e.g. reading
 * an INTEGER column through mallard_value_double()); NULLs,
 * out-of-range coordinates and impossible casts yield 0 / false / 0.0.
 */
bool mallard_value_boolean(mallard_result *result, uint64_t column,
                           uint64_t row);
int32_t mallard_value_int32(mallard_result *result, uint64_t column,
                            uint64_t row);
int64_t mallard_value_int64(mallard_result *result, uint64_t column,
                            uint64_t row);
double mallard_value_double(mallard_result *result, uint64_t column,
                            uint64_t row);

/**
 * String accessor: the value rendered as a NUL-terminated string
 * (non-VARCHAR values are formatted, e.g. dates as "YYYY-MM-DD").
 *
 * @return the string, or NULL for SQL NULL / out-of-range coordinates.
 *         Owned by the result handle; valid until
 *         mallard_destroy_result().
 */
const char *mallard_value_varchar(mallard_result *result, uint64_t column,
                                  uint64_t row);

/*===========================================================================
 * Prepared statements
 *===========================================================================*/

/**
 * Parses and plans a single statement with `?` / `$N` parameter
 * placeholders. Repeated bind + execute cycles skip the SQL front-end
 * entirely — this is the API for high-frequency embedded loops
 * (dashboards, sensor ingest).
 *
 * A statement handle is produced in `*out_statement` even on failure so
 * the message can be read with mallard_prepare_error(); destroy it with
 * mallard_destroy_prepare() either way. A failed statement rejects all
 * binds and executes.
 *
 * @return ::MALLARD_SUCCESS or ::MALLARD_ERROR.
 */
mallard_state mallard_prepare(mallard_connection *connection, const char *sql,
                              mallard_prepared_statement **out_statement);

/**
 * Destroys a prepared statement and sets `*statement` to NULL. Safe on
 * NULL. Results already materialized from the statement stay valid;
 * open streams on the statement keep it internally alive until they
 * are destroyed.
 */
void mallard_destroy_prepare(mallard_prepared_statement **statement);

/**
 * @return the statement's latest error — the prepare failure, or the
 *         most recent failed bind/execute — or NULL if the last
 *         operation succeeded. Owned by the statement handle.
 */
const char *mallard_prepare_error(mallard_prepared_statement *statement);

/** @return number of parameter slots; 0 for failed/NULL statements. */
uint64_t mallard_nparams(mallard_prepared_statement *statement);

/**
 * @return the type inferred for parameter `index` (1-based) at plan
 *         time; ::MALLARD_TYPE_INVALID when the context did not
 *         constrain it or `index` is out of range.
 */
mallard_type mallard_param_type(mallard_prepared_statement *statement,
                                uint64_t index);

/**
 * Parameter binding. `index` is 1-based ($1 is the first parameter;
 * `?` placeholders number left to right). Values are cast to the
 * inferred parameter type eagerly, so mismatches surface at bind time
 * — on failure the message is available via mallard_prepare_error().
 * Bound values persist across executes until rebound.
 *
 * For mallard_bind_varchar() the string is copied; the caller keeps
 * ownership of `value`.
 *
 * @return ::MALLARD_SUCCESS or ::MALLARD_ERROR.
 */
mallard_state mallard_bind_null(mallard_prepared_statement *statement,
                                uint64_t index);
mallard_state mallard_bind_boolean(mallard_prepared_statement *statement,
                                   uint64_t index, bool value);
mallard_state mallard_bind_int32(mallard_prepared_statement *statement,
                                 uint64_t index, int32_t value);
mallard_state mallard_bind_int64(mallard_prepared_statement *statement,
                                 uint64_t index, int64_t value);
mallard_state mallard_bind_double(mallard_prepared_statement *statement,
                                  uint64_t index, double value);
mallard_state mallard_bind_varchar(mallard_prepared_statement *statement,
                                   uint64_t index, const char *value);

/**
 * Executes with the current bindings, materializing the full result.
 * Unbound parameters are an error. Re-executable: no re-parse or
 * re-plan between calls.
 *
 * Like mallard_query(), `*out_result` is produced even on failure and
 * must be destroyed either way.
 *
 * @return ::MALLARD_SUCCESS or ::MALLARD_ERROR.
 */
mallard_state mallard_execute_prepared(mallard_prepared_statement *statement,
                                       mallard_result **out_result);

/*===========================================================================
 * Streaming execution
 *===========================================================================*/

/**
 * Executes a prepared SELECT with the current bindings, streaming
 * chunks as the engine produces them — the host application becomes
 * the root operator of the plan instead of waiting for a full
 * materialization.
 *
 * While the stream is open the statement cannot be re-executed (the
 * attempt errors); destroy the stream first.
 *
 * @param out_stream  receives the stream handle on success; set to
 *                    NULL on failure (read the message with
 *                    mallard_prepare_error()).
 * @return ::MALLARD_SUCCESS or ::MALLARD_ERROR.
 */
mallard_state mallard_execute_prepared_streaming(
    mallard_prepared_statement *statement, mallard_stream **out_stream);

/**
 * Pulls the next chunk of rows from a stream.
 *
 * On success `*out_chunk` is either a result handle holding one chunk
 * of rows (read it with the regular result accessors, then
 * mallard_destroy_result() it) or NULL when the stream is exhausted.
 * On failure `*out_chunk` is NULL and the message is available via
 * mallard_stream_error().
 *
 * @return ::MALLARD_SUCCESS or ::MALLARD_ERROR.
 */
mallard_state mallard_stream_fetch_chunk(mallard_stream *stream,
                                         mallard_result **out_chunk);

/**
 * @return the stream's error message, or NULL if no operation on it
 *         has failed. Owned by the stream handle.
 */
const char *mallard_stream_error(mallard_stream *stream);

/**
 * Closes the stream (finishing its transaction) and sets `*stream` to
 * NULL. Safe on NULL.
 */
void mallard_destroy_stream(mallard_stream **stream);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* MALLARD_C_API_MALLARD_H_ */
