/**
 * @file prepared_statement.h
 * @brief PreparedStatement: parse/bind/plan once, execute many times.
 *
 * Lifetime: the owning Connection must outlive the statement; a
 * streaming result borrowed from the statement must be closed before
 * the statement is destroyed or re-executed.
 * Thread safety: same single-thread rule as the Connection it came
 * from.
 */
#ifndef MALLARD_MAIN_PREPARED_STATEMENT_H_
#define MALLARD_MAIN_PREPARED_STATEMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/common/result.h"
#include "mallard/expression/bound_expression.h"
#include "mallard/main/query_result.h"
#include "mallard/parser/ast.h"
#include "mallard/planner/planner.h"

namespace mallard {

class Connection;
class StreamingQueryResult;

/// A pre-parsed, pre-planned statement with typed parameter slots — the
/// paper's answer to per-query client overhead (sections 3 and 5): the
/// dashboard / edge-sensor loop pays parsing, binding and planning once,
/// then re-executes with new parameter values at in-process call cost.
///
/// Usage:
///   auto stmt = *connection.Prepare(
///       "SELECT v FROM readings WHERE sensor = $1 AND v > $2");
///   stmt->Bind(1, "s17");
///   stmt->Bind(2, 3.5);
///   auto result = stmt->Execute();   // re-executable: Bind + Execute again
///
/// Parameter indexes are 1-based ($1 is the first parameter; `?`
/// placeholders number left to right). The Connection must outlive the
/// statement; a streaming result must not outlive the statement.
class PreparedStatement {
 public:
  ~PreparedStatement();

  PreparedStatement(const PreparedStatement&) = delete;
  PreparedStatement& operator=(const PreparedStatement&) = delete;

  /// Number of parameter slots in the statement.
  idx_t ParameterCount() const { return parameters_->Count(); }

  /// Type inferred for parameter `index` (1-based) at plan time;
  /// kInvalid when the context did not constrain it.
  TypeId ParameterType(idx_t index) const;

  /// Binds a value to parameter `index`.
  ///
  /// \param index 1-based parameter slot ($1 is the first; `?`
  ///              placeholders number left to right).
  /// \param value bound value; cast to the inferred parameter type
  ///              eagerly, so type mismatches surface at bind time,
  ///              not mid-query. Bindings persist across Execute()
  ///              calls until rebound.
  /// \return InvalidArgument for an out-of-range index or impossible
  ///         cast.
  Status Bind(idx_t index, Value value);
  Status Bind(idx_t index, bool value) { return Bind(index, Value::Boolean(value)); }
  Status Bind(idx_t index, int32_t value) { return Bind(index, Value::Integer(value)); }
  Status Bind(idx_t index, int64_t value) { return Bind(index, Value::BigInt(value)); }
  Status Bind(idx_t index, double value) { return Bind(index, Value::Double(value)); }
  Status Bind(idx_t index, const std::string& value) {
    return Bind(index, Value::Varchar(value));
  }
  Status Bind(idx_t index, const char* value) {
    return Bind(index, Value::Varchar(value));
  }
  Status BindNull(idx_t index) { return Bind(index, Value()); }

  /// Forgets all bound values (types are kept).
  void ClearBindings() { parameters_->ClearBindings(); }

  /// Executes with the current bindings; errors if any parameter is
  /// unbound. Re-executable: no re-parse or re-plan between calls (the
  /// plan is rewound in place; only a DDL change triggers a re-plan).
  Result<std::unique_ptr<MaterializedQueryResult>> Execute();

  /// Streaming execution (SELECT only): chunks are pulled straight from
  /// the plan, the application acting as the root operator.
  Result<std::unique_ptr<StreamingQueryResult>> ExecuteStream();

  /// Result schema.
  const std::vector<std::string>& names() const { return plan_.names; }
  const std::vector<TypeId>& types() const { return plan_.types; }
  idx_t ColumnCount() const { return plan_.types.size(); }

 private:
  friend class Connection;

  PreparedStatement(Connection* connection,
                    std::unique_ptr<SQLStatement> statement,
                    std::shared_ptr<BoundParameterData> parameters,
                    PreparedPlan plan, uint64_t catalog_version);

  /// Re-plans from the stored AST when DDL has moved the catalog version
  /// (bound values survive; a dropped table surfaces as a binder error).
  Status EnsureCurrentPlan();
  /// Rewinds the plan, dropping per-execution operator state (join build
  /// tables, aggregate tables, sort runs). The plan-cache path calls this
  /// after executing so idle cached plans don't pin their last
  /// execution's memory; Execute() rewinds again before running anyway.
  Status ClearExecutionState() { return plan_.plan->Reset(); }
  Status CheckAllBound() const;
  /// Errors while a streaming result borrowed from this statement is
  /// still open — executing would rewind (or free, on re-plan) the plan
  /// under the live stream.
  Status CheckNoOpenStream() const;

  Connection* connection_;
  std::unique_ptr<SQLStatement> statement_;  // kept for re-planning
  std::shared_ptr<BoundParameterData> parameters_;
  PreparedPlan plan_;
  uint64_t catalog_version_;
  std::weak_ptr<void> stream_lease_;  // live while a stream is open
};

}  // namespace mallard

#endif  // MALLARD_MAIN_PREPARED_STATEMENT_H_
