/**
 * @file config.h
 * @brief DBConfig: resource and behavior knobs passed to
 *        Database::Open, all adjustable at runtime via PRAGMA.
 */
#ifndef MALLARD_MAIN_CONFIG_H_
#define MALLARD_MAIN_CONFIG_H_

#include <cstdint>

namespace mallard {

/// Database configuration. The defaults implement the paper's
/// "cooperation" stance (section 4): the embedded engine must never
/// assume it owns the machine, so it starts with a conservative memory
/// cap and a bounded thread count, both adjustable at runtime via PRAGMA.
struct DBConfig {
  /// Hard cap on DBMS buffer/intermediate memory. Left at the default,
  /// the MALLARD_MEMORY_LIMIT environment variable (bytes) overrides it
  /// when set (CI pins whole test runs to a tight budget this way);
  /// out-of-core operators spill against this cap rather than failing.
  uint64_t memory_limit = 1ull << 30;  // 1 GiB
  /// Total machine memory envelope (reactive-mode denominator).
  uint64_t total_memory = 4ull << 30;  // 4 GiB
  /// Maximum worker threads for intra-query parallelism. 0 (default) =
  /// auto: the MALLARD_THREADS environment variable when set (CI pins
  /// whole test runs this way), else the hardware's core count — so the
  /// embedded engine is exactly as parallel as the machine and never
  /// oversubscribes a small host (on a 1-core machine auto means fully
  /// serial execution).
  int threads = 0;
  /// Verify CRC32C block checksums on every read (paper section 3).
  bool enable_checksums = true;
  /// Run the walking-bits memory test on every buffer allocation.
  bool memtest_on_allocation = false;
  /// Run a memory self-test once at Database::Open (walking bits, moving
  /// inversions and address-in-address over a scratch region) and refuse
  /// to open with kHardwareFailure if any bit misbehaves — an engine on
  /// bad RAM corrupts data faster than it detects it. Left false, the
  /// MALLARD_MEMTEST=1 environment variable turns it on for a whole run.
  bool verify_memory = false;
  /// Start connections in salvage mode: scans skip quarantined row
  /// groups (counting skipped rows) instead of failing with kCorruption.
  /// Runtime: PRAGMA salvage_mode.
  bool salvage_mode = false;
  /// Reactive resource governing (paper section 4 / Figure 1).
  bool reactive = false;
  /// Write a final checkpoint (and truncate the WAL) when the database
  /// closes cleanly. Disabled by recovery benchmarks/tests that want the
  /// WAL preserved so the next open measures replay.
  bool checkpoint_on_close = true;
  /// Admission control: maximum queries executing concurrently before
  /// new arrivals queue. 0 (default) = auto: 4x the thread cap. Runtime:
  /// PRAGMA admission_limit.
  int max_active_queries = 0;
  /// Bounded admission queue: arrivals beyond this many waiters are shed
  /// with kResourceExhausted instead of queueing. Runtime:
  /// PRAGMA admission_queue_depth.
  int admission_queue_depth = 64;
  /// How long a queued query waits for admission before giving up with
  /// kResourceExhausted. Runtime: PRAGMA admission_timeout_ms.
  uint64_t admission_timeout_ms = 10000;
};

}  // namespace mallard

#endif  // MALLARD_MAIN_CONFIG_H_
