/**
 * @file plan_cache.h
 * @brief Cross-connection shared plan cache with literal normalization.
 *
 * Connection::Query normalizes a statement's literals into parameter
 * slots (`SELECT * FROM t WHERE id=7` and `id=9` become one plan for
 * `... WHERE id=?` plus a bound value), so every connection of a
 * Database shares one bounded, properly locked plan cache — ORMs and
 * serving fleets get prepared-statement performance across sessions
 * without code changes.
 *
 * Concurrency model: the cache map/LRU are guarded by one mutex; a hit
 * marks the entry in-use and executes it outside the lock (plans hold
 * mutable operator state, so one entry runs at most one execution at a
 * time — a second connection hitting a busy entry plans fresh,
 * uncached, and the stats record the contention). Catalog-version
 * invalidation re-plans in place on the next hit, exactly like
 * PreparedStatement::EnsureCurrentPlan.
 */
#ifndef MALLARD_MAIN_PLAN_CACHE_H_
#define MALLARD_MAIN_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mallard/common/value.h"
#include "mallard/expression/bound_expression.h"
#include "mallard/parser/ast.h"
#include "mallard/planner/planner.h"

namespace mallard {

/// The result of literal normalization over one SQL string.
struct NormalizedQuery {
  /// False when the statement should bypass the shared cache: explicit
  /// `?`/`$N` parameters, multiple statements, a non-DML/SELECT leading
  /// keyword, read_csv (file contents are not cacheable), or any text
  /// the lexer refuses.
  bool cacheable = false;
  /// The SQL with every extracted literal replaced by `?` — parseable by
  /// the regular parser, with positional parameters numbered in literal
  /// order.
  std::string normalized_sql;
  /// Cache key: normalized SQL plus a per-literal type tag, so `id=7`
  /// and `id=7.5` (integer vs double coercion) map to distinct plans.
  std::string key;
  /// Extracted literal values, in lexical order, typed exactly as the
  /// parser would have typed them in place (int32-fitting integers are
  /// Integer, larger BigInt, floats Double, strings Varchar; a unary
  /// minus folds into the value).
  std::vector<Value> literals;
};

/// Extracts literals from `sql` without parsing it. Mirrors the lexer's
/// token rules ('' escapes, -- comments, exponents) and the parser's
/// literal-position restrictions: literals after LIMIT/OFFSET/DATE/
/// TIMESTAMP/INTERVAL and inside CAST type parameters stay in place
/// because the grammar demands real tokens there.
NormalizedQuery NormalizeQueryText(const std::string& sql);

/// Counters exposed via PRAGMA plan_cache_stats.
struct PlanCacheStats {
  uint64_t hits = 0;           ///< normalized-key hits
  uint64_t misses = 0;         ///< key absent; a fresh plan was cached
  uint64_t evictions = 0;      ///< LRU evictions at capacity
  uint64_t invalidations = 0;  ///< catalog-version re-plans on hit
  uint64_t busy_skips = 0;     ///< hit a busy entry; executed uncached
  uint64_t uncacheable = 0;    ///< statements that bypassed the cache
  uint64_t entries = 0;        ///< resident entries right now
};

/// The per-Database shared plan cache. Thread-safe; entries are checked
/// out exclusively for execution (see file comment).
class SharedPlanCache {
 public:
  struct Entry {
    std::string key;
    /// Kept for catalog-version re-planning, like PreparedStatement.
    std::unique_ptr<SQLStatement> statement;
    std::shared_ptr<BoundParameterData> parameters;
    PreparedPlan plan;
    uint64_t catalog_version = 0;
    bool in_use = false;
    /// Clear()/eviction raced with a running execution: the entry left
    /// the map and dies on Release instead.
    bool orphaned = false;
    std::list<Entry*>::iterator lru_pos;
  };

  explicit SharedPlanCache(idx_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}
  ~SharedPlanCache() = default;

  SharedPlanCache(const SharedPlanCache&) = delete;
  SharedPlanCache& operator=(const SharedPlanCache&) = delete;

  /// Looks up `key`. On a hit the entry is marked in-use and returned —
  /// the caller owns it until Release. Returns null on a miss, or when
  /// the entry is busy in another connection (`*busy` = true; the
  /// caller should execute uncached rather than wait).
  Entry* Acquire(const std::string& key, bool* busy);

  /// Returns an entry taken via Acquire or Insert. `keep` = false drops
  /// it (failed executions are not worth keeping — PR 3 semantics);
  /// true re-files it as most recently used.
  void Release(Entry* entry, bool keep);

  /// Files a freshly planned entry under entry->key and returns it
  /// checked out (in-use). Evicts idle LRU entries beyond capacity. If
  /// another connection cached the same key in the meantime, the new
  /// entry replaces it only when the resident one is idle; a busy
  /// resident entry is left alone and the new entry is returned
  /// unfiled (it dies on Release).
  Entry* Insert(std::unique_ptr<Entry> entry);

  /// Empties the cache (PRAGMA plan_cache=off, tests). Busy entries are
  /// orphaned and die on Release.
  void Clear();

  idx_t size() const;
  PlanCacheStats GetStats() const;
  void RecordUncacheable();
  void RecordInvalidation();

  static constexpr idx_t kDefaultCapacity = 64;

 private:
  /// Caller holds mutex_. Detaches `entry` from map + LRU.
  std::unique_ptr<Entry> Detach(Entry* entry);

  idx_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  /// Front = most recently used. Real LRU: O(1) touch via the entry's
  /// stored iterator (the PR 3 per-connection cache scanned the whole
  /// map per eviction).
  std::list<Entry*> lru_;
  /// Entries removed from the map while executing; freed on Release.
  std::vector<std::unique_ptr<Entry>> orphans_;
  PlanCacheStats stats_;
};

}  // namespace mallard

#endif  // MALLARD_MAIN_PLAN_CACHE_H_
