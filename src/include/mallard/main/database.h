/**
 * @file database.h
 * @brief Database: the embedded instance a host application links in.
 *
 * Lifetime: the Database must outlive every Connection, Appender,
 * PreparedStatement and streaming result created from it.
 * Thread safety: one Database may be shared across threads; open one
 * Connection per thread (MVCC isolates them).
 */
#ifndef MALLARD_MAIN_DATABASE_H_
#define MALLARD_MAIN_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "mallard/catalog/catalog.h"
#include "mallard/common/result.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/main/config.h"
#include "mallard/main/plan_cache.h"
#include "mallard/parallel/task_scheduler.h"
#include "mallard/storage/block_manager.h"
#include "mallard/storage/buffer_manager.h"
#include "mallard/storage/wal.h"
#include "mallard/transaction/transaction_manager.h"

namespace mallard {

/// The embedded database instance: a single file on disk (plus a WAL
/// side file) or a transient in-memory database, living in the host
/// application's process (paper sections 1 and 6).
class Database {
 public:
  /// Opens (creating if needed) the database at `path`.
  ///
  /// \param path   filesystem path of the single database file (a
  ///               `.wal` side file is created next to it); "" or
  ///               ":memory:" opens a transient in-memory database.
  /// \param config resource/behavior knobs, see DBConfig.
  /// \return the instance, or a Status describing why the file could
  ///         not be opened, recovered or created.
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                DBConfig config = {});
  /// Closes the database; persistent databases are checkpointed if no
  /// transactions are active.
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  bool in_memory() const { return blocks_ == nullptr; }
  const std::string& path() const { return path_; }
  DBConfig& config() { return config_; }

  Catalog& catalog() { return catalog_; }
  TransactionManager& transactions() { return transactions_; }
  BufferManager& buffers() { return *buffers_; }
  ResourceGovernor& governor() { return *governor_; }
  BlockManager* blocks() { return blocks_.get(); }
  WriteAheadLog* wal() { return wal_.get(); }

  /// The morsel-driven scheduler. The object exists from Open (it is a
  /// queue + empty pool, no lock needed to reach it); worker threads
  /// spawn lazily on the first parallel pipeline run — see
  /// docs/CONCURRENCY.md. Thread-safe.
  TaskScheduler& scheduler() { return *scheduler_; }

  /// The admission gate every statement passes before executing.
  /// Thread-safe.
  AdmissionController& admission() { return *admission_; }

  /// The cross-connection shared plan cache behind Connection::Query.
  /// Thread-safe.
  SharedPlanCache& plan_cache() { return plan_cache_; }

  /// Hands each new Connection a unique session id (the unit of fair
  /// scheduling and round-robin task pickup). Thread-safe.
  uint64_t NextSessionId() { return next_session_id_.fetch_add(1); }

  /// Writes an online checkpoint and truncates the WAL. Commits are
  /// briefly blocked (they queue on the commit gate); readers and
  /// in-flight statements proceed on their MVCC snapshots throughout.
  Status Checkpoint();

 private:
  explicit Database(DBConfig config);

  Status Initialize(const std::string& path);

  DBConfig config_;
  std::string path_;
  Catalog catalog_;
  TransactionManager transactions_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<ResourceGovernor> governor_;
  std::unique_ptr<BlockManager> blocks_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<AdmissionController> admission_;
  SharedPlanCache plan_cache_;
  std::atomic<uint64_t> next_session_id_{1};
  std::mutex checkpoint_lock_;
  // Declared last: destroyed first, so pool threads are gone before any
  // engine state they might reference.
  std::unique_ptr<TaskScheduler> scheduler_;
};

}  // namespace mallard

#endif  // MALLARD_MAIN_DATABASE_H_
