/**
 * @file connection.h
 * @brief Connection (SQL entry point) and StreamingQueryResult.
 *
 * Lifetime: a Connection must outlive the PreparedStatements and
 * streaming results it hands out; destroying it rolls back an open
 * explicit transaction.
 * Thread safety: a Connection and everything derived from it belong to
 * one thread at a time (no internal locking) — open one per thread.
 * The single exception is Interrupt(), which any thread may call to
 * cancel the statement the owning thread is running.
 */
#ifndef MALLARD_MAIN_CONNECTION_H_
#define MALLARD_MAIN_CONNECTION_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "mallard/main/database.h"
#include "mallard/main/plan_cache.h"
#include "mallard/main/query_result.h"
#include "mallard/parser/ast.h"
#include "mallard/transaction/transaction.h"

namespace mallard {

class PreparedStatement;
class StreamingQueryResult;

/// A connection: the unit of transactional context. Multiple connections
/// (one per application thread) can operate on the same Database
/// concurrently under MVCC — the paper's dashboard scenario (section 2).
/// Each connection gets a session id; the scheduler multiplexes the
/// worker pool fairly across sessions and the admission gate bounds how
/// many statements execute at once.
class Connection {
 public:
  explicit Connection(Database* db);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Parses and executes `sql` (possibly multiple ';'-separated
  /// statements).
  ///
  /// Single plannable statements (SELECT/INSERT/UPDATE/DELETE) go
  /// through the Database's shared plan cache: literals are normalized
  /// into parameter slots, so `WHERE id=7` and `WHERE id=9` — from any
  /// connection — reuse one physical plan (rewound via
  /// PhysicalOperator::Reset()) and skip the parse-bind-plan pipeline.
  /// A catalog version change (DDL) triggers a transparent re-plan.
  /// `PRAGMA plan_cache=off` bypasses it for this connection (and
  /// clears the shared cache); `PRAGMA plan_cache_stats` reports the
  /// counters.
  ///
  /// \param sql one or more SQL statements.
  /// \return the materialized result of the last statement, or the
  ///         first parse/bind/execution error (later statements are
  ///         not run after a failure).
  Result<std::unique_ptr<MaterializedQueryResult>> Query(
      const std::string& sql);

  /// Requests cancellation of the statement this connection is
  /// currently running (or, if none is running, of the next one). The
  /// statement stops at its next chunk/morsel boundary with
  /// kInterrupted, releases its resources normally, and the connection
  /// stays usable. The one Connection member safe to call from another
  /// thread.
  void Interrupt() { interrupt_.store(true, std::memory_order_relaxed); }

  /// Number of entries currently in the Database's shared plan cache
  /// (tests/benches).
  idx_t PlanCacheSize() const { return db_->plan_cache().size(); }

  /// This connection's `PRAGMA threads` override for parallel operators
  /// (0 = follow the governor's budget). Other connections on the same
  /// Database are unaffected.
  int ThreadOverride() const { return thread_override_; }

  /// The scheduler-fairness identity of this connection.
  uint64_t session_id() const { return session_id_; }
  /// Fair-share weight set by `PRAGMA priority` (low=1, normal=2,
  /// high=4).
  int priority_weight() const { return priority_weight_; }

  /// Executes a single SELECT and streams chunks as they are produced —
  /// the client application becomes the root of the plan (paper
  /// section 5).
  ///
  /// \param sql exactly one SELECT statement.
  /// \return a streaming result that must not outlive this connection.
  Result<std::unique_ptr<StreamingQueryResult>> SendQuery(
      const std::string& sql);

  /// Parses and plans a single SELECT / INSERT / UPDATE / DELETE once,
  /// returning a PreparedStatement with typed parameter slots for the
  /// `?` / `$N` placeholders. Repeated Bind + Execute cycles skip the
  /// parse-bind-plan pipeline entirely (paper section 3). The connection
  /// must outlive the returned statement.
  Result<std::unique_ptr<PreparedStatement>> Prepare(const std::string& sql);

  /// Explicit transaction control (equivalent to BEGIN/COMMIT/ROLLBACK).
  Status BeginTransaction();
  Status Commit();
  Status Rollback();
  bool InTransaction() const { return transaction_ != nullptr; }

  Database& database() { return *db_; }

 private:
  friend class PreparedStatement;
  friend class StreamingQueryResult;

  Result<std::unique_ptr<MaterializedQueryResult>> ExecuteStatement(
      SQLStatement* stmt);

  /// The shared execute stage of the prepare-then-execute pipeline:
  /// admission slot, fair-share ticket, transaction setup (autocommit or
  /// explicit), chunk pull loop with interrupt checks, and
  /// commit/rollback. Query, prepared Execute and CTAS all route here;
  /// the plan is borrowed, so prepared statements can re-run it.
  Result<std::unique_ptr<MaterializedQueryResult>> ExecutePhysicalPlan(
      PhysicalOperator* plan, const std::vector<std::string>& names,
      const std::vector<TypeId>& types);
  Result<std::unique_ptr<MaterializedQueryResult>> ExecutePlan(
      struct PreparedPlan plan);

  /// Shared streaming stage: wraps a plan (owned or borrowed) in a
  /// StreamingQueryResult with autocommit handling. `lease` (if any) is
  /// held by the stream until it closes, letting the plan's owner detect
  /// that a stream is still live. The stream holds its admission slot
  /// and fair-share ticket until Close.
  Result<std::unique_ptr<StreamingQueryResult>> StreamPlan(
      std::unique_ptr<PhysicalOperator> owned_plan, PhysicalOperator* plan,
      std::vector<std::string> names, std::vector<TypeId> types,
      std::shared_ptr<void> lease = nullptr);

  /// Executes one PRAGMA. Most pragmas return a single `ok` row;
  /// `PRAGMA threads` with no value returns the connection's effective
  /// thread budget (the pinned override or the governor's live budget).
  Result<std::unique_ptr<MaterializedQueryResult>> ExecutePragma(
      const PragmaStatement& stmt);

  /// Returns the active transaction, starting an autocommit one if
  /// needed; `started` reports whether this call opened it.
  Result<Transaction*> ActiveTransaction(bool* started);
  Status FinishAutocommit(bool started, bool success);

  /// Fills the execution context every chunk-pull loop uses: txn,
  /// engine services, thread override, fair-share ticket and the
  /// interrupt flag.
  void SetupContext(struct ExecutionContext* context, Transaction* txn,
                    const QueryTicket* ticket);

  /// Acquires an admission slot (blocking/shedding per the controller).
  /// The returned handle releases it; null when this connection already
  /// holds one (nested execution, e.g. COPY TO's inner SELECT, rides
  /// the outer slot — and cannot deadlock on it).
  Result<std::shared_ptr<void>> AdmitSlot();

  /// Plans the normalized text of a cacheable statement into a
  /// shared-cache entry: parameter slots are pre-typed from the
  /// extracted literals, so binding reproduces the cold plan's literal
  /// coercions exactly.
  Result<std::unique_ptr<SharedPlanCache::Entry>> PlanNormalized(
      const NormalizedQuery& normalized);

  /// Executes a checked-out cache entry with `literals` bound to its
  /// parameter slots (re-planning first if DDL moved the catalog
  /// version) and releases it.
  Result<std::unique_ptr<MaterializedQueryResult>> ExecuteCachedEntry(
      SharedPlanCache::Entry* entry, const std::vector<Value>& literals);

  Database* db_;
  std::unique_ptr<Transaction> transaction_;  // explicit transaction
  // Per-connection PRAGMA threads override; 0 = governor budget.
  int thread_override_ = 0;

  uint64_t session_id_;
  // PRAGMA priority: weight divides the thread budget, class orders the
  // admission queue (0 = low, 1 = normal, 2 = high).
  int priority_weight_ = 2;
  int priority_class_ = 1;
  // Admission slots this connection currently holds (a running
  // statement, an open stream); nested executions skip re-admission.
  int admission_depth_ = 0;

  // Set by Interrupt() from any thread; checked at chunk/morsel
  // boundaries, cleared when the statement finishes.
  std::atomic<bool> interrupt_{false};

  // PRAGMA statement_timeout_ms: per-statement wall-clock budget,
  // enforced at the same chunk/morsel boundaries as Interrupt().
  // 0 = no timeout.
  uint64_t statement_timeout_ms_ = 0;

  bool plan_cache_enabled_ = true;
};

/// Streaming result: pulls chunks straight from the physical plan. The
/// plan is either owned (ad-hoc SendQuery) or borrowed from a
/// PreparedStatement, which must then outlive this result. While open
/// it holds an admission slot and counts as an active query for fair
/// scheduling.
class StreamingQueryResult final : public QueryResult {
 public:
  StreamingQueryResult(Connection* connection,
                       std::unique_ptr<PhysicalOperator> owned_plan,
                       PhysicalOperator* plan, std::vector<std::string> names,
                       std::vector<TypeId> types, bool owns_transaction,
                       std::unique_ptr<Transaction> txn,
                       std::shared_ptr<void> lease = nullptr,
                       std::unique_ptr<QueryTicket> ticket = nullptr,
                       std::shared_ptr<void> admission = nullptr);
  ~StreamingQueryResult() override;

  /// Next chunk or nullptr at the end. The returned chunk is the
  /// engine's own buffer — zero-copy hand-over. Interrupt() surfaces
  /// here as kInterrupted.
  Result<std::unique_ptr<DataChunk>> Fetch() override;

  /// Finishes the stream early (commits the autocommit transaction,
  /// releases the admission slot and fair-share ticket).
  Status Close();

 private:
  Connection* connection_;
  std::unique_ptr<PhysicalOperator> owned_plan_;
  PhysicalOperator* plan_;
  bool owns_transaction_;
  std::unique_ptr<Transaction> txn_;
  std::shared_ptr<void> lease_;               // released on Close()
  std::unique_ptr<QueryTicket> ticket_;       // released on Close()
  std::shared_ptr<void> admission_;           // released on Close()
  bool done_ = false;
};

}  // namespace mallard

#endif  // MALLARD_MAIN_CONNECTION_H_
