/**
 * @file connection.h
 * @brief Connection (SQL entry point) and StreamingQueryResult.
 *
 * Lifetime: a Connection must outlive the PreparedStatements and
 * streaming results it hands out; destroying it rolls back an open
 * explicit transaction.
 * Thread safety: a Connection and everything derived from it belong to
 * one thread at a time (no internal locking) — open one per thread.
 */
#ifndef MALLARD_MAIN_CONNECTION_H_
#define MALLARD_MAIN_CONNECTION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mallard/main/database.h"
#include "mallard/main/query_result.h"
#include "mallard/parser/ast.h"
#include "mallard/transaction/transaction.h"

namespace mallard {

class PreparedStatement;
class StreamingQueryResult;

/// A connection: the unit of transactional context. Multiple connections
/// (one per application thread) can operate on the same Database
/// concurrently under MVCC — the paper's dashboard scenario (section 2).
class Connection {
 public:
  explicit Connection(Database* db);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Parses and executes `sql` (possibly multiple ';'-separated
  /// statements).
  ///
  /// Single plannable statements (SELECT/INSERT/UPDATE/DELETE) are
  /// transparently cached by SQL text: a repeated Query with the exact
  /// same string reuses the cached physical plan (rewound via
  /// PhysicalOperator::Reset()) and skips the parse-bind-plan pipeline —
  /// ORMs get prepared-statement performance without code changes. A
  /// catalog version change (DDL) triggers a transparent re-plan; the
  /// cache holds at most kPlanCacheCapacity entries, evicted LRU.
  /// `PRAGMA plan_cache=off` disables (and clears) it.
  ///
  /// \param sql one or more SQL statements.
  /// \return the materialized result of the last statement, or the
  ///         first parse/bind/execution error (later statements are
  ///         not run after a failure).
  Result<std::unique_ptr<MaterializedQueryResult>> Query(
      const std::string& sql);

  /// Number of entries currently in the plan cache (tests/benches).
  idx_t PlanCacheSize() const { return plan_cache_.size(); }

  /// This connection's `PRAGMA threads` override for parallel operators
  /// (0 = follow the governor's budget). Other connections on the same
  /// Database are unaffected.
  int ThreadOverride() const { return thread_override_; }

  /// Executes a single SELECT and streams chunks as they are produced —
  /// the client application becomes the root of the plan (paper
  /// section 5).
  ///
  /// \param sql exactly one SELECT statement.
  /// \return a streaming result that must not outlive this connection.
  Result<std::unique_ptr<StreamingQueryResult>> SendQuery(
      const std::string& sql);

  /// Parses and plans a single SELECT / INSERT / UPDATE / DELETE once,
  /// returning a PreparedStatement with typed parameter slots for the
  /// `?` / `$N` placeholders. Repeated Bind + Execute cycles skip the
  /// parse-bind-plan pipeline entirely (paper section 3). The connection
  /// must outlive the returned statement.
  Result<std::unique_ptr<PreparedStatement>> Prepare(const std::string& sql);

  /// Explicit transaction control (equivalent to BEGIN/COMMIT/ROLLBACK).
  Status BeginTransaction();
  Status Commit();
  Status Rollback();
  bool InTransaction() const { return transaction_ != nullptr; }

  Database& database() { return *db_; }

 private:
  friend class PreparedStatement;
  friend class StreamingQueryResult;

  Result<std::unique_ptr<MaterializedQueryResult>> ExecuteStatement(
      SQLStatement* stmt);

  /// The shared execute stage of the prepare-then-execute pipeline:
  /// transaction setup (autocommit or explicit), chunk pull loop, and
  /// commit/rollback. Query, prepared Execute and CTAS all route here;
  /// the plan is borrowed, so prepared statements can re-run it.
  Result<std::unique_ptr<MaterializedQueryResult>> ExecutePhysicalPlan(
      PhysicalOperator* plan, const std::vector<std::string>& names,
      const std::vector<TypeId>& types);
  Result<std::unique_ptr<MaterializedQueryResult>> ExecutePlan(
      struct PreparedPlan plan);

  /// Shared streaming stage: wraps a plan (owned or borrowed) in a
  /// StreamingQueryResult with autocommit handling. `lease` (if any) is
  /// held by the stream until it closes, letting the plan's owner detect
  /// that a stream is still live.
  Result<std::unique_ptr<StreamingQueryResult>> StreamPlan(
      std::unique_ptr<PhysicalOperator> owned_plan, PhysicalOperator* plan,
      std::vector<std::string> names, std::vector<TypeId> types,
      std::shared_ptr<void> lease = nullptr);

  /// Executes one PRAGMA. Most pragmas return a single `ok` row;
  /// `PRAGMA threads` with no value returns the connection's effective
  /// thread budget (the pinned override or the governor's live budget).
  Result<std::unique_ptr<MaterializedQueryResult>> ExecutePragma(
      const PragmaStatement& stmt);

  /// Returns the active transaction, starting an autocommit one if
  /// needed; `started` reports whether this call opened it.
  Result<Transaction*> ActiveTransaction(bool* started);
  Status FinishAutocommit(bool started, bool success);

  /// Plans a single already-parsed statement into a cached-plan entry
  /// (no parameter slots — Query-path SQL carries literal values).
  Result<std::unique_ptr<PreparedStatement>> PreparePlanned(
      std::unique_ptr<SQLStatement> statement);

  static constexpr idx_t kPlanCacheCapacity = 64;

  struct PlanCacheEntry {
    std::unique_ptr<PreparedStatement> statement;
    uint64_t last_used = 0;
  };

  Database* db_;
  std::unique_ptr<Transaction> transaction_;  // explicit transaction
  // Per-connection PRAGMA threads override; 0 = governor budget.
  int thread_override_ = 0;

  // Transparent per-connection plan cache for Connection::Query,
  // keyed by exact SQL text (LRU, bounded).
  std::unordered_map<std::string, PlanCacheEntry> plan_cache_;
  uint64_t plan_cache_tick_ = 0;
  bool plan_cache_enabled_ = true;
};

/// Streaming result: pulls chunks straight from the physical plan. The
/// plan is either owned (ad-hoc SendQuery) or borrowed from a
/// PreparedStatement, which must then outlive this result.
class StreamingQueryResult final : public QueryResult {
 public:
  StreamingQueryResult(Connection* connection,
                       std::unique_ptr<PhysicalOperator> owned_plan,
                       PhysicalOperator* plan, std::vector<std::string> names,
                       std::vector<TypeId> types, bool owns_transaction,
                       std::unique_ptr<Transaction> txn,
                       std::shared_ptr<void> lease = nullptr);
  ~StreamingQueryResult() override;

  /// Next chunk or nullptr at the end. The returned chunk is the
  /// engine's own buffer — zero-copy hand-over.
  Result<std::unique_ptr<DataChunk>> Fetch() override;

  /// Finishes the stream early (commits the autocommit transaction).
  Status Close();

 private:
  Connection* connection_;
  std::unique_ptr<PhysicalOperator> owned_plan_;
  PhysicalOperator* plan_;
  bool owns_transaction_;
  std::unique_ptr<Transaction> txn_;
  std::shared_ptr<void> lease_;  // released on Close()
  bool done_ = false;
};

}  // namespace mallard

#endif  // MALLARD_MAIN_CONNECTION_H_
