/**
 * @file query_result.h
 * @brief QueryResult base and MaterializedQueryResult.
 *
 * Ownership: chunks own their payloads (VARCHAR bytes live in
 * per-vector heaps), so a materialized result stays readable after its
 * connection — even its database — is gone. Chunks obtained from
 * Fetch() are handed over, not copied.
 * Thread safety: a result belongs to the thread using it; no locking.
 */
#ifndef MALLARD_MAIN_QUERY_RESULT_H_
#define MALLARD_MAIN_QUERY_RESULT_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/common/result.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

/// Base query result: schema plus a chunk stream. Fetch() hands over the
/// engine's own chunks without copying — the transfer-efficiency design
/// of paper section 5 ("the client application becomes the root operator
/// of the physical plan").
class QueryResult {
 public:
  QueryResult(std::vector<std::string> names, std::vector<TypeId> types)
      : names_(std::move(names)), types_(std::move(types)) {}
  virtual ~QueryResult() = default;

  const std::vector<std::string>& names() const { return names_; }
  const std::vector<TypeId>& types() const { return types_; }
  idx_t ColumnCount() const { return types_.size(); }

  /// Returns the next chunk, or nullptr when the result is exhausted.
  virtual Result<std::unique_ptr<DataChunk>> Fetch() = 0;

 protected:
  std::vector<std::string> names_;
  std::vector<TypeId> types_;
};

/// Fully materialized result. Also exposes the row/value-at-a-time API
/// (GetValue) that the paper identifies as the traditional client
/// bottleneck — kept deliberately so benches can measure chunk-based vs
/// value-based access (section 5).
class MaterializedQueryResult final : public QueryResult {
 public:
  MaterializedQueryResult(std::vector<std::string> names,
                          std::vector<TypeId> types,
                          std::vector<std::unique_ptr<DataChunk>> chunks)
      : QueryResult(std::move(names), std::move(types)),
        chunks_(std::move(chunks)) {
    for (const auto& chunk : chunks_) row_count_ += chunk->size();
  }

  idx_t RowCount() const { return row_count_; }

  /// Value-based access: O(chunks) per call by design (mirrors
  /// sqlite3_column-style APIs the paper benchmarks against).
  ///
  /// \param column 0-based column index.
  /// \param row    0-based row index across all chunks.
  /// \return the boxed value; out-of-range coordinates — and rows whose
  ///         chunk was already handed over via Fetch() — yield a NULL
  ///         Value rather than undefined behavior.
  Value GetValue(idx_t column, idx_t row) const;

  /// Streams the materialized chunks (no copies).
  Result<std::unique_ptr<DataChunk>> Fetch() override;

  /// Renders rows as tab-separated text (debugging/examples).
  std::string ToString(idx_t max_rows = 20) const;

  const std::vector<std::unique_ptr<DataChunk>>& Chunks() const {
    return chunks_;
  }

 private:
  std::vector<std::unique_ptr<DataChunk>> chunks_;
  idx_t row_count_ = 0;
  idx_t fetch_position_ = 0;
  idx_t consumed_rows_ = 0;  // rows handed over by Fetch() so far
};

}  // namespace mallard

#endif  // MALLARD_MAIN_QUERY_RESULT_H_
