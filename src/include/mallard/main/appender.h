/**
 * @file appender.h
 * @brief Appender: bulk ingest without SQL round-trips.
 *
 * Error model: append errors are sticky — the first failure is
 * remembered and returned from EndRow()/Flush()/Close(); subsequent
 * Append() calls become no-ops until then.
 * Lifetime: the Database must outlive the appender. Thread safety: one
 * appender per thread.
 */
#ifndef MALLARD_MAIN_APPENDER_H_
#define MALLARD_MAIN_APPENDER_H_

#include <memory>
#include <string>

#include "mallard/main/database.h"

namespace mallard {

/// Bulk ingest API: the application fills chunks client-side and hands
/// them to the engine — the reverse direction of the zero-copy transfer
/// design (paper section 5: "the client application can fill chunks with
/// its data; once filled, they are handed over and appended").
class Appender {
 public:
  /// Creates an appender for `table`.
  ///
  /// \param db    the owning database (must outlive the appender).
  /// \param table target table name.
  /// \return the appender, or a catalog error for unknown tables.
  static Result<std::unique_ptr<Appender>> Create(Database* db,
                                                  const std::string& table);
  ~Appender();

  Appender(const Appender&) = delete;
  Appender& operator=(const Appender&) = delete;

  /// Row-building API.
  Appender& Append(bool value);
  Appender& Append(int32_t value);
  Appender& Append(int64_t value);
  Appender& Append(double value);
  Appender& Append(const char* value);
  Appender& Append(const std::string& value);
  Appender& Append(const Value& value);
  Appender& AppendNull();
  /// Completes the current row; auto-flushes full chunks.
  Status EndRow();

  /// Hands a caller-filled chunk directly to the engine (bulk path).
  Status AppendChunk(const DataChunk& chunk);

  /// Commits everything buffered so far in one transaction.
  Status Flush();
  /// Flush + stop accepting rows.
  Status Close();

  idx_t RowsAppended() const { return rows_appended_; }

 private:
  Appender(Database* db, DataTable* table);

  Database* db_;
  DataTable* table_;
  DataChunk chunk_;
  idx_t column_ = 0;
  bool closed_ = false;
  idx_t rows_appended_ = 0;
  Status pending_error_;
};

}  // namespace mallard

#endif  // MALLARD_MAIN_APPENDER_H_
