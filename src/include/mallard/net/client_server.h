#ifndef MALLARD_NET_CLIENT_SERVER_H_
#define MALLARD_NET_CLIENT_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"

namespace mallard {
namespace net {

/// Result-set wire protocols, modelling the client-server transfer the
/// paper identifies as the traditional bottleneck (section 5):
/// kText serializes every value to text row-by-row (the classic
/// PostgreSQL-style protocol); kBinaryColumnar ships whole chunks in the
/// engine's serialized columnar layout (the best case a socket-based
/// system can do). Both still pay serialization + socket copies that the
/// in-process chunk hand-over avoids entirely.
enum class Protocol : uint8_t { kText = 0, kBinaryColumnar = 1 };

/// A multi-client query server: each client hangs off its own socket
/// pair and is served by its own thread holding a persistent Connection
/// (so per-client session state — priority, thread pins, transactions —
/// and the shared plan cache behave exactly as for N embedded threads).
/// Concurrent clients exercise the shared scheduler: their statements
/// are admitted, ticketed and scheduled fairly like any other
/// connections on the Database.
class QueryServer {
 public:
  /// Spawns the server with one client slot; `client_fd()` is the
  /// application's end of it.
  static Result<std::unique_ptr<QueryServer>> Start(Database* db,
                                                    Protocol protocol);
  /// Orderly shutdown: closes every client socket and joins every
  /// serving thread (in-flight statements finish first).
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// The first client's socket end.
  int client_fd() const;

  /// Adds another concurrently served client (own thread, own
  /// persistent Connection) and returns the application's socket end.
  /// Thread-safe.
  Result<int> AddClient();

  /// Clients currently served. Thread-safe.
  size_t client_count() const;

  /// Bytes written to all sockets since start (transfer volume metric).
  uint64_t bytes_sent() const { return bytes_sent_.load(); }

 private:
  struct ClientSession {
    int server_fd = -1;
    int client_fd = -1;
    std::thread thread;
  };

  QueryServer(Database* db, Protocol protocol)
      : db_(db), protocol_(protocol) {}
  /// Creates a socket pair + serving thread; thread-safe.
  Result<ClientSession*> NewSession();
  void Run(ClientSession* session);
  Status ServeOne(Connection* con, ClientSession* session,
                  const std::string& sql);
  Status SendAll(ClientSession* session, const void* data, size_t len);

  Database* db_;
  Protocol protocol_;
  // Guards sessions_ growth; serving threads only touch their own
  // session (pointers stay stable under push_back of unique_ptrs).
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ClientSession>> sessions_;
  // Written by serving threads, read by the benchmarking thread.
  std::atomic<uint64_t> bytes_sent_{0};
};

/// Client side: sends SQL, deserializes the response into a materialized
/// result. One instance per socket; use from one thread at a time.
class QueryClient {
 public:
  QueryClient(int fd, Protocol protocol) : fd_(fd), protocol_(protocol) {}

  Result<std::unique_ptr<MaterializedQueryResult>> Query(
      const std::string& sql);

 private:
  Status RecvAll(void* data, size_t len);
  Status SendAll(const void* data, size_t len);

  int fd_;
  Protocol protocol_;
};

}  // namespace net
}  // namespace mallard

#endif  // MALLARD_NET_CLIENT_SERVER_H_
