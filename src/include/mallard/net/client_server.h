#ifndef MALLARD_NET_CLIENT_SERVER_H_
#define MALLARD_NET_CLIENT_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"

namespace mallard {
namespace net {

/// Result-set wire protocols, modelling the client-server transfer the
/// paper identifies as the traditional bottleneck (section 5):
/// kText serializes every value to text row-by-row (the classic
/// PostgreSQL-style protocol); kBinaryColumnar ships whole chunks in the
/// engine's serialized columnar layout (the best case a socket-based
/// system can do). Both still pay serialization + socket copies that the
/// in-process chunk hand-over avoids entirely.
enum class Protocol : uint8_t { kText = 0, kBinaryColumnar = 1 };

/// A query server bound to one end of a socket pair, executing SQL
/// against an embedded Database on behalf of a simulated remote client.
class QueryServer {
 public:
  /// Spawns the server thread; `client_fd()` is the application's end.
  static Result<std::unique_ptr<QueryServer>> Start(Database* db,
                                                    Protocol protocol);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  int client_fd() const { return client_fd_; }

  /// Bytes written to the socket since start (transfer volume metric).
  uint64_t bytes_sent() const { return bytes_sent_.load(); }

 private:
  QueryServer(Database* db, Protocol protocol, int server_fd, int client_fd);
  void Run();
  Status ServeOne(const std::string& sql);
  Status SendAll(const void* data, size_t len);

  Database* db_;
  Protocol protocol_;
  int server_fd_;
  int client_fd_;
  std::thread thread_;
  // Written by the server thread, read by the benchmarking thread.
  std::atomic<uint64_t> bytes_sent_{0};
};

/// Client side: sends SQL, deserializes the response into a materialized
/// result.
class QueryClient {
 public:
  QueryClient(int fd, Protocol protocol) : fd_(fd), protocol_(protocol) {}

  Result<std::unique_ptr<MaterializedQueryResult>> Query(
      const std::string& sql);

 private:
  Status RecvAll(void* data, size_t len);
  Status SendAll(const void* data, size_t len);

  int fd_;
  Protocol protocol_;
};

}  // namespace net
}  // namespace mallard

#endif  // MALLARD_NET_CLIENT_SERVER_H_
