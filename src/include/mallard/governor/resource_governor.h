#ifndef MALLARD_GOVERNOR_RESOURCE_GOVERNOR_H_
#define MALLARD_GOVERNOR_RESOURCE_GOVERNOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "mallard/common/status.h"
#include "mallard/compression/codec.h"

namespace mallard {

class BufferManager;

/// Where the DBMS learns about the host application's resource usage.
/// In production this would sample the OS; benches plug in a synthetic
/// application with a programmable timeline (documented substitution).
class AppResourceMonitor {
 public:
  virtual ~AppResourceMonitor() = default;
  /// Bytes of RAM the co-resident application currently uses.
  virtual uint64_t AppMemoryBytes() = 0;
  /// Application CPU utilization in [0, 1].
  virtual double AppCpuUtilization() = 0;
};

/// Programmable monitor used by tests and benches.
class SyntheticAppMonitor final : public AppResourceMonitor {
 public:
  uint64_t AppMemoryBytes() override { return memory_.load(); }
  double AppCpuUtilization() override { return cpu_.load(); }
  void SetMemory(uint64_t bytes) { memory_.store(bytes); }
  void SetCpu(double utilization) { cpu_.store(utilization); }

 private:
  std::atomic<uint64_t> memory_{0};
  std::atomic<double> cpu_{0.0};
};

/// Join algorithm choice the governor can make at physical-planning time
/// (paper section 4: hash join trades RAM for CPU against out-of-core
/// merge join).
enum class JoinAlgorithm : uint8_t { kHash, kMerge };

struct GovernorConfig {
  /// Total memory envelope of the "machine" shared with the application.
  uint64_t total_memory = 4ull << 30;
  /// Hard cap on DBMS memory (paper: "manually set hard limits").
  uint64_t dbms_memory_limit = 1ull << 30;
  /// Maximum worker threads the DBMS may use.
  int max_threads = 4;
  /// Reactive mode: adapt compression/join/memory to app pressure.
  bool reactive = false;
};

/// One recorded reactive decision (drives the Figure 1 bench output).
struct GovernorSample {
  uint64_t app_memory;
  uint64_t dbms_memory;
  double app_cpu;
  CompressionLevel compression;
  uint64_t effective_budget;
  /// Worker threads a parallel operator launched now would be allowed
  /// (reactive mode shrinks this under host-application CPU pressure).
  int thread_budget;
};

/// Resource governor: implements both the manual caps and the reactive
/// resource-sharing scheme of paper section 4. All reads are cheap and
/// thread-safe; the engine consults it at operator decision points.
class ResourceGovernor {
 public:
  explicit ResourceGovernor(const GovernorConfig& config)
      : config_(config),
        max_threads_(config.max_threads),
        reactive_(config.reactive) {}

  /// Monitor, reactive flag and thread cap are atomic: PRAGMAs on one
  /// connection may flip them while another connection's parallel
  /// workers read them at morsel boundaries.
  void SetMonitor(AppResourceMonitor* monitor) { monitor_.store(monitor); }
  void SetBufferManager(BufferManager* buffers) { buffers_ = buffers; }
  /// Initial configuration (runtime state lives in the atomics below).
  const GovernorConfig& config() const { return config_; }
  void SetReactive(bool reactive) { reactive_.store(reactive); }
  bool reactive() const { return reactive_.load(); }
  void SetMemoryLimit(uint64_t bytes);
  /// Thread cap is atomic: parallel operators re-read it at morsel
  /// boundaries while another thread may be adjusting it.
  void SetThreads(int threads) { max_threads_.store(threads); }
  int max_threads() const { return max_threads_.load(); }

  /// Worker threads a parallel pipeline may use right now. Manual mode:
  /// the configured cap. Reactive mode: the cap scaled by the CPU share
  /// the host application leaves free (never below 1 — the query always
  /// makes progress). Morsel sources consult this between morsels, so a
  /// running query sheds workers when the application gets busy.
  int EffectiveThreadBudget() const;

  /// Memory the DBMS should currently use for query intermediates.
  /// Manual mode: the configured cap. Reactive mode: what is left of the
  /// machine after the application's current usage (with 12.5% headroom),
  /// clamped to the cap.
  uint64_t EffectiveMemoryBudget() const;

  /// Compression level for in-memory intermediates / spill buffers.
  /// Reactive: none below 50% machine-memory pressure, light below 75%,
  /// heavy above — the staircase of Figure 1.
  CompressionLevel ChooseCompressionLevel() const;

  /// Manual override used when reactive mode is off.
  void SetCompressionLevel(CompressionLevel level) {
    manual_compression_ = level;
  }

  /// Milliseconds the async WAL flusher sleeps between fsyncs. Base 5ms;
  /// reactive mode stretches it up to 4x as host-application CPU demand
  /// rises (a little durability lag traded for staying off a busy CPU).
  uint64_t WalFlushIntervalMs() const;

  /// Microseconds the integrity scrubber pauses between objects (blocks,
  /// row groups). Zero when the machine is otherwise idle — a scrub on a
  /// quiet embedded host should just finish; reactive mode stretches the
  /// pause up to 2ms per object as the host application's CPU demand
  /// rises, so background verification never competes with the
  /// foreground workload (paper section 4's cooperation stance).
  uint64_t ScrubPauseMicros() const;

  /// Hash vs merge join: hash while the estimated build side is within
  /// 8x the current budget (the grace hash join spills radix partitions,
  /// so builds larger than memory still complete), else out-of-core
  /// merge join.
  JoinAlgorithm ChooseJoinAlgorithm(uint64_t estimated_build_bytes) const;

  /// Records the current state; the Figure 1 bench polls this.
  GovernorSample Sample() const;

 private:
  uint64_t DbmsMemoryUsed() const;

  GovernorConfig config_;
  std::atomic<int> max_threads_;
  std::atomic<bool> reactive_;
  std::atomic<AppResourceMonitor*> monitor_{nullptr};
  BufferManager* buffers_ = nullptr;
  CompressionLevel manual_compression_ = CompressionLevel::kNone;
};

/// Counters exposed via PRAGMA scheduler_stats.
struct AdmissionStats {
  uint64_t admitted = 0;   ///< queries that got an execution slot
  uint64_t queued = 0;     ///< arrivals that had to wait first
  uint64_t shed = 0;       ///< rejected immediately: queue full
  uint64_t timeouts = 0;   ///< rejected after waiting out the timeout
  int active = 0;          ///< slots held right now
  int waiting = 0;         ///< queries queued right now
};

/// The governor's admission gate: every query acquires an execution slot
/// before running and releases it when done. When thread or memory
/// budgets are saturated, new queries queue — bounded, FIFO within
/// priority class (high jumps ahead of normal ahead of low) — or are
/// shed with kResourceExhausted when the queue is full or the wait times
/// out. One query is always admitted when none is active, so a single
/// connection can never be wedged by a tight budget.
class AdmissionController {
 public:
  /// `governor` supplies the memory budget and the auto thread-derived
  /// concurrency limit; `buffers` (set later, may be null in tests)
  /// supplies current memory usage for the saturation gate.
  explicit AdmissionController(const ResourceGovernor* governor)
      : governor_(governor) {}

  void SetBufferManager(const BufferManager* buffers) { buffers_ = buffers; }

  /// 0 = auto (4x the governor's thread cap).
  void SetMaxActive(int limit) { max_active_.store(limit); }
  int max_active() const { return max_active_.load(); }
  void SetQueueDepth(int depth) { queue_depth_.store(depth); }
  int queue_depth() const { return queue_depth_.load(); }
  void SetTimeoutMs(uint64_t ms) { timeout_ms_.store(ms); }
  uint64_t timeout_ms() const { return timeout_ms_.load(); }

  /// Blocks until an execution slot is free (or returns
  /// kResourceExhausted when the bounded queue is full / the wait timed
  /// out). `priority_class`: 0 = low, 1 = normal, 2 = high; admission is
  /// FIFO within a class, higher classes first.
  Status Admit(int priority_class);
  /// Returns the slot acquired by a successful Admit.
  void Release();

  AdmissionStats GetStats() const;

 private:
  /// Effective concurrency limit right now. Thread-safe.
  int EffectiveLimit() const;
  /// One more query may start. Caller holds mutex_.
  bool HasCapacity() const;
  /// `seq` is the next waiter to be served in `cls` and no higher class
  /// has waiters. Caller holds mutex_.
  bool IsNextInLine(int cls, uint64_t seq) const;

  static constexpr int kClasses = 3;

  const ResourceGovernor* governor_;
  const BufferManager* buffers_ = nullptr;
  std::atomic<int> max_active_{0};
  std::atomic<int> queue_depth_{64};
  std::atomic<uint64_t> timeout_ms_{10000};

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  int active_ = 0;
  int waiting_ = 0;
  uint64_t next_seq_ = 0;
  std::deque<uint64_t> waiters_[kClasses];
  uint64_t admitted_ = 0;
  uint64_t queued_ = 0;
  uint64_t shed_ = 0;
  uint64_t timeouts_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_GOVERNOR_RESOURCE_GOVERNOR_H_
