#ifndef MALLARD_RESILIENCE_FAILURE_MODEL_H_
#define MALLARD_RESILIENCE_FAILURE_MODEL_H_

#include <cstdint>

namespace mallard {

/// Per-component hardware failure rates (consumer machines).
/// Defaults reproduce Table 1 of the paper, which cites Nightingale et
/// al., "Cycles, Cells and Platters" (EuroSys'11): over 30 days, 1 in 190
/// machines has a CPU machine-check exception, 1 in 1700 a DRAM bit flip
/// in kernel memory, 1 in 270 a disk failure — and a machine that failed
/// once is roughly two orders of magnitude more likely to fail again.
struct ComponentRates {
  double p_first_30d;   // Pr[>=1 failure in 30 days], healthy machine
  double p_second_30d;  // Pr[>=1 more failure in 30 days | failed before]
};

struct FailureModelConfig {
  ComponentRates cpu{1.0 / 190.0, 1.0 / 2.9};
  ComponentRates dram{1.0 / 1700.0, 1.0 / 12.0};
  ComponentRates disk{1.0 / 270.0, 1.0 / 3.5};
  int window_days = 30;
};

/// Simulation outcome for one component class.
struct ComponentStats {
  uint64_t machines = 0;
  uint64_t first_failures = 0;     // machines with >=1 failure in window 1
  uint64_t recidivism_trials = 0;  // failed machines observed further
  uint64_t second_failures = 0;    // of those, failed again in window 2

  double PrFirst() const {
    return machines ? static_cast<double>(first_failures) / machines : 0.0;
  }
  double PrSecondGivenFirst() const {
    return recidivism_trials
               ? static_cast<double>(second_failures) / recidivism_trials
               : 0.0;
  }
  /// "1 in N" rendering used by the paper's table.
  double OneIn(double p) const { return p > 0 ? 1.0 / p : 0.0; }
};

struct FailureModelResult {
  ComponentStats cpu;
  ComponentStats dram;
  ComponentStats disk;
  /// Expected machines per million that silently corrupt data in 30 days
  /// if DRAM flips go undetected (motivates checksums + memory testing).
  double dram_corruptions_per_million;
};

/// Monte Carlo over a fleet of consumer machines: day-by-day Bernoulli
/// hazards per component; after the first failure the hazard switches to
/// the escalated ("recidivist") rate, reproducing the structure of the
/// study the paper cites. Deterministic for a given seed.
FailureModelResult SimulateFleet(const FailureModelConfig& config,
                                 uint64_t n_machines, uint64_t seed);

}  // namespace mallard

#endif  // MALLARD_RESILIENCE_FAILURE_MODEL_H_
