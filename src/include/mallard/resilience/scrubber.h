#ifndef MALLARD_RESILIENCE_SCRUBBER_H_
#define MALLARD_RESILIENCE_SCRUBBER_H_

#include <string>
#include <vector>

#include "mallard/common/constants.h"
#include "mallard/common/status.h"

namespace mallard {

class BlockManager;
class WriteAheadLog;
class Catalog;
class ResourceGovernor;

/// One scrubbed object: a data block, the WAL, or a table row group.
/// Healthy categories collapse into one summary finding; every damaged
/// object gets its own finding so the operator knows exactly what to
/// restore or salvage.
struct ScrubFinding {
  std::string object;  // "block 12", "wal", "table 't' row group 3", ...
  bool ok;
  std::string detail;  // error text when !ok, verification summary when ok
};

struct ScrubReport {
  std::vector<ScrubFinding> findings;
  idx_t objects = 0;   // objects individually verified
  idx_t failures = 0;  // objects that failed verification
};

/// Online integrity scrubber behind `PRAGMA integrity_check` (paper
/// section 3: an embedded engine cannot assume healthy hardware, so it
/// must be able to *prove* its persistent state intact). One run walks
///   - every live database block (stored CRC32C vs payload),
///   - the WAL (header magic + per-frame CRCs, under the flush token),
///   - every table row group (encoding invariants via a serializer
///     round-trip, zone-map statistics vs stored data, quarantine state).
/// The walk is paced by ResourceGovernor::ScrubPauseMicros between
/// objects so a scrub never competes with the host application's
/// foreground work. The scrubber only reports — it never repairs or
/// quarantines by itself (reopen handles that) — so a run is always
/// safe to issue on a live database.
class IntegrityScrubber {
 public:
  /// Any of `blocks`/`wal` may be null (in-memory databases): the
  /// corresponding category is skipped.
  IntegrityScrubber(BlockManager* blocks, WriteAheadLog* wal,
                    Catalog* catalog, const ResourceGovernor* governor)
      : blocks_(blocks), wal_(wal), catalog_(catalog), governor_(governor) {}

  ScrubReport Run();

 private:
  void Pace() const;

  BlockManager* blocks_;
  WriteAheadLog* wal_;
  Catalog* catalog_;
  const ResourceGovernor* governor_;
};

}  // namespace mallard

#endif  // MALLARD_RESILIENCE_SCRUBBER_H_
