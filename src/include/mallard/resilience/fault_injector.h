#ifndef MALLARD_RESILIENCE_FAULT_INJECTOR_H_
#define MALLARD_RESILIENCE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "mallard/common/random.h"

namespace mallard {

/// Sites where hardware faults can be injected. The paper (section 3)
/// argues an embedded DBMS must distrust consumer hardware; this injector
/// simulates the silent failure modes so tests and benches can verify the
/// defenses (checksums, memory tests) actually detect them.
enum class FaultSite : uint8_t {
  kBlockWrite = 0,   // flip a bit in a block buffer as it is written
  kBlockRead,        // flip a bit in a block buffer after it is read
  kTornWrite,        // persist only a prefix of a block/WAL write
  kFsyncFailure,     // fsync reports failure
  kWalWrite,         // flip a bit in a WAL frame as it is written
  kSpillWrite,       // spill-file write fails (out-of-core eviction)
  kSpillRead,        // spill-file read fails (reload of an evicted buffer)
  kWalAppend,        // WAL batch append fails (or process dies mid-append)
  kWalFsync,         // WAL fsync fails (or process dies before syncing)
  kWalTruncate,      // post-checkpoint WAL truncation fails (or dies first)
  kCheckpointWrite,  // checkpoint block write fails (or dies mid-write)
  kCheckpointRootSwap,  // root swap fails (or dies before the header flip)
  kNumFaultSites,
};

/// Process-wide fault injection control. Disabled by default; tests and
/// benches arm individual sites with a probability or a one-shot trigger.
/// Thread-safe.
class FaultInjector {
 public:
  static FaultInjector& Get();

  /// Arms `site` to fire with probability `p` on each opportunity.
  void Arm(FaultSite site, double probability);
  /// Arms `site` to fire exactly once on the next opportunity.
  void ArmOnce(FaultSite site);
  /// Arms `site` to fire on the next `failures` opportunities and then
  /// succeed — models a transient fault (loose cable, overloaded disk
  /// queue) that a bounded retry loop should ride out.
  void ArmTransient(FaultSite site, uint64_t failures);
  /// Disarms a single site.
  void Disarm(FaultSite site);
  /// Disarms everything (call in test teardown).
  void Reset();

  /// Returns true if the fault should fire now; decrements one-shots.
  bool ShouldFire(FaultSite site);

  /// Arms `site` as a process-kill point for the crash-recovery torture
  /// harness: ShouldKill(site) returns true on the (skip+1)-th
  /// opportunity after arming. The call site performs its partial effect
  /// (e.g. a half-written batch) and then calls KillProcess(), modeling
  /// power loss at exactly that point.
  void ArmKillAfter(FaultSite site, uint64_t skip);
  /// True exactly once when an armed kill point is reached.
  bool ShouldKill(FaultSite site);
  /// Immediate process death without destructors, flushes or atexit
  /// handlers — the closest user-space approximation of power loss.
  [[noreturn]] static void KillProcess();
  /// Exit code KillProcess dies with; the torture driver asserts it to
  /// distinguish an intended kill from an accidental crash.
  static constexpr int kKillExitCode = 87;

  /// Flips a pseudo-random bit in the buffer; returns the flipped bit
  /// index. Used by sites that corrupt data.
  uint64_t FlipRandomBit(void* data, uint64_t len);

  /// Number of times each site has fired since the last Reset.
  uint64_t FireCount(FaultSite site) const;

 private:
  FaultInjector() = default;

  struct SiteState {
    double probability = 0.0;
    std::atomic<int64_t> one_shots{0};
    // Transient countdown: fire while > 0, decrementing; then succeed.
    std::atomic<int64_t> transient_failures{0};
    std::atomic<uint64_t> fire_count{0};
    // Kill countdown: -1 disarmed, 0 fire now, n>0 skip n opportunities.
    std::atomic<int64_t> kill_countdown{-1};
  };

  mutable std::mutex mutex_;
  RandomEngine rng_{0xFA417};
  SiteState sites_[static_cast<int>(FaultSite::kNumFaultSites)];
};

}  // namespace mallard

#endif  // MALLARD_RESILIENCE_FAULT_INJECTOR_H_
