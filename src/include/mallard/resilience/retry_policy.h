#ifndef MALLARD_RESILIENCE_RETRY_POLICY_H_
#define MALLARD_RESILIENCE_RETRY_POLICY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "mallard/common/status.h"

namespace mallard {

/// Process-wide resilience counters, surfaced by PRAGMA resilience_stats.
/// One flat struct of atomics (mirroring FaultInjector's process-wide
/// scope): the retry loops, checksum verifiers, quarantine logic and the
/// scrubber all tick these, and tests diff or Reset() them.
struct ResilienceStats {
  // Retry-path telemetry.
  std::atomic<uint64_t> io_attempts{0};       // every guarded I/O attempt
  std::atomic<uint64_t> io_retries{0};        // attempts beyond the first
  std::atomic<uint64_t> retry_successes{0};   // ops that succeeded on a retry
  std::atomic<uint64_t> retry_exhausted{0};   // ops that failed all attempts
  std::atomic<uint64_t> backoff_waits{0};     // sleeps taken between attempts
  std::atomic<uint64_t> backoff_micros{0};    // total backoff requested

  // Detection and degradation telemetry.
  std::atomic<uint64_t> block_checksum_failures{0};
  std::atomic<uint64_t> spill_checksum_failures{0};
  std::atomic<uint64_t> quarantined_row_groups{0};
  std::atomic<uint64_t> salvage_skipped_groups{0};
  std::atomic<uint64_t> salvage_skipped_rows{0};

  // Scrubber telemetry.
  std::atomic<uint64_t> scrub_runs{0};
  std::atomic<uint64_t> scrub_objects{0};
  std::atomic<uint64_t> scrub_failures{0};

  void Reset() {
    io_attempts = io_retries = retry_successes = retry_exhausted = 0;
    backoff_waits = backoff_micros = 0;
    block_checksum_failures = spill_checksum_failures = 0;
    quarantined_row_groups = salvage_skipped_groups = salvage_skipped_rows = 0;
    scrub_runs = scrub_objects = scrub_failures = 0;
  }
};

ResilienceStats& GlobalResilienceStats();

/// Bounded-attempt exponential-backoff wrapper for storage I/O. The
/// failure model (failure_model.h) says transient faults — a loaded disk
/// queue, an in-flight DRAM flip on the read path — clear on their own;
/// the policy rides them out instead of failing the query, while a
/// persistent fault still fails cleanly after `max_attempts`.
///
/// The sleep hook is injectable (per instance or process-wide) so tests
/// observe the exact backoff schedule without wall-clock sleeping.
class RetryPolicy {
 public:
  using SleepFn = std::function<void(uint64_t micros)>;

  struct Options {
    uint32_t max_attempts = 3;
    uint64_t initial_backoff_micros = 100;
    uint64_t max_backoff_micros = 10000;
    uint32_t backoff_multiplier = 4;
  };

  RetryPolicy() = default;
  explicit RetryPolicy(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// Process-wide sleep hook override; nullptr restores the real sleep.
  /// Tests install a capturing hook to assert the backoff schedule.
  static void SetGlobalSleepHook(SleepFn hook);

  /// Runs `op` (returning Status) up to max_attempts times, sleeping an
  /// exponentially growing backoff between attempts. `retryable` decides
  /// which failures are worth another attempt; the default treats only
  /// kIOError as transient. kCorruption is retryable only where the
  /// caller can re-fetch from a clean source (e.g. re-reading a block
  /// from disk distinguishes an in-flight flip from media damage).
  template <typename F, typename P>
  Status Execute(F&& op, P&& retryable) const {
    auto& stats = GlobalResilienceStats();
    uint64_t backoff = options_.initial_backoff_micros;
    Status last;
    uint32_t attempt = 1;
    for (;; ++attempt) {
      stats.io_attempts.fetch_add(1);
      last = op();
      if (last.ok()) {
        if (attempt > 1) stats.retry_successes.fetch_add(1);
        return last;
      }
      if (attempt >= options_.max_attempts || !retryable(last)) break;
      stats.io_retries.fetch_add(1);
      stats.backoff_waits.fetch_add(1);
      stats.backoff_micros.fetch_add(backoff);
      Sleep(backoff);
      backoff *= options_.backoff_multiplier;
      if (backoff > options_.max_backoff_micros) {
        backoff = options_.max_backoff_micros;
      }
    }
    if (attempt >= options_.max_attempts && retryable(last)) {
      stats.retry_exhausted.fetch_add(1);
    }
    return last;
  }

  template <typename F>
  Status Execute(F&& op) const {
    return Execute(std::forward<F>(op),
                   [](const Status& s) { return s.IsIOError(); });
  }

 private:
  static void Sleep(uint64_t micros);

  Options options_;
};

}  // namespace mallard

#endif  // MALLARD_RESILIENCE_RETRY_POLICY_H_
