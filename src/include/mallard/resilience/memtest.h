#ifndef MALLARD_RESILIENCE_MEMTEST_H_
#define MALLARD_RESILIENCE_MEMTEST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "mallard/common/status.h"

namespace mallard {

/// Abstraction over a memory region for the test algorithms. Healthy RAM
/// is accessed through DirectMemory; fault simulation wraps the same
/// interface so the detection logic is identical in tests and production.
class MemoryDevice {
 public:
  virtual ~MemoryDevice() = default;
  virtual uint64_t SizeWords() const = 0;
  virtual void WriteWord(uint64_t index, uint64_t value) = 0;
  virtual uint64_t ReadWord(uint64_t index) = 0;
};

/// Direct view over a real allocation (word granularity).
class DirectMemory : public MemoryDevice {
 public:
  DirectMemory(uint8_t* data, uint64_t bytes)
      : words_(reinterpret_cast<uint64_t*>(data)), size_words_(bytes / 8) {}
  uint64_t SizeWords() const override { return size_words_; }
  void WriteWord(uint64_t index, uint64_t value) override {
    words_[index] = value;
  }
  uint64_t ReadWord(uint64_t index) override { return words_[index]; }

 private:
  uint64_t* words_;
  uint64_t size_words_;
};

/// A single simulated DRAM fault.
struct MemoryFault {
  enum class Kind : uint8_t {
    kStuckAtZero,  // bit always reads 0
    kStuckAtOne,   // bit always reads 1
    kCoupling,     // writing victim word flips a bit in neighbor word
  };
  Kind kind;
  uint64_t word_index;
  uint8_t bit;
  uint64_t neighbor_index = 0;  // for coupling faults
  uint8_t neighbor_bit = 0;
};

/// Simulated DIMM: backing storage plus programmable faults, used to
/// validate that the detection algorithms actually find realistic failure
/// modes (stuck cells, inter-cell coupling; cf. memtest86 behaviour the
/// paper cites).
class SimulatedDimm : public MemoryDevice {
 public:
  explicit SimulatedDimm(uint64_t bytes) : storage_(bytes / 8, 0) {}

  void AddFault(const MemoryFault& fault) { faults_.push_back(fault); }
  const std::vector<MemoryFault>& faults() const { return faults_; }

  uint64_t SizeWords() const override { return storage_.size(); }
  void WriteWord(uint64_t index, uint64_t value) override;
  uint64_t ReadWord(uint64_t index) override;

 private:
  std::vector<uint64_t> storage_;
  std::vector<MemoryFault> faults_;
};

/// Result of a memory test pass.
struct MemtestResult {
  bool passed = true;
  /// Word indices where a mismatch was observed.
  std::vector<uint64_t> bad_words;
  uint64_t words_tested = 0;
  /// Total memory traffic generated (bytes read + written) — the cost the
  /// paper says makes constant whole-RAM testing infeasible.
  uint64_t traffic_bytes = 0;
};

/// Fast screen: walking-ones then walking-zeros on every word.
/// Catches stuck-at faults; used at buffer allocation time.
MemtestResult WalkingBitsTest(MemoryDevice& mem);

/// memtest86-style "moving inversions": write pattern ascending, verify &
/// write complement ascending, verify descending. Catches coupling faults
/// that simple pattern tests miss. `iterations` repeats with rotated
/// patterns.
MemtestResult MovingInversionsTest(MemoryDevice& mem, uint64_t pattern,
                                   int iterations);

/// Address-in-address test: each word stores its own index; catches
/// addressing faults.
MemtestResult AddressTest(MemoryDevice& mem);

/// Full self-test battery over one device (walking bits, moving
/// inversions, address-in-address). Returns kHardwareFailure naming the
/// number of misbehaving words, or OK. Database::Open runs this over a
/// scratch region when DBConfig::verify_memory (or MALLARD_MEMTEST=1)
/// is set and refuses to open on failure.
Status RunMemorySelfTest(MemoryDevice& mem);

}  // namespace mallard

#endif  // MALLARD_RESILIENCE_MEMTEST_H_
