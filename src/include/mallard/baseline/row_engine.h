#ifndef MALLARD_BASELINE_ROW_ENGINE_H_
#define MALLARD_BASELINE_ROW_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mallard/execution/aggregate_function.h"
#include "mallard/execution/physical_operator.h"
#include "mallard/expression/bound_expression.h"
#include "mallard/storage/table/data_table.h"

namespace mallard {
namespace baseline {

/// Classic tuple-at-a-time Volcano interpreter: every operator produces
/// one boxed row per Next() call and every expression is re-interpreted
/// per tuple. This is the baseline the paper's vectorized "Vector
/// Volcano" engine is designed to beat (section 6 cites MonetDB/X100);
/// the bench reproduces that comparison.
class RowOperator {
 public:
  virtual ~RowOperator() = default;
  /// Produces the next row; false = exhausted.
  virtual Result<bool> Next(std::vector<Value>* row) = 0;
};

/// Table scan emitting boxed rows.
class RowScan final : public RowOperator {
 public:
  RowScan(DataTable* table, Transaction* txn, std::vector<idx_t> column_ids);
  Result<bool> Next(std::vector<Value>* row) override;

 private:
  DataTable* table_;
  Transaction* txn_;
  std::vector<idx_t> column_ids_;
  TableScanState state_;
  DataChunk chunk_;
  idx_t position_ = 0;
  bool initialized_ = false;
};

/// Filter evaluating the predicate one tuple at a time.
class RowFilter final : public RowOperator {
 public:
  RowFilter(ExprPtr predicate, std::unique_ptr<RowOperator> child)
      : predicate_(std::move(predicate)), child_(std::move(child)) {}
  Result<bool> Next(std::vector<Value>* row) override;

 private:
  ExprPtr predicate_;
  std::unique_ptr<RowOperator> child_;
};

/// Projection evaluating each expression per tuple.
class RowProject final : public RowOperator {
 public:
  RowProject(std::vector<ExprPtr> exprs, std::unique_ptr<RowOperator> child)
      : exprs_(std::move(exprs)), child_(std::move(child)) {}
  Result<bool> Next(std::vector<Value>* row) override;

 private:
  std::vector<ExprPtr> exprs_;
  std::unique_ptr<RowOperator> child_;
  std::vector<Value> input_row_;
};

/// Hash aggregation with boxed group keys.
class RowHashAggregate final : public RowOperator {
 public:
  RowHashAggregate(std::vector<ExprPtr> groups,
                   std::vector<BoundAggregate> aggregates,
                   std::unique_ptr<RowOperator> child)
      : groups_(std::move(groups)),
        aggregates_(std::move(aggregates)),
        child_(std::move(child)) {}
  Result<bool> Next(std::vector<Value>* row) override;

 private:
  struct ValueVectorLess {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const {
      for (size_t i = 0; i < a.size() && i < b.size(); i++) {
        int cmp = a[i].Compare(b[i]);
        if (cmp != 0) return cmp < 0;
      }
      return a.size() < b.size();
    }
  };
  std::vector<ExprPtr> groups_;
  std::vector<BoundAggregate> aggregates_;
  std::unique_ptr<RowOperator> child_;
  std::map<std::vector<Value>, std::vector<AggState>, ValueVectorLess>
      groups_map_;
  bool sunk_ = false;
  std::map<std::vector<Value>, std::vector<AggState>,
           ValueVectorLess>::iterator output_it_;
};

}  // namespace baseline
}  // namespace mallard

#endif  // MALLARD_BASELINE_ROW_ENGINE_H_
