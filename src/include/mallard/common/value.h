#ifndef MALLARD_COMMON_VALUE_H_
#define MALLARD_COMMON_VALUE_H_

#include <cstdint>
#include <string>

#include "mallard/common/result.h"
#include "mallard/common/types.h"

namespace mallard {

/// A single, type-tagged, nullable SQL value. Values are used at system
/// boundaries (constants, zone-map statistics, the value-based client API,
/// and the tuple-at-a-time baseline engine); the vectorized engine operates
/// on raw arrays instead.
class Value {
 public:
  /// Constructs a NULL value of invalid type.
  Value() : type_(TypeId::kInvalid), is_null_(true) {}
  /// Constructs a NULL value of the given type.
  explicit Value(TypeId type) : type_(type), is_null_(true) {}

  static Value Boolean(bool value);
  static Value Integer(int32_t value);
  static Value BigInt(int64_t value);
  static Value Double(double value);
  static Value Varchar(std::string value);
  static Value Date(int32_t days);
  static Value Timestamp(int64_t micros);
  static Value Null(TypeId type) { return Value(type); }
  /// Constructs a numeric value of the requested type from an int64.
  static Value Numeric(TypeId type, int64_t value);

  TypeId type() const { return type_; }
  bool is_null() const { return is_null_; }

  bool GetBoolean() const { return value_.boolean; }
  int32_t GetInteger() const { return value_.integer; }
  int64_t GetBigInt() const { return value_.bigint; }
  double GetDouble() const { return value_.float64; }
  const std::string& GetString() const { return string_value_; }
  int32_t GetDate() const { return value_.integer; }
  int64_t GetTimestamp() const { return value_.bigint; }

  /// Returns the value widened to int64 (numeric/date/bool types only).
  int64_t GetAsBigInt() const;
  /// Returns the value widened to double (numeric types only).
  double GetAsDouble() const;

  /// Casts to `target` type. NULLs cast to NULL of the target type.
  Result<Value> CastTo(TypeId target) const;

  /// SQL-style render of the value ("NULL", quoted-free strings).
  std::string ToString() const;

  /// Total ordering used by ORDER BY and zone maps: NULL sorts first,
  /// then by value. Values must have the same type.
  int Compare(const Value& other) const;

  /// SQL equality; NULL == NULL is false here (use Compare for ordering).
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const {
    return Compare(other) < 0;
  }

  /// Hash consistent with operator== (used by the baseline row engine).
  uint64_t Hash() const;

 private:
  TypeId type_;
  bool is_null_ = false;
  union Val {
    bool boolean;
    int32_t integer;
    int64_t bigint;
    double float64;
    Val() : bigint(0) {}
  } value_;
  std::string string_value_;
};

}  // namespace mallard

#endif  // MALLARD_COMMON_VALUE_H_
