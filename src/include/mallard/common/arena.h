#ifndef MALLARD_COMMON_ARENA_H_
#define MALLARD_COMMON_ARENA_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "mallard/common/types.h"

namespace mallard {

/// Bump allocator backed by a list of exponentially growing chunks.
/// Used for string heaps in vectors and row payloads in hash tables;
/// everything allocated from an arena is freed at once when the arena is
/// destroyed or reset.
class ArenaAllocator {
 public:
  explicit ArenaAllocator(size_t initial_capacity = 4096)
      : initial_capacity_(initial_capacity) {}

  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;
  ArenaAllocator(ArenaAllocator&&) = default;
  ArenaAllocator& operator=(ArenaAllocator&&) = default;

  /// Allocates `size` bytes, 8-byte aligned.
  uint8_t* Allocate(size_t size) {
    size = (size + 7) & ~size_t(7);
    if (chunks_.empty() || used_ + size > chunks_.back().capacity) {
      NewChunk(size);
    }
    uint8_t* result = chunks_.back().data.get() + used_;
    used_ += size;
    total_used_ += size;
    return result;
  }

  /// Copies a string into the arena and returns a reference to it.
  StringRef AddString(const char* data, uint32_t size) {
    uint8_t* ptr = Allocate(size);
    std::memcpy(ptr, data, size);
    return StringRef(reinterpret_cast<const char*>(ptr), size);
  }
  StringRef AddString(const StringRef& str) {
    return AddString(str.data, str.size);
  }

  /// Frees all chunks.
  void Reset() {
    chunks_.clear();
    used_ = 0;
    total_used_ = 0;
    total_capacity_ = 0;
  }

  /// Bytes handed out since construction/reset.
  size_t TotalUsed() const { return total_used_; }
  /// Bytes reserved from the system allocator.
  size_t TotalCapacity() const { return total_capacity_; }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t capacity;
  };

  void NewChunk(size_t min_size) {
    size_t cap = chunks_.empty() ? initial_capacity_
                                 : chunks_.back().capacity * 2;
    if (cap < min_size) cap = min_size;
    chunks_.push_back(Chunk{std::make_unique<uint8_t[]>(cap), cap});
    total_capacity_ += cap;
    used_ = 0;
  }

  size_t initial_capacity_;
  std::vector<Chunk> chunks_;
  size_t used_ = 0;
  size_t total_used_ = 0;
  size_t total_capacity_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_COMMON_ARENA_H_
