#ifndef MALLARD_COMMON_STATUS_H_
#define MALLARD_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace mallard {

/// Error category carried by a Status. Mirrors the failure domains of an
/// embedded analytical database: user errors (parser/binder/catalog),
/// runtime errors (IO, out-of-memory), and the resilience-specific
/// corruption category used when checksums or memory tests fail.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kTransactionConflict,
  kTransactionContext,
  kNotImplemented,
  kInternal,
  kOutOfMemory,
  kParser,
  kBinder,
  kCatalog,
  kConstraint,
  kHardwareFailure,
  kInterrupted,
  kResourceExhausted,
};

/// Returns a human-readable name for a status code ("IO error", ...).
const char* StatusCodeToString(StatusCode code);

/// Operation outcome: either OK or an error code plus message. Mallard
/// follows the Status/Result idiom (no exceptions cross API boundaries).
/// The OK state is represented by a null state pointer so that returning
/// Status::OK() is free of allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) = default;
  Status& operator=(Status&& other) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status IOError(std::string msg);
  static Status Corruption(std::string msg);
  static Status TransactionConflict(std::string msg);
  static Status TransactionContext(std::string msg);
  static Status NotImplemented(std::string msg);
  static Status Internal(std::string msg);
  static Status OutOfMemory(std::string msg);
  static Status Parser(std::string msg);
  static Status Binder(std::string msg);
  static Status Catalog(std::string msg);
  static Status Constraint(std::string msg);
  static Status HardwareFailure(std::string msg);
  static Status Interrupted(std::string msg);
  static Status ResourceExhausted(std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK statuses.
  const std::string& message() const;
  /// "<code name>: <message>", or "OK".
  std::string ToString() const;

  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsTransactionConflict() const {
    return code() == StatusCode::kTransactionConflict;
  }
  bool IsInterrupted() const { return code() == StatusCode::kInterrupted; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;
};

/// Propagates a non-OK Status to the caller.
#define MALLARD_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::mallard::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace mallard

#endif  // MALLARD_COMMON_STATUS_H_
