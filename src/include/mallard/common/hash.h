#ifndef MALLARD_COMMON_HASH_H_
#define MALLARD_COMMON_HASH_H_

#include <cstdint>
#include <cstring>

namespace mallard {

/// 64-bit finalizer (murmur3-style); good avalanche for hash tables.
inline uint64_t HashInt(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over a byte range, finalized for avalanche.
inline uint64_t HashBytes(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; i++) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return HashInt(hash);
}

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// Smallest power of two >= n (n = 0 or 1 gives 1). Hash-table
/// capacities are kept power-of-two so slot = hash & (capacity - 1).
inline uint64_t NextPowerOfTwo(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace mallard

#endif  // MALLARD_COMMON_HASH_H_
