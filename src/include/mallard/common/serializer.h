#ifndef MALLARD_COMMON_SERIALIZER_H_
#define MALLARD_COMMON_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "mallard/common/status.h"

namespace mallard {

/// Append-only binary writer used for WAL records, catalog serialization
/// and the network protocol. All integers are little-endian fixed width.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { Append(&v, 1); }
  void WriteU32(uint32_t v) { Append(&v, 4); }
  void WriteU64(uint64_t v) { Append(&v, 8); }
  void WriteI32(int32_t v) { Append(&v, 4); }
  void WriteI64(int64_t v) { Append(&v, 8); }
  void WriteDouble(double v) { Append(&v, 8); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    Append(s.data(), s.size());
  }
  void WriteBytes(const void* data, size_t len) { Append(data, len); }

  const std::vector<uint8_t>& data() const { return data_; }
  size_t size() const { return data_.size(); }
  void Clear() { data_.clear(); }
  /// Drops the first `len` bytes. Used by streaming writers that flush a
  /// completed prefix to disk while continuing to append at the tail,
  /// keeping the in-memory buffer bounded.
  void ConsumePrefix(size_t len) {
    data_.erase(data_.begin(), data_.begin() + static_cast<ptrdiff_t>(len));
  }

 private:
  void Append(const void* src, size_t len) {
    size_t old = data_.size();
    data_.resize(old + len);
    std::memcpy(data_.data() + old, src, len);
  }
  std::vector<uint8_t> data_;
};

/// Bounds-checked binary reader over a byte range (non-owning).
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}

  Status ReadU8(uint8_t* out) { return Read(out, 1); }
  Status ReadU32(uint32_t* out) { return Read(out, 4); }
  Status ReadU64(uint64_t* out) { return Read(out, 8); }
  Status ReadI32(int32_t* out) { return Read(out, 4); }
  Status ReadI64(int64_t* out) { return Read(out, 8); }
  Status ReadDouble(double* out) { return Read(out, 8); }
  Status ReadBool(bool* out) {
    uint8_t v;
    MALLARD_RETURN_NOT_OK(ReadU8(&v));
    *out = v != 0;
    return Status::OK();
  }
  Status ReadString(std::string* out) {
    uint32_t len;
    MALLARD_RETURN_NOT_OK(ReadU32(&len));
    if (pos_ + len > len_) {
      return Status::Corruption("serialized string exceeds buffer");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }
  Status ReadBytes(void* out, size_t len) { return Read(out, len); }

  size_t position() const { return pos_; }
  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ >= len_; }

 private:
  Status Read(void* out, size_t len) {
    if (pos_ + len > len_) {
      return Status::Corruption("read past end of serialized buffer");
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_COMMON_SERIALIZER_H_
