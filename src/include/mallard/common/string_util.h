#ifndef MALLARD_COMMON_STRING_UTIL_H_
#define MALLARD_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace mallard {

/// Assorted string helpers used across the code base.
class StringUtil {
 public:
  static std::string Upper(const std::string& str);
  static std::string Lower(const std::string& str);
  static bool CIEquals(const std::string& a, const std::string& b);
  static std::vector<std::string> Split(const std::string& str, char sep);
  static std::string Join(const std::vector<std::string>& parts,
                          const std::string& sep);
  static std::string Trim(const std::string& str);
  static bool StartsWith(const std::string& str, const std::string& prefix);
  static bool EndsWith(const std::string& str, const std::string& suffix);
  /// SQL LIKE pattern match with '%' and '_' wildcards.
  static bool Like(const char* str, size_t str_len, const char* pattern,
                   size_t pattern_len);
  /// printf-style formatting into a std::string.
  static std::string Format(const char* fmt, ...)
      __attribute__((format(printf, 1, 2)));
};

}  // namespace mallard

#endif  // MALLARD_COMMON_STRING_UTIL_H_
