#ifndef MALLARD_COMMON_RANDOM_H_
#define MALLARD_COMMON_RANDOM_H_

#include <cstdint>

namespace mallard {

/// Deterministic 64-bit PRNG (splitmix64 seeding + xorshift128+ core).
/// Used by the TPC-H generator, the failure-model Monte Carlo and all
/// property tests so results are reproducible across runs.
class RandomEngine {
 public:
  explicit RandomEngine(uint64_t seed = 0x853c49e6748fea9bULL) {
    // splitmix64 to expand the seed into two non-zero state words.
    for (int i = 0; i < 2; i++) {
      seed += 0x9E3779B97f4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
    if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  /// Uniform in [min, max] inclusive.
  int64_t NextInt(int64_t min, int64_t max) {
    return min + static_cast<int64_t>(Next() %
                                      static_cast<uint64_t>(max - min + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_[2];
};

}  // namespace mallard

#endif  // MALLARD_COMMON_RANDOM_H_
