#ifndef MALLARD_COMMON_RESULT_H_
#define MALLARD_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "mallard/common/status.h"

namespace mallard {

/// Either a value of type T or an error Status. Used as the return type of
/// fallible operations that produce a value.
template <typename T>
class Result {
 public:
  /// Implicit from value; mirrors absl::StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. The status must be non-OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define MALLARD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define MALLARD_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define MALLARD_ASSIGN_OR_RETURN_NAME(a, b) MALLARD_ASSIGN_OR_RETURN_CONCAT(a, b)
#define MALLARD_ASSIGN_OR_RETURN(lhs, expr) \
  MALLARD_ASSIGN_OR_RETURN_IMPL(            \
      MALLARD_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace mallard

#endif  // MALLARD_COMMON_RESULT_H_
