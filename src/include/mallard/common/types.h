#ifndef MALLARD_COMMON_TYPES_H_
#define MALLARD_COMMON_TYPES_H_

#include <cstdint>
#include <string>

#include "mallard/common/constants.h"
#include "mallard/common/result.h"

namespace mallard {

/// Physical/logical type of a column or expression. Mallard uses a flat
/// type system without parameterized types; DECIMAL workloads map to
/// kDouble (documented substitution, see DESIGN.md).
enum class TypeId : uint8_t {
  kInvalid = 0,
  kBoolean,    // int8_t storage, 0/1
  kInteger,    // int32_t
  kBigInt,     // int64_t
  kDouble,     // double
  kVarchar,    // StringRef into a string heap
  kDate,       // int32_t days since 1970-01-01
  kTimestamp,  // int64_t microseconds since 1970-01-01 00:00:00
};

/// Returns the SQL-facing name of a type ("INTEGER", "VARCHAR", ...).
const char* TypeIdToString(TypeId type);

/// Parses a SQL type name; accepts common aliases (INT, TEXT, FLOAT8...).
Result<TypeId> TypeIdFromString(const std::string& name);

/// Returns the width in bytes of a type's fixed-size in-vector
/// representation (VARCHAR entries are StringRef, 16 bytes).
idx_t TypeSize(TypeId type);

/// True for INTEGER, BIGINT and DOUBLE.
bool TypeIsNumeric(TypeId type);

/// True if values of `from` can be cast to `to` (possibly lossy).
bool TypeCanCast(TypeId from, TypeId to);

/// Returns the wider of two numeric types for binary arithmetic
/// (INTEGER < BIGINT < DOUBLE); kInvalid if not both numeric.
TypeId MaxNumericType(TypeId left, TypeId right);

/// Reference to a string stored in an external heap (arena). The
/// referenced bytes must outlive the StringRef; vectors tie string
/// lifetimes to their backing buffer so chunks can be handed to clients
/// without copying (paper section 5, transfer efficiency).
struct StringRef {
  const char* data = nullptr;
  uint32_t size = 0;

  StringRef() = default;
  StringRef(const char* data_in, uint32_t size_in)
      : data(data_in), size(size_in) {}

  std::string ToString() const { return std::string(data, size); }
  bool operator==(const StringRef& other) const;
  bool operator<(const StringRef& other) const;
};

/// Date helpers: dates are stored as int32 days since the Unix epoch.
namespace date {
/// Converts (year, month, day) to days since epoch. Valid for years
/// 1700..2400 (proleptic Gregorian).
int32_t FromYMD(int32_t year, int32_t month, int32_t day);
/// Splits days-since-epoch into (year, month, day).
void ToYMD(int32_t days, int32_t* year, int32_t* month, int32_t* day);
/// Parses "YYYY-MM-DD".
Result<int32_t> FromString(const std::string& str);
/// Formats as "YYYY-MM-DD".
std::string ToString(int32_t days);
/// Extracts the year / month / day component.
int32_t Year(int32_t days);
int32_t Month(int32_t days);
int32_t Day(int32_t days);
}  // namespace date

}  // namespace mallard

#endif  // MALLARD_COMMON_TYPES_H_
