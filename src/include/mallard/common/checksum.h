#ifndef MALLARD_COMMON_CHECKSUM_H_
#define MALLARD_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace mallard {

/// CRC32-C (Castagnoli) over a byte range. Every 256KB storage block and
/// every WAL frame is protected by this checksum so that silent bit flips
/// in persistent storage are detected on read (paper section 3).
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace mallard

#endif  // MALLARD_COMMON_CHECKSUM_H_
