#ifndef MALLARD_COMMON_CONSTANTS_H_
#define MALLARD_COMMON_CONSTANTS_H_

#include <cstdint>

namespace mallard {

/// Number of rows processed per vector, the unit of the vectorized
/// "Vector Volcano" execution model (paper section 6).
constexpr uint64_t kVectorSize = 2048;

/// Size of one storage block in the single-file database format.
/// The paper specifies fixed-size blocks of 256KB that are read and
/// written in their entirety (paper section 6).
constexpr uint64_t kBlockSize = 256 * 1024;

/// Number of rows per row group. A row group is the unit of column
/// partitioning, zone maps and MVCC version bookkeeping. Kept small so
/// tests exercise multi-row-group code paths.
constexpr uint64_t kRowGroupSize = 8192;

/// Row identifier type used by DML operators (row id = row group start
/// offset + offset within row group).
using row_t = int64_t;

/// Index type used for offsets and cardinalities throughout the system.
using idx_t = uint64_t;

/// Sentinel for an invalid index.
constexpr idx_t kInvalidIndex = static_cast<idx_t>(-1);

/// Transaction ids for uncommitted transactions start at this base so any
/// uncommitted id compares greater than every possible commit id
/// (HyPer-style MVCC, paper section 6).
constexpr uint64_t kTransactionIdBase = uint64_t(1) << 62;

/// Version marker for rows whose inserting transaction aborted; such rows
/// are never visible to anyone.
constexpr uint64_t kAbortedVersion = ~uint64_t(0);

/// Version value meaning "not deleted" in row version info.
constexpr uint64_t kNotDeleted = 0;

}  // namespace mallard

#endif  // MALLARD_COMMON_CONSTANTS_H_
