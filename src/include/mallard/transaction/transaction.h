#ifndef MALLARD_TRANSACTION_TRANSACTION_H_
#define MALLARD_TRANSACTION_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mallard/common/constants.h"
#include "mallard/common/serializer.h"

namespace mallard {

class DataTable;
class RowGroup;
struct UpdateInfo;

/// A transaction under HyPer-style MVCC (paper section 6): updates are
/// applied in place immediately; previous states are kept in undo
/// structures referenced here so the transaction can be rolled back and
/// concurrent transactions can reconstruct their snapshots.
class Transaction {
 public:
  Transaction(uint64_t txn_id, uint64_t start_id)
      : txn_id_(txn_id), start_id_(start_id) {}

  uint64_t txn_id() const { return txn_id_; }
  uint64_t start_id() const { return start_id_; }
  uint64_t commit_id() const { return commit_id_; }
  void set_commit_id(uint64_t id) { commit_id_ = id; }

  /// Visibility under snapshot isolation: a version is visible if it was
  /// committed before this transaction started, or written by this
  /// transaction itself. Uncommitted versions carry ids above
  /// kTransactionIdBase and are never <= start_id.
  bool IsVisible(uint64_t version) const {
    if (version == kAbortedVersion) return false;
    return version == txn_id_ || version <= start_id_;
  }

  /// --- undo bookkeeping -------------------------------------------------
  struct AppendEntry {
    RowGroup* row_group;
    idx_t start;  // offset within row group
    idx_t count;
  };
  struct DeleteEntry {
    RowGroup* row_group;
    std::vector<uint32_t> rows;  // offsets within row group
  };
  struct UpdateEntry {
    RowGroup* row_group;
    idx_t column_index;
    UpdateInfo* info;  // owned by the update segment chain
  };

  void RecordAppend(RowGroup* rg, idx_t start, idx_t count) {
    appends_.push_back({rg, start, count});
  }
  void RecordDelete(RowGroup* rg, std::vector<uint32_t> rows) {
    deletes_.push_back({rg, std::move(rows)});
  }
  void RecordUpdate(RowGroup* rg, idx_t column_index, UpdateInfo* info) {
    updates_.push_back({rg, column_index, info});
  }

  const std::vector<AppendEntry>& appends() const { return appends_; }
  const std::vector<DeleteEntry>& deletes() const { return deletes_; }
  const std::vector<UpdateEntry>& updates() const { return updates_; }

  bool HasWrites() const {
    return !appends_.empty() || !deletes_.empty() || !updates_.empty() ||
           !wal_records_.empty();
  }

  /// Serialized WAL records accumulated by DML/DDL, flushed at commit.
  std::vector<std::vector<uint8_t>>& wal_records() { return wal_records_; }

 private:
  uint64_t txn_id_;
  uint64_t start_id_;
  uint64_t commit_id_ = 0;
  std::vector<AppendEntry> appends_;
  std::vector<DeleteEntry> deletes_;
  std::vector<UpdateEntry> updates_;
  std::vector<std::vector<uint8_t>> wal_records_;
};

}  // namespace mallard

#endif  // MALLARD_TRANSACTION_TRANSACTION_H_
