#ifndef MALLARD_TRANSACTION_TRANSACTION_MANAGER_H_
#define MALLARD_TRANSACTION_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "mallard/common/result.h"
#include "mallard/transaction/transaction.h"

namespace mallard {

class WriteAheadLog;

/// Hands out transactions and runs the commit/abort protocol of the
/// HyPer-style MVCC scheme (paper section 6): lock-free reads against
/// versioned data, write-write conflict aborts, commit-time stamping of
/// version ids, and WAL flush before commit becomes visible.
class TransactionManager {
 public:
  TransactionManager() = default;

  /// The WAL to flush at commit; null for in-memory databases.
  void SetWal(WriteAheadLog* wal) { wal_ = wal; }

  /// Called every few commits with the oldest active snapshot id so
  /// storage can garbage-collect undo chains.
  void SetCleanupHook(std::function<void(uint64_t)> hook) {
    cleanup_hook_ = std::move(hook);
  }

  std::unique_ptr<Transaction> Begin();

  /// RAII guard that blocks all commits while alive. The checkpointer
  /// holds one so the committed state it scans cannot advance (and no
  /// commit can land in the WAL-durable-but-not-stamped window while the
  /// WAL is truncated). Readers and in-flight statements are unaffected;
  /// committers queue on the gate and proceed when the guard drops.
  class CommitBlock {
   public:
    explicit CommitBlock(TransactionManager* manager);
    ~CommitBlock();
    CommitBlock(const CommitBlock&) = delete;
    CommitBlock& operator=(const CommitBlock&) = delete;

   private:
    TransactionManager* manager_;
  };

  /// True while a CommitBlock is alive. WriteCheckpoint asserts this —
  /// its exclusive-access contract is a hard precondition, not a hope.
  bool CommitsBlocked() const { return commits_blocked_.load(); }

  /// Commits: assigns a commit id, flushes WAL records, stamps versions.
  /// On WAL failure the transaction is rolled back and an error returned.
  /// The WAL write happens outside the manager mutex so concurrent
  /// committers can share a group-commit fsync; a shared commit gate is
  /// held from the WAL write through stamping (see CommitBlock).
  Status Commit(Transaction* txn);

  /// Commit variant used during WAL replay (no WAL re-write).
  Status CommitWithoutWal(Transaction* txn);

  void Rollback(Transaction* txn);

  /// Oldest snapshot id any active transaction can read; commit ids at or
  /// below this are visible to everyone.
  uint64_t LowestActiveStart() const;

  bool HasActiveTransactions() const;
  uint64_t committed_count() const { return committed_; }
  uint64_t conflict_count() const { return conflicts_; }
  void CountConflict() { conflicts_++; }

 private:
  Status CommitInternal(Transaction* txn, bool write_wal);
  void StampCommitted(Transaction* txn, uint64_t commit_id);
  void UndoAll(Transaction* txn);
  void RemoveActive(Transaction* txn);

  mutable std::mutex mutex_;
  // Commit gate: shared by every committer across its WAL-write +
  // stamping window, exclusive for CommitBlock (checkpoint).
  std::shared_mutex commit_gate_;
  std::atomic<bool> commits_blocked_{false};
  WriteAheadLog* wal_ = nullptr;
  uint64_t commit_counter_ = 1;          // commit ids start at 2
  uint64_t next_txn_offset_ = 0;         // txn ids: kTransactionIdBase + n
  std::vector<Transaction*> active_;
  std::function<void(uint64_t)> cleanup_hook_;
  uint64_t committed_ = 0;
  uint64_t conflicts_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_TRANSACTION_TRANSACTION_MANAGER_H_
