#ifndef MALLARD_EXECUTION_PHYSICAL_OPERATOR_H_
#define MALLARD_EXECUTION_PHYSICAL_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/common/result.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

class Transaction;
class BufferManager;
class ResourceGovernor;

/// Per-query execution state threaded through the operator tree.
struct ExecutionContext {
  Transaction* txn = nullptr;
  BufferManager* buffers = nullptr;
  ResourceGovernor* governor = nullptr;
};

/// Base class of the "Vector Volcano" pull-based execution model (paper
/// section 6): the consumer repeatedly pulls chunks from the root; an
/// empty chunk signals completion. Operators recursively pull from their
/// children.
class PhysicalOperator {
 public:
  explicit PhysicalOperator(std::vector<TypeId> types)
      : types_(std::move(types)) {}
  virtual ~PhysicalOperator() = default;

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  /// Output column types of this operator.
  const std::vector<TypeId>& types() const { return types_; }

  /// Produces the next chunk into `out` (initialized with types()).
  /// An output cardinality of 0 signals exhaustion.
  virtual Status GetChunk(ExecutionContext* context, DataChunk* out) = 0;

  /// Rewinds this operator tree so GetChunk streams the full result
  /// again. Prepared statements rely on this to re-execute a plan
  /// without re-parsing or re-planning (paper section 3: amortizing
  /// per-query overhead across repeated small queries).
  Status Reset() {
    for (auto& child : children_) {
      MALLARD_RETURN_NOT_OK(child->Reset());
    }
    return ResetOperator();
  }

  virtual std::string name() const = 0;

  std::vector<std::unique_ptr<PhysicalOperator>>& children() {
    return children_;
  }
  PhysicalOperator* child(idx_t i) { return children_[i].get(); }
  void AddChild(std::unique_ptr<PhysicalOperator> child) {
    children_.push_back(std::move(child));
  }

  /// Renders the operator tree (EXPLAIN).
  std::string ToString(int indent = 0) const;

 protected:
  /// Per-operator rewind hook; stateless operators keep the no-op.
  virtual Status ResetOperator() { return Status::OK(); }

  std::vector<TypeId> types_;
  std::vector<std::unique_ptr<PhysicalOperator>> children_;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_OPERATOR_H_
