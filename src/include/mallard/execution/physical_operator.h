#ifndef MALLARD_EXECUTION_PHYSICAL_OPERATOR_H_
#define MALLARD_EXECUTION_PHYSICAL_OPERATOR_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "mallard/common/result.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

class Transaction;
class BufferManager;
class ResourceGovernor;
class TaskScheduler;
class TableMorselSource;
class DataTable;
class QueryTicket;

/// Per-query execution state threaded through the operator tree. The
/// struct is read-only while a query runs, so one instance is safely
/// shared by every worker of a parallel pipeline.
struct ExecutionContext {
  Transaction* txn = nullptr;
  BufferManager* buffers = nullptr;
  ResourceGovernor* governor = nullptr;
  /// Worker pool for morsel-driven parallel sinks; null = serial only
  /// (contexts built outside Connection, e.g. unit tests, stay serial
  /// unless they opt in).
  TaskScheduler* scheduler = nullptr;
  /// Per-connection PRAGMA threads override; 0 = use the governor's
  /// (possibly reactive) thread budget.
  int thread_limit = 0;
  /// This query's registration with the shared scheduler (null outside
  /// Connection). Parallel phases clamp their width to the ticket's
  /// fair share so concurrent queries split the pool.
  const QueryTicket* ticket = nullptr;
  /// Connection::Interrupt() flag; scans poll it at chunk/morsel
  /// boundaries and fail with kInterrupted when set. Null = never
  /// interrupted (contexts built outside Connection).
  std::atomic<bool>* interrupt = nullptr;
  /// Statement deadline (PRAGMA statement_timeout_ms); checked at the
  /// same chunk/morsel boundaries as `interrupt`. Unset = no timeout.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// PRAGMA salvage_mode: table scans skip quarantined row groups
  /// (reporting skipped counts) instead of failing with kCorruption.
  bool salvage_mode = false;

  /// Chunk/morsel-boundary cancellation point: a pending
  /// Connection::Interrupt() becomes kInterrupted, as does an expired
  /// statement deadline. The check only loads (every parallel worker
  /// sees it and stops at its next boundary); the Connection clears the
  /// flag when the statement finishes, so one Interrupt() kills at most
  /// one statement and the connection stays reusable.
  Status CheckInterrupt() const {
    if (interrupt && interrupt->load(std::memory_order_relaxed)) {
      return Status::Interrupted("query canceled by Connection::Interrupt()");
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return Status::Interrupted("statement timeout reached");
    }
    return Status::OK();
  }
};

/// Inputs for cloning a subtree into one worker's copy of a parallel
/// pipeline (see PhysicalOperator::MorselClone).
struct ParallelCloneContext {
  std::shared_ptr<TableMorselSource> source;
  int worker = 0;
};

/// Base class of the "Vector Volcano" pull-based execution model (paper
/// section 6): the consumer repeatedly pulls chunks from the root; an
/// empty chunk signals completion. Operators recursively pull from their
/// children.
class PhysicalOperator {
 public:
  explicit PhysicalOperator(std::vector<TypeId> types)
      : types_(std::move(types)) {}
  virtual ~PhysicalOperator() = default;

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  /// Output column types of this operator.
  const std::vector<TypeId>& types() const { return types_; }

  /// Produces the next chunk into `out` (initialized with types()).
  /// An output cardinality of 0 signals exhaustion.
  virtual Status GetChunk(ExecutionContext* context, DataChunk* out) = 0;

  /// Rewinds this operator tree so GetChunk streams the full result
  /// again. Prepared statements rely on this to re-execute a plan
  /// without re-parsing or re-planning (paper section 3: amortizing
  /// per-query overhead across repeated small queries).
  Status Reset() {
    for (auto& child : children_) {
      MALLARD_RETURN_NOT_OK(child->Reset());
    }
    return ResetOperator();
  }

  virtual std::string name() const = 0;

  /// The table a morsel-driven parallel pipeline over this subtree would
  /// scan, or null when the subtree has no parallel implementation.
  /// Streaming per-chunk operators (filter, projection) delegate to
  /// their child; everything else defaults to "not parallelizable".
  virtual const DataTable* ParallelSourceTable() const { return nullptr; }

  /// Clones this subtree for one worker of a parallel pipeline: the leaf
  /// table scan becomes a PhysicalMorselScan pulling from ctx.source,
  /// and every operator above it gets private chunk/expression state so
  /// workers never share mutable data. Returns null when the subtree (or
  /// any operator in it) has no parallel implementation — the sink then
  /// falls back to the serial pull loop.
  virtual std::unique_ptr<PhysicalOperator> MorselClone(
      const ParallelCloneContext& ctx) const {
    (void)ctx;
    return nullptr;
  }

  std::vector<std::unique_ptr<PhysicalOperator>>& children() {
    return children_;
  }
  PhysicalOperator* child(idx_t i) { return children_[i].get(); }
  void AddChild(std::unique_ptr<PhysicalOperator> child) {
    children_.push_back(std::move(child));
  }

  /// Renders the operator tree (EXPLAIN).
  std::string ToString(int indent = 0) const;

 protected:
  /// Per-operator rewind hook; stateless operators keep the no-op.
  virtual Status ResetOperator() { return Status::OK(); }

  std::vector<TypeId> types_;
  std::vector<std::unique_ptr<PhysicalOperator>> children_;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_OPERATOR_H_
