#ifndef MALLARD_EXECUTION_CHUNK_COLLECTION_H_
#define MALLARD_EXECUTION_CHUNK_COLLECTION_H_

#include <memory>
#include <vector>

#include "mallard/compression/codec.h"
#include "mallard/vector/chunk_serde.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

class ResourceGovernor;

/// Materialized intermediate result: chunks serialized into segments that
/// are individually compressed with the governor-selected codec. This is
/// the "compress temporary structures in memory" lever of paper section 4
/// (Figure 1): under application memory pressure the engine trades CPU
/// (codec work) for a smaller in-memory footprint.
class ChunkCollection {
 public:
  /// `governor` may be null (no compression).
  ChunkCollection(std::vector<TypeId> types, ResourceGovernor* governor);

  const std::vector<TypeId>& types() const { return types_; }
  idx_t count() const { return count_; }

  Status Append(const DataChunk& chunk);
  /// Seals the currently buffered segment; call when ingestion is done.
  void Finalize();

  struct ScanState {
    idx_t segment_index = 0;
    size_t offset = 0;
    std::vector<uint8_t> current;  // decompressed segment payload
    bool loaded = false;
  };

  /// Sequential scan; `out` must be initialized with types(). Returns
  /// false (cardinality 0) at the end.
  Status Scan(ScanState* state, DataChunk* out) const;

  /// Bytes held in memory (after compression).
  uint64_t MemoryBytes() const;
  /// Bytes before compression.
  uint64_t RawBytes() const { return raw_bytes_; }

 private:
  struct Segment {
    std::vector<uint8_t> data;
    CompressionLevel level = CompressionLevel::kNone;
    uint64_t raw_size = 0;
  };

  void SealSegment();

  std::vector<TypeId> types_;
  ResourceGovernor* governor_;
  std::vector<Segment> segments_;
  BinaryWriter buffer_;  // currently open segment (uncompressed)
  idx_t count_ = 0;
  uint64_t raw_bytes_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_CHUNK_COLLECTION_H_
