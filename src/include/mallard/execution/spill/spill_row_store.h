#ifndef MALLARD_EXECUTION_SPILL_SPILL_ROW_STORE_H_
#define MALLARD_EXECUTION_SPILL_SPILL_ROW_STORE_H_

#include <memory>
#include <vector>

#include "mallard/common/constants.h"
#include "mallard/common/result.h"
#include "mallard/storage/buffer_manager.h"

namespace mallard {

/// Append-only store of length-prefixed byte rows inside *spillable*
/// buffer-manager segments — the spill unit of the out-of-core operators
/// (grace hash join probe stashes, external aggregation runs).
///
/// Spilling falls out of the pin/unpin contract rather than bespoke file
/// I/O: only the tail segment is pinned while appending; completed
/// segments are unpinned immediately and become LRU-evictable, so the
/// buffer manager moves them to the temp file exactly when allocation
/// pressure against `memory_limit` demands it. Reading goes through a
/// Cursor that pins one segment at a time (reloading evicted segments
/// transparently), so a scan over an arbitrarily large store keeps at
/// most one segment resident beyond the evictable pool.
///
/// Rows never straddle a segment boundary. Not thread-safe; each store
/// has a single writer, and reads happen after FinishAppend().
class SpillRowStore {
 public:
  static constexpr uint64_t kDefaultSegmentBytes = 256 * 1024;

  explicit SpillRowStore(BufferManager* buffers,
                         uint64_t segment_bytes = kDefaultSegmentBytes)
      : buffers_(buffers), segment_bytes_(segment_bytes) {}

  /// Appends one row ([u32 length][bytes]).
  Status Append(const uint8_t* row, uint32_t len);

  /// Releases the tail pin so every segment is evictable. Idempotent;
  /// appends after it re-pin the tail (possibly reloading it).
  void FinishAppend();

  idx_t rows() const { return rows_; }
  uint64_t bytes() const { return bytes_; }

  /// Sequential read cursor; holds a pin on the segment it is inside.
  struct Cursor {
    idx_t segment = 0;
    uint64_t offset = 0;
    BufferHandle pin;
    const uint8_t* data = nullptr;
  };

  /// Advances the cursor and returns the next row via `*row` (`*len` its
  /// length), or sets `*row = nullptr` at end of store. The returned
  /// pointer stays valid until the next Next() call.
  Status Next(Cursor* cursor, const uint8_t** row, uint32_t* len);

 private:
  struct Segment {
    std::shared_ptr<ManagedBuffer> buffer;
    uint64_t used = 0;
  };

  BufferManager* buffers_;
  uint64_t segment_bytes_;
  std::vector<Segment> segments_;
  BufferHandle tail_pin_;
  uint8_t* tail_data_ = nullptr;
  idx_t rows_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_SPILL_SPILL_ROW_STORE_H_
