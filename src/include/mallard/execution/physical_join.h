#ifndef MALLARD_EXECUTION_PHYSICAL_JOIN_H_
#define MALLARD_EXECUTION_PHYSICAL_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mallard/execution/chunk_collection.h"
#include "mallard/execution/external_sort.h"
#include "mallard/execution/physical_operator.h"
#include "mallard/execution/row_codec.h"
#include "mallard/expression/bound_expression.h"
#include "mallard/storage/buffer_manager.h"

namespace mallard {

/// Join types supported by the planner.
enum class JoinType : uint8_t { kInner, kLeft, kSemi, kAnti };

/// One equi-join condition: left-side expression == right-side expression.
struct JoinCondition {
  ExprPtr left;
  ExprPtr right;
};

/// In-memory hash join: builds on the right child, probes with the left.
/// Fast but memory-hungry — the RAM-for-CPU side of the trade-off the
/// reactive governor arbitrates (paper section 4). Build rows are stored
/// in buffer-manager segments so the memory cost is visible to the
/// governor's accounting.
class PhysicalHashJoin final : public PhysicalOperator {
 public:
  PhysicalHashJoin(JoinType join_type, std::vector<JoinCondition> conditions,
                   std::unique_ptr<PhysicalOperator> left,
                   std::unique_ptr<PhysicalOperator> right);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

  uint64_t BuildBytes() const { return build_bytes_; }

 protected:
  Status ResetOperator() override {
    segments_.clear();
    segment_used_ = 0;
    table_.clear();
    build_bytes_ = 0;
    built_ = false;
    probe_position_ = 0;
    current_matches_ = nullptr;
    match_position_ = 0;
    probe_exhausted_ = false;
    return Status::OK();
  }

 private:
  Status Build(ExecutionContext* context);
  Status EvaluateKeys(const std::vector<ExprPtr>& exprs,
                      const DataChunk& input, DataChunk* keys);

  JoinType join_type_;
  std::vector<JoinCondition> conditions_;
  std::vector<TypeId> right_types_;
  RowCodec build_codec_;

  // Build storage: encoded rows in pinned 1MB segments.
  std::vector<BufferHandle> segments_;
  uint64_t segment_used_ = 0;
  std::unordered_map<std::string, std::vector<uint64_t>> table_;  // key -> refs
  uint64_t build_bytes_ = 0;
  bool built_ = false;

  // Probe state.
  DataChunk probe_chunk_;
  DataChunk probe_keys_;
  DataChunk build_row_scratch_;
  idx_t probe_position_ = 0;
  const std::vector<uint64_t>* current_matches_ = nullptr;
  idx_t match_position_ = 0;
  bool probe_exhausted_ = false;
};

/// Sort-merge join over both children using the out-of-core external
/// sort: the RAM-light, CPU/IO-heavy alternative (paper section 4).
/// Supports inner and left joins on equality keys.
class PhysicalMergeJoin final : public PhysicalOperator {
 public:
  PhysicalMergeJoin(JoinType join_type, std::vector<JoinCondition> conditions,
                    std::unique_ptr<PhysicalOperator> left,
                    std::unique_ptr<PhysicalOperator> right);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    left_sort_.reset();
    right_sort_.reset();
    sorted_ = false;
    left_position_ = 0;
    left_done_ = false;
    right_position_ = 0;
    right_done_ = false;
    group_key_.clear();
    group_rows_.clear();
    group_valid_ = false;
    emit_group_index_ = 0;
    emitting_matches_ = false;
    return Status::OK();
  }

 private:
  Status SortInputs(ExecutionContext* context);
  Status AdvanceLeft();
  Status LoadNextRightGroup();

  JoinType join_type_;
  std::vector<JoinCondition> conditions_;
  std::vector<TypeId> left_types_;
  std::vector<TypeId> right_types_;

  std::unique_ptr<ExternalSort> left_sort_;
  std::unique_ptr<ExternalSort> right_sort_;
  bool sorted_ = false;

  // Left cursor.
  DataChunk left_chunk_;
  DataChunk left_keys_;
  idx_t left_position_ = 0;
  bool left_done_ = false;
  // Right cursor + current equal-key group.
  DataChunk right_chunk_;
  DataChunk right_keys_;
  idx_t right_position_ = 0;
  bool right_done_ = false;
  std::string group_key_;
  std::vector<std::vector<Value>> group_rows_;
  bool group_valid_ = false;
  idx_t emit_group_index_ = 0;
  bool emitting_matches_ = false;
};

/// Cross product with the right side materialized in a (governor-
/// compressed) chunk collection. Non-equi joins lower to this + filter.
class PhysicalCrossProduct final : public PhysicalOperator {
 public:
  PhysicalCrossProduct(std::unique_ptr<PhysicalOperator> left,
                       std::unique_ptr<PhysicalOperator> right);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    right_data_.reset();
    right_scan_ = ChunkCollection::ScanState{};
    left_position_ = 0;
    right_position_ = 0;
    materialized_ = false;
    left_done_ = false;
    return Status::OK();
  }

 private:
  std::unique_ptr<ChunkCollection> right_data_;
  DataChunk left_chunk_;
  DataChunk right_chunk_;
  ChunkCollection::ScanState right_scan_;
  idx_t left_position_ = 0;
  idx_t right_position_ = 0;
  bool materialized_ = false;
  bool left_done_ = false;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_JOIN_H_
