#ifndef MALLARD_EXECUTION_PHYSICAL_JOIN_H_
#define MALLARD_EXECUTION_PHYSICAL_JOIN_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "mallard/execution/chunk_collection.h"
#include "mallard/execution/external_sort.h"
#include "mallard/execution/join_hashtable.h"
#include "mallard/execution/physical_operator.h"
#include "mallard/execution/row_codec.h"
#include "mallard/execution/spill/spill_row_store.h"
#include "mallard/expression/bound_expression.h"
#include "mallard/parallel/morsel.h"
#include "mallard/storage/buffer_manager.h"

namespace mallard {

/// Join types supported by the planner.
enum class JoinType : uint8_t { kInner, kLeft, kSemi, kAnti };

/// One equi-join condition: left-side expression == right-side expression.
struct JoinCondition {
  ExprPtr left;
  ExprPtr right;
};

/// In-memory hash join: builds on the right child, probes with the left.
/// Fast but memory-hungry — the RAM-for-CPU side of the trade-off the
/// reactive governor arbitrates (paper section 4). Backed by the
/// vectorized JoinHashTable: keys are hashed batch-at-a-time over typed
/// vector data, matches are gathered into a selection vector, and
/// output is emitted with CopySelection for the probe side plus direct
/// row decodes for the build side — no per-row key serialization or map
/// lookups. Build rows live in buffer-manager segments so the memory
/// cost is visible to the governor's accounting.
///
/// Parallel probe: after the single Finalize the hash table is immutable
/// and its probe entry points are const and scratch-free, so the probe
/// side runs morsel-parallel when it is a scan-shaped pipeline — each
/// worker owns a private ProbeCursor and a private ChunkCollection of
/// result chunks, drained in worker-index order afterwards. Covers
/// inner/left/semi/anti; the governor's budget is re-read at every
/// morsel boundary exactly like the build side. Memory is bounded: the
/// pipeline runs in *passes* — each pass materializes at most a
/// governor-derived byte budget per worker, GetChunk drains those
/// buffers, and the next pass resumes from the shared morsel counter
/// (and mid-morsel cursors), so a high-fanout join never buffers more
/// than one pass of output. When the probe subtree has no parallel
/// shape (or the budget is 1) the classic streaming serial probe runs
/// unchanged.
///
/// Grace (out-of-core) mode: when the build side exceeds the governor's
/// budget the JoinHashTable finalizes into grace mode — its 16 radix
/// partitions stay unloaded instead of forming one global directory.
/// The probe side is then routed once into 16 partition stashes
/// (SpillRowStore of [hash | encoded probe row]; spillable, so the
/// route itself stays in budget), and partitions are joined one at a
/// time: resident ones first, spilled ones reloaded via LoadPartition +
/// FinalizePartition, each probed by replaying its stash through the
/// regular ProbeChunk body and dropped when drained. A partition that
/// alone exceeds the budget is rebuilt into a child table partitioned
/// on the next 4 hash bits (recursive grace), down to kMaxRadixShift.
/// Every join type works unchanged because each probe row lives in
/// exactly one stash and is replayed exactly once.
class PhysicalHashJoin final : public PhysicalOperator {
 public:
  PhysicalHashJoin(JoinType join_type, std::vector<JoinCondition> conditions,
                   std::unique_ptr<PhysicalOperator> left,
                   std::unique_ptr<PhysicalOperator> right);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

  uint64_t BuildBytes() const { return table_ ? table_->BuildBytes() : 0; }

  /// Phase timing of the last execution (benches): build = sink +
  /// Finalize of the hash table; probe = everything after (for a
  /// parallel probe, the whole materialization lands in the first
  /// GetChunk and is counted here).
  double BuildMs() const { return build_ms_; }
  double ProbeMs() const { return probe_ms_; }

 protected:
  Status ResetOperator() override {
    table_.reset();
    built_ = false;
    // Drop the probe cursor completely: its chain head refs point into
    // the destroyed table, and a stale probe chunk cardinality would
    // replay old rows against the rebuilt one.
    probe_.chunk.Reset();
    probe_.position = 0;
    probe_.chain_ref = JoinHashTable::kNullRef;
    probe_.chain_active = false;
    probe_.row_matched = false;
    probe_.exhausted = false;
    // Parallel probe pipeline and result buffers are per-execution
    // state: an abandoned mid-drain stream must not replay stale chunks
    // or resume a stale morsel counter.
    probe_planned_ = false;
    parallel_probe_ = false;
    probe_pipeline_ = parallel::MorselPipeline{};
    probe_cursors_.clear();
    probe_results_.clear();
    drain_index_ = 0;
    drain_scan_ = ChunkCollection::ScanState{};
    // Grace probe state (stashes, job stack, the active job's source).
    probe_table_ = nullptr;
    grace_routed_ = false;
    grace_active_ = false;
    grace_source_.reset();
    grace_current_ = GraceJob{};
    grace_jobs_.clear();
    probe_codec_.reset();
    build_ms_ = 0;
    probe_ms_ = 0;
    return Status::OK();
  }

 private:
  /// Per-worker (or serial) probe-side state: the current probe chunk,
  /// its evaluated keys/hashes/chain heads, and the mid-chain resume
  /// position. Each parallel probe worker owns one; the serial path uses
  /// the operator's own instance.
  struct ProbeCursor {
    DataChunk chunk;
    DataChunk keys;
    std::vector<ExprPtr> exprs;
    std::vector<uint64_t> hashes;
    std::vector<uint64_t> heads;
    std::vector<uint32_t> sel;   // gather scratch
    std::vector<uint64_t> refs;  // gather scratch
    idx_t position = 0;
    uint64_t chain_ref = JoinHashTable::kNullRef;
    bool chain_active = false;  // FirstMatch already run for current row
    bool row_matched = false;   // current row produced a match (left join)
    bool exhausted = false;  // source drained and cursor fully consumed
  };

  Status Build(ExecutionContext* context);
  /// Morsel-driven partitioned build: workers scan disjoint row-group
  /// morsels of the build side into private JoinHashTable partitions,
  /// which are then merged into table_ (still un-finalized). Sets
  /// `*done` when the parallel path ran; otherwise the caller falls
  /// back to the serial pull loop.
  Status ParallelBuild(ExecutionContext* context, bool* done);
  /// The build-side sink loop shared by the serial path (source =
  /// child(1), table = table_) and every parallel worker (source = its
  /// morsel clone, table = its partition): pull chunks, evaluate keys,
  /// append. Keeping one body keeps serial and parallel semantics from
  /// diverging.
  Status SinkBuildSide(ExecutionContext* context, PhysicalOperator* source,
                       const std::vector<ExprPtr>& key_exprs,
                       JoinHashTable* table);
  /// Sizes a cursor's chunks/scratch and fills its key expressions with
  /// private copies of the probe-side condition expressions.
  void InitCursor(ProbeCursor* cursor) const;
  /// Produces the next output chunk (up to kVectorSize rows) by pulling
  /// probe chunks from `source` through `cursor` — the probe loop body
  /// shared by the serial path (source = child(0), cursor = probe_) and
  /// every parallel worker (source = its morsel clone, cursor = its
  /// private one). An empty output chunk signals source exhaustion.
  Status ProbeChunk(ExecutionContext* context, PhysicalOperator* source,
                    ProbeCursor* cursor, DataChunk* out);
  /// Plans the morsel-parallel probe over the (finalized, immutable)
  /// hash table: clones the probe subtree per worker and sizes the
  /// per-worker cursors. Sets parallel_probe_; when false the serial
  /// streaming probe runs instead.
  Status PlanParallelProbe(ExecutionContext* context);
  /// One bounded pass: every unfinished cursor probes morsels into a
  /// fresh private ChunkCollection until the source is exhausted for it
  /// or the pass's per-cursor byte budget is reached (mid-morsel
  /// cursors resume next pass). Pass runners claim pending cursors from
  /// a shared queue, so every unfinished cursor advances even when the
  /// governor clamps a pass to fewer runners than cursors — the pass
  /// always makes progress. GetChunk drains the buffers in cursor order
  /// between passes.
  Status RunProbePass(ExecutionContext* context);
  /// True when every cursor has fully drained its morsels.
  bool AllProbeWorkersDone() const;
  static Status EvaluateKeys(const std::vector<ExprPtr>& exprs,
                             const DataChunk& input, DataChunk* keys);
  /// Gathers up to `capacity` output rows from the cursor's current
  /// probe chunk into (probe row, build ref) pairs; build ref kNullRef
  /// marks a NULL-padded left-join row. Resumes mid-chain across calls.
  idx_t GatherMatches(ProbeCursor* cursor, idx_t capacity, uint32_t* sel,
                      uint64_t* refs);

  /// One unit of grace-mode probe work: join partition `partition` of
  /// `table` against the stashed probe rows. `owner` keeps a recursion
  /// child table alive for as long as any of its jobs are pending;
  /// root jobs (over the operator's own table_) leave it null. A
  /// `whole_table` job probes the entire table (a recursion child that
  /// turned out to fit in memory) with the parent partition's stash.
  struct GraceJob {
    std::shared_ptr<JoinHashTable> owner;
    JoinHashTable* table = nullptr;
    idx_t partition = 0;
    bool whole_table = false;
    std::unique_ptr<SpillRowStore> stash;
  };

  /// Grace-mode driver: routes the probe side once, then pops jobs off
  /// the LIFO stack until every partition has been joined.
  Status GraceProbe(ExecutionContext* context, DataChunk* out);
  /// Pulls the whole probe side and scatters it into one spillable
  /// stash per build partition ([hash | RowCodec-encoded probe row]).
  Status RouteProbeSide(ExecutionContext* context);
  /// Activates a job (load + per-partition finalize + stash replay), or
  /// splits it into 16 finer jobs when the partition alone exceeds the
  /// budget (recursive grace at radix shift + 4).
  Status PrepareGraceJob(ExecutionContext* context, GraceJob job);
  Status SplitGraceJob(ExecutionContext* context, GraceJob job);
  /// Pushes one job per partition, spilled partitions first so the LIFO
  /// stack pops resident ones before reload pressure can evict them.
  void PushGraceJobs(
      std::shared_ptr<JoinHashTable> owner, JoinHashTable* table,
      std::array<std::unique_ptr<SpillRowStore>, JoinHashTable::kPartitions>*
          stashes);

  JoinType join_type_;
  std::vector<JoinCondition> conditions_;
  std::vector<TypeId> right_types_;

  std::unique_ptr<JoinHashTable> table_;
  bool built_ = false;

  // Table the probe paths read from: table_ normally; in grace mode the
  // per-partition (or recursion-child) table of the active job.
  JoinHashTable* probe_table_ = nullptr;
  // Grace probe state.
  bool grace_routed_ = false;
  bool grace_active_ = false;
  std::unique_ptr<RowCodec> probe_codec_;
  std::vector<GraceJob> grace_jobs_;  // LIFO; resident partitions on top
  GraceJob grace_current_;
  std::unique_ptr<PhysicalOperator> grace_source_;

  // Serial probe state.
  ProbeCursor probe_;
  // Parallel probe state: the resumable pipeline, per-worker cursors,
  // this pass's per-worker result buffers (null for workers that did
  // not run this pass) and the drain cursor over them.
  bool probe_planned_ = false;
  bool parallel_probe_ = false;
  parallel::MorselPipeline probe_pipeline_;
  std::vector<std::unique_ptr<ProbeCursor>> probe_cursors_;
  std::vector<std::unique_ptr<ChunkCollection>> probe_results_;
  idx_t drain_index_ = 0;
  ChunkCollection::ScanState drain_scan_;
  double build_ms_ = 0;
  double probe_ms_ = 0;
};

/// Sort-merge join over both children using the out-of-core external
/// sort: the RAM-light, CPU/IO-heavy alternative (paper section 4).
/// Supports inner and left joins on equality keys.
class PhysicalMergeJoin final : public PhysicalOperator {
 public:
  PhysicalMergeJoin(JoinType join_type, std::vector<JoinCondition> conditions,
                    std::unique_ptr<PhysicalOperator> left,
                    std::unique_ptr<PhysicalOperator> right);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    left_sort_.reset();
    right_sort_.reset();
    sorted_ = false;
    left_position_ = 0;
    left_done_ = false;
    right_position_ = 0;
    right_done_ = false;
    group_key_.clear();
    group_rows_.clear();
    group_valid_ = false;
    emit_group_index_ = 0;
    emitting_matches_ = false;
    return Status::OK();
  }

 private:
  Status SortInputs(ExecutionContext* context);
  Status AdvanceLeft();
  Status LoadNextRightGroup();

  JoinType join_type_;
  std::vector<JoinCondition> conditions_;
  std::vector<TypeId> left_types_;
  std::vector<TypeId> right_types_;

  std::unique_ptr<ExternalSort> left_sort_;
  std::unique_ptr<ExternalSort> right_sort_;
  bool sorted_ = false;

  // Left cursor.
  DataChunk left_chunk_;
  DataChunk left_keys_;
  idx_t left_position_ = 0;
  bool left_done_ = false;
  // Right cursor + current equal-key group.
  DataChunk right_chunk_;
  DataChunk right_keys_;
  idx_t right_position_ = 0;
  bool right_done_ = false;
  std::string group_key_;
  std::vector<std::vector<Value>> group_rows_;
  bool group_valid_ = false;
  idx_t emit_group_index_ = 0;
  bool emitting_matches_ = false;
};

/// Cross product with the right side materialized in a (governor-
/// compressed) chunk collection. Non-equi joins lower to this + filter.
class PhysicalCrossProduct final : public PhysicalOperator {
 public:
  PhysicalCrossProduct(std::unique_ptr<PhysicalOperator> left,
                       std::unique_ptr<PhysicalOperator> right);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    right_data_.reset();
    right_scan_ = ChunkCollection::ScanState{};
    left_position_ = 0;
    right_position_ = 0;
    materialized_ = false;
    left_done_ = false;
    return Status::OK();
  }

 private:
  std::unique_ptr<ChunkCollection> right_data_;
  DataChunk left_chunk_;
  DataChunk right_chunk_;
  ChunkCollection::ScanState right_scan_;
  idx_t left_position_ = 0;
  idx_t right_position_ = 0;
  bool materialized_ = false;
  bool left_done_ = false;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_JOIN_H_
