#ifndef MALLARD_EXECUTION_PHYSICAL_JOIN_H_
#define MALLARD_EXECUTION_PHYSICAL_JOIN_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/execution/chunk_collection.h"
#include "mallard/execution/external_sort.h"
#include "mallard/execution/join_hashtable.h"
#include "mallard/execution/physical_operator.h"
#include "mallard/execution/row_codec.h"
#include "mallard/expression/bound_expression.h"
#include "mallard/storage/buffer_manager.h"

namespace mallard {

/// Join types supported by the planner.
enum class JoinType : uint8_t { kInner, kLeft, kSemi, kAnti };

/// One equi-join condition: left-side expression == right-side expression.
struct JoinCondition {
  ExprPtr left;
  ExprPtr right;
};

/// In-memory hash join: builds on the right child, probes with the left.
/// Fast but memory-hungry — the RAM-for-CPU side of the trade-off the
/// reactive governor arbitrates (paper section 4). Backed by the
/// vectorized JoinHashTable: keys are hashed batch-at-a-time over typed
/// vector data, matches are gathered into a selection vector, and
/// output is emitted with CopySelection for the probe side plus direct
/// row decodes for the build side — no per-row key serialization or map
/// lookups. Build rows live in buffer-manager segments so the memory
/// cost is visible to the governor's accounting.
class PhysicalHashJoin final : public PhysicalOperator {
 public:
  PhysicalHashJoin(JoinType join_type, std::vector<JoinCondition> conditions,
                   std::unique_ptr<PhysicalOperator> left,
                   std::unique_ptr<PhysicalOperator> right);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

  uint64_t BuildBytes() const { return table_ ? table_->BuildBytes() : 0; }

 protected:
  Status ResetOperator() override {
    table_.reset();
    built_ = false;
    // Drop the probe cursor completely: probe_heads_/chain_ref_ hold refs
    // into the destroyed table, and a stale probe_chunk_ cardinality
    // would replay old rows against the rebuilt one.
    probe_chunk_.Reset();
    probe_position_ = 0;
    chain_ref_ = JoinHashTable::kNullRef;
    chain_active_ = false;
    row_matched_ = false;
    probe_exhausted_ = false;
    return Status::OK();
  }

 private:
  Status Build(ExecutionContext* context);
  /// Morsel-driven partitioned build: workers scan disjoint row-group
  /// morsels of the build side into private JoinHashTable partitions,
  /// which are then merged into table_ (still un-finalized). Sets
  /// `*done` when the parallel path ran; otherwise the caller falls
  /// back to the serial pull loop.
  Status ParallelBuild(ExecutionContext* context, bool* done);
  /// The build-side sink loop shared by the serial path (source =
  /// child(1), table = table_) and every parallel worker (source = its
  /// morsel clone, table = its partition): pull chunks, evaluate keys,
  /// append. Keeping one body keeps serial and parallel semantics from
  /// diverging.
  Status SinkBuildSide(ExecutionContext* context, PhysicalOperator* source,
                       const std::vector<ExprPtr>& key_exprs,
                       JoinHashTable* table);
  static Status EvaluateKeys(const std::vector<ExprPtr>& exprs,
                             const DataChunk& input, DataChunk* keys);
  /// Gathers up to `capacity` output rows from the current probe chunk
  /// into (probe row, build ref) pairs; build ref kNullRef marks a
  /// NULL-padded left-join row. Resumes mid-chain across calls.
  idx_t GatherMatches(idx_t capacity, uint32_t* sel, uint64_t* refs);

  JoinType join_type_;
  std::vector<JoinCondition> conditions_;
  std::vector<TypeId> right_types_;

  std::unique_ptr<JoinHashTable> table_;
  bool built_ = false;

  // Probe state.
  DataChunk probe_chunk_;
  DataChunk probe_keys_;
  std::vector<ExprPtr> probe_exprs_;
  std::vector<uint64_t> probe_hashes_;  // per probe chunk
  std::vector<uint64_t> probe_heads_;
  std::vector<uint32_t> match_sel_;  // gather scratch
  std::vector<uint64_t> match_refs_;
  idx_t probe_position_ = 0;
  uint64_t chain_ref_ = JoinHashTable::kNullRef;
  bool chain_active_ = false;  // FirstMatch already run for current row
  bool row_matched_ = false;   // current row produced a match (left join)
  bool probe_exhausted_ = false;
};

/// Sort-merge join over both children using the out-of-core external
/// sort: the RAM-light, CPU/IO-heavy alternative (paper section 4).
/// Supports inner and left joins on equality keys.
class PhysicalMergeJoin final : public PhysicalOperator {
 public:
  PhysicalMergeJoin(JoinType join_type, std::vector<JoinCondition> conditions,
                    std::unique_ptr<PhysicalOperator> left,
                    std::unique_ptr<PhysicalOperator> right);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    left_sort_.reset();
    right_sort_.reset();
    sorted_ = false;
    left_position_ = 0;
    left_done_ = false;
    right_position_ = 0;
    right_done_ = false;
    group_key_.clear();
    group_rows_.clear();
    group_valid_ = false;
    emit_group_index_ = 0;
    emitting_matches_ = false;
    return Status::OK();
  }

 private:
  Status SortInputs(ExecutionContext* context);
  Status AdvanceLeft();
  Status LoadNextRightGroup();

  JoinType join_type_;
  std::vector<JoinCondition> conditions_;
  std::vector<TypeId> left_types_;
  std::vector<TypeId> right_types_;

  std::unique_ptr<ExternalSort> left_sort_;
  std::unique_ptr<ExternalSort> right_sort_;
  bool sorted_ = false;

  // Left cursor.
  DataChunk left_chunk_;
  DataChunk left_keys_;
  idx_t left_position_ = 0;
  bool left_done_ = false;
  // Right cursor + current equal-key group.
  DataChunk right_chunk_;
  DataChunk right_keys_;
  idx_t right_position_ = 0;
  bool right_done_ = false;
  std::string group_key_;
  std::vector<std::vector<Value>> group_rows_;
  bool group_valid_ = false;
  idx_t emit_group_index_ = 0;
  bool emitting_matches_ = false;
};

/// Cross product with the right side materialized in a (governor-
/// compressed) chunk collection. Non-equi joins lower to this + filter.
class PhysicalCrossProduct final : public PhysicalOperator {
 public:
  PhysicalCrossProduct(std::unique_ptr<PhysicalOperator> left,
                       std::unique_ptr<PhysicalOperator> right);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    right_data_.reset();
    right_scan_ = ChunkCollection::ScanState{};
    left_position_ = 0;
    right_position_ = 0;
    materialized_ = false;
    left_done_ = false;
    return Status::OK();
  }

 private:
  std::unique_ptr<ChunkCollection> right_data_;
  DataChunk left_chunk_;
  DataChunk right_chunk_;
  ChunkCollection::ScanState right_scan_;
  idx_t left_position_ = 0;
  idx_t right_position_ = 0;
  bool materialized_ = false;
  bool left_done_ = false;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_JOIN_H_
