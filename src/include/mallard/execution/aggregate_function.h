#ifndef MALLARD_EXECUTION_AGGREGATE_FUNCTION_H_
#define MALLARD_EXECUTION_AGGREGATE_FUNCTION_H_

#include <vector>

#include "mallard/expression/bound_expression.h"

namespace mallard {

/// Accumulator for one aggregate over one group. A single struct covers
/// all aggregate kinds; Finalize interprets it per function. This is the
/// *generic* representation (~64B + a boxed Value): the vectorized hash
/// aggregate only falls back to it when an aggregate has no fixed-width
/// state (MIN/MAX over VARCHAR); everything else runs on the compact
/// AggStateLayout rows below.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  Value extreme;  // MIN/MAX carrier
  bool seen = false;
};

/// Shared aggregate semantics used by the vectorized hash aggregate, the
/// ungrouped aggregate and the tuple-at-a-time baseline engine.
class AggregateFunction {
 public:
  /// Result type of `type` applied to an argument of `arg_type`.
  static TypeId ResolveType(AggType type, TypeId arg_type);

  /// Folds row `row` of `arg` into `state` (`arg` null for COUNT(*)).
  static void Update(AggType type, const Vector* arg, idx_t row,
                     AggState* state);

  /// Boxed-value update used by the baseline row engine.
  static void UpdateValue(AggType type, const Value& v, AggState* state);

  /// Folds `src` (a partial aggregate over a disjoint subset of the
  /// group's rows) into `dst` — the merge step of parallel
  /// pre-aggregation into thread-local tables.
  static void Combine(AggType type, const AggState& src, AggState* dst);

  /// Produces the aggregate result.
  static Value Finalize(AggType type, TypeId result_type,
                        const AggState& state);

  static const char* Name(AggType type);
};

/// One aggregate's slot inside a compact fixed-width state row.
struct AggStateSlot {
  AggType type;
  TypeId arg_type;     // kInvalid for COUNT(*)
  TypeId result_type;
  uint32_t offset;     // byte offset inside the state row (8-aligned)
};

/// Fixed-width row layout for aggregate states: one state row per group,
/// one slot per aggregate, all slots 8 or 16 bytes. Compared to a
/// `std::vector<AggState>` (~64B + a heap Value per state) this roughly
/// halves-or-better the bytes touched per aggregation update, and makes
/// the merge step of parallel aggregation a typed batch combine over raw
/// rows instead of per-state Value comparisons.
///
/// Slot contents (all-zero bytes are the initial state of every slot):
///   COUNT(*)/COUNT(x)           [int64 count]
///   SUM/AVG over INT/BIGINT     [int64 sum][int64 count]
///   SUM/AVG over DOUBLE         [double sum][int64 count]
///   MIN/MAX over INT/DATE       [int32 value][int32 seen]
///   MIN/MAX over BIGINT/TS/DBL  [8B value][int64 seen]
///
/// MIN/MAX over VARCHAR (or any non-fixed-width argument) has no slot
/// encoding; Plan() then reports compact() == false and the caller keeps
/// the generic AggState path.
class AggStateLayout {
 public:
  /// True when `type` over `arg_type` has a fixed-width slot encoding.
  static bool Compactable(AggType type, TypeId arg_type);

  /// Plans a layout over `aggregates`. When any aggregate is not
  /// compactable the returned layout has compact() == false and must not
  /// be used for state storage.
  static AggStateLayout Plan(const std::vector<BoundAggregate>& aggregates);

  bool compact() const { return compact_; }
  /// Bytes per state row (multiple of 8; 0 for an empty aggregate list).
  idx_t row_size() const { return row_size_; }
  const std::vector<AggStateSlot>& slots() const { return slots_; }

  /// Folds rows of `arg` into slot `slot_index` of the state rows of the
  /// rows' groups: input row i (or sel[i] when `sel` is given) updates
  /// the state row of group group_ids[i] inside `base`. `arg` is null
  /// for COUNT(*). One type dispatch per call, typed loops inside.
  void Update(idx_t slot_index, const Vector* arg, idx_t count,
              const idx_t* group_ids, const uint32_t* sel,
              uint8_t* base) const;

  /// Batch combine: folds `count` consecutive source state rows
  /// (groups src_first .. src_first+count of `src_base`) into the
  /// destination state rows of groups dst_ids[0..count) — slot-major
  /// typed loops, the merge kernel of radix-partitioned aggregation.
  void Combine(const uint8_t* src_base, idx_t src_first, idx_t count,
               const idx_t* dst_ids, uint8_t* dst_base) const;

  /// Produces the result of slot `slot_index` from one state row.
  Value Finalize(idx_t slot_index, const uint8_t* row) const;

 private:
  bool compact_ = false;
  idx_t row_size_ = 0;
  std::vector<AggStateSlot> slots_;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_AGGREGATE_FUNCTION_H_
