#ifndef MALLARD_EXECUTION_AGGREGATE_FUNCTION_H_
#define MALLARD_EXECUTION_AGGREGATE_FUNCTION_H_

#include "mallard/expression/bound_expression.h"

namespace mallard {

/// Accumulator for one aggregate over one group. A single struct covers
/// all aggregate kinds; Finalize interprets it per function.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  Value extreme;  // MIN/MAX carrier
  bool seen = false;
};

/// Shared aggregate semantics used by the vectorized hash aggregate, the
/// ungrouped aggregate and the tuple-at-a-time baseline engine.
class AggregateFunction {
 public:
  /// Result type of `type` applied to an argument of `arg_type`.
  static TypeId ResolveType(AggType type, TypeId arg_type);

  /// Folds row `row` of `arg` into `state` (`arg` null for COUNT(*)).
  static void Update(AggType type, const Vector* arg, idx_t row,
                     AggState* state);

  /// Boxed-value update used by the baseline row engine.
  static void UpdateValue(AggType type, const Value& v, AggState* state);

  /// Folds `src` (a partial aggregate over a disjoint subset of the
  /// group's rows) into `dst` — the merge step of parallel
  /// pre-aggregation into thread-local tables.
  static void Combine(AggType type, const AggState& src, AggState* dst);

  /// Produces the aggregate result.
  static Value Finalize(AggType type, TypeId result_type,
                        const AggState& state);

  static const char* Name(AggType type);
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_AGGREGATE_FUNCTION_H_
