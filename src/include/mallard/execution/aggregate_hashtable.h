#ifndef MALLARD_EXECUTION_AGGREGATE_HASHTABLE_H_
#define MALLARD_EXECUTION_AGGREGATE_HASHTABLE_H_

#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "mallard/execution/aggregate_function.h"
#include "mallard/execution/row_codec.h"
#include "mallard/execution/spill/spill_row_store.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

class ResourceGovernor;

/// Vectorized hash table for GROUP BY aggregation.
///
/// A power-of-two linear-probe array of {hash, group id} entries maps
/// group keys to dense group ids; the group key rows themselves live in
/// columnar chunks (kVectorSize rows each, creation order) so emission
/// is a plain chunk copy and key comparison is typed array access.
///
/// Aggregate states: when every aggregate in the list has a fixed-width
/// encoding (see AggStateLayout) the states are compact byte rows —
/// `layout.row_size()` bytes per group, updated/combined by typed batch
/// kernels. Otherwise (MIN/MAX over VARCHAR) states fall back to a flat
/// `AggState` array, `aggregate_count` per group. Construction with only
/// an aggregate *count* (tests) always uses the AggState fallback.
///
/// Each group's hash is retained in creation order (`group_hashes_`), so
/// merging partial tables and radix-partitioning groups never re-hash.
///
/// Semantics: NULL = NULL for grouping (a NULL key forms its own
/// group); doubles compare on a normalized bit pattern (-0.0 == +0.0,
/// NaN groups with NaN) — the same grouping the order-preserving
/// sort-key encoding produced before this table existed.
///
/// Per input chunk, FindOrCreateGroups does one batch hash pass and one
/// probe loop, returning a group id per row; the caller then updates
/// aggregate states in typed batches (see UpdateStates) with no
/// per-row map lookups or Value boxing on the hot path.
class AggregateHashTable {
 public:
  /// Generic-state construction (aggregate semantics unknown): states
  /// are AggState structs. `initial_capacity` is rounded up to a power
  /// of two; tests pass a tiny value to force collisions and exercise
  /// linear probing.
  AggregateHashTable(std::vector<TypeId> group_types, idx_t aggregate_count,
                     idx_t initial_capacity = 1024);

  /// Preferred construction: plans a compact fixed-width state layout
  /// over `aggregates` and uses it when every aggregate is compactable,
  /// falling back to AggState rows otherwise.
  AggregateHashTable(std::vector<TypeId> group_types,
                     const std::vector<BoundAggregate>& aggregates,
                     idx_t initial_capacity = 1024);

  /// True when states are compact fixed-width rows (tests/benches).
  bool CompactLayout() const { return layout_.compact(); }

  /// Maps the first `count` rows of `groups` to dense group ids
  /// (creating groups for unseen keys) and writes them to `group_ids`.
  void FindOrCreateGroups(const DataChunk& groups, idx_t count,
                          idx_t* group_ids);

  /// Selection-vector variant used by radix-partitioned sinks: row
  /// sel[i] of `groups` (with precomputed hash hashes[sel[i]]) maps to
  /// group_ids[i]. `hashes` is indexed by *original* row number.
  void FindOrCreateGroupsSel(const DataChunk& groups, const uint32_t* sel,
                             idx_t count, const uint64_t* hashes,
                             idx_t* group_ids);

  /// Folds rows of `arg` into the states selected by `group_ids` for
  /// aggregate slot `agg_index`: input row i — or sel[i] when `sel` is
  /// given — updates group_ids[i]. One type dispatch per call, typed
  /// loops inside; the AggState fallback boxes a Value only when a
  /// MIN/MAX extreme improves.
  void UpdateStates(const BoundAggregate& aggregate, idx_t agg_index,
                    const Vector* arg, idx_t count, const idx_t* group_ids,
                    const uint32_t* sel = nullptr);

  /// Folds every group of `other` (a thread-local partial aggregate over
  /// a disjoint row subset) into this table: unseen keys create new
  /// groups, existing keys combine states — a typed batch kernel for
  /// compact layouts, AggregateFunction::Combine otherwise. Uses
  /// `other`'s stored group hashes (no re-hashing). `aggregates` must be
  /// the same list both tables were updated with, and both tables must
  /// share the same layout mode.
  void Merge(const AggregateHashTable& other,
             const std::vector<BoundAggregate>& aggregates);

  idx_t GroupCount() const { return group_count_; }
  idx_t Capacity() const { return entries_.size(); }

  /// Approximate bytes held per group (keys + states + directory share),
  /// maintained incrementally — the spill decision's accounting.
  uint64_t ApproxBytes() const { return approx_bytes_; }

  /// Drops every group and shrinks the directory back to
  /// `initial_capacity` — the table is reusable afterwards. Used when a
  /// partition's groups are externalized to a spill run.
  void Reset(idx_t initial_capacity = 64);

  /// Merges `count` externalized groups back in: row r of `keys` (with
  /// retained hash hashes[r]) carries the contiguous compact state row
  /// r of `state_rows`. Unseen keys create groups, existing keys batch-
  /// combine — the external-aggregation reload path. Compact layouts
  /// only (spilling is gated on CompactLayout()).
  void MergeRows(const DataChunk& keys, idx_t count, const uint64_t* hashes,
                 const uint8_t* state_rows);

  /// Hash of group `group_id` as retained at creation.
  uint64_t GroupHash(idx_t group_id) const { return group_hashes_[group_id]; }

  /// Columnar key chunk `i` (groups [i*kVectorSize, ...) in creation
  /// order) — run serialization walks these directly.
  const DataChunk& GroupChunk(idx_t i) const { return *group_chunks_[i]; }

  const AggStateLayout& layout() const { return layout_; }

  /// Compact state row of one group (compact layouts only).
  const uint8_t* StateRow(idx_t group_id) const {
    return state_rows_.data() + group_id * layout_.row_size();
  }

  /// Generic-state accessor (AggState fallback layouts only).
  const AggState& State(idx_t group_id, idx_t agg_index) const {
    return states_[group_id * aggregate_count_ + agg_index];
  }

  /// Produces the result of aggregate `agg_index` for `group_id`,
  /// whichever state representation is in use.
  Value FinalizeState(idx_t group_id, idx_t agg_index,
                      const BoundAggregate& aggregate) const;

  /// Copies group key rows [start, start+count) into the leading
  /// columns of `out`. `start` must be kVectorSize-aligned and the
  /// range must not straddle a chunk boundary (emit at most kVectorSize
  /// rows per call, aligned — the natural GetChunk cadence).
  void EmitKeys(idx_t start, idx_t count, DataChunk* out) const;

 private:
  struct Entry {
    uint64_t hash;
    idx_t group;  // kInvalidIndex = empty slot
  };

  void Resize(idx_t new_capacity);
  void EnsureCapacity(idx_t incoming);
  bool GroupEquals(idx_t group, const DataChunk& groups, idx_t row) const;
  idx_t AppendGroup(const DataChunk& groups, idx_t row, uint64_t hash);
  /// Linear-probe find-or-create for one row with a precomputed hash.
  idx_t FindOrCreateOne(const DataChunk& groups, idx_t row, uint64_t hash);

  std::vector<TypeId> group_types_;
  idx_t aggregate_count_;
  AggStateLayout layout_;
  std::vector<Entry> entries_;
  uint64_t mask_ = 0;
  idx_t group_count_ = 0;
  // Group keys, columnar, creation order; chunk g/kVectorSize row
  // g%kVectorSize holds group g.
  std::vector<std::unique_ptr<DataChunk>> group_chunks_;
  std::vector<uint64_t> group_hashes_;  // creation order, for merge/radix
  std::vector<AggState> states_;   // fallback: group * aggregate_count_
  std::vector<uint8_t> state_rows_;  // compact: group * layout_.row_size()
  std::vector<uint64_t> hash_scratch_;
  std::vector<idx_t> merge_ids_;  // Merge scratch
  uint64_t approx_bytes_ = 0;
};

/// Radix-partitioned front for thread-local aggregation sinks: groups
/// are routed to one of kPartitions inner AggregateHashTables by the
/// high bits of their hash (the directory probes use the low bits, so
/// the two are independent). Because every thread-local table partitions
/// by the *same* hash, the final merge of N worker tables decomposes
/// into kPartitions disjoint merges that can run on different threads —
/// the serial-merge bottleneck of high-cardinality parallel GROUP BY
/// becomes embarrassingly parallel.
///
/// With `partitioned = false` the wrapper holds a single inner table and
/// routes nothing: the serial aggregation path keeps its exact hot path
/// while sharing the one sink body (physical_aggregate.cc).
///
/// External aggregation (EnableSpilling): after every sunk chunk the
/// operator calls MaybeSpill, which re-reads the governor's budget and,
/// while over it, externalizes the largest partition's groups into a
/// spill *run* — rows of [group hash | compact state row | encoded key]
/// in a spillable SpillRowStore — and resets that partition's table (an
/// unpartitioned table first upgrades itself to 16 partitions so the
/// runs have a radix home). The same group may appear in several runs
/// and in the resident table; emission (NextEmitTable) walks partitions
/// one at a time, merging a partition's resident groups and all its runs
/// back into one bounded table via MergeRows before its groups are
/// finalized — and when even one partition's merged groups exceed the
/// emission budget, its runs are re-routed by the next 4 hash bits and
/// processed recursively. Spilling is only engaged for compact state
/// layouts (the VARCHAR MIN/MAX fallback never spills).
class RadixPartitionedAggregateTable {
 public:
  static constexpr idx_t kRadixBits = 4;
  static constexpr idx_t kPartitions = idx_t(1) << kRadixBits;
  /// Deepest recursion shift for emission re-partitioning (shifts 4, 8,
  /// 12; identical-hash groups cannot split further).
  static constexpr int kMaxRadixShift = 12;

  RadixPartitionedAggregateTable(std::vector<TypeId> group_types,
                                 const std::vector<BoundAggregate>& aggregates,
                                 bool partitioned);

  /// Partition of a group hash: its top kRadixBits bits.
  static idx_t PartitionOf(uint64_t hash) { return hash >> (64 - kRadixBits); }

  /// Partition at recursion level `shift`: 4 bits starting `shift` below
  /// the top (shift 0 == PartitionOf).
  static idx_t PartitionOfShift(uint64_t hash, int shift) {
    return (hash >> (64 - kRadixBits - shift)) & (kPartitions - 1);
  }

  /// Maps the first `count` rows of `groups` to their partitions'
  /// groups, creating unseen groups. Retains the per-partition routing
  /// (selection vectors + group ids) for the UpdateStates calls that
  /// must follow for the same chunk.
  void FindOrCreateGroups(const DataChunk& groups, idx_t count);

  /// Folds rows of `arg` into aggregate slot `agg_index` of the groups
  /// resolved by the preceding FindOrCreateGroups call.
  void UpdateStates(const BoundAggregate& aggregate, idx_t agg_index,
                    const Vector* arg, idx_t count);

  idx_t PartitionCount() const { return partitions_.size(); }
  AggregateHashTable& partition(idx_t p) { return *partitions_[p]; }
  const AggregateHashTable& partition(idx_t p) const {
    return *partitions_[p];
  }

  idx_t GroupCount() const;

  // -- Out-of-core aggregation --------------------------------------

  /// Enables spilling: resident groups are kept under
  /// governor->EffectiveMemoryBudget() / divisor, re-read at every
  /// MaybeSpill. `aggregates` must outlive the table (the operator's
  /// member list); needed to build replacement/merge tables. No-op
  /// protection: spilling only ever engages when the state layout is
  /// compact.
  void EnableSpilling(const ResourceGovernor* governor,
                      BufferManager* buffers, uint64_t divisor,
                      const std::vector<BoundAggregate>* aggregates);

  /// Re-shares the budget (e.g. back to /2 once parallel sink workers
  /// have merged into the one surviving table).
  void SetSpillDivisor(uint64_t divisor) { spill_divisor_ = divisor; }

  /// True once any groups were externalized to runs.
  bool Spilled() const { return spilled_.load(std::memory_order_relaxed); }

  /// The partition-sink budget consultation: called after every sunk
  /// chunk; while resident groups exceed the budget, externalizes the
  /// largest partition into a run (upgrading an unpartitioned table to
  /// 16 partitions on first spill).
  Status MaybeSpill();

  /// Per-partition variant for the parallel merge step: spills partition
  /// `p` if it alone exceeds a 1/kPartitions share of the budget. Safe
  /// to call concurrently for distinct `p` (runs and tables are
  /// per-partition; only the spilled_ flag is shared, and it is atomic).
  Status MaybeSpillPartition(idx_t p);

  /// Steals `other`'s spill runs (parallel sink: workers spill
  /// independently; the coordinator adopts their runs and merges them
  /// lazily at emission). Resident groups are NOT adopted — merge those
  /// with partition(p).Merge as before.
  void AdoptRuns(RadixPartitionedAggregateTable* other);

  /// Emission driver: returns the next fully-merged table of final
  /// groups via `*out` (resident + all runs of one partition, or one
  /// recursion slice of an oversized partition), or null when every
  /// group has been emitted. The returned table stays valid until the
  /// next call. Call only after sinking is complete.
  Status NextEmitTable(AggregateHashTable** out);

 private:
  uint64_t SpillBudget() const;
  /// Per-emission-table cap; half the spill budget, so the merge table
  /// plus the run cursors stay inside the operator's share.
  uint64_t EmitBudget() const;
  /// Externalizes every group of partitions_[table_index] into the runs
  /// keyed by the groups' top-4 hash bits, then resets the table.
  Status SpillPartitionTable(idx_t table_index);
  /// Serializes one table's groups as run rows routed by
  /// PartitionOfShift(hash, shift) into `sinks`.
  Status SerializeTable(AggregateHashTable* table, int shift,
                        std::array<std::unique_ptr<SpillRowStore>,
                                   kPartitions>* sinks);
  void UpgradeToPartitioned();

  /// One emission unit: a set of runs covering a disjoint hash range,
  /// to be merged into a single table (splitting at `shift` + 4 if the
  /// merged table outgrows the emission budget).
  struct EmitJob {
    std::vector<std::unique_ptr<SpillRowStore>> runs;
    int shift = kRadixBits;
  };
  Status ProcessEmitJob(EmitJob job, bool* produced);

  std::vector<std::unique_ptr<AggregateHashTable>> partitions_;
  // Per-chunk routing scratch (valid between FindOrCreateGroups and the
  // UpdateStates calls for the same chunk).
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> part_sel_;   // kPartitions x kVectorSize
  std::vector<idx_t> part_ids_;      // kPartitions x kVectorSize
  idx_t part_count_[kPartitions] = {};
  std::vector<idx_t> ids_;  // unpartitioned fast path

  // Spilling state.
  std::vector<TypeId> group_types_;
  const std::vector<BoundAggregate>* spill_aggregates_ = nullptr;
  const ResourceGovernor* governor_ = nullptr;
  BufferManager* buffers_ = nullptr;
  uint64_t spill_divisor_ = 2;
  std::atomic<bool> spilled_{false};
  std::unique_ptr<RowCodec> key_codec_;
  std::array<std::vector<std::unique_ptr<SpillRowStore>>, kPartitions> runs_;
  // Emission state.
  idx_t emit_next_partition_ = 0;
  std::vector<EmitJob> emit_jobs_;  // LIFO recursion stack
  std::unique_ptr<AggregateHashTable> emit_table_;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_AGGREGATE_HASHTABLE_H_
