#ifndef MALLARD_EXECUTION_AGGREGATE_HASHTABLE_H_
#define MALLARD_EXECUTION_AGGREGATE_HASHTABLE_H_

#include <memory>
#include <vector>

#include "mallard/execution/aggregate_function.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

/// Vectorized hash table for GROUP BY aggregation.
///
/// A power-of-two linear-probe array of {hash, group id} entries maps
/// group keys to dense group ids; the group key rows themselves live in
/// columnar chunks (kVectorSize rows each, creation order) so emission
/// is a plain chunk copy and key comparison is typed array access.
/// Aggregate states are a flat array, `aggregate_count` per group.
///
/// Semantics: NULL = NULL for grouping (a NULL key forms its own
/// group); doubles compare on a normalized bit pattern (-0.0 == +0.0,
/// NaN groups with NaN) — the same grouping the order-preserving
/// sort-key encoding produced before this table existed.
///
/// Per input chunk, FindOrCreateGroups does one batch hash pass and one
/// probe loop, returning a group id per row; the caller then updates
/// aggregate states in typed batches (see UpdateStates) with no
/// per-row map lookups or Value boxing on the hot path.
class AggregateHashTable {
 public:
  /// `initial_capacity` is rounded up to a power of two; tests pass a
  /// tiny value to force collisions and exercise linear probing.
  AggregateHashTable(std::vector<TypeId> group_types, idx_t aggregate_count,
                     idx_t initial_capacity = 1024);

  /// Maps the first `count` rows of `groups` to dense group ids
  /// (creating groups for unseen keys) and writes them to `group_ids`.
  void FindOrCreateGroups(const DataChunk& groups, idx_t count,
                          idx_t* group_ids);

  /// Folds rows [0, count) of `arg` into the states selected by
  /// `group_ids` for aggregate slot `agg_index`. One type dispatch per
  /// call, typed loops inside; MIN/MAX box a Value only when the
  /// running extreme improves.
  void UpdateStates(const BoundAggregate& aggregate, idx_t agg_index,
                    const Vector* arg, idx_t count, const idx_t* group_ids);

  /// Folds every group of `other` (a thread-local partial aggregate over
  /// a disjoint row subset) into this table: unseen keys create new
  /// groups, existing keys combine states via AggregateFunction::Combine.
  /// `aggregates` must be the same list both tables were updated with.
  void Merge(const AggregateHashTable& other,
             const std::vector<BoundAggregate>& aggregates);

  idx_t GroupCount() const { return group_count_; }
  idx_t Capacity() const { return entries_.size(); }

  const AggState& State(idx_t group_id, idx_t agg_index) const {
    return states_[group_id * aggregate_count_ + agg_index];
  }

  /// Copies group key rows [start, start+count) into the leading
  /// columns of `out`. `start` must be kVectorSize-aligned and the
  /// range must not straddle a chunk boundary (emit at most kVectorSize
  /// rows per call, aligned — the natural GetChunk cadence).
  void EmitKeys(idx_t start, idx_t count, DataChunk* out) const;

 private:
  struct Entry {
    uint64_t hash;
    idx_t group;  // kInvalidIndex = empty slot
  };

  void Resize(idx_t new_capacity);
  void EnsureCapacity(idx_t incoming);
  bool GroupEquals(idx_t group, const DataChunk& groups, idx_t row) const;
  idx_t AppendGroup(const DataChunk& groups, idx_t row);

  std::vector<TypeId> group_types_;
  idx_t aggregate_count_;
  std::vector<Entry> entries_;
  uint64_t mask_ = 0;
  idx_t group_count_ = 0;
  // Group keys, columnar, creation order; chunk g/kVectorSize row
  // g%kVectorSize holds group g.
  std::vector<std::unique_ptr<DataChunk>> group_chunks_;
  std::vector<AggState> states_;  // group-major: group * aggregate_count_
  std::vector<uint64_t> hash_scratch_;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_AGGREGATE_HASHTABLE_H_
