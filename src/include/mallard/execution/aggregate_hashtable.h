#ifndef MALLARD_EXECUTION_AGGREGATE_HASHTABLE_H_
#define MALLARD_EXECUTION_AGGREGATE_HASHTABLE_H_

#include <memory>
#include <vector>

#include "mallard/execution/aggregate_function.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

/// Vectorized hash table for GROUP BY aggregation.
///
/// A power-of-two linear-probe array of {hash, group id} entries maps
/// group keys to dense group ids; the group key rows themselves live in
/// columnar chunks (kVectorSize rows each, creation order) so emission
/// is a plain chunk copy and key comparison is typed array access.
///
/// Aggregate states: when every aggregate in the list has a fixed-width
/// encoding (see AggStateLayout) the states are compact byte rows —
/// `layout.row_size()` bytes per group, updated/combined by typed batch
/// kernels. Otherwise (MIN/MAX over VARCHAR) states fall back to a flat
/// `AggState` array, `aggregate_count` per group. Construction with only
/// an aggregate *count* (tests) always uses the AggState fallback.
///
/// Each group's hash is retained in creation order (`group_hashes_`), so
/// merging partial tables and radix-partitioning groups never re-hash.
///
/// Semantics: NULL = NULL for grouping (a NULL key forms its own
/// group); doubles compare on a normalized bit pattern (-0.0 == +0.0,
/// NaN groups with NaN) — the same grouping the order-preserving
/// sort-key encoding produced before this table existed.
///
/// Per input chunk, FindOrCreateGroups does one batch hash pass and one
/// probe loop, returning a group id per row; the caller then updates
/// aggregate states in typed batches (see UpdateStates) with no
/// per-row map lookups or Value boxing on the hot path.
class AggregateHashTable {
 public:
  /// Generic-state construction (aggregate semantics unknown): states
  /// are AggState structs. `initial_capacity` is rounded up to a power
  /// of two; tests pass a tiny value to force collisions and exercise
  /// linear probing.
  AggregateHashTable(std::vector<TypeId> group_types, idx_t aggregate_count,
                     idx_t initial_capacity = 1024);

  /// Preferred construction: plans a compact fixed-width state layout
  /// over `aggregates` and uses it when every aggregate is compactable,
  /// falling back to AggState rows otherwise.
  AggregateHashTable(std::vector<TypeId> group_types,
                     const std::vector<BoundAggregate>& aggregates,
                     idx_t initial_capacity = 1024);

  /// True when states are compact fixed-width rows (tests/benches).
  bool CompactLayout() const { return layout_.compact(); }

  /// Maps the first `count` rows of `groups` to dense group ids
  /// (creating groups for unseen keys) and writes them to `group_ids`.
  void FindOrCreateGroups(const DataChunk& groups, idx_t count,
                          idx_t* group_ids);

  /// Selection-vector variant used by radix-partitioned sinks: row
  /// sel[i] of `groups` (with precomputed hash hashes[sel[i]]) maps to
  /// group_ids[i]. `hashes` is indexed by *original* row number.
  void FindOrCreateGroupsSel(const DataChunk& groups, const uint32_t* sel,
                             idx_t count, const uint64_t* hashes,
                             idx_t* group_ids);

  /// Folds rows of `arg` into the states selected by `group_ids` for
  /// aggregate slot `agg_index`: input row i — or sel[i] when `sel` is
  /// given — updates group_ids[i]. One type dispatch per call, typed
  /// loops inside; the AggState fallback boxes a Value only when a
  /// MIN/MAX extreme improves.
  void UpdateStates(const BoundAggregate& aggregate, idx_t agg_index,
                    const Vector* arg, idx_t count, const idx_t* group_ids,
                    const uint32_t* sel = nullptr);

  /// Folds every group of `other` (a thread-local partial aggregate over
  /// a disjoint row subset) into this table: unseen keys create new
  /// groups, existing keys combine states — a typed batch kernel for
  /// compact layouts, AggregateFunction::Combine otherwise. Uses
  /// `other`'s stored group hashes (no re-hashing). `aggregates` must be
  /// the same list both tables were updated with, and both tables must
  /// share the same layout mode.
  void Merge(const AggregateHashTable& other,
             const std::vector<BoundAggregate>& aggregates);

  idx_t GroupCount() const { return group_count_; }
  idx_t Capacity() const { return entries_.size(); }

  /// Hash of group `group_id` as retained at creation.
  uint64_t GroupHash(idx_t group_id) const { return group_hashes_[group_id]; }

  /// Generic-state accessor (AggState fallback layouts only).
  const AggState& State(idx_t group_id, idx_t agg_index) const {
    return states_[group_id * aggregate_count_ + agg_index];
  }

  /// Produces the result of aggregate `agg_index` for `group_id`,
  /// whichever state representation is in use.
  Value FinalizeState(idx_t group_id, idx_t agg_index,
                      const BoundAggregate& aggregate) const;

  /// Copies group key rows [start, start+count) into the leading
  /// columns of `out`. `start` must be kVectorSize-aligned and the
  /// range must not straddle a chunk boundary (emit at most kVectorSize
  /// rows per call, aligned — the natural GetChunk cadence).
  void EmitKeys(idx_t start, idx_t count, DataChunk* out) const;

 private:
  struct Entry {
    uint64_t hash;
    idx_t group;  // kInvalidIndex = empty slot
  };

  void Resize(idx_t new_capacity);
  void EnsureCapacity(idx_t incoming);
  bool GroupEquals(idx_t group, const DataChunk& groups, idx_t row) const;
  idx_t AppendGroup(const DataChunk& groups, idx_t row, uint64_t hash);
  /// Linear-probe find-or-create for one row with a precomputed hash.
  idx_t FindOrCreateOne(const DataChunk& groups, idx_t row, uint64_t hash);

  std::vector<TypeId> group_types_;
  idx_t aggregate_count_;
  AggStateLayout layout_;
  std::vector<Entry> entries_;
  uint64_t mask_ = 0;
  idx_t group_count_ = 0;
  // Group keys, columnar, creation order; chunk g/kVectorSize row
  // g%kVectorSize holds group g.
  std::vector<std::unique_ptr<DataChunk>> group_chunks_;
  std::vector<uint64_t> group_hashes_;  // creation order, for merge/radix
  std::vector<AggState> states_;   // fallback: group * aggregate_count_
  std::vector<uint8_t> state_rows_;  // compact: group * layout_.row_size()
  std::vector<uint64_t> hash_scratch_;
  std::vector<idx_t> merge_ids_;  // Merge scratch
};

/// Radix-partitioned front for thread-local aggregation sinks: groups
/// are routed to one of kPartitions inner AggregateHashTables by the
/// high bits of their hash (the directory probes use the low bits, so
/// the two are independent). Because every thread-local table partitions
/// by the *same* hash, the final merge of N worker tables decomposes
/// into kPartitions disjoint merges that can run on different threads —
/// the serial-merge bottleneck of high-cardinality parallel GROUP BY
/// becomes embarrassingly parallel.
///
/// With `partitioned = false` the wrapper holds a single inner table and
/// routes nothing: the serial aggregation path keeps its exact hot path
/// while sharing the one sink body (physical_aggregate.cc).
class RadixPartitionedAggregateTable {
 public:
  static constexpr idx_t kRadixBits = 4;
  static constexpr idx_t kPartitions = idx_t(1) << kRadixBits;

  RadixPartitionedAggregateTable(std::vector<TypeId> group_types,
                                 const std::vector<BoundAggregate>& aggregates,
                                 bool partitioned);

  /// Partition of a group hash: its top kRadixBits bits.
  static idx_t PartitionOf(uint64_t hash) { return hash >> (64 - kRadixBits); }

  /// Maps the first `count` rows of `groups` to their partitions'
  /// groups, creating unseen groups. Retains the per-partition routing
  /// (selection vectors + group ids) for the UpdateStates calls that
  /// must follow for the same chunk.
  void FindOrCreateGroups(const DataChunk& groups, idx_t count);

  /// Folds rows of `arg` into aggregate slot `agg_index` of the groups
  /// resolved by the preceding FindOrCreateGroups call.
  void UpdateStates(const BoundAggregate& aggregate, idx_t agg_index,
                    const Vector* arg, idx_t count);

  idx_t PartitionCount() const { return partitions_.size(); }
  AggregateHashTable& partition(idx_t p) { return *partitions_[p]; }
  const AggregateHashTable& partition(idx_t p) const {
    return *partitions_[p];
  }

  idx_t GroupCount() const;

 private:
  std::vector<std::unique_ptr<AggregateHashTable>> partitions_;
  // Per-chunk routing scratch (valid between FindOrCreateGroups and the
  // UpdateStates calls for the same chunk).
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> part_sel_;   // kPartitions x kVectorSize
  std::vector<idx_t> part_ids_;      // kPartitions x kVectorSize
  idx_t part_count_[kPartitions] = {};
  std::vector<idx_t> ids_;  // unpartitioned fast path
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_AGGREGATE_HASHTABLE_H_
