#ifndef MALLARD_EXECUTION_PHYSICAL_DML_H_
#define MALLARD_EXECUTION_PHYSICAL_DML_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/execution/physical_operator.h"
#include "mallard/storage/table/data_table.h"

namespace mallard {

/// INSERT INTO table: consumes child chunks (already projected/cast to
/// the table layout), appends them, emits one row with the insert count.
class PhysicalInsert final : public PhysicalOperator {
 public:
  PhysicalInsert(DataTable* table, std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    done_ = false;
    return Status::OK();
  }

 private:
  DataTable* table_;
  bool done_ = false;
};

/// DELETE: child produces a single row-id column; emits the delete count.
class PhysicalDelete final : public PhysicalOperator {
 public:
  PhysicalDelete(DataTable* table, std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    done_ = false;
    return Status::OK();
  }

 private:
  DataTable* table_;
  bool done_ = false;
};

/// UPDATE: child produces [row id, new values...]; applies in-place MVCC
/// updates of `column_indexes`; emits the update count.
class PhysicalUpdate final : public PhysicalOperator {
 public:
  PhysicalUpdate(DataTable* table, std::vector<idx_t> column_indexes,
                 std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    done_ = false;
    return Status::OK();
  }

 private:
  DataTable* table_;
  std::vector<idx_t> column_indexes_;
  bool done_ = false;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_DML_H_
