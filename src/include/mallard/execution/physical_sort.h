#ifndef MALLARD_EXECUTION_PHYSICAL_SORT_H_
#define MALLARD_EXECUTION_PHYSICAL_SORT_H_

#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "mallard/execution/external_sort.h"
#include "mallard/execution/physical_operator.h"

namespace mallard {

/// ORDER BY via the out-of-core external sort.
class PhysicalOrderBy final : public PhysicalOperator {
 public:
  PhysicalOrderBy(std::vector<SortSpec> specs,
                  std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    sort_.reset();
    sorted_ = false;
    return Status::OK();
  }

 private:
  std::vector<SortSpec> specs_;
  std::unique_ptr<ExternalSort> sort_;
  bool sorted_ = false;
};

/// ORDER BY + LIMIT with a bounded heap: memory O(limit), not O(input).
class PhysicalTopN final : public PhysicalOperator {
 public:
  PhysicalTopN(std::vector<SortSpec> specs, idx_t limit, idx_t offset,
               std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    heap_.clear();
    sorted_rows_.clear();
    computed_ = false;
    position_ = 0;
    return Status::OK();
  }

 private:
  std::vector<SortSpec> specs_;
  idx_t limit_;
  idx_t offset_;
  std::vector<std::pair<std::string, std::vector<uint8_t>>> heap_;
  std::vector<std::vector<uint8_t>> sorted_rows_;
  bool computed_ = false;
  idx_t position_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_SORT_H_
