#ifndef MALLARD_EXECUTION_ROW_CODEC_H_
#define MALLARD_EXECUTION_ROW_CODEC_H_

#include <string>
#include <vector>

#include "mallard/common/serializer.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

/// A sort key specification: column index, direction, NULL placement.
struct SortSpec {
  idx_t column;
  bool ascending = true;
  bool nulls_first = true;
};

/// Row-wise serialization of chunk rows, used by the external sort, the
/// join hash table and spill files.
class RowCodec {
 public:
  explicit RowCodec(std::vector<TypeId> types) : types_(std::move(types)) {}

  const std::vector<TypeId>& types() const { return types_; }

  /// Appends row `row` of `chunk` to `out`.
  void EncodeRow(const DataChunk& chunk, idx_t row,
                 std::vector<uint8_t>* out) const;

  /// Decodes one row from `data` into row `out_row` of `out`, writing
  /// columns starting at `first_column` (so a payload row can be decoded
  /// straight into the right-hand side of a join output chunk); returns
  /// the number of bytes consumed.
  size_t DecodeRow(const uint8_t* data, DataChunk* out, idx_t out_row,
                   idx_t first_column = 0) const;

 private:
  std::vector<TypeId> types_;
};

/// Encodes the sort key of one row as an order-preserving byte string:
/// memcmp order of encodings == tuple order under the sort specs.
/// Encoding per key column: [null marker byte][payload]; integers are
/// sign-flipped big-endian, doubles use the IEEE total-order trick,
/// strings are zero-escaped and zero-terminated. Descending columns are
/// bitwise inverted.
void EncodeSortKey(const DataChunk& chunk, idx_t row,
                   const std::vector<SortSpec>& specs, std::string* key);

}  // namespace mallard

#endif  // MALLARD_EXECUTION_ROW_CODEC_H_
