#ifndef MALLARD_EXECUTION_EXTERNAL_SORT_H_
#define MALLARD_EXECUTION_EXTERNAL_SORT_H_

#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "mallard/compression/codec.h"
#include "mallard/execution/row_codec.h"
#include "mallard/storage/buffer_manager.h"

namespace mallard {

class ResourceGovernor;

/// External merge sort over chunks. Rows are encoded as
/// (order-preserving key, payload) entries; runs are cut when the
/// in-memory accumulation exceeds the governor's budget, sorted, sliced
/// into ~1MB segments, optionally compressed, and handed to the buffer
/// manager (which spills them under memory pressure). The merge phase
/// keeps only one pinned segment per run in memory — the out-of-core
/// behaviour the paper's merge join relies on (section 4).
class ExternalSort {
 public:
  ExternalSort(std::vector<TypeId> types, std::vector<SortSpec> specs,
               BufferManager* buffers, ResourceGovernor* governor);

  Status Sink(const DataChunk& chunk);
  /// Sorts the tail run and prepares merging.
  Status Finalize();
  /// Streams sorted output; cardinality 0 = done. `out` must be
  /// initialized with the input types.
  Status GetChunk(DataChunk* out);

  struct Stats {
    idx_t runs = 0;
    uint64_t raw_bytes = 0;
    uint64_t stored_bytes = 0;  // after compression
    idx_t rows = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Segment {
    std::shared_ptr<ManagedBuffer> buffer;
    uint64_t stored_size = 0;
    uint64_t raw_size = 0;
    CompressionLevel level = CompressionLevel::kNone;
  };
  struct Run {
    std::vector<Segment> segments;
  };

  /// Cursor streaming one run during the merge.
  class RunCursor {
   public:
    RunCursor(const Run* run, BufferManager* buffers, const RowCodec* codec)
        : run_(run), buffers_(buffers), codec_(codec) {}
    /// Loads the next entry; false at end of run.
    Result<bool> Advance();
    std::string_view key() const { return key_; }
    /// Decodes the current row into `out` at `out_row`.
    void DecodeCurrentRow(DataChunk* out, idx_t out_row) const;

   private:
    Status LoadSegment();
    const Run* run_;
    BufferManager* buffers_;
    const RowCodec* codec_;
    idx_t segment_index_ = 0;
    std::vector<uint8_t> current_;
    size_t offset_ = 0;
    bool loaded_ = false;
    std::string_view key_;
    const uint8_t* row_ptr_ = nullptr;
  };

  Status FinishRun();
  uint64_t RunBudget() const;

  std::vector<TypeId> types_;
  std::vector<SortSpec> specs_;
  BufferManager* buffers_;
  ResourceGovernor* governor_;
  RowCodec codec_;

  // Current (unsorted) run accumulation.
  std::vector<std::string> keys_;
  std::vector<uint8_t> rows_;
  std::vector<size_t> row_offsets_;
  uint64_t accumulated_ = 0;

  std::vector<Run> runs_;
  std::vector<std::unique_ptr<RunCursor>> cursors_;
  // Merge heap: (key view, cursor index); min-heap by key.
  struct HeapEntry {
    std::string_view key;
    idx_t cursor;
  };
  struct HeapCompare {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.key > b.key || (a.key == b.key && a.cursor > b.cursor);
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap_;
  bool finalized_ = false;

  Stats stats_;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_EXTERNAL_SORT_H_
