#ifndef MALLARD_EXECUTION_PHYSICAL_AGGREGATE_H_
#define MALLARD_EXECUTION_PHYSICAL_AGGREGATE_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/execution/aggregate_function.h"
#include "mallard/execution/aggregate_hashtable.h"
#include "mallard/execution/physical_operator.h"

namespace mallard {

/// Aggregation without GROUP BY: exactly one output row.
class PhysicalUngroupedAggregate final : public PhysicalOperator {
 public:
  PhysicalUngroupedAggregate(std::vector<BoundAggregate> aggregates,
                             std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    done_ = false;
    return Status::OK();
  }

 private:
  /// Thread-local partial states combined with AggregateFunction::Combine;
  /// sets `*done` when the parallel path ran.
  Status ParallelAggregate(ExecutionContext* context,
                           std::vector<AggState>* states, bool* done);
  /// The accumulation loop shared by the serial path and every parallel
  /// worker: pull chunks from `source`, evaluate `arg_exprs` (null
  /// entry = COUNT(*)), fold into `states`. One body keeps serial and
  /// parallel semantics from diverging.
  Status AggregateSource(ExecutionContext* context, PhysicalOperator* source,
                         const std::vector<ExprPtr>& arg_exprs,
                         std::vector<AggState>* states);
  /// One nullable Copy of each aggregate's argument expression.
  std::vector<ExprPtr> CopyArgExprs() const;

  std::vector<BoundAggregate> aggregates_;
  bool done_ = false;
};

/// Hash aggregation: output columns are the group keys followed by the
/// aggregates. Backed by the vectorized AggregateHashTable — group
/// lookup is a batch hash pass plus a linear-probe loop per chunk, and
/// aggregate states update in typed batches over compact fixed-width
/// state rows (no per-row key serialization, map lookups, or Value
/// boxing on fixed-width aggregates).
///
/// Parallel sink: workers pre-aggregate disjoint morsels into
/// thread-local *radix-partitioned* tables, so the final merge
/// decomposes into kPartitions disjoint per-partition merges that run in
/// parallel under the governor's budget (serial sinks keep a single
/// unpartitioned table and skip routing entirely).
///
/// External aggregation: when a governor is present the table's spilling
/// is enabled and MaybeSpill runs after every sunk chunk, externalizing
/// the largest radix partition to spill runs whenever resident groups
/// exceed the operator's budget share (workers divide the share evenly;
/// during the parallel merge each partition checks its own 1/16 share).
/// Emission then goes through NextEmitTable, which merges each
/// partition's runs back into one bounded table — recursing on the next
/// 4 hash bits if a partition alone outgrows the emission budget.
class PhysicalHashAggregate final : public PhysicalOperator {
 public:
  PhysicalHashAggregate(std::vector<ExprPtr> groups,
                        std::vector<BoundAggregate> aggregates,
                        std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

  /// Number of distinct groups seen (stats for tests/benches). When the
  /// aggregate spilled, resident tables are drained during emission, so
  /// the count of emitted groups takes over once emission ran.
  idx_t GroupCount() const {
    idx_t resident = table_ ? table_->GroupCount() : 0;
    return emitted_groups_ > resident ? emitted_groups_ : resident;
  }

  /// True when any groups were externalized to spill runs (tests).
  bool Spilled() const { return table_ && table_->Spilled(); }

  /// Phase timing of the last execution (benches): time spent in the
  /// (possibly parallel) input sink, and in the partition-merge pass
  /// (0 for serial sinks, which have no merge).
  double SinkMs() const { return sink_ms_; }
  double MergeMs() const { return merge_ms_; }

 protected:
  Status ResetOperator() override {
    emit_current_ = nullptr;
    table_.reset();
    sunk_ = false;
    emit_offset_ = 0;
    emitted_groups_ = 0;
    sink_ms_ = 0;
    merge_ms_ = 0;
    return Status::OK();
  }

 private:
  Status Sink(ExecutionContext* context);
  /// Morsel-driven pre-aggregation: workers aggregate disjoint morsels
  /// into thread-local radix-partitioned tables; the per-partition
  /// merges then run through parallel::RunPartitionedTasks. Sets `*done`
  /// when the parallel path ran; otherwise the caller runs the serial
  /// sink loop.
  Status ParallelSink(ExecutionContext* context, bool* done);
  /// The sink loop shared by the serial path (source = child(0), one
  /// unpartitioned table) and every parallel worker (source = its morsel
  /// clone, table = its thread-local partitioned table): pull chunks,
  /// evaluate groups, FindOrCreateGroups, update states. One body keeps
  /// serial and parallel semantics from diverging. Argument entries may
  /// be null (COUNT(*)).
  Status SinkSource(ExecutionContext* context, PhysicalOperator* source,
                    const std::vector<ExprPtr>& group_exprs,
                    const std::vector<ExprPtr>& arg_exprs,
                    RadixPartitionedAggregateTable* table);
  std::vector<TypeId> GroupTypes() const;
  std::vector<ExprPtr> CopyGroupExprs() const;
  std::vector<ExprPtr> CopyArgExprs() const;

  std::vector<ExprPtr> groups_;
  std::vector<BoundAggregate> aggregates_;

  std::unique_ptr<RadixPartitionedAggregateTable> table_;
  bool sunk_ = false;
  // Emission cursor: tables come from table_->NextEmitTable (resident
  // partition or merged spill slice); the offset is kVectorSize-aligned
  // within the current table.
  AggregateHashTable* emit_current_ = nullptr;
  idx_t emit_offset_ = 0;
  idx_t emitted_groups_ = 0;
  double sink_ms_ = 0;
  double merge_ms_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_AGGREGATE_H_
