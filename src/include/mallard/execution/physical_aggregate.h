#ifndef MALLARD_EXECUTION_PHYSICAL_AGGREGATE_H_
#define MALLARD_EXECUTION_PHYSICAL_AGGREGATE_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/execution/aggregate_function.h"
#include "mallard/execution/aggregate_hashtable.h"
#include "mallard/execution/physical_operator.h"

namespace mallard {

/// Aggregation without GROUP BY: exactly one output row.
class PhysicalUngroupedAggregate final : public PhysicalOperator {
 public:
  PhysicalUngroupedAggregate(std::vector<BoundAggregate> aggregates,
                             std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    done_ = false;
    return Status::OK();
  }

 private:
  std::vector<BoundAggregate> aggregates_;
  DataChunk child_chunk_;
  bool done_ = false;
};

/// Hash aggregation: output columns are the group keys followed by the
/// aggregates. Backed by the vectorized AggregateHashTable — group
/// lookup is a batch hash pass plus a linear-probe loop per chunk, and
/// aggregate states update in typed batches (no per-row key
/// serialization or map lookups).
class PhysicalHashAggregate final : public PhysicalOperator {
 public:
  PhysicalHashAggregate(std::vector<ExprPtr> groups,
                        std::vector<BoundAggregate> aggregates,
                        std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

  /// Number of distinct groups seen (stats for tests/benches).
  idx_t GroupCount() const { return table_ ? table_->GroupCount() : 0; }

 protected:
  Status ResetOperator() override {
    table_.reset();
    sunk_ = false;
    output_position_ = 0;
    return Status::OK();
  }

 private:
  Status Sink(ExecutionContext* context);

  std::vector<ExprPtr> groups_;
  std::vector<BoundAggregate> aggregates_;
  DataChunk child_chunk_;
  DataChunk group_chunk_;  // evaluated group expressions

  std::unique_ptr<AggregateHashTable> table_;
  std::vector<idx_t> group_ids_;  // per-chunk scratch
  bool sunk_ = false;
  idx_t output_position_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_AGGREGATE_H_
