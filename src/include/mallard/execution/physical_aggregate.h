#ifndef MALLARD_EXECUTION_PHYSICAL_AGGREGATE_H_
#define MALLARD_EXECUTION_PHYSICAL_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mallard/execution/aggregate_function.h"
#include "mallard/execution/physical_operator.h"
#include "mallard/execution/row_codec.h"

namespace mallard {

/// Aggregation without GROUP BY: exactly one output row.
class PhysicalUngroupedAggregate final : public PhysicalOperator {
 public:
  PhysicalUngroupedAggregate(std::vector<BoundAggregate> aggregates,
                             std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    done_ = false;
    return Status::OK();
  }

 private:
  std::vector<BoundAggregate> aggregates_;
  DataChunk child_chunk_;
  bool done_ = false;
};

/// Hash aggregation: output columns are the group keys followed by the
/// aggregates. Groups are keyed by an order-preserving encoding of the
/// group expressions.
class PhysicalHashAggregate final : public PhysicalOperator {
 public:
  PhysicalHashAggregate(std::vector<ExprPtr> groups,
                        std::vector<BoundAggregate> aggregates,
                        std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

  /// Number of distinct groups seen (stats for tests/benches).
  idx_t GroupCount() const { return group_rows_.size(); }

 protected:
  Status ResetOperator() override {
    group_map_.clear();
    group_rows_.clear();
    states_.clear();
    sunk_ = false;
    output_position_ = 0;
    return Status::OK();
  }

 private:
  Status Sink(ExecutionContext* context);

  std::vector<ExprPtr> groups_;
  std::vector<BoundAggregate> aggregates_;
  DataChunk child_chunk_;
  DataChunk group_chunk_;  // evaluated group expressions

  std::unordered_map<std::string, idx_t> group_map_;
  std::vector<std::vector<Value>> group_rows_;
  std::vector<std::vector<AggState>> states_;
  bool sunk_ = false;
  idx_t output_position_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_PHYSICAL_AGGREGATE_H_
