#ifndef MALLARD_EXECUTION_JOIN_HASHTABLE_H_
#define MALLARD_EXECUTION_JOIN_HASHTABLE_H_

#include <array>
#include <memory>
#include <vector>

#include "mallard/execution/physical_operator.h"
#include "mallard/execution/row_codec.h"
#include "mallard/storage/buffer_manager.h"

namespace mallard {

class ResourceGovernor;

/// Vectorized hash table for the build side of a hash join.
///
/// Hashes are computed batch-at-a-time over typed vector data (no Value
/// boxing, no string serialization); build rows are stored in compact
/// row layout ([next ref | hash | key row | payload row]) inside
/// *spillable* buffer-manager segments, radix-partitioned 16 ways by the
/// top hash bits. The probe directory is a power-of-two array of chain
/// heads: each slot points at the most convenient build row, rows chain
/// via their embedded next ref. Rows whose key contains a NULL are never
/// inserted (SQL equality never matches NULL).
///
/// Out-of-core build (EnableSpilling): the partitions are the spill
/// unit. After every appended chunk the governor's memory budget is
/// re-read; while the resident partitions exceed the table's share, the
/// largest one is unloaded — its segment pins are released, making them
/// LRU-evictable, so the actual disk I/O falls out of the buffer
/// manager's pin/unpin contract. If anything was unloaded (or the total
/// build exceeds the budget at Finalize), the table enters *grace mode*:
/// no global directory is built; instead the operator processes
/// partitions one at a time — resident first, spilled ones reloaded via
/// LoadPartition — building a per-partition directory with
/// FinalizePartition and recursing through ScanPartition (at a deeper
/// radix shift) when a single partition still exceeds the budget.
///
/// Probe flow (one type dispatch per vector, tight loops inside):
///   1. HashKeyColumns over the probe key chunk -> hashes[0..n)
///   2. ProbeHeads -> per-row chain head refs (kNullRef for NULL keys)
///   3. FirstMatch/NextMatch walk a chain comparing stored hash, then
///      stored key bytes, against the typed probe vectors
///   4. DecodePayload writes a matched build row straight into the
///      output chunk at the join's right-hand column offset
class JoinHashTable {
 public:
  /// Sentinel row reference: end of chain / no candidate.
  static constexpr uint64_t kNullRef = ~uint64_t(0);

  static constexpr idx_t kRadixBits = 4;
  static constexpr idx_t kPartitions = idx_t(1) << kRadixBits;
  /// Deepest radix shift grace recursion may reach (shifts 0, 4, 8, 12
  /// give four partitioning levels; identical-hash data cannot split, so
  /// beyond this a partition is processed whole even if over budget).
  static constexpr int kMaxRadixShift = 12;

  /// Partition of `hash` at radix level `shift`: 4 bits starting
  /// `shift` below the top (the directory uses the low bits, so the two
  /// are independent at every level).
  static idx_t PartitionOf(uint64_t hash, int shift) {
    return (hash >> (64 - kRadixBits - shift)) & (kPartitions - 1);
  }

  /// `directory_size_hint` forces the initial directory capacity
  /// (rounded up to a power of two); 0 sizes it from the build count.
  /// Tests use a tiny hint to force chain collisions.
  JoinHashTable(std::vector<TypeId> key_types,
                std::vector<TypeId> payload_types,
                idx_t directory_size_hint = 0);

  /// Enables out-of-core build: this table's resident partitions are
  /// kept under governor->EffectiveMemoryBudget() / divisor, re-read
  /// after every Append (the same re-read contract morsels use for the
  /// thread budget). `radix_shift` selects the hash bits partitioned on
  /// (grace recursion uses shift + 4). Without this call the table is
  /// purely in-memory (unit-test contexts with no governor).
  void EnableSpilling(const ResourceGovernor* governor, uint64_t divisor,
                      int radix_shift);

  /// Appends the first `count` rows of `keys`+`payload` to the build
  /// side. Rows with a NULL key column are skipped.
  Status Append(ExecutionContext* context, const DataChunk& keys,
                const DataChunk& payload, idx_t count);

  /// Ends the build. In-memory mode: pins every partition and builds the
  /// global probe directory (chains preserve build order; first-built
  /// row is first in chain). Grace mode (something spilled, or the build
  /// exceeds the budget): releases every pin instead — the operator then
  /// drives the per-partition API below. Call exactly once.
  Status Finalize();

  /// Steals `other`'s build rows (segments + refs), partition by
  /// partition — the merge step of a partitioned parallel build, where
  /// each worker appends into a private table and the coordinator
  /// combines them. Both tables must share the same key/payload layout
  /// and neither may be finalized yet; `other` is left empty. Chains
  /// later preserve merge order (worker by worker, build order within
  /// each). A donor that spilled leaves the merged table spilled.
  void MergePartition(JoinHashTable&& other);

  /// Number of build rows stored (NULL-key rows excluded).
  idx_t Count() const { return count_; }
  uint64_t BuildBytes() const { return build_bytes_; }
  idx_t DirectoryCapacity() const { return directory_.size(); }

  /// True after Finalize when the table must be probed partition by
  /// partition (grace hash join).
  bool GraceMode() const { return grace_; }
  int radix_shift() const { return radix_shift_; }
  /// This table's current byte share of the governor's budget (re-read
  /// on every call; ~0 when spilling is not enabled).
  uint64_t SpillBudget() const;

  // -- Grace-mode partition API (valid after Finalize) ----------------

  uint64_t PartitionBytes(idx_t p) const { return partitions_[p].bytes; }
  idx_t PartitionRows(idx_t p) const { return partitions_[p].refs.size(); }
  /// True when the partition's segments are pinned resident (never
  /// unloaded during the build). Grace processing orders resident
  /// partitions first so they are probed before eviction pressure from
  /// reloads can push them out.
  bool PartitionResident(idx_t p) const { return partitions_[p].resident; }
  /// Pins every segment of partition `p`, reloading spilled ones.
  Status LoadPartition(idx_t p);
  /// Builds the probe directory over partition `p` only (partition must
  /// be loaded). Replaces any previous per-partition directory.
  Status FinalizePartition(idx_t p);
  /// Releases partition `p` entirely (probe done): segments, refs and
  /// spill slots are freed.
  void DropPartition(idx_t p);

  /// Streaming decode of a partition's rows back into key + payload
  /// chunks (grace recursion rebuilds a child table from these). Pins
  /// one segment at a time, so an over-budget partition can be scanned
  /// without loading it. Emits up to kVectorSize rows per call; 0 rows
  /// signals the end.
  struct ScanCursor {
    idx_t ref_index = 0;
    idx_t pinned_segment = kInvalidIndex;
    BufferHandle pin;
    const uint8_t* data = nullptr;
  };
  Status ScanPartition(idx_t p, ScanCursor* cursor, DataChunk* keys,
                       DataChunk* payload, idx_t* count) const;

  // -- Probe API (global directory, or per-partition in grace mode) ---

  /// Hashes the probe key chunk and resolves per-row chain heads:
  /// heads[r] is the first *candidate* ref for probe row r (the chain
  /// may contain rows of other hashes), kNullRef for rows with NULL
  /// keys. `hashes` is filled as a side effect and must be passed to
  /// FirstMatch/NextMatch.
  void ProbeHeads(const DataChunk& keys, idx_t count, uint64_t* hashes,
                  uint64_t* heads) const;

  /// First ref in the chain starting at `ref` (inclusive) whose stored
  /// key equals probe row `row`; kNullRef if the chain has no match.
  uint64_t FirstMatch(uint64_t ref, const DataChunk& keys, idx_t row,
                      uint64_t hash) const;

  /// Next match strictly after `ref` in its chain for the same probe row.
  uint64_t NextMatch(uint64_t ref, const DataChunk& keys, idx_t row,
                     uint64_t hash) const;

  /// Decodes the payload of build row `ref` into row `out_row` of `out`,
  /// writing columns starting at `first_column`.
  void DecodePayload(uint64_t ref, DataChunk* out, idx_t out_row,
                     idx_t first_column) const;

 private:
  // Row refs pack (partition, segment index, byte offset):
  // 4 | 20 | 40 bits.
  static constexpr int kOffsetBits = 40;
  static constexpr uint64_t kOffsetMask = (uint64_t(1) << kOffsetBits) - 1;
  static constexpr int kSegmentBits = 20;
  static constexpr uint64_t kSegmentMask = (uint64_t(1) << kSegmentBits) - 1;
  // Row header: [next ref: 8][hash: 8][key bytes: 4] — the key length is
  // recorded at build time so DecodePayload jumps straight to the
  // payload instead of re-walking the key encoding per emitted match.
  static constexpr idx_t kHeaderSize = 20;
  // Per-partition segments grow geometrically so small builds do not pay
  // 16 full-size segments.
  static constexpr uint64_t kMinSegmentBytes = 16 * 1024;
  static constexpr uint64_t kMaxSegmentBytes = 1 << 20;

  struct Segment {
    std::shared_ptr<ManagedBuffer> buffer;
    BufferHandle pin;          // held while the partition is loaded
    uint8_t* data = nullptr;   // cached pin.data(); refreshed on reload
  };
  struct Partition {
    std::vector<Segment> segments;
    std::vector<uint64_t> refs;  // build order within the partition
    uint64_t tail_used = 0;
    uint64_t bytes = 0;
    bool resident = true;
  };

  const uint8_t* Resolve(uint64_t ref) const {
    const Partition& part = partitions_[ref >> (kOffsetBits + kSegmentBits)];
    return part.segments[(ref >> kOffsetBits) & kSegmentMask].data +
           (ref & kOffsetMask);
  }
  uint8_t* ResolveMutable(uint64_t ref) {
    Partition& part = partitions_[ref >> (kOffsetBits + kSegmentBits)];
    return part.segments[(ref >> kOffsetBits) & kSegmentMask].data +
           (ref & kOffsetMask);
  }
  bool MatchKeys(const uint8_t* stored_keys, const DataChunk& keys,
                 idx_t row) const;
  Status AppendRow(ExecutionContext* context, idx_t partition,
                   const uint8_t* row, uint64_t size);
  /// Unloads the largest resident partitions until the resident bytes
  /// fit the current budget (the partition-sink budget consultation).
  Status MaybeSpill();
  void UnloadPartition(idx_t p);
  /// Head-inserts `refs` in reverse, so chains come out in build order.
  void InsertRefs(const std::vector<uint64_t>& refs);

  std::vector<TypeId> key_types_;
  RowCodec key_codec_;
  RowCodec payload_codec_;
  idx_t directory_size_hint_;

  std::array<Partition, kPartitions> partitions_;
  idx_t count_ = 0;
  uint64_t build_bytes_ = 0;
  std::vector<uint64_t> directory_;  // slot -> chain head ref
  uint64_t mask_ = 0;
  std::vector<uint8_t> row_scratch_;
  std::vector<uint64_t> hash_scratch_;

  BufferManager* buffers_ = nullptr;  // captured on first Append
  const ResourceGovernor* governor_ = nullptr;
  uint64_t spill_divisor_ = 2;
  int radix_shift_ = 0;
  bool spill_enabled_ = false;
  bool spilled_any_ = false;
  bool grace_ = false;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_JOIN_HASHTABLE_H_
