#ifndef MALLARD_EXECUTION_JOIN_HASHTABLE_H_
#define MALLARD_EXECUTION_JOIN_HASHTABLE_H_

#include <memory>
#include <vector>

#include "mallard/execution/physical_operator.h"
#include "mallard/execution/row_codec.h"
#include "mallard/storage/buffer_manager.h"

namespace mallard {

/// Vectorized hash table for the build side of a hash join.
///
/// Hashes are computed batch-at-a-time over typed vector data (no Value
/// boxing, no string serialization); build rows are stored in compact
/// row layout ([next ref | hash | key row | payload row]) inside
/// buffer-manager segments so the governor's memory accounting sees
/// them. The probe directory is a power-of-two array of chain heads:
/// each slot points at the most convenient build row, rows chain via
/// their embedded next ref. Rows whose key contains a NULL are never
/// inserted (SQL equality never matches NULL).
///
/// Probe flow (one type dispatch per vector, tight loops inside):
///   1. HashKeyColumns over the probe key chunk -> hashes[0..n)
///   2. ProbeHeads -> per-row chain head refs (kNullRef for NULL keys)
///   3. FirstMatch/NextMatch walk a chain comparing stored hash, then
///      stored key bytes, against the typed probe vectors
///   4. DecodePayload writes a matched build row straight into the
///      output chunk at the join's right-hand column offset
class JoinHashTable {
 public:
  /// Sentinel row reference: end of chain / no candidate.
  static constexpr uint64_t kNullRef = ~uint64_t(0);

  /// `directory_size_hint` forces the initial directory capacity
  /// (rounded up to a power of two); 0 sizes it from the build count.
  /// Tests use a tiny hint to force chain collisions.
  JoinHashTable(std::vector<TypeId> key_types,
                std::vector<TypeId> payload_types,
                idx_t directory_size_hint = 0);

  /// Appends the first `count` rows of `keys`+`payload` to the build
  /// side. Rows with a NULL key column are skipped.
  Status Append(ExecutionContext* context, const DataChunk& keys,
                const DataChunk& payload, idx_t count);

  /// Builds the probe directory. Call exactly once, after all Appends.
  /// Chains preserve build order (first-built row is first in chain).
  void Finalize();

  /// Steals `other`'s build rows (segments + refs) into this table —
  /// the merge step of a partitioned parallel build, where each worker
  /// appends into a private table and the coordinator combines them.
  /// Both tables must share the same key/payload layout and neither may
  /// be finalized yet; `other` is left empty. Chains later preserve
  /// merge order (partition by partition, build order within each).
  void MergePartition(JoinHashTable&& other);

  /// Number of build rows stored (NULL-key rows excluded).
  idx_t Count() const { return refs_.size(); }
  uint64_t BuildBytes() const { return build_bytes_; }
  idx_t DirectoryCapacity() const { return directory_.size(); }

  /// Hashes the probe key chunk and resolves per-row chain heads:
  /// heads[r] is the first *candidate* ref for probe row r (the chain
  /// may contain rows of other hashes), kNullRef for rows with NULL
  /// keys. `hashes` is filled as a side effect and must be passed to
  /// FirstMatch/NextMatch.
  void ProbeHeads(const DataChunk& keys, idx_t count, uint64_t* hashes,
                  uint64_t* heads) const;

  /// First ref in the chain starting at `ref` (inclusive) whose stored
  /// key equals probe row `row`; kNullRef if the chain has no match.
  uint64_t FirstMatch(uint64_t ref, const DataChunk& keys, idx_t row,
                      uint64_t hash) const;

  /// Next match strictly after `ref` in its chain for the same probe row.
  uint64_t NextMatch(uint64_t ref, const DataChunk& keys, idx_t row,
                     uint64_t hash) const;

  /// Decodes the payload of build row `ref` into row `out_row` of `out`,
  /// writing columns starting at `first_column`.
  void DecodePayload(uint64_t ref, DataChunk* out, idx_t out_row,
                     idx_t first_column) const;

 private:
  // Row refs pack (segment index, byte offset): 24 bits segment,
  // 40 bits offset.
  static constexpr int kOffsetBits = 40;
  static constexpr uint64_t kOffsetMask = (uint64_t(1) << kOffsetBits) - 1;
  // Row header: [next ref: 8][hash: 8][key bytes: 4] — the key length is
  // recorded at build time so DecodePayload jumps straight to the
  // payload instead of re-walking the key encoding per emitted match.
  static constexpr idx_t kHeaderSize = 20;

  const uint8_t* Resolve(uint64_t ref) const {
    return segments_[ref >> kOffsetBits].data() + (ref & kOffsetMask);
  }
  uint8_t* ResolveMutable(uint64_t ref) {
    return segments_[ref >> kOffsetBits].data() + (ref & kOffsetMask);
  }
  bool MatchKeys(const uint8_t* stored_keys, const DataChunk& keys,
                 idx_t row) const;

  std::vector<TypeId> key_types_;
  RowCodec key_codec_;
  RowCodec payload_codec_;
  idx_t directory_size_hint_;

  std::vector<BufferHandle> segments_;
  uint64_t segment_used_ = 0;
  uint64_t build_bytes_ = 0;
  std::vector<uint64_t> refs_;       // all build rows, in build order
  std::vector<uint64_t> directory_;  // slot -> chain head ref
  uint64_t mask_ = 0;
  std::vector<uint8_t> row_scratch_;
  std::vector<uint64_t> hash_scratch_;
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_JOIN_HASHTABLE_H_
