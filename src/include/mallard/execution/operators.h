#ifndef MALLARD_EXECUTION_OPERATORS_H_
#define MALLARD_EXECUTION_OPERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "mallard/execution/physical_operator.h"
#include "mallard/expression/bound_expression.h"
#include "mallard/storage/table/data_table.h"

namespace mallard {

/// A zone-map filter whose comparison value is a prepared-statement
/// parameter: the concrete TableFilter is materialized from the bound
/// value at scan initialization, so every re-execution of a prepared
/// plan prunes row groups with its fresh parameter values.
struct LateBoundTableFilter {
  idx_t column_index;  // into the base table schema
  CompareOp op;
  TypeId column_type;
  std::shared_ptr<BoundParameterData> parameters;
  idx_t parameter_index;
};

/// Sequential scan over a DataTable with projection pushdown (column ids)
/// and zone-map filters (plan-time constants plus late-bound parameters).
class PhysicalTableScan final : public PhysicalOperator {
 public:
  PhysicalTableScan(DataTable* table, std::vector<idx_t> column_ids,
                    std::vector<TableFilter> filters,
                    std::vector<TypeId> types,
                    std::vector<LateBoundTableFilter> late_filters = {});
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;
  const DataTable* ParallelSourceTable() const override { return table_; }
  std::unique_ptr<PhysicalOperator> MorselClone(
      const ParallelCloneContext& ctx) const override;

 protected:
  Status ResetOperator() override {
    state_ = TableScanState{};
    initialized_ = false;
    return Status::OK();
  }

 private:
  /// Plan-time filters plus zone-map filters materialized from the
  /// currently bound parameter values (late-bound filters with unbound,
  /// NULL or uncastable values are skipped — pruning stays optional).
  std::vector<TableFilter> EffectiveFilters() const;

  DataTable* table_;
  std::vector<idx_t> column_ids_;
  std::vector<TableFilter> filters_;
  std::vector<LateBoundTableFilter> late_filters_;
  TableScanState state_;
  bool initialized_ = false;
};

/// Filters rows by a boolean predicate, compacting survivors.
class PhysicalFilter final : public PhysicalOperator {
 public:
  PhysicalFilter(ExprPtr predicate, std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;
  const DataTable* ParallelSourceTable() const override {
    return children_[0]->ParallelSourceTable();
  }
  std::unique_ptr<PhysicalOperator> MorselClone(
      const ParallelCloneContext& ctx) const override;

 private:
  ExprPtr predicate_;
  DataChunk child_chunk_;
};

/// Computes one output vector per expression.
class PhysicalProjection final : public PhysicalOperator {
 public:
  PhysicalProjection(std::vector<ExprPtr> expressions,
                     std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;
  const DataTable* ParallelSourceTable() const override {
    return children_[0]->ParallelSourceTable();
  }
  std::unique_ptr<PhysicalOperator> MorselClone(
      const ParallelCloneContext& ctx) const override;

 private:
  std::vector<ExprPtr> expressions_;
  DataChunk child_chunk_;
};

/// LIMIT / OFFSET.
class PhysicalLimit final : public PhysicalOperator {
 public:
  PhysicalLimit(idx_t limit, idx_t offset,
                std::unique_ptr<PhysicalOperator> child);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    skipped_ = 0;
    produced_ = 0;
    return Status::OK();
  }

 private:
  idx_t limit_;
  idx_t offset_;
  idx_t skipped_ = 0;
  idx_t produced_ = 0;
  DataChunk child_chunk_;
};

/// Constant VALUES rows.
class PhysicalValues final : public PhysicalOperator {
 public:
  PhysicalValues(std::vector<std::vector<Value>> rows,
                 std::vector<TypeId> types);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    position_ = 0;
    return Status::OK();
  }

 private:
  std::vector<std::vector<Value>> rows_;
  idx_t position_ = 0;
};

/// Rows of arbitrary (column-free) expressions, evaluated at execution
/// time — the child of prepared `INSERT INTO t VALUES (?, ?)` plans,
/// where values are only known once parameters are bound.
class PhysicalExpressionScan final : public PhysicalOperator {
 public:
  PhysicalExpressionScan(std::vector<std::vector<ExprPtr>> rows,
                         std::vector<TypeId> types);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 protected:
  Status ResetOperator() override {
    position_ = 0;
    return Status::OK();
  }

 private:
  std::vector<std::vector<ExprPtr>> rows_;
  idx_t position_ = 0;
};

/// Produces nothing (planner shortcut for provably empty results).
class PhysicalEmptyResult final : public PhysicalOperator {
 public:
  explicit PhysicalEmptyResult(std::vector<TypeId> types)
      : PhysicalOperator(std::move(types)) {}
  Status GetChunk(ExecutionContext*, DataChunk* out) override {
    out->Reset();
    return Status::OK();
  }
  std::string name() const override { return "EMPTY_RESULT"; }
};

}  // namespace mallard

#endif  // MALLARD_EXECUTION_OPERATORS_H_
