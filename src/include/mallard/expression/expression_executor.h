#ifndef MALLARD_EXPRESSION_EXPRESSION_EXECUTOR_H_
#define MALLARD_EXPRESSION_EXPRESSION_EXECUTOR_H_

#include "mallard/expression/bound_expression.h"

namespace mallard {

/// Vectorized expression interpreter: evaluates a bound expression over a
/// chunk, producing one output vector per call — the execution style the
/// paper chooses over JIT for embeddability (section 6).
class ExpressionExecutor {
 public:
  /// Evaluates `expr` over the first `input.size()` rows; `result` must
  /// have the expression's return type.
  static Status Execute(const BoundExpression& expr, const DataChunk& input,
                        Vector* result);

  /// Evaluates a predicate and fills `sel` with indices of rows where it
  /// is TRUE (NULL and FALSE are filtered). Returns the match count.
  static Result<idx_t> Select(const BoundExpression& expr,
                              const DataChunk& input, uint32_t* sel);

  /// Scalar (tuple-at-a-time) evaluation; reference implementation used
  /// by the baseline engine and by property tests of the vectorized path.
  static Result<Value> ExecuteScalar(const BoundExpression& expr,
                                     const std::vector<Value>& row);
};

}  // namespace mallard

#endif  // MALLARD_EXPRESSION_EXPRESSION_EXECUTOR_H_
