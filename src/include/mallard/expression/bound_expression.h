#ifndef MALLARD_EXPRESSION_BOUND_EXPRESSION_H_
#define MALLARD_EXPRESSION_BOUND_EXPRESSION_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mallard/common/value.h"
#include "mallard/storage/table/column_segment.h"  // CompareOp
#include "mallard/vector/data_chunk.h"

namespace mallard {

/// Kinds of bound (type-resolved) expressions the executor can evaluate.
enum class ExprClass : uint8_t {
  kConstant,
  kColumnRef,
  kComparison,
  kConjunction,
  kArithmetic,
  kFunction,
  kCast,
  kIsNull,
  kNot,
  kCase,
  kInList,
  kLike,
  kParameter,
};

/// Arithmetic operators.
enum class ArithOp : uint8_t { kAdd, kSubtract, kMultiply, kDivide, kModulo };

/// Base class of the bound expression tree produced by the binder and
/// consumed by the vectorized ExpressionExecutor and the tuple-at-a-time
/// baseline interpreter.
class BoundExpression {
 public:
  BoundExpression(ExprClass expr_class, TypeId return_type)
      : expr_class_(expr_class), return_type_(return_type) {}
  virtual ~BoundExpression() = default;

  ExprClass expr_class() const { return expr_class_; }
  TypeId return_type() const { return return_type_; }

  virtual std::unique_ptr<BoundExpression> Copy() const = 0;
  virtual std::string ToString() const = 0;

 protected:
  /// Used by the binder to resolve types discovered late (parameters).
  void set_return_type(TypeId type) { return_type_ = type; }

 private:
  ExprClass expr_class_;
  TypeId return_type_;
};

using ExprPtr = std::unique_ptr<BoundExpression>;

class BoundConstant final : public BoundExpression {
 public:
  explicit BoundConstant(Value value)
      : BoundExpression(ExprClass::kConstant, value.type()),
        value_(std::move(value)) {}
  const Value& value() const { return value_; }
  ExprPtr Copy() const override {
    return std::make_unique<BoundConstant>(value_);
  }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// Reference to a column of the operator's input chunk by position.
class BoundColumnRef final : public BoundExpression {
 public:
  BoundColumnRef(idx_t index, TypeId type, std::string name)
      : BoundExpression(ExprClass::kColumnRef, type),
        index_(index),
        name_(std::move(name)) {}
  idx_t index() const { return index_; }
  const std::string& name() const { return name_; }
  ExprPtr Copy() const override {
    return std::make_unique<BoundColumnRef>(index_, return_type(), name_);
  }
  std::string ToString() const override { return name_; }

 private:
  idx_t index_;
  std::string name_;
};

class BoundComparison final : public BoundExpression {
 public:
  BoundComparison(CompareOp op, ExprPtr left, ExprPtr right)
      : BoundExpression(ExprClass::kComparison, TypeId::kBoolean),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  CompareOp op() const { return op_; }
  const BoundExpression& left() const { return *left_; }
  const BoundExpression& right() const { return *right_; }
  BoundExpression* mutable_left() { return left_.get(); }
  BoundExpression* mutable_right() { return right_.get(); }
  ExprPtr Copy() const override {
    return std::make_unique<BoundComparison>(op_, left_->Copy(),
                                             right_->Copy());
  }
  std::string ToString() const override;

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class BoundConjunction final : public BoundExpression {
 public:
  BoundConjunction(bool is_and, std::vector<ExprPtr> children)
      : BoundExpression(ExprClass::kConjunction, TypeId::kBoolean),
        is_and_(is_and),
        children_(std::move(children)) {}
  bool is_and() const { return is_and_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  std::vector<ExprPtr>& mutable_children() { return children_; }
  ExprPtr Copy() const override {
    std::vector<ExprPtr> copies;
    for (const auto& c : children_) copies.push_back(c->Copy());
    return std::make_unique<BoundConjunction>(is_and_, std::move(copies));
  }
  std::string ToString() const override;

 private:
  bool is_and_;
  std::vector<ExprPtr> children_;
};

class BoundArithmetic final : public BoundExpression {
 public:
  BoundArithmetic(ArithOp op, TypeId result, ExprPtr left, ExprPtr right)
      : BoundExpression(ExprClass::kArithmetic, result),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  ArithOp op() const { return op_; }
  const BoundExpression& left() const { return *left_; }
  const BoundExpression& right() const { return *right_; }
  ExprPtr Copy() const override {
    return std::make_unique<BoundArithmetic>(op_, return_type(),
                                             left_->Copy(), right_->Copy());
  }
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Vectorized scalar function implementation: consumes evaluated argument
/// vectors, produces `count` results.
using ScalarFunctionImpl = std::function<Status(
    const std::vector<Vector*>& args, idx_t count, Vector* result)>;

class BoundFunction final : public BoundExpression {
 public:
  BoundFunction(std::string name, TypeId result, std::vector<ExprPtr> args,
                ScalarFunctionImpl impl)
      : BoundExpression(ExprClass::kFunction, result),
        name_(std::move(name)),
        args_(std::move(args)),
        impl_(std::move(impl)) {}
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  const ScalarFunctionImpl& impl() const { return impl_; }
  ExprPtr Copy() const override {
    std::vector<ExprPtr> copies;
    for (const auto& a : args_) copies.push_back(a->Copy());
    return std::make_unique<BoundFunction>(name_, return_type(),
                                           std::move(copies), impl_);
  }
  std::string ToString() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
  ScalarFunctionImpl impl_;
};

class BoundCast final : public BoundExpression {
 public:
  BoundCast(ExprPtr child, TypeId target)
      : BoundExpression(ExprClass::kCast, target), child_(std::move(child)) {}
  const BoundExpression& child() const { return *child_; }
  ExprPtr Copy() const override {
    return std::make_unique<BoundCast>(child_->Copy(), return_type());
  }
  std::string ToString() const override;

 private:
  ExprPtr child_;
};

class BoundIsNull final : public BoundExpression {
 public:
  BoundIsNull(ExprPtr child, bool negated)
      : BoundExpression(ExprClass::kIsNull, TypeId::kBoolean),
        child_(std::move(child)),
        negated_(negated) {}
  const BoundExpression& child() const { return *child_; }
  bool negated() const { return negated_; }
  ExprPtr Copy() const override {
    return std::make_unique<BoundIsNull>(child_->Copy(), negated_);
  }
  std::string ToString() const override;

 private:
  ExprPtr child_;
  bool negated_;
};

class BoundNot final : public BoundExpression {
 public:
  explicit BoundNot(ExprPtr child)
      : BoundExpression(ExprClass::kNot, TypeId::kBoolean),
        child_(std::move(child)) {}
  const BoundExpression& child() const { return *child_; }
  ExprPtr Copy() const override {
    return std::make_unique<BoundNot>(child_->Copy());
  }
  std::string ToString() const override;

 private:
  ExprPtr child_;
};

class BoundCase final : public BoundExpression {
 public:
  struct Clause {
    ExprPtr when;
    ExprPtr then;
  };
  BoundCase(TypeId result, std::vector<Clause> clauses, ExprPtr else_expr)
      : BoundExpression(ExprClass::kCase, result),
        clauses_(std::move(clauses)),
        else_(std::move(else_expr)) {}
  const std::vector<Clause>& clauses() const { return clauses_; }
  const BoundExpression* else_expr() const { return else_.get(); }
  ExprPtr Copy() const override {
    std::vector<Clause> copies;
    for (const auto& c : clauses_) {
      copies.push_back(Clause{c.when->Copy(), c.then->Copy()});
    }
    return std::make_unique<BoundCase>(return_type(), std::move(copies),
                                       else_ ? else_->Copy() : nullptr);
  }
  std::string ToString() const override;

 private:
  std::vector<Clause> clauses_;
  ExprPtr else_;
};

class BoundInList final : public BoundExpression {
 public:
  BoundInList(ExprPtr child, std::vector<Value> values, bool negated)
      : BoundExpression(ExprClass::kInList, TypeId::kBoolean),
        child_(std::move(child)),
        values_(std::move(values)),
        negated_(negated) {}
  const BoundExpression& child() const { return *child_; }
  const std::vector<Value>& values() const { return values_; }
  bool negated() const { return negated_; }
  ExprPtr Copy() const override {
    return std::make_unique<BoundInList>(child_->Copy(), values_, negated_);
  }
  std::string ToString() const override;

 private:
  ExprPtr child_;
  std::vector<Value> values_;
  bool negated_;
};

class BoundLike final : public BoundExpression {
 public:
  BoundLike(ExprPtr child, std::string pattern, bool negated)
      : BoundExpression(ExprClass::kLike, TypeId::kBoolean),
        child_(std::move(child)),
        pattern_(std::move(pattern)),
        negated_(negated) {}
  const BoundExpression& child() const { return *child_; }
  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }
  ExprPtr Copy() const override {
    return std::make_unique<BoundLike>(child_->Copy(), pattern_, negated_);
  }
  std::string ToString() const override;

 private:
  ExprPtr child_;
  std::string pattern_;
  bool negated_;
};

/// Shared slot for prepared-statement parameter values. One instance is
/// owned by the PreparedStatement and shared (via shared_ptr) with every
/// BoundParameter node in the plan, so re-binding values between
/// executions requires no plan rewrite (paper section 3: the client API
/// is in-process, so parameter transfer is a pointer hand-over).
struct BoundParameterData {
  std::vector<Value> values;         // current bindings (1 slot per param)
  std::vector<bool> is_set;          // Bind() called for this slot?
  std::vector<TypeId> types;         // type inferred at bind (plan) time
  std::vector<bool> referenced;      // slot appears in the statement?

  idx_t Count() const { return values.size(); }
  void EnsureSize(idx_t count) {
    if (values.size() < count) {
      values.resize(count);
      is_set.resize(count, false);
      types.resize(count, TypeId::kInvalid);
      referenced.resize(count, false);
    }
  }
  void ClearBindings() {
    std::fill(is_set.begin(), is_set.end(), false);
    std::fill(values.begin(), values.end(), Value());
  }
};

/// A prepared-statement parameter ($N / ?). The node records the
/// parameter index and the type inferred from its binding context; the
/// value is read from the shared BoundParameterData at execution time.
class BoundParameter final : public BoundExpression {
 public:
  BoundParameter(idx_t index, std::shared_ptr<BoundParameterData> data,
                 TypeId type = TypeId::kInvalid)
      : BoundExpression(ExprClass::kParameter, type),
        index_(index),
        data_(std::move(data)) {}

  idx_t index() const { return index_; }
  const std::shared_ptr<BoundParameterData>& data() const { return data_; }

  /// Fixes this parameter's type from binding context; records it in the
  /// shared slot so the API layer can type-check Bind() calls.
  void ResolveType(TypeId type) {
    set_return_type(type);
    if (data_) {
      data_->EnsureSize(index_ + 1);
      if (data_->types[index_] == TypeId::kInvalid) {
        data_->types[index_] = type;
      }
    }
  }

  /// Returns the currently bound value cast to this node's type; errors
  /// if the parameter has not been bound.
  Result<Value> GetValue() const;

  ExprPtr Copy() const override {
    return std::make_unique<BoundParameter>(index_, data_, return_type());
  }
  std::string ToString() const override {
    return "$" + std::to_string(index_ + 1);
  }

 private:
  idx_t index_;
  std::shared_ptr<BoundParameterData> data_;
};

/// Aggregate function kinds (used by aggregate operators, not the scalar
/// expression executor).
enum class AggType : uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };

/// A bound aggregate: function plus (optional) argument expression.
struct BoundAggregate {
  AggType type;
  ExprPtr arg;  // null for COUNT(*)
  TypeId return_type;
};

}  // namespace mallard

#endif  // MALLARD_EXPRESSION_BOUND_EXPRESSION_H_
