#ifndef MALLARD_EXPRESSION_FUNCTION_REGISTRY_H_
#define MALLARD_EXPRESSION_FUNCTION_REGISTRY_H_

#include <string>
#include <vector>

#include "mallard/expression/bound_expression.h"

namespace mallard {

/// Built-in scalar function resolution. Given a function name and
/// argument types, returns the implementation and result type (with the
/// argument types possibly coerced by the binder beforehand).
class FunctionRegistry {
 public:
  struct Resolution {
    TypeId return_type;
    ScalarFunctionImpl impl;
    /// Types the arguments must be cast to before the call (same length
    /// as the call's argument list).
    std::vector<TypeId> arg_types;
  };

  /// Resolves `name(arg_types...)`; Binder error if unknown/mismatched.
  static Result<Resolution> Resolve(const std::string& name,
                                    const std::vector<TypeId>& arg_types);

  /// Names of all registered functions (for error messages/docs).
  static std::vector<std::string> FunctionNames();
};

}  // namespace mallard

#endif  // MALLARD_EXPRESSION_FUNCTION_REGISTRY_H_
