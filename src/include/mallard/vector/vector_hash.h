#ifndef MALLARD_VECTOR_VECTOR_HASH_H_
#define MALLARD_VECTOR_VECTOR_HASH_H_

#include "mallard/vector/data_chunk.h"

namespace mallard {

/// Hash assigned to NULL values. A fixed non-zero constant so that NULL
/// group keys land in one bucket (GROUP BY treats NULL = NULL) and so
/// that combining with further key columns still mixes.
constexpr uint64_t kNullHash = 0xbf58476d1ce4e5b9ULL;

/// Batch hash kernels over typed vector data: no Value boxing, no
/// per-row serialization. One type dispatch per vector, then a tight
/// loop over the raw array. Doubles are hashed on a normalized bit
/// pattern (-0.0 folded into +0.0) so the hash is consistent with SQL
/// equality; NaN hashes on its bit pattern.

/// Writes the hash of rows [0, count) of `input` into `hashes`.
void VectorHash(const Vector& input, idx_t count, uint64_t* hashes);

/// Combines the hash of rows [0, count) of `input` into existing
/// `hashes` (boost-style combine; order-sensitive across columns).
void VectorHashCombine(const Vector& input, idx_t count, uint64_t* hashes);

/// Hashes all columns of `keys` together: VectorHash on column 0,
/// VectorHashCombine on the rest.
void HashKeyColumns(const DataChunk& keys, idx_t count, uint64_t* hashes);

/// Folds -0.0 into +0.0 so bit-pattern hashing/equality matches SQL
/// equality on doubles.
inline double NormalizeDouble(double d) { return d == 0.0 ? 0.0 : d; }

}  // namespace mallard

#endif  // MALLARD_VECTOR_VECTOR_HASH_H_
