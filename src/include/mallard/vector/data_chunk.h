#ifndef MALLARD_VECTOR_DATA_CHUNK_H_
#define MALLARD_VECTOR_DATA_CHUNK_H_

#include <string>
#include <vector>

#include "mallard/vector/vector.h"

namespace mallard {

/// A horizontal slice of a table or intermediate result: a set of column
/// vectors sharing one cardinality. The unit handed between operators and
/// across the client API ("chunk" in the paper, section 6).
class DataChunk {
 public:
  DataChunk() = default;

  /// Initializes with one vector per type; chunk starts empty.
  void Initialize(const std::vector<TypeId>& types);

  idx_t size() const { return count_; }
  void SetCardinality(idx_t count) { count_ = count; }
  idx_t ColumnCount() const { return columns_.size(); }

  Vector& column(idx_t i) { return columns_[i]; }
  const Vector& column(idx_t i) const { return columns_[i]; }

  std::vector<TypeId> Types() const;

  /// Resets cardinality and per-vector state for reuse.
  void Reset();

  /// Boxed access (slow path, tests and boundaries).
  Value GetValue(idx_t col, idx_t row) const {
    return columns_[col].GetValue(row);
  }
  void SetValue(idx_t col, idx_t row, const Value& value) {
    columns_[col].SetValue(row, value);
  }

  /// Appends as many rows of `other` (starting at `offset`) as fit.
  /// Returns the number of rows appended.
  idx_t Append(const DataChunk& other, idx_t offset = 0);

  /// Renders the chunk as a table (debugging).
  std::string ToString() const;

 private:
  std::vector<Vector> columns_;
  idx_t count_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_VECTOR_DATA_CHUNK_H_
