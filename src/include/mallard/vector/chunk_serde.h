#ifndef MALLARD_VECTOR_CHUNK_SERDE_H_
#define MALLARD_VECTOR_CHUNK_SERDE_H_

#include "mallard/common/serializer.h"
#include "mallard/vector/data_chunk.h"

namespace mallard {

/// Serializes a chunk (types, cardinality, validity, data, strings) for
/// the WAL and the binary network protocol.
void SerializeChunk(const DataChunk& chunk, BinaryWriter* writer);

/// Deserializes a chunk written by SerializeChunk; initializes `chunk`.
Status DeserializeChunk(BinaryReader* reader, DataChunk* chunk);

}  // namespace mallard

#endif  // MALLARD_VECTOR_CHUNK_SERDE_H_
