#ifndef MALLARD_VECTOR_VECTOR_H_
#define MALLARD_VECTOR_VECTOR_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mallard/common/arena.h"
#include "mallard/common/constants.h"
#include "mallard/common/types.h"
#include "mallard/common/value.h"
#include "mallard/vector/validity_mask.h"

namespace mallard {

/// The distinct VARCHAR values of a dictionary-encoded column segment,
/// sorted ascending (StringRef order == Value::Compare order), with the
/// string bytes owned by the dictionary's own arena. One dictionary is
/// shared by the owning ColumnSegment and every vector a scan hands out,
/// so parallel workers gather codes against the same immutable entries
/// without copying a single string byte.
struct VectorDictionary {
  std::vector<StringRef> entries;  // sorted; point into `heap`
  ArenaAllocator heap;

  /// Per-entry hashes, memoized on first use: varchar group keys and
  /// join keys hash a dictionary entry once per segment lifetime instead
  /// of once per row per query. Thread-safe (parallel scans share one
  /// dictionary across workers).
  const std::vector<uint64_t>& EntryHashes() const;

 private:
  mutable std::vector<uint64_t> hashes_;
  mutable std::once_flag hash_once_;
};

/// Owning backing store for one vector: a fixed-size data array plus a
/// string heap for VARCHAR payloads. Shared between vectors via
/// shared_ptr so that chunks can be handed over to client code and
/// projections can alias columns without copying (paper section 5).
struct VectorBuffer {
  explicit VectorBuffer(idx_t bytes)
      : data(std::make_unique<uint8_t[]>(bytes)) {}
  std::unique_ptr<uint8_t[]> data;
  ArenaAllocator heap;  // VARCHAR payload storage
  /// Keeps a dictionary alive after Flatten(): the flattened StringRefs
  /// point into the dictionary's arena, not into `heap`.
  std::shared_ptr<const VectorDictionary> keepalive;
};

/// A typed column slice of up to kVectorSize values with a validity mask.
/// The unit of data flow in the Vector Volcano execution model.
class Vector {
 public:
  /// Creates a vector with its own backing buffer.
  explicit Vector(TypeId type);

  Vector(const Vector&) = delete;
  Vector& operator=(const Vector&) = delete;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  TypeId type() const { return type_; }
  ValidityMask& validity() { return validity_; }
  const ValidityMask& validity() const { return validity_; }

  /// Raw typed data access.
  template <typename T>
  T* data() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data() const {
    return reinterpret_cast<const T*>(data_);
  }
  uint8_t* raw_data() { return data_; }
  const uint8_t* raw_data() const { return data_; }

  /// The string heap backing VARCHAR entries of this vector.
  ArenaAllocator& heap() { return buffer_->heap; }

  /// --- dictionary representation (VARCHAR only) -------------------------
  /// A dictionary vector stores uint32 codes in the data array plus a
  /// shared pointer to the distinct values; consumers either gather via
  /// StringAt/Flatten or operate on the codes directly (hash kernels).
  bool is_dictionary() const { return dict_ != nullptr; }
  const VectorDictionary& dictionary() const { return *dict_; }
  const std::shared_ptr<const VectorDictionary>& dictionary_ptr() const {
    return dict_;
  }
  /// Rows [0, dictionary_rows()) hold valid codes; beyond is garbage.
  idx_t dictionary_rows() const { return dict_rows_; }
  /// Marks this vector dictionary-compressed; the caller then writes
  /// `rows` uint32 codes into data<uint32_t>().
  void SetDictionary(std::shared_ptr<const VectorDictionary> dict,
                     idx_t rows) {
    dict_ = std::move(dict);
    dict_rows_ = rows;
  }
  /// Decodes the codes into plain StringRefs (zero-copy: the refs point
  /// into the dictionary arena, which the buffer then keeps alive).
  void Flatten();

  /// The string at `row` regardless of representation. Only meaningful
  /// for VARCHAR vectors on rows whose validity bit is set.
  StringRef StringAt(idx_t row) const {
    return dict_ ? dict_->entries[data<uint32_t>()[row]]
                 : data<StringRef>()[row];
  }

  /// Copies a string into this vector's heap and stores the reference.
  void SetString(idx_t row, const char* str, uint32_t len) {
    if (dict_) Flatten();
    data<StringRef>()[row] = buffer_->heap.AddString(str, len);
  }
  void SetString(idx_t row, const std::string& str) {
    SetString(row, str.data(), static_cast<uint32_t>(str.size()));
  }

  /// Boxed single-value access; slow path for boundaries and tests.
  void SetValue(idx_t row, const Value& value);
  Value GetValue(idx_t row) const;

  /// Makes this vector share `other`'s buffer (zero-copy alias).
  void Reference(const Vector& other);

  /// Copies `count` rows from `other` starting at the given offsets.
  /// String payloads are re-anchored into this vector's heap.
  void CopyFrom(const Vector& other, idx_t count, idx_t source_offset = 0,
                idx_t target_offset = 0);

  /// Copies selected rows `sel[0..count)` of `other` into rows 0..count.
  void CopySelection(const Vector& other, const uint32_t* sel, idx_t count,
                     idx_t target_offset = 0);

  /// Resets validity and (for VARCHAR) the heap for reuse.
  void Reset();

 private:
  TypeId type_;
  uint8_t* data_;  // points into buffer_->data
  ValidityMask validity_;
  std::shared_ptr<VectorBuffer> buffer_;
  /// Set while the data array holds dictionary codes instead of values.
  std::shared_ptr<const VectorDictionary> dict_;
  idx_t dict_rows_ = 0;
};

}  // namespace mallard

#endif  // MALLARD_VECTOR_VECTOR_H_
