#ifndef MALLARD_VECTOR_VECTOR_H_
#define MALLARD_VECTOR_VECTOR_H_

#include <memory>
#include <string>

#include "mallard/common/arena.h"
#include "mallard/common/constants.h"
#include "mallard/common/types.h"
#include "mallard/common/value.h"
#include "mallard/vector/validity_mask.h"

namespace mallard {

/// Owning backing store for one vector: a fixed-size data array plus a
/// string heap for VARCHAR payloads. Shared between vectors via
/// shared_ptr so that chunks can be handed over to client code and
/// projections can alias columns without copying (paper section 5).
struct VectorBuffer {
  explicit VectorBuffer(idx_t bytes)
      : data(std::make_unique<uint8_t[]>(bytes)) {}
  std::unique_ptr<uint8_t[]> data;
  ArenaAllocator heap;  // VARCHAR payload storage
};

/// A typed column slice of up to kVectorSize values with a validity mask.
/// The unit of data flow in the Vector Volcano execution model.
class Vector {
 public:
  /// Creates a vector with its own backing buffer.
  explicit Vector(TypeId type);

  Vector(const Vector&) = delete;
  Vector& operator=(const Vector&) = delete;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  TypeId type() const { return type_; }
  ValidityMask& validity() { return validity_; }
  const ValidityMask& validity() const { return validity_; }

  /// Raw typed data access.
  template <typename T>
  T* data() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data() const {
    return reinterpret_cast<const T*>(data_);
  }
  uint8_t* raw_data() { return data_; }
  const uint8_t* raw_data() const { return data_; }

  /// The string heap backing VARCHAR entries of this vector.
  ArenaAllocator& heap() { return buffer_->heap; }

  /// Copies a string into this vector's heap and stores the reference.
  void SetString(idx_t row, const char* str, uint32_t len) {
    data<StringRef>()[row] = buffer_->heap.AddString(str, len);
  }
  void SetString(idx_t row, const std::string& str) {
    SetString(row, str.data(), static_cast<uint32_t>(str.size()));
  }

  /// Boxed single-value access; slow path for boundaries and tests.
  void SetValue(idx_t row, const Value& value);
  Value GetValue(idx_t row) const;

  /// Makes this vector share `other`'s buffer (zero-copy alias).
  void Reference(const Vector& other);

  /// Copies `count` rows from `other` starting at the given offsets.
  /// String payloads are re-anchored into this vector's heap.
  void CopyFrom(const Vector& other, idx_t count, idx_t source_offset = 0,
                idx_t target_offset = 0);

  /// Copies selected rows `sel[0..count)` of `other` into rows 0..count.
  void CopySelection(const Vector& other, const uint32_t* sel, idx_t count,
                     idx_t target_offset = 0);

  /// Resets validity and (for VARCHAR) the heap for reuse.
  void Reset();

 private:
  TypeId type_;
  uint8_t* data_;  // points into buffer_->data
  ValidityMask validity_;
  std::shared_ptr<VectorBuffer> buffer_;
};

}  // namespace mallard

#endif  // MALLARD_VECTOR_VECTOR_H_
