#ifndef MALLARD_VECTOR_VALIDITY_MASK_H_
#define MALLARD_VECTOR_VALIDITY_MASK_H_

#include <array>
#include <cstdint>

#include "mallard/common/constants.h"

namespace mallard {

/// NULL bitmask over one vector of kVectorSize rows. Bit set = valid
/// (non-NULL). Starts in an "all valid" fast-path state; the bitmask is
/// only consulted after the first SetInvalid.
class ValidityMask {
 public:
  static constexpr idx_t kWords = kVectorSize / 64;

  ValidityMask() { SetAllValid(); }

  bool AllValid() const { return all_valid_; }

  bool RowIsValid(idx_t row) const {
    if (all_valid_) return true;
    return (mask_[row / 64] >> (row % 64)) & 1;
  }

  void SetValid(idx_t row) {
    if (all_valid_) return;
    mask_[row / 64] |= uint64_t(1) << (row % 64);
  }

  void SetInvalid(idx_t row) {
    if (all_valid_) {
      mask_.fill(~uint64_t(0));
      all_valid_ = false;
    }
    mask_[row / 64] &= ~(uint64_t(1) << (row % 64));
  }

  void Set(idx_t row, bool valid) {
    if (valid) {
      SetValid(row);
    } else {
      SetInvalid(row);
    }
  }

  void SetAllValid() {
    all_valid_ = true;
    mask_.fill(~uint64_t(0));
  }

  /// Number of NULL rows among the first `count` rows.
  idx_t CountInvalid(idx_t count) const {
    if (all_valid_) return 0;
    idx_t invalid = 0;
    for (idx_t i = 0; i < count; i++) {
      if (!RowIsValid(i)) invalid++;
    }
    return invalid;
  }

  /// Copies validity of `count` rows from `other`, with source offset.
  void CopyFrom(const ValidityMask& other, idx_t count,
                idx_t source_offset = 0, idx_t target_offset = 0) {
    if (other.all_valid_ && target_offset == 0) {
      // Common fast path in appends to a fresh mask.
      if (all_valid_) return;
    }
    for (idx_t i = 0; i < count; i++) {
      Set(target_offset + i, other.RowIsValid(source_offset + i));
    }
  }

  /// Raw word access (used by the binary network protocol).
  const uint64_t* Words() const { return mask_.data(); }
  uint64_t* MutableWords() {
    if (all_valid_) {
      mask_.fill(~uint64_t(0));
      all_valid_ = false;
    }
    return mask_.data();
  }

 private:
  bool all_valid_;
  std::array<uint64_t, kWords> mask_;
};

}  // namespace mallard

#endif  // MALLARD_VECTOR_VALIDITY_MASK_H_
