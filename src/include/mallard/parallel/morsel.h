/**
 * @file morsel.h
 * @brief Morsel-driven parallel table scans (Leis et al., SIGMOD 2014).
 *
 * A morsel is one row group (kRowGroupSize rows) of a DataTable. A
 * TableMorselSource hands out morsels to workers on demand, so fast
 * workers automatically take more of the table (work stealing by
 * construction) and the governor's reactive thread budget is re-checked
 * at every morsel boundary — a worker whose index no longer fits the
 * budget simply stops asking and exits.
 */
#ifndef MALLARD_PARALLEL_MORSEL_H_
#define MALLARD_PARALLEL_MORSEL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "mallard/execution/physical_operator.h"
#include "mallard/storage/table/data_table.h"

namespace mallard {

class ResourceGovernor;

/// Hands out row-group morsels of one table scan to a set of workers.
/// Shared by every per-worker PhysicalMorselScan clone of the scan.
class TableMorselSource {
 public:
  /// `row_group_count` is a snapshot taken when the pipeline launches;
  /// row groups appended later hold rows that are invisible to the
  /// running transaction's snapshot anyway. `thread_limit` > 0 (the
  /// connection's PRAGMA threads override) pins the budget; otherwise
  /// the governor's reactive budget — further clamped to the query's
  /// fair share when `scheduler`+`ticket` are given — is consulted live,
  /// so a running scan sheds workers the moment a second query arrives.
  TableMorselSource(idx_t row_group_count, const ResourceGovernor* governor,
                    int thread_limit, const TaskScheduler* scheduler = nullptr,
                    const QueryTicket* ticket = nullptr);

  /// Claims the next morsel for `worker`. Returns false when the table
  /// is exhausted — or, for workers other than 0, when the thread
  /// budget has dropped to `worker` or below (the drain point of
  /// reactive governing; worker 0 never drains, so the query always
  /// makes progress).
  bool Next(int worker, idx_t* row_group);

  idx_t row_group_count() const { return row_group_count_; }

  /// Thread budget at this instant (PRAGMA override or governor).
  int EffectiveBudget() const;

  /// Morsels handed to `worker` so far (tests observe draining).
  idx_t MorselsClaimed(int worker) const {
    return claimed_[worker < kMaxWorkers ? worker : 0].load();
  }

  static constexpr int kMaxWorkers = 64;

 private:
  std::atomic<idx_t> next_{0};
  idx_t row_group_count_;
  const ResourceGovernor* governor_;
  int thread_limit_;
  const TaskScheduler* scheduler_;
  const QueryTicket* ticket_;
  std::atomic<idx_t> claimed_[kMaxWorkers] = {};
};

/// Per-worker leaf of a parallel pipeline: scans whatever morsels the
/// shared source hands it, with the same projection/filter behavior as
/// the PhysicalTableScan it was cloned from.
class PhysicalMorselScan final : public PhysicalOperator {
 public:
  PhysicalMorselScan(std::shared_ptr<TableMorselSource> source, int worker,
                     const DataTable* table, std::vector<idx_t> column_ids,
                     std::vector<TableFilter> filters,
                     std::vector<TypeId> types);
  Status GetChunk(ExecutionContext* context, DataChunk* out) override;
  std::string name() const override;

 private:
  std::shared_ptr<TableMorselSource> source_;
  int worker_;
  const DataTable* table_;
  std::vector<idx_t> column_ids_;
  std::vector<TableFilter> filters_;
  TableScanState state_;
  bool morsel_active_ = false;
};

namespace parallel {

/// A planned parallel scan of the table under `subtree`: how many
/// workers to launch and the morsel source they share. `threads == 1`
/// (and a null source) means the subtree has no parallel implementation,
/// no scheduler is attached, or the table is too small to split.
struct ParallelRun {
  int threads = 1;
  std::shared_ptr<TableMorselSource> source;
};

/// Resolves how wide a parallel phase launched right now may fan out:
/// the connection's PRAGMA threads override, or the governor's effective
/// budget clamped to the query's fair share of the pool (when the
/// context carries a QueryTicket), clamped to
/// TableMorselSource::kMaxWorkers and to `item_count` (morsels,
/// partitions, ...), floored at 1. The single definition of the
/// launch-width contract — every parallel phase (scan pipelines,
/// partition-task fan-out) resolves through it.
int ResolveLaunchWidth(const ExecutionContext* context, idx_t item_count);

/// Decides the degree of parallelism for sinking `subtree`:
/// ResolveLaunchWidth over the number of row-group morsels the leaf
/// table offers.
ParallelRun PlanParallelScan(ExecutionContext* context,
                             const PhysicalOperator* subtree);

/// Builds one per-worker clone of `subtree` per planned thread, each
/// pulling from run.source. Returns an empty vector if any operator in
/// the subtree refuses to clone (caller falls back to serial).
std::vector<std::unique_ptr<PhysicalOperator>> CloneWorkers(
    const ParallelRun& run, const PhysicalOperator* subtree);

/// A resumable morsel pipeline: Plan() decides parallelism and builds
/// the per-worker subtree clones once; each RunPass() then fans the
/// workers out over whatever morsels remain unclaimed (the shared
/// source's atomic counter persists across passes). Sinks that must
/// bound how much they materialize per fan-out — the parallel probe's
/// result buffers — run several passes, draining between them;
/// single-shot sinks use RunMorselPipeline below.
class MorselPipeline {
 public:
  /// Plans the scan and clones the subtree per worker. Returns false
  /// (and stays unplanned) when the subtree stays serial.
  bool Plan(ExecutionContext* context, const PhysicalOperator* subtree);

  /// Launches one pass: `worker(w, clone_w)` for every planned worker.
  /// NOTE: the scheduler may clamp a governed pass below the planned
  /// width, in which case worker indices at and above the clamp are
  /// never invoked in that pass — a multi-pass sink whose per-worker
  /// state must make progress regardless should claim work items from
  /// a shared queue inside `worker` (keyed by clone index via clone()),
  /// not rely on its own index being launched.
  Status RunPass(
      ExecutionContext* context,
      const std::function<Status(int worker, PhysicalOperator* scan)>& worker);

  int threads() const { return run_.threads; }
  /// Worker w's subtree clone — for passes that drive another worker's
  /// pending state after a governed clamp (see RunPass note).
  PhysicalOperator* clone(int w) { return clones_[w].get(); }

 private:
  ParallelRun run_;
  std::vector<std::unique_ptr<PhysicalOperator>> clones_;
};

/// The shared launch protocol of every parallel sink: plan the scan,
/// clone the subtree per worker, and run `worker(w, clone_w)` on the
/// scheduler (width pinned when the connection's PRAGMA threads
/// override is set, governed otherwise). `prepare(workers)` runs once
/// on the calling thread before fan-out — size per-worker state and
/// copy expressions there. Sets `*ran` = false (without calling
/// anything) when the subtree stays serial; the caller then runs its
/// serial loop. Workers the scheduler clamps away below the planned
/// width simply never run — their morsels are claimed by the others,
/// so per-worker results must tolerate untouched slots.
Status RunMorselPipeline(
    ExecutionContext* context, const PhysicalOperator* subtree, bool* ran,
    const std::function<void(idx_t workers)>& prepare,
    const std::function<Status(int worker, PhysicalOperator* scan)>& worker);

/// Runs `task(i)` for i in [0, task_count) across the worker pool, each
/// task claimed from a shared atomic counter (the non-scan sibling of a
/// morsel source — used for e.g. the per-partition merges of
/// radix-partitioned aggregation). Honors the same budget contract as
/// morsel scans: launch width is the PRAGMA override or the governor's
/// budget, the budget is re-read at every task boundary so surplus
/// workers drain mid-merge, and worker 0 is exempt so the work always
/// completes. Runs inline on the calling thread when the context has no
/// scheduler or the budget is 1.
Status RunPartitionedTasks(ExecutionContext* context, idx_t task_count,
                           const std::function<Status(idx_t task)>& task);

}  // namespace parallel

}  // namespace mallard

#endif  // MALLARD_PARALLEL_MORSEL_H_
