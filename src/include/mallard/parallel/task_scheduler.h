/**
 * @file task_scheduler.h
 * @brief TaskScheduler: the per-Database worker pool behind morsel-driven
 *        parallel execution.
 *
 * Sizing: the pool never holds more worker threads than the governor's
 * thread cap demanded so far, and threads are spawned lazily on the first
 * parallel Run — a Database that only ever runs serial queries never
 * creates a single thread (the embedded engine stays invisible to hosts
 * that don't need parallelism).
 * Thread safety: Run may be called concurrently from multiple
 * connections; jobs share one queue and one pool.
 */
#ifndef MALLARD_PARALLEL_TASK_SCHEDULER_H_
#define MALLARD_PARALLEL_TASK_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "mallard/common/status.h"

namespace mallard {

class ResourceGovernor;

/// Fork-join scheduler for morsel-driven pipelines. A parallel operator
/// calls Run(n, task); the calling thread becomes worker 0 and up to
/// n-1 pool threads run the same task with distinct worker indexes. The
/// task typically loops pulling morsels from a shared TableMorselSource
/// until it is exhausted (or the source drains the worker because the
/// governor's thread budget dropped — see morsel.h).
class TaskScheduler {
 public:
  /// `governor` (may be null in tests) caps every Run at its current
  /// EffectiveThreadBudget.
  explicit TaskScheduler(ResourceGovernor* governor);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Runs `task(worker)` for worker in [0, n), blocking until every
  /// worker returns; n = min(requested_threads, governor budget at
  /// launch) when `governed`, or exactly requested_threads when the
  /// caller pinned the width (PRAGMA threads override). Worker 0 runs
  /// on the calling thread, so Run(1, task) degenerates to a plain call
  /// with no synchronization. Returns the first non-OK status any
  /// worker produced.
  ///
  /// Tasks must not call Run themselves (no nested parallelism): a task
  /// blocking in an inner Run could deadlock the pool.
  Status Run(int requested_threads, const std::function<Status(int)>& task,
             bool governed = true);

  /// Worker threads currently alive in the pool (tests/introspection).
  int pool_size() const;

 private:
  struct RunState {
    std::mutex mutex;
    std::condition_variable done;
    int remaining = 0;
    Status first_error;
  };

  /// Grows the pool to at least `count` threads. Caller holds mutex_.
  void EnsureWorkers(int count);
  void WorkerLoop();

  ResourceGovernor* governor_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace mallard

#endif  // MALLARD_PARALLEL_TASK_SCHEDULER_H_
