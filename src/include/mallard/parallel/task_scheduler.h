/**
 * @file task_scheduler.h
 * @brief TaskScheduler: the shared per-Database worker pool behind
 *        morsel-driven parallel execution — multiplexed across every
 *        concurrently running query.
 *
 * Sizing: the pool never holds more worker threads than the governor's
 * thread cap demanded so far, and threads are spawned lazily on the first
 * parallel Run — a Database that only ever runs serial queries never
 * creates a single thread (the embedded engine stays invisible to hosts
 * that don't need parallelism).
 *
 * Fairness: each executing query registers a QueryTicket (session id +
 * priority weight). Pool jobs are queued per session and workers pick
 * round-robin across sessions, so a long scan that enqueued fifty jobs
 * cannot starve the point query that enqueued one. FairThreadShare()
 * divides the governor's thread budget across active queries by weight;
 * morsel sources re-read it at every morsel boundary, so a running query
 * sheds surplus workers the moment a second query arrives.
 *
 * Thread safety: Run may be called concurrently from multiple
 * connections; jobs share one pool. Tickets are registered/dropped from
 * any thread.
 */
#ifndef MALLARD_PARALLEL_TASK_SCHEDULER_H_
#define MALLARD_PARALLEL_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mallard/common/status.h"

namespace mallard {

class ResourceGovernor;
class TaskScheduler;

/// RAII registration of one executing query with the scheduler: while
/// alive, the query counts toward the fair-share divisor and its pool
/// jobs are queued under `session_id`. Destroying it (query finished,
/// success or error) returns its thread share to the others.
class QueryTicket {
 public:
  ~QueryTicket();

  QueryTicket(const QueryTicket&) = delete;
  QueryTicket& operator=(const QueryTicket&) = delete;

  uint64_t session_id() const { return session_id_; }
  /// Priority weight (PRAGMA priority: low=1, normal=2, high=4).
  int weight() const { return weight_; }

 private:
  friend class TaskScheduler;
  QueryTicket(TaskScheduler* scheduler, uint64_t session_id, int weight)
      : scheduler_(scheduler), session_id_(session_id), weight_(weight) {}

  TaskScheduler* scheduler_;
  uint64_t session_id_;
  int weight_;
};

/// Counters exposed via PRAGMA scheduler_stats.
struct SchedulerStats {
  uint64_t tasks_executed = 0;  ///< pool jobs run to completion
  uint64_t runs = 0;            ///< fork-join Run() invocations
  int active_queries = 0;       ///< live QueryTickets right now
  int pool_size = 0;            ///< worker threads alive
};

/// Fork-join scheduler for morsel-driven pipelines. A parallel operator
/// calls Run(n, task); the calling thread becomes worker 0 and up to
/// n-1 pool threads run the same task with distinct worker indexes. The
/// task typically loops pulling morsels from a shared TableMorselSource
/// until it is exhausted (or the source drains the worker because the
/// governor's thread budget dropped — see morsel.h).
class TaskScheduler {
 public:
  /// `governor` (may be null in tests) caps every Run at its current
  /// EffectiveThreadBudget.
  explicit TaskScheduler(ResourceGovernor* governor);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Registers one executing query for fair scheduling. The ticket must
  /// not outlive the scheduler (Database owns both; Connection holds the
  /// ticket only for the duration of a statement / open stream).
  std::unique_ptr<QueryTicket> RegisterQuery(uint64_t session_id, int weight);

  /// Worker threads this query may use right now: the governor budget
  /// divided across active queries proportionally to ticket weight,
  /// floored at 1 (every query always makes progress) and capped at the
  /// full budget. With no ticket, or when this is the only active query,
  /// the full budget. Morsel sources re-read this at every morsel
  /// boundary — it is the drain point of inter-query fairness.
  int FairThreadShare(const QueryTicket* ticket) const;

  /// Runs `task(worker)` for worker in [0, n), blocking until every
  /// worker returns; n = min(requested_threads, governor budget at
  /// launch, fair share of `ticket` if given) when `governed`, or
  /// exactly requested_threads when the caller pinned the width (PRAGMA
  /// threads override). Worker 0 runs on the calling thread, so
  /// Run(1, task) degenerates to a plain call with no synchronization.
  /// Pool jobs are tagged with the ticket's session; workers drain
  /// sessions round-robin. Returns the first non-OK status any worker
  /// produced.
  ///
  /// Tasks must not call Run themselves (no nested parallelism): a task
  /// blocking in an inner Run could deadlock the pool.
  Status Run(int requested_threads, const std::function<Status(int)>& task,
             bool governed = true, const QueryTicket* ticket = nullptr);

  /// Worker threads currently alive in the pool (tests/introspection).
  int pool_size() const;

  /// Live QueryTickets right now (tests/PRAGMA scheduler_stats).
  int active_queries() const { return active_queries_.load(); }

  SchedulerStats GetStats() const;

 private:
  friend class QueryTicket;

  struct RunState {
    std::mutex mutex;
    std::condition_variable done;
    int remaining = 0;
    Status first_error;
  };

  void Unregister(const QueryTicket* ticket);

  /// Grows the pool to at least `count` threads. Caller holds mutex_.
  void EnsureWorkers(int count);
  void WorkerLoop();
  /// Pops the next job round-robin across sessions. Caller holds mutex_;
  /// returns false when no job is queued.
  bool PopJob(std::function<void()>* job);

  ResourceGovernor* governor_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::vector<std::thread> workers_;
  /// Per-session job queues (FIFO within a session). An ordered map so
  /// round-robin "next session after the cursor" is a lower_bound.
  std::map<uint64_t, std::deque<std::function<void()>>> queues_;
  size_t queued_jobs_ = 0;
  uint64_t rr_cursor_ = 0;  ///< session served last; next pick is after it
  bool shutdown_ = false;

  std::atomic<int> active_queries_{0};
  std::atomic<int> active_weight_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> runs_{0};
};

}  // namespace mallard

#endif  // MALLARD_PARALLEL_TASK_SCHEDULER_H_
