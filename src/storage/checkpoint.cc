#include "mallard/storage/checkpoint.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "mallard/common/checksum.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/resilience/retry_policy.h"
#include "mallard/storage/meta_block.h"
#include "mallard/storage/table/column_segment.h"
#include "mallard/storage/table/data_table.h"
#include "mallard/transaction/transaction_manager.h"

namespace mallard {

namespace {

/// Streams one table's rows — as visible to `snapshot` — into per-group
/// block chains plus a directory entry in the catalog chain. Each row
/// group's payload ([count u64][ncols u32][per-column segment], the
/// RowGroup::Deserialize layout) lives in its own chain so corruption of
/// a data block quarantines exactly one group on reload instead of
/// sinking the whole catalog load. The directory records, per group:
///   [rows u64][payload_len u64][payload_crc u32][head i64]
///   [n_blocks u32][block ids i64...]
/// The CRC spans the reassembled payload end to end — it catches damage
/// the per-block CRCs cannot, such as a stale-but-valid block landing in
/// the chain. Block ids of all group chains are added to `group_blocks`
/// so the checkpoint's live set covers them.
Status CheckpointTable(const DataTable& table, const Transaction& snapshot,
                       const ResourceGovernor* governor, BlockManager* blocks,
                       MetaBlockStreamWriter* dir,
                       std::set<block_id_t>* group_blocks) {
  // Refuse to rewrite a table that still carries quarantined groups: the
  // new image could no longer represent their rows, so completing the
  // checkpoint would convert detected corruption into silent data loss.
  MALLARD_RETURN_NOT_OK(table.FirstQuarantineError());

  BinaryWriter& w = dir->writer();
  std::vector<TypeId> types = table.ColumnTypes();
  idx_t visible = table.VisibleRowCount(snapshot);

  // Serialized-group granularity: the default row group size, shrunk
  // under memory pressure so the staging segments (the only per-table
  // buffering besides one group payload) respect the governor's budget.
  // ~16 bytes/value is a deliberately pessimistic estimate; staging gets
  // at most a quarter of the budget.
  idx_t group_rows = kRowGroupSize;
  if (governor) {
    uint64_t bytes_per_row =
        std::max<uint64_t>(1, types.size() * 16);
    uint64_t budget_rows =
        governor->EffectiveMemoryBudget() / 4 / bytes_per_row;
    group_rows = static_cast<idx_t>(std::min<uint64_t>(
        kRowGroupSize, std::max<uint64_t>(kVectorSize, budget_rows)));
  }
  uint64_t num_groups =
      visible == 0 ? 0 : (visible + group_rows - 1) / group_rows;
  w.WriteU64(num_groups);

  std::vector<idx_t> column_ids(types.size());
  std::iota(column_ids.begin(), column_ids.end(), idx_t(0));
  TableScanState state;
  table.InitializeScan(&state, column_ids);
  DataChunk chunk;
  chunk.Initialize(types);

  std::vector<std::unique_ptr<ColumnSegment>> staged;
  idx_t staged_count = 0;
  auto start_group = [&]() {
    staged.clear();
    for (TypeId type : types) {
      staged.push_back(std::make_unique<ColumnSegment>(type));
    }
    staged_count = 0;
  };
  uint64_t emitted = 0;
  auto emit_group = [&]() -> Status {
    // Serialize the group payload into its own chain.
    MetaBlockWriter group(blocks);
    BinaryWriter& gw = group.writer();
    gw.WriteU64(staged_count);
    gw.WriteU32(static_cast<uint32_t>(types.size()));
    for (idx_t c = 0; c < staged.size(); c++) {
      // Pick a per-segment encoding for the compacted group — this is
      // where checkpointed data earns its dictionary/FOR form on disk.
      staged[c]->FinalizeEncoding(staged_count);
      staged[c]->Serialize(&gw, staged_count);
    }
    uint64_t payload_len = gw.data().size();
    uint32_t payload_crc = Crc32c(gw.data().data(), payload_len);
    MALLARD_ASSIGN_OR_RETURN(block_id_t head, group.Flush());
    // Directory entry for the group.
    w.WriteU64(staged_count);
    w.WriteU64(payload_len);
    w.WriteU32(payload_crc);
    w.WriteU64(static_cast<uint64_t>(head));
    w.WriteU32(static_cast<uint32_t>(group.blocks_used().size()));
    for (block_id_t id : group.blocks_used()) {
      w.WriteU64(static_cast<uint64_t>(id));
      group_blocks->insert(id);
    }
    emitted++;
    start_group();
    // Stream completed directory blocks out now, keeping memory bounded.
    return dir->FlushFull();
  };

  start_group();
  while (table.Scan(snapshot, &state, &chunk)) {
    idx_t offset = 0;
    while (offset < chunk.size()) {
      idx_t n = std::min<idx_t>(group_rows - staged_count,
                                chunk.size() - offset);
      for (idx_t c = 0; c < staged.size(); c++) {
        staged[c]->Append(chunk.column(c), offset, staged_count, n);
      }
      staged_count += n;
      offset += n;
      if (staged_count == group_rows) MALLARD_RETURN_NOT_OK(emit_group());
    }
  }
  MALLARD_RETURN_NOT_OK(std::move(state.error));
  if (staged_count > 0) MALLARD_RETURN_NOT_OK(emit_group());
  if (emitted != num_groups) {
    // The visible set moved under us — only possible if the caller's
    // CommitBlock contract was violated. Abort; the old root is intact.
    return Status::Internal("checkpoint scan drifted from visible count in '" +
                            table.name() + "'");
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(Catalog* catalog, BlockManager* blocks,
                       TransactionManager* txns, const Transaction& snapshot,
                       const ResourceGovernor* governor) {
  if (txns == nullptr || !txns->CommitsBlocked()) {
    return Status::Internal(
        "WriteCheckpoint requires the commit gate: hold a "
        "TransactionManager::CommitBlock for the duration");
  }
  MetaBlockStreamWriter meta(blocks);
  BinaryWriter& w = meta.writer();
  std::set<block_id_t> group_blocks;
  std::vector<std::string> table_names = catalog->TableNames();
  w.WriteU32(static_cast<uint32_t>(table_names.size()));
  for (const auto& name : table_names) {
    MALLARD_ASSIGN_OR_RETURN(DataTable * table, catalog->GetTable(name));
    w.WriteString(name);
    w.WriteU32(static_cast<uint32_t>(table->columns().size()));
    for (const auto& col : table->columns()) {
      w.WriteString(col.name);
      w.WriteU8(static_cast<uint8_t>(col.type));
    }
    MALLARD_RETURN_NOT_OK(CheckpointTable(*table, snapshot, governor, blocks,
                                          &meta, &group_blocks));
  }
  std::vector<std::string> view_names = catalog->ViewNames();
  w.WriteU32(static_cast<uint32_t>(view_names.size()));
  for (const auto& name : view_names) {
    MALLARD_ASSIGN_OR_RETURN(const ViewCatalogEntry* view,
                             catalog->GetView(name));
    w.WriteString(view->name);
    w.WriteString(view->sql);
    w.WriteU32(static_cast<uint32_t>(view->column_aliases.size()));
    for (const auto& a : view->column_aliases) w.WriteString(a);
  }
  MALLARD_ASSIGN_OR_RETURN(block_id_t head, meta.Finish());
  // Root swap: fsync the new block tree, then flip the header. Only
  // after this returns may the caller truncate the WAL.
  MALLARD_RETURN_NOT_OK(blocks->WriteHeader(head));
  // Live set: the directory chain plus every row-group chain.
  std::set<block_id_t> live = meta.blocks_used();
  live.insert(group_blocks.begin(), group_blocks.end());
  blocks->SetLiveBlocks(live);
  return Status::OK();
}

Status LoadCheckpoint(Catalog* catalog, BlockManager* blocks) {
  block_id_t head = blocks->header().meta_block;
  if (head == kInvalidBlock) return Status::OK();  // fresh database
  MetaBlockReader meta(blocks);
  MALLARD_RETURN_NOT_OK(meta.Load(head));
  BinaryReader& r = meta.reader();
  std::set<block_id_t> live_blocks = meta.blocks_visited();
  uint32_t n_tables;
  MALLARD_RETURN_NOT_OK(r.ReadU32(&n_tables));
  for (uint32_t t = 0; t < n_tables; t++) {
    std::string name;
    MALLARD_RETURN_NOT_OK(r.ReadString(&name));
    uint32_t n_cols;
    MALLARD_RETURN_NOT_OK(r.ReadU32(&n_cols));
    std::vector<ColumnDefinition> cols;
    for (uint32_t c = 0; c < n_cols; c++) {
      ColumnDefinition col;
      MALLARD_RETURN_NOT_OK(r.ReadString(&col.name));
      uint8_t type;
      MALLARD_RETURN_NOT_OK(r.ReadU8(&type));
      col.type = static_cast<TypeId>(type);
      cols.push_back(std::move(col));
    }
    MALLARD_RETURN_NOT_OK(catalog->CreateTable(name, std::move(cols)));
    MALLARD_ASSIGN_OR_RETURN(DataTable * table, catalog->GetTable(name));
    // Per-group directory entries; each group's payload sits in its own
    // block chain. A group that fails verification — block checksum,
    // payload length/CRC, or a deserializer invariant — is quarantined
    // in place rather than failing the open: the rest of the table stays
    // queryable and the damage is reported per object by
    // PRAGMA integrity_check. Plain I/O errors still fail the open (the
    // file may be fine; refusing is safer than quarantining good data).
    uint64_t num_groups;
    MALLARD_RETURN_NOT_OK(r.ReadU64(&num_groups));
    for (uint64_t g = 0; g < num_groups; g++) {
      uint64_t rows, payload_len, head_raw;
      uint32_t payload_crc, n_blocks;
      MALLARD_RETURN_NOT_OK(r.ReadU64(&rows));
      MALLARD_RETURN_NOT_OK(r.ReadU64(&payload_len));
      MALLARD_RETURN_NOT_OK(r.ReadU32(&payload_crc));
      MALLARD_RETURN_NOT_OK(r.ReadU64(&head_raw));
      MALLARD_RETURN_NOT_OK(r.ReadU32(&n_blocks));
      for (uint32_t b = 0; b < n_blocks; b++) {
        uint64_t id;
        MALLARD_RETURN_NOT_OK(r.ReadU64(&id));
        live_blocks.insert(static_cast<block_id_t>(id));
      }
      auto quarantine = [&](const Status& cause) {
        GlobalResilienceStats().quarantined_row_groups.fetch_add(1);
        table->LoadQuarantinedGroup(static_cast<idx_t>(rows),
                                    cause.ToString());
      };
      MetaBlockReader group(blocks);
      Status load = group.Load(static_cast<block_id_t>(head_raw));
      if (load.IsCorruption()) {
        quarantine(load);
        continue;
      }
      MALLARD_RETURN_NOT_OK(std::move(load));
      if (group.data().size() != payload_len ||
          Crc32c(group.data().data(), group.data().size()) != payload_crc) {
        quarantine(Status::Corruption(
            "row group payload failed end-to-end verification (" +
            std::to_string(group.data().size()) + " bytes read, " +
            std::to_string(payload_len) + " expected)"));
        continue;
      }
      Status applied =
          table->LoadCheckpointGroup(&group.reader(), static_cast<idx_t>(rows));
      if (applied.IsCorruption()) {
        quarantine(applied);
        continue;
      }
      MALLARD_RETURN_NOT_OK(std::move(applied));
    }
  }
  uint32_t n_views;
  MALLARD_RETURN_NOT_OK(r.ReadU32(&n_views));
  for (uint32_t v = 0; v < n_views; v++) {
    std::string name, sql;
    MALLARD_RETURN_NOT_OK(r.ReadString(&name));
    MALLARD_RETURN_NOT_OK(r.ReadString(&sql));
    uint32_t n_aliases;
    MALLARD_RETURN_NOT_OK(r.ReadU32(&n_aliases));
    std::vector<std::string> aliases(n_aliases);
    for (uint32_t a = 0; a < n_aliases; a++) {
      MALLARD_RETURN_NOT_OK(r.ReadString(&aliases[a]));
    }
    MALLARD_RETURN_NOT_OK(
        catalog->CreateView(name, sql, std::move(aliases), true));
  }
  // Everything outside the directory chain and the row-group chains is
  // reusable. Quarantined groups keep their blocks live so the scrubber
  // can still point at the damaged object.
  blocks->SetLiveBlocks(live_blocks);
  return Status::OK();
}

}  // namespace mallard
