#include "mallard/storage/checkpoint.h"

#include "mallard/storage/meta_block.h"

namespace mallard {

Status WriteCheckpoint(Catalog* catalog, BlockManager* blocks) {
  MetaBlockWriter meta(blocks);
  BinaryWriter& w = meta.writer();
  std::vector<std::string> table_names = catalog->TableNames();
  w.WriteU32(static_cast<uint32_t>(table_names.size()));
  for (const auto& name : table_names) {
    MALLARD_ASSIGN_OR_RETURN(DataTable * table, catalog->GetTable(name));
    w.WriteString(name);
    w.WriteU32(static_cast<uint32_t>(table->columns().size()));
    for (const auto& col : table->columns()) {
      w.WriteString(col.name);
      w.WriteU8(static_cast<uint8_t>(col.type));
    }
    table->Serialize(&w);
  }
  std::vector<std::string> view_names = catalog->ViewNames();
  w.WriteU32(static_cast<uint32_t>(view_names.size()));
  for (const auto& name : view_names) {
    MALLARD_ASSIGN_OR_RETURN(const ViewCatalogEntry* view,
                             catalog->GetView(name));
    w.WriteString(view->name);
    w.WriteString(view->sql);
    w.WriteU32(static_cast<uint32_t>(view->column_aliases.size()));
    for (const auto& a : view->column_aliases) w.WriteString(a);
  }
  MALLARD_ASSIGN_OR_RETURN(block_id_t head, meta.Flush());
  MALLARD_RETURN_NOT_OK(blocks->WriteHeader(head));
  blocks->SetLiveBlocks(meta.blocks_used());
  return Status::OK();
}

Status LoadCheckpoint(Catalog* catalog, BlockManager* blocks) {
  block_id_t head = blocks->header().meta_block;
  if (head == kInvalidBlock) return Status::OK();  // fresh database
  MetaBlockReader meta(blocks);
  MALLARD_RETURN_NOT_OK(meta.Load(head));
  BinaryReader& r = meta.reader();
  uint32_t n_tables;
  MALLARD_RETURN_NOT_OK(r.ReadU32(&n_tables));
  for (uint32_t t = 0; t < n_tables; t++) {
    std::string name;
    MALLARD_RETURN_NOT_OK(r.ReadString(&name));
    uint32_t n_cols;
    MALLARD_RETURN_NOT_OK(r.ReadU32(&n_cols));
    std::vector<ColumnDefinition> cols;
    for (uint32_t c = 0; c < n_cols; c++) {
      ColumnDefinition col;
      MALLARD_RETURN_NOT_OK(r.ReadString(&col.name));
      uint8_t type;
      MALLARD_RETURN_NOT_OK(r.ReadU8(&type));
      col.type = static_cast<TypeId>(type);
      cols.push_back(std::move(col));
    }
    MALLARD_RETURN_NOT_OK(catalog->CreateTable(name, std::move(cols)));
    MALLARD_ASSIGN_OR_RETURN(DataTable * table, catalog->GetTable(name));
    MALLARD_RETURN_NOT_OK(table->DeserializeData(&r));
  }
  uint32_t n_views;
  MALLARD_RETURN_NOT_OK(r.ReadU32(&n_views));
  for (uint32_t v = 0; v < n_views; v++) {
    std::string name, sql;
    MALLARD_RETURN_NOT_OK(r.ReadString(&name));
    MALLARD_RETURN_NOT_OK(r.ReadString(&sql));
    uint32_t n_aliases;
    MALLARD_RETURN_NOT_OK(r.ReadU32(&n_aliases));
    std::vector<std::string> aliases(n_aliases);
    for (uint32_t a = 0; a < n_aliases; a++) {
      MALLARD_RETURN_NOT_OK(r.ReadString(&aliases[a]));
    }
    MALLARD_RETURN_NOT_OK(
        catalog->CreateView(name, sql, std::move(aliases), true));
  }
  // Everything not part of the loaded meta chain is reusable.
  blocks->SetLiveBlocks(meta.blocks_visited());
  return Status::OK();
}

}  // namespace mallard
