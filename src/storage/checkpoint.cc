#include "mallard/storage/checkpoint.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "mallard/governor/resource_governor.h"
#include "mallard/storage/meta_block.h"
#include "mallard/storage/table/column_segment.h"
#include "mallard/storage/table/data_table.h"
#include "mallard/transaction/transaction_manager.h"

namespace mallard {

namespace {

/// Streams one table's rows — as visible to `snapshot` — into the meta
/// chain as re-compacted serialized row groups. Layout matches
/// DataTable::DeserializeData: [num_groups u64] then per group
/// [count u64][ncols u32][per-column segment].
Status CheckpointTable(const DataTable& table, const Transaction& snapshot,
                       const ResourceGovernor* governor,
                       MetaBlockStreamWriter* meta) {
  BinaryWriter& w = meta->writer();
  std::vector<TypeId> types = table.ColumnTypes();
  idx_t visible = table.VisibleRowCount(snapshot);

  // Serialized-group granularity: the default row group size, shrunk
  // under memory pressure so the staging segments (the only per-table
  // buffering besides one meta block) respect the governor's budget.
  // ~16 bytes/value is a deliberately pessimistic estimate; staging gets
  // at most a quarter of the budget.
  idx_t group_rows = kRowGroupSize;
  if (governor) {
    uint64_t bytes_per_row =
        std::max<uint64_t>(1, types.size() * 16);
    uint64_t budget_rows =
        governor->EffectiveMemoryBudget() / 4 / bytes_per_row;
    group_rows = static_cast<idx_t>(std::min<uint64_t>(
        kRowGroupSize, std::max<uint64_t>(kVectorSize, budget_rows)));
  }
  uint64_t num_groups =
      visible == 0 ? 0 : (visible + group_rows - 1) / group_rows;
  w.WriteU64(num_groups);

  std::vector<idx_t> column_ids(types.size());
  std::iota(column_ids.begin(), column_ids.end(), idx_t(0));
  TableScanState state;
  table.InitializeScan(&state, column_ids);
  DataChunk chunk;
  chunk.Initialize(types);

  std::vector<std::unique_ptr<ColumnSegment>> staged;
  idx_t staged_count = 0;
  auto start_group = [&]() {
    staged.clear();
    for (TypeId type : types) {
      staged.push_back(std::make_unique<ColumnSegment>(type));
    }
    staged_count = 0;
  };
  uint64_t emitted = 0;
  auto emit_group = [&]() -> Status {
    w.WriteU64(staged_count);
    w.WriteU32(static_cast<uint32_t>(types.size()));
    for (idx_t c = 0; c < staged.size(); c++) {
      // Pick a per-segment encoding for the compacted group — this is
      // where checkpointed data earns its dictionary/FOR form on disk.
      staged[c]->FinalizeEncoding(staged_count);
      staged[c]->Serialize(&w, staged_count);
    }
    emitted++;
    start_group();
    // Stream completed meta blocks out now, keeping memory bounded.
    return meta->FlushFull();
  };

  start_group();
  while (table.Scan(snapshot, &state, &chunk)) {
    idx_t offset = 0;
    while (offset < chunk.size()) {
      idx_t n = std::min<idx_t>(group_rows - staged_count,
                                chunk.size() - offset);
      for (idx_t c = 0; c < staged.size(); c++) {
        staged[c]->Append(chunk.column(c), offset, staged_count, n);
      }
      staged_count += n;
      offset += n;
      if (staged_count == group_rows) MALLARD_RETURN_NOT_OK(emit_group());
    }
  }
  if (staged_count > 0) MALLARD_RETURN_NOT_OK(emit_group());
  if (emitted != num_groups) {
    // The visible set moved under us — only possible if the caller's
    // CommitBlock contract was violated. Abort; the old root is intact.
    return Status::Internal("checkpoint scan drifted from visible count in '" +
                            table.name() + "'");
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(Catalog* catalog, BlockManager* blocks,
                       TransactionManager* txns, const Transaction& snapshot,
                       const ResourceGovernor* governor) {
  if (txns == nullptr || !txns->CommitsBlocked()) {
    return Status::Internal(
        "WriteCheckpoint requires the commit gate: hold a "
        "TransactionManager::CommitBlock for the duration");
  }
  MetaBlockStreamWriter meta(blocks);
  BinaryWriter& w = meta.writer();
  std::vector<std::string> table_names = catalog->TableNames();
  w.WriteU32(static_cast<uint32_t>(table_names.size()));
  for (const auto& name : table_names) {
    MALLARD_ASSIGN_OR_RETURN(DataTable * table, catalog->GetTable(name));
    w.WriteString(name);
    w.WriteU32(static_cast<uint32_t>(table->columns().size()));
    for (const auto& col : table->columns()) {
      w.WriteString(col.name);
      w.WriteU8(static_cast<uint8_t>(col.type));
    }
    MALLARD_RETURN_NOT_OK(CheckpointTable(*table, snapshot, governor, &meta));
  }
  std::vector<std::string> view_names = catalog->ViewNames();
  w.WriteU32(static_cast<uint32_t>(view_names.size()));
  for (const auto& name : view_names) {
    MALLARD_ASSIGN_OR_RETURN(const ViewCatalogEntry* view,
                             catalog->GetView(name));
    w.WriteString(view->name);
    w.WriteString(view->sql);
    w.WriteU32(static_cast<uint32_t>(view->column_aliases.size()));
    for (const auto& a : view->column_aliases) w.WriteString(a);
  }
  MALLARD_ASSIGN_OR_RETURN(block_id_t head, meta.Finish());
  // Root swap: fsync the new block tree, then flip the header. Only
  // after this returns may the caller truncate the WAL.
  MALLARD_RETURN_NOT_OK(blocks->WriteHeader(head));
  blocks->SetLiveBlocks(meta.blocks_used());
  return Status::OK();
}

Status LoadCheckpoint(Catalog* catalog, BlockManager* blocks) {
  block_id_t head = blocks->header().meta_block;
  if (head == kInvalidBlock) return Status::OK();  // fresh database
  MetaBlockReader meta(blocks);
  MALLARD_RETURN_NOT_OK(meta.Load(head));
  BinaryReader& r = meta.reader();
  uint32_t n_tables;
  MALLARD_RETURN_NOT_OK(r.ReadU32(&n_tables));
  for (uint32_t t = 0; t < n_tables; t++) {
    std::string name;
    MALLARD_RETURN_NOT_OK(r.ReadString(&name));
    uint32_t n_cols;
    MALLARD_RETURN_NOT_OK(r.ReadU32(&n_cols));
    std::vector<ColumnDefinition> cols;
    for (uint32_t c = 0; c < n_cols; c++) {
      ColumnDefinition col;
      MALLARD_RETURN_NOT_OK(r.ReadString(&col.name));
      uint8_t type;
      MALLARD_RETURN_NOT_OK(r.ReadU8(&type));
      col.type = static_cast<TypeId>(type);
      cols.push_back(std::move(col));
    }
    MALLARD_RETURN_NOT_OK(catalog->CreateTable(name, std::move(cols)));
    MALLARD_ASSIGN_OR_RETURN(DataTable * table, catalog->GetTable(name));
    MALLARD_RETURN_NOT_OK(table->DeserializeData(&r));
  }
  uint32_t n_views;
  MALLARD_RETURN_NOT_OK(r.ReadU32(&n_views));
  for (uint32_t v = 0; v < n_views; v++) {
    std::string name, sql;
    MALLARD_RETURN_NOT_OK(r.ReadString(&name));
    MALLARD_RETURN_NOT_OK(r.ReadString(&sql));
    uint32_t n_aliases;
    MALLARD_RETURN_NOT_OK(r.ReadU32(&n_aliases));
    std::vector<std::string> aliases(n_aliases);
    for (uint32_t a = 0; a < n_aliases; a++) {
      MALLARD_RETURN_NOT_OK(r.ReadString(&aliases[a]));
    }
    MALLARD_RETURN_NOT_OK(
        catalog->CreateView(name, sql, std::move(aliases), true));
  }
  // Everything not part of the loaded meta chain is reusable.
  blocks->SetLiveBlocks(meta.blocks_visited());
  return Status::OK();
}

}  // namespace mallard
