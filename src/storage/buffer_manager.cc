#include "mallard/storage/buffer_manager.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "mallard/common/checksum.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/resilience/retry_policy.h"

namespace mallard {

ManagedBuffer::~ManagedBuffer() { manager_->OnDestroy(this); }

BufferHandle& BufferHandle::operator=(BufferHandle&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    buffer_ = std::move(other.buffer_);
    other.manager_ = nullptr;
  }
  return *this;
}

void BufferHandle::Release() {
  if (buffer_) {
    manager_->Unpin(buffer_.get());
    buffer_.reset();
  }
}

void BufferHandle::MarkDirty() {
  if (buffer_) manager_->MarkDirty(buffer_.get());
}

BufferManager::BufferManager(uint64_t memory_limit, std::string temp_path)
    : memory_limit_(memory_limit), temp_path_(std::move(temp_path)) {}

BufferManager::~BufferManager() {
  if (spill_file_) {
    std::string path = spill_file_->path();
    spill_file_.reset();
    RemoveFile(path);
  }
}

Result<BufferHandle> BufferManager::Allocate(uint64_t size, bool spillable) {
  std::lock_guard<std::mutex> lock(mutex_);
  MALLARD_RETURN_NOT_OK(EvictUntil(size));
  auto buffer = std::make_shared<ManagedBuffer>(this, size, spillable);
  MALLARD_ASSIGN_OR_RETURN(buffer->data_, AllocateTested(size));
  buffer->pin_count_ = 1;
  memory_used_.fetch_add(size);
  peak_memory_ = std::max(peak_memory_, memory_used_.load());
  return BufferHandle(this, std::move(buffer));
}

Result<BufferHandle> BufferManager::Pin(
    const std::shared_ptr<ManagedBuffer>& buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!buffer->resident()) {
    MALLARD_RETURN_NOT_OK(EvictUntil(buffer->size_));
    MALLARD_RETURN_NOT_OK(LoadBuffer(buffer.get()));
  } else if (buffer->pin_count_ == 0) {
    evictable_.remove(buffer.get());
  }
  buffer->pin_count_++;
  return BufferHandle(this, buffer);
}

void BufferManager::Unpin(ManagedBuffer* buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  buffer->pin_count_--;
  if (buffer->pin_count_ == 0 && buffer->resident() && buffer->spillable_) {
    buffer->lru_tick_ = ++lru_counter_;
    evictable_.push_back(buffer);
  }
}

void BufferManager::OnDestroy(ManagedBuffer* buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (buffer->resident()) {
    memory_used_.fetch_sub(buffer->size_);
    evictable_.remove(buffer);
  } else {
    stats_.spilled_bytes_now -= buffer->size_;
  }
  if (buffer->spill_offset_ != ~uint64_t(0)) {
    free_spill_slots_[buffer->size_].push_back(buffer->spill_offset_);
  }
}

void BufferManager::MarkDirty(ManagedBuffer* buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  buffer->dirty_ = true;
}

Status BufferManager::EvictUntil(uint64_t needed) {
  uint64_t limit = memory_limit_.load();
  while (memory_used_.load() + needed > limit && !evictable_.empty()) {
    ManagedBuffer* victim = evictable_.front();
    evictable_.pop_front();
    Status status = SpillBuffer(victim);
    if (!status.ok()) {
      // The victim is still resident and unpinned: put it back so it
      // stays reachable for later eviction (and for OnDestroy).
      evictable_.push_front(victim);
      return status;
    }
  }
  // An allocation larger than the limit itself is allowed to proceed when
  // nothing can be evicted: the engine prefers degraded memory behaviour
  // over failing the query, but reports peak usage via stats.
  return Status::OK();
}

Status BufferManager::EnsureSpillFile() {
  if (spill_file_) return Status::OK();
  std::string path = temp_path_.empty()
                         ? "/tmp/mallard_spill_" + std::to_string(::getpid())
                         : temp_path_;
  MALLARD_ASSIGN_OR_RETURN(
      spill_file_,
      FileHandle::Open(path, FileHandle::kRead | FileHandle::kWrite |
                                 FileHandle::kCreate | FileHandle::kTruncate));
  return Status::OK();
}

Status BufferManager::SpillBuffer(ManagedBuffer* buffer) {
  MALLARD_RETURN_NOT_OK(EnsureSpillFile());
  // A clean buffer whose spill slot is still valid needs no write: the
  // on-disk copy from the previous eviction is already correct.
  if (buffer->dirty_ || buffer->spill_offset_ == ~uint64_t(0)) {
    uint64_t offset;
    if (buffer->spill_offset_ != ~uint64_t(0)) {
      offset = buffer->spill_offset_;  // dirty: rewrite the retained slot
    } else {
      auto slot_it = free_spill_slots_.find(buffer->size_);
      if (slot_it != free_spill_slots_.end() && !slot_it->second.empty()) {
        offset = slot_it->second.back();
        slot_it->second.pop_back();
      } else {
        offset = spill_file_size_;
        spill_file_size_ += buffer->size_;
      }
    }
    // Compress the payload when the governor's pressure staircase says
    // so. The spill slot stays full-size (slots are reused by buffer
    // size); the saving is the bytes that never hit the disk.
    CompressionLevel level = spill_compression_ ? spill_compression_()
                                                : CompressionLevel::kNone;
    const uint8_t* payload = buffer->data_.get();
    uint64_t payload_len = buffer->size_;
    std::vector<uint8_t> compressed;
    if (const Codec* codec = CodecForLevel(level)) {
      codec->Compress(buffer->data_.get(), buffer->size_, &compressed);
      if (compressed.size() < buffer->size_) {
        payload = compressed.data();
        payload_len = compressed.size();
      } else {
        // Compression backfired on incompressible data; keep raw.
        level = CompressionLevel::kNone;
      }
    } else {
      level = CompressionLevel::kNone;
    }
    // Transient write faults (full disk queue, injected) are ridden out
    // by the bounded-backoff retry; a persistent fault still fails the
    // eviction cleanly after the attempts are exhausted.
    Status status = RetryPolicy().Execute([&]() -> Status {
      if (FaultInjector::Get().ShouldFire(FaultSite::kSpillWrite)) {
        return Status::IOError("spill write fault injected on '" +
                               spill_file_->path() + "'");
      }
      return spill_file_->Write(payload, payload_len, offset);
    });
    if (!status.ok()) {
      if (buffer->spill_offset_ == ~uint64_t(0)) {
        free_spill_slots_[buffer->size_].push_back(offset);
      }
      return status;
    }
    buffer->spill_offset_ = offset;
    buffer->spill_bytes_ = payload_len;
    buffer->spill_crc_ = Crc32c(payload, payload_len);
    buffer->spill_level_ = level;
    buffer->dirty_ = false;
    stats_.spill_count++;
    stats_.spilled_bytes += payload_len;
    if (level != CompressionLevel::kNone) {
      stats_.spill_compressed_count++;
      stats_.spill_saved_bytes += buffer->size_ - payload_len;
    }
  }
  buffer->data_.reset();
  memory_used_.fetch_sub(buffer->size_);
  stats_.eviction_count++;
  stats_.spilled_bytes_now += buffer->size_;
  return Status::OK();
}

Status BufferManager::LoadBuffer(ManagedBuffer* buffer) {
  MALLARD_ASSIGN_OR_RETURN(buffer->data_, AllocateTested(buffer->size_));
  // Read + verify + decompress as one retryable unit. A checksum
  // mismatch is retried too: re-reading from disk distinguishes an
  // in-flight flip (second read is clean) from at-rest media damage
  // (every read disagrees with the stamped CRC → kCorruption).
  auto attempt = [&]() -> Status {
    if (FaultInjector::Get().ShouldFire(FaultSite::kSpillRead)) {
      return Status::IOError("spill read fault injected on '" +
                             spill_file_->path() + "'");
    }
    const bool compressed = buffer->spill_level_ != CompressionLevel::kNone;
    std::vector<uint8_t> scratch;
    uint8_t* disk = buffer->data_.get();
    if (compressed) {
      scratch.resize(buffer->spill_bytes_);
      disk = scratch.data();
    }
    MALLARD_RETURN_NOT_OK(
        spill_file_->Read(disk, buffer->spill_bytes_, buffer->spill_offset_));
    if (Crc32c(disk, buffer->spill_bytes_) != buffer->spill_crc_) {
      GlobalResilienceStats().spill_checksum_failures.fetch_add(1);
      return Status::Corruption(
          "spill segment checksum mismatch at offset " +
          std::to_string(buffer->spill_offset_) + " of '" +
          spill_file_->path() + "': temp-file corruption detected");
    }
    if (compressed) {
      const Codec* codec = CodecForLevel(buffer->spill_level_);
      std::vector<uint8_t> raw;
      MALLARD_RETURN_NOT_OK(
          codec->Decompress(scratch.data(), scratch.size(), &raw));
      if (raw.size() != buffer->size_) {
        return Status::Corruption("spilled buffer decompressed to wrong size");
      }
      std::memcpy(buffer->data_.get(), raw.data(), raw.size());
    }
    return Status::OK();
  };
  Status status = RetryPolicy().Execute(attempt, [](const Status& s) {
    return s.IsIOError() || s.IsCorruption();
  });
  if (!status.ok()) {
    // Stay non-resident: a later Pin may retry, and accounting must not
    // see a half-loaded buffer.
    buffer->data_.reset();
    return status;
  }
  // The slot is retained (spill_offset_ stays valid): if this buffer is
  // evicted again without being modified, the eviction skips the write.
  buffer->dirty_ = false;
  memory_used_.fetch_add(buffer->size_);
  peak_memory_ = std::max(peak_memory_, memory_used_.load());
  stats_.unspill_count++;
  stats_.spilled_bytes_now -= buffer->size_;
  return Status::OK();
}

Result<std::unique_ptr<uint8_t[]>> BufferManager::AllocateTested(
    uint64_t size) {
  constexpr int kMaxAttempts = 8;
  for (int attempt = 0; attempt < kMaxAttempts; attempt++) {
    auto data = std::make_unique<uint8_t[]>(size);
    if (!test_on_alloc_ || size < 64) return data;
    stats_.alloc_tests_run++;
    // Decide whether the simulated hardware serves a faulty region.
    bool simulate_bad = false;
    if (bad_region_probability_ > 0.0) {
      rng_state_ ^= rng_state_ << 13;
      rng_state_ ^= rng_state_ >> 7;
      rng_state_ ^= rng_state_ << 17;
      simulate_bad =
          (rng_state_ % 1000000) < bad_region_probability_ * 1000000;
    }
    MemtestResult result;
    if (simulate_bad) {
      // Route the test through a simulated DIMM with stuck-at faults so
      // detection is exercised end to end.
      SimulatedDimm dimm(size);
      for (int f = 0; f < faults_per_region_; f++) {
        rng_state_ ^= rng_state_ << 13;
        rng_state_ ^= rng_state_ >> 7;
        rng_state_ ^= rng_state_ << 17;
        MemoryFault fault;
        fault.kind = (rng_state_ & 1) ? MemoryFault::Kind::kStuckAtOne
                                      : MemoryFault::Kind::kStuckAtZero;
        fault.word_index = (rng_state_ >> 8) % (size / 8);
        fault.bit = static_cast<uint8_t>((rng_state_ >> 40) % 64);
        dimm.AddFault(fault);
      }
      result = WalkingBitsTest(dimm);
    } else {
      DirectMemory mem(data.get(), size);
      result = WalkingBitsTest(mem);
    }
    if (result.passed) {
      if (!simulate_bad) {
        // The walking test leaves the buffer filled with a pattern.
        std::memset(data.get(), 0, size);
      }
      return data;
    }
    // Quarantine: park this region in the quarantine list so it is never
    // handed out again — the "avoid broken memory areas" mitigation from
    // paper section 3. The list owns the regions (keeping LSAN clean) and
    // only releases them when the buffer manager itself is destroyed,
    // which is when a real deployment would have to give the pages back
    // anyway.
    stats_.quarantined_allocations++;
    stats_.quarantined_bytes += size;
    quarantined_regions_.push_back(std::move(data));
  }
  return Status::HardwareFailure(
      "memory allocation failed the allocation-time test repeatedly; "
      "hardware appears faulty");
}

void BufferManager::SetMemoryLimit(uint64_t limit) {
  std::lock_guard<std::mutex> lock(mutex_);
  memory_limit_.store(limit);
  // Proactively shrink below the new limit.
  while (memory_used_.load() > limit && !evictable_.empty()) {
    ManagedBuffer* victim = evictable_.front();
    evictable_.pop_front();
    if (!SpillBuffer(victim).ok()) {
      evictable_.push_front(victim);
      break;
    }
  }
}

void BufferManager::SetSimulatedBadRegionProbability(double p,
                                                     int faults_per_region) {
  std::lock_guard<std::mutex> lock(mutex_);
  bad_region_probability_ = p;
  faults_per_region_ = faults_per_region;
}

MemtestResult BufferManager::TestIdleBuffers(uint64_t pattern,
                                             int iterations) {
  std::lock_guard<std::mutex> lock(mutex_);
  MemtestResult total;
  for (ManagedBuffer* buffer : evictable_) {
    // Preserve the buffer contents around the destructive test.
    std::vector<uint8_t> saved(buffer->data_.get(),
                               buffer->data_.get() + buffer->size_);
    DirectMemory mem(buffer->data_.get(), buffer->size_);
    MemtestResult r = MovingInversionsTest(mem, pattern, iterations);
    std::memcpy(buffer->data_.get(), saved.data(), saved.size());
    total.words_tested += r.words_tested;
    total.traffic_bytes += r.traffic_bytes;
    if (!r.passed) {
      total.passed = false;
      total.bad_words.insert(total.bad_words.end(), r.bad_words.begin(),
                             r.bad_words.end());
    }
  }
  return total;
}

BufferManagerStats BufferManager::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BufferManagerStats s = stats_;
  s.memory_used = memory_used_.load();
  s.memory_limit = memory_limit_.load();
  s.peak_memory = peak_memory_;
  return s;
}

void BufferManager::ResetPeak() {
  std::lock_guard<std::mutex> lock(mutex_);
  peak_memory_ = memory_used_.load();
}

}  // namespace mallard
