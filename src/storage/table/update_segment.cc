#include "mallard/storage/table/update_segment.h"

#include <cstring>

namespace mallard {

Status UpdateSegment::CheckConflict(const Transaction& txn,
                                    const uint32_t* rows,
                                    idx_t count) const {
  for (const UpdateInfo* info = head_.get(); info; info = info->next.get()) {
    if (txn.IsVisible(info->version) || info->version == txn.txn_id()) {
      continue;
    }
    // This update is either uncommitted by another transaction or was
    // committed after `txn` started; overlapping rows are a write-write
    // conflict under serializable MVCC.
    for (idx_t i = 0; i < count; i++) {
      for (uint32_t r : info->rows) {
        if (r == rows[i]) {
          return Status::TransactionConflict(
              "conflict: row updated by a concurrent transaction");
        }
      }
    }
  }
  return Status::OK();
}

UpdateInfo* UpdateSegment::Update(const Transaction& txn,
                                  ColumnSegment* column, const uint32_t* rows,
                                  const uint32_t* value_idx, idx_t count,
                                  const Vector& new_values) {
  // Pre-images below read the plain array directly; decode first if the
  // segment is dictionary/FOR encoded.
  column->EnsurePlain();
  auto info = std::make_unique<UpdateInfo>();
  info->version = txn.txn_id();
  info->rows.assign(rows, rows + count);
  info->old_valid.resize(count);
  if (type_ == TypeId::kVarchar) {
    info->old_strings.resize(count);
  } else {
    info->old_data.resize(count * width_);
  }
  for (idx_t i = 0; i < count; i++) {
    idx_t row = rows[i];
    bool was_valid = column->RowIsValid(row);
    info->old_valid[i] = was_valid ? 1 : 0;
    if (was_valid) {
      if (type_ == TypeId::kVarchar) {
        info->old_strings[i] =
            reinterpret_cast<const StringRef*>(column->data_.get())[row]
                .ToString();
      } else {
        std::memcpy(info->old_data.data() + i * width_,
                    column->data_.get() + row * width_, width_);
      }
    }
    // In-place write of the new value (HyPer-style immediate update).
    column->WriteRow(row, new_values, value_idx[i]);
  }
  UpdateInfo* result = info.get();
  info->next = std::move(head_);
  head_ = std::move(info);
  return result;
}

void UpdateSegment::RestoreRowFromInfo(const UpdateInfo& info, idx_t info_idx,
                                       idx_t /*row*/, Vector* out,
                                       idx_t out_idx) const {
  if (!info.old_valid[info_idx]) {
    out->validity().SetInvalid(out_idx);
    return;
  }
  out->validity().SetValid(out_idx);
  if (type_ == TypeId::kVarchar) {
    const std::string& s = info.old_strings[info_idx];
    out->SetString(out_idx, s);
  } else {
    std::memcpy(out->raw_data() + out_idx * width_,
                info.old_data.data() + info_idx * width_, width_);
  }
}

void UpdateSegment::ApplyUpdates(const Transaction& txn, idx_t start_row,
                                 idx_t count, Vector* out) const {
  // Walk newest→oldest, applying the pre-image of every update that is
  // invisible to the reader. The last write per row wins, which is the
  // oldest invisible update — exactly the reader's snapshot state.
  for (const UpdateInfo* info = head_.get(); info; info = info->next.get()) {
    if (txn.IsVisible(info->version)) continue;
    for (idx_t i = 0; i < info->rows.size(); i++) {
      uint32_t row = info->rows[i];
      if (row < start_row || row >= start_row + count) continue;
      RestoreRowFromInfo(*info, i, row, out, row - start_row);
    }
  }
}

Value UpdateSegment::GetValueForTransaction(const Transaction& txn,
                                            const ColumnSegment& column,
                                            idx_t row) const {
  // Find the oldest invisible pre-image for this row.
  const UpdateInfo* match = nullptr;
  idx_t match_idx = 0;
  for (const UpdateInfo* info = head_.get(); info; info = info->next.get()) {
    if (txn.IsVisible(info->version)) continue;
    for (idx_t i = 0; i < info->rows.size(); i++) {
      if (info->rows[i] == row) {
        match = info;
        match_idx = i;
      }
    }
  }
  if (!match) return column.GetValue(row);
  if (!match->old_valid[match_idx]) return Value::Null(type_);
  if (type_ == TypeId::kVarchar) {
    return Value::Varchar(match->old_strings[match_idx]);
  }
  Vector tmp(type_);
  std::memcpy(tmp.raw_data(), match->old_data.data() + match_idx * width_,
              width_);
  return tmp.GetValue(0);
}

void UpdateSegment::Rollback(ColumnSegment* column, UpdateInfo* target) {
  // Restore pre-images into the base data.
  Vector scratch(type_);
  for (idx_t i = 0; i < target->rows.size(); i++) {
    idx_t row = target->rows[i];
    RestoreRowFromInfo(*target, i, row, &scratch, 0);
    column->WriteRow(row, scratch, 0);
    if (type_ == TypeId::kVarchar) scratch.Reset();
  }
  // Unlink the node.
  UpdateInfo* prev = nullptr;
  for (UpdateInfo* info = head_.get(); info;
       prev = info, info = info->next.get()) {
    if (info == target) {
      std::unique_ptr<UpdateInfo> owned =
          prev ? std::move(prev->next) : std::move(head_);
      if (prev) {
        prev->next = std::move(owned->next);
      } else {
        head_ = std::move(owned->next);
      }
      return;
    }
  }
}

void UpdateSegment::Cleanup(uint64_t lowest_active_start) {
  UpdateInfo* prev = nullptr;
  UpdateInfo* info = head_.get();
  while (info) {
    bool committed = info->version < kTransactionIdBase;
    if (committed && info->version <= lowest_active_start) {
      // Every active and future transaction sees this update; the
      // pre-image can never be needed again.
      std::unique_ptr<UpdateInfo> owned =
          prev ? std::move(prev->next) : std::move(head_);
      UpdateInfo* next = owned->next.get();
      if (prev) {
        prev->next = std::move(owned->next);
      } else {
        head_ = std::move(owned->next);
      }
      info = next;
      continue;
    }
    prev = info;
    info = info->next.get();
  }
}

idx_t UpdateSegment::ChainLength() const {
  idx_t n = 0;
  for (const UpdateInfo* info = head_.get(); info; info = info->next.get()) {
    n++;
  }
  return n;
}

idx_t UpdateSegment::MemoryUsage() const {
  idx_t total = 0;
  for (const UpdateInfo* info = head_.get(); info; info = info->next.get()) {
    total += sizeof(UpdateInfo) + info->rows.size() * 4 +
             info->old_data.size() + info->old_valid.size();
    for (const auto& s : info->old_strings) total += s.size();
  }
  return total;
}

}  // namespace mallard
