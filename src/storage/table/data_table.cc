#include "mallard/storage/table/data_table.h"

#include <algorithm>

#include "mallard/common/string_util.h"
#include "mallard/resilience/retry_policy.h"

namespace mallard {

DataTable::DataTable(std::string table_name,
                     std::vector<ColumnDefinition> columns)
    : name_(std::move(table_name)), columns_(std::move(columns)) {
  types_.reserve(columns_.size());
  for (const auto& col : columns_) {
    types_.push_back(col.type);
  }
}

std::vector<TypeId> DataTable::ColumnTypes() const { return types_; }

idx_t DataTable::ColumnIndex(const std::string& name) const {
  for (idx_t i = 0; i < columns_.size(); i++) {
    if (StringUtil::CIEquals(columns_[i].name, name)) return i;
  }
  return kInvalidIndex;
}

Status DataTable::Append(Transaction* txn, const DataChunk& chunk) {
  if (chunk.ColumnCount() != columns_.size()) {
    return Status::InvalidArgument("appended chunk has wrong column count");
  }
  std::lock_guard<std::mutex> append_guard(append_lock_);
  idx_t offset = 0;
  while (offset < chunk.size()) {
    RowGroup* last = nullptr;
    {
      std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
      if (!row_groups_.empty()) last = row_groups_.back().get();
    }
    bool full = false;
    if (last) {
      // count() is written under the row group's unique lock (another
      // transaction's RevertAppend can shrink it concurrently).
      // Quarantined groups are sealed: their placeholder holds the slot
      // but can never accept rows.
      std::shared_lock<std::shared_mutex> rg_guard(last->lock());
      full = last->quarantined() || last->count() == last->Capacity();
    }
    if (!last || full) {
      std::unique_lock<std::shared_mutex> guard(row_groups_lock_);
      row_groups_.push_back(std::make_unique<RowGroup>(
          row_groups_.size() * kRowGroupSize, types_));
      last = row_groups_.back().get();
    }
    std::unique_lock<std::shared_mutex> rg_guard(last->lock());
    idx_t appended = last->Append(txn, chunk, offset, chunk.size() - offset);
    offset += appended;
  }
  return Status::OK();
}

void DataTable::InitializeScan(TableScanState* state,
                               std::vector<idx_t> column_ids,
                               std::vector<TableFilter> filters) const {
  state->column_ids = std::move(column_ids);
  state->filters = std::move(filters);
  state->row_group_index = 0;
  state->offset = 0;
  state->zonemap_checked = false;
  state->salvage_skipped_groups = 0;
  state->salvage_skipped_rows = 0;
  state->error = Status::OK();
}

bool DataTable::Scan(const Transaction& txn, TableScanState* state,
                     DataChunk* out) const {
  out->Reset();
  while (true) {
    RowGroup* rg = nullptr;
    {
      std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
      if (state->row_group_index >=
          std::min<idx_t>(row_groups_.size(), state->max_row_group)) {
        return false;
      }
      rg = row_groups_[state->row_group_index].get();
    }
    std::shared_lock<std::shared_mutex> rg_guard(rg->lock());
    if (rg->quarantined()) {
      idx_t rows = rg->count();
      idx_t start = rg->start();
      std::string reason = rg->quarantine_reason();
      rg_guard.unlock();
      if (state->salvage) {
        state->salvage_skipped_groups++;
        state->salvage_skipped_rows += rows;
        GlobalResilienceStats().salvage_skipped_groups.fetch_add(1);
        GlobalResilienceStats().salvage_skipped_rows.fetch_add(rows);
        state->row_group_index++;
        state->offset = 0;
        state->zonemap_checked = false;
        continue;
      }
      state->error = Status::Corruption(
          "row group " + std::to_string(state->row_group_index) +
          " of table '" + name_ + "' (rows " + std::to_string(start) + ".." +
          std::to_string(start + rows) + ") is quarantined: " + reason +
          "; PRAGMA salvage_mode=on scans around it");
      return false;
    }
    if (!state->zonemap_checked) {
      state->zonemap_checked = true;
      if (!state->filters.empty() && !rg->CheckZonemaps(state->filters)) {
        rg_guard.unlock();
        state->row_group_index++;
        state->offset = 0;
        state->zonemap_checked = false;
        continue;
      }
    }
    idx_t rg_count = rg->count();
    if (state->offset >= rg_count) {
      rg_guard.unlock();
      state->row_group_index++;
      state->offset = 0;
      state->zonemap_checked = false;
      continue;
    }
    idx_t n = std::min<idx_t>(kVectorSize, rg_count - state->offset);
    // Visibility selection over the window.
    uint32_t sel[kVectorSize];
    idx_t m = 0;
    for (idx_t i = 0; i < n; i++) {
      if (rg->RowIsVisible(txn, state->offset + i)) {
        sel[m++] = static_cast<uint32_t>(i);
      }
    }
    if (m == 0) {
      state->offset += n;
      continue;
    }
    // Code-space filtering: each pushed filter prunes the selection
    // against the column segment directly — on encoded segments the
    // constant is translated into code space once and rows compare
    // bit-packed codes, so pruned rows are never materialized. Columns
    // with an active undo chain are skipped here (the base data may not
    // be this transaction's snapshot); the residual filter in the plan
    // recomputes the same predicate, so dropping rows early is safe and
    // keeping them is merely conservative.
    if (!state->filters.empty()) {
      for (const auto& f : state->filters) {
        const UpdateSegment* useg = rg->update_segment(f.column_index);
        if (useg && useg->HasUpdates()) continue;
        m = rg->column(f.column_index)
                .FilterWindow(f.op, f.constant, state->offset, sel, m);
        if (m == 0) break;
      }
      if (m == 0) {
        state->offset += n;
        continue;
      }
    }
    for (idx_t c = 0; c < state->column_ids.size(); c++) {
      idx_t col_id = state->column_ids[c];
      Vector& out_col = out->column(c);
      if (col_id == kRowIdColumn) {
        int64_t* ids = out_col.data<int64_t>();
        for (idx_t i = 0; i < m; i++) {
          ids[i] = static_cast<int64_t>(rg->start() + state->offset + sel[i]);
        }
        continue;
      }
      if (m == n) {
        rg->ReadColumnWindow(txn, col_id, state->offset, n, &out_col);
      } else {
        const UpdateSegment* useg = rg->update_segment(col_id);
        if (useg && useg->HasUpdates()) {
          Vector scratch(types_[col_id]);
          rg->ReadColumnWindow(txn, col_id, state->offset, n, &scratch);
          out_col.CopySelection(scratch, sel, m);
        } else {
          // Late materialization: gather only the surviving rows
          // straight from the (possibly encoded) segment.
          rg->column(col_id).ReadSelection(state->offset, sel, m, &out_col);
        }
      }
    }
    out->SetCardinality(m);
    state->offset += n;
    return true;
  }
}

RowGroup* DataTable::GetRowGroupForRow(idx_t row_id) const {
  idx_t index = row_id / kRowGroupSize;
  std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
  if (index >= row_groups_.size()) return nullptr;
  return row_groups_[index].get();
}

Result<idx_t> DataTable::Delete(Transaction* txn, const Vector& row_ids,
                                idx_t count) {
  const int64_t* ids = row_ids.data<int64_t>();
  idx_t total_deleted = 0;
  idx_t i = 0;
  while (i < count) {
    // Batch consecutive row ids that fall into the same row group.
    idx_t rg_index = static_cast<idx_t>(ids[i]) / kRowGroupSize;
    uint32_t rows[kVectorSize];
    idx_t batch = 0;
    while (i < count &&
           static_cast<idx_t>(ids[i]) / kRowGroupSize == rg_index &&
           batch < kVectorSize) {
      rows[batch++] = static_cast<uint32_t>(ids[i] % kRowGroupSize);
      i++;
    }
    RowGroup* rg = GetRowGroupForRow(rg_index * kRowGroupSize);
    if (!rg) return Status::Internal("delete: row id out of range");
    std::unique_lock<std::shared_mutex> guard(rg->lock());
    if (rg->quarantined()) {
      return Status::Corruption("cannot delete from quarantined row group " +
                                std::to_string(rg_index) + " of table '" +
                                name_ + "': " + rg->quarantine_reason());
    }
    std::vector<uint32_t> deleted_rows;
    MALLARD_ASSIGN_OR_RETURN(idx_t deleted,
                             rg->Delete(txn, rows, batch, &deleted_rows));
    if (!deleted_rows.empty()) {
      txn->RecordDelete(rg, std::move(deleted_rows));
    }
    total_deleted += deleted;
  }
  return total_deleted;
}

Status DataTable::Update(Transaction* txn, const Vector& row_ids, idx_t count,
                         const std::vector<idx_t>& column_indexes,
                         const DataChunk& values) {
  const int64_t* ids = row_ids.data<int64_t>();
  idx_t i = 0;
  while (i < count) {
    idx_t rg_index = static_cast<idx_t>(ids[i]) / kRowGroupSize;
    uint32_t rows[kVectorSize];
    uint32_t value_idx[kVectorSize];
    idx_t batch = 0;
    while (i < count &&
           static_cast<idx_t>(ids[i]) / kRowGroupSize == rg_index &&
           batch < kVectorSize) {
      rows[batch] = static_cast<uint32_t>(ids[i] % kRowGroupSize);
      value_idx[batch] = static_cast<uint32_t>(i);
      batch++;
      i++;
    }
    RowGroup* rg = GetRowGroupForRow(rg_index * kRowGroupSize);
    if (!rg) return Status::Internal("update: row id out of range");
    std::unique_lock<std::shared_mutex> guard(rg->lock());
    if (rg->quarantined()) {
      return Status::Corruption("cannot update quarantined row group " +
                                std::to_string(rg_index) + " of table '" +
                                name_ + "': " + rg->quarantine_reason());
    }
    for (idx_t c = 0; c < column_indexes.size(); c++) {
      MALLARD_RETURN_NOT_OK(rg->Update(txn, column_indexes[c], rows,
                                       value_idx, batch, values.column(c)));
    }
  }
  return Status::OK();
}

idx_t DataTable::VisibleRowCount(const Transaction& txn) const {
  std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
  idx_t total = 0;
  for (const auto& rg : row_groups_) {
    std::shared_lock<std::shared_mutex> rg_guard(rg->lock());
    if (rg->quarantined()) continue;  // unreadable rows are not visible
    idx_t count = rg->count();
    for (idx_t row = 0; row < count; row++) {
      if (rg->RowIsVisible(txn, row)) total++;
    }
  }
  return total;
}

idx_t DataTable::ApproxRowCount() const {
  std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
  idx_t total = 0;
  for (const auto& rg : row_groups_) {
    // Per-row-group shared lock: concurrent appenders write count()
    // under the unique lock (the planner may run while DML commits).
    std::shared_lock<std::shared_mutex> rg_guard(rg->lock());
    total += rg->count();
  }
  return total;
}

idx_t DataTable::RowGroupCount() const {
  std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
  return row_groups_.size();
}

void DataTable::CleanupUpdates(uint64_t lowest_active_start) {
  std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
  for (const auto& rg : row_groups_) {
    rg->CleanupUpdates(lowest_active_start);
  }
}

Status DataTable::LoadCheckpointGroup(BinaryReader* reader,
                                      idx_t expected_rows) {
  std::unique_lock<std::shared_mutex> guard(row_groups_lock_);
  MALLARD_ASSIGN_OR_RETURN(
      auto rg, RowGroup::Deserialize(reader, row_groups_.size() * kRowGroupSize,
                                     types_));
  if (rg->count() != expected_rows) {
    return Status::Corruption(
        "row group payload holds " + std::to_string(rg->count()) +
        " rows but the checkpoint directory recorded " +
        std::to_string(expected_rows));
  }
  if (rg->count() > 0) {
    row_groups_.push_back(std::move(rg));
  }
  return Status::OK();
}

void DataTable::LoadQuarantinedGroup(idx_t rows, std::string reason) {
  std::unique_lock<std::shared_mutex> guard(row_groups_lock_);
  row_groups_.push_back(RowGroup::Quarantined(
      row_groups_.size() * kRowGroupSize, types_, rows, std::move(reason)));
}

Status DataTable::FirstQuarantineError() const {
  std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
  for (idx_t i = 0; i < row_groups_.size(); i++) {
    const auto& rg = row_groups_[i];
    if (rg->quarantined()) {
      return Status::Corruption(
          "row group " + std::to_string(i) + " of table '" + name_ +
          "' (" + std::to_string(rg->count()) + " rows) is quarantined: " +
          rg->quarantine_reason());
    }
  }
  return Status::OK();
}

idx_t DataTable::QuarantinedGroupCount() const {
  std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
  idx_t n = 0;
  for (const auto& rg : row_groups_) {
    if (rg->quarantined()) n++;
  }
  return n;
}

Status DataTable::ValidateGroup(idx_t index) const {
  RowGroup* rg = nullptr;
  {
    std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
    if (index >= row_groups_.size()) {
      return Status::InvalidArgument("row group index out of range");
    }
    rg = row_groups_[index].get();
  }
  return rg->ValidateIntegrity();
}

idx_t DataTable::MemoryUsage() const {
  std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
  idx_t total = 0;
  for (const auto& rg : row_groups_) {
    std::shared_lock<std::shared_mutex> rg_guard(rg->lock());
    total += rg->MemoryUsage();
  }
  return total;
}

TableEncodingStats DataTable::EncodingStats() const {
  TableEncodingStats stats;
  std::shared_lock<std::shared_mutex> guard(row_groups_lock_);
  for (const auto& rg : row_groups_) {
    std::shared_lock<std::shared_mutex> rg_guard(rg->lock());
    if (rg->quarantined()) continue;  // no segments to report
    idx_t rows = rg->count();
    for (idx_t c = 0; c < types_.size(); c++) {
      const ColumnSegment& seg = rg->column(c);
      stats.segments_total++;
      switch (seg.encoding()) {
        case SegmentEncoding::kPlain:
          stats.segments_plain++;
          break;
        case SegmentEncoding::kDictionary:
          stats.segments_dict++;
          stats.dict_entries += seg.dict_entry_count();
          stats.dict_rows += rows;
          break;
        case SegmentEncoding::kFor:
          stats.segments_for++;
          break;
      }
      stats.logical_bytes += seg.LogicalBytes(rows);
      stats.encoded_bytes += seg.EncodedBytes(rows);
    }
  }
  return stats;
}

}  // namespace mallard
