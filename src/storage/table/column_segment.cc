#include "mallard/storage/table/column_segment.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "mallard/common/constants.h"
#include "mallard/common/string_util.h"
#include "mallard/compression/packed_ints.h"

namespace mallard {

std::atomic<uint64_t> SegmentEncodingCounters::encodes{0};
std::atomic<uint64_t> SegmentEncodingCounters::decodes{0};
std::atomic<uint64_t> SegmentEncodingCounters::filter_windows{0};

const char* SegmentEncodingToString(SegmentEncoding encoding) {
  switch (encoding) {
    case SegmentEncoding::kPlain:
      return "plain";
    case SegmentEncoding::kDictionary:
      return "dict";
    case SegmentEncoding::kFor:
      return "for";
  }
  return "unknown";
}

namespace {

/// How a segment's encoding is chosen. The environment override mirrors
/// MALLARD_THREADS / MALLARD_MEMORY_LIMIT: CI pins whole test runs so
/// every existing test exercises the encoded read paths.
enum class ForceEncoding { kAuto, kPlain, kDict, kFor };

ForceEncoding GetForcedEncoding() {
  const char* env = std::getenv("MALLARD_FORCE_ENCODING");
  if (env == nullptr || env[0] == '\0') return ForceEncoding::kAuto;
  if (StringUtil::CIEquals(env, "plain")) return ForceEncoding::kPlain;
  if (StringUtil::CIEquals(env, "dict")) return ForceEncoding::kDict;
  if (StringUtil::CIEquals(env, "for")) return ForceEncoding::kFor;
  return ForceEncoding::kAuto;
}

/// Auto mode caps dictionaries at a 12-bit code space: past 4096 distinct
/// values per segment the dictionary stops paying for itself and the
/// segment falls back to plain (the "dictionary overflow" case).
constexpr idx_t kMaxAutoDictEntries = 4096;

bool IsIntFamily(TypeId type) {
  return type == TypeId::kInteger || type == TypeId::kDate ||
         type == TypeId::kBigInt || type == TypeId::kTimestamp;
}

Value MakeIntValue(TypeId type, int64_t v) {
  switch (type) {
    case TypeId::kInteger:
      return Value::Integer(static_cast<int32_t>(v));
    case TypeId::kDate:
      return Value::Date(static_cast<int32_t>(v));
    case TypeId::kTimestamp:
      return Value::Timestamp(v);
    default:
      return Value::BigInt(v);
  }
}

bool CompareInt64(int64_t a, CompareOp op, int64_t b) {
  switch (op) {
    case CompareOp::kEqual:
      return a == b;
    case CompareOp::kNotEqual:
      return a != b;
    case CompareOp::kLess:
      return a < b;
    case CompareOp::kLessEqual:
      return a <= b;
    case CompareOp::kGreater:
      return a > b;
    case CompareOp::kGreaterEqual:
      return a >= b;
  }
  return false;
}

bool CompareDouble(double a, CompareOp op, double b) {
  switch (op) {
    case CompareOp::kEqual:
      return a == b;
    case CompareOp::kNotEqual:
      return a != b;
    case CompareOp::kLess:
      return a < b;
    case CompareOp::kLessEqual:
      return a <= b;
    case CompareOp::kGreater:
      return a > b;
    case CompareOp::kGreaterEqual:
      return a >= b;
  }
  return false;
}

bool CompareString(const StringRef& a, CompareOp op, const StringRef& b) {
  switch (op) {
    case CompareOp::kEqual:
      return a == b;
    case CompareOp::kNotEqual:
      return !(a == b);
    case CompareOp::kLess:
      return a < b;
    case CompareOp::kLessEqual:
      return !(b < a);
    case CompareOp::kGreater:
      return b < a;
    case CompareOp::kGreaterEqual:
      return !(a < b);
  }
  return false;
}

/// Translates `code <op> constant` against a sorted dictionary into a
/// code-space predicate: pass iff lo <= code < hi, optionally inverted
/// (kNotEqual). Returns false when no row can pass.
struct CodePredicate {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool invert = false;  // pass iff code NOT in [lo, hi)
  bool Pass(uint64_t code) const {
    // Unsigned-wrap range test: one compare, no branches — this runs
    // once per row in the scan filter loop.
    return ((code - lo) < (hi - lo)) != invert;
  }
};

/// Same idea for plain int64 values: the op+constant collapse into one
/// order-preserving biased-unsigned range test evaluated per row.
struct Int64RangePred {
  uint64_t biased_lo = 0;
  uint64_t span = 0;  // inclusive width of the passing range
  bool invert = false;
  bool none = false;  // no value can pass (range over/underflow)

  static uint64_t Bias(int64_t v) {
    return static_cast<uint64_t>(v) ^ (uint64_t(1) << 63);
  }
  static Int64RangePred Make(CompareOp op, int64_t c) {
    Int64RangePred p;
    uint64_t bc = Bias(c);
    switch (op) {
      case CompareOp::kEqual:
        p.biased_lo = bc;
        p.span = 0;
        break;
      case CompareOp::kNotEqual:
        p.biased_lo = bc;
        p.span = 0;
        p.invert = true;
        break;
      case CompareOp::kLess:
        if (bc == 0) p.none = true;
        p.biased_lo = 0;
        p.span = bc - 1;
        break;
      case CompareOp::kLessEqual:
        p.biased_lo = 0;
        p.span = bc;
        break;
      case CompareOp::kGreater:
        if (bc == ~uint64_t(0)) p.none = true;
        p.biased_lo = bc + 1;
        p.span = ~uint64_t(0) - bc - 1;
        break;
      case CompareOp::kGreaterEqual:
        p.biased_lo = bc;
        p.span = ~uint64_t(0) - bc;
        break;
    }
    return p;
  }
  bool Pass(int64_t v) const {
    return ((Bias(v) - biased_lo) <= span) != invert;
  }
};

bool TranslateToCodeSpace(CompareOp op, uint64_t lower, uint64_t upper,
                          uint64_t entry_count, CodePredicate* pred) {
  // `lower`/`upper` are lower_bound/upper_bound indexes of the constant
  // in the sorted dictionary.
  pred->invert = false;
  switch (op) {
    case CompareOp::kEqual:
      if (lower == upper) return false;  // constant not in dictionary
      pred->lo = lower;
      pred->hi = upper;
      return true;
    case CompareOp::kNotEqual:
      if (lower == upper) {
        pred->lo = 0;
        pred->hi = entry_count;
        return true;
      }
      pred->lo = lower;
      pred->hi = upper;
      pred->invert = true;
      return true;
    case CompareOp::kLess:
      if (lower == 0) return false;
      pred->lo = 0;
      pred->hi = lower;
      return true;
    case CompareOp::kLessEqual:
      if (upper == 0) return false;
      pred->lo = 0;
      pred->hi = upper;
      return true;
    case CompareOp::kGreater:
      if (upper == entry_count) return false;
      pred->lo = upper;
      pred->hi = entry_count;
      return true;
    case CompareOp::kGreaterEqual:
      if (lower == entry_count) return false;
      pred->lo = lower;
      pred->hi = entry_count;
      return true;
  }
  return false;
}

}  // namespace

ColumnSegment::ColumnSegment(TypeId type)
    : type_(type),
      width_(TypeSize(type)),
      data_(std::make_unique<uint8_t[]>(width_ * kRowGroupSize)),
      validity_((kRowGroupSize + 63) / 64, ~uint64_t(0)),
      min_(type),
      max_(type) {}

void ColumnSegment::MergeStatsValue(const Value& v) {
  if (v.is_null()) {
    null_count_++;
    return;
  }
  if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
  if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
}

int64_t ColumnSegment::PlainIntAt(idx_t row) const {
  if (width_ == 4) {
    return reinterpret_cast<const int32_t*>(data_.get())[row];
  }
  return reinterpret_cast<const int64_t*>(data_.get())[row];
}

int64_t ColumnSegment::EncodedIntAt(idx_t row) const {
  uint64_t packed = packedbits::Get(packed_.data(), row, code_bits_);
  if (encoding_ == SegmentEncoding::kDictionary) {
    return int_dict_[packed];
  }
  return for_base_ + static_cast<int64_t>(packed);
}

void ColumnSegment::ReleasePlain() {
  data_.reset();
  heap_ = ArenaAllocator();
}

void ColumnSegment::Append(const Vector& source, idx_t source_offset,
                           idx_t target_offset, idx_t count) {
  // Appends land on partially-filled segments loaded from a checkpoint
  // in encoded form; fall back to the mutable plain representation.
  if (encoding_ != SegmentEncoding::kPlain) EnsurePlain();
  if (type_ == TypeId::kVarchar) {
    StringRef* dst = reinterpret_cast<StringRef*>(data_.get());
    for (idx_t i = 0; i < count; i++) {
      idx_t s = source_offset + i, t = target_offset + i;
      if (source.validity().RowIsValid(s)) {
        dst[t] = heap_.AddString(source.StringAt(s));
        SetValid(t, true);
        MergeStatsValue(Value::Varchar(dst[t].ToString()));
      } else {
        dst[t] = StringRef();
        SetValid(t, false);
        null_count_++;
      }
    }
    return;
  }
  std::memcpy(data_.get() + target_offset * width_,
              source.raw_data() + source_offset * width_, count * width_);
  for (idx_t i = 0; i < count; i++) {
    idx_t s = source_offset + i, t = target_offset + i;
    bool valid = source.validity().RowIsValid(s);
    SetValid(t, valid);
    if (!valid) {
      null_count_++;
    } else {
      MergeStatsValue(source.GetValue(s));
    }
  }
}

void ColumnSegment::Read(idx_t offset, idx_t count, Vector* out) const {
  switch (encoding_) {
    case SegmentEncoding::kPlain:
      break;
    case SegmentEncoding::kDictionary: {
      if (type_ == TypeId::kVarchar) {
        // Late materialization: hand out codes plus the shared
        // dictionary; no string bytes are touched or copied.
        out->SetDictionary(dict_, count);
        uint32_t* codes = out->data<uint32_t>();
        for (idx_t i = 0; i < count; i++) {
          codes[i] = static_cast<uint32_t>(
              packedbits::Get(packed_.data(), offset + i, code_bits_));
          out->validity().Set(i, RowIsValid(offset + i));
        }
        return;
      }
      // Integer dictionary: decode to plain (integer consumers are
      // already cheap; the win is footprint + code-space filters).
      if (width_ == 4) {
        int32_t* dst = out->data<int32_t>();
        for (idx_t i = 0; i < count; i++) {
          bool valid = RowIsValid(offset + i);
          dst[i] = valid ? static_cast<int32_t>(EncodedIntAt(offset + i)) : 0;
          out->validity().Set(i, valid);
        }
      } else {
        int64_t* dst = out->data<int64_t>();
        for (idx_t i = 0; i < count; i++) {
          bool valid = RowIsValid(offset + i);
          dst[i] = valid ? EncodedIntAt(offset + i) : 0;
          out->validity().Set(i, valid);
        }
      }
      return;
    }
    case SegmentEncoding::kFor: {
      if (width_ == 4) {
        int32_t* dst = out->data<int32_t>();
        for (idx_t i = 0; i < count; i++) {
          bool valid = RowIsValid(offset + i);
          dst[i] = valid ? static_cast<int32_t>(EncodedIntAt(offset + i)) : 0;
          out->validity().Set(i, valid);
        }
      } else {
        int64_t* dst = out->data<int64_t>();
        for (idx_t i = 0; i < count; i++) {
          bool valid = RowIsValid(offset + i);
          dst[i] = valid ? EncodedIntAt(offset + i) : 0;
          out->validity().Set(i, valid);
        }
      }
      return;
    }
  }
  if (type_ == TypeId::kVarchar) {
    const StringRef* src = reinterpret_cast<const StringRef*>(data_.get());
    StringRef* dst = out->data<StringRef>();
    for (idx_t i = 0; i < count; i++) {
      idx_t s = offset + i;
      if (RowIsValid(s)) {
        dst[i] = out->heap().AddString(src[s]);
        out->validity().SetValid(i);
      } else {
        out->validity().SetInvalid(i);
      }
    }
    return;
  }
  std::memcpy(out->raw_data(), data_.get() + offset * width_, count * width_);
  for (idx_t i = 0; i < count; i++) {
    out->validity().Set(i, RowIsValid(offset + i));
  }
}

void ColumnSegment::ReadSelection(idx_t offset, const uint32_t* sel,
                                  idx_t count, Vector* out) const {
  switch (encoding_) {
    case SegmentEncoding::kPlain:
      break;
    case SegmentEncoding::kDictionary:
      if (type_ == TypeId::kVarchar) {
        out->SetDictionary(dict_, count);
        uint32_t* codes = out->data<uint32_t>();
        for (idx_t i = 0; i < count; i++) {
          idx_t s = offset + sel[i];
          codes[i] = static_cast<uint32_t>(
              packedbits::Get(packed_.data(), s, code_bits_));
          out->validity().Set(i, RowIsValid(s));
        }
        return;
      }
      [[fallthrough]];
    case SegmentEncoding::kFor: {
      if (width_ == 4) {
        int32_t* dst = out->data<int32_t>();
        for (idx_t i = 0; i < count; i++) {
          idx_t s = offset + sel[i];
          bool valid = RowIsValid(s);
          dst[i] = valid ? static_cast<int32_t>(EncodedIntAt(s)) : 0;
          out->validity().Set(i, valid);
        }
      } else {
        int64_t* dst = out->data<int64_t>();
        for (idx_t i = 0; i < count; i++) {
          idx_t s = offset + sel[i];
          bool valid = RowIsValid(s);
          dst[i] = valid ? EncodedIntAt(s) : 0;
          out->validity().Set(i, valid);
        }
      }
      return;
    }
  }
  if (type_ == TypeId::kVarchar) {
    const StringRef* src = reinterpret_cast<const StringRef*>(data_.get());
    StringRef* dst = out->data<StringRef>();
    for (idx_t i = 0; i < count; i++) {
      idx_t s = offset + sel[i];
      if (RowIsValid(s)) {
        dst[i] = out->heap().AddString(src[s]);
        out->validity().SetValid(i);
      } else {
        out->validity().SetInvalid(i);
      }
    }
    return;
  }
  switch (width_) {
    case 1: {
      const int8_t* src = reinterpret_cast<const int8_t*>(data_.get());
      int8_t* dst = out->data<int8_t>();
      for (idx_t i = 0; i < count; i++) dst[i] = src[offset + sel[i]];
      break;
    }
    case 4: {
      const int32_t* src = reinterpret_cast<const int32_t*>(data_.get());
      int32_t* dst = out->data<int32_t>();
      for (idx_t i = 0; i < count; i++) dst[i] = src[offset + sel[i]];
      break;
    }
    default: {
      const int64_t* src = reinterpret_cast<const int64_t*>(data_.get());
      int64_t* dst = out->data<int64_t>();
      for (idx_t i = 0; i < count; i++) dst[i] = src[offset + sel[i]];
      break;
    }
  }
  for (idx_t i = 0; i < count; i++) {
    out->validity().Set(i, RowIsValid(offset + sel[i]));
  }
}

Value ColumnSegment::GetValue(idx_t row) const {
  if (!RowIsValid(row)) return Value::Null(type_);
  switch (encoding_) {
    case SegmentEncoding::kPlain:
      break;
    case SegmentEncoding::kDictionary:
      if (type_ == TypeId::kVarchar) {
        uint64_t code = packedbits::Get(packed_.data(), row, code_bits_);
        return Value::Varchar(dict_->entries[code].ToString());
      }
      return MakeIntValue(type_, EncodedIntAt(row));
    case SegmentEncoding::kFor:
      return MakeIntValue(type_, EncodedIntAt(row));
  }
  switch (type_) {
    case TypeId::kBoolean:
      return Value::Boolean(
          reinterpret_cast<const int8_t*>(data_.get())[row] != 0);
    case TypeId::kInteger:
      return Value::Integer(
          reinterpret_cast<const int32_t*>(data_.get())[row]);
    case TypeId::kDate:
      return Value::Date(reinterpret_cast<const int32_t*>(data_.get())[row]);
    case TypeId::kBigInt:
      return Value::BigInt(reinterpret_cast<const int64_t*>(data_.get())[row]);
    case TypeId::kTimestamp:
      return Value::Timestamp(
          reinterpret_cast<const int64_t*>(data_.get())[row]);
    case TypeId::kDouble:
      return Value::Double(reinterpret_cast<const double*>(data_.get())[row]);
    case TypeId::kVarchar:
      return Value::Varchar(
          reinterpret_cast<const StringRef*>(data_.get())[row].ToString());
    default:
      return Value();
  }
}

void ColumnSegment::WriteRow(idx_t row, const Vector& source,
                             idx_t source_row) {
  // Updates mutate in place; an encoded segment transparently decodes
  // back to plain first (it re-encodes at the next checkpoint).
  if (encoding_ != SegmentEncoding::kPlain) EnsurePlain();
  bool valid = source.validity().RowIsValid(source_row);
  bool was_valid = RowIsValid(row);
  SetValid(row, valid);
  if (!valid) {
    if (was_valid) null_count_++;
    return;
  }
  if (!was_valid && null_count_ > 0) null_count_--;
  if (type_ == TypeId::kVarchar) {
    // The old string bytes stay in the heap until the next checkpoint
    // rewrites the segment; in-place update only swaps the reference.
    reinterpret_cast<StringRef*>(data_.get())[row] =
        heap_.AddString(source.StringAt(source_row));
    MergeStatsValue(Value::Varchar(source.GetValue(source_row).GetString()));
    return;
  }
  std::memcpy(data_.get() + row * width_,
              source.raw_data() + source_row * width_, width_);
  MergeStatsValue(source.GetValue(source_row));
}

bool ColumnSegment::CheckZonemap(CompareOp op, const Value& constant) const {
  if (min_.is_null() || max_.is_null()) {
    // No non-NULL rows observed (or stats unavailable): cannot exclude.
    return null_count_ > 0 || min_.is_null();
  }
  if (constant.is_null()) return false;  // comparisons with NULL match nothing
  switch (op) {
    case CompareOp::kEqual:
      return min_.Compare(constant) <= 0 && max_.Compare(constant) >= 0;
    case CompareOp::kNotEqual:
      // Only excludable if every row equals the constant; be conservative.
      return true;
    case CompareOp::kLess:
      return min_.Compare(constant) < 0;
    case CompareOp::kLessEqual:
      return min_.Compare(constant) <= 0;
    case CompareOp::kGreater:
      return max_.Compare(constant) > 0;
    case CompareOp::kGreaterEqual:
      return max_.Compare(constant) >= 0;
  }
  return true;
}

idx_t ColumnSegment::FilterWindow(CompareOp op, const Value& constant,
                                  idx_t offset, uint32_t* sel,
                                  idx_t count) const {
  if (constant.type() != type_) {
    // The planner pushes same-typed constants only; keep everything and
    // let the residual filter decide (it stays exact by construction).
    return count;
  }
  if (constant.is_null()) return 0;  // comparisons with NULL match nothing
  if (encoding_ != SegmentEncoding::kPlain) {
    SegmentEncodingCounters::filter_windows.fetch_add(
        1, std::memory_order_relaxed);
  }
  idx_t m = 0;
  // Shared encoded-path loop: unpack + one branch-free range test per
  // row; the validity check hoists out entirely on all-valid segments
  // (the common case), and the emit is branchless so selectivity does
  // not stall the pipeline.
  auto FilterPackedCodes = [&](const CodePredicate& pred, idx_t off,
                               uint32_t* s, idx_t n) -> idx_t {
    const uint8_t* packed = packed_.data();
    const int bits = code_bits_;
    idx_t mm = 0;
    if (null_count_ == 0) {
      for (idx_t i = 0; i < n; i++) {
        uint64_t code = packedbits::Get(packed, off + s[i], bits);
        s[mm] = s[i];
        mm += pred.Pass(code) ? 1 : 0;
      }
    } else {
      for (idx_t i = 0; i < n; i++) {
        idx_t row = off + s[i];
        if (!RowIsValid(row)) continue;
        if (pred.Pass(packedbits::Get(packed, row, bits))) s[mm++] = s[i];
      }
    }
    return mm;
  };
  switch (encoding_) {
    case SegmentEncoding::kDictionary: {
      // Translate the constant into code space once; rows then compare
      // bit-packed codes without materializing a single value.
      uint64_t lower, upper, entry_count;
      if (type_ == TypeId::kVarchar) {
        std::string s = constant.GetString();
        StringRef ref(s.data(), static_cast<uint32_t>(s.size()));
        const auto& e = dict_->entries;
        lower = std::lower_bound(e.begin(), e.end(), ref) - e.begin();
        upper = std::upper_bound(e.begin(), e.end(), ref) - e.begin();
        entry_count = e.size();
      } else {
        int64_t v = constant.GetAsBigInt();
        lower = std::lower_bound(int_dict_.begin(), int_dict_.end(), v) -
                int_dict_.begin();
        upper = std::upper_bound(int_dict_.begin(), int_dict_.end(), v) -
                int_dict_.begin();
        entry_count = int_dict_.size();
      }
      CodePredicate pred;
      if (!TranslateToCodeSpace(op, lower, upper, entry_count, &pred)) {
        return 0;
      }
      return FilterPackedCodes(pred, offset, sel, count);
    }
    case SegmentEncoding::kFor: {
      // code == value - base is monotonic, so clamping the constant into
      // the dense [0, 2^bits) delta domain gives the same exact
      // lower/upper window a sorted dictionary would — rows then compare
      // raw packed deltas, no base add, no per-row op dispatch.
      __int128 rel =
          static_cast<__int128>(constant.GetAsBigInt()) - for_base_;
      uint64_t domain = packedbits::MaskOf(code_bits_) + 1;
      uint64_t lower, upper;
      if (rel < 0) {
        lower = upper = 0;
      } else if (rel >= static_cast<__int128>(domain)) {
        lower = upper = domain;
      } else {
        lower = static_cast<uint64_t>(rel);
        upper = lower + 1;
      }
      CodePredicate pred;
      if (!TranslateToCodeSpace(op, lower, upper, domain, &pred)) {
        return 0;
      }
      return FilterPackedCodes(pred, offset, sel, count);
    }
    case SegmentEncoding::kPlain:
      break;
  }
  switch (type_) {
    case TypeId::kVarchar: {
      std::string s = constant.GetString();
      StringRef ref(s.data(), static_cast<uint32_t>(s.size()));
      const StringRef* data = reinterpret_cast<const StringRef*>(data_.get());
      for (idx_t i = 0; i < count; i++) {
        idx_t row = offset + sel[i];
        if (RowIsValid(row) && CompareString(data[row], op, ref)) {
          sel[m++] = sel[i];
        }
      }
      return m;
    }
    case TypeId::kDouble: {
      double c = constant.GetAsDouble();
      const double* data = reinterpret_cast<const double*>(data_.get());
      for (idx_t i = 0; i < count; i++) {
        idx_t row = offset + sel[i];
        if (RowIsValid(row) && CompareDouble(data[row], op, c)) {
          sel[m++] = sel[i];
        }
      }
      return m;
    }
    case TypeId::kBoolean: {
      int64_t c = constant.GetBoolean() ? 1 : 0;
      const int8_t* data = reinterpret_cast<const int8_t*>(data_.get());
      for (idx_t i = 0; i < count; i++) {
        idx_t row = offset + sel[i];
        if (RowIsValid(row) && CompareInt64(data[row] != 0 ? 1 : 0, op, c)) {
          sel[m++] = sel[i];
        }
      }
      return m;
    }
    default: {
      // Plain ints get the same one-compare-per-row treatment as the
      // encoded paths: the op folds into a biased-unsigned range once.
      Int64RangePred pred = Int64RangePred::Make(op, constant.GetAsBigInt());
      if (pred.none) return 0;
      if (width_ == 4) {
        const int32_t* data = reinterpret_cast<const int32_t*>(data_.get());
        if (null_count_ == 0) {
          for (idx_t i = 0; i < count; i++) {
            sel[m] = sel[i];
            m += pred.Pass(data[offset + sel[i]]) ? 1 : 0;
          }
        } else {
          for (idx_t i = 0; i < count; i++) {
            idx_t row = offset + sel[i];
            if (RowIsValid(row) && pred.Pass(data[row])) sel[m++] = sel[i];
          }
        }
      } else {
        const int64_t* data = reinterpret_cast<const int64_t*>(data_.get());
        if (null_count_ == 0) {
          for (idx_t i = 0; i < count; i++) {
            sel[m] = sel[i];
            m += pred.Pass(data[offset + sel[i]]) ? 1 : 0;
          }
        } else {
          for (idx_t i = 0; i < count; i++) {
            idx_t row = offset + sel[i];
            if (RowIsValid(row) && pred.Pass(data[row])) sel[m++] = sel[i];
          }
        }
      }
      return m;
    }
  }
}

void ColumnSegment::FinalizeEncoding(idx_t row_count) {
  if (encoding_ != SegmentEncoding::kPlain || row_count == 0 || !data_) {
    return;
  }
  ForceEncoding force = GetForcedEncoding();
  if (force == ForceEncoding::kPlain) return;
  if (type_ == TypeId::kVarchar) {
    if (force == ForceEncoding::kFor) return;  // FOR is integer-only
    std::vector<StringRef> distinct;
    distinct.reserve(row_count);
    const StringRef* refs = reinterpret_cast<const StringRef*>(data_.get());
    for (idx_t row = 0; row < row_count; row++) {
      if (RowIsValid(row)) distinct.push_back(refs[row]);
    }
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end(),
                               [](const StringRef& a, const StringRef& b) {
                                 return a == b;
                               }),
                   distinct.end());
    if (force != ForceEncoding::kDict &&
        distinct.size() > kMaxAutoDictEntries) {
      return;  // dictionary overflow: stay plain
    }
    EncodeDictionaryVarchar(row_count, distinct);
    return;
  }
  if (!IsIntFamily(type_)) return;  // bool/double stay plain
  if (null_count_ >= row_count || min_.is_null()) {
    // All-NULL segment: a zero-bit frame of reference (or an empty
    // dictionary under the force override) stores no payload at all.
    if (force == ForceEncoding::kDict) {
      EncodeDictionaryInt(row_count, {});
    } else {
      EncodeFor(row_count, 0, 0);
    }
    return;
  }
  int64_t min_v = min_.GetAsBigInt();
  int64_t max_v = max_.GetAsBigInt();
  uint64_t range =
      static_cast<uint64_t>(max_v) - static_cast<uint64_t>(min_v);
  uint8_t for_bits = packedbits::BitsFor(range);
  if (force == ForceEncoding::kFor) {
    if (for_bits <= packedbits::kMaxBits) EncodeFor(row_count, min_v, for_bits);
    return;
  }
  std::vector<int64_t> distinct;
  distinct.reserve(std::min<idx_t>(row_count, kMaxAutoDictEntries + 1));
  {
    std::vector<int64_t> values;
    values.reserve(row_count);
    for (idx_t row = 0; row < row_count; row++) {
      if (RowIsValid(row)) values.push_back(PlainIntAt(row));
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    distinct = std::move(values);
  }
  if (force == ForceEncoding::kDict) {
    EncodeDictionaryInt(row_count, distinct);
    return;
  }
  // Auto: pick the smaller of dictionary and FOR, and only encode at all
  // when it saves at least 25% over the plain array (MonetDBLite's
  // lesson: bytes moved is the scan bottleneck, but re-encoding noise
  // for incompressible data is pure cost).
  uint64_t plain_bytes = row_count * width_;
  uint8_t dict_bits = packedbits::BitsFor(
      distinct.empty() ? 0 : distinct.size() - 1);
  uint64_t dict_bytes = distinct.size() * 8 + (row_count * dict_bits + 7) / 8;
  uint64_t for_bytes = for_bits <= packedbits::kMaxBits
                           ? (row_count * static_cast<uint64_t>(for_bits) + 7) / 8
                           : ~uint64_t(0);
  uint64_t best = std::min(dict_bytes, for_bytes);
  if (best * 4 > plain_bytes * 3) return;  // < 25% saving: stay plain
  if (dict_bytes < for_bytes && distinct.size() <= kMaxAutoDictEntries) {
    EncodeDictionaryInt(row_count, distinct);
  } else if (for_bits <= packedbits::kMaxBits) {
    EncodeFor(row_count, min_v, for_bits);
  }
}

void ColumnSegment::EncodeDictionaryVarchar(
    idx_t rows, const std::vector<StringRef>& sorted_distinct) {
  auto dict = std::make_shared<VectorDictionary>();
  dict->entries.reserve(sorted_distinct.size());
  for (const StringRef& s : sorted_distinct) {
    dict->entries.push_back(dict->heap.AddString(s));
  }
  code_bits_ = packedbits::BitsFor(
      sorted_distinct.empty() ? 0 : sorted_distinct.size() - 1);
  packed_.assign(packedbits::BytesFor(rows, code_bits_), 0);
  logical_heap_bytes_ = 0;
  const StringRef* refs = reinterpret_cast<const StringRef*>(data_.get());
  for (idx_t row = 0; row < rows; row++) {
    if (!RowIsValid(row)) continue;
    uint64_t code = std::lower_bound(dict->entries.begin(),
                                     dict->entries.end(), refs[row]) -
                    dict->entries.begin();
    packedbits::Set(packed_.data(), row, code_bits_, code);
    logical_heap_bytes_ += refs[row].size;
  }
  dict_ = std::move(dict);
  encoded_rows_ = rows;
  encoding_ = SegmentEncoding::kDictionary;
  ReleasePlain();
  SegmentEncodingCounters::encodes.fetch_add(1, std::memory_order_relaxed);
}

void ColumnSegment::EncodeDictionaryInt(
    idx_t rows, const std::vector<int64_t>& sorted_distinct) {
  int_dict_ = sorted_distinct;
  code_bits_ = packedbits::BitsFor(
      int_dict_.empty() ? 0 : int_dict_.size() - 1);
  packed_.assign(packedbits::BytesFor(rows, code_bits_), 0);
  for (idx_t row = 0; row < rows; row++) {
    if (!RowIsValid(row)) continue;
    uint64_t code = std::lower_bound(int_dict_.begin(), int_dict_.end(),
                                     PlainIntAt(row)) -
                    int_dict_.begin();
    packedbits::Set(packed_.data(), row, code_bits_, code);
  }
  encoded_rows_ = rows;
  encoding_ = SegmentEncoding::kDictionary;
  ReleasePlain();
  SegmentEncodingCounters::encodes.fetch_add(1, std::memory_order_relaxed);
}

void ColumnSegment::EncodeFor(idx_t rows, int64_t base, uint8_t bits) {
  for_base_ = base;
  code_bits_ = bits;
  packed_.assign(packedbits::BytesFor(rows, bits), 0);
  for (idx_t row = 0; row < rows; row++) {
    if (!RowIsValid(row)) continue;
    uint64_t delta = static_cast<uint64_t>(PlainIntAt(row)) -
                     static_cast<uint64_t>(base);
    packedbits::Set(packed_.data(), row, bits, delta);
  }
  encoded_rows_ = rows;
  encoding_ = SegmentEncoding::kFor;
  ReleasePlain();
  SegmentEncodingCounters::encodes.fetch_add(1, std::memory_order_relaxed);
}

void ColumnSegment::EnsurePlain() {
  if (encoding_ == SegmentEncoding::kPlain) return;
  idx_t rows = encoded_rows_;
  data_ = std::make_unique<uint8_t[]>(width_ * kRowGroupSize);
  if (type_ == TypeId::kVarchar) {
    StringRef* refs = reinterpret_cast<StringRef*>(data_.get());
    for (idx_t row = 0; row < rows; row++) {
      if (!RowIsValid(row)) {
        refs[row] = StringRef();
        continue;
      }
      uint64_t code = packedbits::Get(packed_.data(), row, code_bits_);
      refs[row] = heap_.AddString(dict_->entries[code]);
    }
  } else if (width_ == 4) {
    int32_t* dst = reinterpret_cast<int32_t*>(data_.get());
    for (idx_t row = 0; row < rows; row++) {
      dst[row] = RowIsValid(row)
                     ? static_cast<int32_t>(EncodedIntAt(row))
                     : 0;
    }
  } else {
    int64_t* dst = reinterpret_cast<int64_t*>(data_.get());
    for (idx_t row = 0; row < rows; row++) {
      dst[row] = RowIsValid(row) ? EncodedIntAt(row) : 0;
    }
  }
  dict_.reset();
  int_dict_.clear();
  int_dict_.shrink_to_fit();
  packed_.clear();
  packed_.shrink_to_fit();
  encoding_ = SegmentEncoding::kPlain;
  encoded_rows_ = 0;
  code_bits_ = 0;
  for_base_ = 0;
  logical_heap_bytes_ = 0;
  SegmentEncodingCounters::decodes.fetch_add(1, std::memory_order_relaxed);
}

idx_t ColumnSegment::dict_entry_count() const {
  if (encoding_ != SegmentEncoding::kDictionary) return 0;
  return dict_ ? dict_->entries.size() : int_dict_.size();
}

idx_t ColumnSegment::EncodedBytes(idx_t rows) const {
  switch (encoding_) {
    case SegmentEncoding::kPlain:
      return rows * width_ + heap_.TotalUsed();
    case SegmentEncoding::kDictionary: {
      idx_t dict_bytes = dict_ ? dict_->entries.size() * sizeof(StringRef) +
                                     dict_->heap.TotalUsed()
                               : int_dict_.size() * 8;
      return packed_.size() + dict_bytes;
    }
    case SegmentEncoding::kFor:
      return packed_.size() + 8;
  }
  return 0;
}

idx_t ColumnSegment::LogicalBytes(idx_t rows) const {
  idx_t heap_bytes = 0;
  if (type_ == TypeId::kVarchar) {
    heap_bytes = encoding_ == SegmentEncoding::kPlain ? heap_.TotalUsed()
                                                      : logical_heap_bytes_;
  }
  return rows * width_ + heap_bytes;
}

void ColumnSegment::Serialize(BinaryWriter* writer, idx_t count) const {
  writer->WriteU64(count);
  for (idx_t w = 0; w < (count + 63) / 64; w++) {
    writer->WriteU64(validity_[w]);
  }
  writer->WriteU8(static_cast<uint8_t>(encoding_));
  switch (encoding_) {
    case SegmentEncoding::kDictionary: {
      if (type_ == TypeId::kVarchar) {
        writer->WriteU32(static_cast<uint32_t>(dict_->entries.size()));
        for (const StringRef& e : dict_->entries) {
          writer->WriteU32(e.size);
          writer->WriteBytes(e.data, e.size);
        }
      } else {
        writer->WriteU32(static_cast<uint32_t>(int_dict_.size()));
        for (int64_t v : int_dict_) writer->WriteI64(v);
      }
      writer->WriteU8(code_bits_);
      writer->WriteU64(packed_.size());
      writer->WriteBytes(packed_.data(), packed_.size());
      writer->WriteU64(logical_heap_bytes_);
      return;
    }
    case SegmentEncoding::kFor: {
      writer->WriteI64(for_base_);
      writer->WriteU8(code_bits_);
      writer->WriteU64(packed_.size());
      writer->WriteBytes(packed_.data(), packed_.size());
      bool has_stats = !min_.is_null();
      writer->WriteBool(has_stats);
      if (has_stats) {
        writer->WriteI64(min_.GetAsBigInt());
        writer->WriteI64(max_.GetAsBigInt());
      }
      return;
    }
    case SegmentEncoding::kPlain:
      break;
  }
  if (type_ == TypeId::kVarchar) {
    const StringRef* refs = reinterpret_cast<const StringRef*>(data_.get());
    for (idx_t i = 0; i < count; i++) {
      if (RowIsValid(i)) {
        writer->WriteU32(refs[i].size);
        writer->WriteBytes(refs[i].data, refs[i].size);
      } else {
        writer->WriteU32(0);
      }
    }
  } else {
    writer->WriteBytes(data_.get(), count * width_);
  }
}

Result<std::unique_ptr<ColumnSegment>> ColumnSegment::Deserialize(
    BinaryReader* reader, TypeId type, idx_t expected_count) {
  auto segment = std::make_unique<ColumnSegment>(type);
  uint64_t count;
  MALLARD_RETURN_NOT_OK(reader->ReadU64(&count));
  if (count != expected_count || count > kRowGroupSize) {
    return Status::Corruption("column segment row count mismatch");
  }
  for (idx_t w = 0; w < (count + 63) / 64; w++) {
    MALLARD_RETURN_NOT_OK(reader->ReadU64(&segment->validity_[w]));
  }
  uint8_t encoding_byte;
  MALLARD_RETURN_NOT_OK(reader->ReadU8(&encoding_byte));
  if (encoding_byte > static_cast<uint8_t>(SegmentEncoding::kFor)) {
    return Status::Corruption("column segment has unknown encoding");
  }
  SegmentEncoding encoding = static_cast<SegmentEncoding>(encoding_byte);
  if (encoding != SegmentEncoding::kPlain) {
    // Encoded round-trip: the segment stays encoded in memory; scans
    // read codes directly and updates decode on demand.
    idx_t valid_rows = 0;
    for (idx_t i = 0; i < count; i++) {
      if (segment->RowIsValid(i)) valid_rows++;
    }
    segment->null_count_ = count - valid_rows;
    if (encoding == SegmentEncoding::kDictionary) {
      uint32_t entry_count;
      MALLARD_RETURN_NOT_OK(reader->ReadU32(&entry_count));
      if (entry_count > kRowGroupSize) {
        return Status::Corruption("dictionary entry count out of range");
      }
      if (type == TypeId::kVarchar) {
        auto dict = std::make_shared<VectorDictionary>();
        dict->entries.reserve(entry_count);
        std::string scratch;
        for (uint32_t i = 0; i < entry_count; i++) {
          MALLARD_RETURN_NOT_OK(reader->ReadString(&scratch));
          dict->entries.push_back(
              dict->heap.AddString(scratch.data(),
                                   static_cast<uint32_t>(scratch.size())));
          if (i > 0 && dict->entries[i] < dict->entries[i - 1]) {
            return Status::Corruption("dictionary entries not sorted");
          }
        }
        segment->dict_ = std::move(dict);
      } else {
        segment->int_dict_.resize(entry_count);
        for (uint32_t i = 0; i < entry_count; i++) {
          MALLARD_RETURN_NOT_OK(reader->ReadI64(&segment->int_dict_[i]));
          if (i > 0 && segment->int_dict_[i] < segment->int_dict_[i - 1]) {
            return Status::Corruption("dictionary entries not sorted");
          }
        }
      }
      MALLARD_RETURN_NOT_OK(reader->ReadU8(&segment->code_bits_));
      uint64_t packed_size;
      MALLARD_RETURN_NOT_OK(reader->ReadU64(&packed_size));
      if (segment->code_bits_ > packedbits::kMaxBits ||
          packed_size != packedbits::BytesFor(count, segment->code_bits_)) {
        return Status::Corruption("dictionary code array size mismatch");
      }
      segment->packed_.resize(packed_size);
      MALLARD_RETURN_NOT_OK(
          reader->ReadBytes(segment->packed_.data(), packed_size));
      uint64_t logical_heap;
      MALLARD_RETURN_NOT_OK(reader->ReadU64(&logical_heap));
      segment->logical_heap_bytes_ = logical_heap;
      // Validate every stored code and derive zone maps from the sorted
      // dictionary (first/last entry are min/max).
      idx_t entries = segment->dict_ ? segment->dict_->entries.size()
                                     : segment->int_dict_.size();
      for (idx_t i = 0; i < count; i++) {
        if (!segment->RowIsValid(i)) continue;
        uint64_t code = packedbits::Get(segment->packed_.data(), i,
                                        segment->code_bits_);
        if (code >= entries) {
          return Status::Corruption("dictionary code out of range");
        }
      }
      if (valid_rows > 0 && entries > 0) {
        if (type == TypeId::kVarchar) {
          segment->min_ =
              Value::Varchar(segment->dict_->entries.front().ToString());
          segment->max_ =
              Value::Varchar(segment->dict_->entries.back().ToString());
        } else {
          segment->min_ = MakeIntValue(type, segment->int_dict_.front());
          segment->max_ = MakeIntValue(type, segment->int_dict_.back());
        }
      }
    } else {  // kFor
      MALLARD_RETURN_NOT_OK(reader->ReadI64(&segment->for_base_));
      MALLARD_RETURN_NOT_OK(reader->ReadU8(&segment->code_bits_));
      uint64_t packed_size;
      MALLARD_RETURN_NOT_OK(reader->ReadU64(&packed_size));
      if (segment->code_bits_ > packedbits::kMaxBits ||
          packed_size != packedbits::BytesFor(count, segment->code_bits_)) {
        return Status::Corruption("FOR delta array size mismatch");
      }
      segment->packed_.resize(packed_size);
      MALLARD_RETURN_NOT_OK(
          reader->ReadBytes(segment->packed_.data(), packed_size));
      bool has_stats;
      MALLARD_RETURN_NOT_OK(reader->ReadBool(&has_stats));
      if (has_stats) {
        int64_t min_v, max_v;
        MALLARD_RETURN_NOT_OK(reader->ReadI64(&min_v));
        MALLARD_RETURN_NOT_OK(reader->ReadI64(&max_v));
        segment->min_ = MakeIntValue(type, min_v);
        segment->max_ = MakeIntValue(type, max_v);
      }
    }
    segment->encoding_ = encoding;
    segment->encoded_rows_ = count;
    segment->ReleasePlain();  // drop the constructor's plain array
    return segment;
  }
  if (type == TypeId::kVarchar) {
    StringRef* refs = reinterpret_cast<StringRef*>(segment->data_.get());
    std::string scratch;
    for (idx_t i = 0; i < count; i++) {
      uint32_t len;
      MALLARD_RETURN_NOT_OK(reader->ReadU32(&len));
      if (segment->RowIsValid(i)) {
        scratch.resize(len);
        MALLARD_RETURN_NOT_OK(reader->ReadBytes(scratch.data(), len));
        refs[i] = segment->heap_.AddString(scratch.data(), len);
        segment->MergeStatsValue(Value::Varchar(scratch));
      } else {
        refs[i] = StringRef();
        segment->null_count_++;
      }
    }
  } else {
    MALLARD_RETURN_NOT_OK(
        reader->ReadBytes(segment->data_.get(), count * segment->width_));
    for (idx_t i = 0; i < count; i++) {
      if (segment->RowIsValid(i)) {
        segment->MergeStatsValue(segment->GetValue(i));
      } else {
        segment->null_count_++;
      }
    }
  }
  return segment;
}

idx_t ColumnSegment::MemoryUsage() const {
  if (encoding_ == SegmentEncoding::kPlain) {
    return width_ * kRowGroupSize + validity_.size() * 8 +
           heap_.TotalCapacity();
  }
  idx_t dict_bytes = int_dict_.capacity() * 8;
  if (dict_) {
    dict_bytes += dict_->entries.capacity() * sizeof(StringRef) +
                  dict_->heap.TotalCapacity();
  }
  return packed_.capacity() + dict_bytes + validity_.size() * 8;
}

}  // namespace mallard
