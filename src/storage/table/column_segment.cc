#include "mallard/storage/table/column_segment.h"

#include <cstring>

#include "mallard/common/constants.h"

namespace mallard {

ColumnSegment::ColumnSegment(TypeId type)
    : type_(type),
      width_(TypeSize(type)),
      data_(std::make_unique<uint8_t[]>(width_ * kRowGroupSize)),
      validity_((kRowGroupSize + 63) / 64, ~uint64_t(0)),
      min_(type),
      max_(type) {}

void ColumnSegment::MergeStatsValue(const Value& v) {
  if (v.is_null()) {
    null_count_++;
    return;
  }
  if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
  if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
}

void ColumnSegment::Append(const Vector& source, idx_t source_offset,
                           idx_t target_offset, idx_t count) {
  if (type_ == TypeId::kVarchar) {
    const StringRef* src = source.data<StringRef>();
    StringRef* dst = reinterpret_cast<StringRef*>(data_.get());
    for (idx_t i = 0; i < count; i++) {
      idx_t s = source_offset + i, t = target_offset + i;
      if (source.validity().RowIsValid(s)) {
        dst[t] = heap_.AddString(src[s]);
        SetValid(t, true);
        MergeStatsValue(Value::Varchar(dst[t].ToString()));
      } else {
        dst[t] = StringRef();
        SetValid(t, false);
        null_count_++;
      }
    }
    return;
  }
  std::memcpy(data_.get() + target_offset * width_,
              source.raw_data() + source_offset * width_, count * width_);
  for (idx_t i = 0; i < count; i++) {
    idx_t s = source_offset + i, t = target_offset + i;
    bool valid = source.validity().RowIsValid(s);
    SetValid(t, valid);
    if (!valid) {
      null_count_++;
    } else {
      MergeStatsValue(source.GetValue(s));
    }
  }
}

void ColumnSegment::Read(idx_t offset, idx_t count, Vector* out) const {
  if (type_ == TypeId::kVarchar) {
    const StringRef* src = reinterpret_cast<const StringRef*>(data_.get());
    StringRef* dst = out->data<StringRef>();
    for (idx_t i = 0; i < count; i++) {
      idx_t s = offset + i;
      if (RowIsValid(s)) {
        dst[i] = out->heap().AddString(src[s]);
        out->validity().SetValid(i);
      } else {
        out->validity().SetInvalid(i);
      }
    }
    return;
  }
  std::memcpy(out->raw_data(), data_.get() + offset * width_, count * width_);
  for (idx_t i = 0; i < count; i++) {
    out->validity().Set(i, RowIsValid(offset + i));
  }
}

Value ColumnSegment::GetValue(idx_t row) const {
  if (!RowIsValid(row)) return Value::Null(type_);
  switch (type_) {
    case TypeId::kBoolean:
      return Value::Boolean(
          reinterpret_cast<const int8_t*>(data_.get())[row] != 0);
    case TypeId::kInteger:
      return Value::Integer(
          reinterpret_cast<const int32_t*>(data_.get())[row]);
    case TypeId::kDate:
      return Value::Date(reinterpret_cast<const int32_t*>(data_.get())[row]);
    case TypeId::kBigInt:
      return Value::BigInt(reinterpret_cast<const int64_t*>(data_.get())[row]);
    case TypeId::kTimestamp:
      return Value::Timestamp(
          reinterpret_cast<const int64_t*>(data_.get())[row]);
    case TypeId::kDouble:
      return Value::Double(reinterpret_cast<const double*>(data_.get())[row]);
    case TypeId::kVarchar:
      return Value::Varchar(
          reinterpret_cast<const StringRef*>(data_.get())[row].ToString());
    default:
      return Value();
  }
}

void ColumnSegment::WriteRow(idx_t row, const Vector& source,
                             idx_t source_row) {
  bool valid = source.validity().RowIsValid(source_row);
  bool was_valid = RowIsValid(row);
  SetValid(row, valid);
  if (!valid) {
    if (was_valid) null_count_++;
    return;
  }
  if (!was_valid && null_count_ > 0) null_count_--;
  if (type_ == TypeId::kVarchar) {
    // The old string bytes stay in the heap until the next checkpoint
    // rewrites the segment; in-place update only swaps the reference.
    reinterpret_cast<StringRef*>(data_.get())[row] =
        heap_.AddString(source.data<StringRef>()[source_row]);
    MergeStatsValue(Value::Varchar(source.GetValue(source_row).GetString()));
    return;
  }
  std::memcpy(data_.get() + row * width_,
              source.raw_data() + source_row * width_, width_);
  MergeStatsValue(source.GetValue(source_row));
}

bool ColumnSegment::CheckZonemap(CompareOp op, const Value& constant) const {
  if (min_.is_null() || max_.is_null()) {
    // No non-NULL rows observed (or stats unavailable): cannot exclude.
    return null_count_ > 0 || min_.is_null();
  }
  if (constant.is_null()) return false;  // comparisons with NULL match nothing
  switch (op) {
    case CompareOp::kEqual:
      return min_.Compare(constant) <= 0 && max_.Compare(constant) >= 0;
    case CompareOp::kNotEqual:
      // Only excludable if every row equals the constant; be conservative.
      return true;
    case CompareOp::kLess:
      return min_.Compare(constant) < 0;
    case CompareOp::kLessEqual:
      return min_.Compare(constant) <= 0;
    case CompareOp::kGreater:
      return max_.Compare(constant) > 0;
    case CompareOp::kGreaterEqual:
      return max_.Compare(constant) >= 0;
  }
  return true;
}

void ColumnSegment::Serialize(BinaryWriter* writer, idx_t count) const {
  writer->WriteU64(count);
  for (idx_t w = 0; w < (count + 63) / 64; w++) {
    writer->WriteU64(validity_[w]);
  }
  if (type_ == TypeId::kVarchar) {
    const StringRef* refs = reinterpret_cast<const StringRef*>(data_.get());
    for (idx_t i = 0; i < count; i++) {
      if (RowIsValid(i)) {
        writer->WriteU32(refs[i].size);
        writer->WriteBytes(refs[i].data, refs[i].size);
      } else {
        writer->WriteU32(0);
      }
    }
  } else {
    writer->WriteBytes(data_.get(), count * width_);
  }
}

Result<std::unique_ptr<ColumnSegment>> ColumnSegment::Deserialize(
    BinaryReader* reader, TypeId type, idx_t expected_count) {
  auto segment = std::make_unique<ColumnSegment>(type);
  uint64_t count;
  MALLARD_RETURN_NOT_OK(reader->ReadU64(&count));
  if (count != expected_count || count > kRowGroupSize) {
    return Status::Corruption("column segment row count mismatch");
  }
  for (idx_t w = 0; w < (count + 63) / 64; w++) {
    MALLARD_RETURN_NOT_OK(reader->ReadU64(&segment->validity_[w]));
  }
  if (type == TypeId::kVarchar) {
    StringRef* refs = reinterpret_cast<StringRef*>(segment->data_.get());
    std::string scratch;
    for (idx_t i = 0; i < count; i++) {
      uint32_t len;
      MALLARD_RETURN_NOT_OK(reader->ReadU32(&len));
      if (segment->RowIsValid(i)) {
        scratch.resize(len);
        MALLARD_RETURN_NOT_OK(reader->ReadBytes(scratch.data(), len));
        refs[i] = segment->heap_.AddString(scratch.data(), len);
        segment->MergeStatsValue(Value::Varchar(scratch));
      } else {
        refs[i] = StringRef();
        segment->null_count_++;
      }
    }
  } else {
    MALLARD_RETURN_NOT_OK(
        reader->ReadBytes(segment->data_.get(), count * segment->width_));
    for (idx_t i = 0; i < count; i++) {
      if (segment->RowIsValid(i)) {
        segment->MergeStatsValue(segment->GetValue(i));
      } else {
        segment->null_count_++;
      }
    }
  }
  return segment;
}

idx_t ColumnSegment::MemoryUsage() const {
  return width_ * kRowGroupSize + validity_.size() * 8 +
         heap_.TotalCapacity();
}

}  // namespace mallard
