#include "mallard/storage/table/row_group.h"

#include <mutex>

#include <algorithm>

namespace mallard {

RowGroup::RowGroup(idx_t start, const std::vector<TypeId>& types)
    : start_(start), types_(types) {
  columns_.reserve(types.size());
  updates_.resize(types.size());
  for (TypeId type : types) {
    columns_.push_back(std::make_unique<ColumnSegment>(type));
  }
}

std::unique_ptr<RowGroup> RowGroup::Quarantined(
    idx_t start, const std::vector<TypeId>& types, idx_t count,
    std::string reason) {
  auto rg = std::make_unique<RowGroup>(start, types);
  // Drop the freshly allocated (empty) segments: a quarantined group must
  // never serve data, and keeping them would invite a path that reads
  // zeros where real rows used to be.
  rg->columns_.clear();
  rg->count_ = count;
  rg->quarantined_ = true;
  rg->quarantine_reason_ = std::move(reason);
  return rg;
}

void RowGroup::EnsureInsertedBy() {
  if (!inserted_by_) {
    inserted_by_ =
        std::make_unique<std::vector<uint64_t>>(kRowGroupSize, uint64_t(0));
  }
}

void RowGroup::EnsureDeletedBy() {
  if (!deleted_by_) {
    deleted_by_ =
        std::make_unique<std::vector<uint64_t>>(kRowGroupSize, kNotDeleted);
  }
}

idx_t RowGroup::Append(Transaction* txn, const DataChunk& chunk,
                       idx_t chunk_offset, idx_t max_count) {
  idx_t space = kRowGroupSize - count_;
  idx_t available = chunk.size() - chunk_offset;
  idx_t to_append = std::min({space, available, max_count});
  if (to_append == 0) return 0;
  for (idx_t c = 0; c < columns_.size(); c++) {
    columns_[c]->Append(chunk.column(c), chunk_offset, count_, to_append);
  }
  EnsureInsertedBy();
  for (idx_t i = 0; i < to_append; i++) {
    (*inserted_by_)[count_ + i] = txn->txn_id();
  }
  txn->RecordAppend(this, count_, to_append);
  count_ += to_append;
  if (count_ == kRowGroupSize) {
    // The row group is full and will never see another append; pick a
    // compressed representation per column. Encoding only changes the
    // physical form, so rows of a transaction that later aborts are
    // unaffected (they stay invisible and compact away at checkpoint).
    for (auto& col : columns_) {
      col->FinalizeEncoding(kRowGroupSize);
    }
  }
  return to_append;
}

void RowGroup::CommitAppend(uint64_t commit_id, idx_t start, idx_t count) {
  std::unique_lock<std::shared_mutex> guard(lock_);
  for (idx_t i = 0; i < count; i++) {
    (*inserted_by_)[start + i] = commit_id;
  }
}

void RowGroup::RevertAppend(idx_t start, idx_t count) {
  std::unique_lock<std::shared_mutex> guard(lock_);
  for (idx_t i = 0; i < count; i++) {
    (*inserted_by_)[start + i] = kAbortedVersion;
  }
}

Result<idx_t> RowGroup::Delete(Transaction* txn, const uint32_t* rows,
                               idx_t count,
                               std::vector<uint32_t>* deleted_rows) {
  EnsureDeletedBy();
  // First pass: detect conflicts before mutating anything.
  for (idx_t i = 0; i < count; i++) {
    uint64_t del = (*deleted_by_)[rows[i]];
    if (del == kNotDeleted || del == txn->txn_id()) continue;
    if (!txn->IsVisible(del)) {
      return Status::TransactionConflict(
          "conflict: row deleted by a concurrent transaction");
    }
  }
  // Deleting a row that a concurrent transaction updated is also a
  // write-write conflict.
  for (idx_t c = 0; c < updates_.size(); c++) {
    if (updates_[c]) {
      MALLARD_RETURN_NOT_OK(updates_[c]->CheckConflict(*txn, rows, count));
    }
  }
  idx_t deleted = 0;
  for (idx_t i = 0; i < count; i++) {
    uint64_t del = (*deleted_by_)[rows[i]];
    if (del != kNotDeleted) continue;  // already deleted (visibly or by us)
    (*deleted_by_)[rows[i]] = txn->txn_id();
    deleted_rows->push_back(rows[i]);
    deleted++;
  }
  return deleted;
}

void RowGroup::CommitDelete(uint64_t commit_id,
                            const std::vector<uint32_t>& rows) {
  std::unique_lock<std::shared_mutex> guard(lock_);
  for (uint32_t row : rows) {
    (*deleted_by_)[row] = commit_id;
  }
}

void RowGroup::RevertDelete(const std::vector<uint32_t>& rows) {
  std::unique_lock<std::shared_mutex> guard(lock_);
  for (uint32_t row : rows) {
    (*deleted_by_)[row] = kNotDeleted;
  }
}

Status RowGroup::Update(Transaction* txn, idx_t column_index,
                        const uint32_t* rows, const uint32_t* value_idx,
                        idx_t count, const Vector& new_values) {
  if (!updates_[column_index]) {
    updates_[column_index] =
        std::make_unique<UpdateSegment>(types_[column_index]);
  }
  UpdateSegment& seg = *updates_[column_index];
  MALLARD_RETURN_NOT_OK(seg.CheckConflict(*txn, rows, count));
  // Updating a row deleted by a concurrent transaction conflicts too.
  if (deleted_by_) {
    for (idx_t i = 0; i < count; i++) {
      uint64_t del = (*deleted_by_)[rows[i]];
      if (del != kNotDeleted && del != txn->txn_id() &&
          !txn->IsVisible(del)) {
        return Status::TransactionConflict(
            "conflict: row deleted by a concurrent transaction");
      }
    }
  }
  UpdateInfo* info = seg.Update(*txn, columns_[column_index].get(), rows,
                                value_idx, count, new_values);
  txn->RecordUpdate(this, column_index, info);
  return Status::OK();
}

void RowGroup::RollbackUpdate(idx_t column_index, UpdateInfo* info) {
  std::unique_lock<std::shared_mutex> guard(lock_);
  updates_[column_index]->Rollback(columns_[column_index].get(), info);
}

bool RowGroup::RowIsVisible(const Transaction& txn, idx_t row) const {
  if (inserted_by_) {
    uint64_t ins = (*inserted_by_)[row];
    // 0 marks rows loaded from a checkpoint: committed before any
    // currently possible snapshot.
    if (ins != 0 && !txn.IsVisible(ins)) return false;
  }
  if (deleted_by_) {
    uint64_t del = (*deleted_by_)[row];
    if (del != kNotDeleted && txn.IsVisible(del)) return false;
  }
  return true;
}

bool RowGroup::CheckZonemaps(const std::vector<TableFilter>& filters) const {
  for (const auto& filter : filters) {
    // Zone maps are widened by updates, never narrowed, so they stay
    // conservative in the presence of undo chains.
    if (!columns_[filter.column_index]->CheckZonemap(filter.op,
                                                     filter.constant)) {
      return false;
    }
  }
  return true;
}

Value RowGroup::FetchValue(const Transaction& txn, idx_t column_index,
                           idx_t row) const {
  const UpdateSegment* seg = updates_[column_index].get();
  if (seg && seg->HasUpdates()) {
    return seg->GetValueForTransaction(txn, *columns_[column_index], row);
  }
  return columns_[column_index]->GetValue(row);
}

void RowGroup::ReadColumnWindow(const Transaction& txn, idx_t column_index,
                                idx_t offset, idx_t count,
                                Vector* out) const {
  columns_[column_index]->Read(offset, count, out);
  const UpdateSegment* seg = updates_[column_index].get();
  if (seg && seg->HasUpdates()) {
    seg->ApplyUpdates(txn, offset, count, out);
  }
}

void RowGroup::CleanupUpdates(uint64_t lowest_active_start) {
  std::unique_lock<std::shared_mutex> guard(lock_);
  for (auto& seg : updates_) {
    if (seg) seg->Cleanup(lowest_active_start);
  }
}

void RowGroup::Serialize(BinaryWriter* writer) const {
  // Checkpoint-time serialization: no active transactions, so a row is
  // live iff it was not aborted and not deleted by a committed
  // transaction. Compact live rows into fresh segments.
  std::vector<uint32_t> live;
  live.reserve(count_);
  for (idx_t row = 0; row < count_; row++) {
    if (inserted_by_ && (*inserted_by_)[row] == kAbortedVersion) continue;
    if (deleted_by_ && (*deleted_by_)[row] != kNotDeleted) continue;
    live.push_back(static_cast<uint32_t>(row));
  }
  writer->WriteU64(live.size());
  writer->WriteU32(static_cast<uint32_t>(types_.size()));
  // Compact each column through a scratch vector.
  for (idx_t c = 0; c < columns_.size(); c++) {
    ColumnSegment compacted(types_[c]);
    Vector scratch(types_[c]);
    idx_t written = 0;
    for (idx_t i = 0; i < live.size();) {
      idx_t batch = std::min<idx_t>(kVectorSize, live.size() - i);
      scratch.Reset();
      for (idx_t j = 0; j < batch; j++) {
        scratch.SetValue(j, columns_[c]->GetValue(live[i + j]));
      }
      compacted.Append(scratch, 0, written, batch);
      written += batch;
      i += batch;
    }
    // Checkpoint in encoded form: the segment round-trips its dictionary
    // or FOR representation and reopens without re-encoding.
    compacted.FinalizeEncoding(live.size());
    compacted.Serialize(writer, live.size());
  }
}

Result<std::unique_ptr<RowGroup>> RowGroup::Deserialize(
    BinaryReader* reader, idx_t start, const std::vector<TypeId>& types) {
  uint64_t count;
  MALLARD_RETURN_NOT_OK(reader->ReadU64(&count));
  uint32_t num_columns;
  MALLARD_RETURN_NOT_OK(reader->ReadU32(&num_columns));
  if (num_columns != types.size()) {
    return Status::Corruption("row group column count mismatch");
  }
  auto rg = std::make_unique<RowGroup>(start, types);
  rg->columns_.clear();
  for (TypeId type : types) {
    MALLARD_ASSIGN_OR_RETURN(auto segment,
                             ColumnSegment::Deserialize(reader, type, count));
    rg->columns_.push_back(std::move(segment));
  }
  rg->count_ = count;
  return rg;
}

Status RowGroup::ValidateIntegrity() const {
  std::shared_lock<std::shared_mutex> guard(lock_);
  if (quarantined_) {
    return Status::Corruption("quarantined: " + quarantine_reason_);
  }
  for (idx_t c = 0; c < columns_.size(); c++) {
    const ColumnSegment& seg = *columns_[c];
    // Encoding invariants: serialize and re-read the segment; the
    // deserializer is the single place that checks dictionary order,
    // code widths and length fields, so the round-trip reuses it.
    BinaryWriter w;
    seg.Serialize(&w, count_);
    BinaryReader r(w.data().data(), w.data().size());
    auto round_trip = ColumnSegment::Deserialize(&r, types_[c], count_);
    if (!round_trip.ok()) {
      return Status::Corruption("column " + std::to_string(c) +
                                " failed encoding validation: " +
                                round_trip.status().ToString());
    }
    // Zone maps versus data. In-place updates widen the stats, so every
    // base value must lie inside [min, max] even mid-transaction; the
    // null count is only exact while no undo chain is active.
    idx_t nulls = 0;
    const Value& min = seg.stats_min();
    const Value& max = seg.stats_max();
    for (idx_t row = 0; row < count_; row++) {
      if (!seg.RowIsValid(row)) {
        nulls++;
        continue;
      }
      Value v = seg.GetValue(row);
      if (!min.is_null() && min.type() == v.type() && v.Compare(min) < 0) {
        return Status::Corruption("column " + std::to_string(c) + " row " +
                                  std::to_string(row) + " value " +
                                  v.ToString() + " below zone-map minimum " +
                                  min.ToString());
      }
      if (!max.is_null() && max.type() == v.type() && v.Compare(max) > 0) {
        return Status::Corruption("column " + std::to_string(c) + " row " +
                                  std::to_string(row) + " value " +
                                  v.ToString() + " above zone-map maximum " +
                                  max.ToString());
      }
    }
    bool has_updates = updates_[c] && updates_[c]->HasUpdates();
    if (!has_updates && nulls != seg.null_count()) {
      return Status::Corruption(
          "column " + std::to_string(c) + " validity mask holds " +
          std::to_string(nulls) + " NULLs but zone statistics recorded " +
          std::to_string(seg.null_count()));
    }
  }
  return Status::OK();
}

idx_t RowGroup::MemoryUsage() const {
  idx_t total = 0;
  for (const auto& col : columns_) total += col->MemoryUsage();
  for (const auto& seg : updates_) {
    if (seg) total += seg->MemoryUsage();
  }
  if (inserted_by_) total += kRowGroupSize * 8;
  if (deleted_by_) total += kRowGroupSize * 8;
  return total;
}

}  // namespace mallard
