#include "mallard/storage/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "mallard/common/checksum.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/resilience/retry_policy.h"
#include "mallard/transaction/transaction_manager.h"
#include "mallard/vector/chunk_serde.h"

namespace {
// Async mode: wake the flusher early once this many unflushed bytes
// accumulate, bounding memory and crash-loss window under heavy load.
constexpr size_t kAsyncForceFlushBytes = 256 * 1024;
// Log file header: [magic u64][checkpoint generation u64], written at
// creation and on every truncation. The generation ties the log to the
// database root that last truncated it — see WriteAheadLog::Replay.
constexpr uint64_t kWalMagic = 0x4D414C4C41524457ULL;  // "MALLARDW"
constexpr uint64_t kWalHeaderSize = 16;
}  // namespace

namespace mallard {

namespace wal_record {

std::vector<uint8_t> CreateTable(const std::string& name,
                                 const std::vector<ColumnDefinition>& cols) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kCreateTable));
  w.WriteString(name);
  w.WriteU32(static_cast<uint32_t>(cols.size()));
  for (const auto& col : cols) {
    w.WriteString(col.name);
    w.WriteU8(static_cast<uint8_t>(col.type));
  }
  return w.data();
}

std::vector<uint8_t> DropTable(const std::string& name) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kDropTable));
  w.WriteString(name);
  return w.data();
}

std::vector<uint8_t> CreateView(const std::string& name,
                                const std::string& sql,
                                const std::vector<std::string>& aliases) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kCreateView));
  w.WriteString(name);
  w.WriteString(sql);
  w.WriteU32(static_cast<uint32_t>(aliases.size()));
  for (const auto& a : aliases) w.WriteString(a);
  return w.data();
}

std::vector<uint8_t> DropView(const std::string& name) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kDropView));
  w.WriteString(name);
  return w.data();
}

std::vector<uint8_t> Append(const std::string& table,
                            const DataChunk& chunk) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kAppend));
  w.WriteString(table);
  SerializeChunk(chunk, &w);
  return w.data();
}

std::vector<uint8_t> Delete(const std::string& table, const int64_t* row_ids,
                            idx_t count) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kDelete));
  w.WriteString(table);
  w.WriteU64(count);
  for (idx_t i = 0; i < count; i++) w.WriteI64(row_ids[i]);
  return w.data();
}

std::vector<uint8_t> Update(const std::string& table,
                            const std::vector<idx_t>& columns,
                            const int64_t* row_ids, idx_t count,
                            const DataChunk& values) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kUpdate));
  w.WriteString(table);
  w.WriteU32(static_cast<uint32_t>(columns.size()));
  for (idx_t c : columns) w.WriteU64(c);
  w.WriteU64(count);
  for (idx_t i = 0; i < count; i++) w.WriteI64(row_ids[i]);
  SerializeChunk(values, &w);
  return w.data();
}

std::vector<uint8_t> Commit() {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kCommit));
  return w.data();
}

}  // namespace wal_record

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  MALLARD_ASSIGN_OR_RETURN(
      auto file, FileHandle::Open(path, FileHandle::kRead |
                                            FileHandle::kWrite |
                                            FileHandle::kCreate));
  auto wal = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, std::move(file)));
  MALLARD_ASSIGN_OR_RETURN(wal->file_size_, wal->file_->Size());
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

std::vector<uint8_t> WriteAheadLog::FrameRecords(
    const std::vector<std::vector<uint8_t>>& records) {
  // Assemble all frames of the transaction into one buffer so a crash
  // mid-commit leaves at most one torn group at the tail.
  BinaryWriter batch;
  auto& injector = FaultInjector::Get();
  for (const auto& record : records) {
    std::vector<uint8_t> payload = record;
    if (injector.ShouldFire(FaultSite::kWalWrite)) {
      injector.FlipRandomBit(payload.data(), payload.size());
      // Note: bit flipped after CRC would go undetected; flipping before
      // CRC models memory corruption of the WAL buffer, which the CRC
      // *can* catch only if it happens after CRC computation. We flip the
      // payload and compute the CRC over the *original* record to model
      // corruption between checksumming and the write syscall.
      uint32_t crc = Crc32c(record.data(), record.size());
      batch.WriteU32(static_cast<uint32_t>(payload.size()));
      batch.WriteU32(crc);
      batch.WriteBytes(payload.data(), payload.size());
      continue;
    }
    uint32_t crc = Crc32c(payload.data(), payload.size());
    batch.WriteU32(static_cast<uint32_t>(payload.size()));
    batch.WriteU32(crc);
    batch.WriteBytes(payload.data(), payload.size());
  }
  return batch.data();
}

Status WriteAheadLog::AppendAndSync(const std::vector<uint8_t>& batch) {
  auto& injector = FaultInjector::Get();
  uint64_t restore = file_size_;
  Status status = Status::OK();
  if (injector.ShouldKill(FaultSite::kWalAppend)) {
    // Power loss mid-append: only a prefix of the batch reaches the
    // kernel. Replay must discard this torn group.
    (void)file_->Write(batch.data(), batch.size() / 2, restore);
    FaultInjector::KillProcess();
  }
  // Transient append failures (injected or a momentarily overloaded
  // disk) are retried with bounded backoff. The write targets the fixed
  // durable end, so a retry simply overwrites whatever partial bytes the
  // failed attempt may have landed — idempotent by construction. fsync
  // is deliberately NOT retried below: after a failed fsync the kernel
  // may have dropped the dirty pages, so "retry until it reports OK"
  // can acknowledge a commit that never reached the platter.
  status = RetryPolicy().Execute([&]() -> Status {
    if (injector.ShouldFire(FaultSite::kWalAppend)) {
      return Status::IOError("injected WAL append failure");
    }
    // Write at the tracked durable end rather than Append(): after an
    // earlier failed flush the kernel file size may briefly disagree
    // with the durable prefix, and this is immune to that.
    return file_->Write(batch.data(), batch.size(), restore);
  });
  if (status.ok()) {
    uint32_t delay = fsync_delay_us_.load();
    if (delay) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
    if (injector.ShouldKill(FaultSite::kWalFsync)) {
      // Power loss after write() but before fsync(): the batch may or
      // may not survive; either way the log ends on a frame boundary or
      // a torn tail that replay discards.
      FaultInjector::KillProcess();
    }
    if (injector.ShouldFire(FaultSite::kWalFsync)) {
      status = Status::IOError("injected WAL fsync failure");
    } else {
      status = file_->Sync();
    }
  }
  if (!status.ok()) {
    // Roll the file back to the last durable frame boundary so a retried
    // commit appends onto a clean prefix instead of after garbage.
    (void)file_->Truncate(restore);
    (void)file_->Sync();
    return status;
  }
  file_size_ = restore + batch.size();
  return Status::OK();
}

Status WriteAheadLog::WriteCommit(
    const std::vector<std::vector<uint8_t>>& records) {
  if (truncate_failed_.load()) {
    // A failed post-checkpoint truncation left the log's generation
    // behind the durable root; anything appended now would be skipped by
    // replay. Refusing the commit is the only answer that cannot lose
    // acknowledged data — a successful Checkpoint() retry clears this.
    return Status::IOError(
        "WAL is stale after a failed truncation; retry Checkpoint() to "
        "restore durability");
  }
  std::vector<uint8_t> batch = FrameRecords(records);
  if (commit_mode_.load() == WalCommitMode::kAsync) {
    return CommitAsync(std::move(batch));
  }
  return CommitSync(std::move(batch));
}

void WriteAheadLog::AcquireFlushToken(std::unique_lock<std::mutex>* lock) {
  cv_.wait(*lock, [this] { return !flush_in_progress_; });
  flush_in_progress_ = true;
}

void WriteAheadLog::ReleaseFlushToken() {
  flush_in_progress_ = false;
  cv_.notify_all();
}

Status WriteAheadLog::CommitSync(std::vector<uint8_t> batch) {
  if (!group_commit_.load()) {
    // Benchmark baseline: every committer appends + fsyncs alone.
    std::unique_lock<std::mutex> lock(mutex_);
    AcquireFlushToken(&lock);
    std::vector<uint8_t> combined;
    combined.swap(pending_);  // acked async batches must precede us
    combined.insert(combined.end(), batch.begin(), batch.end());
    lock.unlock();
    Status s = AppendAndSync(combined);
    lock.lock();
    if (s.ok()) {
      stats_.commits++;
      stats_.flushes++;
      stats_.fsyncs++;
      stats_.bytes_written += combined.size();
      stats_.max_group = std::max<uint64_t>(stats_.max_group, 1);
    }
    ReleaseFlushToken();
    return s;
  }

  CommitRequest req;
  req.batch = std::move(batch);
  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(&req);
  for (;;) {
    if (req.done) return req.status;  // a leader flushed us
    if (!flush_in_progress_) break;   // no leader: become one
    cv_.wait(lock);
  }
  flush_in_progress_ = true;
  std::vector<CommitRequest*> group(queue_.begin(), queue_.end());
  queue_.clear();
  std::vector<uint8_t> combined;
  combined.swap(pending_);  // acked async batches must precede the group
  for (CommitRequest* r : group) {
    combined.insert(combined.end(), r->batch.begin(), r->batch.end());
  }
  lock.unlock();
  Status s = AppendAndSync(combined);
  lock.lock();
  if (s.ok()) {
    stats_.commits += group.size();
    stats_.flushes++;
    stats_.fsyncs++;
    stats_.bytes_written += combined.size();
    if (group.size() > 1) stats_.group_commits += group.size();
    stats_.max_group = std::max<uint64_t>(stats_.max_group, group.size());
  }
  for (CommitRequest* r : group) {
    r->done = true;
    r->status = s;
  }
  ReleaseFlushToken();
  return s;
}

Status WriteAheadLog::CommitAsync(std::vector<uint8_t> batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.insert(pending_.end(), batch.begin(), batch.end());
  stats_.commits++;
  stats_.async_acks++;
  StartFlusherLocked();
  if (pending_.size() >= kAsyncForceFlushBytes) flusher_cv_.notify_one();
  return Status::OK();
}

void WriteAheadLog::StartFlusherLocked() {
  if (flusher_.joinable() || shutdown_) return;
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void WriteAheadLog::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    uint64_t interval = governor_ ? governor_->WalFlushIntervalMs() : 5;
    flusher_cv_.wait_for(lock, std::chrono::milliseconds(interval), [this] {
      return shutdown_ || pending_.size() >= kAsyncForceFlushBytes;
    });
    if (pending_.empty()) {
      if (shutdown_) return;
      continue;
    }
    AcquireFlushToken(&lock);
    std::vector<uint8_t> combined;
    combined.swap(pending_);
    if (combined.empty()) {  // a sync leader drained us while we waited
      ReleaseFlushToken();
      if (shutdown_) return;
      continue;
    }
    lock.unlock();
    Status s = AppendAndSync(combined);
    lock.lock();
    if (s.ok()) {
      stats_.flushes++;
      stats_.fsyncs++;
      stats_.bytes_written += combined.size();
    } else {
      // Acked-but-lost data: counted so tests and operators can see it.
      stats_.flush_errors++;
    }
    ReleaseFlushToken();
    if (shutdown_ && pending_.empty()) return;
  }
}

Status WriteAheadLog::FlushPending() {
  std::unique_lock<std::mutex> lock(mutex_);
  AcquireFlushToken(&lock);
  std::vector<uint8_t> combined;
  combined.swap(pending_);
  if (combined.empty()) {
    ReleaseFlushToken();
    return Status::OK();
  }
  lock.unlock();
  Status s = AppendAndSync(combined);
  lock.lock();
  if (s.ok()) {
    stats_.flushes++;
    stats_.fsyncs++;
    stats_.bytes_written += combined.size();
  } else {
    stats_.flush_errors++;
  }
  ReleaseFlushToken();
  return s;
}

Status WriteAheadLog::SetCommitMode(WalCommitMode mode) {
  if (mode == commit_mode_.load()) return Status::OK();
  if (mode == WalCommitMode::kSync) {
    // The stronger guarantee must hold from this call's return onward:
    // everything already acknowledged gets flushed before we switch.
    commit_mode_.store(mode);
    return FlushPending();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    StartFlusherLocked();
  }
  commit_mode_.store(mode);
  return Status::OK();
}

WalStats WriteAheadLog::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WalStats s = stats_;
  s.pending_bytes = pending_.size();
  return s;
}

Status WriteAheadLog::VerifyFrames(uint64_t* frames) {
  if (frames) *frames = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  AcquireFlushToken(&lock);
  lock.unlock();
  // Token held: the durable prefix [0, file_size_) is stable and no
  // writer is mid-append. Everything is re-read from disk — the point
  // of a scrub is to catch rot the happy path has not touched yet.
  uint64_t size = file_size_;
  auto verify = [&]() -> Status {
    if (size < kWalHeaderSize) {
      return Status::Corruption("WAL '" + path_ + "' is shorter than its header");
    }
    uint8_t header[kWalHeaderSize];
    MALLARD_RETURN_NOT_OK(file_->Read(header, kWalHeaderSize, 0));
    uint64_t magic;
    std::memcpy(&magic, header, sizeof(uint64_t));
    if (magic != kWalMagic) {
      return Status::Corruption("WAL '" + path_ + "' header magic mismatch");
    }
    std::vector<uint8_t> data(size - kWalHeaderSize);
    MALLARD_RETURN_NOT_OK(
        file_->Read(data.data(), data.size(), kWalHeaderSize));
    BinaryReader reader(data.data(), data.size());
    uint64_t frame = 0;
    while (!reader.AtEnd()) {
      uint32_t len, crc;
      if (!reader.ReadU32(&len).ok() || !reader.ReadU32(&crc).ok() ||
          len == 0 || len > reader.remaining()) {
        return Status::Corruption("WAL frame " + std::to_string(frame) +
                                  " has a torn or invalid header");
      }
      std::vector<uint8_t> payload(len);
      MALLARD_RETURN_NOT_OK(reader.ReadBytes(payload.data(), len));
      if (Crc32c(payload.data(), payload.size()) != crc) {
        return Status::Corruption("WAL frame " + std::to_string(frame) +
                                  " checksum mismatch");
      }
      frame++;
    }
    if (frames) *frames = frame;
    return Status::OK();
  };
  Status status = verify();
  lock.lock();
  ReleaseFlushToken();
  return status;
}

Result<idx_t> WriteAheadLog::Replay(Catalog* catalog,
                                    TransactionManager* txn_manager,
                                    uint64_t expected_generation) {
  MALLARD_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  bool stale = false;
  if (size >= kWalHeaderSize) {
    uint8_t header[kWalHeaderSize];
    MALLARD_RETURN_NOT_OK(file_->Read(header, kWalHeaderSize, 0));
    uint64_t magic, generation;
    std::memcpy(&magic, header, sizeof(uint64_t));
    std::memcpy(&generation, header + sizeof(uint64_t), sizeof(uint64_t));
    // A generation behind the root means the process died between the
    // checkpoint's root swap and the WAL truncation: every transaction in
    // this log is already part of the durable image, and replaying it
    // would duplicate rows. (The commit gate is held across both steps,
    // so nothing newer can be in a stale log either.)
    stale = magic != kWalMagic || generation != expected_generation;
  }
  if (size < kWalHeaderSize || stale) {
    // Fresh, torn-at-creation or stale log: initialize it for the current
    // root. The header must be durable before the first commit appends,
    // or a crash could make that commit look stale.
    MALLARD_RETURN_NOT_OK(file_->Truncate(0));
    MALLARD_RETURN_NOT_OK(WriteWalHeader(expected_generation));
    file_size_ = kWalHeaderSize;
    return idx_t(0);
  }
  std::vector<uint8_t> data(size - kWalHeaderSize);
  MALLARD_RETURN_NOT_OK(
      file_->Read(data.data(), data.size(), kWalHeaderSize));
  BinaryReader reader(data.data(), data.size());

  idx_t applied_txns = 0;
  uint64_t valid_end = kWalHeaderSize;
  // Records of the current (uncommitted) group.
  std::vector<std::pair<WalRecordType, std::vector<uint8_t>>> group;
  bool truncated = false;
  while (!reader.AtEnd()) {
    uint32_t len, crc;
    if (!reader.ReadU32(&len).ok() || !reader.ReadU32(&crc).ok()) {
      truncated = true;
      break;
    }
    if (len == 0 || len > reader.remaining()) {
      truncated = true;
      break;
    }
    std::vector<uint8_t> payload(len);
    if (!reader.ReadBytes(payload.data(), len).ok()) {
      truncated = true;
      break;
    }
    if (Crc32c(payload.data(), payload.size()) != crc) {
      // A CRC mismatch is either a torn tail (the crash tore the last
      // group mid-write — expected, recoverable) or bit rot in the
      // middle of the log (unexpected, unrecoverable without losing
      // acknowledged commits). The framing here is intact, so walk the
      // remaining frames: any later frame with a valid CRC proves
      // committed data follows the damage — truncating would silently
      // drop it, so that case is a hard corruption error instead.
      bool later_valid_frame = false;
      while (!reader.AtEnd()) {
        uint32_t len2, crc2;
        if (!reader.ReadU32(&len2).ok() || !reader.ReadU32(&crc2).ok()) break;
        if (len2 == 0 || len2 > reader.remaining()) break;
        std::vector<uint8_t> payload2(len2);
        if (!reader.ReadBytes(payload2.data(), len2).ok()) break;
        if (Crc32c(payload2.data(), payload2.size()) == crc2) {
          later_valid_frame = true;
          break;
        }
      }
      if (later_valid_frame) {
        return Status::Corruption(
            "WAL frame checksum mismatch before the log tail in '" + path_ +
            "': the log is damaged mid-stream (valid frames follow the bad "
            "one), not torn by a crash; refusing to drop committed data");
      }
      truncated = true;
      break;
    }
    WalRecordType type = static_cast<WalRecordType>(payload[0]);
    if (type == WalRecordType::kCommit) {
      // Apply the whole group transactionally.
      auto txn = txn_manager->Begin();
      Status apply_status = Status::OK();
      for (auto& [rtype, rpayload] : group) {
        BinaryReader record_reader(rpayload.data() + 1, rpayload.size() - 1);
        apply_status =
            ApplyRecord(&record_reader, rtype, catalog, txn.get());
        if (!apply_status.ok()) break;
      }
      if (apply_status.ok()) {
        MALLARD_RETURN_NOT_OK(txn_manager->CommitWithoutWal(txn.get()));
        applied_txns++;
        valid_end = kWalHeaderSize + reader.position();
      } else {
        txn_manager->Rollback(txn.get());
        return apply_status;
      }
      group.clear();
    } else {
      group.emplace_back(type, std::move(payload));
    }
  }
  if (truncated || !group.empty()) {
    // Drop the torn tail so subsequent appends continue from a clean
    // prefix of committed groups.
    MALLARD_RETURN_NOT_OK(file_->Truncate(valid_end));
    MALLARD_RETURN_NOT_OK(file_->Sync());
    file_size_ = valid_end;
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.torn_tail_recoveries++;
  }
  return applied_txns;
}

Status WriteAheadLog::ApplyRecord(BinaryReader* reader, WalRecordType type,
                                  Catalog* catalog, Transaction* txn) {
  switch (type) {
    case WalRecordType::kCreateTable: {
      std::string name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&name));
      uint32_t ncols;
      MALLARD_RETURN_NOT_OK(reader->ReadU32(&ncols));
      std::vector<ColumnDefinition> cols;
      for (uint32_t i = 0; i < ncols; i++) {
        ColumnDefinition col;
        MALLARD_RETURN_NOT_OK(reader->ReadString(&col.name));
        uint8_t t;
        MALLARD_RETURN_NOT_OK(reader->ReadU8(&t));
        col.type = static_cast<TypeId>(t);
        cols.push_back(std::move(col));
      }
      return catalog->CreateTable(name, std::move(cols));
    }
    case WalRecordType::kDropTable: {
      std::string name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&name));
      return catalog->DropTable(name);
    }
    case WalRecordType::kCreateView: {
      std::string name, sql;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&name));
      MALLARD_RETURN_NOT_OK(reader->ReadString(&sql));
      uint32_t naliases;
      MALLARD_RETURN_NOT_OK(reader->ReadU32(&naliases));
      std::vector<std::string> aliases(naliases);
      for (uint32_t i = 0; i < naliases; i++) {
        MALLARD_RETURN_NOT_OK(reader->ReadString(&aliases[i]));
      }
      return catalog->CreateView(name, sql, std::move(aliases),
                                 /*or_replace=*/true);
    }
    case WalRecordType::kDropView: {
      std::string name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&name));
      return catalog->DropView(name);
    }
    case WalRecordType::kAppend: {
      std::string table_name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&table_name));
      DataChunk chunk;
      MALLARD_RETURN_NOT_OK(DeserializeChunk(reader, &chunk));
      MALLARD_ASSIGN_OR_RETURN(DataTable * table,
                               catalog->GetTable(table_name));
      return table->Append(txn, chunk);
    }
    case WalRecordType::kDelete: {
      std::string table_name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&table_name));
      uint64_t count;
      MALLARD_RETURN_NOT_OK(reader->ReadU64(&count));
      MALLARD_ASSIGN_OR_RETURN(DataTable * table,
                               catalog->GetTable(table_name));
      Vector ids(TypeId::kBigInt);
      idx_t done = 0;
      while (done < count) {
        idx_t batch = std::min<idx_t>(kVectorSize, count - done);
        for (idx_t i = 0; i < batch; i++) {
          MALLARD_RETURN_NOT_OK(reader->ReadI64(&ids.data<int64_t>()[i]));
        }
        MALLARD_ASSIGN_OR_RETURN(idx_t n, table->Delete(txn, ids, batch));
        (void)n;
        done += batch;
      }
      return Status::OK();
    }
    case WalRecordType::kUpdate: {
      std::string table_name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&table_name));
      uint32_t ncols;
      MALLARD_RETURN_NOT_OK(reader->ReadU32(&ncols));
      std::vector<idx_t> columns(ncols);
      for (uint32_t i = 0; i < ncols; i++) {
        MALLARD_RETURN_NOT_OK(reader->ReadU64(&columns[i]));
      }
      uint64_t count;
      MALLARD_RETURN_NOT_OK(reader->ReadU64(&count));
      std::vector<int64_t> row_ids(count);
      for (uint64_t i = 0; i < count; i++) {
        MALLARD_RETURN_NOT_OK(reader->ReadI64(&row_ids[i]));
      }
      DataChunk values;
      MALLARD_RETURN_NOT_OK(DeserializeChunk(reader, &values));
      MALLARD_ASSIGN_OR_RETURN(DataTable * table,
                               catalog->GetTable(table_name));
      Vector ids(TypeId::kBigInt);
      std::memcpy(ids.data<int64_t>(), row_ids.data(), count * 8);
      return table->Update(txn, ids, count, columns, values);
    }
    case WalRecordType::kCommit:
      return Status::Internal("commit record inside group");
  }
  return Status::Corruption("unknown WAL record type");
}

Status WriteAheadLog::WriteWalHeader(uint64_t generation) {
  uint8_t header[kWalHeaderSize];
  std::memcpy(header, &kWalMagic, sizeof(uint64_t));
  std::memcpy(header + sizeof(uint64_t), &generation, sizeof(uint64_t));
  MALLARD_RETURN_NOT_OK(file_->Write(header, kWalHeaderSize, 0));
  return file_->Sync();
}

Status WriteAheadLog::Truncate(uint64_t generation) {
  auto& injector = FaultInjector::Get();
  std::unique_lock<std::mutex> lock(mutex_);
  AcquireFlushToken(&lock);
  if (injector.ShouldKill(FaultSite::kWalTruncate)) {
    // Power loss after the checkpoint's root swap became durable but
    // before the log was truncated: on reopen the log's old generation
    // no longer matches the root, so replay discards it instead of
    // re-applying transactions that are already in the image.
    FaultInjector::KillProcess();
  }
  // Discard acked-but-unflushed async batches too: every acknowledged
  // commit is stamped in memory and thus part of the checkpoint image
  // this truncation runs against.
  pending_.clear();
  lock.unlock();
  Status s;
  if (injector.ShouldFire(FaultSite::kWalTruncate)) {
    s = Status::IOError("injected WAL truncation failure");
  } else {
    s = file_->Truncate(0);
    if (s.ok()) s = WriteWalHeader(generation);
  }
  if (s.ok()) file_size_ = kWalHeaderSize;
  // On failure the log no longer matches the durable root; commits are
  // refused (WriteCommit) until a Checkpoint() retry truncates cleanly,
  // because replay would skip a stale-generation log entirely.
  truncate_failed_.store(!s.ok());
  lock.lock();
  ReleaseFlushToken();
  return s;
}

Result<uint64_t> WriteAheadLog::SizeBytes() const {
  // Log payload bytes: the 16-byte [magic][generation] header is not
  // replayable content.
  MALLARD_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  return size <= kWalHeaderSize ? uint64_t(0) : size - kWalHeaderSize;
}

}  // namespace mallard
