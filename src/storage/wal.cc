#include "mallard/storage/wal.h"

#include <cstring>

#include "mallard/common/checksum.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/transaction/transaction_manager.h"
#include "mallard/vector/chunk_serde.h"

namespace mallard {

namespace wal_record {

std::vector<uint8_t> CreateTable(const std::string& name,
                                 const std::vector<ColumnDefinition>& cols) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kCreateTable));
  w.WriteString(name);
  w.WriteU32(static_cast<uint32_t>(cols.size()));
  for (const auto& col : cols) {
    w.WriteString(col.name);
    w.WriteU8(static_cast<uint8_t>(col.type));
  }
  return w.data();
}

std::vector<uint8_t> DropTable(const std::string& name) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kDropTable));
  w.WriteString(name);
  return w.data();
}

std::vector<uint8_t> CreateView(const std::string& name,
                                const std::string& sql,
                                const std::vector<std::string>& aliases) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kCreateView));
  w.WriteString(name);
  w.WriteString(sql);
  w.WriteU32(static_cast<uint32_t>(aliases.size()));
  for (const auto& a : aliases) w.WriteString(a);
  return w.data();
}

std::vector<uint8_t> DropView(const std::string& name) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kDropView));
  w.WriteString(name);
  return w.data();
}

std::vector<uint8_t> Append(const std::string& table,
                            const DataChunk& chunk) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kAppend));
  w.WriteString(table);
  SerializeChunk(chunk, &w);
  return w.data();
}

std::vector<uint8_t> Delete(const std::string& table, const int64_t* row_ids,
                            idx_t count) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kDelete));
  w.WriteString(table);
  w.WriteU64(count);
  for (idx_t i = 0; i < count; i++) w.WriteI64(row_ids[i]);
  return w.data();
}

std::vector<uint8_t> Update(const std::string& table,
                            const std::vector<idx_t>& columns,
                            const int64_t* row_ids, idx_t count,
                            const DataChunk& values) {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kUpdate));
  w.WriteString(table);
  w.WriteU32(static_cast<uint32_t>(columns.size()));
  for (idx_t c : columns) w.WriteU64(c);
  w.WriteU64(count);
  for (idx_t i = 0; i < count; i++) w.WriteI64(row_ids[i]);
  SerializeChunk(values, &w);
  return w.data();
}

std::vector<uint8_t> Commit() {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(WalRecordType::kCommit));
  return w.data();
}

}  // namespace wal_record

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  MALLARD_ASSIGN_OR_RETURN(
      auto file, FileHandle::Open(path, FileHandle::kRead |
                                            FileHandle::kWrite |
                                            FileHandle::kCreate));
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, std::move(file)));
}

Status WriteAheadLog::WriteCommit(
    const std::vector<std::vector<uint8_t>>& records) {
  // Assemble all frames of the transaction into one buffer so a crash
  // mid-commit leaves at most one torn group at the tail.
  BinaryWriter batch;
  auto& injector = FaultInjector::Get();
  for (const auto& record : records) {
    std::vector<uint8_t> payload = record;
    if (injector.ShouldFire(FaultSite::kWalWrite)) {
      injector.FlipRandomBit(payload.data(), payload.size());
      // Note: bit flipped after CRC would go undetected; flipping before
      // CRC models memory corruption of the WAL buffer, which the CRC
      // *can* catch only if it happens after CRC computation. We flip the
      // payload and compute the CRC over the *original* record to model
      // corruption between checksumming and the write syscall.
      uint32_t crc = Crc32c(record.data(), record.size());
      batch.WriteU32(static_cast<uint32_t>(payload.size()));
      batch.WriteU32(crc);
      batch.WriteBytes(payload.data(), payload.size());
      continue;
    }
    uint32_t crc = Crc32c(payload.data(), payload.size());
    batch.WriteU32(static_cast<uint32_t>(payload.size()));
    batch.WriteU32(crc);
    batch.WriteBytes(payload.data(), payload.size());
  }
  MALLARD_ASSIGN_OR_RETURN(uint64_t offset,
                           file_->Append(batch.data().data(), batch.size()));
  (void)offset;
  return file_->Sync();
}

Result<idx_t> WriteAheadLog::Replay(Catalog* catalog,
                                    TransactionManager* txn_manager) {
  MALLARD_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  if (size == 0) return idx_t(0);
  std::vector<uint8_t> data(size);
  MALLARD_RETURN_NOT_OK(file_->Read(data.data(), size, 0));
  BinaryReader reader(data.data(), data.size());

  idx_t applied_txns = 0;
  uint64_t valid_end = 0;
  // Records of the current (uncommitted) group.
  std::vector<std::pair<WalRecordType, std::vector<uint8_t>>> group;
  bool truncated = false;
  while (!reader.AtEnd()) {
    uint32_t len, crc;
    if (!reader.ReadU32(&len).ok() || !reader.ReadU32(&crc).ok()) {
      truncated = true;
      break;
    }
    if (len == 0 || len > reader.remaining()) {
      truncated = true;
      break;
    }
    std::vector<uint8_t> payload(len);
    if (!reader.ReadBytes(payload.data(), len).ok()) {
      truncated = true;
      break;
    }
    if (Crc32c(payload.data(), payload.size()) != crc) {
      // Torn or corrupted frame: everything from here on is discarded.
      truncated = true;
      break;
    }
    WalRecordType type = static_cast<WalRecordType>(payload[0]);
    if (type == WalRecordType::kCommit) {
      // Apply the whole group transactionally.
      auto txn = txn_manager->Begin();
      Status apply_status = Status::OK();
      for (auto& [rtype, rpayload] : group) {
        BinaryReader record_reader(rpayload.data() + 1, rpayload.size() - 1);
        apply_status =
            ApplyRecord(&record_reader, rtype, catalog, txn.get());
        if (!apply_status.ok()) break;
      }
      if (apply_status.ok()) {
        MALLARD_RETURN_NOT_OK(txn_manager->CommitWithoutWal(txn.get()));
        applied_txns++;
        valid_end = reader.position();
      } else {
        txn_manager->Rollback(txn.get());
        return apply_status;
      }
      group.clear();
    } else {
      group.emplace_back(type, std::move(payload));
    }
  }
  if (truncated || !group.empty()) {
    // Drop the torn tail so subsequent appends continue from a clean
    // prefix of committed groups.
    MALLARD_RETURN_NOT_OK(file_->Truncate(valid_end));
    MALLARD_RETURN_NOT_OK(file_->Sync());
  }
  return applied_txns;
}

Status WriteAheadLog::ApplyRecord(BinaryReader* reader, WalRecordType type,
                                  Catalog* catalog, Transaction* txn) {
  switch (type) {
    case WalRecordType::kCreateTable: {
      std::string name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&name));
      uint32_t ncols;
      MALLARD_RETURN_NOT_OK(reader->ReadU32(&ncols));
      std::vector<ColumnDefinition> cols;
      for (uint32_t i = 0; i < ncols; i++) {
        ColumnDefinition col;
        MALLARD_RETURN_NOT_OK(reader->ReadString(&col.name));
        uint8_t t;
        MALLARD_RETURN_NOT_OK(reader->ReadU8(&t));
        col.type = static_cast<TypeId>(t);
        cols.push_back(std::move(col));
      }
      return catalog->CreateTable(name, std::move(cols));
    }
    case WalRecordType::kDropTable: {
      std::string name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&name));
      return catalog->DropTable(name);
    }
    case WalRecordType::kCreateView: {
      std::string name, sql;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&name));
      MALLARD_RETURN_NOT_OK(reader->ReadString(&sql));
      uint32_t naliases;
      MALLARD_RETURN_NOT_OK(reader->ReadU32(&naliases));
      std::vector<std::string> aliases(naliases);
      for (uint32_t i = 0; i < naliases; i++) {
        MALLARD_RETURN_NOT_OK(reader->ReadString(&aliases[i]));
      }
      return catalog->CreateView(name, sql, std::move(aliases),
                                 /*or_replace=*/true);
    }
    case WalRecordType::kDropView: {
      std::string name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&name));
      return catalog->DropView(name);
    }
    case WalRecordType::kAppend: {
      std::string table_name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&table_name));
      DataChunk chunk;
      MALLARD_RETURN_NOT_OK(DeserializeChunk(reader, &chunk));
      MALLARD_ASSIGN_OR_RETURN(DataTable * table,
                               catalog->GetTable(table_name));
      return table->Append(txn, chunk);
    }
    case WalRecordType::kDelete: {
      std::string table_name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&table_name));
      uint64_t count;
      MALLARD_RETURN_NOT_OK(reader->ReadU64(&count));
      MALLARD_ASSIGN_OR_RETURN(DataTable * table,
                               catalog->GetTable(table_name));
      Vector ids(TypeId::kBigInt);
      idx_t done = 0;
      while (done < count) {
        idx_t batch = std::min<idx_t>(kVectorSize, count - done);
        for (idx_t i = 0; i < batch; i++) {
          MALLARD_RETURN_NOT_OK(reader->ReadI64(&ids.data<int64_t>()[i]));
        }
        MALLARD_ASSIGN_OR_RETURN(idx_t n, table->Delete(txn, ids, batch));
        (void)n;
        done += batch;
      }
      return Status::OK();
    }
    case WalRecordType::kUpdate: {
      std::string table_name;
      MALLARD_RETURN_NOT_OK(reader->ReadString(&table_name));
      uint32_t ncols;
      MALLARD_RETURN_NOT_OK(reader->ReadU32(&ncols));
      std::vector<idx_t> columns(ncols);
      for (uint32_t i = 0; i < ncols; i++) {
        MALLARD_RETURN_NOT_OK(reader->ReadU64(&columns[i]));
      }
      uint64_t count;
      MALLARD_RETURN_NOT_OK(reader->ReadU64(&count));
      std::vector<int64_t> row_ids(count);
      for (uint64_t i = 0; i < count; i++) {
        MALLARD_RETURN_NOT_OK(reader->ReadI64(&row_ids[i]));
      }
      DataChunk values;
      MALLARD_RETURN_NOT_OK(DeserializeChunk(reader, &values));
      MALLARD_ASSIGN_OR_RETURN(DataTable * table,
                               catalog->GetTable(table_name));
      Vector ids(TypeId::kBigInt);
      std::memcpy(ids.data<int64_t>(), row_ids.data(), count * 8);
      return table->Update(txn, ids, count, columns, values);
    }
    case WalRecordType::kCommit:
      return Status::Internal("commit record inside group");
  }
  return Status::Corruption("unknown WAL record type");
}

Status WriteAheadLog::Truncate() {
  MALLARD_RETURN_NOT_OK(file_->Truncate(0));
  return file_->Sync();
}

Result<uint64_t> WriteAheadLog::SizeBytes() const { return file_->Size(); }

}  // namespace mallard
