#include "mallard/storage/meta_block.h"

#include <cstring>

#include "mallard/resilience/fault_injector.h"

namespace mallard {

namespace {
constexpr uint64_t kChainHeader = sizeof(int64_t) + sizeof(uint64_t);
constexpr uint64_t kChainPayload = kBlockPayloadSize - kChainHeader;
}  // namespace

Result<block_id_t> MetaBlockWriter::Flush() {
  const auto& data = writer_.data();
  uint64_t remaining = data.size();
  uint64_t offset = 0;
  // Pre-allocate the chain so each block can point at its successor.
  uint64_t num_blocks = (remaining + kChainPayload - 1) / kChainPayload;
  if (num_blocks == 0) num_blocks = 1;
  std::vector<block_id_t> chain;
  chain.reserve(num_blocks);
  for (uint64_t i = 0; i < num_blocks; i++) {
    block_id_t id = blocks_->AllocateBlock();
    chain.push_back(id);
    blocks_used_.insert(id);
  }
  std::vector<uint8_t> buffer(kBlockPayloadSize);
  auto& injector = FaultInjector::Get();
  for (uint64_t i = 0; i < num_blocks; i++) {
    // Same fault site as the streaming writer: both feed the checkpoint
    // image, and a crash or error here leaves the old root intact.
    if (injector.ShouldKill(FaultSite::kCheckpointWrite)) {
      FaultInjector::KillProcess();
    }
    if (injector.ShouldFire(FaultSite::kCheckpointWrite)) {
      return Status::IOError("injected checkpoint block write failure");
    }
    uint64_t len = std::min(remaining, kChainPayload);
    int64_t next = (i + 1 < num_blocks) ? chain[i + 1] : kInvalidBlock;
    std::memset(buffer.data(), 0, buffer.size());
    std::memcpy(buffer.data(), &next, sizeof(int64_t));
    std::memcpy(buffer.data() + sizeof(int64_t), &len, sizeof(uint64_t));
    if (len > 0) {
      std::memcpy(buffer.data() + kChainHeader, data.data() + offset, len);
    }
    MALLARD_RETURN_NOT_OK(blocks_->WriteBlock(chain[i], buffer.data()));
    offset += len;
    remaining -= len;
  }
  return chain[0];
}

block_id_t MetaBlockStreamWriter::Allocate() {
  block_id_t id = blocks_->AllocateBlock();
  blocks_used_.insert(id);
  if (head_ == kInvalidBlock) head_ = id;
  return id;
}

Status MetaBlockStreamWriter::WriteChainBlock(uint64_t len, block_id_t id,
                                              block_id_t next) {
  auto& injector = FaultInjector::Get();
  if (injector.ShouldKill(FaultSite::kCheckpointWrite)) {
    // Power loss mid-checkpoint: the new block tree is incomplete but
    // the header still points at the old root, so reopen sees the
    // previous checkpoint plus the un-truncated WAL. Nothing is lost.
    FaultInjector::KillProcess();
  }
  if (injector.ShouldFire(FaultSite::kCheckpointWrite)) {
    return Status::IOError("injected checkpoint block write failure");
  }
  std::vector<uint8_t> buffer(kBlockPayloadSize, 0);
  std::memcpy(buffer.data(), &next, sizeof(int64_t));
  std::memcpy(buffer.data() + sizeof(int64_t), &len, sizeof(uint64_t));
  if (len > 0) {
    std::memcpy(buffer.data() + kChainHeader, writer_.data().data(), len);
  }
  return blocks_->WriteBlock(id, buffer.data());
}

Status MetaBlockStreamWriter::FlushFull() {
  while (writer_.size() >= kChainPayload) {
    if (current_ == kInvalidBlock) current_ = Allocate();
    // A full block always has a successor: at minimum the final partial
    // (possibly empty) block written by Finish().
    block_id_t next = Allocate();
    MALLARD_RETURN_NOT_OK(WriteChainBlock(kChainPayload, current_, next));
    writer_.ConsumePrefix(kChainPayload);
    current_ = next;
  }
  return Status::OK();
}

Result<block_id_t> MetaBlockStreamWriter::Finish() {
  if (finished_) return Status::Internal("meta stream writer reused");
  MALLARD_RETURN_NOT_OK(FlushFull());
  if (current_ == kInvalidBlock) current_ = Allocate();
  MALLARD_RETURN_NOT_OK(
      WriteChainBlock(writer_.size(), current_, kInvalidBlock));
  writer_.Clear();
  finished_ = true;
  return head_;
}

Status MetaBlockReader::Load(block_id_t head) {
  data_.clear();
  blocks_visited_.clear();
  std::vector<uint8_t> buffer(kBlockPayloadSize);
  block_id_t current = head;
  while (current != kInvalidBlock) {
    if (blocks_visited_.count(current)) {
      return Status::Corruption("cycle detected in meta block chain");
    }
    blocks_visited_.insert(current);
    MALLARD_RETURN_NOT_OK(blocks_->ReadBlock(current, buffer.data()));
    int64_t next;
    uint64_t len;
    std::memcpy(&next, buffer.data(), sizeof(int64_t));
    std::memcpy(&len, buffer.data() + sizeof(int64_t), sizeof(uint64_t));
    if (len > kChainPayload) {
      return Status::Corruption("meta block length field out of range");
    }
    size_t old = data_.size();
    data_.resize(old + len);
    std::memcpy(data_.data() + old, buffer.data() + kChainHeader, len);
    current = next;
  }
  reader_ = std::make_unique<BinaryReader>(data_.data(), data_.size());
  return Status::OK();
}

}  // namespace mallard
