#include "mallard/storage/file_handle.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "mallard/resilience/fault_injector.h"

namespace mallard {

Result<std::unique_ptr<FileHandle>> FileHandle::Open(const std::string& path,
                                                     uint8_t flags) {
  int oflags = 0;
  if ((flags & kRead) && (flags & kWrite)) {
    oflags = O_RDWR;
  } else if (flags & kWrite) {
    oflags = O_WRONLY;
  } else {
    oflags = O_RDONLY;
  }
  if (flags & kCreate) oflags |= O_CREAT;
  if (flags & kTruncate) oflags |= O_TRUNC;
  int fd = ::open(path.c_str(), oflags, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open file '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<FileHandle>(new FileHandle(fd, path));
}

FileHandle::~FileHandle() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileHandle::Read(void* buffer, uint64_t len, uint64_t offset) {
  uint8_t* dst = static_cast<uint8_t*>(buffer);
  uint64_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd_, dst + done, len - done, offset + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read failed on '" + path_ +
                             "': " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("unexpected end of file reading '" + path_ +
                             "'");
    }
    done += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Status FileHandle::Write(const void* buffer, uint64_t len, uint64_t offset) {
  uint64_t effective_len = len;
  auto& injector = FaultInjector::Get();
  if (injector.ShouldFire(FaultSite::kTornWrite)) {
    // Simulate a power loss mid-write: persist only a prefix.
    effective_len = len / 2;
  }
  const uint8_t* src = static_cast<const uint8_t*>(buffer);
  uint64_t done = 0;
  while (done < effective_len) {
    ssize_t n = ::pwrite(fd_, src + done, effective_len - done, offset + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write failed on '" + path_ +
                             "': " + std::strerror(errno));
    }
    done += static_cast<uint64_t>(n);
  }
  if (effective_len != len) {
    return Status::IOError("torn write injected on '" + path_ + "'");
  }
  return Status::OK();
}

Result<uint64_t> FileHandle::Append(const void* buffer, uint64_t len) {
  MALLARD_ASSIGN_OR_RETURN(uint64_t size, Size());
  MALLARD_RETURN_NOT_OK(Write(buffer, len, size));
  return size;
}

Status FileHandle::Sync() {
  if (FaultInjector::Get().ShouldFire(FaultSite::kFsyncFailure)) {
    return Status::IOError("fsync failure injected on '" + path_ + "'");
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed on '" + path_ +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> FileHandle::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat failed on '" + path_ +
                           "': " + std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status FileHandle::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate failed on '" + path_ +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void RemoveFile(const std::string& path) { ::unlink(path.c_str()); }

}  // namespace mallard
